package biasmit

// Hot-path micro-benchmarks of the PR 4 performance layer, in fast and
// naive form at each width (bodies in internal/benchsuite, shared with
// cmd/bench which gates CI on them):
//
//	go test -bench='RunShots|Sample|ReadoutApply' -benchmem .

import (
	"fmt"
	"testing"

	"biasmit/internal/benchsuite"
)

func BenchmarkRunShots(b *testing.B) {
	for _, w := range benchsuite.Widths {
		for _, mode := range []string{"fast", "naive"} {
			b.Run(fmt.Sprintf("width=%d/%s", w, mode), func(b *testing.B) {
				benchsuite.RunShots(b, w, mode == "naive")
			})
		}
	}
}

func BenchmarkRunShotsTrialLoop(b *testing.B) {
	for _, mode := range []string{"fast", "naive"} {
		b.Run(fmt.Sprintf("width=16/%s", mode), func(b *testing.B) {
			benchsuite.RunShotsTrialLoop(b, 16, mode == "naive")
		})
	}
}

func BenchmarkRunShotsParallel(b *testing.B) {
	for _, mode := range []string{"fast", "naive"} {
		b.Run(fmt.Sprintf("width=16/%s", mode), func(b *testing.B) {
			benchsuite.RunShotsParallel(b, 16, mode == "naive")
		})
	}
}

func BenchmarkSample(b *testing.B) {
	for _, w := range benchsuite.Widths {
		for _, mode := range []string{"cdf", "linear"} {
			b.Run(fmt.Sprintf("width=%d/%s", w, mode), func(b *testing.B) {
				benchsuite.Sample(b, w, mode == "cdf")
			})
		}
	}
}

func BenchmarkReadoutApply(b *testing.B) {
	for _, mode := range []string{"compiled", "naive"} {
		b.Run(mode, func(b *testing.B) {
			benchsuite.ReadoutApply(b, mode == "compiled")
		})
	}
}

// Calibration-suite example: everything an operator would run against a
// fresh machine before trusting it with workloads.
//
//  1. Fit each qubit's T1 from decay data (tomography.FitT1).
//  2. Learn the RBMS measurement-strength profile (ESCT) and find the
//     strongest state AIM will target.
//  3. Map readout crosstalk (the source of ibmqx4-style arbitrary bias).
//  4. Persist the profile to disk for later AIM runs.
//
// Run with: go run ./examples/calibration
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"biasmit/internal/backend"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/persist"
	"biasmit/internal/tomography"
)

func main() {
	log.SetFlags(0)

	dev := device.IBMQX4()
	fmt.Printf("calibrating %s (%d qubits)\n\n", dev.Name, dev.NumQubits)

	// T1 fits need idle windows, so enable the schedule-aware decay model.
	decayMachine := core.NewMachine(dev)
	decayMachine.Opt = backend.Options{NoGateNoise: true, ScheduleAwareDecay: true}
	fmt.Println("T1 relaxation fits (model value in parentheses):")
	for q := 0; q < dev.NumQubits; q++ {
		trueT1 := dev.Qubits[q].T1
		fit, err := tomography.FitT1(decayMachine, q,
			[]float64{trueT1 / 6, trueT1 / 3, trueT1 / 2}, 6000, int64(100+q))
		if err != nil {
			log.Fatalf("qubit %d: %v", q, err)
		}
		fmt.Printf("  q%d: %5.1f µs (%.1f)\n", q, fit.T1, trueT1)
	}

	machine := core.NewMachine(dev)
	prof := &core.Profiler{Machine: machine, Layout: []int{0, 1, 2, 3, 4}}

	rbms, err := prof.ESCT(64000, 200)
	if err != nil {
		log.Fatal(err)
	}
	corr, err := rbms.HammingCorrelation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRBMS (ESCT, 64k trials): strongest state %v, Hamming correlation %.2f\n",
		rbms.StrongestState(), corr)

	crosstalk, err := prof.Crosstalk(16000, 300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nreadout crosstalk above 1.5%:")
	for _, p := range crosstalk.SignificantPairs(0.015) {
		fmt.Printf("  q%d excited -> q%d flips %+.1f%% more often\n",
			p.Trigger, p.Target, 100*p.Excess)
	}

	path := filepath.Join(os.TempDir(), "ibmqx4-profile.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	meta := persist.RBMSMeta{Machine: dev.Name, Layout: prof.Layout, Method: "esct"}
	if err := persist.SaveRBMS(f, rbms, meta); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprofile saved to %s (load it for future AIM runs)\n", path)
}

// Characterization example: learn a machine's Relative Basis Measurement
// Strength (RBMS) three ways and compare them — the workflow of the
// paper's Appendix A.
//
// On a 5-qubit machine all three techniques are affordable, which lets
// us validate the cheap ones against the exhaustive one:
//
//   - brute force: prepare each of the 32 basis states, measure, count
//     exact matches (O(2^n) circuit preparations);
//   - ESCT: prepare one uniform superposition and read the relative
//     frequencies (one circuit);
//   - AWCT: sliding 4-qubit windows with overlap 2, stitched together
//     (O(2^m) per window — the only technique that scales to 14+ qubits).
//
// Run with: go run ./examples/characterize
package main

import (
	"fmt"
	"log"

	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/device"
)

func main() {
	log.SetFlags(0)

	dev := device.IBMQX4()
	prof := &core.Profiler{
		Machine: core.NewMachine(dev),
		Layout:  []int{0, 1, 2, 3, 4},
	}

	brute, err := prof.BruteForce(8000, 1)
	if err != nil {
		log.Fatal(err)
	}
	esct, err := prof.ESCT(8000*32, 2)
	if err != nil {
		log.Fatal(err)
	}
	awct, err := prof.AWCT(4, 2, 8000*8, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("RBMS of %s (sum-normalized)\n\n", dev.Name)
	fmt.Println("state   brute    esct     awct")
	b, e, a := brute.NormalizeSum(), esct.NormalizeSum(), awct.NormalizeSum()
	for _, s := range bitstring.AllByHammingWeight(5) {
		fmt.Printf("%s   %.4f   %.4f   %.4f\n", s, b.Of(s), e.Of(s), a.Of(s))
	}

	mseESCT, err := esct.MSE(brute)
	if err != nil {
		log.Fatal(err)
	}
	mseAWCT, err := awct.MSE(brute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nESCT mean-squared error vs brute force: %.2e\n", mseESCT)
	fmt.Printf("AWCT mean-squared error vs brute force: %.2e\n", mseAWCT)

	corr, err := brute.HammingCorrelation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncorrelation with Hamming weight: %.3f\n", corr)
	fmt.Printf("strongest state (AIM's inversion target): %v\n", brute.StrongestState())
	fmt.Println("\nOn ibmqx4 the bias is 'arbitrary' (weak weight correlation),")
	fmt.Println("which is exactly why AIM profiles the machine instead of")
	fmt.Println("assuming all-zeros is strongest.")
}

// Quickstart: run a Bernstein-Vazirani kernel on a simulated IBM machine
// and recover reliability with Static Invert-and-Measure.
//
// This is the smallest end-to-end use of the library:
//
//  1. pick a machine model (ibmqx4, the paper's most biased device);
//  2. build a kernel circuit (BV with an all-ones key — the worst case
//     for state-dependent measurement bias);
//  3. place it on the machine (variability-aware, as the paper's
//     baseline does);
//  4. run the baseline policy and SIM, and compare PST.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
)

func main() {
	log.SetFlags(0)

	// The secret key 1111 makes the expected output 11111 (key plus
	// ancilla) — the state most vulnerable to measurement error.
	bench := kernels.BV("bv-4B", bitstring.MustParse("1111"))

	machine := core.NewMachine(device.IBMQX4())
	job, err := core.NewJob(bench.Circuit, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running %s on %s (physical qubits %v)\n",
		bench.Name, machine.Device.Name, job.Plan.InitialLayout)

	const shots = 16000
	baseline, err := job.Baseline(shots, 1)
	if err != nil {
		log.Fatal(err)
	}

	// SIM splits the same trial budget across four inversion strings
	// (none, all, even bits, odd bits) and merges the corrected outputs.
	sim, err := core.SIM4(job, shots, 2)
	if err != nil {
		log.Fatal(err)
	}

	basePST := metrics.PST(baseline.Dist(), bench.Correct[0])
	simPST := metrics.PST(sim.Merged.Dist(), bench.Correct[0])
	fmt.Printf("baseline PST: %.1f%%\n", 100*basePST)
	fmt.Printf("SIM PST:      %.1f%% (%.2fx)\n", 100*simPST, simPST/basePST)
	for i, s := range sim.Strings {
		d := sim.PerMode[i].Dist()
		fmt.Printf("  mode %v: PST %.1f%%\n", s, 100*metrics.PST(d, bench.Correct[0]))
	}
}

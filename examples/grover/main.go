// Grover example: a single-answer search workload where the answer's bit
// pattern decides how hard it is to read out — and how to combine
// physical (Invert-and-Measure) and classical (confusion-matrix)
// mitigation.
//
// Grover-3 amplifies the marked state to ≈94.5% after two iterations on
// an ideal machine, so almost all remaining loss on a NISQ model comes
// from gates and readout. Marking the all-ones state puts the answer in
// the weakest readout state; the example compares:
//
//	baseline → SIM → SIM + tensored matrix correction
//
// Run with: go run ./examples/grover
package main

import (
	"fmt"
	"log"

	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/correct"
	"biasmit/internal/device"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
)

func main() {
	log.SetFlags(0)

	marked := bitstring.MustParse("111")
	bench := kernels.Grover("grover-3", marked, 2)
	fmt.Printf("Grover-3 searching for %v (ideal success 94.5%%)\n", marked)

	machine := core.NewMachine(device.IBMQX4())
	job, err := core.NewJob(bench.Circuit, machine)
	if err != nil {
		log.Fatal(err)
	}
	oneQ, twoQ, _ := job.Plan.Physical.GateCounts()
	fmt.Printf("on %s: %d 1q + %d 2q gates after transpilation, %d swaps\n\n",
		machine.Device.Name, oneQ, twoQ, job.Plan.SwapCount)

	const shots = 16000
	baseline, err := job.Baseline(shots, 1)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := core.SIM4(job, shots, 2)
	if err != nil {
		log.Fatal(err)
	}
	cal, err := correct.LearnTensored(machine, job.Plan.FinalLayout, 8192, 3)
	if err != nil {
		log.Fatal(err)
	}
	simCorrected, err := cal.Apply(sim.Merged)
	if err != nil {
		log.Fatal(err)
	}

	basePST := metrics.PST(baseline.Dist(), marked)
	lo, hi := baseline.WilsonInterval(marked, 1.96)
	fmt.Printf("baseline        PST %5.1f%%  (95%% CI %.1f%%-%.1f%%)\n", 100*basePST, 100*lo, 100*hi)

	simPST := metrics.PST(sim.Merged.Dist(), marked)
	lo, hi = sim.Merged.WilsonInterval(marked, 1.96)
	fmt.Printf("SIM             PST %5.1f%%  (95%% CI %.1f%%-%.1f%%)\n", 100*simPST, 100*lo, 100*hi)

	fmt.Printf("SIM + matrix    PST %5.1f%%\n", 100*metrics.PST(simCorrected, marked))
}

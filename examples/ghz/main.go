// GHZ example: show that state-dependent measurement bias affects
// entangled superpositions, not just classical basis states — the
// paper's §3.2 (Fig 6) observation — and that SIM symmetrizes it.
//
// An ideal GHZ-5 measurement returns 00000 and 11111 with probability
// 0.5 each. On the melbourne model the all-ones branch decays and
// misreads, skewing the outcome heavily toward zeros. SIM's split
// measurement modes restore the balance.
//
// Run with: go run ./examples/ghz
package main

import (
	"fmt"
	"log"

	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/kernels"
)

func main() {
	log.SetFlags(0)

	machine := core.NewMachine(device.IBMQMelbourne())
	job, err := core.NewJob(kernels.GHZ(5), machine)
	if err != nil {
		log.Fatal(err)
	}

	const shots = 32000
	baseline, err := job.Baseline(shots, 1)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := core.SIM4(job, shots, 2)
	if err != nil {
		log.Fatal(err)
	}

	zeros, ones := bitstring.Zeros(5), bitstring.Ones(5)
	show := func(policy string, d dist.Dist) {
		p0, p1 := d.Prob(zeros), d.Prob(ones)
		skew := 0.0
		if p1 > 0 {
			skew = p0 / p1
		}
		fmt.Printf("%-9s P(00000)=%.3f  P(11111)=%.3f  skew %.2fx\n", policy, p0, p1, skew)
	}
	fmt.Println("GHZ-5 on ibmq-melbourne (ideal: 0.500 / 0.500, skew 1.00x)")
	show("baseline", baseline.Dist())
	show("SIM", sim.Merged.Dist())

	fmt.Println("\nbaseline leakage by Hamming weight (ideal: zero outside 0 and 5):")
	d := baseline.Dist()
	var byWeight [6]float64
	for _, b := range bitstring.All(5) {
		byWeight[b.HammingWeight()] += d.Prob(b)
	}
	for w, p := range byWeight {
		fmt.Printf("  weight %d: %.3f\n", w, p)
	}
}

// QAOA example: solve a max-cut instance on the simulated 14-qubit
// melbourne machine and rescue a weak answer with Adaptive
// Invert-and-Measure.
//
// This reproduces the paper's §3.3/§5.4 scenario: the optimal partition
// of graph D (101011) has high Hamming weight, so the baseline machine
// reads it badly and stronger incorrect answers mask it. AIM profiles
// the machine, shortlists likely answers with canary trials, and maps
// them onto the machine's strongest state before measuring.
//
// Run with: go run ./examples/qaoa
package main

import (
	"fmt"
	"log"

	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/kernels"
	"biasmit/internal/maxcut"
	"biasmit/internal/metrics"
)

func main() {
	log.SetFlags(0)

	// Graph D from the paper's Table 2: six nodes, optimum 101011.
	pg := maxcut.Table2Graphs()[3]
	best, partitions := pg.Graph.Solve()
	fmt.Printf("graph %s: %d nodes, %d edges, max cut %.0f at %v\n",
		pg.Graph.Name, pg.Graph.N, len(pg.Graph.Edges), best, partitions)

	// Tune QAOA angles on the ideal simulator (the classical outer loop),
	// then freeze the program, as the paper does.
	bench := kernels.QAOA(pg.Graph.Name, pg, 1)

	machine := core.NewMachine(device.IBMQMelbourne())
	job, err := core.NewJob(bench.Circuit, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed on %s qubits %v with %d routing swaps\n",
		machine.Device.Name, job.Plan.InitialLayout, job.Plan.SwapCount)

	const shots = 16000
	baseline, err := job.Baseline(shots, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Profile the output register's measurement strength with the
	// windowed technique (brute force would need 2^6 preparations; AWCT
	// needs O(2^4)).
	rbms, err := job.Profiler().AWCT(4, 2, 16000, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine's strongest 6-bit state: %v\n", rbms.StrongestState())

	aim, err := core.AIM(job, rbms, core.AIMConfig{}, shots, 3)
	if err != nil {
		log.Fatal(err)
	}

	show := func(policy string, d dist.Dist) {
		fmt.Printf("%-9s PST %5.2f%%  IST %.3f  rank of correct answer %d\n",
			policy,
			100*metrics.PSTEquiv(d, bench.Correct...),
			metrics.IST(d, bench.Correct...),
			metrics.ROCA(d, bench.Correct...))
	}
	show("baseline", baseline.Dist())
	show("AIM", aim.Merged.Dist())

	fmt.Println("\nAIM canary shortlist (likelihood = frequency / strength):")
	for _, c := range aim.Candidates {
		cut := pg.Graph.CutValue(c.Output)
		fmt.Printf("  %v  likelihood %6.3f  cut value %.0f\n", c.Output, c.Likelihood, cut)
	}
}

// Package biasmit is a complete Go reproduction of "Mitigating
// Measurement Errors in Quantum Computers by Exploiting State-Dependent
// Bias" (Tannu & Qureshi, MICRO-52, 2019), together with every substrate
// the paper depends on: a noisy NISQ simulator, calibrated models of the
// ibmqx2 / ibmqx4 / ibmq-melbourne machines, a variability-aware
// transpiler, the Bernstein-Vazirani and QAOA workloads, and a harness
// that regenerates every table and figure of the paper's evaluation.
//
// The module's packages live under internal/; the supported entry points
// are the command-line tools under cmd/ (qsim, characterize, mitigate,
// qasmrun, paperfigs), the runnable programs under examples/, and the
// benchmark harness in bench_test.go. Start with README.md for a tour,
// DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for the paper-vs-measured results.
package biasmit

module biasmit

go 1.22

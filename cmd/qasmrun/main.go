// Command qasmrun executes an OpenQASM 2.0 program on a simulated
// machine model, optionally under an Invert-and-Measure policy, and
// prints the measured distribution.
//
// Usage:
//
//	qasmrun -file circuit.qasm -machine ibmqx4 -shots 8192
//	qasmrun -file circuit.qasm -machine ibmq-melbourne -policy sim
//	cat circuit.qasm | qasmrun -machine ibmqx2
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"biasmit/internal/backend"
	"biasmit/internal/chaos"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/persist"
	"biasmit/internal/qasm"
	"biasmit/internal/report"
	"biasmit/internal/resilient"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qasmrun: ")

	file := flag.String("file", "", "QASM source file (default: stdin)")
	machineName := flag.String("machine", "ibmqx4", "machine model: ibmqx2, ibmqx4, ibmq-melbourne")
	shots := flag.Int("shots", 8192, "number of trials")
	seed := flag.Int64("seed", 1, "random seed")
	policy := flag.String("policy", "baseline", "measurement policy: baseline, sim")
	top := flag.Int("top", 10, "how many outcomes to print")
	outFile := flag.String("out", "", "also save the report to this file (written atomically)")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline)")
	workers := flag.Int("workers", 0, "goroutines for SIM inversion groups / baseline trial "+
		"partitions (0 = sequential)")
	chaosPlan := chaos.Flags(flag.CommandLine)
	retry := resilient.Flags(flag.CommandLine)
	flag.Parse()
	if err := chaosPlan.Validate(); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var src []byte
	var err error
	if *file != "" {
		src, err = os.ReadFile(*file)
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		log.Fatalf("reading source: %v", err)
	}

	c, err := qasm.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	dev, ok := device.ByName(*machineName)
	if !ok {
		log.Fatalf("unknown machine %q", *machineName)
	}
	m := core.NewMachine(dev)
	m.Workers = *workers // SIM runs its inversion groups as parallel jobs
	m.Run = resilient.New(chaosPlan.Wrap(backend.RunContext), *retry).Run
	job, err := core.NewJob(c, m)
	if err != nil {
		log.Fatal(err)
	}

	var counts *dist.Counts
	switch *policy {
	case "baseline":
		// Baseline is a single job, so parallelism lives inside the
		// trial loop; results are deterministic per (seed, workers).
		job.Machine.Opt.Workers = *workers
		counts, err = job.BaselineContext(ctx, *shots, *seed)
	case "sim":
		var res *core.SIMResult
		res, err = core.SIM4Context(ctx, job, *shots, *seed)
		if res != nil {
			counts = res.Merged
		}
	default:
		log.Fatalf("unknown policy %q", *policy)
	}
	if err != nil {
		log.Fatal(err)
	}

	d := counts.Dist()
	var buf bytes.Buffer
	w := io.Writer(os.Stdout)
	if *outFile != "" {
		w = io.MultiWriter(os.Stdout, &buf)
	}
	fmt.Fprintf(w, "%s on %s (%s), %d trials, layout %v, %d swaps\n\n",
		c.Name, dev.Name, *policy, *shots, job.Plan.InitialLayout, job.Plan.SwapCount)
	var rows [][]string
	for _, b := range d.TopK(*top) {
		rows = append(rows, []string{b.String(), fmt.Sprint(counts.Get(b)), report.F(d.Prob(b))})
	}
	fmt.Fprint(w, report.Table([]string{"outcome", "count", "probability"}, rows))
	if *outFile != "" {
		err := persist.WriteFileAtomic(*outFile, func(f io.Writer) error {
			_, err := f.Write(buf.Bytes())
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
	}
}

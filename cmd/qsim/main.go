// Command qsim runs one of the paper's NISQ kernels on a simulated IBM
// machine and prints the measured output distribution with reliability
// metrics.
//
// Usage:
//
//	qsim -machine ibmqx4 -kernel bv -key 0111 -shots 8192
//	qsim -machine ibmq-melbourne -kernel qaoa -bench qaoa-6 -shots 32000
//	qsim -machine ibmqx2 -kernel ghz -n 5
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/chaos"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/kernels"
	"biasmit/internal/maxcut"
	"biasmit/internal/metrics"
	"biasmit/internal/persist"
	"biasmit/internal/qasm"
	"biasmit/internal/report"
	"biasmit/internal/resilient"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qsim: ")

	machineName := flag.String("machine", "ibmqx4", "machine model: ibmqx2, ibmqx4, ibmq-melbourne")
	kernel := flag.String("kernel", "bv", "kernel: bv, qaoa, ghz, uniform, prep")
	key := flag.String("key", "0111", "secret key for bv / basis state for prep")
	benchName := flag.String("bench", "qaoa-4A", "QAOA benchmark: qaoa-4A, qaoa-4B, qaoa-6, qaoa-7")
	n := flag.Int("n", 5, "register size for ghz/uniform")
	shots := flag.Int("shots", 8192, "number of trials")
	seed := flag.Int64("seed", 1, "random seed")
	top := flag.Int("top", 10, "how many outcomes to print")
	outFile := flag.String("out", "", "also save the report to this file (written atomically)")
	ideal := flag.Bool("ideal", false, "disable all noise")
	dumpQASM := flag.Bool("qasm", false, "print the transpiled circuit as OpenQASM 2.0 and exit")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline)")
	workers := flag.Int("workers", 0, "partition the trial loop across this many goroutines; "+
		"results are deterministic per (seed, workers) pair (0 = single stream)")
	chaosPlan := chaos.Flags(flag.CommandLine)
	retry := resilient.Flags(flag.CommandLine)
	flag.Parse()
	if err := chaosPlan.Validate(); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	dev, ok := device.ByName(*machineName)
	if !ok {
		log.Fatalf("unknown machine %q", *machineName)
	}

	var bench kernels.Benchmark
	switch *kernel {
	case "bv":
		k, err := bitstring.Parse(*key)
		if err != nil {
			log.Fatalf("bad key: %v", err)
		}
		bench = kernels.BV("bv-"+*key, k)
	case "qaoa":
		pg, err := maxcut.Table3Graph(*benchName)
		if err != nil {
			log.Fatal(err)
		}
		p := 2
		if *benchName == "qaoa-4A" {
			p = 1
		}
		bench = kernels.QAOA(*benchName, pg, p)
	case "ghz":
		bench = kernels.Benchmark{Name: fmt.Sprintf("ghz-%d", *n), Circuit: kernels.GHZ(*n),
			Correct: []bitstring.Bits{bitstring.Zeros(*n), bitstring.Ones(*n)}}
	case "uniform":
		bench = kernels.Benchmark{Name: "uniform", Circuit: kernels.UniformSuperposition(*n)}
	case "prep":
		b, err := bitstring.Parse(*key)
		if err != nil {
			log.Fatalf("bad state: %v", err)
		}
		bench = kernels.Benchmark{Name: "prep-" + *key, Circuit: kernels.BasisPrep(b),
			Correct: []bitstring.Bits{b}}
	default:
		log.Fatalf("unknown kernel %q", *kernel)
	}

	m := core.NewMachine(dev)
	if *ideal {
		m.Opt = backend.Options{NoGateNoise: true, NoDecay: true, NoReadoutError: true}
	}
	m.Opt.Workers = *workers
	m.Run = resilient.New(chaosPlan.Wrap(backend.RunContext), *retry).Run
	job, err := core.NewJob(bench.Circuit, m)
	if err != nil {
		log.Fatal(err)
	}
	if *dumpQASM {
		fmt.Print(qasm.Export(job.Plan.Physical))
		return
	}
	counts, err := job.BaselineContext(ctx, *shots, *seed)
	if err != nil {
		log.Fatal(err)
	}
	d := counts.Dist()

	var buf bytes.Buffer
	w := io.Writer(os.Stdout)
	if *outFile != "" {
		w = io.MultiWriter(os.Stdout, &buf)
	}
	fmt.Fprintf(w, "%s on %s, %d trials (layout %v, %d swaps)\n\n",
		bench.Name, dev.Name, *shots, job.Plan.InitialLayout, job.Plan.SwapCount)
	rows := [][]string{}
	for _, b := range d.TopK(*top) {
		rows = append(rows, []string{b.String(), fmt.Sprint(counts.Get(b)), report.F(d.Prob(b))})
	}
	fmt.Fprint(w, report.Table([]string{"outcome", "count", "probability"}, rows))
	if len(bench.Correct) > 0 {
		fmt.Fprintf(w, "\nPST  %.4f\nIST  %.4f\nROCA %d\n",
			metrics.PSTEquiv(d, bench.Correct...),
			metrics.IST(d, bench.Correct...),
			metrics.ROCA(d, bench.Correct...))
	}
	if *outFile != "" {
		err := persist.WriteFileAtomic(*outFile, func(f io.Writer) error {
			_, err := f.Write(buf.Bytes())
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
	}
}

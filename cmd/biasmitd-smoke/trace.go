package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/client"
)

// traceScenario is the observability round-trip of the CI chaos job. It
// owns the daemon (-daemon, -data-dir as scratch), boots it with a
// gray-slow chaos backend (every backend call succeeds, slowly) and a
// low slow-request threshold, then proves one slow request is fully
// explainable end to end:
//
//  1. mint a trace ID client-side and run a baseline mitigation under
//     it; the response envelope must echo the same ID;
//  2. GET /debug/traces must hold that trace with a per-stage span
//     breakdown whose durations sum to within 10% of the e2e latency
//     the client measured;
//  3. the request must be retained as a slow exemplar: on
//     /debug/traces?slow=1, as a biasmitd_slow_request_seconds sample
//     naming the trace ID on /metrics, and in the per-stage histograms;
//  4. the daemon's stderr must carry the structured log line with the
//     trace ID and the span breakdown;
//  5. SIGTERM and require a clean drain.
func traceScenario(ctx context.Context, bin, dataDir string) error {
	if bin == "" || dataDir == "" {
		return fmt.Errorf("the trace scenario needs -daemon and -data-dir")
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return err
	}
	args := []string{
		"-workers", "2",
		"-profile-shots", "256",
		// Every backend call sleeps 250-500ms: slow enough to dwarf the
		// serving overhead (the 10% span-sum tolerance below), fast
		// enough for CI.
		"-chaos-gray-slow-rate", "1",
		"-chaos-gray-slow", "500ms",
		"-slow-request", "100ms",
	}
	d, err := startDaemon(ctx, bin, filepath.Join(dataDir, "trace.log"), args...)
	if err != nil {
		return err
	}
	defer d.kill()

	// One slow request under a client-minted trace ID.
	traceCtx, traceID := client.WithTraceID(ctx, "")
	req := &api.MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 1024, Seed: 5}
	started := time.Now()
	resp, err := d.cl.Mitigate(traceCtx, req)
	if err != nil {
		return fmt.Errorf("gray-slow mitigate: %w", err)
	}
	e2e := time.Since(started)
	if resp.TraceID != traceID {
		return fmt.Errorf("response trace_id %q, want the client-minted %q", resp.TraceID, traceID)
	}

	// The trace is on /debug/traces with a span breakdown that accounts
	// for the latency the client saw.
	entry, err := findTrace(ctx, d.cl, traceID, false)
	if err != nil {
		return err
	}
	if entry.Route != "/v1/mitigate" || entry.Status != 200 {
		return fmt.Errorf("trace %s recorded route=%q status=%d, want /v1/mitigate 200", traceID, entry.Route, entry.Status)
	}
	var spanSum float64
	var sampled bool
	for _, sp := range entry.Spans {
		spanSum += sp.DurationMS
		if sp.Name == "sample" && sp.Tags["policy"] == "baseline" {
			sampled = true
		}
	}
	if !sampled {
		return fmt.Errorf("trace %s has no sample span tagged policy=baseline; spans %+v", traceID, entry.Spans)
	}
	e2eMS := float64(e2e) / float64(time.Millisecond)
	if diff := spanSum - e2eMS; diff < -0.1*e2eMS || diff > 0.1*e2eMS {
		return fmt.Errorf("trace %s spans sum to %.1fms, not within 10%% of the measured %.1fms e2e", traceID, spanSum, e2eMS)
	}

	// Slower than -slow-request, so it is a retained exemplar too.
	slow, err := d.cl.Traces(ctx, 0, true)
	if err != nil {
		return fmt.Errorf("debug/traces?slow=1: %w", err)
	}
	if slow.SlowThresholdMS != 100 {
		return fmt.Errorf("slow threshold %dms, want the configured 100ms", slow.SlowThresholdMS)
	}
	if _, err := pickTrace(slow.Traces, traceID); err != nil {
		return fmt.Errorf("slow exemplars: %w", err)
	}
	if err := expectMetrics(ctx, d.cl,
		"biasmitd_slow_request_threshold_seconds 0.1",
		fmt.Sprintf(`biasmitd_slow_request_seconds{trace_id=%q,route="/v1/mitigate"}`, traceID),
		`biasmitd_stage_duration_seconds_count{stage="sample"} 1`,
		`biasmitd_stage_duration_seconds_count{stage="serialize"}`,
	); err != nil {
		return err
	}

	// The structured log line ties the same story to stderr: trace ID,
	// route, and the span breakdown in one greppable JSON record.
	logData, _ := os.ReadFile(d.logPath)
	for _, want := range []string{
		fmt.Sprintf(`"trace_id":"%s"`, traceID),
		`"route":"/v1/mitigate"`,
		`"name":"sample"`,
	} {
		if !strings.Contains(string(logData), want) {
			return fmt.Errorf("daemon log missing %s; log:\n%s", want, logData)
		}
	}

	return d.stopGracefully()
}

// findTrace reads GET /debug/traces and returns the entry for id.
func findTrace(ctx context.Context, cl *client.Client, id string, slow bool) (*api.TraceEntry, error) {
	resp, err := cl.Traces(ctx, 0, slow)
	if err != nil {
		return nil, fmt.Errorf("debug/traces: %w", err)
	}
	return pickTrace(resp.Traces, id)
}

func pickTrace(traces []api.TraceEntry, id string) (*api.TraceEntry, error) {
	for i := range traces {
		if traces[i].TraceID == id {
			return &traces[i], nil
		}
	}
	return nil, fmt.Errorf("trace %s not in the %d retained traces", id, len(traces))
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"biasmit/internal/api"
)

// replayCanon strips only what legitimately differs per request — the
// envelope and the cache-metadata flags — and returns the rest as JSON.
// Unlike canonicalMitigate it keeps ElapsedMS: a result-cache hit
// replays the stored bytes verbatim, so even the original computation's
// elapsed time must come back unchanged. Matching it proves the second
// response is a replay, not a lucky deterministic re-execution.
func replayCanon(out *api.MitigateResponse) (string, error) {
	c := *out
	c.APIVersion, c.TraceID = "", ""
	c.CacheHit, c.Coalesced = false, false
	raw, err := json.Marshal(c)
	return string(raw), err
}

// cacheScenario is the result-cache round-trip of the CI serve job. It
// owns the daemon lifecycle:
//
//  1. boot biasmitd with the result cache at its defaults, run one AIM
//     request, and require the identical follow-up to come back as a
//     cache hit whose body — ElapsedMS included — replays the stored
//     bytes byte-for-byte;
//  2. force a re-characterization of the same machine and require the
//     next identical request to miss: the profile generation moved, so
//     every result that depended on it is stale;
//  3. fire one slow request and, once it is registered in flight, three
//     identical followers; require the three to coalesce onto the
//     leader's execution (coalesced flag + counter) with identical
//     bytes, the pipeline having run exactly once;
//  4. check the cache counters tell the whole story, then SIGTERM and
//     require a clean drain.
func cacheScenario(ctx context.Context, bin, dir string) error {
	if bin == "" || dir == "" {
		return fmt.Errorf("the cache scenario needs -daemon and -data-dir (scratch space)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	d, err := startDaemon(ctx, bin, filepath.Join(dir, "cache.log"),
		"-workers", "2",
		"-profile-shots", "256",
	)
	if err != nil {
		return err
	}
	defer d.kill()

	// Miss, then byte-identical replay.
	req := &api.MitigateRequest{Machine: "ibmqx4", Policy: "aim", Benchmark: "bv-4A", Shots: 2048, Seed: 7}
	first, err := d.cl.Mitigate(ctx, req)
	if err != nil {
		return fmt.Errorf("first aim run: %w", err)
	}
	if first.CacheHit || first.Coalesced {
		return fmt.Errorf("first aim run flagged cache_hit=%v coalesced=%v", first.CacheHit, first.Coalesced)
	}
	second, err := d.cl.Mitigate(ctx, req)
	if err != nil {
		return fmt.Errorf("second aim run: %w", err)
	}
	if !second.CacheHit {
		return fmt.Errorf("identical aim run should be a result-cache hit")
	}
	firstCanon, err := replayCanon(first)
	if err != nil {
		return err
	}
	secondCanon, err := replayCanon(second)
	if err != nil {
		return err
	}
	if firstCanon != secondCanon {
		return fmt.Errorf("cache hit is not a byte replay:\nfirst:  %s\nsecond: %s", firstCanon, secondCanon)
	}
	if second.ElapsedMS != first.ElapsedMS {
		return fmt.Errorf("cache hit elapsed_ms %v, want the original %v replayed", second.ElapsedMS, first.ElapsedMS)
	}

	// Re-characterizing moves the profile generation; the dependent
	// entry must die with it.
	if _, err := d.cl.Characterize(ctx, &api.CharacterizeRequest{
		Machine: "ibmqx4", Method: "brute", Qubits: 5, Force: true,
	}); err != nil {
		return fmt.Errorf("forced re-characterization: %w", err)
	}
	third, err := d.cl.Mitigate(ctx, req)
	if err != nil {
		return fmt.Errorf("post-characterize aim run: %w", err)
	}
	if third.CacheHit {
		return fmt.Errorf("aim run after forced re-characterization still served from the result cache")
	}

	// Coalescing: register a slow leader, then pile three identical
	// requests onto it. The miss counter increments at registration —
	// before the computation finishes — so polling it removes the race
	// between launching the leader and launching the followers.
	burst := &api.MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 1 << 17, Seed: 42}
	missesBefore, err := cacheMetric(ctx, d, "biasmitd_result_cache_misses_total")
	if err != nil {
		return err
	}
	type burstResult struct {
		resp *api.MitigateResponse
		err  error
	}
	results := make(chan burstResult, 4)
	mitigate := func() {
		resp, err := d.cl.Mitigate(ctx, burst)
		results <- burstResult{resp, err}
	}
	go mitigate()
	registered := time.Now().Add(15 * time.Second)
	for {
		misses, err := cacheMetric(ctx, d, "biasmitd_result_cache_misses_total")
		if err != nil {
			return err
		}
		if misses > missesBefore {
			break
		}
		if time.Now().After(registered) {
			return fmt.Errorf("burst leader never registered a result-cache miss")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mitigate()
		}()
	}
	wg.Wait()

	var leaders, coalesced int
	var canons []string
	for i := 0; i < 4; i++ {
		r := <-results
		if r.err != nil {
			return fmt.Errorf("burst request: %w", r.err)
		}
		switch {
		case r.resp.Coalesced:
			coalesced++
		case !r.resp.CacheHit:
			leaders++
		default:
			return fmt.Errorf("burst request came back cache_hit — a follower arrived after the leader finished")
		}
		canon, err := replayCanon(r.resp)
		if err != nil {
			return err
		}
		canons = append(canons, canon)
	}
	if leaders != 1 || coalesced != 3 {
		return fmt.Errorf("burst split %d leaders / %d coalesced, want 1 / 3", leaders, coalesced)
	}
	for _, canon := range canons[1:] {
		if canon != canons[0] {
			return fmt.Errorf("coalesced responses diverged:\n%s\nvs\n%s", canons[0], canon)
		}
	}

	// The counters tell the whole story: three misses (first aim, the
	// invalidated re-run, the burst leader), one hit, one invalidation,
	// three coalesced waiters — and the pipeline ran once per miss.
	if err := expectMetrics(ctx, d.cl,
		"biasmitd_result_cache_enabled 1",
		"biasmitd_result_cache_hits_total 1",
		"biasmitd_result_cache_misses_total 3",
		"biasmitd_result_cache_invalidations_total 1",
		"biasmitd_result_cache_coalesced_total 3",
	); err != nil {
		return err
	}

	return d.stopGracefully()
}

// cacheMetric scrapes one result-cache sample off /metrics.
func cacheMetric(ctx context.Context, d *daemon, name string) (float64, error) {
	text, err := d.cl.Metrics(ctx)
	if err != nil {
		return 0, fmt.Errorf("metrics: %w", err)
	}
	return metricValue(text, name)
}

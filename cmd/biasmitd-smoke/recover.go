package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/client"
	"biasmit/internal/persist"
)

// daemon is one biasmitd process the recover scenario owns: spawned
// against a log file (stdout+stderr), addressed through the ephemeral
// port parsed back out of that log.
type daemon struct {
	cmd     *exec.Cmd
	logPath string
	cl      *client.Client
}

// startDaemon boots bin with -addr 127.0.0.1:0 plus args and waits for
// its "listening on" line.
func startDaemon(ctx context.Context, bin, logPath string, args ...string) (*daemon, error) {
	f, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Stdout = f
	cmd.Stderr = f
	if err := cmd.Start(); err != nil {
		f.Close()
		return nil, fmt.Errorf("starting %s: %w", bin, err)
	}
	f.Close() // the child holds its own descriptor now

	addr, err := awaitListening(ctx, logPath)
	if err != nil {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, err
	}
	return &daemon{cmd: cmd, logPath: logPath, cl: client.New(addr)}, nil
}

// awaitListening polls the daemon's structured log for the listen
// address — the "listening" line's addr field.
func awaitListening(ctx context.Context, logPath string) (string, error) {
	ctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	const marker = `"msg":"listening","addr":"`
	for {
		data, _ := os.ReadFile(logPath)
		if i := strings.Index(string(data), marker); i >= 0 {
			rest := string(data)[i+len(marker):]
			if j := strings.IndexByte(rest, '"'); j >= 0 {
				return rest[:j], nil
			}
		}
		select {
		case <-ctx.Done():
			return "", fmt.Errorf("daemon never reported an address; log:\n%s", data)
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// kill is the crash under test: SIGKILL, no drain, no final compaction.
func (d *daemon) kill() {
	if d.cmd.Process != nil {
		_ = d.cmd.Process.Kill()
	}
	_ = d.cmd.Wait()
}

// stopGracefully sends SIGTERM and requires a clean drain.
func (d *daemon) stopGracefully() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signaling daemon: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exit after SIGTERM: %w", err)
		}
	case <-time.After(30 * time.Second):
		_ = d.cmd.Process.Kill()
		return fmt.Errorf("daemon did not exit within 30s of SIGTERM")
	}
	data, _ := os.ReadFile(d.logPath)
	if !strings.Contains(string(data), "drained cleanly") {
		return fmt.Errorf("daemon exited without draining cleanly; log:\n%s", data)
	}
	return nil
}

// canonicalMitigate strips the fields that legitimately differ between
// runs (elapsed time, profile age) and returns the deterministic rest as
// JSON for byte comparison across the restart.
func canonicalMitigate(out *api.MitigateResponse) (string, error) {
	canon := struct {
		Machine    string
		Benchmark  string
		Shots      int
		Seed       int64
		Layout     []int
		Swaps      int
		Outcomes   []api.OutcomeCount
		Distinct   int
		Metrics    *api.PolicyMetrics
		Strongest  string
		Candidates []api.AIMCandidate
	}{
		out.Machine, out.Benchmark, out.Shots, out.Seed, out.Layout, out.Swaps,
		out.Outcomes, out.DistinctOutcomes, out.Metrics, out.Strongest, out.Candidates,
	}
	raw, err := json.Marshal(canon)
	return string(raw), err
}

// recoverScenario is the crash-recovery gauntlet of the CI persistence
// job. It owns the daemon lifecycle end to end:
//
//  1. boot biasmitd with -data-dir, learn two profiles explicitly, and
//     record a canonical AIM run against one of them;
//  2. SIGKILL the daemon while a third (slow) characterization is in
//     flight, then append a torn half-frame to the WAL the way a crash
//     mid-append would;
//  3. restart from the same -data-dir and require: health ok, both
//     committed profiles warm with their original learned_at, the torn
//     tail reported dropped, zero re-characterizations, and the AIM run
//     (require_cached_profile) byte-identical to the pre-crash record;
//  4. SIGTERM and require a clean drain.
func recoverScenario(ctx context.Context, bin, dataDir string) error {
	if bin == "" || dataDir == "" {
		return fmt.Errorf("the recover scenario needs -daemon and -data-dir")
	}
	args := []string{
		"-data-dir", dataDir,
		"-profile-shots", "256",
		"-workers", "2",
		"-max-profiles", "8",
		// Keep compaction out of the way: this round-trip must recover
		// from the WAL alone.
		"-snapshot-interval", "1h",
	}

	d1, err := startDaemon(ctx, bin, filepath.Join(dataDir, "boot1.log"), args...)
	if err != nil {
		return err
	}
	defer d1.kill() // idempotent; the scenario kills it on purpose below

	// Learn two profiles. The response only returns once the journal
	// entry is fsynced, so both are committed the moment these calls
	// succeed. The 5-qubit brute profile is exactly the key a bv-4A AIM
	// run resolves to.
	qx4, err := d1.cl.Characterize(ctx, &api.CharacterizeRequest{Machine: "ibmqx4", Method: "brute", Qubits: 5})
	if err != nil {
		return fmt.Errorf("characterize ibmqx4: %w", err)
	}
	qx2, err := d1.cl.Characterize(ctx, &api.CharacterizeRequest{Machine: "ibmqx2", Method: "brute", Qubits: 2})
	if err != nil {
		return fmt.Errorf("characterize ibmqx2: %w", err)
	}

	aim := &api.MitigateRequest{
		Machine: "ibmqx4", Policy: "aim", Benchmark: "bv-4A",
		Shots: 600, Seed: 3, RequireCachedProfile: true,
	}
	before, err := d1.cl.Mitigate(ctx, aim)
	if err != nil {
		return fmt.Errorf("pre-crash aim run: %w", err)
	}
	if before.Profile == nil || !before.Profile.Cached {
		return fmt.Errorf("pre-crash aim run should hit the just-learned profile, got %+v", before.Profile)
	}
	wantCanon, err := canonicalMitigate(before)
	if err != nil {
		return err
	}

	// Fire a slow 14-qubit characterization and kill the daemon while it
	// is (most likely) still running — the crash lands mid-work, not at
	// a quiet point. Whether or not it commits before the SIGKILL, the
	// two profiles above are already durable.
	go func() {
		_, _ = d1.cl.Characterize(ctx, &api.CharacterizeRequest{Machine: "ibmq-melbourne", Method: "awct"})
	}()
	time.Sleep(150 * time.Millisecond)
	d1.kill()

	// Torn write: a frame header claiming 64 payload bytes followed by
	// only 5 of them, exactly what a crash mid-append leaves behind.
	torn := persist.AppendWALRecord(nil, make([]byte, 64))[:13]
	wal, err := os.OpenFile(filepath.Join(dataDir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("opening WAL to tear its tail: %w", err)
	}
	if _, err := wal.Write(torn); err != nil {
		wal.Close()
		return fmt.Errorf("appending torn frame: %w", err)
	}
	if err := wal.Close(); err != nil {
		return err
	}

	d2, err := startDaemon(ctx, bin, filepath.Join(dataDir, "boot2.log"), args...)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer d2.kill()

	h, err := d2.cl.Healthz(ctx)
	if err != nil {
		return fmt.Errorf("healthz after restart: %w", err)
	}
	if h.Status != "ok" {
		return fmt.Errorf("healthz status %q after restart, want ok", h.Status)
	}

	// Both committed profiles are warm with their original provenance.
	profs, err := d2.cl.Profiles(ctx)
	if err != nil {
		return fmt.Errorf("profiles after restart: %w", err)
	}
	for _, want := range []*api.CharacterizeResponse{qx4, qx2} {
		found := false
		for _, p := range profs.Profiles {
			if p.Machine == want.Profile.Machine && p.Width == want.Profile.Width && p.Method == want.Profile.Method {
				if !p.LearnedAt.Equal(want.Profile.LearnedAt) {
					return fmt.Errorf("recovered %s/%dq/%s learned_at %v, want the original %v",
						p.Machine, p.Width, p.Method, p.LearnedAt, want.Profile.LearnedAt)
				}
				found = true
			}
		}
		if !found {
			return fmt.Errorf("profile %s/%dq/%s not recovered; have %+v",
				want.Profile.Machine, want.Profile.Width, want.Profile.Method, profs.Profiles)
		}
	}

	// require_cached_profile makes re-characterization an error rather
	// than a fallback — "warm" is asserted, not hoped for — and the
	// mitigation output must be byte-identical to the pre-crash run.
	after, err := d2.cl.Mitigate(ctx, aim)
	if err != nil {
		return fmt.Errorf("post-restart aim run: %w", err)
	}
	if after.Profile == nil || !after.Profile.Cached {
		return fmt.Errorf("post-restart aim run should hit the recovered profile, got %+v", after.Profile)
	}
	if !after.Profile.LearnedAt.Equal(before.Profile.LearnedAt) {
		return fmt.Errorf("recovered aim profile learned_at %v, want the original %v",
			after.Profile.LearnedAt, before.Profile.LearnedAt)
	}
	gotCanon, err := canonicalMitigate(after)
	if err != nil {
		return err
	}
	if gotCanon != wantCanon {
		return fmt.Errorf("mitigation output changed across restart:\npre:  %s\npost: %s", wantCanon, gotCanon)
	}

	if err := expectMetrics(ctx, d2.cl,
		"biasmitd_persistence_enabled 1",
		"biasmitd_recovery_wal_tail_truncated 1",
		"biasmitd_profile_characterizations_total 0",
	); err != nil {
		return err
	}

	return d2.stopGracefully()
}

// Command biasmitd-smoke is the CI black-box prober for biasmitd,
// replacing the curl+grep scripts that used to live in the workflow: it
// drives a running daemon through the typed client (internal/client), so
// the smoke test exercises the same wire contract (internal/api) that
// real Go callers use, and a contract break fails to compile instead of
// failing to grep.
//
// Seven scenarios, selected with -scenario:
//
//	serve    health, an AIM profile-cache miss, a result-cache replay of
//	         the identical request, a reseeded profile-cache hit, a typed
//	         over-budget rejection, and the /metrics counters that prove
//	         it all happened.
//	cache    result-cache round-trip. Owns the daemon (-daemon,
//	         -data-dir as scratch): an identical request pair must
//	         replay byte-identical stored bytes (ElapsedMS included),
//	         a forced re-characterization must invalidate them, and a
//	         concurrent burst of identical requests must coalesce onto
//	         exactly one execution — all visible on /metrics.
//	breaker  two injected outages open the machine's breaker, the third
//	         request is rejected up front with breaker_open + a
//	         Retry-After cooldown, /healthz degrades honestly, and after
//	         the cooldown the half-open probe recovers the machine.
//	         Expects the daemon started with -chaos-fail-first 2
//	         -retry-attempts 1 -breaker-threshold 2.
//	recover  crash-recovery round-trip. Unlike the other two, this
//	         scenario manages the daemon itself (-daemon, -data-dir): it
//	         boots one, learns profiles, records an AIM run, SIGKILLs
//	         the daemon mid-characterization, corrupts the WAL tail the
//	         way a torn write would, restarts from the same -data-dir,
//	         and asserts the profiles serve warm — original learned_at,
//	         zero re-characterizations, byte-identical mitigation
//	         output — before stopping the second daemon gracefully.
//	overload admission-control round-trip. Owns the daemon (-daemon,
//	         -data-dir as scratch): boots it with the adaptive limiter,
//	         brownout, and a gray-slow chaos backend, storms the
//	         mitigate endpoint at several times capacity, and asserts
//	         excess load sheds with typed overloaded 503s + Retry-After
//	         within the queue timeout, AIM requests degrade to cheaper
//	         policies (ServedPolicy/BrownoutTier visible) instead of
//	         failing, mid-storm async jobs all complete once the storm
//	         passes, and full quality returns after sustained calm.
//	trace    observability round-trip. Owns the daemon (-daemon,
//	         -data-dir as scratch): boots it with a gray-slow chaos
//	         backend, runs one slow request under a client-minted trace
//	         ID, and asserts the same ID ties together the response
//	         envelope, the /debug/traces span breakdown (summing to the
//	         measured e2e latency within 10%), the slow-request
//	         exemplars on /metrics, and the structured stderr log line.
//	jobs     async-queue crash round-trip. Also owns the daemon
//	         (-daemon, -jobs-dir): submits jobs through POST /v1/jobs,
//	         requires a job's result byte-identical to the synchronous
//	         endpoint, cancels a queued job, SIGKILLs the daemon with a
//	         job mid-run, restarts from the same -jobs-dir, and asserts
//	         every job reaches exactly one terminal state — the
//	         interrupted job re-queued and deterministically re-executed.
//
// Exits 0 when every assertion holds, 1 with a message otherwise.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/backend"
	"biasmit/internal/client"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "daemon address (host:port or URL; serve/breaker scenarios)")
	scenario := flag.String("scenario", "serve", "round-trip to run: serve, cache, breaker, recover, jobs, trace, or overload")
	daemonBin := flag.String("daemon", "", "path to the biasmitd binary (recover scenario)")
	dataDir := flag.String("data-dir", "", "durable store directory handed to the daemon (recover scenario)")
	jobsDir := flag.String("jobs-dir", "", "durable job-queue directory handed to the daemon (jobs scenario)")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var err error
	switch *scenario {
	case "serve":
		err = serveScenario(ctx, client.New(*addr))
	case "cache":
		err = cacheScenario(ctx, *daemonBin, *dataDir)
	case "breaker":
		err = breakerScenario(ctx, client.New(*addr))
	case "recover":
		err = recoverScenario(ctx, *daemonBin, *dataDir)
	case "jobs":
		err = jobsScenario(ctx, *daemonBin, *jobsDir)
	case "trace":
		err = traceScenario(ctx, *daemonBin, *dataDir)
	case "overload":
		err = overloadScenario(ctx, *daemonBin, *dataDir)
	default:
		err = fmt.Errorf("unknown scenario %q", *scenario)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "smoke: FAIL (%s): %v\n", *scenario, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "smoke: ok (%s)\n", *scenario)
}

// serveScenario is the happy-path round-trip of the CI serve job,
// against a daemon running with its defaults — result cache included.
func serveScenario(ctx context.Context, cl *client.Client) error {
	h, err := cl.Healthz(ctx)
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if h.Status != "ok" {
		return fmt.Errorf("healthz status %q, want ok", h.Status)
	}

	// First AIM run: characterizes fresh (profile-cache miss) and lands
	// in the result cache.
	req := &api.MitigateRequest{
		Machine: "ibmqx4", Policy: "aim", Benchmark: "bv-4A", Shots: 2048, Seed: 7,
	}
	first, err := cl.Mitigate(ctx, req)
	if err != nil {
		return fmt.Errorf("first aim run: %w", err)
	}
	if first.Profile == nil || first.Profile.Cached {
		return fmt.Errorf("first aim run should characterize fresh, got profile %+v", first.Profile)
	}
	if first.CacheHit {
		return fmt.Errorf("first aim run flagged cache_hit")
	}

	// The identical request replays the stored bytes — including the
	// first run's Profile.Cached=false — with cache_hit set.
	second, err := cl.Mitigate(ctx, req)
	if err != nil {
		return fmt.Errorf("second aim run: %w", err)
	}
	if !second.CacheHit {
		return fmt.Errorf("identical aim run should hit the result cache, got %+v", second)
	}
	if second.Profile == nil || second.Profile.Cached {
		return fmt.Errorf("result-cache hit should replay the original profile metadata, got %+v", second.Profile)
	}

	// A different seed misses the result cache but reuses the profile.
	reseeded := *req
	reseeded.Seed = 8
	third, err := cl.Mitigate(ctx, &reseeded)
	if err != nil {
		return fmt.Errorf("reseeded aim run: %w", err)
	}
	if third.CacheHit {
		return fmt.Errorf("reseeded aim run flagged cache_hit")
	}
	if third.Profile == nil || !third.Profile.Cached {
		return fmt.Errorf("reseeded aim run should hit the profile cache, got profile %+v", third.Profile)
	}

	// An over-budget request must be the typed bad_budget rejection.
	_, err = cl.Mitigate(ctx, &api.MitigateRequest{
		Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A",
		Shots: backend.MaxShots + 1,
	})
	var ae *api.Error
	if !errors.As(err, &ae) {
		return fmt.Errorf("over-budget run: got %v (%T), want *api.Error", err, err)
	}
	if ae.Code != api.CodeBadBudget || ae.Status != 400 {
		return fmt.Errorf("over-budget run: code=%q status=%d, want bad_budget/400", ae.Code, ae.Status)
	}

	return expectMetrics(ctx, cl,
		"biasmitd_profile_cache_misses_total 1",
		"biasmitd_profile_cache_hits_total 1",
		"biasmitd_result_cache_enabled 1",
		"biasmitd_result_cache_hits_total 1",
		"biasmitd_result_cache_misses_total 2",
		`biasmitd_requests_total{route="/v1/mitigate",code="200"} 3`,
		`biasmitd_requests_total{route="/v1/mitigate",code="400"} 1`,
	)
}

// breakerScenario is the fault-injection round-trip of the CI chaos job.
func breakerScenario(ctx context.Context, cl *client.Client) error {
	req := &api.MitigateRequest{
		Machine: "ibmqx2", Policy: "baseline", Benchmark: "bv:01", Shots: 512, Seed: 1,
	}

	// Two injected outages: upstream_transient each, reaching the
	// breaker threshold.
	for i := 1; i <= 2; i++ {
		_, err := cl.Mitigate(ctx, req)
		var ae *api.Error
		if !errors.As(err, &ae) {
			return fmt.Errorf("outage %d: got %v (%T), want *api.Error", i, err, err)
		}
		if ae.Code != api.CodeUpstreamTransient || ae.Status != 503 {
			return fmt.Errorf("outage %d: code=%q status=%d, want upstream_transient/503", i, ae.Code, ae.Status)
		}
	}

	// Open breaker: rejected up front, typed, with a cooldown.
	_, err := cl.Mitigate(ctx, req)
	var ae *api.Error
	if !errors.As(err, &ae) {
		return fmt.Errorf("open breaker: got %v (%T), want *api.Error", err, err)
	}
	if ae.Code != api.CodeBreakerOpen || ae.Status != 503 {
		return fmt.Errorf("open breaker: code=%q status=%d, want breaker_open/503", ae.Code, ae.Status)
	}
	if ae.RetryAfter <= 0 {
		return fmt.Errorf("open breaker: no Retry-After cooldown on %v", ae)
	}

	// Health is honest while the machine is dark.
	h, err := cl.Healthz(ctx)
	if err != nil {
		return fmt.Errorf("healthz while open: %w", err)
	}
	if h.Status != "degraded" {
		return fmt.Errorf("healthz status %q while breaker open, want degraded", h.Status)
	}

	// Sleep out the advertised cooldown; the half-open probe then
	// succeeds (the fault budget is spent) and the machine serves again.
	select {
	case <-time.After(ae.RetryAfter + 500*time.Millisecond):
	case <-ctx.Done():
		return ctx.Err()
	}
	resp, err := cl.Mitigate(ctx, req)
	if err != nil {
		return fmt.Errorf("post-cooldown run: %w", err)
	}
	if resp.Policy != "baseline" {
		return fmt.Errorf("post-cooldown run: policy %q, want baseline", resp.Policy)
	}
	h, err = cl.Healthz(ctx)
	if err != nil {
		return fmt.Errorf("healthz after recovery: %w", err)
	}
	if h.Status != "ok" {
		return fmt.Errorf("healthz status %q after recovery, want ok", h.Status)
	}

	return expectMetrics(ctx, cl,
		"biasmitd_breaker_rejections_total 1",
		`biasmitd_breaker_transitions_total{machine="ibmqx2",to="open"} 1`,
		`biasmitd_breaker_transitions_total{machine="ibmqx2",to="closed"} 1`,
		`biasmitd_breaker_state{machine="ibmqx2"} 0`,
	)
}

// expectMetrics scrapes /metrics and requires every line to be present.
func expectMetrics(ctx context.Context, cl *client.Client, lines ...string) error {
	text, err := cl.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, want := range lines {
		if !strings.Contains(text, want) {
			return fmt.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	return nil
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/client"
)

// awaitJobResult waits a job out and decodes its mitigation result.
func awaitJobResult(ctx context.Context, cl *client.Client, id string) (*api.JobResponse, *api.MitigateResponse, error) {
	final, err := cl.WaitJob(ctx, id)
	if err != nil {
		return nil, nil, fmt.Errorf("waiting for job %s: %w", id, err)
	}
	if final.Job.State != api.JobStateDone {
		return nil, nil, fmt.Errorf("job %s ended %s (error %+v)", id, final.Job.State, final.Job.Error)
	}
	out := new(api.MitigateResponse)
	if err := json.Unmarshal(final.Result, out); err != nil {
		return nil, nil, fmt.Errorf("decoding job %s result: %w", id, err)
	}
	return final, out, nil
}

// submitBaseline enqueues one baseline mitigation job.
func submitBaseline(ctx context.Context, cl *client.Client, req *api.MitigateRequest) (string, error) {
	resp, err := cl.SubmitJob(ctx, &api.JobSubmitRequest{Type: api.JobTypeMitigate, Mitigate: req})
	if err != nil {
		return "", fmt.Errorf("submitting job: %w", err)
	}
	if resp.Job.State != api.JobStateQueued {
		return "", fmt.Errorf("submitted job %s born %q, want queued", resp.Job.ID, resp.Job.State)
	}
	return resp.Job.ID, nil
}

// jobsScenario is the async-queue crash round-trip of the CI serve job.
// It owns the daemon lifecycle:
//
//  1. boot biasmitd with -jobs-dir and one job worker, run a synchronous
//     mitigation as the reference, then run the same request through the
//     queue and require the job's result byte-identical to it;
//  2. park a slow job on the worker, queue two more behind it, cancel
//     one while it is still queued, and SIGKILL the daemon while the
//     slow job is mid-run;
//  3. restart from the same -jobs-dir and require: every job recovered
//     (the done one with its result bytes intact, the cancelled one
//     still cancelled), the mid-run job re-queued and re-executed to
//     the exact bytes a synchronous run produces, and the recovery
//     metrics telling that story;
//  4. SIGTERM and require a clean drain.
func jobsScenario(ctx context.Context, bin, jobsDir string) error {
	if bin == "" || jobsDir == "" {
		return fmt.Errorf("the jobs scenario needs -daemon and -jobs-dir")
	}
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return err
	}
	args := []string{
		"-jobs-dir", jobsDir,
		"-job-workers", "1",
		"-workers", "2",
		"-profile-shots", "256",
		// This scenario proves the queue re-executes work to the exact
		// bytes the synchronous path computes; a result-cache hit would
		// hand both paths the same stored bytes and prove nothing.
		"-result-cache=false",
	}

	d1, err := startDaemon(ctx, bin, filepath.Join(jobsDir, "boot1.log"), args...)
	if err != nil {
		return err
	}
	defer d1.kill() // idempotent; the scenario kills it on purpose below

	// The synchronous path is the reference the queue must reproduce.
	fastReq := &api.MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 2048, Seed: 11}
	syncOut, err := d1.cl.Mitigate(ctx, fastReq)
	if err != nil {
		return fmt.Errorf("sync reference run: %w", err)
	}
	wantCanon, err := canonicalMitigate(syncOut)
	if err != nil {
		return err
	}

	doneID, err := submitBaseline(ctx, d1.cl, fastReq)
	if err != nil {
		return err
	}
	_, asyncOut, err := awaitJobResult(ctx, d1.cl, doneID)
	if err != nil {
		return err
	}
	gotCanon, err := canonicalMitigate(asyncOut)
	if err != nil {
		return err
	}
	if gotCanon != wantCanon {
		return fmt.Errorf("async result diverged from the synchronous path:\nsync:  %s\nasync: %s", wantCanon, gotCanon)
	}

	// Park a slow job on the single worker, then stack two behind it.
	// The slow job is submitted under a client-minted trace ID: the crash
	// below must not orphan it — the recovered job carries the same ID.
	slowReq := &api.MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 1 << 17, Seed: 21}
	traceCtx, slowTrace := client.WithTraceID(ctx, "")
	slowID, err := submitBaseline(traceCtx, d1.cl, slowReq)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		j, err := d1.cl.Job(ctx, slowID, 0)
		if err != nil {
			return fmt.Errorf("polling slow job: %w", err)
		}
		if j.Job.State == api.JobStateRunning {
			break
		}
		if j.Job.State != api.JobStateQueued {
			return fmt.Errorf("slow job reached %s before the crash; raise its shots", j.Job.State)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("slow job never started")
		}
		time.Sleep(20 * time.Millisecond)
	}
	queuedReq := &api.MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 2048, Seed: 31}
	queuedID, err := submitBaseline(ctx, d1.cl, queuedReq)
	if err != nil {
		return err
	}
	victimID, err := submitBaseline(ctx, d1.cl, fastReq)
	if err != nil {
		return err
	}
	cancelled, err := d1.cl.CancelJob(ctx, victimID)
	if err != nil {
		return fmt.Errorf("cancelling queued job: %w", err)
	}
	if cancelled.Job.State != api.JobStateCancelled {
		return fmt.Errorf("queued job %s is %s after cancel, want cancelled", victimID, cancelled.Job.State)
	}

	// The crash under test: SIGKILL with one job mid-run and one queued.
	d1.kill()

	d2, err := startDaemon(ctx, bin, filepath.Join(jobsDir, "boot2.log"), args...)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer d2.kill()

	// The interrupted job was re-queued and re-executes to the same
	// bytes the synchronous path produces — the seeds are in the
	// payload, so the re-run is deterministic.
	slowFinal, slowOut, err := awaitJobResult(ctx, d2.cl, slowID)
	if err != nil {
		return fmt.Errorf("re-executed job: %w", err)
	}
	if slowFinal.Job.Requeues != 1 {
		return fmt.Errorf("re-executed job requeues %d, want 1", slowFinal.Job.Requeues)
	}
	// The trace ID minted before the crash survived the journal
	// round-trip: it is on the recovered job and in its result envelope.
	if slowFinal.Job.TraceID != slowTrace {
		return fmt.Errorf("re-executed job trace_id %q, want the pre-crash %q", slowFinal.Job.TraceID, slowTrace)
	}
	if slowOut.TraceID != slowTrace {
		return fmt.Errorf("re-executed job result trace_id %q, want the pre-crash %q", slowOut.TraceID, slowTrace)
	}
	slowSync, err := d2.cl.Mitigate(ctx, slowReq)
	if err != nil {
		return fmt.Errorf("sync reference for the re-executed job: %w", err)
	}
	slowWant, err := canonicalMitigate(slowSync)
	if err != nil {
		return err
	}
	slowGot, err := canonicalMitigate(slowOut)
	if err != nil {
		return err
	}
	if slowGot != slowWant {
		return fmt.Errorf("re-executed job diverged from the synchronous path:\nsync:  %s\nasync: %s", slowWant, slowGot)
	}

	// The queued job survived the crash and ran exactly once.
	queuedFinal, _, err := awaitJobResult(ctx, d2.cl, queuedID)
	if err != nil {
		return fmt.Errorf("recovered queued job: %w", err)
	}
	if queuedFinal.Job.Requeues != 0 || queuedFinal.Job.Attempts != 1 {
		return fmt.Errorf("recovered queued job ran %d times with %d requeues, want exactly once",
			queuedFinal.Job.Attempts, queuedFinal.Job.Requeues)
	}

	// Terminal jobs recovered as-is: the done job's result bytes
	// survived the journal round-trip, the cancelled one stayed dead.
	doneAfter, err := d2.cl.Job(ctx, doneID, 0)
	if err != nil {
		return fmt.Errorf("recovered done job: %w", err)
	}
	if doneAfter.Job.State != api.JobStateDone {
		return fmt.Errorf("done job recovered as %s", doneAfter.Job.State)
	}
	recovered := new(api.MitigateResponse)
	if err := json.Unmarshal(doneAfter.Result, recovered); err != nil {
		return fmt.Errorf("decoding recovered result: %w", err)
	}
	recoveredCanon, err := canonicalMitigate(recovered)
	if err != nil {
		return err
	}
	if recoveredCanon != wantCanon {
		return fmt.Errorf("done job's result changed across restart:\npre:  %s\npost: %s", wantCanon, recoveredCanon)
	}
	victimAfter, err := d2.cl.Job(ctx, victimID, 0)
	if err != nil {
		return fmt.Errorf("recovered cancelled job: %w", err)
	}
	if victimAfter.Job.State != api.JobStateCancelled {
		return fmt.Errorf("cancelled job recovered as %s", victimAfter.Job.State)
	}

	if err := expectMetrics(ctx, d2.cl,
		"biasmitd_jobs_persistence_enabled 1",
		// Two live jobs survived the crash (the terminal ones are
		// reconstructed too, but only live ones count here), one of them
		// re-queued from mid-run.
		"biasmitd_jobs_recovered 2",
		"biasmitd_jobs_recovered_requeued 1",
		`biasmitd_jobs_depth{state="queued"} 0`,
		`biasmitd_jobs_depth{state="running"} 0`,
	); err != nil {
		return err
	}

	return d2.stopGracefully()
}

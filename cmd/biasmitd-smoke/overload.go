package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"biasmit/internal/api"
)

// stormStats is what the concurrent load loop observed, under one lock.
type stormStats struct {
	mu          sync.Mutex
	successes   int
	degraded    int // successes served below the requested policy
	sheds       int
	shedRetry   int // sheds that carried a Retry-After cooldown
	maxShedWait time.Duration
	unexpected  []string
}

func (st *stormStats) record(resp *api.MitigateResponse, err error, waited time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err == nil {
		st.successes++
		if resp.ServedPolicy != resp.Policy {
			st.degraded++
		}
		return
	}
	var ae *api.Error
	if errors.As(err, &ae) && ae.Code == api.CodeOverloaded {
		st.sheds++
		if ae.RetryAfter > 0 {
			st.shedRetry++
		}
		if waited > st.maxShedWait {
			st.maxShedWait = waited
		}
		return
	}
	if len(st.unexpected) < 5 {
		st.unexpected = append(st.unexpected, err.Error())
	}
}

// overloadScenario is the overload-control round-trip of the CI chaos
// job. It owns the daemon lifecycle:
//
//  1. boot biasmitd with the adaptive limiter, brownout, and a retry
//     budget, plus a gray-slow chaos backend (every run succeeds
//     slowly) so a modest client fleet saturates it;
//  2. pre-warm the AIM profile, then storm the mitigate endpoint at
//     several times capacity for a few seconds while async jobs are
//     queued mid-storm. Require: excess requests shed with the typed
//     overloaded 503 + Retry-After within the queue timeout (shed, not
//     queued behind stuck work), goodput continues, and the brownout
//     visibly degrades AIM requests (ServedPolicy below Policy, tier
//     in the response);
//  3. stop the load and require full recovery: tier back to 0 with AIM
//     served as AIM, /healthz ok, every mid-storm job reaching done —
//     shed attempts retried within the job's budget, zero jobs lost;
//  4. check the limiter/brownout counters on /metrics, then SIGTERM
//     and require a clean drain.
func overloadScenario(ctx context.Context, bin, dir string) error {
	if bin == "" || dir == "" {
		return fmt.Errorf("the overload scenario needs -daemon and -data-dir (scratch space)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	d, err := startDaemon(ctx, bin, filepath.Join(dir, "overload.log"),
		// The recovery probe below reuses the pre-warm request verbatim;
		// a result-cache hit would replay the full-quality pre-storm
		// bytes and fake the recovery. This scenario measures admission
		// control, so the cache stays off.
		"-result-cache=false",
		"-workers", "1",
		"-max-jobs", "2",
		"-job-workers", "1",
		"-profile-shots", "128",
		"-max-inflight-auto",
		"-queue-timeout", "50ms",
		"-brownout",
		"-brownout-dwell-down", "400ms",
		"-brownout-dwell-up", "400ms",
		"-retry-budget", "0.2",
		"-chaos-gray-slow-rate", "1",
		"-chaos-gray-slow", "150ms",
	)
	if err != nil {
		return err
	}
	defer d.kill()

	// Pre-warm the AIM profile so the storm measures admission control,
	// not a one-off characterization.
	aimReq := &api.MitigateRequest{Machine: "ibmqx4", Policy: "aim", Benchmark: "bv-4A", Shots: 512, Seed: 7}
	if _, err := d.cl.Mitigate(ctx, aimReq); err != nil {
		return fmt.Errorf("pre-warm aim run: %w", err)
	}

	// The storm: 12 clients against ~2 slots of gray-slow capacity.
	st := new(stormStats)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for n := int64(0); ; n++ {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				default:
				}
				req := *aimReq
				req.Seed = seed*1000 + n
				start := time.Now()
				resp, err := d.cl.Mitigate(ctx, &req)
				st.record(resp, err, time.Since(start))
			}
		}(int64(i + 1))
	}

	// Mid-storm, queue async jobs. Their executions are the lowest
	// admission class, so they shed first — and must survive anyway by
	// retrying within their attempt budget once the storm passes.
	time.Sleep(500 * time.Millisecond)
	jobReq := &api.MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 512, Seed: 99}
	var jobIDs []string
	for i := 0; i < 4; i++ {
		r := *jobReq
		r.Seed += int64(i)
		resp, err := d.cl.SubmitJob(ctx, &api.JobSubmitRequest{
			Type: api.JobTypeMitigate, Mitigate: &r, MaxAttempts: 20,
		})
		if err != nil {
			return fmt.Errorf("submitting mid-storm job %d: %w", i, err)
		}
		jobIDs = append(jobIDs, resp.Job.ID)
	}
	time.Sleep(3500 * time.Millisecond)
	close(stop)
	wg.Wait()

	st.mu.Lock() // the workers are done; hold the lock across the checks
	defer st.mu.Unlock()
	if len(st.unexpected) > 0 {
		return fmt.Errorf("storm produced non-overload errors: %s", strings.Join(st.unexpected, "; "))
	}
	if st.successes == 0 {
		return fmt.Errorf("storm produced zero goodput (%d sheds)", st.sheds)
	}
	if st.sheds == 0 {
		return fmt.Errorf("storm at ~6x capacity shed nothing (%d successes) — the limiter is not gating", st.successes)
	}
	if st.shedRetry == 0 {
		return fmt.Errorf("none of %d sheds carried a Retry-After cooldown", st.sheds)
	}
	// Shed, not queued: a shed response must come back around the queue
	// timeout, far under the multi-second backlog it refused to join.
	if st.maxShedWait > 3*time.Second {
		return fmt.Errorf("slowest shed took %v — requests queued behind stuck work instead of shedding", st.maxShedWait)
	}
	if st.degraded == 0 {
		return fmt.Errorf("brownout never engaged: %d successes all served at full quality (%d sheds)",
			st.successes, st.sheds)
	}

	// Recovery: with the load gone, probes must step the tier back to
	// full quality. Each probe is a calm observation; the dwell is
	// 400ms per step, so a few seconds suffice.
	recovered := false
	recoverDeadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(recoverDeadline) {
		resp, err := d.cl.Mitigate(ctx, aimReq)
		if err == nil && resp.ServedPolicy == "aim" && resp.BrownoutTier == 0 {
			recovered = true
			break
		}
		select {
		case <-time.After(250 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if !recovered {
		return fmt.Errorf("brownout never stepped back to full quality after the storm")
	}

	// Zero lost jobs: every mid-storm job reaches done, its shed
	// attempts retried away.
	for _, id := range jobIDs {
		final, err := d.cl.WaitJob(ctx, id)
		if err != nil {
			return fmt.Errorf("waiting out mid-storm job %s: %w", id, err)
		}
		if final.Job.State != api.JobStateDone {
			return fmt.Errorf("mid-storm job %s ended %s (error %+v) — lost to the storm",
				id, final.Job.State, final.Job.Error)
		}
	}

	h, err := d.cl.Healthz(ctx)
	if err != nil {
		return fmt.Errorf("healthz after recovery: %w", err)
	}
	if h.Status != "ok" || h.BrownoutTier != 0 {
		return fmt.Errorf("healthz after recovery: status=%q tier=%d, want ok at tier 0", h.Status, h.BrownoutTier)
	}

	text, err := d.cl.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, want := range []string{
		"biasmitd_overload_limiter_enabled 1",
		`biasmitd_jobs_depth{state="queued"} 0`,
		`biasmitd_jobs_depth{state="running"} 0`,
	} {
		if !strings.Contains(text, want) {
			return fmt.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	for _, name := range []string{
		`biasmitd_overload_queue_timeouts_total{class="mitigate"}`,
		"biasmitd_brownout_steps_down_total",
		"biasmitd_brownout_steps_up_total",
	} {
		v, err := metricValue(text, name)
		if err != nil {
			return err
		}
		if v <= 0 {
			return fmt.Errorf("metric %s = %g, want > 0 after the storm", name, v)
		}
	}

	return d.stopGracefully()
}

// metricValue pulls one sample's value out of the Prometheus text
// exposition.
func metricValue(text, name string) (float64, error) {
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name)
		if !ok || !strings.HasPrefix(rest, " ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, fmt.Errorf("metric %s has unparseable value %q", name, rest)
		}
		return v, nil
	}
	return 0, fmt.Errorf("metric %s absent from /metrics", name)
}

// Command paperfigs regenerates every table and figure of the paper's
// evaluation on the simulated machines and prints them with the paper's
// published values for comparison. Use -scale to trade fidelity for
// runtime and -only to select specific experiments.
//
// Usage:
//
//	paperfigs                 # everything at the paper's trial counts
//	paperfigs -scale 0.1      # 10% of the trial budget (quick look)
//	paperfigs -only fig1,tab5
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"biasmit/internal/backend"
	"biasmit/internal/chaos"
	"biasmit/internal/experiments"
	"biasmit/internal/persist"
	"biasmit/internal/resilient"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfigs: ")

	scale := flag.Float64("scale", 1.0, "fraction of the paper's trial counts")
	seed := flag.Int64("seed", 2019, "random seed")
	only := flag.String("only", "", "comma-separated subset: fig1,tab1,fig3,fig4,fig5,fig6,tab2,tab3,fig7,fig8,fig9,suite,fig11,fig13,fig15,repeat,ext,alloc,sched,scale,zne (suite = fig10+fig14+tab5)")
	workers := flag.Int("workers", 0, "independent circuit executions run concurrently (0 = all CPUs, 1 = sequential; results are identical either way)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	outFile := flag.String("out", "", "also save the full report to this file (written atomically on success)")
	chaosPlan := chaos.Flags(flag.CommandLine)
	retry := resilient.Flags(flag.CommandLine)
	flag.Parse()
	if err := chaosPlan.Validate(); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Workers: *workers}
	if chaosPlan.Enabled() || retry.SliceShots > 0 {
		// Only replace the default execution path when the flags ask for
		// it, so the BIASMIT_CHAOS_* environment keeps working and the
		// fault-free flag defaults stay byte-identical to older builds.
		cfg.Runner = resilient.New(chaosPlan.Wrap(backend.RunContext), *retry).Run
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}
	want := func(name string) bool { return len(selected) == 0 || selected[name] }

	var buf bytes.Buffer
	w := io.Writer(os.Stdout)
	if *outFile != "" {
		w = io.MultiWriter(os.Stdout, &buf)
	}

	run := func(name, title string, f func() (string, error)) {
		if !want(name) {
			return
		}
		start := time.Now()
		out, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(w, "==== %s — %s (%.1fs) ====\n%s\n", strings.ToUpper(name), title, time.Since(start).Seconds(), out)
	}

	run("fig1", "Invert-and-Measure on IBM-Q5 (motivating example)", func() (string, error) {
		r, err := experiments.Figure1(ctx, cfg)
		return r.Render(), err
	})
	run("tab1", "measurement error rates per machine", func() (string, error) {
		r, err := experiments.Table1(ctx, cfg)
		return r.Render(), err
	})
	run("fig3", "impact of errors on BV-2 output", func() (string, error) {
		r, err := experiments.Figure3(ctx, cfg)
		return r.Render(), err
	})
	run("fig4", "ibmqx2 relative BMS, direct vs equal superposition", func() (string, error) {
		r, err := experiments.Figure4(ctx, cfg)
		return r.Render(), err
	})
	run("fig5", "melbourne relative BMS by Hamming weight (10 qubits)", func() (string, error) {
		r, err := experiments.Figure5(ctx, cfg)
		return r.Render(), err
	})
	run("fig6", "GHZ-5 output distribution on melbourne", func() (string, error) {
		r, err := experiments.Figure6(ctx, cfg)
		return r.Render(), err
	})
	run("tab2", "impact of measurement bias on QAOA (graphs A-E)", func() (string, error) {
		r, err := experiments.Table2(ctx, cfg)
		return r.Render(), err
	})
	run("tab3", "benchmark characteristics", func() (string, error) {
		return experiments.RenderTable3(experiments.Table3()), nil
	})
	run("fig7", "SIM worked example (paper's published numbers)", func() (string, error) {
		return experiments.Figure7(cfg).Render(), nil
	})
	run("fig8", "SIM mode-count comparison on a mid-weight state", func() (string, error) {
		r, err := experiments.Figure8(ctx, cfg)
		return r.Render(), err
	})
	run("fig9", "QAOA graph-D on melbourne: baseline vs SIM", func() (string, error) {
		r, err := experiments.Figure9(ctx, cfg)
		return r.Render(), err
	})
	if want("suite") || want("fig10") || want("fig14") || want("tab5") {
		start := time.Now()
		suite, err := experiments.RunSuite(ctx, cfg)
		if err != nil {
			log.Fatalf("suite: %v", err)
		}
		elapsed := time.Since(start).Seconds()
		fmt.Fprintf(w, "==== FIG10 — SIM PST improvement (%.1fs for the whole suite) ====\n%s\n", elapsed, suite.Figure10())
		fmt.Fprintf(w, "==== FIG14 — SIM and AIM PST improvement ====\n%s\n", suite.Figure14())
		fmt.Fprintf(w, "==== TAB5 — inference strength per policy ====\n%s\n", suite.Table5())
		sim, aim := suite.MeanImprovement()
		fmt.Fprintf(w, "mean PST improvement: SIM %.2fx, AIM %.2fx (paper: up to 2X and 3X)\n\n", sim, aim)
	}
	run("fig11", "ibmqx4 arbitrary bias and its effect on BV", func() (string, error) {
		r, err := experiments.Figure11(ctx, cfg)
		return r.Render(), err
	})
	run("fig13", "BV on ibmqx4 for all keys: baseline vs SIM vs AIM", func() (string, error) {
		r, err := experiments.Figure13(ctx, cfg)
		return r.Render(), err
	})
	run("fig15", "RBMS characterization validation (direct/ESCT/AWCT)", func() (string, error) {
		r, err := experiments.Figure15(ctx, cfg)
		return r.Render(), err
	})
	run("repeat", "bias repeatability across calibration cycles (§6.1)", func() (string, error) {
		r, err := experiments.Repeatability(ctx, cfg)
		return r.Render(), err
	})
	run("ext", "extension: Invert-and-Measure vs confusion-matrix mitigation", func() (string, error) {
		r, err := experiments.MitigationComparison(ctx, cfg)
		return r.Render(), err
	})
	run("alloc", "ablation: naive vs variability-aware qubit allocation", func() (string, error) {
		r, err := experiments.AllocationComparison(ctx, cfg)
		return r.Render(), err
	})
	run("sched", "ablation: gate-time vs schedule-aware decoherence", func() (string, error) {
		r, err := experiments.ScheduleAblation(ctx, cfg)
		return r.Render(), err
	})
	run("scale", "scaling: mitigation stack on a synthetic 16-qubit machine", func() (string, error) {
		r, err := experiments.Scaling(ctx, cfg)
		return r.Render(), err
	})
	run("zne", "extension: zero-noise extrapolation composed with SIM", func() (string, error) {
		r, err := experiments.ZNEComparison(ctx, cfg)
		return r.Render(), err
	})

	if *outFile != "" {
		err := persist.WriteFileAtomic(*outFile, func(f io.Writer) error {
			_, err := f.Write(buf.Bytes())
			return err
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report saved to %s\n", *outFile)
	}
}

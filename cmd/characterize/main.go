// Command characterize learns a machine's Relative Basis Measurement
// Strength (RBMS) profile using the techniques of the paper's Appendix A
// and prints the per-state strengths in Hamming-weight order.
//
// Usage:
//
//	characterize -machine ibmqx4 -method brute -shots 16000
//	characterize -machine ibmq-melbourne -method awct -qubits 10 -window 4 -overlap 2
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/chaos"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/persist"
	"biasmit/internal/report"
	"biasmit/internal/resilient"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")

	machineName := flag.String("machine", "ibmqx4", "machine model: ibmqx2, ibmqx4, ibmq-melbourne")
	method := flag.String("method", "brute", "characterization method: brute, esct, awct")
	qubits := flag.Int("qubits", 0, "register width (default: first min(machine,5) qubits for brute, machine size otherwise)")
	layoutFlag := flag.String("layout", "", "comma-separated physical qubits (overrides -qubits)")
	shots := flag.Int("shots", 16000, "trials per state (brute) / per window (awct) / total (esct)")
	window := flag.Int("window", 4, "AWCT window size")
	overlap := flag.Int("overlap", 2, "AWCT window overlap")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "save the learned profile to this file (JSON)")
	crosstalk := flag.Bool("crosstalk", false, "also measure the readout-crosstalk matrix")
	workers := flag.Int("workers", 0, "independent circuit executions run concurrently (0 = all CPUs, 1 = sequential; results are identical either way)")
	timeout := flag.Duration("timeout", time.Duration(0), "abort after this duration (0 = no limit)")
	chaosPlan := chaos.Flags(flag.CommandLine)
	retry := resilient.Flags(flag.CommandLine)
	flag.Parse()
	if err := chaosPlan.Validate(); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	dev, ok := device.ByName(*machineName)
	if !ok {
		log.Fatalf("unknown machine %q", *machineName)
	}

	var layout []int
	switch {
	case *layoutFlag != "":
		for _, part := range strings.Split(*layoutFlag, ",") {
			q, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				log.Fatalf("bad layout entry %q: %v", part, err)
			}
			layout = append(layout, q)
		}
	default:
		width := *qubits
		if width == 0 {
			width = dev.NumQubits
			if *method == "brute" && width > 5 {
				width = 5
			}
		}
		if width > dev.NumQubits {
			log.Fatalf("machine %s has only %d qubits", dev.Name, dev.NumQubits)
		}
		for q := 0; q < width; q++ {
			layout = append(layout, q)
		}
	}

	m := core.NewMachine(dev)
	m.Workers = *workers
	m.Run = resilient.New(chaosPlan.Wrap(backend.RunContext), *retry).Run
	prof := &core.Profiler{Machine: m, Layout: layout}
	var (
		rbms core.RBMS
		err  error
	)
	switch *method {
	case "brute":
		rbms, err = prof.BruteForceContext(ctx, *shots, *seed)
	case "esct":
		rbms, err = prof.ESCTContext(ctx, *shots, *seed)
	case "awct":
		rbms, err = prof.AWCTContext(ctx, *window, *overlap, *shots, *seed)
	default:
		log.Fatalf("unknown method %q", *method)
	}
	if err != nil {
		log.Fatal(err)
	}

	rel := rbms.Relative()
	fmt.Printf("%s RBMS on %s, layout %v (%s)\n\n", *method, dev.Name, layout, flagSummary(*method, *shots, *window, *overlap))
	if rbms.Width <= 8 {
		var labels []string
		var values []float64
		for _, b := range bitstring.AllByHammingWeight(rbms.Width) {
			labels = append(labels, b.String())
			values = append(values, rel.Of(b))
		}
		fmt.Fprint(os.Stdout, report.Bars(labels, values, 40))
	} else {
		// Too many states to list: summarize by Hamming weight.
		sums := make([]float64, rbms.Width+1)
		counts := make([]int, rbms.Width+1)
		for _, b := range bitstring.All(rbms.Width) {
			w := b.HammingWeight()
			sums[w] += rel.Of(b)
			counts[w]++
		}
		var labels []string
		var values []float64
		for w := range sums {
			labels = append(labels, fmt.Sprintf("weight %2d", w))
			values = append(values, sums[w]/float64(counts[w]))
		}
		fmt.Fprint(os.Stdout, report.Bars(labels, values, 40))
	}
	corr, err := rbms.HammingCorrelation()
	if err == nil {
		fmt.Printf("\ncorrelation with Hamming weight: %.3f\n", corr)
	}
	fmt.Printf("strongest state: %v\n", rbms.StrongestState())

	if *crosstalk {
		x, err := prof.Crosstalk(*shots, *seed+1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nreadout crosstalk (excess flip probability when the trigger is excited):")
		pairs := x.SignificantPairs(0.015)
		if len(pairs) == 0 {
			fmt.Println("  none above 1.5% — readout errors look independent")
		}
		for _, p := range pairs {
			fmt.Printf("  trigger q%d -> target q%d: %+.3f\n", p.Trigger, p.Target, p.Excess)
		}
	}

	if *out != "" {
		// The same persist.ProfileRecord serialization biasmitd's WAL and
		// snapshots use, so this file is importable with `biasmitd
		// -preload` (Shots and LearnedAt carry the provenance the store
		// needs for TTL accounting).
		rec := persist.ProfileRecord{
			Machine:   dev.Name,
			Layout:    layout,
			Method:    *method,
			Width:     rbms.Width,
			Strength:  rbms.Strength,
			Shots:     *shots,
			LearnedAt: time.Now().UTC(),
		}
		err := persist.WriteFileAtomic(*out, func(w io.Writer) error {
			return persist.SaveProfile(w, rec)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("profile saved to %s\n", *out)
	}
}

func flagSummary(method string, shots, window, overlap int) string {
	if method == "awct" {
		return fmt.Sprintf("window %d, overlap %d, %d shots/window", window, overlap, shots)
	}
	return fmt.Sprintf("%d shots", shots)
}

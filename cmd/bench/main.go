// Command bench is the performance-regression harness: it runs the
// hot-path micro-benchmark suite (internal/benchsuite) in-process via
// testing.Benchmark, cross-checks that the fast and naive paths still
// agree before recording anything, and emits a machine-readable report
// (BENCH_PR4.json) with ns/op, allocs/op, and the fast-vs-naive figures
// of merit.
//
// Against a committed baseline (-baseline), the harness enforces the
// allocation budget: any benchmark whose allocs/op grows beyond 2× its
// baseline fails the run (allocation counts are deterministic, so this
// gate is machine-independent). Timing deltas are reported but never
// block — CI machines are too noisy for wall-clock gates.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_PR4.json             # record
//	go run ./cmd/bench -out new.json -baseline BENCH_PR4.json  # gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"biasmit/internal/benchsuite"
)

// Result is one benchmark's recorded numbers.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Merit is a fast-vs-naive figure of merit at one width.
type Merit struct {
	Name       string  `json:"name"`
	Speedup    float64 `json:"speedup"`     // naive ns/op ÷ fast ns/op
	AllocRatio float64 `json:"alloc_ratio"` // naive allocs/op ÷ fast allocs/op
}

// Report is the BENCH_PR4.json schema.
type Report struct {
	Schema     string   `json:"schema"`
	GoVersion  string   `json:"go_version"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	RecordedAt string   `json:"recorded_at"`
	Benchmarks []Result `json:"benchmarks"`
	Merits     []Merit  `json:"figures_of_merit"`
}

// allocBudgetFactor is the blocking regression gate: a benchmark may not
// allocate more than this many times its baseline allocs/op.
const allocBudgetFactor = 2.0

func main() {
	out := flag.String("out", "BENCH_PR4.json", "path to write the report")
	baseline := flag.String("baseline", "", "committed report to gate allocs/op against (empty = record only)")
	flag.Parse()

	// Refuse to benchmark paths that disagree: a fast wrong answer is
	// not a result worth recording.
	for _, w := range benchsuite.Widths {
		if err := benchsuite.Verify(w); err != nil {
			fatalf("fast path disagrees with naive path: %v", err)
		}
	}
	logf("fast path verified against naive path at widths %v", benchsuite.Widths)

	report := Report{
		Schema:     "biasmit-bench/1",
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
	}

	record := func(name string, fn func(b *testing.B)) Result {
		r := testing.Benchmark(fn)
		res := Result{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		logf("%-34s %14.0f ns/op %10d allocs/op %12d B/op", name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
		report.Benchmarks = append(report.Benchmarks, res)
		return res
	}
	merit := func(name string, fast, naive Result) {
		m := Merit{Name: name, Speedup: naive.NsPerOp / fast.NsPerOp}
		if fast.AllocsPerOp > 0 {
			m.AllocRatio = float64(naive.AllocsPerOp) / float64(fast.AllocsPerOp)
		} else {
			m.AllocRatio = float64(naive.AllocsPerOp)
		}
		logf("%-34s %.2fx faster, %.1fx fewer allocs", name, m.Speedup, m.AllocRatio)
		report.Merits = append(report.Merits, m)
	}

	for _, w := range benchsuite.Widths {
		w := w
		fast := record(fmt.Sprintf("RunShots/width=%d/fast", w), func(b *testing.B) { benchsuite.RunShots(b, w, false) })
		naive := record(fmt.Sprintf("RunShots/width=%d/naive", w), func(b *testing.B) { benchsuite.RunShots(b, w, true) })
		merit(fmt.Sprintf("RunShots/width=%d", w), fast, naive)
	}
	{
		fast := record("RunShotsTrialLoop/width=16/fast", func(b *testing.B) { benchsuite.RunShotsTrialLoop(b, 16, false) })
		naive := record("RunShotsTrialLoop/width=16/naive", func(b *testing.B) { benchsuite.RunShotsTrialLoop(b, 16, true) })
		merit("RunShotsTrialLoop/width=16", fast, naive)
	}
	{
		fast := record("RunShotsParallel/width=16/fast", func(b *testing.B) { benchsuite.RunShotsParallel(b, 16, false) })
		naive := record("RunShotsParallel/width=16/naive", func(b *testing.B) { benchsuite.RunShotsParallel(b, 16, true) })
		merit("RunShotsParallel/width=16", fast, naive)
	}
	for _, w := range benchsuite.Widths {
		w := w
		fast := record(fmt.Sprintf("Sample/width=%d/cdf", w), func(b *testing.B) { benchsuite.Sample(b, w, true) })
		naive := record(fmt.Sprintf("Sample/width=%d/linear", w), func(b *testing.B) { benchsuite.Sample(b, w, false) })
		merit(fmt.Sprintf("Sample/width=%d", w), fast, naive)
	}
	{
		fast := record("ReadoutApply/compiled", func(b *testing.B) { benchsuite.ReadoutApply(b, true) })
		naive := record("ReadoutApply/naive", func(b *testing.B) { benchsuite.ReadoutApply(b, false) })
		merit("ReadoutApply", fast, naive)
	}

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}
	logf("wrote %s (%d benchmarks)", *out, len(report.Benchmarks))

	if *baseline != "" {
		if err := gate(*baseline, report); err != nil {
			fatalf("regression gate: %v", err)
		}
		logf("allocation budget holds against %s", *baseline)
	}
}

// gate compares the fresh report against the committed baseline: blocking
// on allocs/op growth past the budget factor, informational on timing.
func gate(path string, fresh Report) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseBy[r.Name] = r
	}
	var failures []string
	for _, r := range fresh.Benchmarks {
		b, ok := baseBy[r.Name]
		if !ok {
			logf("  new benchmark %s (no baseline)", r.Name)
			continue
		}
		budget := float64(b.AllocsPerOp) * allocBudgetFactor
		if b.AllocsPerOp == 0 {
			budget = 0 // a zero-alloc benchmark must stay zero-alloc
		}
		if float64(r.AllocsPerOp) > budget {
			failures = append(failures, fmt.Sprintf(
				"%s allocates %d/op, budget %.0f/op (baseline %d/op × %g)",
				r.Name, r.AllocsPerOp, budget, b.AllocsPerOp, allocBudgetFactor))
		}
		if b.NsPerOp > 0 {
			logf("  %-34s %+6.1f%% ns/op vs baseline (informational)",
				r.Name, 100*(r.NsPerOp-b.NsPerOp)/b.NsPerOp)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			logf("  ALLOC REGRESSION: %s", f)
		}
		return fmt.Errorf("%d benchmark(s) over the allocation budget", len(failures))
	}
	return nil
}

// logf and fatalf are the harness's human-facing progress lines —
// plain stderr prints, not the daemon's structured JSON logs.
func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
}

func fatalf(format string, args ...any) {
	logf(format, args...)
	os.Exit(1)
}

// Command biasmitd serves readout-error mitigation as a long-lived
// daemon: characterize a machine's RBMS once per calibration cycle,
// cache the profile, and serve baseline/SIM/AIM runs against it over an
// HTTP/JSON API (see internal/server for the surface).
//
// Usage:
//
//	biasmitd -addr 127.0.0.1:8642
//	biasmitd -addr :0 -workers 4 -profile-ttl 30m -refresh-interval 5m
//	biasmitd -data-dir /var/lib/biasmitd -snapshot-interval 5m -max-profiles 64
//
//	curl -s localhost:8642/healthz
//	curl -s -X POST localhost:8642/v1/mitigate \
//	  -d '{"machine":"ibmqx4","policy":"aim","benchmark":"bv-4A","shots":8192}'
//
// With -jobs-dir the async job queue (POST /v1/jobs) is durable too:
// every job state transition is journaled the same way, and a restarted
// daemon re-queues jobs that were caught mid-run — same seed, same
// bytes, exactly one terminal state per job.
//
// With -data-dir the profile store is durable: every learned profile is
// journaled to a checksummed WAL (fsync-on-commit) and periodically
// compacted into a snapshot, and a restarted daemon — even after kill
// -9 — warm-loads every committed profile instead of cold-starting into
// a characterization storm. -preload imports profile files written by
// `characterize -out` (same serialization) into the store at boot.
//
// Mitigation is a deterministic function of (machine, circuit, policy,
// shots, seed, profile), so by default repeated identical requests are
// served from a content-addressed result cache and concurrent
// duplicates coalesce onto a single execution (-result-cache=false
// disables this; -result-cache-size bounds it). Re-characterizing a
// machine invalidates every cached result that depended on its profile.
//
// The daemon drains gracefully on SIGINT/SIGTERM: the listener closes,
// in-flight requests get -drain-timeout to finish, then the process
// exits (a second signal aborts immediately).
package main

import (
	"context"
	"errors"
	"flag"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only via -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"biasmit/internal/chaos"
	"biasmit/internal/jobs"
	"biasmit/internal/obs"
	"biasmit/internal/persist"
	"biasmit/internal/profilestore"
	"biasmit/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8642", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "parallel workers per job (0 = all CPUs)")
	maxJobs := flag.Int("max-jobs", 2, "concurrent mitigation/characterization jobs; further requests queue")
	defaultTimeout := flag.Duration("default-timeout", 60*time.Second, "per-request deadline when the request sets none")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "upper bound on per-request deadlines")
	maxShots := flag.Int("max-shots", 1<<20, "per-request shot-budget cap")
	profileShots := flag.Int("profile-shots", 2048, "characterization trials per basis state (brute) / window (awct) / total (esct)")
	profileTTL := flag.Duration("profile-ttl", 30*time.Minute, "how long cached RBMS profiles stay fresh")
	refreshInterval := flag.Duration("refresh-interval", 0, "background profile refresh period (0 = disabled)")
	dataDir := flag.String("data-dir", "", "durable profile store directory (WAL + snapshots; empty = memory-only)")
	snapshotInterval := flag.Duration("snapshot-interval", 5*time.Minute, "how often the WAL is compacted into a snapshot (needs -data-dir)")
	maxProfiles := flag.Int("max-profiles", 0, "profile cache bound; past it the LRU profile is evicted (0 = unbounded)")
	preload := flag.String("preload", "", "comma-separated profile files (characterize -out format) imported at boot")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight requests")
	seed := flag.Int64("seed", 1, "base seed for characterization runs")
	retryAttempts := flag.Int("retry-attempts", 4, "execution attempts per backend run before its transient error surfaces (1 disables retries)")
	retryBaseDelay := flag.Duration("retry-base-delay", 50*time.Millisecond, "base delay for the full-jitter exponential retry backoff")
	sliceShots := flag.Int("slice-shots", 0, "partial-shot salvage granularity: split runs into independently seeded slices of this many trials (0 = no slicing)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failed runs that open a machine's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "how long an open breaker rejects work before probing again")
	jobsDir := flag.String("jobs-dir", "", "durable async job-queue directory (WAL + snapshots; empty = memory-only)")
	jobWorkers := flag.Int("job-workers", 2, "concurrently executing async job batches")
	batchWindow := flag.Duration("batch-window", 25*time.Millisecond, "how long a batchable async job waits for compatible jobs to coalesce (0 = no waiting)")
	tenantQuota := flag.Int("tenant-quota", 64, "queued+running async jobs allowed per tenant (0 = unbounded)")
	autoInflight := flag.Bool("max-inflight-auto", false, "adapt the in-flight ceiling to observed latency (AIMD) and shed excess with typed 503s, instead of the static -max-jobs gate")
	queueTimeout := flag.Duration("queue-timeout", 100*time.Millisecond, "how long an admission-queued request may wait before being shed (needs -max-inflight-auto)")
	brownout := flag.Bool("brownout", false, "degrade AIM to SIM to baseline under sustained admission pressure instead of shedding, stepping back up when it clears")
	brownoutDwellDown := flag.Duration("brownout-dwell-down", 2*time.Second, "sustained pressure required before stepping a brownout tier down")
	brownoutDwellUp := flag.Duration("brownout-dwell-up", 5*time.Second, "sustained calm required before stepping a brownout tier back up")
	retryBudget := flag.Float64("retry-budget", 0.1, "retry traffic allowed as a fraction of fresh admitted work (0 disables the budget)")
	queueHighWater := flag.Int("queue-high-water", 0, "queued async jobs past which /healthz reports 503 unavailable (0 = never)")
	watchdogStall := flag.Duration("watchdog-stall", 30*time.Second, "missing-heartbeat window after which a wedged job batch is dumped, cancelled, and requeued")
	resultCache := flag.Bool("result-cache", true, "serve repeated identical mitigation requests from a content-addressed result cache, coalescing concurrent duplicates onto one execution")
	resultCacheSize := flag.Int("result-cache-size", 1024, "result-cache entry bound; past it the LRU result is evicted (needs -result-cache)")
	logLevel := flag.String("log-level", "info", "minimum structured-log level: debug, info, warn, or error")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	slowRequest := flag.Duration("slow-request", 500*time.Millisecond, "requests slower than this are kept as slow-request exemplars on /metrics and /debug/traces?slow=1")
	traceBuffer := flag.Int("trace-buffer", 256, "recent request traces retained for /debug/traces")
	chaosPlan := chaos.Flags(flag.CommandLine)
	flag.Parse()

	lg := obs.NewLogger(os.Stderr, obs.LevelInfo)
	if lv, err := obs.ParseLevel(*logLevel); err != nil {
		lg.Error("bad -log-level", "error", err.Error())
		os.Exit(1)
	} else {
		lg = obs.NewLogger(os.Stderr, lv)
	}
	die := func(err error) {
		lg.Error(err.Error())
		os.Exit(1)
	}
	if err := chaosPlan.Validate(); err != nil {
		die(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var dlog *profilestore.DiskLog
	if *dataDir != "" {
		var err error
		dlog, err = profilestore.OpenDiskLog(*dataDir)
		if err != nil {
			die(err)
		}
		rec := dlog.Recovery()
		lg.Info("recovered profiles", "count", rec.Profiles, "dir", *dataDir,
			"snapshot", rec.SnapshotProfiles, "wal_replayed", rec.WALRecords,
			"wal_skipped", rec.WALSkipped, "torn_tail", rec.TailTruncated)
	}

	var jlog *jobs.Log
	if *jobsDir != "" {
		var err error
		jlog, err = jobs.OpenLog(*jobsDir)
		if err != nil {
			die(err)
		}
		rec := jlog.Recovery()
		lg.Info("recovered jobs", "count", rec.Jobs, "dir", *jobsDir,
			"snapshot", rec.SnapshotJobs, "wal_replayed", rec.WALRecords,
			"wal_skipped", rec.WALSkipped, "torn_tail", rec.TailTruncated)
	}

	srv := server.New(server.Config{
		Workers:           *workers,
		MaxJobs:           *maxJobs,
		DefaultTimeout:    *defaultTimeout,
		MaxTimeout:        *maxTimeout,
		MaxShots:          *maxShots,
		ProfileShots:      *profileShots,
		ProfileTTL:        *profileTTL,
		Seed:              *seed,
		Chaos:             *chaosPlan,
		RetryAttempts:     *retryAttempts,
		RetryBaseDelay:    *retryBaseDelay,
		SliceShots:        *sliceShots,
		BreakerThreshold:  *breakerThreshold,
		BreakerCooldown:   *breakerCooldown,
		Persist:           dlog,
		MaxProfiles:       *maxProfiles,
		JobsLog:           jlog,
		JobWorkers:        *jobWorkers,
		JobBatchWindow:    *batchWindow,
		JobQuota:          *tenantQuota,
		AutoInflight:      *autoInflight,
		QueueTimeout:      *queueTimeout,
		Brownout:          *brownout,
		BrownoutDwellDown: *brownoutDwellDown,
		BrownoutDwellUp:   *brownoutDwellUp,
		RetryBudget:       *retryBudget,
		QueueHighWater:    *queueHighWater,
		WatchdogStall:     *watchdogStall,
		ResultCache:       *resultCache,
		ResultCacheSize:   *resultCacheSize,
		Logger:            lg,
		TraceBuffer:       *traceBuffer,
		SlowRequest:       *slowRequest,
	})
	if st := srv.JobStats(); st.RecoveredJobs > 0 {
		lg.Info("requeued recovered jobs interrupted mid-run",
			"requeued", st.RecoveredRequeued, "recovered", st.RecoveredJobs)
	}
	if *preload != "" {
		for _, path := range strings.Split(*preload, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			if err := preloadProfile(srv, path); err != nil {
				die(err)
			}
			lg.Info("preloaded profile", "path", path)
		}
	}
	if *refreshInterval > 0 {
		go srv.Store().RefreshLoop(ctx, *refreshInterval)
	}
	if dlog != nil && *snapshotInterval > 0 {
		go dlog.CompactLoop(ctx, *snapshotInterval)
	}

	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			die(err)
		}
		// nil handler = http.DefaultServeMux, where the pprof import
		// registered /debug/pprof. The profiling surface stays off the
		// API listener so it is never reachable from API clients.
		go func() { _ = http.Serve(pln, nil) }()
		lg.Info("pprof listening", "addr", pln.Addr().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		die(err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	lg.Info("listening", "addr", ln.Addr().String())

	select {
	case err := <-errc:
		die(err)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	lg.Info("draining in-flight requests", "budget", drainTimeout.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainJobs := func() {
		// Queued jobs are checkpointed; running jobs finish within the
		// remaining drain budget or are cancelled and journaled back to
		// queued, so the next boot re-executes them deterministically.
		res := srv.DrainJobs(shutdownCtx)
		if res.Finished > 0 || res.Requeued > 0 {
			lg.Info("job queue drained", "finished", res.Finished, "requeued", res.Requeued)
		}
		if jlog != nil {
			if err := jlog.Close(); err != nil {
				lg.Error("closing job journal", "error", err.Error())
			}
		}
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		lg.Error("drain incomplete", "error", err.Error())
		_ = httpSrv.Close()
		drainJobs()
		if dlog != nil {
			_ = dlog.Close()
		}
		os.Exit(1)
	}
	drainJobs()
	if dlog != nil {
		// Final compaction: a clean shutdown leaves a fresh snapshot and
		// an empty WAL, so the next boot replays nothing.
		if err := dlog.Close(); err != nil {
			lg.Error("closing profile journal", "error", err.Error())
		}
	}
	lg.Info("drained cleanly")
}

// preloadProfile imports one `characterize -out` file into the store —
// the same persist.ProfileRecord serialization the WAL and snapshots
// use, so anything the CLI saved is loadable here.
func preloadProfile(srv *server.Server, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rec, err := persist.LoadProfile(f)
	if err != nil {
		return err
	}
	p, err := profilestore.FromRecord(rec)
	if err != nil {
		return err
	}
	return srv.Store().Import(p)
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/client"
	"biasmit/internal/report"
)

// asyncConfig is the subset of the CLI flags the remote run needs.
type asyncConfig struct {
	server  string
	apiKey  string
	machine string
	bench   string
	shots   int
	seed    int64
	modes   int
	canary  float64
	k       int
}

// runAsync reproduces the local three-policy comparison through a
// biasmitd daemon's job queue: one job per policy, seeded exactly like
// the local run (baseline seed+1, SIM seed+2, AIM seed+4), so baseline
// and SIM match the local path bit for bit. AIM runs against the
// daemon's cached RBMS profile — its provenance (profile seed and
// budget) is the daemon's, not this process's. Jobs are submitted
// together and awaited together, so the daemon can coalesce the AIM
// job's profile fetch with any compatible work.
func runAsync(ctx context.Context, cfg asyncConfig) error {
	cl := client.New(cfg.server, client.WithAPIKey(cfg.apiKey))

	submit := func(req *api.MitigateRequest) (string, error) {
		resp, err := cl.SubmitJob(ctx, &api.JobSubmitRequest{
			Type:     api.JobTypeMitigate,
			Mitigate: req,
		})
		if err != nil {
			return "", fmt.Errorf("submitting %s job: %w", req.Policy, err)
		}
		return resp.Job.ID, nil
	}

	specs := []*api.MitigateRequest{
		{Machine: cfg.machine, Policy: "baseline", Benchmark: cfg.bench, Shots: cfg.shots, Seed: cfg.seed + 1},
		{Machine: cfg.machine, Policy: "sim", Benchmark: cfg.bench, Shots: cfg.shots, Seed: cfg.seed + 2, Modes: cfg.modes},
		{Machine: cfg.machine, Policy: "aim", Benchmark: cfg.bench, Shots: cfg.shots, Seed: cfg.seed + 4, CanaryFraction: cfg.canary, K: cfg.k},
	}
	ids := make([]string, len(specs))
	for i, req := range specs {
		id, err := submit(req)
		if err != nil {
			return err
		}
		ids[i] = id
		fmt.Printf("queued %s job %s\n", req.Policy, id)
	}

	results := make([]*api.MitigateResponse, len(ids))
	start := time.Now()
	for i, id := range ids {
		jr, err := cl.WaitJob(ctx, id)
		if err != nil {
			return fmt.Errorf("waiting for %s job %s: %w", specs[i].Policy, id, err)
		}
		if jr.Job.State != api.JobStateDone {
			if jr.Job.Error != nil {
				return fmt.Errorf("%s job %s %s: %s (%s)",
					specs[i].Policy, id, jr.Job.State, jr.Job.Error.Message, jr.Job.Error.Code)
			}
			return fmt.Errorf("%s job %s ended %s", specs[i].Policy, id, jr.Job.State)
		}
		out := new(api.MitigateResponse)
		if err := json.Unmarshal(jr.Result, out); err != nil {
			return fmt.Errorf("decoding %s job %s result: %w", specs[i].Policy, id, err)
		}
		results[i] = out
	}
	fmt.Printf("\n%s on %s: %d trials/policy via %s (%.1fs)\n\n",
		results[0].Benchmark, results[0].Machine, cfg.shots, cfg.server, time.Since(start).Seconds())

	row := func(name string, resp *api.MitigateResponse) []string {
		if resp.Metrics == nil {
			return []string{name, "-", "-", "-"}
		}
		return []string{
			name,
			report.Pct(resp.Metrics.PST),
			report.F(resp.Metrics.IST),
			fmt.Sprint(resp.Metrics.ROCA),
		}
	}
	fmt.Fprint(os.Stdout, report.Table(
		[]string{"policy", "PST", "IST", "ROCA"},
		[][]string{
			row("baseline", results[0]),
			row(fmt.Sprintf("SIM (%d modes)", cfg.modes), results[1]),
			row("AIM", results[2]),
		},
	))
	aim := results[2]
	if len(aim.Correct) > 0 {
		fmt.Printf("\ncorrect output(s): %v\n", aim.Correct)
	}
	if aim.Strongest != "" {
		fmt.Printf("machine's strongest state: %v; AIM candidates:\n", aim.Strongest)
		for _, c := range aim.Candidates {
			fmt.Printf("  output %v  likelihood %.3f  inversion %v\n", c.Output, c.Likelihood, c.Inversion)
		}
	}
	return nil
}

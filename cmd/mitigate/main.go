// Command mitigate runs one of the paper's benchmarks under the
// baseline, SIM, and AIM policies on a simulated machine and compares
// the reliability metrics — the end-to-end workflow of the paper.
//
// Usage:
//
//	mitigate -machine ibmqx4 -bench bv-4A -shots 32000
//	mitigate -machine ibmq-melbourne -bench qaoa-6 -shots 32000 -modes 2
//
// With -async -server the same comparison runs remotely through a
// biasmitd daemon's job queue: one job per policy is submitted to
// POST /v1/jobs (seeded exactly like the local run), awaited, and the
// same metrics table is printed from the jobs' results.
//
//	mitigate -async -server 127.0.0.1:8642 -machine ibmqx4 -bench bv-4A -shots 32000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/chaos"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/experiments"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
	"biasmit/internal/persist"
	"biasmit/internal/report"
	"biasmit/internal/resilient"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mitigate: ")

	machineName := flag.String("machine", "ibmqx4", "machine model: ibmqx2, ibmqx4, ibmq-melbourne")
	benchName := flag.String("bench", "bv-4A", "benchmark: bv-4A, bv-4B, bv-6, bv-7, qaoa-4A, qaoa-4B, qaoa-6, qaoa-7, or bv:<key>")
	shots := flag.Int("shots", 32000, "trials per policy")
	seed := flag.Int64("seed", 1, "random seed")
	modes := flag.Int("modes", 4, "SIM inversion-string count (1, 2, 4, or 8)")
	canary := flag.Float64("canary", 0.25, "AIM canary fraction")
	k := flag.Int("k", 4, "AIM adaptive string count")
	profileShots := flag.Int("profile-shots", 4096, "RBMS profiling trials per state/window")
	profileFile := flag.String("profile", "", "load a saved RBMS profile (from characterize -out) instead of profiling")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs, 1 = sequential; results are identical either way)")
	timeout := flag.Duration("timeout", 0, "abort after this long (0 = no limit)")
	async := flag.Bool("async", false, "run through a biasmitd daemon's async job queue instead of locally (needs -server)")
	serverAddr := flag.String("server", "", "biasmitd address for -async, e.g. 127.0.0.1:8642")
	apiKey := flag.String("api-key", "", "X-API-Key tenant identity for -async submissions")
	chaosPlan := chaos.Flags(flag.CommandLine)
	retry := resilient.Flags(flag.CommandLine)
	flag.Parse()
	if err := chaosPlan.Validate(); err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *async {
		if *serverAddr == "" {
			log.Fatal("-async needs -server <addr>")
		}
		if err := runAsync(ctx, asyncConfig{
			server: *serverAddr, apiKey: *apiKey,
			machine: *machineName, bench: *benchName,
			shots: *shots, seed: *seed, modes: *modes, canary: *canary, k: *k,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	dev, ok := device.ByName(*machineName)
	if !ok {
		log.Fatalf("unknown machine %q", *machineName)
	}
	bench, err := lookupBenchmark(*benchName)
	if err != nil {
		log.Fatal(err)
	}

	m := core.NewMachine(dev)
	m.Workers = *workers
	m.Run = resilient.New(chaosPlan.Wrap(backend.RunContext), *retry).Run
	job, err := core.NewJob(bench.Circuit, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s: %d qubits, layout %v, %d swaps, %d trials/policy\n\n",
		bench.Name, dev.Name, bench.Width(), job.Plan.InitialLayout, job.Plan.SwapCount, *shots)

	base, err := job.BaselineContext(ctx, *shots, *seed+1)
	if err != nil {
		log.Fatal(err)
	}
	strings, err := core.StandardInversionStrings(bench.Width(), *modes)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := core.SIMContext(ctx, job, strings, *shots, *seed+2)
	if err != nil {
		log.Fatal(err)
	}

	var rbms core.RBMS
	if *profileFile != "" {
		f, err := os.Open(*profileFile)
		if err != nil {
			log.Fatal(err)
		}
		var meta persist.RBMSMeta
		rbms, meta, err = persist.LoadRBMS(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if meta.Machine != "" && meta.Machine != dev.Name {
			log.Fatalf("profile was learned on %s, not %s", meta.Machine, dev.Name)
		}
		if rbms.Width != bench.Width() {
			log.Fatalf("profile covers %d qubits but %s outputs %d bits", rbms.Width, bench.Name, bench.Width())
		}
		fmt.Printf("loaded %s RBMS profile from %s\n", meta.Method, *profileFile)
	} else {
		prof := job.Profiler()
		if bench.Width() <= 5 {
			rbms, err = prof.BruteForceContext(ctx, *profileShots, *seed+3)
		} else {
			rbms, err = prof.AWCTContext(ctx, 4, 2, *profileShots*4, *seed+3)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	aim, err := core.AIMContext(ctx, job, rbms, core.AIMConfig{CanaryFraction: *canary, K: *k}, *shots, *seed+4)
	if err != nil {
		log.Fatal(err)
	}

	row := func(name string, counts *dist.Counts) []string {
		d := counts.Dist()
		lo, hi := counts.WilsonInterval(bench.Correct[0], 1.96)
		return []string{
			name,
			report.Pct(metrics.PSTEquiv(d, bench.Correct...)),
			fmt.Sprintf("[%s, %s]", report.Pct(lo), report.Pct(hi)),
			report.F(metrics.IST(d, bench.Correct...)),
			fmt.Sprint(metrics.ROCA(d, bench.Correct...)),
		}
	}
	fmt.Fprint(os.Stdout, report.Table(
		[]string{"policy", "PST", "95% CI", "IST", "ROCA"},
		[][]string{
			row("baseline", base),
			row(fmt.Sprintf("SIM (%d modes)", *modes), sim.Merged),
			row("AIM", aim.Merged),
		},
	))
	fmt.Printf("\ncorrect output(s): %v\n", bench.Correct)
	fmt.Printf("machine's strongest state: %v; AIM candidates:\n", aim.Strongest)
	for _, c := range aim.Candidates {
		fmt.Printf("  output %v  likelihood %.3f  inversion %v\n", c.Output, c.Likelihood, c.Inversion)
	}
}

func lookupBenchmark(name string) (kernels.Benchmark, error) {
	if len(name) > 3 && name[:3] == "bv:" {
		key, err := bitstring.Parse(name[3:])
		if err != nil {
			return kernels.Benchmark{}, fmt.Errorf("bad bv key: %w", err)
		}
		return kernels.BV(name, key), nil
	}
	return experiments.BenchmarkByName(name)
}

// Package biasmit's benchmark harness regenerates every table and figure
// of the paper's evaluation (one Benchmark per experiment; see DESIGN.md
// §4 for the index) and adds ablation benches for the design choices the
// paper motivates: SIM mode count, AIM canary fraction and K, AWCT window
// size, and the contribution of each noise process.
//
// Reported custom metrics carry the experiment's figure of merit (PST
// gain, IST, correlation, MSE) so the "shape" results are visible in
// benchmark output:
//
//	go test -bench=. -benchmem
//
// Benches run at a reduced trial scale (benchScale) per iteration; use
// cmd/paperfigs for full-budget reproductions.
package biasmit

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/core"
	"biasmit/internal/density"
	"biasmit/internal/device"
	"biasmit/internal/experiments"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
	"biasmit/internal/transpile"
)

// benchScale keeps one iteration of each experiment in the hundreds of
// milliseconds; the statistics remain meaningful because each experiment
// has a 400-trial floor per run.
const benchScale = 0.03

func benchCfg(i int) experiments.Config {
	return experiments.Config{Scale: benchScale, Seed: int64(1000 + i)}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.PSTZeros, "pst_zeros")
			b.ReportMetric(r.PSTOnes, "pst_ones")
			b.ReportMetric(r.PSTInverted, "pst_inverted")
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range r.Rows {
				if row.Machine == "ibmqx4" {
					b.ReportMetric(row.Avg, "ibmqx4_avg_err")
				}
			}
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.GoodKeyIST, "ist_key01")
			b.ReportMetric(r.BadKeyIST, "ist_key11")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.Correlation, "hamming_corr")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.ByWeight[10], "rel_bms_weight10")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.Skew, "ghz_skew")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.Rows[0].PST/maxf(r.Rows[4].PST, 1e-6), "pstA_over_pstE")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure7(experiments.Config{})
		if r.MergedRank != 1 {
			b.Fatal("worked example broke")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.BaselineROCA), "baseline_roca")
			b.ReportMetric(float64(r.SIMROCA), "sim_roca")
		}
	}
}

// BenchmarkSuite regenerates Fig 10, Fig 14 and Table 5 (they share one
// evaluation of the full benchmark suite under all three policies).
func BenchmarkSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSuite(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			sim, aim := r.MeanImprovement()
			b.ReportMetric(sim, "sim_pst_gain")
			b.ReportMetric(aim, "aim_pst_gain")
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.BasisHammingCorr, "basis_hamming_corr")
			b.ReportMetric(r.Correlation, "bv_vs_basis_corr")
		}
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure13(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.AIMMean/maxf(r.BaselineMean, 1e-6), "aim_pst_gain")
			b.ReportMetric(r.AIMSpread, "aim_spread")
			b.ReportMetric(r.BaselineSpread, "baseline_spread")
		}
	}
}

func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure15(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.ESCTvsDirectMSE, "esct_mse")
			b.ReportMetric(r.AWCTvsDirectMSE, "awct_mse")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationSIMModes sweeps the number of SIM inversion strings.
// The paper predicts diminishing returns past 4 modes (§5.3).
func BenchmarkAblationSIMModes(b *testing.B) {
	dev := device.IBMQX4()
	bench := kernels.BV("bv-4B", bitstring.MustParse("1111"))
	for _, modes := range []int{1, 2, 4, 8} {
		b.Run(name("modes", modes), func(b *testing.B) {
			m := core.NewMachine(dev)
			job, err := core.NewJob(bench.Circuit, m)
			if err != nil {
				b.Fatal(err)
			}
			strings, err := core.StandardInversionStrings(bench.Width(), modes)
			if err != nil {
				b.Fatal(err)
			}
			var pst float64
			for i := 0; i < b.N; i++ {
				res, err := core.SIM(job, strings, 2000, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				pst = metrics.PST(res.Merged.Dist(), bench.Correct[0])
			}
			b.ReportMetric(pst, "pst")
		})
	}
}

// BenchmarkAblationAIMCanary sweeps the canary fraction (paper uses 25%).
func BenchmarkAblationAIMCanary(b *testing.B) {
	dev := device.IBMQX4()
	bench := kernels.BV("bv-4B", bitstring.MustParse("1111"))
	m := core.NewMachine(dev)
	job, err := core.NewJob(bench.Circuit, m)
	if err != nil {
		b.Fatal(err)
	}
	rbms, err := job.Profiler().BruteForce(500, 9)
	if err != nil {
		b.Fatal(err)
	}
	for _, frac := range []float64{0.10, 0.25, 0.50} {
		b.Run(name("canary_pct", int(frac*100)), func(b *testing.B) {
			var pst float64
			for i := 0; i < b.N; i++ {
				res, err := core.AIM(job, rbms, core.AIMConfig{CanaryFraction: frac}, 2000, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				pst = metrics.PST(res.Merged.Dist(), bench.Correct[0])
			}
			b.ReportMetric(pst, "pst")
		})
	}
}

// BenchmarkAblationAIMK sweeps the number of adaptive inversion strings.
func BenchmarkAblationAIMK(b *testing.B) {
	dev := device.IBMQX4()
	bench := kernels.BV("bv-4B", bitstring.MustParse("1111"))
	m := core.NewMachine(dev)
	job, err := core.NewJob(bench.Circuit, m)
	if err != nil {
		b.Fatal(err)
	}
	rbms, err := job.Profiler().BruteForce(500, 10)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(name("k", k), func(b *testing.B) {
			var pst float64
			for i := 0; i < b.N; i++ {
				res, err := core.AIM(job, rbms, core.AIMConfig{K: k}, 2000, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				pst = metrics.PST(res.Merged.Dist(), bench.Correct[0])
			}
			b.ReportMetric(pst, "pst")
		})
	}
}

// BenchmarkAblationAWCTWindow sweeps the window size of the sliding
// characterization (paper uses m=4 with overlap 2). Accuracy is reported
// as MSE against the exhaustive profile.
func BenchmarkAblationAWCTWindow(b *testing.B) {
	dev := device.IBMQX4()
	m := core.NewMachine(dev)
	prof := &core.Profiler{Machine: m, Layout: []int{0, 1, 2, 3, 4}}
	direct, err := prof.BruteForce(2000, 11)
	if err != nil {
		b.Fatal(err)
	}
	for _, win := range []int{2, 3, 4, 5} {
		overlap := win / 2
		b.Run(name("window", win), func(b *testing.B) {
			var mse float64
			for i := 0; i < b.N; i++ {
				awct, err := prof.AWCT(win, overlap, 4000, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if mse, err = awct.MSE(direct); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mse, "mse_vs_direct")
		})
	}
}

// BenchmarkAblationNoise isolates each noise process on the melbourne
// QAOA workload (§7.1: gate errors limit what SIM/AIM can recover).
func BenchmarkAblationNoise(b *testing.B) {
	bench := kernels.BV("bv-6", bitstring.MustParse("011111"))
	cases := []struct {
		label string
		opt   backend.Options
	}{
		{"full_noise", backend.Options{}},
		{"no_readout", backend.Options{NoReadoutError: true}},
		{"no_gate_noise", backend.Options{NoGateNoise: true}},
		{"no_decay", backend.Options{NoDecay: true}},
		{"readout_only", backend.Options{NoGateNoise: true, NoDecay: true}},
	}
	for _, c := range cases {
		b.Run(c.label, func(b *testing.B) {
			m := core.NewMachine(device.IBMQMelbourne())
			m.Opt = c.opt
			job, err := core.NewJob(bench.Circuit, m)
			if err != nil {
				b.Fatal(err)
			}
			var pst float64
			for i := 0; i < b.N; i++ {
				counts, err := job.Baseline(2000, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				pst = metrics.PST(counts.Dist(), bench.Correct[0])
			}
			b.ReportMetric(pst, "pst")
		})
	}
}

// --- Microbenchmarks of the substrate ---

func BenchmarkStateVectorGHZ14(b *testing.B) {
	c := kernels.GHZ(14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Simulate()
	}
}

func BenchmarkBackendTrajectoryMelbourne(b *testing.B) {
	dev := device.IBMQMelbourne()
	bench := kernels.BV("bv-7", bitstring.MustParse("0111111"))
	m := core.NewMachine(dev)
	job, err := core.NewJob(bench.Circuit, m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := job.Baseline(64, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadoutChannel(b *testing.B) {
	model := device.IBMQMelbourne().ReadoutModel()
	x := bitstring.MustParse("10110101011010")
	rng := rand.New(rand.NewSource(42))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		model.Apply(x, rng)
	}
}

func BenchmarkTranspileMelbourne(b *testing.B) {
	dev := device.IBMQMelbourne()
	c := kernels.GHZ(7)
	for i := 0; i < b.N; i++ {
		if _, err := transpile.Place(c, dev); err != nil {
			b.Fatal(err)
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func name(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}

// BenchmarkRepeatability regenerates the §6.1 bias-repeatability
// experiment across calibration cycles.
func BenchmarkRepeatability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Repeatability(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.MeanCorrelation, "mean_rank_corr")
			b.ReportMetric(r.MinCorrelation, "min_rank_corr")
		}
	}
}

// BenchmarkMitigationComparison runs the extension experiment:
// Invert-and-Measure vs confusion-matrix mitigation.
func BenchmarkMitigationComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.MitigationComparison(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range r.Rows {
				switch row.Policy {
				case "AIM":
					b.ReportMetric(row.PST, "aim_pst")
				case "matrix (full)":
					b.ReportMetric(row.PST, "matrix_pst")
				case "SIM + tensored":
					b.ReportMetric(row.PST, "composed_pst")
				}
			}
		}
	}
}

// BenchmarkAblationEDM compares a single mapping, EDM over 4 mappings,
// and EDM composed with SIM on a vulnerable BV workload.
func BenchmarkAblationEDM(b *testing.B) {
	dev := device.IBMQX4()
	bench := kernels.BV("bv-4B", bitstring.MustParse("1111"))
	m := core.NewMachine(dev)
	layouts, err := core.DiverseLayouts(bench.Circuit, m, 4, 51)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		label string
		run   func(shots int, seed int64) (float64, error)
	}{
		{"single_mapping", func(shots int, seed int64) (float64, error) {
			res, err := core.EDM(bench.Circuit, m, layouts[:1], shots, seed)
			if err != nil {
				return 0, err
			}
			return metrics.PST(res.Merged.Dist(), bench.Correct[0]), nil
		}},
		{"edm4", func(shots int, seed int64) (float64, error) {
			res, err := core.EDM(bench.Circuit, m, layouts, shots, seed)
			if err != nil {
				return 0, err
			}
			return metrics.PST(res.Merged.Dist(), bench.Correct[0]), nil
		}},
		{"edm4_sim", func(shots int, seed int64) (float64, error) {
			res, err := core.EDMWithSIM(bench.Circuit, m, layouts, shots, seed)
			if err != nil {
				return 0, err
			}
			return metrics.PST(res.Merged.Dist(), bench.Correct[0]), nil
		}},
	}
	for _, c := range cases {
		b.Run(c.label, func(b *testing.B) {
			var pst float64
			for i := 0; i < b.N; i++ {
				var err error
				if pst, err = c.run(2000, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pst, "pst")
		})
	}
}

// BenchmarkDensityExactGHZ measures the exact channel simulator on the
// full ibmqx4 GHZ workload used by the cross-validation tests.
func BenchmarkDensityExactGHZ(b *testing.B) {
	dev := device.IBMQX4()
	c := circuitForDensityBench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := density.RunExact(c, dev); err != nil {
			b.Fatal(err)
		}
	}
}

func circuitForDensityBench() *circuit.Circuit {
	return circuit.New(5, "ghz-x4").H(0).CX(1, 0).CX(2, 1).CX(3, 2).CX(3, 4)
}

// BenchmarkAblationAllocation compares naive vs variability-aware
// allocation (the paper's baseline assumption, refs [26, 28]).
func BenchmarkAblationAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AllocationComparison(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.NaivePST, "naive_pst")
			b.ReportMetric(r.AwarePST, "aware_pst")
		}
	}
}

// BenchmarkAblationSchedule compares gate-time-only vs schedule-aware
// decoherence on the GHZ bias probe.
func BenchmarkAblationSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ScheduleAblation(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.GateOnlySkew, "gate_only_skew")
			b.ReportMetric(r.ScheduledSkew, "scheduled_skew")
		}
	}
}

// BenchmarkCrosstalkDetection measures the readout-crosstalk profiler on
// the machine with planted correlations.
func BenchmarkCrosstalkDetection(b *testing.B) {
	m := core.NewMachine(device.IBMQX4())
	prof := &core.Profiler{Machine: m, Layout: []int{0, 1, 2, 3, 4}}
	var maxExcess float64
	for i := 0; i < b.N; i++ {
		x, err := prof.Crosstalk(4000, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		maxExcess = x.MaxExcess()
	}
	b.ReportMetric(maxExcess, "max_excess")
}

// BenchmarkParallelBackend measures the worker-pool speedup on the
// melbourne trial loop.
func BenchmarkParallelBackend(b *testing.B) {
	dev := device.IBMQMelbourne()
	bench := kernels.BV("bv-7", bitstring.MustParse("0111111"))
	m := core.NewMachine(dev)
	job, err := core.NewJob(bench.Circuit, m)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(name("workers", workers), func(b *testing.B) {
			opt := backend.Options{Shots: 2048, Workers: workers}
			for i := 0; i < b.N; i++ {
				opt.Seed = int64(i)
				if _, err := backend.RunContext(context.Background(), job.Plan.Physical, dev, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelSuite measures the orchestration speedup on the full
// benchmark suite (12 machine × benchmark cells fanned out on the job
// pool). Results are bit-identical across worker counts; only
// wall-clock changes.
func BenchmarkParallelSuite(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(name("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(i)
				cfg.Workers = workers
				if _, err := experiments.RunSuite(context.Background(), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScaling runs the mitigation stack on the synthetic 16-qubit
// machine (AWCT profiling + AIM + reduced matrix correction).
func BenchmarkScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Scaling(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.AIMPST/maxf(r.BaselinePST, 1e-6), "aim_pst_gain")
		}
	}
}

// BenchmarkZNEComparison runs the gate-family × readout-family
// composition experiment (ZNE, SIM, and both).
func BenchmarkZNEComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ZNEComparison(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.Ideal-r.Raw, "raw_gap")
			b.ReportMetric(r.Ideal-r.ZNEPlus, "composed_gap")
		}
	}
}

// BenchmarkFigure8 regenerates the SIM mode-count comparison of Fig 8.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(context.Background(), benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.SIM2, "sim2_pst")
			b.ReportMetric(r.SIM4, "sim4_pst")
		}
	}
}

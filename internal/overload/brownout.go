package overload

import (
	"sync"
	"time"
)

// Brownout tiers. The controller degrades mitigation quality instead of
// availability, mirroring how Readout Rebalancing and Bit-flip Averaging
// trade profiling cost for accuracy: a SIM answer now beats an AIM
// answer that never arrives.
const (
	// TierFull serves the requested policy unmodified (AIM allowed).
	TierFull = 0
	// TierSIM downgrades AIM requests to SIM (no fresh
	// characterization, cheaper inversion).
	TierSIM = 1
	// TierBaseline serves uncorrected counts only.
	TierBaseline = 2
)

// TierName returns the wire label for a brownout tier.
func TierName(tier int) string {
	switch tier {
	case TierFull:
		return "full"
	case TierSIM:
		return "sim"
	default:
		return "baseline"
	}
}

// Brownout steps mitigation quality down under sustained limiter
// pressure and back up on recovery, with dwell-time hysteresis in both
// directions so a single shed (or a single quiet moment) cannot flap the
// tier. Observe(shed=true) marks pressure and resets the calm clock;
// Observe(shed=false) marks calm and resets the pressure clock. Pressure
// sustained for DwellDown steps the tier down one level; calm sustained
// for DwellUp steps it back up one level, so recovery to full AIM takes
// tier×DwellUp of proven-quiet serving.
type Brownout struct {
	dwellDown time.Duration
	dwellUp   time.Duration
	now       func() time.Time

	mu            sync.Mutex
	tier          int
	pressureSince time.Time // zero when the last observation was calm
	calmSince     time.Time // zero when the last observation was a shed
	stepsDown     uint64
	stepsUp       uint64
}

// BrownoutStats is a snapshot for /metrics.
type BrownoutStats struct {
	Tier      int
	StepsDown uint64
	StepsUp   uint64
}

// NewBrownout returns a controller at TierFull. A nil *Brownout pins
// TierFull forever, so wiring is optional at every call site. now may be
// nil for the wall clock.
func NewBrownout(dwellDown, dwellUp time.Duration, now func() time.Time) *Brownout {
	if dwellDown <= 0 {
		dwellDown = 2 * time.Second
	}
	if dwellUp <= 0 {
		dwellUp = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Brownout{dwellDown: dwellDown, dwellUp: dwellUp, now: now}
}

// Observe feeds one admission outcome (shed or served) into the
// controller and applies any due tier transition.
func (b *Brownout) Observe(shed bool) {
	if b == nil {
		return
	}
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if shed {
		b.calmSince = time.Time{}
		if b.pressureSince.IsZero() {
			b.pressureSince = now
			return
		}
		if now.Sub(b.pressureSince) >= b.dwellDown && b.tier < TierBaseline {
			b.tier++
			b.stepsDown++
			b.pressureSince = now // next step needs a fresh dwell
		}
		return
	}
	b.pressureSince = time.Time{}
	if b.calmSince.IsZero() {
		b.calmSince = now
		return
	}
	if now.Sub(b.calmSince) >= b.dwellUp && b.tier > TierFull {
		b.tier--
		b.stepsUp++
		b.calmSince = now
	}
}

// Tier returns the current brownout tier. Safe on a nil controller.
func (b *Brownout) Tier() int {
	if b == nil {
		return TierFull
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tier
}

// Stats snapshots the controller. Safe on a nil controller.
func (b *Brownout) Stats() BrownoutStats {
	if b == nil {
		return BrownoutStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BrownoutStats{Tier: b.tier, StepsDown: b.stepsDown, StepsUp: b.stepsUp}
}

// Degrade maps a requested mitigation policy to the policy actually
// served at the given tier: TierSIM downgrades "aim" to "sim";
// TierBaseline downgrades both "aim" and "sim" to "baseline". Unknown
// policies pass through untouched for the validator to reject.
func Degrade(policy string, tier int) string {
	switch tier {
	case TierSIM:
		if policy == "aim" {
			return "sim"
		}
	case TierBaseline:
		if policy == "aim" || policy == "sim" {
			return "baseline"
		}
	}
	return policy
}

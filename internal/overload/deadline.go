package overload

import (
	"errors"
	"strconv"
	"strings"
	"time"
)

// DeadlineHeader carries the absolute request deadline across process
// boundaries so every hop works against the same wall-clock budget: the
// client stamps it from its context, the server intersects it with its
// own limits, the jobs scheduler persists it, and a hop that cannot
// finish inside the remaining budget sheds immediately with a typed 503
// instead of executing into a guaranteed timeout.
const DeadlineHeader = "X-Request-Deadline"

// FormatDeadline renders an absolute deadline for the wire
// (RFC 3339 with nanoseconds, UTC).
func FormatDeadline(t time.Time) string {
	return t.UTC().Format(time.RFC3339Nano)
}

var errBadDeadline = errors.New("malformed deadline")

// ParseDeadline accepts the formats real clients send: RFC 3339 (with or
// without fractional seconds) or integer unix milliseconds. The zero
// string is an error — callers treat an absent header as "no deadline"
// before parsing.
func ParseDeadline(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return time.Time{}, errBadDeadline
	}
	if t, err := time.Parse(time.RFC3339Nano, s); err == nil {
		return t, nil
	}
	if ms, err := strconv.ParseInt(s, 10, 64); err == nil && ms > 0 {
		t := time.UnixMilli(ms).UTC()
		// Bound to the RFC 3339 four-digit-year range so anything we
		// accept survives a Format/Parse round trip.
		if t.Year() > 9999 {
			return time.Time{}, errBadDeadline
		}
		return t, nil
	}
	return time.Time{}, errBadDeadline
}

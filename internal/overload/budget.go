package overload

import "sync"

// Budget is a token-bucket retry budget: every fresh request deposits
// Ratio tokens (capped at Burst) and every retry withdraws one, so
// steady-state retries can never exceed Ratio× the fresh traffic rate.
// This is the defense against retry storms — when the backend is sick,
// fresh traffic slows, deposits slow, and retries throttle themselves
// instead of amplifying the outage. A nil *Budget disables the brake
// (every retry allowed), so callers never nil-check.
// Token arithmetic is integer millitokens so that ratio deposits
// accumulate exactly: ten 0.1-ratio deposits fund precisely one retry,
// with no float round-off leaking or starving budget over time.
const milli = 1000

type Budget struct {
	mu      sync.Mutex
	ratio   int64 // millitokens deposited per fresh request
	burst   int64 // millitoken cap
	tokens  int64 // millitokens available
	allowed uint64
	denied  uint64
}

// BudgetStats is a snapshot for /metrics.
type BudgetStats struct {
	Tokens  float64
	Allowed uint64
	Denied  uint64
}

// NewBudget returns a budget granting ratio retry tokens per fresh
// request, holding at most burst unspent tokens. Ratio 0.1 is the
// classic "retries ≤ 10% of fresh traffic" policy. The bucket starts
// full so cold-start retries are not starved.
func NewBudget(ratio, burst float64) *Budget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	mratio := int64(ratio*milli + 0.5)
	if mratio < 1 {
		mratio = 1
	}
	mburst := int64(burst*milli + 0.5)
	return &Budget{ratio: mratio, burst: mburst, tokens: mburst}
}

// OnRequest credits the budget for one fresh (non-retry) request.
func (b *Budget) OnRequest() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Allow spends one token if available, reporting whether the retry (or
// hedge) may proceed. Denied retries must surface the original error.
func (b *Budget) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens >= milli {
		b.tokens -= milli
		b.allowed++
		return true
	}
	b.denied++
	return false
}

// Stats snapshots the budget counters. Safe on a nil budget.
func (b *Budget) Stats() BudgetStats {
	if b == nil {
		return BudgetStats{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BudgetStats{Tokens: float64(b.tokens) / milli, Allowed: b.allowed, Denied: b.denied}
}

package overload

import "testing"

func TestBudgetStartsFullThenThrottles(t *testing.T) {
	b := NewBudget(0.1, 2)
	if !b.Allow() || !b.Allow() {
		t.Fatal("burst tokens should allow the first two retries")
	}
	if b.Allow() {
		t.Fatal("empty bucket must deny")
	}
	s := b.Stats()
	if s.Allowed != 2 || s.Denied != 1 {
		t.Fatalf("stats = %+v, want 2 allowed / 1 denied", s)
	}
}

func TestBudgetRatioMath(t *testing.T) {
	b := NewBudget(0.1, 100)
	// Drain the initial burst.
	for b.Allow() {
	}
	// 10 fresh requests at ratio 0.1 buy exactly one retry.
	for i := 0; i < 10; i++ {
		b.OnRequest()
	}
	if !b.Allow() {
		t.Fatal("10 fresh requests at ratio 0.1 should fund one retry")
	}
	if b.Allow() {
		t.Fatal("second retry should be denied — budget is 10% of fresh traffic")
	}
}

func TestBudgetBurstCap(t *testing.T) {
	b := NewBudget(1, 3)
	for i := 0; i < 100; i++ {
		b.OnRequest()
	}
	n := 0
	for b.Allow() {
		n++
	}
	if n != 3 {
		t.Fatalf("allowed %d retries, want burst cap 3", n)
	}
}

func TestBudgetNilAllowsEverything(t *testing.T) {
	var b *Budget
	b.OnRequest()
	if !b.Allow() {
		t.Fatal("nil budget must allow")
	}
	if s := b.Stats(); s.Allowed != 0 {
		t.Fatalf("nil budget stats = %+v", s)
	}
}

package overload

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock shared by the limiter tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// neverFire is an After that never delivers, for tests that must not hit
// the queue timeout.
func neverFire(time.Duration) <-chan time.Time { return make(chan time.Time) }

func TestLimiterAdmitsUnderLimit(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 2, After: neverFire})
	ctx := context.Background()
	r1, err := l.Acquire(ctx, ClassMitigate)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	r2, err := l.Acquire(ctx, ClassMitigate)
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if got := l.Stats().Inflight; got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	r1()
	r1() // release is once-only
	r2()
	if got := l.Stats().Inflight; got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
}

func TestLimiterNilAdmitsEverything(t *testing.T) {
	var l *Limiter
	release, err := l.Acquire(context.Background(), ClassJobs)
	if err != nil {
		t.Fatalf("nil limiter acquire: %v", err)
	}
	release()
	if s := l.Stats(); s.Inflight != 0 {
		t.Fatalf("nil limiter stats = %+v", s)
	}
}

func TestLimiterQueueTimeoutSheds(t *testing.T) {
	fire := make(chan time.Time)
	l := NewLimiter(LimiterConfig{
		Initial: 1,
		After:   func(time.Duration) <-chan time.Time { return fire },
	})
	hold, err := l.Acquire(context.Background(), ClassMitigate)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	defer hold()

	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(context.Background(), ClassMitigate)
		errc <- err
	}()
	waitQueued(t, l, 1)
	fire <- time.Time{}

	err = <-errc
	var oe *Error
	if !errors.As(err, &oe) {
		t.Fatalf("queued acquire: got %v (%T), want *overload.Error", err, err)
	}
	if oe.Reason != "queue_timeout" || oe.RetryAfter <= 0 {
		t.Fatalf("shed error = %+v, want queue_timeout with Retry-After", oe)
	}
	if s := l.Stats(); s.Timeouts[ClassMitigate] != 1 || s.Queued != 0 {
		t.Fatalf("stats = %+v, want one mitigate timeout and empty queue", s)
	}
}

func TestLimiterAdmitsHighestClassFirst(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 1, After: neverFire})
	hold, err := l.Acquire(context.Background(), ClassMitigate)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}

	order := make(chan Class, 2)
	var wg sync.WaitGroup
	enqueue := func(c Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := l.Acquire(context.Background(), c)
			if err != nil {
				t.Errorf("class %s acquire: %v", c, err)
				return
			}
			order <- c
			release()
		}()
	}
	enqueue(ClassJobs)
	waitQueued(t, l, 1)
	enqueue(ClassCharacterize)
	waitQueued(t, l, 2)

	hold()
	wg.Wait()
	if first := <-order; first != ClassCharacterize {
		t.Fatalf("first admitted class = %s, want characterize (jobs shed first, characterize served first)", first)
	}
}

func TestLimiterEvictsLowerClassWhenFull(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 1, MaxQueue: 1, After: neverFire})
	hold, err := l.Acquire(context.Background(), ClassMitigate)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}

	jobsErr := make(chan error, 1)
	go func() {
		_, err := l.Acquire(context.Background(), ClassJobs)
		jobsErr <- err
	}()
	waitQueued(t, l, 1)

	// Queue is full; a characterize arrival must displace the queued job.
	charDone := make(chan error, 1)
	go func() {
		release, err := l.Acquire(context.Background(), ClassCharacterize)
		if err == nil {
			defer release()
		}
		charDone <- err
	}()

	err = <-jobsErr
	var oe *Error
	if !errors.As(err, &oe) || oe.Reason != "queue_full" {
		t.Fatalf("evicted job: got %v, want overloaded queue_full", err)
	}

	hold()
	if err := <-charDone; err != nil {
		t.Fatalf("characterize after eviction: %v", err)
	}
	if s := l.Stats(); s.Evictions != 1 || s.Shed[ClassJobs] != 1 {
		t.Fatalf("stats = %+v, want one eviction charged to jobs", s)
	}

}

func TestLimiterShedsSameClassWhenFull(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 1, MaxQueue: 1, After: neverFire})
	hold, err := l.Acquire(context.Background(), ClassJobs)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	queued := make(chan error, 1)
	go func() {
		release, err := l.Acquire(context.Background(), ClassJobs)
		if err == nil {
			release()
		}
		queued <- err
	}()
	waitQueued(t, l, 1)

	// Same class cannot evict an equal: shed outright, synchronously.
	_, err = l.Acquire(context.Background(), ClassJobs)
	var oe *Error
	if !errors.As(err, &oe) || oe.Reason != "queue_full" {
		t.Fatalf("full-queue acquire: got %v, want overloaded queue_full", err)
	}
	hold()
	if err := <-queued; err != nil {
		t.Fatalf("queued job after release: %v", err)
	}
}

func TestLimiterContextCancelWhileQueued(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 1, After: neverFire})
	hold, err := l.Acquire(context.Background(), ClassMitigate)
	if err != nil {
		t.Fatalf("holder acquire: %v", err)
	}
	defer hold()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx, ClassMitigate)
		errc <- err
	}()
	waitQueued(t, l, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: %v, want context.Canceled", err)
	}
	if got := l.Stats().Queued; got != 0 {
		t.Fatalf("queued after cancel = %d, want 0", got)
	}
}

func TestLimiterAIMD(t *testing.T) {
	clock := newFakeClock()
	l := NewLimiter(LimiterConfig{
		Initial: 2, Min: 1, Max: 8, Window: 4, Tolerance: 2,
		Now: clock.Now, After: neverFire,
	})
	run := func(latency time.Duration) {
		release, err := l.Acquire(context.Background(), ClassMitigate)
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		clock.Advance(latency)
		release()
	}

	// One healthy window: avg == baseline, additive increase.
	for i := 0; i < 4; i++ {
		run(time.Millisecond)
	}
	if got := l.Stats().Limit; got != 3 {
		t.Fatalf("limit after healthy window = %v, want 3", got)
	}

	// One congested window: avg 10ms over a ~1ms baseline, back off.
	for i := 0; i < 4; i++ {
		run(10 * time.Millisecond)
	}
	s := l.Stats()
	if s.Limit >= 3 {
		t.Fatalf("limit after congested window = %v, want multiplicative decrease below 3", s.Limit)
	}
	if s.AdjustUp != 1 || s.AdjustDown != 1 {
		t.Fatalf("adjustments = up %d down %d, want 1 and 1", s.AdjustUp, s.AdjustDown)
	}

	// Recovery: healthy windows grow the limit back (min-latency
	// baseline is sticky, so fast requests read as healthy again).
	for i := 0; i < 8; i++ {
		run(time.Millisecond)
	}
	if got := l.Stats().Limit; got <= s.Limit {
		t.Fatalf("limit after recovery = %v, want growth above %v", got, s.Limit)
	}
}

func TestLimiterLimitRespectsFloorAndCeiling(t *testing.T) {
	clock := newFakeClock()
	l := NewLimiter(LimiterConfig{
		Initial: 2, Min: 1, Max: 3, Window: 2, Tolerance: 2,
		Now: clock.Now, After: neverFire,
	})
	run := func(latency time.Duration) {
		release, err := l.Acquire(context.Background(), ClassMitigate)
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		clock.Advance(latency)
		release()
	}
	for i := 0; i < 20; i++ {
		run(time.Millisecond)
	}
	if got := l.Stats().Limit; got != 3 {
		t.Fatalf("limit = %v, want pinned at Max 3", got)
	}
	for i := 0; i < 40; i++ {
		run(50 * time.Millisecond)
	}
	if got := l.Stats().Limit; got < 1 {
		t.Fatalf("limit = %v, want >= Min 1", got)
	}
}

func TestLimiterConcurrentStress(t *testing.T) {
	l := NewLimiter(LimiterConfig{Initial: 4, Max: 8, Window: 8, QueueTimeout: 50 * time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(class Class) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				release, err := l.Acquire(context.Background(), class)
				if err != nil {
					var oe *Error
					if !errors.As(err, &oe) {
						t.Errorf("acquire: %v", err)
					}
					continue
				}
				release()
			}
		}(Class(g % numClasses))
	}
	wg.Wait()
	if got := l.Stats().Inflight; got != 0 {
		t.Fatalf("inflight after stress = %d, want 0", got)
	}
	if got := l.Stats().Queued; got != 0 {
		t.Fatalf("queued after stress = %d, want 0", got)
	}
}

// waitQueued polls until the limiter reports n queued waiters.
func waitQueued(t *testing.T, l *Limiter, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if l.Stats().Queued == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d waiters (stats %+v)", n, l.Stats())
}

// Package overload is the admission-control and self-healing layer for
// biasmitd: an adaptive concurrency limiter (AIMD on observed latency
// against a min-latency baseline), a CoDel-style queue-timeout admission
// gate with priority-aware shedding, a token-bucket retry budget shared
// by server and client, deadline propagation over the wire, a brownout
// controller that steps mitigation quality down under sustained
// pressure, and a watchdog that detects stalled worker loops.
//
// The package depends only on the standard library so that server, jobs,
// client, and resilient can all import it without cycles. Every
// component takes an injectable clock and is safe for concurrent use.
package overload

import (
	"context"
	"fmt"
	"time"
)

// Class is the admission priority of a request. Shedding order is the
// inverse of the numeric order: ClassJobs is shed first (async work can
// wait in the durable queue), ClassCharacterize is shed last
// (characterization runs are the expensive investment that every later
// mitigation amortizes, so dropping one wastes the most).
type Class int

const (
	// ClassJobs is asynchronous job execution — shed first.
	ClassJobs Class = iota
	// ClassMitigate is interactive mitigation traffic.
	ClassMitigate
	// ClassCharacterize is profile characterization — shed last.
	ClassCharacterize

	numClasses = 3
)

// String returns the metrics label for the class.
func (c Class) String() string {
	switch c {
	case ClassJobs:
		return "jobs"
	case ClassMitigate:
		return "mitigate"
	case ClassCharacterize:
		return "characterize"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

type classKey struct{}

// WithClass stamps the admission class on a context so handlers deep in
// the call tree (the jobs executor, the characterize path) are admitted
// at the right priority without threading an extra parameter.
func WithClass(ctx context.Context, c Class) context.Context {
	return context.WithValue(ctx, classKey{}, c)
}

// ClassFromContext returns the stamped class, defaulting to
// ClassMitigate for unmarked requests.
func ClassFromContext(ctx context.Context) Class {
	if c, ok := ctx.Value(classKey{}).(Class); ok {
		return c
	}
	return ClassMitigate
}

// Error is the typed shed decision. It maps to HTTP 503 with the stable
// code "overloaded" and a Retry-After hint; callers must not retry
// before RetryAfter without spending retry-budget tokens.
type Error struct {
	// Reason is a stable machine-readable cause: "queue_full",
	// "queue_timeout", or "deadline_budget".
	Reason string
	// Class that was shed.
	Class Class
	// RetryAfter is the suggested backoff before retrying.
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	return fmt.Sprintf("overloaded: %s (class %s, retry after %s)", e.Reason, e.Class, e.RetryAfter)
}

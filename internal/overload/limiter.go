package overload

import (
	"container/list"
	"context"
	"math"
	"sync"
	"time"
)

// LimiterConfig tunes the adaptive concurrency limiter. Zero fields take
// the documented defaults.
type LimiterConfig struct {
	// Initial is the starting concurrency limit (default 4).
	Initial float64
	// Min is the floor the limit never shrinks below (default 1).
	Min float64
	// Max is the ceiling the limit never grows above (default 256).
	Max float64
	// Tolerance is how much the windowed average latency may exceed the
	// min-latency baseline before the limiter backs off (default 2.0:
	// back off once requests take twice as long as the uncongested
	// baseline — the queueing-delay signal).
	Tolerance float64
	// Backoff is the multiplicative-decrease factor applied to the
	// limit when the window is over tolerance (default 0.9).
	Backoff float64
	// Window is the number of completed requests per adjustment window
	// (default 16).
	Window int
	// QueueTimeout is the CoDel-style sojourn bound: a request queued
	// longer than this is shed with a typed 503 instead of serving
	// stale work (default 100ms).
	QueueTimeout time.Duration
	// MaxQueue bounds the number of waiting requests across all
	// classes; arrivals beyond it are shed immediately, evicting a
	// lower-class waiter first when the arrival outranks one
	// (default 64).
	MaxQueue int
	// RetryAfter is the backoff hint stamped on shed responses
	// (default 1s).
	RetryAfter time.Duration

	// Now is the injectable clock (default time.Now).
	Now func() time.Time
	// After is the injectable timer used for queue timeouts
	// (default time.After).
	After func(time.Duration) <-chan time.Time
}

func (c *LimiterConfig) defaults() {
	if c.Initial <= 0 {
		c.Initial = 4
	}
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 256
	}
	if c.Tolerance <= 1 {
		c.Tolerance = 2.0
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.9
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 100 * time.Millisecond
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.After == nil {
		c.After = func(d time.Duration) <-chan time.Time { return time.After(d) }
	}
	c.Initial = math.Min(math.Max(c.Initial, c.Min), c.Max)
}

// Limiter is an adaptive concurrency limiter: additive-increase /
// multiplicative-decrease on the observed latency of completed requests
// against a windowed min-latency baseline. While the average latency of
// the last Window completions stays within Tolerance× the baseline the
// limit grows by one per window; when it exceeds tolerance — the
// signature of queueing delay, including gray-slow backends that fail
// nothing but serve everything slowly — the limit shrinks
// multiplicatively. Requests over the limit wait in per-class FIFO
// queues bounded by a CoDel-style sojourn timeout, and the queues drain
// highest class first so that under pressure jobs are shed before
// interactive mitigation, which is shed before characterization.
type Limiter struct {
	cfg LimiterConfig

	mu       sync.Mutex
	inflight int
	limit    float64
	queues   [numClasses]*list.List // of *waiter, FIFO within a class

	// Adjustment window.
	winCount int
	winSum   time.Duration
	winMin   time.Duration
	baseline time.Duration // smallest window-min seen, slowly inflated

	stats LimiterStats
}

type waiter struct {
	class Class
	ch    chan func() // receives the release func on admission, nil on eviction
	elem  *list.Element
}

// LimiterStats is a snapshot of limiter counters for /metrics.
type LimiterStats struct {
	Limit      float64
	Inflight   int
	Queued     int
	BaselineMS float64
	Admitted   [numClasses]uint64
	Shed       [numClasses]uint64 // queue_full + eviction sheds
	Timeouts   [numClasses]uint64 // queue_timeout sheds
	Evictions  uint64             // lower-class waiters displaced
	AdjustUp   uint64
	AdjustDown uint64
}

// NewLimiter returns a started limiter; a nil receiver disables
// admission control (every Acquire admits immediately).
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg.defaults()
	l := &Limiter{cfg: cfg, limit: cfg.Initial}
	for i := range l.queues {
		l.queues[i] = list.New()
	}
	return l
}

// Acquire admits the request, blocks it in the class queue, or sheds it.
// On admission it returns a release func that MUST be called exactly
// once when the request finishes; the release records the request's
// latency sample and hands the slot to the highest-priority waiter.
// A nil limiter admits everything with a no-op release.
func (l *Limiter) Acquire(ctx context.Context, class Class) (func(), error) {
	if l == nil {
		return func() {}, nil
	}
	if class < 0 || class >= numClasses {
		class = ClassMitigate
	}
	l.mu.Lock()
	if float64(l.inflight) < l.limitLocked() {
		l.inflight++
		l.stats.Admitted[class]++
		start := l.cfg.Now()
		l.mu.Unlock()
		return l.releaseFunc(start), nil
	}
	// Over the limit: queue, evicting a lower-class waiter if full.
	if l.queuedLocked() >= l.cfg.MaxQueue {
		if !l.evictLowerLocked(class) {
			l.stats.Shed[class]++
			l.mu.Unlock()
			return nil, &Error{Reason: "queue_full", Class: class, RetryAfter: l.cfg.RetryAfter}
		}
	}
	w := &waiter{class: class, ch: make(chan func(), 1)}
	w.elem = l.queues[class].PushBack(w)
	timeoutC := l.cfg.After(l.cfg.QueueTimeout)
	l.mu.Unlock()

	select {
	case release := <-w.ch:
		if release == nil { // evicted by a higher-class arrival
			return nil, &Error{Reason: "queue_full", Class: class, RetryAfter: l.cfg.RetryAfter}
		}
		return release, nil
	case <-timeoutC:
		l.mu.Lock()
		if w.elem != nil {
			l.queues[class].Remove(w.elem)
			w.elem = nil
			l.stats.Timeouts[class]++
			l.mu.Unlock()
			return nil, &Error{Reason: "queue_timeout", Class: class, RetryAfter: l.cfg.RetryAfter}
		}
		l.mu.Unlock()
		// Admission raced the timeout: the release func is already in
		// the buffered channel; honor the admission.
		release := <-w.ch
		if release == nil {
			return nil, &Error{Reason: "queue_full", Class: class, RetryAfter: l.cfg.RetryAfter}
		}
		return release, nil
	case <-ctx.Done():
		l.mu.Lock()
		if w.elem != nil {
			l.queues[class].Remove(w.elem)
			w.elem = nil
			l.mu.Unlock()
			return nil, ctx.Err()
		}
		l.mu.Unlock()
		// Admitted concurrently with cancellation: take the slot and
		// release it immediately so the count stays balanced.
		if release := <-w.ch; release != nil {
			release()
		}
		return nil, ctx.Err()
	}
}

// releaseFunc returns the once-only release closure for an admitted
// request started at the given instant.
func (l *Limiter) releaseFunc(start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			elapsed := l.cfg.Now().Sub(start)
			l.mu.Lock()
			l.inflight--
			l.recordLocked(elapsed)
			l.admitWaitersLocked()
			l.mu.Unlock()
		})
	}
}

func (l *Limiter) limitLocked() float64 { return l.limit }

func (l *Limiter) queuedLocked() int {
	n := 0
	for _, q := range l.queues {
		if q != nil {
			n += q.Len()
		}
	}
	return n
}

// evictLowerLocked displaces the newest waiter of the lowest class
// strictly below the arriving class, making room in the bounded queue.
// Returns false when every queued waiter already outranks-or-equals the
// arrival (the arrival is shed instead).
func (l *Limiter) evictLowerLocked(arriving Class) bool {
	for c := Class(0); c < arriving; c++ {
		q := l.queues[c]
		if q == nil || q.Len() == 0 {
			continue
		}
		w := q.Remove(q.Back()).(*waiter)
		w.elem = nil
		w.ch <- nil // typed shed, not admission
		l.stats.Evictions++
		l.stats.Shed[c]++
		return true
	}
	return false
}

// admitWaitersLocked hands freed slots to waiters, highest class first,
// FIFO within a class.
func (l *Limiter) admitWaitersLocked() {
	for float64(l.inflight) < l.limitLocked() {
		var w *waiter
		for c := numClasses - 1; c >= 0; c-- {
			q := l.queues[c]
			if q != nil && q.Len() > 0 {
				w = q.Remove(q.Front()).(*waiter)
				break
			}
		}
		if w == nil {
			return
		}
		w.elem = nil
		l.inflight++
		l.stats.Admitted[w.class]++
		w.ch <- l.releaseFunc(l.cfg.Now())
	}
}

// recordLocked folds one completed-request latency into the adjustment
// window and, at window boundaries, runs the AIMD step.
func (l *Limiter) recordLocked(elapsed time.Duration) {
	if elapsed < 0 {
		elapsed = 0
	}
	l.winCount++
	l.winSum += elapsed
	if l.winMin == 0 || elapsed < l.winMin {
		l.winMin = elapsed
	}
	if l.winCount < l.cfg.Window {
		return
	}
	avg := l.winSum / time.Duration(l.winCount)
	if l.baseline == 0 || l.winMin < l.baseline {
		l.baseline = l.winMin
	} else {
		// Slow upward drift so the baseline tracks genuine regime
		// changes (a new benchmark mix) instead of pinning forever to
		// one lucky fast request.
		l.baseline += l.baseline / 64
	}
	if l.baseline > 0 && float64(avg) > l.cfg.Tolerance*float64(l.baseline) {
		l.limit = math.Max(l.cfg.Min, l.limit*l.cfg.Backoff)
		l.stats.AdjustDown++
	} else {
		l.limit = math.Min(l.cfg.Max, l.limit+1)
		l.stats.AdjustUp++
	}
	l.winCount = 0
	l.winSum = 0
	l.winMin = 0
}

// Stats snapshots the limiter counters. Safe on a nil limiter.
func (l *Limiter) Stats() LimiterStats {
	if l == nil {
		return LimiterStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Limit = l.limit
	s.Inflight = l.inflight
	s.Queued = l.queuedLocked()
	s.BaselineMS = float64(l.baseline) / float64(time.Millisecond)
	return s
}

package overload

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Watchdog heartbeats long-lived loops (job workers, the scheduler
// dispatcher) and detects the failure mode breakers cannot see: a loop
// that is neither dead nor making progress. Each loop registers a Task
// and calls Beat() at every iteration; a task whose heartbeat goes stale
// while not idle gets a full goroutine dump in the log (the evidence a
// human needs to find the deadlock) and its cancel func invoked so the
// stuck work is cancelled and — for jobs — requeued.
type Watchdog struct {
	interval time.Duration
	stall    time.Duration
	logf     func(format string, args ...any)
	now      func() time.Time

	mu     sync.Mutex
	tasks  map[*Task]struct{}
	stalls uint64
	stopCh chan struct{}
	wg     sync.WaitGroup
}

// Task is one watched loop.
type Task struct {
	w      *Watchdog
	name   string
	cancel func()

	mu    sync.Mutex
	last  time.Time
	idle  bool
	fired bool // a stall already dumped+cancelled; don't re-fire until the next Beat
}

// WatchdogStats is a snapshot for /metrics.
type WatchdogStats struct {
	Tasks  int
	Stalls uint64
}

// NewWatchdog builds a watchdog that sweeps every interval and declares
// a non-idle task stalled once its heartbeat is older than stall. logf
// may be nil to discard; now may be nil for the wall clock. A nil
// *Watchdog disables watching — Register and the Task methods all
// no-op — so wiring stays optional.
func NewWatchdog(interval, stall time.Duration, logf func(string, ...any)) *Watchdog {
	if interval <= 0 {
		interval = time.Second
	}
	if stall <= 0 {
		stall = 30 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Watchdog{
		interval: interval,
		stall:    stall,
		logf:     logf,
		now:      time.Now,
		tasks:    make(map[*Task]struct{}),
	}
}

// SetNow injects a test clock. Must be called before Start.
func (w *Watchdog) SetNow(now func() time.Time) {
	if w != nil && now != nil {
		w.now = now
	}
}

// Start launches the sweep loop. Safe on a nil watchdog.
func (w *Watchdog) Start() {
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.stopCh != nil {
		w.mu.Unlock()
		return
	}
	w.stopCh = make(chan struct{})
	stop := w.stopCh
	w.mu.Unlock()
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(w.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.Sweep()
			case <-stop:
				return
			}
		}
	}()
}

// Stop halts the sweep loop and waits for it to exit.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.mu.Lock()
	stop := w.stopCh
	w.stopCh = nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	w.wg.Wait()
}

// Register adds a watched loop. cancel is invoked (once per stall) when
// the task's heartbeat goes stale; it must be safe to call from the
// sweep goroutine. The task starts live with a fresh heartbeat.
func (w *Watchdog) Register(name string, cancel func()) *Task {
	if w == nil {
		return nil
	}
	if cancel == nil {
		cancel = func() {}
	}
	t := &Task{w: w, name: name, cancel: cancel, last: w.now()}
	w.mu.Lock()
	w.tasks[t] = struct{}{}
	w.mu.Unlock()
	return t
}

// Sweep runs one stall check; exported so tests (and a debug endpoint)
// can force a check without waiting out the ticker.
func (w *Watchdog) Sweep() {
	if w == nil {
		return
	}
	now := w.now()
	w.mu.Lock()
	tasks := make([]*Task, 0, len(w.tasks))
	for t := range w.tasks {
		tasks = append(tasks, t)
	}
	w.mu.Unlock()

	for _, t := range tasks {
		t.mu.Lock()
		stalled := !t.idle && !t.fired && now.Sub(t.last) > w.stall
		if stalled {
			t.fired = true
		}
		name, age, cancel := t.name, now.Sub(t.last), t.cancel
		t.mu.Unlock()
		if !stalled {
			continue
		}
		w.mu.Lock()
		w.stalls++
		w.mu.Unlock()
		w.logf("watchdog: task %q stalled (no heartbeat for %s); goroutine dump follows\n%s",
			name, age, goroutineDump())
		cancel()
	}
}

// Stats snapshots the watchdog. Safe on a nil watchdog.
func (w *Watchdog) Stats() WatchdogStats {
	if w == nil {
		return WatchdogStats{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return WatchdogStats{Tasks: len(w.tasks), Stalls: w.stalls}
}

// goroutineDump captures every goroutine's stack, growing the buffer
// until the dump fits (capped at 8 MiB).
func goroutineDump() string {
	buf := make([]byte, 1<<16)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		if len(buf) >= 8<<20 {
			return fmt.Sprintf("%s\n... dump truncated at %d bytes", buf[:len(buf)-64], len(buf))
		}
		buf = make([]byte, 2*len(buf))
	}
}

// Beat records liveness: the loop completed an iteration (or made
// observable progress inside one). Clears idle and re-arms stall
// detection after a fire.
func (t *Task) Beat() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.last = t.w.now()
	t.idle = false
	t.fired = false
	t.mu.Unlock()
}

// Idle marks the loop as intentionally blocked (waiting for work); idle
// tasks are never declared stalled until their next Beat.
func (t *Task) Idle() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.idle = true
	t.mu.Unlock()
}

// Done unregisters the task.
func (t *Task) Done() {
	if t == nil {
		return
	}
	t.w.mu.Lock()
	delete(t.w.tasks, t)
	t.w.mu.Unlock()
}

package overload

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

type logCapture struct {
	mu    sync.Mutex
	lines []string
}

func (l *logCapture) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logCapture) joined() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return strings.Join(l.lines, "\n")
}

func TestWatchdogFiresOnStall(t *testing.T) {
	clock := newFakeClock()
	logs := &logCapture{}
	w := NewWatchdog(time.Second, 10*time.Second, logs.logf)
	w.SetNow(clock.Now)

	cancelled := make(chan struct{}, 4)
	task := w.Register("worker-1", func() { cancelled <- struct{}{} })

	// Fresh heartbeat: no fire.
	w.Sweep()
	if len(cancelled) != 0 {
		t.Fatal("watchdog fired on a fresh task")
	}

	// Stale heartbeat: dump + cancel, exactly once until the next beat.
	clock.Advance(11 * time.Second)
	w.Sweep()
	w.Sweep()
	if got := len(cancelled); got != 1 {
		t.Fatalf("cancel fired %d times, want exactly 1", got)
	}
	if s := w.Stats(); s.Stalls != 1 || s.Tasks != 1 {
		t.Fatalf("stats = %+v, want 1 stall / 1 task", s)
	}
	dump := logs.joined()
	if !strings.Contains(dump, `task "worker-1" stalled`) {
		t.Fatalf("log missing stall line:\n%s", dump)
	}
	if !strings.Contains(dump, "goroutine ") {
		t.Fatalf("log missing goroutine dump:\n%s", dump)
	}

	// A beat re-arms detection.
	task.Beat()
	clock.Advance(11 * time.Second)
	w.Sweep()
	if got := len(cancelled); got != 2 {
		t.Fatalf("cancel fired %d times after re-arm, want 2", got)
	}

	task.Done()
	if s := w.Stats(); s.Tasks != 0 {
		t.Fatalf("tasks after Done = %d, want 0", s.Tasks)
	}
}

func TestWatchdogIdleTasksNeverStall(t *testing.T) {
	clock := newFakeClock()
	w := NewWatchdog(time.Second, 10*time.Second, nil)
	w.SetNow(clock.Now)
	fired := false
	task := w.Register("dispatcher", func() { fired = true })
	task.Idle()
	clock.Advance(time.Hour)
	w.Sweep()
	if fired {
		t.Fatal("idle task declared stalled")
	}
	// Waking up re-enables detection.
	task.Beat()
	clock.Advance(11 * time.Second)
	w.Sweep()
	if !fired {
		t.Fatal("post-idle stall not detected")
	}
	task.Done()
}

func TestWatchdogStartStop(t *testing.T) {
	w := NewWatchdog(time.Millisecond, time.Hour, nil)
	w.Start()
	w.Start() // idempotent
	time.Sleep(5 * time.Millisecond)
	w.Stop()
	w.Stop() // idempotent
}

func TestWatchdogNil(t *testing.T) {
	var w *Watchdog
	w.Start()
	task := w.Register("x", nil)
	task.Beat()
	task.Idle()
	task.Done()
	w.Sweep()
	w.Stop()
	if s := w.Stats(); s.Tasks != 0 {
		t.Fatalf("nil watchdog stats = %+v", s)
	}
}

package overload

import (
	"testing"
	"time"
)

func TestBrownoutStepsDownUnderSustainedPressure(t *testing.T) {
	clock := newFakeClock()
	b := NewBrownout(2*time.Second, 5*time.Second, clock.Now)

	// A single shed is not sustained pressure.
	b.Observe(true)
	if got := b.Tier(); got != TierFull {
		t.Fatalf("tier after one shed = %d, want full", got)
	}

	// Pressure sustained past the dwell steps down exactly one tier.
	clock.Advance(2 * time.Second)
	b.Observe(true)
	if got := b.Tier(); got != TierSIM {
		t.Fatalf("tier after sustained pressure = %d, want sim", got)
	}

	// The next step needs a fresh dwell — no instant free-fall.
	b.Observe(true)
	if got := b.Tier(); got != TierSIM {
		t.Fatalf("tier immediately after step = %d, want still sim", got)
	}
	clock.Advance(2 * time.Second)
	b.Observe(true)
	if got := b.Tier(); got != TierBaseline {
		t.Fatalf("tier after second dwell = %d, want baseline", got)
	}

	// Baseline is the floor.
	clock.Advance(10 * time.Second)
	b.Observe(true)
	if got := b.Tier(); got != TierBaseline {
		t.Fatalf("tier = %d, want clamped at baseline", got)
	}

	s := b.Stats()
	if s.StepsDown != 2 || s.StepsUp != 0 {
		t.Fatalf("stats = %+v, want 2 steps down", s)
	}
}

func TestBrownoutRecoversAfterCalm(t *testing.T) {
	clock := newFakeClock()
	b := NewBrownout(time.Second, 5*time.Second, clock.Now)
	// Drive to baseline.
	for b.Tier() != TierBaseline {
		b.Observe(true)
		clock.Advance(time.Second)
	}

	// Calm must be sustained per step: one success is not recovery.
	b.Observe(false)
	if got := b.Tier(); got != TierBaseline {
		t.Fatalf("tier after one calm observation = %d, want baseline", got)
	}
	clock.Advance(5 * time.Second)
	b.Observe(false)
	if got := b.Tier(); got != TierSIM {
		t.Fatalf("tier after one calm dwell = %d, want sim", got)
	}
	clock.Advance(5 * time.Second)
	b.Observe(false)
	if got := b.Tier(); got != TierFull {
		t.Fatalf("tier after two calm dwells = %d, want full", got)
	}

	// A shed during recovery resets the calm clock.
	clock.Advance(time.Second)
	b.Observe(true)
	clock.Advance(time.Second)
	b.Observe(true) // sustained again: back down
	if got := b.Tier(); got != TierSIM {
		t.Fatalf("tier after renewed pressure = %d, want sim", got)
	}
}

func TestBrownoutNil(t *testing.T) {
	var b *Brownout
	b.Observe(true)
	if got := b.Tier(); got != TierFull {
		t.Fatalf("nil brownout tier = %d, want full", got)
	}
}

func TestDegrade(t *testing.T) {
	cases := []struct {
		policy string
		tier   int
		want   string
	}{
		{"aim", TierFull, "aim"},
		{"sim", TierFull, "sim"},
		{"baseline", TierFull, "baseline"},
		{"aim", TierSIM, "sim"},
		{"sim", TierSIM, "sim"},
		{"baseline", TierSIM, "baseline"},
		{"aim", TierBaseline, "baseline"},
		{"sim", TierBaseline, "baseline"},
		{"baseline", TierBaseline, "baseline"},
		{"bogus", TierBaseline, "bogus"},
	}
	for _, c := range cases {
		if got := Degrade(c.policy, c.tier); got != c.want {
			t.Errorf("Degrade(%q, %d) = %q, want %q", c.policy, c.tier, got, c.want)
		}
	}
}

func TestTierName(t *testing.T) {
	if TierName(TierFull) != "full" || TierName(TierSIM) != "sim" || TierName(TierBaseline) != "baseline" {
		t.Fatal("tier names drifted from the wire contract")
	}
}

package overload

import (
	"strconv"
	"testing"
	"time"
)

func TestDeadlineRoundTrip(t *testing.T) {
	want := time.Date(2026, 3, 14, 9, 26, 53, 589793238, time.UTC)
	got, err := ParseDeadline(FormatDeadline(want))
	if err != nil {
		t.Fatalf("parse(format): %v", err)
	}
	if !got.Equal(want) {
		t.Fatalf("round trip = %v, want %v", got, want)
	}
}

func TestDeadlineFormats(t *testing.T) {
	if _, err := ParseDeadline("2026-03-14T09:26:53Z"); err != nil {
		t.Fatalf("RFC3339 without fraction: %v", err)
	}
	ms := time.Date(2026, 3, 14, 9, 26, 53, 0, time.UTC).UnixMilli()
	got, err := ParseDeadline(strconv.FormatInt(ms, 10))
	if err != nil {
		t.Fatalf("unix millis: %v", err)
	}
	if got.UnixMilli() != ms {
		t.Fatalf("unix millis parsed to %v", got)
	}
	if _, err := ParseDeadline("  2026-03-14T09:26:53Z  "); err != nil {
		t.Fatalf("surrounding whitespace: %v", err)
	}
}

func TestDeadlineRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "  ", "soon", "-42", "0", "14:09", "2026-03-14"} {
		if _, err := ParseDeadline(s); err == nil {
			t.Errorf("ParseDeadline(%q) accepted garbage", s)
		}
	}
}

// FuzzParseDeadline asserts the parser never panics and that everything
// it accepts survives a format/parse round trip.
func FuzzParseDeadline(f *testing.F) {
	f.Add("2026-03-14T09:26:53.589793238Z")
	f.Add("2026-03-14T09:26:53Z")
	f.Add("1773480413589")
	f.Add("")
	f.Add("garbage")
	f.Add("9223372036854775807")
	f.Fuzz(func(t *testing.T, s string) {
		parsed, err := ParseDeadline(s)
		if err != nil {
			return
		}
		again, err := ParseDeadline(FormatDeadline(parsed))
		if err != nil {
			t.Fatalf("accepted %q but rejected its canonical form: %v", s, err)
		}
		if !again.Equal(parsed) {
			t.Fatalf("round trip drifted: %v != %v (input %q)", again, parsed, s)
		}
	})
}

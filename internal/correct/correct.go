// Package correct implements confusion-matrix readout mitigation — the
// post-processing technique that became standard practice after the
// paper (Qiskit measurement mitigation, mthree): learn the readout
// channel's transition matrix from calibration circuits, then apply its
// inverse to measured distributions.
//
// It serves as a comparison point for Invert-and-Measure. The two
// approaches are complementary: matrix inversion repairs the *estimated
// distribution* after the fact (and can amplify sampling noise through
// ill-conditioned inverses), while SIM/AIM change the *physical
// measurement* so that fewer errors occur in the first place; matrix
// methods also assume the channel is stationary between calibration and
// use, exactly the assumption AIM's canary trials avoid.
//
// Two calibrations are provided, mirroring standard practice:
//
//   - Tensored: one 2×2 confusion matrix per qubit, learned from n+1
//     calibration circuits; the inverse is the tensor product of the
//     per-qubit inverses. Ignores readout crosstalk.
//   - Full: the complete 2^n×2^n matrix, learned from 2^n preparations;
//     exact but exponentially expensive, like the paper's brute-force
//     RBMS.
package correct

import (
	"fmt"

	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/dist"
	"biasmit/internal/kernels"
	"biasmit/internal/linalg"
)

// maxTensoredWidth bounds the register size for the dense tensored Apply
// (it walks all 2^n outcomes per observed state). Calibration itself is
// linear in n, and ApplyReduced has no width limit.
const maxTensoredWidth = 12

// maxLearnWidth bounds calibration, which needs n+1 circuits.
const maxLearnWidth = 24

// Tensored is a per-qubit confusion-matrix calibration.
// Qubit q's matrix C satisfies C[y][x] = P(read y | true x).
type Tensored struct {
	Width    int
	Matrices [][2][2]float64
	inverses [][2][2]float64
}

// NewTensored builds a calibration from explicit per-qubit confusion
// matrices (e.g. loaded from disk), computing the inverses eagerly so a
// singular matrix fails here rather than at apply time.
func NewTensored(matrices [][2][2]float64) (*Tensored, error) {
	if len(matrices) == 0 || len(matrices) > maxLearnWidth {
		return nil, fmt.Errorf("correct: tensored calibration supports 1..%d qubits, got %d", maxLearnWidth, len(matrices))
	}
	t := &Tensored{Width: len(matrices)}
	for q, c := range matrices {
		for col := 0; col < 2; col++ {
			if c[0][col] < 0 || c[1][col] < 0 {
				return nil, fmt.Errorf("correct: qubit %d has negative confusion entries", q)
			}
		}
		inv, err := linalg.Invert2(c)
		if err != nil {
			return nil, fmt.Errorf("correct: qubit %d confusion matrix is singular", q)
		}
		t.Matrices = append(t.Matrices, c)
		t.inverses = append(t.inverses, inv)
	}
	return t, nil
}

// LearnTensored calibrates per-qubit confusion matrices on the given
// machine and physical layout using n+1 circuits: one all-zeros
// preparation for the P(1|0) column and one single-excitation
// preparation per qubit for the P(0|1) column.
func LearnTensored(m *core.Machine, layout []int, shots int, seed int64) (*Tensored, error) {
	n := len(layout)
	if n < 1 || n > maxLearnWidth {
		return nil, fmt.Errorf("correct: tensored calibration supports 1..%d qubits, got %d", maxLearnWidth, n)
	}
	if shots < 1 {
		return nil, fmt.Errorf("correct: shots must be positive")
	}

	flipRate := func(state bitstring.Bits, q int, s int64) (float64, error) {
		job, err := core.NewJobWithLayout(kernels.BasisPrep(state), m, layout)
		if err != nil {
			return 0, err
		}
		counts, err := job.Baseline(shots, s)
		if err != nil {
			return 0, err
		}
		flips := 0
		for _, out := range counts.Outcomes() {
			if out.Bit(q) != state.Bit(q) {
				flips += counts.Get(out)
			}
		}
		return float64(flips) / float64(counts.Total()), nil
	}

	t := &Tensored{Width: n}
	zeros := bitstring.Zeros(n)
	for q := 0; q < n; q++ {
		p01, err := flipRate(zeros, q, seed+int64(2*q))
		if err != nil {
			return nil, err
		}
		p10, err := flipRate(zeros.SetBit(q, true), q, seed+int64(2*q+1))
		if err != nil {
			return nil, err
		}
		c := [2][2]float64{
			{1 - p01, p10},
			{p01, 1 - p10},
		}
		inv, err := linalg.Invert2(c)
		if err != nil {
			return nil, fmt.Errorf("correct: qubit %d confusion matrix is singular (p01=%v p10=%v)", q, p01, p10)
		}
		t.Matrices = append(t.Matrices, c)
		t.inverses = append(t.inverses, inv)
	}
	return t, nil
}

// Apply returns the mitigated distribution: the tensor-product inverse
// applied to the measured histogram, projected back onto the probability
// simplex.
func (t *Tensored) Apply(counts *dist.Counts) (dist.Dist, error) {
	if counts.Width() != t.Width {
		return dist.Dist{}, fmt.Errorf("correct: histogram width %d for %d-qubit calibration", counts.Width(), t.Width)
	}
	if t.Width > maxTensoredWidth {
		return dist.Dist{}, fmt.Errorf("correct: dense Apply supports up to %d qubits (have %d); use ApplyReduced", maxTensoredWidth, t.Width)
	}
	if counts.Total() == 0 {
		return dist.Dist{}, fmt.Errorf("correct: empty histogram")
	}
	measured := counts.Dist()
	size := 1 << uint(t.Width)
	raw := make([]float64, size)
	for y, py := range measured.P {
		// Distribute p(y) across all x with weight Π_q inv[x_q][y_q].
		for x := 0; x < size; x++ {
			w := py
			for q := 0; q < t.Width; q++ {
				xq := x >> uint(q) & 1
				yq := 0
				if y.Bit(q) {
					yq = 1
				}
				w *= t.inverses[q][xq][yq]
				if w == 0 {
					break
				}
			}
			raw[x] += w
		}
	}
	fixed := linalg.ProjectToSimplex(raw)
	out := dist.NewDist(t.Width)
	for x, p := range fixed {
		if p > 0 {
			out.P[bitstring.New(uint64(x), t.Width)] = p
		}
	}
	return out, nil
}

// ApplyReduced mitigates using only the observed-outcome subspace, the
// approach of scalable correctors like mthree: the tensored confusion
// matrix is restricted to the measured strings, each column renormalized
// over the subspace, and the reduced linear system solved. Cost is
// O(k²·n + k³) for k distinct outcomes — independent of 2^n — at the
// price of ignoring true states that were never read out.
func (t *Tensored) ApplyReduced(counts *dist.Counts) (dist.Dist, error) {
	if counts.Width() != t.Width {
		return dist.Dist{}, fmt.Errorf("correct: histogram width %d for %d-qubit calibration", counts.Width(), t.Width)
	}
	if counts.Total() == 0 {
		return dist.Dist{}, fmt.Errorf("correct: empty histogram")
	}
	observed := counts.Outcomes()
	k := len(observed)
	measured := counts.Dist()

	// Reduced confusion matrix A[i][j] = P(read observed[i] | true observed[j]).
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k)
		for j := range a[i] {
			a[i][j] = t.transition(observed[j], observed[i])
		}
	}
	// Column-normalize over the subspace so the reduced system remains
	// stochastic (probability that escaped the subspace is reassigned
	// proportionally, mthree's convention).
	for j := 0; j < k; j++ {
		var col float64
		for i := 0; i < k; i++ {
			col += a[i][j]
		}
		if col <= 0 {
			return dist.Dist{}, fmt.Errorf("correct: reduced column %d has no mass", j)
		}
		for i := 0; i < k; i++ {
			a[i][j] /= col
		}
	}
	b := make([]float64, k)
	for i, y := range observed {
		b[i] = measured.Prob(y)
	}
	raw, err := linalg.Solve(a, b)
	if err != nil {
		return dist.Dist{}, fmt.Errorf("correct: reduced solve: %w", err)
	}
	fixed := linalg.ProjectToSimplex(raw)
	out := dist.NewDist(t.Width)
	for i, p := range fixed {
		if p > 0 {
			out.P[observed[i]] = p
		}
	}
	return out, nil
}

// transition returns the tensored P(read y | true x).
func (t *Tensored) transition(x, y bitstring.Bits) float64 {
	p := 1.0
	for q := 0; q < t.Width; q++ {
		xq, yq := 0, 0
		if x.Bit(q) {
			xq = 1
		}
		if y.Bit(q) {
			yq = 1
		}
		p *= t.Matrices[q][yq][xq]
		if p == 0 {
			return 0
		}
	}
	return p
}

// maxFullWidth bounds the register size for the full calibration
// (2^n preparations and a dense 2^n×2^n solve).
const maxFullWidth = 8

// Full is a complete confusion-matrix calibration:
// M[y][x] = P(read y | true x) over all basis states.
type Full struct {
	Width  int
	Matrix [][]float64
}

// LearnFull calibrates the complete confusion matrix by preparing every
// basis state, like the paper's brute-force RBMS but retaining the whole
// transition row rather than only the diagonal.
func LearnFull(m *core.Machine, layout []int, shotsPerState int, seed int64) (*Full, error) {
	n := len(layout)
	if n < 1 || n > maxFullWidth {
		return nil, fmt.Errorf("correct: full calibration supports 1..%d qubits, got %d", maxFullWidth, n)
	}
	if shotsPerState < 1 {
		return nil, fmt.Errorf("correct: shotsPerState must be positive")
	}
	size := 1 << uint(n)
	matrix := make([][]float64, size)
	for i := range matrix {
		matrix[i] = make([]float64, size)
	}
	for _, x := range bitstring.All(n) {
		job, err := core.NewJobWithLayout(kernels.BasisPrep(x), m, layout)
		if err != nil {
			return nil, err
		}
		counts, err := job.Baseline(shotsPerState, seed+int64(x.Uint64()))
		if err != nil {
			return nil, err
		}
		for _, y := range counts.Outcomes() {
			matrix[y.Uint64()][x.Uint64()] = float64(counts.Get(y)) / float64(counts.Total())
		}
	}
	return &Full{Width: n, Matrix: matrix}, nil
}

// Apply solves M·c = measured for the true distribution c and projects
// it onto the probability simplex.
func (f *Full) Apply(counts *dist.Counts) (dist.Dist, error) {
	if counts.Width() != f.Width {
		return dist.Dist{}, fmt.Errorf("correct: histogram width %d for %d-qubit calibration", counts.Width(), f.Width)
	}
	if counts.Total() == 0 {
		return dist.Dist{}, fmt.Errorf("correct: empty histogram")
	}
	measured := counts.Dist()
	size := 1 << uint(f.Width)
	b := make([]float64, size)
	for y, p := range measured.P {
		b[y.Uint64()] = p
	}
	raw, err := linalg.Solve(f.Matrix, b)
	if err != nil {
		return dist.Dist{}, fmt.Errorf("correct: %w", err)
	}
	fixed := linalg.ProjectToSimplex(raw)
	out := dist.NewDist(f.Width)
	for x, p := range fixed {
		if p > 0 {
			out.P[bitstring.New(uint64(x), f.Width)] = p
		}
	}
	return out, nil
}

package correct

import (
	"math"
	"testing"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
)

func bs(s string) bitstring.Bits { return bitstring.MustParse(s) }

func readoutOnlyMachine(dev *device.Device) *core.Machine {
	m := core.NewMachine(dev)
	m.Opt = backend.Options{NoGateNoise: true, NoDecay: true}
	return m
}

func TestLearnTensoredMatchesModel(t *testing.T) {
	dev := device.IBMQX2() // no crosstalk: tensored assumption holds exactly
	m := readoutOnlyMachine(dev)
	layout := []int{0, 1, 2, 3, 4}
	cal, err := LearnTensored(m, layout, 40000, 1)
	if err != nil {
		t.Fatal(err)
	}
	model := dev.ReadoutModel()
	for q := 0; q < 5; q++ {
		wantP01 := model.PerQubit[q].P01
		wantP10 := model.PerQubit[q].P10
		if got := cal.Matrices[q][1][0]; math.Abs(got-wantP01) > 0.01 {
			t.Errorf("qubit %d P(1|0) = %v, model %v", q, got, wantP01)
		}
		if got := cal.Matrices[q][0][1]; math.Abs(got-wantP10) > 0.01 {
			t.Errorf("qubit %d P(0|1) = %v, model %v", q, got, wantP10)
		}
		// Columns are stochastic.
		for col := 0; col < 2; col++ {
			sum := cal.Matrices[q][0][col] + cal.Matrices[q][1][col]
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("qubit %d column %d sums to %v", q, col, sum)
			}
		}
	}
}

func TestTensoredApplyRecoversBasisState(t *testing.T) {
	// Measuring the vulnerable all-ones state: mitigation should push its
	// probability back toward 1.
	dev := device.IBMQX2()
	m := readoutOnlyMachine(dev)
	layout := []int{0, 1, 2, 3, 4}
	cal, err := LearnTensored(m, layout, 40000, 2)
	if err != nil {
		t.Fatal(err)
	}
	target := bs("11111")
	job, err := core.NewJobWithLayout(kernels.BasisPrep(target), m, layout)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := job.Baseline(40000, 3)
	if err != nil {
		t.Fatal(err)
	}
	rawPST := metrics.PST(counts.Dist(), target)
	fixed, err := cal.Apply(counts)
	if err != nil {
		t.Fatal(err)
	}
	fixedPST := metrics.PST(fixed, target)
	if fixedPST <= rawPST {
		t.Errorf("mitigation did not help: raw %v, mitigated %v", rawPST, fixedPST)
	}
	if fixedPST < 0.97 {
		t.Errorf("mitigated PST = %v, want ≈ 1 on a crosstalk-free machine", fixedPST)
	}
	if mass := fixed.Mass(); math.Abs(mass-1) > 1e-9 {
		t.Errorf("mitigated mass = %v", mass)
	}
}

func TestTensoredMissesCrosstalk(t *testing.T) {
	// On ibmqx4 the correlated readout violates the tensored assumption:
	// the full calibration must recover the state strictly better.
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	layout := []int{0, 1, 2, 3, 4}
	tens, err := LearnTensored(m, layout, 40000, 4)
	if err != nil {
		t.Fatal(err)
	}
	full, err := LearnFull(m, layout, 8000, 5)
	if err != nil {
		t.Fatal(err)
	}
	target := bs("11011") // excites several crosstalk triggers
	job, err := core.NewJobWithLayout(kernels.BasisPrep(target), m, layout)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := job.Baseline(60000, 6)
	if err != nil {
		t.Fatal(err)
	}
	dT, err := tens.Apply(counts)
	if err != nil {
		t.Fatal(err)
	}
	dF, err := full.Apply(counts)
	if err != nil {
		t.Fatal(err)
	}
	pstT := metrics.PST(dT, target)
	pstF := metrics.PST(dF, target)
	if pstF <= pstT {
		t.Errorf("full calibration (%v) not better than tensored (%v) under crosstalk", pstF, pstT)
	}
	if pstF < 0.9 {
		t.Errorf("full mitigation PST = %v, want near 1", pstF)
	}
}

func TestFullApplyOnSuperposition(t *testing.T) {
	// Mitigating a GHZ measurement should restore the 0.5/0.5 split.
	dev := device.IBMQX2()
	m := readoutOnlyMachine(dev)
	layout := []int{0, 1, 2, 3, 4}
	full, err := LearnFull(m, layout, 8000, 7)
	if err != nil {
		t.Fatal(err)
	}
	job, err := core.NewJobWithLayout(kernels.GHZ(5), m, layout)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := job.Baseline(60000, 8)
	if err != nil {
		t.Fatal(err)
	}
	raw := counts.Dist()
	fixed, err := full.Apply(counts)
	if err != nil {
		t.Fatal(err)
	}
	rawSkew := raw.Prob(bs("00000")) / raw.Prob(bs("11111"))
	fixedSkew := fixed.Prob(bs("00000")) / fixed.Prob(bs("11111"))
	if math.Abs(fixedSkew-1) > math.Abs(rawSkew-1) {
		t.Errorf("mitigation worsened GHZ skew: raw %v, mitigated %v", rawSkew, fixedSkew)
	}
	if math.Abs(fixed.Prob(bs("00000"))-0.5) > 0.05 {
		t.Errorf("mitigated P(00000) = %v, want ≈ 0.5", fixed.Prob(bs("00000")))
	}
}

func TestValidation(t *testing.T) {
	dev := device.IBMQX2()
	m := readoutOnlyMachine(dev)
	if _, err := LearnTensored(m, nil, 100, 1); err == nil {
		t.Error("empty layout accepted")
	}
	if _, err := LearnTensored(m, []int{0}, 0, 1); err == nil {
		t.Error("zero shots accepted")
	}
	if _, err := LearnFull(m, make([]int, maxFullWidth+1), 100, 1); err == nil {
		t.Error("oversized full calibration accepted")
	}
	cal, err := LearnTensored(m, []int{0, 1}, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cal.Apply(dist.NewCounts(3)); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := cal.Apply(dist.NewCounts(2)); err == nil {
		t.Error("empty histogram accepted")
	}
}

func TestTensoredApplyPreservesCleanDistributions(t *testing.T) {
	// With a perfect readout model (identity confusion matrices), Apply
	// must return the input distribution.
	cal := &Tensored{Width: 2}
	for q := 0; q < 2; q++ {
		cal.Matrices = append(cal.Matrices, [2][2]float64{{1, 0}, {0, 1}})
		cal.inverses = append(cal.inverses, [2][2]float64{{1, 0}, {0, 1}})
	}
	counts := dist.NewCounts(2)
	counts.Add(bs("01"), 3)
	counts.Add(bs("10"), 1)
	fixed, err := cal.Apply(counts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fixed.Prob(bs("01"))-0.75) > 1e-9 || math.Abs(fixed.Prob(bs("10"))-0.25) > 1e-9 {
		t.Errorf("identity mitigation changed the distribution: %v", fixed.P)
	}
}

func TestApplyReducedMatchesDenseOnConcentratedDist(t *testing.T) {
	// For a basis-state measurement nearly all mass sits in the observed
	// subspace, so the reduced and dense corrections must agree.
	dev := device.IBMQX2()
	m := readoutOnlyMachine(dev)
	layout := []int{0, 1, 2, 3, 4}
	cal, err := LearnTensored(m, layout, 40000, 9)
	if err != nil {
		t.Fatal(err)
	}
	target := bs("11110")
	job, err := core.NewJobWithLayout(kernels.BasisPrep(target), m, layout)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := job.Baseline(60000, 10)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := cal.Apply(counts)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := cal.ApplyReduced(counts)
	if err != nil {
		t.Fatal(err)
	}
	if tvd := dense.TVD(reduced); tvd > 0.02 {
		t.Errorf("reduced vs dense TVD = %v", tvd)
	}
	if pst := metrics.PST(reduced, target); pst < 0.95 {
		t.Errorf("reduced mitigation PST = %v", pst)
	}
}

func TestApplyReducedScalesToMelbourne(t *testing.T) {
	// 14 qubits: the dense Apply is refused, the reduced solve works.
	dev := device.IBMQMelbourne()
	m := readoutOnlyMachine(dev)
	layout := make([]int, 14)
	for i := range layout {
		layout[i] = i
	}
	cal, err := LearnTensored(m, layout, 8000, 11)
	if err != nil {
		t.Fatal(err)
	}
	target := bitstring.MustParse("00000011111111")
	job, err := core.NewJobWithLayout(kernels.BasisPrep(target), m, layout)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := job.Baseline(30000, 12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cal.Apply(counts); err == nil {
		t.Error("dense Apply accepted 14 qubits")
	}
	fixed, err := cal.ApplyReduced(counts)
	if err != nil {
		t.Fatal(err)
	}
	rawPST := metrics.PST(counts.Dist(), target)
	fixedPST := metrics.PST(fixed, target)
	if fixedPST <= rawPST {
		t.Errorf("reduced mitigation did not help at 14 qubits: %v vs %v", fixedPST, rawPST)
	}
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"biasmit/internal/bitstring"
	"biasmit/internal/device"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
)

func bs(s string) bitstring.Bits { return bitstring.MustParse(s) }

// noiselessMachine disables every noise process for semantics tests.
func noiselessMachine(dev *device.Device) *Machine {
	m := NewMachine(dev)
	m.Opt.NoGateNoise = true
	m.Opt.NoDecay = true
	m.Opt.NoReadoutError = true
	return m
}

// readoutOnlyMachine keeps the readout channel but disables gate noise
// and decay, isolating the effect the paper characterizes.
func readoutOnlyMachine(dev *device.Device) *Machine {
	m := NewMachine(dev)
	m.Opt.NoGateNoise = true
	m.Opt.NoDecay = true
	return m
}

func pstOf(counts interface {
	Get(bitstring.Bits) int
	Total() int
}, b bitstring.Bits) float64 {
	return float64(counts.Get(b)) / float64(counts.Total())
}

func TestSplitShots(t *testing.T) {
	cases := []struct {
		shots, n int
		want     []int
	}{
		{10, 2, []int{5, 5}},
		{10, 4, []int{3, 3, 2, 2}},
		{7, 4, []int{2, 2, 2, 1}},
		{4, 4, []int{1, 1, 1, 1}},
	}
	for _, c := range cases {
		got := splitShots(c.shots, c.n)
		sum := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitShots(%d,%d) = %v, want %v", c.shots, c.n, got, c.want)
				break
			}
			sum += got[i]
		}
		if sum != c.shots {
			t.Errorf("splitShots(%d,%d) sums to %d", c.shots, c.n, sum)
		}
	}
}

func TestQuickSplitShotsInvariants(t *testing.T) {
	f := func(shotsRaw uint16, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		shots := int(shotsRaw) + n
		got := splitShots(shots, n)
		sum, min, max := 0, shots, 0
		for _, g := range got {
			sum += g
			if g < min {
				min = g
			}
			if g > max {
				max = g
			}
		}
		return sum == shots && max-min <= 1 && min >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(83))}); err != nil {
		t.Error(err)
	}
}

func TestRunWithInversionNoiselessIdentity(t *testing.T) {
	m := noiselessMachine(device.IBMQX4())
	job, err := NewJob(kernels.BasisPrep(bs("01101")), m)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"00000", "11111", "10101", "01010", "11000"} {
		counts, err := job.RunWithInversion(bs(s), 500, 77)
		if err != nil {
			t.Fatal(err)
		}
		if got := counts.Get(bs("01101")); got != 500 {
			t.Errorf("inversion %s: corrected count = %d, want 500", s, got)
		}
	}
}

func TestRunWithInversionWidthMismatch(t *testing.T) {
	m := noiselessMachine(device.IBMQX2())
	job, err := NewJob(kernels.BasisPrep(bs("010")), m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.RunWithInversion(bs("0101"), 10, 1); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestFigure1InvertAndMeasure(t *testing.T) {
	// Paper Fig 1 on IBM-Q5: PST(00000) ≈ 0.84 > inverted-11111 ≈ 0.78 >
	// direct-11111 ≈ 0.62. We assert the ordering and rough magnitudes.
	m := NewMachine(device.IBMQX4())
	const shots = 16000

	jobZeros, err := NewJobWithLayout(kernels.BasisPrep(bs("00000")), m, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	cZeros, err := jobZeros.Baseline(shots, 101)
	if err != nil {
		t.Fatal(err)
	}
	pstZeros := pstOf(cZeros, bs("00000"))

	jobOnes, err := NewJobWithLayout(kernels.BasisPrep(bs("11111")), m, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	cOnes, err := jobOnes.Baseline(shots, 102)
	if err != nil {
		t.Fatal(err)
	}
	pstOnes := pstOf(cOnes, bs("11111"))

	cInv, err := jobOnes.RunWithInversion(bs("11111"), shots, 103)
	if err != nil {
		t.Fatal(err)
	}
	pstInv := pstOf(cInv, bs("11111"))

	if !(pstZeros > pstInv && pstInv > pstOnes) {
		t.Errorf("Fig 1 ordering violated: zeros=%.3f inverted=%.3f ones=%.3f", pstZeros, pstInv, pstOnes)
	}
	if pstZeros < 0.70 || pstZeros > 0.95 {
		t.Errorf("PST(00000) = %.3f, paper shows ≈ 0.84", pstZeros)
	}
	if pstOnes > 0.70 {
		t.Errorf("PST(11111) = %.3f, paper shows ≈ 0.62", pstOnes)
	}
}

func TestStandardInversionStrings(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		strings, err := StandardInversionStrings(5, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(strings) != k {
			t.Fatalf("k=%d returned %d strings", k, len(strings))
		}
		seen := make(map[bitstring.Bits]bool)
		for _, s := range strings {
			if s.Width() != 5 {
				t.Errorf("k=%d: width %d", k, s.Width())
			}
			if seen[s] {
				t.Errorf("k=%d: duplicate string %v", k, s)
			}
			seen[s] = true
		}
	}
	strings4, _ := StandardInversionStrings(5, 4)
	want := []string{"00000", "11111", "10101", "01010"}
	for i, w := range want {
		if strings4[i] != bs(w) {
			t.Errorf("4-mode strings = %v", strings4)
			break
		}
	}
	if _, err := StandardInversionStrings(5, 3); err == nil {
		t.Error("k=3 accepted")
	}
}

func TestSIMPreservesTrialBudget(t *testing.T) {
	m := readoutOnlyMachine(device.IBMQX4())
	job, err := NewJob(kernels.BasisPrep(bs("11011")), m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SIM4(job, 10001, 104)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.Total() != 10001 {
		t.Errorf("merged total = %d, want 10001", res.Merged.Total())
	}
	if len(res.PerMode) != 4 {
		t.Errorf("per-mode histograms = %d", len(res.PerMode))
	}
	sum := 0
	for _, pm := range res.PerMode {
		sum += pm.Total()
	}
	if sum != 10001 {
		t.Errorf("per-mode totals sum to %d", sum)
	}
}

func TestSIMImprovesWeakStatePST(t *testing.T) {
	// Measuring the all-ones state: baseline suffers the full bias; SIM
	// averages it over four modes (paper §5.2).
	m := readoutOnlyMachine(device.IBMQX2())
	target := bs("11111")
	job, err := NewJobWithLayout(kernels.BasisPrep(target), m, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	const shots = 24000
	base, err := job.Baseline(shots, 105)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SIM4(job, shots, 106)
	if err != nil {
		t.Fatal(err)
	}
	basePST := pstOf(base, target)
	simPST := pstOf(sim.Merged, target)
	if simPST <= basePST {
		t.Errorf("SIM did not improve weak-state PST: baseline=%.4f SIM=%.4f", basePST, simPST)
	}
}

func TestSIMCostsStrongStatePST(t *testing.T) {
	// The flip side (§5.1): for the strongest state, inverting some
	// trials hurts. SIM trades worst case for average.
	m := readoutOnlyMachine(device.IBMQX2())
	target := bs("00000")
	job, err := NewJobWithLayout(kernels.BasisPrep(target), m, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	const shots = 24000
	base, err := job.Baseline(shots, 107)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SIM4(job, shots, 108)
	if err != nil {
		t.Fatal(err)
	}
	if pstOf(sim.Merged, target) >= pstOf(base, target) {
		t.Errorf("SIM should not beat baseline on the strongest state: baseline=%.4f SIM=%.4f",
			pstOf(base, target), pstOf(sim.Merged, target))
	}
}

func TestSIMValidation(t *testing.T) {
	m := noiselessMachine(device.IBMQX2())
	job, err := NewJob(kernels.BasisPrep(bs("000")), m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SIM(job, nil, 100, 1); err == nil {
		t.Error("empty string set accepted")
	}
	strings, _ := StandardInversionStrings(3, 4)
	if _, err := SIM(job, strings, 3, 1); err == nil {
		t.Error("shots < modes accepted")
	}
}

func TestSIMAveragesTowardMeanBMS(t *testing.T) {
	// With k=2^n modes (here n=3 → 8 strings covering all inversions),
	// the measured PST becomes state-independent: every state sees the
	// average error (paper §5.3). We verify the spread shrinks sharply
	// versus baseline.
	dev := device.IBMQX2()
	m := readoutOnlyMachine(dev)
	all := bitstring.All(3)
	var basePSTs, simPSTs []float64
	for _, target := range all {
		job, err := NewJobWithLayout(kernels.BasisPrep(target), m, []int{0, 1, 4})
		if err != nil {
			t.Fatal(err)
		}
		base, err := job.Baseline(8000, 109)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := SIM(job, all, 8000, 110)
		if err != nil {
			t.Fatal(err)
		}
		basePSTs = append(basePSTs, pstOf(base, target))
		simPSTs = append(simPSTs, pstOf(sim.Merged, target))
	}
	if spread(simPSTs) >= spread(basePSTs)/2 {
		t.Errorf("full-mode SIM spread %.4f not well below baseline spread %.4f",
			spread(simPSTs), spread(basePSTs))
	}
}

func spread(v []float64) float64 {
	min, max := math.Inf(1), math.Inf(-1)
	for _, x := range v {
		min = math.Min(min, x)
		max = math.Max(max, x)
	}
	return max - min
}

func TestFig7WorkedExampleShape(t *testing.T) {
	// Paper Fig 7: expected output "101"; standard mode is dominated by
	// the lower-weight error "001", and merging with the inverted mode
	// restores "101" to rank 1. We reproduce the qualitative flip using
	// a strongly biased synthetic device.
	dev := device.IBMQX2()
	m := readoutOnlyMachine(dev)
	target := bs("101")
	job, err := NewJobWithLayout(kernels.BasisPrep(target), m, []int{0, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	strings2, _ := StandardInversionStrings(3, 2)
	res, err := SIM(job, strings2, 20000, 111)
	if err != nil {
		t.Fatal(err)
	}
	if rank := metrics.ROCA(res.Merged.Dist(), target); rank != 1 {
		t.Errorf("merged ROCA = %d, want 1", rank)
	}
}

func TestBaselineMatchesBackendDirectly(t *testing.T) {
	// Baseline is RunWithInversion(zeros): spot-check equivalence.
	m := readoutOnlyMachine(device.IBMQX4())
	job, err := NewJob(kernels.BasisPrep(bs("0110")), m)
	if err != nil {
		t.Fatal(err)
	}
	a, err := job.Baseline(4000, 112)
	if err != nil {
		t.Fatal(err)
	}
	b, err := job.RunWithInversion(bitstring.Zeros(4), 4000, 112)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range a.Outcomes() {
		if a.Get(o) != b.Get(o) {
			t.Fatalf("baseline != zero-inversion at %v", o)
		}
	}
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for g := 0; g < 1000; g++ {
		s := deriveSeed(42, g)
		if seen[s] {
			t.Fatalf("seed collision at group %d", g)
		}
		seen[s] = true
	}
	if deriveSeed(1, 0) == deriveSeed(2, 0) {
		t.Error("different base seeds collide")
	}
}

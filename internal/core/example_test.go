package core_test

import (
	"fmt"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
)

// readoutMachine isolates the effect the paper studies: only the
// classical readout channel corrupts outcomes, so the examples below are
// exactly reproducible.
func readoutMachine(dev *device.Device) *core.Machine {
	m := core.NewMachine(dev)
	m.Opt = backend.Options{NoGateNoise: true, NoDecay: true}
	return m
}

// The basic Invert-and-Measure flow: measure the vulnerable all-ones
// state directly and through a full inversion.
func ExampleJob_RunWithInversion() {
	m := readoutMachine(device.IBMQX2())
	target := bitstring.MustParse("11111")
	job, err := core.NewJobWithLayout(kernels.BasisPrep(target), m, []int{0, 1, 2, 3, 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	direct, _ := job.Baseline(50000, 7)
	inverted, _ := job.RunWithInversion(bitstring.Ones(5), 50000, 7)

	pDirect := float64(direct.Get(target)) / 50000
	pInverted := float64(inverted.Get(target)) / 50000
	fmt.Printf("direct measurement recovers 11111 less often: %v\n", pDirect < pInverted)
	// Output:
	// direct measurement recovers 11111 less often: true
}

// SIM needs no knowledge of the state being measured: it splits trials
// across four static inversion strings and merges.
func ExampleSIM4() {
	m := readoutMachine(device.IBMQX2())
	target := bitstring.MustParse("11111")
	job, err := core.NewJobWithLayout(kernels.BasisPrep(target), m, []int{0, 1, 2, 3, 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	baseline, _ := job.Baseline(40000, 3)
	sim, _ := core.SIM4(job, 40000, 4)

	basePST := metrics.PST(baseline.Dist(), target)
	simPST := metrics.PST(sim.Merged.Dist(), target)
	fmt.Printf("modes: %d\n", len(sim.Strings))
	fmt.Printf("SIM beats the baseline on a weak state: %v\n", simPST > basePST)
	// Output:
	// modes: 4
	// SIM beats the baseline on a weak state: true
}

// AIM profiles the machine, shortlists outputs with canary trials, and
// measures each candidate mapped onto the strongest state.
func ExampleAIM() {
	m := readoutMachine(device.IBMQX4())
	target := bitstring.MustParse("11011")
	job, err := core.NewJobWithLayout(kernels.BasisPrep(target), m, []int{0, 1, 2, 3, 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	rbms, _ := job.Profiler().BruteForce(2000, 5)
	res, _ := core.AIM(job, rbms, core.AIMConfig{}, 20000, 6)

	fmt.Printf("trial budget preserved: %v\n", res.Merged.Total() == 20000)
	fmt.Printf("true output among candidates: %v\n", hasCandidate(res, target))
	// Output:
	// trial budget preserved: true
	// true output among candidates: true
}

func hasCandidate(res *core.AIMResult, target bitstring.Bits) bool {
	for _, c := range res.Candidates {
		if c.Output == target {
			return true
		}
	}
	return false
}

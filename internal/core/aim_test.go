package core

import (
	"math"
	"testing"

	"biasmit/internal/bitstring"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
)

func TestAIMConfigDefaults(t *testing.T) {
	cfg, err := AIMConfig{}.withDefaults(5)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CanaryFraction != 0.25 || cfg.K != 4 || len(cfg.CanaryStrings) != 4 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestAIMConfigValidation(t *testing.T) {
	cases := []AIMConfig{
		{CanaryFraction: -0.1},
		{CanaryFraction: 1.5},
		{K: -1},
		{CanaryStrings: []bitstring.Bits{bitstring.Zeros(3)}}, // wrong width for 5
	}
	for i, cfg := range cases {
		if _, err := cfg.withDefaults(5); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLikelihoods(t *testing.T) {
	// Paper Eq 1 example: X has strength 0.1, Y 0.2, equal frequency →
	// X twice as likely as Y.
	rbms, _ := NewRBMS(1, []float64{0.1, 0.2})
	obs := dist.Dist{Width: 1, P: map[bitstring.Bits]float64{
		bs("0"): 0.5, bs("1"): 0.5,
	}}
	l := Likelihoods(obs, rbms)
	if math.Abs(l[bs("0")]/l[bs("1")]-2) > 1e-9 {
		t.Errorf("likelihood ratio = %v", l[bs("0")]/l[bs("1")])
	}
}

func TestLikelihoodsZeroStrengthFloor(t *testing.T) {
	rbms, _ := NewRBMS(1, []float64{0, 0.2})
	obs := dist.Dist{Width: 1, P: map[bitstring.Bits]float64{
		bs("0"): 0.5, bs("1"): 0.5,
	}}
	l := Likelihoods(obs, rbms)
	if !(l[bs("0")] > l[bs("1")]) || math.IsInf(l[bs("0")], 1) {
		t.Errorf("zero-strength handling: %v", l)
	}
}

func TestTopKByLikelihoodDeterministic(t *testing.T) {
	l := map[bitstring.Bits]float64{
		bs("00"): 1.0, bs("01"): 2.0, bs("10"): 2.0, bs("11"): 0.5,
	}
	top := topKByLikelihood(l, 3)
	if len(top) != 3 || top[0] != bs("01") || top[1] != bs("10") || top[2] != bs("00") {
		t.Errorf("topK = %v", top)
	}
	all := topKByLikelihood(l, 10)
	if len(all) != 4 {
		t.Errorf("k beyond size = %v", all)
	}
}

func TestAIMPreservesTrialBudget(t *testing.T) {
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	job, err := NewJobWithLayout(kernels.BasisPrep(bs("11011")), m, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	rbms := exactRBMS(dev, []int{0, 1, 2, 3, 4})
	res, err := AIM(job, rbms, AIMConfig{}, 8000, 301)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.Total() != 8000 {
		t.Errorf("merged total = %d", res.Merged.Total())
	}
	if res.Canary.Total() != 2000 {
		t.Errorf("canary total = %d, want 25%% of 8000", res.Canary.Total())
	}
	if len(res.Candidates) == 0 || len(res.Candidates) > 4 {
		t.Errorf("candidates = %d", len(res.Candidates))
	}
}

func TestAIMCandidateInversionsTargetStrongest(t *testing.T) {
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	job, err := NewJobWithLayout(kernels.BasisPrep(bs("10110")), m, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	rbms := exactRBMS(dev, []int{0, 1, 2, 3, 4})
	res, err := AIM(job, rbms, AIMConfig{}, 8000, 302)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.Output.Xor(c.Inversion) != res.Strongest {
			t.Errorf("candidate %v inversion %v does not map to strongest %v",
				c.Output, c.Inversion, res.Strongest)
		}
	}
	// The true output must be among the candidates for a readout-only
	// machine with this budget.
	found := false
	for _, c := range res.Candidates {
		if c.Output == bs("10110") {
			found = true
		}
	}
	if !found {
		t.Errorf("true output missing from candidates %v", res.Candidates)
	}
}

func TestAIMBeatsSIMOnWeakStates(t *testing.T) {
	// Fig 13's claim: for weak target states on ibmqx4, AIM > SIM >
	// baseline in PST. Use the machine's weakest basis state as target.
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	layout := []int{0, 1, 2, 3, 4}
	rbms := exactRBMS(dev, layout)
	target := weakestState(rbms)
	job, err := NewJobWithLayout(kernels.BasisPrep(target), m, layout)
	if err != nil {
		t.Fatal(err)
	}
	const shots = 32000
	base, err := job.Baseline(shots, 303)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SIM4(job, shots, 304)
	if err != nil {
		t.Fatal(err)
	}
	aim, err := AIM(job, rbms, AIMConfig{}, shots, 305)
	if err != nil {
		t.Fatal(err)
	}
	basePST := pstOf(base, target)
	simPST := pstOf(sim.Merged, target)
	aimPST := pstOf(aim.Merged, target)
	if !(aimPST > simPST && simPST > basePST) {
		t.Errorf("ordering violated: baseline=%.4f SIM=%.4f AIM=%.4f", basePST, simPST, aimPST)
	}
}

func TestAIMFlattensPSTAcrossStates(t *testing.T) {
	// Fig 13: with AIM the PST is nearly state-independent; the baseline
	// varies strongly with the stored value. Compare PST spreads across a
	// sample of basis states.
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	layout := []int{0, 1, 2, 3, 4}
	rbms := exactRBMS(dev, layout)
	targets := []bitstring.Bits{
		bs("00000"), bs("00111"), bs("11011"), bs("11111"), bs("10101"),
	}
	var basePSTs, aimPSTs []float64
	for i, target := range targets {
		job, err := NewJobWithLayout(kernels.BasisPrep(target), m, layout)
		if err != nil {
			t.Fatal(err)
		}
		base, err := job.Baseline(12000, int64(400+i))
		if err != nil {
			t.Fatal(err)
		}
		aim, err := AIM(job, rbms, AIMConfig{}, 12000, int64(500+i))
		if err != nil {
			t.Fatal(err)
		}
		basePSTs = append(basePSTs, pstOf(base, target))
		aimPSTs = append(aimPSTs, pstOf(aim.Merged, target))
	}
	if spread(aimPSTs) >= spread(basePSTs) {
		t.Errorf("AIM spread %.4f not below baseline spread %.4f (base %v, aim %v)",
			spread(aimPSTs), spread(basePSTs), basePSTs, aimPSTs)
	}
}

func TestAIMValidation(t *testing.T) {
	dev := device.IBMQX2()
	m := readoutOnlyMachine(dev)
	job, err := NewJobWithLayout(kernels.BasisPrep(bs("101")), m, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	rbms3 := exactRBMS(dev, []int{0, 1, 2})
	rbms5 := exactRBMS(dev, []int{0, 1, 2, 3, 4})
	if _, err := AIM(job, rbms5, AIMConfig{}, 8000, 1); err == nil {
		t.Error("RBMS width mismatch accepted")
	}
	if _, err := AIM(job, rbms3, AIMConfig{}, 8, 1); err == nil {
		t.Error("tiny budget accepted")
	}
	if _, err := AIM(job, rbms3, AIMConfig{CanaryFraction: 0.99, K: 100}, 100, 1); err == nil {
		t.Error("K exceeding adaptive budget accepted")
	}
}

func TestAIMImprovesIST(t *testing.T) {
	// Table 5's metric: AIM lifts IST when the correct answer is a weak
	// state being masked by stronger incorrect answers.
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	layout := []int{0, 1, 2, 3, 4}
	rbms := exactRBMS(dev, layout)
	target := weakestState(rbms)
	job, err := NewJobWithLayout(kernels.BasisPrep(target), m, layout)
	if err != nil {
		t.Fatal(err)
	}
	const shots = 32000
	base, err := job.Baseline(shots, 306)
	if err != nil {
		t.Fatal(err)
	}
	aim, err := AIM(job, rbms, AIMConfig{}, shots, 307)
	if err != nil {
		t.Fatal(err)
	}
	baseIST := metrics.IST(base.Dist(), target)
	aimIST := metrics.IST(aim.Merged.Dist(), target)
	if aimIST <= baseIST {
		t.Errorf("AIM IST %.3f not above baseline %.3f", aimIST, baseIST)
	}
}

func TestSplitShotsWeighted(t *testing.T) {
	got := splitShotsWeighted(100, []float64{3, 1})
	if got[0]+got[1] != 100 {
		t.Fatalf("total = %d", got[0]+got[1])
	}
	if got[0] != 75 || got[1] != 25 {
		t.Errorf("split = %v, want [75 25]", got)
	}
	// Tiny weights still receive at least one trial.
	got = splitShotsWeighted(10, []float64{100, 0.001, 0.001})
	sum := 0
	for _, g := range got {
		sum += g
		if g < 1 {
			t.Errorf("allocation %v starves a candidate", got)
		}
	}
	if sum != 10 {
		t.Errorf("total = %d", sum)
	}
	// Degenerate weights fall back to an equal split.
	got = splitShotsWeighted(9, []float64{0, 0, 0})
	if got[0]+got[1]+got[2] != 9 {
		t.Errorf("fallback total = %v", got)
	}
}

func TestAIMWeightedBeatsEqualAllocation(t *testing.T) {
	// The default likelihood-weighted allocation should beat the equal
	// split when the canary confidently identifies the answer (BV-like
	// single-answer workloads, Fig 13's regime).
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	layout := []int{0, 1, 2, 3, 4}
	rbms := exactRBMS(dev, layout)
	target := weakestState(rbms)
	job, err := NewJobWithLayout(kernels.BasisPrep(target), m, layout)
	if err != nil {
		t.Fatal(err)
	}
	const shots = 32000
	weighted, err := AIM(job, rbms, AIMConfig{}, shots, 601)
	if err != nil {
		t.Fatal(err)
	}
	equal, err := AIM(job, rbms, AIMConfig{EqualAllocation: true}, shots, 602)
	if err != nil {
		t.Fatal(err)
	}
	if weighted.Merged.Total() != shots || equal.Merged.Total() != shots {
		t.Fatalf("budgets: weighted %d, equal %d", weighted.Merged.Total(), equal.Merged.Total())
	}
	wPST := pstOf(weighted.Merged, target)
	ePST := pstOf(equal.Merged, target)
	if wPST <= ePST {
		t.Errorf("weighted allocation %.4f not above equal %.4f", wPST, ePST)
	}
}

func TestExpandCandidates(t *testing.T) {
	likes := map[bitstring.Bits]float64{
		bs("00010"): 1.0,
		bs("11111"): 0.1,
	}
	out := expandCandidates(likes, 2, 1)
	// Every 1-bit neighbour of 00010 must appear with likelihood 0.5.
	for _, nb := range []string{"00011", "00000", "00110", "01010", "10010"} {
		if got := out[bs(nb)]; math.Abs(got-0.5) > 1e-12 {
			t.Errorf("neighbour %s likelihood = %v, want 0.5", nb, got)
		}
	}
	// Observed states keep their own likelihood.
	if out[bs("00010")] != 1.0 || out[bs("11111")] != 0.1 {
		t.Errorf("originals changed: %v", out)
	}
	// Distance 2 reaches two flips away with 0.25.
	out2 := expandCandidates(likes, 1, 2)
	if got := out2[bs("00111")]; math.Abs(got-0.25) > 1e-12 {
		t.Errorf("distance-2 neighbour = %v, want 0.25", got)
	}
}

func TestAIMWithExpansionRescuesMisreadOutput(t *testing.T) {
	// With a minimal canary the true weak output may be absent from the
	// observed log, but its misreads (one flip away) are present; the
	// expanded pool must contain it as a candidate.
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	layout := []int{0, 1, 2, 3, 4}
	rbms := exactRBMS(dev, layout)
	target := weakestState(rbms)
	job, err := NewJobWithLayout(kernels.BasisPrep(target), m, layout)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AIM(job, rbms, AIMConfig{ExpandHamming: 1}, 8000, 603)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.Total() != 8000 {
		t.Errorf("budget = %d", res.Merged.Total())
	}
	found := false
	for _, c := range res.Candidates {
		if c.Output == target {
			found = true
		}
	}
	if !found {
		t.Errorf("target %v missing from expanded candidates %v", target, res.Candidates)
	}
}

func TestAutoAIMEndToEnd(t *testing.T) {
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	target := bs("11110")
	job, err := NewJobWithLayout(kernels.BasisPrep(target), m, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	res, rbms, err := AutoAIM(job, AIMConfig{}, 1000, 16000, 801)
	if err != nil {
		t.Fatal(err)
	}
	if rbms.Width != 5 {
		t.Errorf("profile width = %d", rbms.Width)
	}
	if res.Merged.Total() != 16000 {
		t.Errorf("budget = %d", res.Merged.Total())
	}
	base, err := job.Baseline(16000, 802)
	if err != nil {
		t.Fatal(err)
	}
	if pstOf(res.Merged, target) <= pstOf(base, target) {
		t.Errorf("AutoAIM %.4f not above baseline %.4f",
			pstOf(res.Merged, target), pstOf(base, target))
	}
	if _, _, err := AutoAIM(job, AIMConfig{}, 0, 100, 1); err == nil {
		t.Error("zero profile shots accepted")
	}
}

package core

import (
	"context"
	"fmt"

	"biasmit/internal/bitstring"
	"biasmit/internal/dist"
	"biasmit/internal/orchestrate"
)

// StandardInversionStrings returns the static inversion-string set the
// paper uses for SIM with k modes over a width-bit register:
//
//	k=1: standard mode only (the baseline);
//	k=2: all-zeros and all-ones (§5.2);
//	k=4: plus the two alternating strings, splitting the Hamming space
//	     into four parts (§5.3, Fig 8);
//	k=8: plus the four half-register strings (low half / high half and
//	     their complements), a denser Hamming-space cover for the
//	     mode-count ablation.
func StandardInversionStrings(width, k int) ([]bitstring.Bits, error) {
	zeros, ones := bitstring.Zeros(width), bitstring.Ones(width)
	even, odd := bitstring.Alternating(width, false), bitstring.Alternating(width, true)
	switch k {
	case 1:
		return []bitstring.Bits{zeros}, nil
	case 2:
		return []bitstring.Bits{zeros, ones}, nil
	case 4:
		return []bitstring.Bits{zeros, ones, even, odd}, nil
	case 8:
		half := width / 2
		low := zeros
		for q := 0; q < half; q++ {
			low = low.SetBit(q, true)
		}
		high := low.Invert()
		// Blend alternation with the halves for the final pair.
		lowAlt := even.Xor(high)
		highAlt := odd.Xor(high)
		return []bitstring.Bits{zeros, ones, even, odd, low, high, lowAlt, highAlt}, nil
	}
	return nil, fmt.Errorf("core: unsupported SIM mode count %d (want 1, 2, 4, or 8)", k)
}

// SIMResult carries the merged output of a SIM execution along with the
// per-mode corrected histograms for inspection.
type SIMResult struct {
	Merged  *dist.Counts
	Strings []bitstring.Bits
	PerMode []*dist.Counts
}

// SIM runs Static Invert-and-Measure: the trial budget is split into
// equal groups, one per inversion string; each group is executed with its
// string applied before measurement and XOR-corrected afterwards; the
// corrected histograms are merged into one output log (paper Fig 7).
func SIM(j *Job, strings []bitstring.Bits, shots int, seed int64) (*SIMResult, error) {
	return SIMContext(context.Background(), j, strings, shots, seed)
}

// SIMContext is SIM with cancellation. The inversion groups are
// independent jobs and run on Machine.Workers goroutines; each group's
// seed is derived from (seed, group index) and the per-group histograms
// merge in group order, so the result is bit-identical at every worker
// count.
func SIMContext(ctx context.Context, j *Job, strings []bitstring.Bits, shots int, seed int64) (*SIMResult, error) {
	if len(strings) == 0 {
		return nil, fmt.Errorf("core: SIM needs at least one inversion string")
	}
	if shots < len(strings) {
		return nil, fmt.Errorf("core: %d shots cannot cover %d SIM modes", shots, len(strings))
	}
	res := &SIMResult{
		Merged:  dist.NewCounts(j.Width()),
		Strings: append([]bitstring.Bits(nil), strings...),
	}
	perMode, err := orchestrate.Map(ctx, j.Machine.workers(), splitShots(shots, len(strings)),
		func(ctx context.Context, i, n int) (*dist.Counts, error) {
			counts, err := j.RunWithInversionContext(ctx, strings[i], n, deriveSeed(seed, i))
			if err != nil {
				return nil, fmt.Errorf("core: SIM mode %v: %w", strings[i], err)
			}
			return counts, nil
		})
	if err != nil {
		return nil, err
	}
	res.PerMode = perMode
	for _, counts := range perMode {
		res.Merged.Merge(counts)
	}
	return res, nil
}

// SIM4 runs the paper's default four-mode SIM configuration.
func SIM4(j *Job, shots int, seed int64) (*SIMResult, error) {
	return SIM4Context(context.Background(), j, shots, seed)
}

// SIM4Context is SIM4 with cancellation.
func SIM4Context(ctx context.Context, j *Job, shots int, seed int64) (*SIMResult, error) {
	strings, err := StandardInversionStrings(j.Width(), 4)
	if err != nil {
		return nil, err
	}
	return SIMContext(ctx, j, strings, shots, seed)
}

package core

import (
	"context"
	"fmt"
	"math"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
	"biasmit/internal/orchestrate"
)

// RBMS is the Relative Basis Measurement Strength function of a logical
// register on a machine (paper §6.2.1, Appendix A): for every basis
// state, how reliably it can be measured. Values are on an arbitrary
// positive scale; use Relative or NormalizeSum before comparing curves.
type RBMS struct {
	Width    int
	Strength []float64 // indexed by packed basis value
}

// NewRBMS wraps a per-state strength series.
func NewRBMS(width int, strength []float64) (RBMS, error) {
	if len(strength) != 1<<uint(width) {
		return RBMS{}, fmt.Errorf("core: strength series length %d for width %d", len(strength), width)
	}
	for i, s := range strength {
		if s < 0 || math.IsNaN(s) {
			return RBMS{}, fmt.Errorf("core: invalid strength %v at state %d", s, i)
		}
	}
	return RBMS{Width: width, Strength: append([]float64(nil), strength...)}, nil
}

// Of returns the strength of basis state b.
func (r RBMS) Of(b bitstring.Bits) float64 {
	if b.Width() != r.Width {
		panic(fmt.Sprintf("core: state width %d for RBMS width %d", b.Width(), r.Width))
	}
	return r.Strength[b.Uint64()]
}

// Relative rescales so the strongest state has strength 1 — the
// normalization of Figs 4, 5 and 11.
func (r RBMS) Relative() RBMS {
	return RBMS{Width: r.Width, Strength: metrics.Relative(r.Strength)}
}

// NormalizeSum rescales to unit total mass — the normalization of the
// Fig 15 validation curves.
func (r RBMS) NormalizeSum() RBMS {
	var sum float64
	for _, s := range r.Strength {
		sum += s
	}
	out := make([]float64, len(r.Strength))
	if sum > 0 {
		for i, s := range r.Strength {
			out[i] = s / sum
		}
	}
	return RBMS{Width: r.Width, Strength: out}
}

// StrongestState returns the basis state with the highest strength,
// breaking ties toward the numerically smallest state. AIM maps likely
// outputs onto this state.
func (r RBMS) StrongestState() bitstring.Bits {
	best := 0
	for i, s := range r.Strength {
		if s > r.Strength[best] {
			best = i
		}
	}
	return bitstring.New(uint64(best), r.Width)
}

// MSE returns the mean squared error between two sum-normalized RBMS
// curves — the paper's ESCT validation metric (within 5% in Fig 15).
func (r RBMS) MSE(o RBMS) (float64, error) {
	if r.Width != o.Width {
		return 0, fmt.Errorf("core: RBMS widths %d and %d differ", r.Width, o.Width)
	}
	return metrics.MSE(r.NormalizeSum().Strength, o.NormalizeSum().Strength)
}

// HammingCorrelation returns the Pearson correlation between strength and
// Hamming weight (paper: −0.93 on ibmqx2; weak on ibmqx4).
func (r RBMS) HammingCorrelation() (float64, error) {
	return metrics.Pearson(metrics.HammingWeightSeries(r.Width), r.Strength)
}

// Profiler measures the RBMS of a specific logical register placement on
// a machine. It runs its characterization circuits on exactly the
// physical qubits that the application's outputs occupy, so the learned
// profile matches what the application will experience.
type Profiler struct {
	Machine *Machine
	Layout  []int // physical qubit holding each logical bit
}

// Profiler returns a profiler bound to the job's measurement-time layout.
func (j *Job) Profiler() *Profiler {
	return &Profiler{Machine: j.Machine, Layout: append([]int(nil), j.Plan.FinalLayout...)}
}

func (p *Profiler) width() int { return len(p.Layout) }

// BruteForce measures every basis state directly (paper §3.1, Fig 11a):
// prepare b, measure, and count exact matches. Cost grows as O(2^n)
// preparations, which is why the paper reserves it for 5-qubit machines.
func (p *Profiler) BruteForce(shotsPerState int, seed int64) (RBMS, error) {
	return p.BruteForceContext(context.Background(), shotsPerState, seed)
}

// BruteForceContext is BruteForce with cancellation. The 2^n basis-state
// preparations are independent jobs and run on Machine.Workers
// goroutines; each state's seed is derived from (seed, state), so the
// profile is bit-identical at every worker count.
func (p *Profiler) BruteForceContext(ctx context.Context, shotsPerState int, seed int64) (RBMS, error) {
	n := p.width()
	if n > 16 {
		return RBMS{}, fmt.Errorf("core: brute-force characterization of %d qubits is intractable", n)
	}
	if _, err := backend.MulShots(shotsPerState, 1<<uint(n)); err != nil {
		return RBMS{}, fmt.Errorf("core: brute-force budget (%d shots × %d states): %w", shotsPerState, 1<<uint(n), err)
	}
	strength, err := orchestrate.Map(ctx, p.Machine.workers(), bitstring.All(n),
		func(ctx context.Context, _ int, b bitstring.Bits) (float64, error) {
			job, err := NewJobWithLayout(kernels.BasisPrep(b), p.Machine, p.Layout)
			if err != nil {
				return 0, err
			}
			counts, err := job.BaselineContext(ctx, shotsPerState, deriveSeed(seed, int(b.Uint64())))
			if err != nil {
				return 0, err
			}
			return float64(counts.Get(b)) / float64(shotsPerState), nil
		})
	if err != nil {
		return RBMS{}, err
	}
	return NewRBMS(n, strength)
}

// ESCT is the Equal-Superposition Characterization Technique (Appendix
// A): prepare H^⊗n once, measure many times, and use each basis state's
// relative frequency as its relative strength. One circuit probes all 2^n
// states, at the cost of a small cross-talk floor from misreads of
// neighbouring states.
func (p *Profiler) ESCT(totalShots int, seed int64) (RBMS, error) {
	return p.ESCTContext(context.Background(), totalShots, seed)
}

// ESCTContext is ESCT with cancellation.
func (p *Profiler) ESCTContext(ctx context.Context, totalShots int, seed int64) (RBMS, error) {
	n := p.width()
	if err := backend.CheckShots(totalShots); err != nil {
		return RBMS{}, fmt.Errorf("core: ESCT budget: %w", err)
	}
	job, err := NewJobWithLayout(kernels.UniformSuperposition(n), p.Machine, p.Layout)
	if err != nil {
		return RBMS{}, err
	}
	counts, err := job.BaselineContext(ctx, totalShots, seed)
	if err != nil {
		return RBMS{}, err
	}
	strength := make([]float64, 1<<uint(n))
	for _, b := range counts.Outcomes() {
		strength[b.Uint64()] = float64(counts.Get(b)) / float64(totalShots)
	}
	return NewRBMS(n, strength)
}

// AWCT is the Approximate Windowed Characterization Technique (Appendix
// A): ESCT is run over sliding windows of windowSize qubits with the
// given overlap, and the window estimates are stitched into a full
// profile, so trials scale as O(2^m) instead of O(2^N).
//
// Stitching uses the standard overlapping-marginal (junction-tree)
// composition: in log space the full strength is the sum of window
// strengths minus the overlap marginals, which double-counted the shared
// qubits.
func (p *Profiler) AWCT(windowSize, overlap, shotsPerWindow int, seed int64) (RBMS, error) {
	return p.AWCTContext(context.Background(), windowSize, overlap, shotsPerWindow, seed)
}

// AWCTContext is AWCT with cancellation. The sliding windows are
// independent jobs and run on Machine.Workers goroutines; each window's
// seed is derived from (seed, window start), so the stitched profile is
// bit-identical at every worker count.
func (p *Profiler) AWCTContext(ctx context.Context, windowSize, overlap, shotsPerWindow int, seed int64) (RBMS, error) {
	n := p.width()
	if windowSize < 2 || windowSize > n {
		return RBMS{}, fmt.Errorf("core: window size %d out of range [2,%d]", windowSize, n)
	}
	if overlap < 0 || overlap >= windowSize {
		return RBMS{}, fmt.Errorf("core: overlap %d out of range [0,%d)", overlap, windowSize)
	}
	step := windowSize - overlap
	if step == 0 {
		return RBMS{}, fmt.Errorf("core: zero window step")
	}
	var starts []int
	for start := 0; ; start += step {
		if start+windowSize > n {
			start = n - windowSize // clamp the final window to the register end
		}
		starts = append(starts, start)
		if start+windowSize >= n {
			break
		}
	}
	if _, err := backend.MulShots(shotsPerWindow, len(starts)); err != nil {
		return RBMS{}, fmt.Errorf("core: AWCT budget (%d shots × %d windows): %w", shotsPerWindow, len(starts), err)
	}

	type window struct {
		start, size int
		freq        []float64 // per window-pattern relative frequency
	}
	windows, err := orchestrate.Map(ctx, p.Machine.workers(), starts,
		func(ctx context.Context, _, start int) (window, error) {
			freq, err := p.windowESCT(ctx, start, windowSize, shotsPerWindow, deriveSeed(seed, start))
			if err != nil {
				return window{}, err
			}
			return window{start: start, size: windowSize, freq: freq}, nil
		})
	if err != nil {
		return RBMS{}, err
	}

	// Log-space stitch with floors against unobserved patterns.
	const floor = 1e-9
	logStrength := make([]float64, 1<<uint(n))
	for _, x := range bitstring.All(n) {
		var logS float64
		for wi, w := range windows {
			pat := x.Slice(w.start, w.start+w.size)
			logS += math.Log(math.Max(w.freq[pat.Uint64()], floor))
			if wi > 0 {
				prev := windows[wi-1]
				lo := w.start
				hi := prev.start + prev.size
				if hi > lo { // overlap region shared with the previous window
					marg := marginal(prev.freq, prev.size, lo-prev.start, hi-prev.start)
					opat := x.Slice(lo, hi)
					logS -= math.Log(math.Max(marg[opat.Uint64()], floor))
				}
			}
		}
		logStrength[x.Uint64()] = logS
	}
	// Exponentiate relative to the max for numeric stability.
	maxLog := math.Inf(-1)
	for _, l := range logStrength {
		if l > maxLog {
			maxLog = l
		}
	}
	strength := make([]float64, len(logStrength))
	for i, l := range logStrength {
		strength[i] = math.Exp(l - maxLog)
	}
	return NewRBMS(n, strength)
}

// windowESCT runs a uniform superposition over logical bits
// [start, start+size) (other logical bits held at |0⟩) and returns the
// relative frequency of each window pattern.
func (p *Profiler) windowESCT(ctx context.Context, start, size, shots int, seed int64) ([]float64, error) {
	n := p.width()
	// Superposition only over the window qubits; the rest stay |0⟩.
	c := kernels.BasisPrep(bitstring.Zeros(n))
	for q := start; q < start+size; q++ {
		c.H(q)
	}
	c.Name = fmt.Sprintf("awct-window-%d", start)
	job, err := NewJobWithLayout(c, p.Machine, p.Layout)
	if err != nil {
		return nil, err
	}
	counts, err := job.BaselineContext(ctx, shots, seed)
	if err != nil {
		return nil, err
	}
	freq := make([]float64, 1<<uint(size))
	for _, b := range counts.Outcomes() {
		pat := b.Slice(start, start+size)
		freq[pat.Uint64()] += float64(counts.Get(b)) / float64(shots)
	}
	return freq, nil
}

// marginal sums a window-pattern frequency table over all bits outside
// [lo, hi), returning the marginal table over the kept bits.
func marginal(freq []float64, size, lo, hi int) []float64 {
	out := make([]float64, 1<<uint(hi-lo))
	for v, f := range freq {
		kept := bitstring.New(uint64(v), size).Slice(lo, hi)
		out[kept.Uint64()] += f
	}
	return out
}

// Package core implements the paper's contribution: Invert-and-Measure
// and its two policies.
//
// Invert-and-Measure (paper §5.1) transforms the state about to be
// measured by applying X gates according to an inversion string, performs
// the measurement in the transformed basis, and XORs the classical result
// with the same string to restore program semantics. Because measurement
// error is state-dependent, choosing inversion strings well moves
// measurements from weak basis states into strong ones.
//
//   - SIM, Static Invert-and-Measure (§5.2-5.3), splits the trial budget
//     across a fixed set of inversion strings — by default the four
//     strings all-zeros, all-ones, and the two alternating patterns —
//     and merges the post-corrected groups, averaging the error over
//     measurement modes.
//   - AIM, Adaptive Invert-and-Measure (§6), profiles the machine's
//     Relative Basis Measurement Strength (RBMS), runs SIM-style canary
//     trials to shortlist likely outputs, and spends the remaining budget
//     on inversion strings that map each candidate onto the machine's
//     strongest state.
//
// The package operates purely above the transpiler: inversion strings
// become X gates on the physical qubits holding the logical outputs, and
// all statistics flow through logical-register histograms.
package core

import (
	"context"
	"fmt"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/orchestrate"
	"biasmit/internal/transpile"
)

// Machine bundles a device model with the backend options every run on
// it should use (noise ablations, trajectory batching). Shots and Seed in
// Opt are ignored; they are chosen per call.
type Machine struct {
	Device *device.Device
	Opt    backend.Options
	// Workers bounds how many independent circuit executions (SIM/AIM
	// groups, profiler state preparations, AWCT windows) run
	// concurrently on this machine. Zero selects GOMAXPROCS; one forces
	// sequential execution. Because every group's seed is derived from
	// (base seed, group index) before submission, results are
	// bit-identical across worker counts — unlike Opt.Workers, which
	// repartitions the random streams inside a single run.
	Workers int
	// Run, when set, replaces backend.RunContext for every circuit
	// execution on this machine. This is where the resilience stack
	// plugs in: a *resilient.Executor (optionally wrapping a chaos fault
	// injector) makes every SIM/AIM group, profiler preparation, and
	// baseline run on this machine retry transient failures
	// independently — one flaky group no longer discards its siblings'
	// finished work. Nil runs the backend directly.
	Run backend.Runner
}

// workers resolves the job-level parallelism for this machine.
func (m *Machine) workers() int { return orchestrate.Workers(m.Workers) }

// Runner resolves the execution path for this machine.
func (m *Machine) Runner() backend.Runner {
	if m.Run != nil {
		return m.Run
	}
	return backend.RunContext
}

// NewMachine returns a Machine with default (fully noisy) options.
func NewMachine(dev *device.Device) *Machine {
	return &Machine{Device: dev}
}

// Job is a logical circuit placed on a machine, ready to run under any
// inversion string. The same Job is reused across baseline, SIM, and AIM
// so that all policies execute the identical program on identical qubits
// (paper §4.3).
type Job struct {
	Machine *Machine
	Plan    *transpile.Plan
	width   int
}

// NewJob places the logical circuit c on the machine using
// variability-aware allocation.
func NewJob(c *circuit.Circuit, m *Machine) (*Job, error) {
	plan, err := transpile.Place(c, m.Device)
	if err != nil {
		return nil, fmt.Errorf("core: placing %s: %w", c.Name, err)
	}
	return &Job{Machine: m, Plan: plan, width: c.NumQubits}, nil
}

// NewJobWithLayout places c on explicitly chosen physical qubits.
func NewJobWithLayout(c *circuit.Circuit, m *Machine, layout []int) (*Job, error) {
	plan, err := transpile.PlaceWithLayout(c, m.Device, layout)
	if err != nil {
		return nil, fmt.Errorf("core: placing %s: %w", c.Name, err)
	}
	return &Job{Machine: m, Plan: plan, width: c.NumQubits}, nil
}

// Width returns the logical output width of the job.
func (j *Job) Width() int { return j.width }

// RunWithInversion executes the job for the given number of trials with
// inversion string s applied before measurement, and returns the
// post-corrected logical histogram. The all-zeros string is the paper's
// standard mode; all-ones is the fully inverted mode.
func (j *Job) RunWithInversion(s bitstring.Bits, shots int, seed int64) (*dist.Counts, error) {
	return j.RunWithInversionContext(context.Background(), s, shots, seed)
}

// RunWithInversionContext is RunWithInversion with cancellation: the
// backend trial loop stops within one trajectory batch of ctx ending.
func (j *Job) RunWithInversionContext(ctx context.Context, s bitstring.Bits, shots int, seed int64) (*dist.Counts, error) {
	if s.Width() != j.width {
		return nil, fmt.Errorf("core: inversion string width %d for %d-qubit job", s.Width(), j.width)
	}
	opt := j.Machine.Opt
	opt.Shots = shots
	opt.Seed = seed
	raw, err := j.Machine.Runner()(ctx, j.Plan.WithInversion(s), j.Machine.Device, opt)
	if err != nil {
		return nil, err
	}
	return j.Plan.ExtractLogical(raw).XorTransform(s), nil
}

// Baseline executes the job in standard mode only — the paper's baseline
// policy with variability-aware allocation.
func (j *Job) Baseline(shots int, seed int64) (*dist.Counts, error) {
	return j.RunWithInversion(bitstring.Zeros(j.width), shots, seed)
}

// BaselineContext is Baseline with cancellation.
func (j *Job) BaselineContext(ctx context.Context, shots int, seed int64) (*dist.Counts, error) {
	return j.RunWithInversionContext(ctx, bitstring.Zeros(j.width), shots, seed)
}

// splitShots divides a trial budget into n nearly equal groups, giving
// the remainder to the earliest groups so the total is preserved.
func splitShots(shots, n int) []int {
	out := make([]int, n)
	base, rem := shots/n, shots%n
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// deriveSeed spreads per-group seeds so groups are decorrelated but the
// whole experiment stays a pure function of the caller's seed. It
// predates orchestrate.DeriveSeed and intentionally keeps its original
// (truncated-splitmix) form: changing it would shift every published
// per-group random stream in this repo.
func deriveSeed(seed int64, group int) int64 {
	x := uint64(seed) + 0x9E3779B97F4A7C15*uint64(group+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	return int64(x & (1<<63 - 1))
}

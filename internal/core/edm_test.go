package core

import (
	"testing"

	"biasmit/internal/device"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
)

func TestDiverseLayoutsDistinctAndValid(t *testing.T) {
	dev := device.IBMQMelbourne()
	m := readoutOnlyMachine(dev)
	c := kernels.GHZ(5)
	layouts, err := DiverseLayouts(c, m, 6, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(layouts) != 6 {
		t.Fatalf("got %d layouts", len(layouts))
	}
	seen := map[string]bool{}
	for _, layout := range layouts {
		if len(layout) != 5 {
			t.Fatalf("layout %v has wrong size", layout)
		}
		used := map[int]bool{}
		for _, q := range layout {
			if q < 0 || q >= dev.NumQubits || used[q] {
				t.Fatalf("bad layout %v", layout)
			}
			used[q] = true
		}
		key := layoutKey(layout)
		if seen[key] {
			t.Fatalf("duplicate layout %v", layout)
		}
		seen[key] = true
	}
}

func TestDiverseLayoutsValidation(t *testing.T) {
	dev := device.IBMQX2()
	m := readoutOnlyMachine(dev)
	if _, err := DiverseLayouts(kernels.GHZ(3), m, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	// A 5-qubit circuit on a 5-qubit device has 120 possible layouts, so
	// many distinct mappings exist.
	layouts, err := DiverseLayouts(kernels.GHZ(5), m, 8, 2)
	if err != nil || len(layouts) != 8 {
		t.Errorf("full-register diversity: %v, %v", layouts, err)
	}
}

func TestEDMBudgetAndMerge(t *testing.T) {
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	bench := kernels.BV("bv", bs("1011").Slice(0, 4))
	layouts, err := DiverseLayouts(bench.Circuit, m, 3, 43)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EDM(bench.Circuit, m, layouts, 9001, 44)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.Total() != 9001 {
		t.Errorf("merged total = %d", res.Merged.Total())
	}
	if len(res.PerMap) != 3 {
		t.Errorf("per-map logs = %d", len(res.PerMap))
	}
}

func TestEDMMergedBetweenExtremes(t *testing.T) {
	// The ensemble PST must lie between the best and worst single
	// mapping's PST (it is their trial-weighted average).
	dev := device.IBMQMelbourne()
	m := NewMachine(dev)
	bench := kernels.BV("bv-4", bs("1111"))
	layouts, err := DiverseLayouts(bench.Circuit, m, 4, 45)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EDM(bench.Circuit, m, layouts, 16000, 46)
	if err != nil {
		t.Fatal(err)
	}
	target := bench.Correct[0]
	min, max := 1.0, 0.0
	for _, pm := range res.PerMap {
		p := metrics.PST(pm.Dist(), target)
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	merged := metrics.PST(res.Merged.Dist(), target)
	if merged < min-0.02 || merged > max+0.02 {
		t.Errorf("merged PST %v outside per-mapping range [%v, %v]", merged, min, max)
	}
	if max == min {
		t.Log("mappings performed identically; diversity had no spread on this seed")
	}
}

func TestEDMWithSIMComposition(t *testing.T) {
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	bench := kernels.BV("bv-4B", bs("1111"))
	layouts, err := DiverseLayouts(bench.Circuit, m, 2, 47)
	if err != nil {
		t.Fatal(err)
	}
	const shots = 16000
	plain, err := EDM(bench.Circuit, m, layouts, shots, 48)
	if err != nil {
		t.Fatal(err)
	}
	withSIM, err := EDMWithSIM(bench.Circuit, m, layouts, shots, 49)
	if err != nil {
		t.Fatal(err)
	}
	if withSIM.Merged.Total() != shots {
		t.Errorf("composed total = %d", withSIM.Merged.Total())
	}
	target := bench.Correct[0]
	plainPST := metrics.PST(plain.Merged.Dist(), target)
	simPST := metrics.PST(withSIM.Merged.Dist(), target)
	// The all-ones expected output is vulnerable: adding inversion modes
	// on top of mapping diversity must help.
	if simPST <= plainPST {
		t.Errorf("EDM+SIM %.4f not above EDM %.4f on a vulnerable state", simPST, plainPST)
	}
}

func TestEDMValidation(t *testing.T) {
	dev := device.IBMQX2()
	m := readoutOnlyMachine(dev)
	c := kernels.GHZ(3)
	if _, err := EDM(c, m, nil, 100, 1); err == nil {
		t.Error("no mappings accepted")
	}
	layouts, err := DiverseLayouts(c, m, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EDM(c, m, layouts, 2, 1); err == nil {
		t.Error("shots < mappings accepted")
	}
	if _, err := EDMWithSIM(c, m, layouts, 5, 1); err == nil {
		t.Error("shots < mappings×modes accepted")
	}
}

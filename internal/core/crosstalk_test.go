package core

import (
	"testing"

	"biasmit/internal/device"
)

func TestCrosstalkDetectsPlantedCorrelations(t *testing.T) {
	// ibmqx4's model plants four correlated-readout terms, all triggering
	// on the excited state; the detector must find each of them with
	// roughly the planted magnitude.
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	prof := &Profiler{Machine: m, Layout: []int{0, 1, 2, 3, 4}}
	x, err := prof.Crosstalk(60000, 701)
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int]float64{} // [trigger,target] -> planted excess
	for _, c := range dev.Correlations {
		want[[2]int{c.Trigger, c.Target}] = c.PExtra
	}
	pairs := x.SignificantPairs(0.015)
	found := map[[2]int]float64{}
	for _, p := range pairs {
		found[[2]int{p.Trigger, p.Target}] = p.Excess
	}
	for key, planted := range want {
		got, ok := found[key]
		if !ok {
			t.Errorf("planted crosstalk %v (%.3f) not detected; pairs: %v", key, planted, pairs)
			continue
		}
		// The measured excess is planted·(1−p_base) plus noise.
		if got < planted*0.6 || got > planted*1.3 {
			t.Errorf("crosstalk %v: measured %.4f, planted %.4f", key, got, planted)
		}
	}
	// No large spurious detections beyond the planted set.
	for key := range found {
		if _, ok := want[key]; !ok && abs(found[key]) > 0.03 {
			t.Errorf("spurious crosstalk %v = %.4f", key, found[key])
		}
	}
}

func TestCrosstalkCleanMachineIsQuiet(t *testing.T) {
	// ibmqx2 has no correlated readout: the whole matrix is noise.
	dev := device.IBMQX2()
	m := readoutOnlyMachine(dev)
	prof := &Profiler{Machine: m, Layout: []int{0, 1, 2, 3, 4}}
	x, err := prof.Crosstalk(60000, 702)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.MaxExcess(); got > 0.01 {
		t.Errorf("clean machine shows crosstalk %.4f", got)
	}
	if pairs := x.SignificantPairs(0.015); len(pairs) != 0 {
		t.Errorf("spurious pairs on a clean machine: %v", pairs)
	}
}

func TestCrosstalkValidation(t *testing.T) {
	m := readoutOnlyMachine(device.IBMQX2())
	prof := &Profiler{Machine: m, Layout: []int{0, 1, 2}}
	if _, err := prof.Crosstalk(0, 1); err == nil {
		t.Error("zero shots accepted")
	}
}

func TestSignificantPairsOrdering(t *testing.T) {
	x := &Crosstalk{Width: 3, Excess: [][]float64{
		{0, 0.02, -0.05},
		{0.01, 0, 0},
		{0.04, 0, 0},
	}}
	pairs := x.SignificantPairs(0.02)
	if len(pairs) != 3 {
		t.Fatalf("pairs = %v", pairs)
	}
	if pairs[0].Excess != -0.05 || pairs[1].Excess != 0.04 || pairs[2].Excess != 0.02 {
		t.Errorf("ordering: %v", pairs)
	}
	if x.MaxExcess() != 0.05 {
		t.Errorf("MaxExcess = %v", x.MaxExcess())
	}
}

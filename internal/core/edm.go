package core

import (
	"fmt"
	"math/rand"
	"sort"

	"biasmit/internal/circuit"
	"biasmit/internal/dist"
)

// EDM implements a lightweight Ensemble of Diverse Mappings, the paper's
// concurrent MICRO'19 work ([27], Tannu & Qureshi, "Ensemble of Diverse
// Mappings"): instead of running every trial on one qubit mapping —
// which makes all trials share that mapping's correlated mistakes — the
// trial budget is split across several distinct mappings and the output
// logs are merged. Both EDM and SIM/AIM share the philosophy that
// repeating an identical program correlates its errors; EDM diversifies
// *where* the program runs, Invert-and-Measure diversifies *which state
// is measured*. The two compose (see ExperimentEDM in the benchmarks).

// EDMResult carries the merged output and the per-mapping artifacts.
type EDMResult struct {
	Merged  *dist.Counts
	Layouts [][]int
	PerMap  []*dist.Counts
}

// DiverseLayouts produces up to k distinct initial layouts for c on the
// machine: the variability-aware layout first, then alternatives drawn
// from quality-ranked physical qubits with seeded shuffles. All layouts
// are injective; routing makes any of them executable.
func DiverseLayouts(c *circuit.Circuit, m *Machine, k int, seed int64) ([][]int, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: need at least one mapping, got %d", k)
	}
	base, err := NewJob(c, m)
	if err != nil {
		return nil, err
	}
	layouts := [][]int{append([]int(nil), base.Plan.InitialLayout...)}
	seen := map[string]bool{layoutKey(layouts[0]): true}

	dev := m.Device
	// Candidate physical qubits ranked by readout quality.
	model := dev.ReadoutModel()
	candidates := make([]int, dev.NumQubits)
	for q := range candidates {
		candidates[q] = q
	}
	sort.SliceStable(candidates, func(i, j int) bool {
		return model.PerQubit[candidates[i]].Average() < model.PerQubit[candidates[j]].Average()
	})
	// Prefer the best max(n, k+n-1) qubits as the shuffle pool so
	// alternates stay on reasonable hardware.
	pool := len(candidates)
	if want := c.NumQubits + k; want < pool {
		pool = want
	}
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; len(layouts) < k && attempt < 64*k; attempt++ {
		perm := rng.Perm(pool)
		layout := make([]int, c.NumQubits)
		for i := 0; i < c.NumQubits; i++ {
			layout[i] = candidates[perm[i]]
		}
		key := layoutKey(layout)
		if seen[key] {
			continue
		}
		seen[key] = true
		layouts = append(layouts, layout)
	}
	if len(layouts) < k {
		return nil, fmt.Errorf("core: only found %d distinct mappings of %d requested", len(layouts), k)
	}
	return layouts, nil
}

func layoutKey(layout []int) string {
	b := make([]byte, 0, len(layout)*3)
	for _, q := range layout {
		b = append(b, byte(q), ',')
	}
	return string(b)
}

// EDM executes the circuit across the given mappings, splitting the
// trial budget equally and merging the logical output logs.
func EDM(c *circuit.Circuit, m *Machine, layouts [][]int, shots int, seed int64) (*EDMResult, error) {
	if len(layouts) == 0 {
		return nil, fmt.Errorf("core: EDM needs at least one mapping")
	}
	if shots < len(layouts) {
		return nil, fmt.Errorf("core: %d shots cannot cover %d mappings", shots, len(layouts))
	}
	res := &EDMResult{Merged: dist.NewCounts(c.NumQubits)}
	for i, n := range splitShots(shots, len(layouts)) {
		job, err := NewJobWithLayout(c, m, layouts[i])
		if err != nil {
			return nil, fmt.Errorf("core: EDM mapping %v: %w", layouts[i], err)
		}
		counts, err := job.Baseline(n, deriveSeed(seed, 3000+i))
		if err != nil {
			return nil, err
		}
		res.Layouts = append(res.Layouts, append([]int(nil), layouts[i]...))
		res.PerMap = append(res.PerMap, counts)
		res.Merged.Merge(counts)
	}
	return res, nil
}

// EDMWithSIM composes the two MICRO'19 techniques: each mapping's share
// of the budget runs as a four-mode SIM, diversifying both the physical
// placement and the measured state.
func EDMWithSIM(c *circuit.Circuit, m *Machine, layouts [][]int, shots int, seed int64) (*EDMResult, error) {
	if len(layouts) == 0 {
		return nil, fmt.Errorf("core: EDM needs at least one mapping")
	}
	strings, err := StandardInversionStrings(c.NumQubits, 4)
	if err != nil {
		return nil, err
	}
	if shots < len(layouts)*len(strings) {
		return nil, fmt.Errorf("core: %d shots cannot cover %d mappings × %d modes", shots, len(layouts), len(strings))
	}
	res := &EDMResult{Merged: dist.NewCounts(c.NumQubits)}
	for i, n := range splitShots(shots, len(layouts)) {
		job, err := NewJobWithLayout(c, m, layouts[i])
		if err != nil {
			return nil, fmt.Errorf("core: EDM mapping %v: %w", layouts[i], err)
		}
		sim, err := SIM(job, strings, n, deriveSeed(seed, 4000+i))
		if err != nil {
			return nil, err
		}
		res.Layouts = append(res.Layouts, append([]int(nil), layouts[i]...))
		res.PerMap = append(res.PerMap, sim.Merged)
		res.Merged.Merge(sim.Merged)
	}
	return res, nil
}

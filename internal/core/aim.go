package core

import (
	"context"
	"fmt"
	"sort"

	"biasmit/internal/bitstring"
	"biasmit/internal/dist"
	"biasmit/internal/orchestrate"
)

// AIMConfig tunes Adaptive Invert-and-Measure. The zero value is
// completed by withDefaults to the paper's configuration: 25% of trials
// as canaries, the four static SIM strings for the canary phase, and K=4
// adaptive inversion strings.
type AIMConfig struct {
	// CanaryFraction is the share of the trial budget spent learning the
	// likely outputs (paper §6.2.3 uses 25%).
	CanaryFraction float64
	// K is the number of candidate outputs given tailored inversion
	// strings (paper uses K=4).
	K int
	// CanaryStrings are the inversion strings for the canary phase;
	// defaults to the four-mode SIM set, which removes global bias from
	// the canary distribution (§6.2.2).
	CanaryStrings []bitstring.Bits
	// EqualAllocation splits the adaptive budget evenly across the K
	// candidates instead of proportionally to their likelihoods. The
	// default (false) concentrates trials on the most likely output,
	// which is what lets AIM approach the strongest state's fidelity in
	// the paper's Fig 13.
	EqualAllocation bool
	// ExpandHamming, when positive, augments the candidate pool with
	// every string within that Hamming distance of a top canary output
	// before the final top-K selection (paper §6.2.2: "these k strings,
	// or the strings within one or two hamming distance, are the most
	// likely to be the correct output"). Unobserved neighbours inherit
	// their parent's likelihood discounted by distance, rescuing true
	// outputs that the canary misread by a bit or two.
	ExpandHamming int
}

func (c AIMConfig) withDefaults(width int) (AIMConfig, error) {
	if c.CanaryFraction == 0 {
		c.CanaryFraction = 0.25
	}
	if c.CanaryFraction <= 0 || c.CanaryFraction >= 1 {
		return c, fmt.Errorf("core: canary fraction %v out of (0,1)", c.CanaryFraction)
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.K < 1 {
		return c, fmt.Errorf("core: K must be positive, got %d", c.K)
	}
	if len(c.CanaryStrings) == 0 {
		strings, err := StandardInversionStrings(width, 4)
		if err != nil {
			return c, err
		}
		c.CanaryStrings = strings
	}
	for _, s := range c.CanaryStrings {
		if s.Width() != width {
			return c, fmt.Errorf("core: canary string %v width does not match register %d", s, width)
		}
	}
	return c, nil
}

// Candidate is one likely output identified by the canary phase.
type Candidate struct {
	Output     bitstring.Bits
	Likelihood float64        // L_i = P(i in canary output) / strength(i)
	Inversion  bitstring.Bits // string mapping Output onto the strongest state
}

// AIMResult carries the merged output log of an AIM execution together
// with the intermediate artifacts (canary distribution, candidates, and
// the strongest state used for targeting).
type AIMResult struct {
	Merged     *dist.Counts
	Canary     *dist.Counts
	Candidates []Candidate
	Strongest  bitstring.Bits
}

// Likelihoods scales an observed output distribution by inverse
// measurement strength (paper Equation 1): weak states that still appear
// are more likely to be the true output than their raw frequency
// suggests. States with zero observed probability get zero likelihood;
// states with zero estimated strength use a floor of half the smallest
// positive strength so they are boosted but finite.
func Likelihoods(observed dist.Dist, rbms RBMS) map[bitstring.Bits]float64 {
	if observed.Width != rbms.Width {
		panic(fmt.Sprintf("core: observed width %d vs RBMS width %d", observed.Width, rbms.Width))
	}
	floor := minPositive(rbms.Strength) / 2
	if floor == 0 {
		floor = 1
	}
	out := make(map[bitstring.Bits]float64, len(observed.P))
	for b, p := range observed.P {
		if p == 0 {
			continue
		}
		s := rbms.Of(b)
		if s <= 0 {
			s = floor
		}
		out[b] = p / s
	}
	return out
}

func minPositive(v []float64) float64 {
	min := 0.0
	for _, x := range v {
		if x > 0 && (min == 0 || x < min) {
			min = x
		}
	}
	return min
}

// neighbourDiscount is the per-bit likelihood decay applied to
// unobserved Hamming neighbours during candidate expansion.
const neighbourDiscount = 0.5

// expandCandidates grows the likelihood map with the Hamming
// neighbourhood (up to the given distance) of the current top-k outputs.
// An unobserved neighbour at distance d from its best parent receives
// likelihood parent·neighbourDiscount^d; observed states keep their own.
func expandCandidates(likes map[bitstring.Bits]float64, k, distance int) map[bitstring.Bits]float64 {
	out := make(map[bitstring.Bits]float64, len(likes))
	for b, l := range likes {
		out[b] = l
	}
	frontier := topKByLikelihood(likes, k)
	for _, parent := range frontier {
		base := likes[parent]
		expandFrom(out, parent, base, distance)
	}
	return out
}

func expandFrom(out map[bitstring.Bits]float64, from bitstring.Bits, base float64, distance int) {
	if distance == 0 {
		return
	}
	for q := 0; q < from.Width(); q++ {
		nb := from.SetBit(q, !from.Bit(q))
		inherited := base * neighbourDiscount
		if inherited > out[nb] {
			out[nb] = inherited
		}
		expandFrom(out, nb, inherited, distance-1)
	}
}

// topKByLikelihood returns the k outputs with the highest likelihood,
// breaking ties toward the numerically smallest output.
func topKByLikelihood(l map[bitstring.Bits]float64, k int) []bitstring.Bits {
	keys := make([]bitstring.Bits, 0, len(l))
	for b := range l {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool {
		if l[keys[i]] != l[keys[j]] {
			return l[keys[i]] > l[keys[j]]
		}
		return keys[i].Less(keys[j])
	})
	if k < len(keys) {
		keys = keys[:k]
	}
	return keys
}

// AutoAIM is the one-call form of the paper's full AIM pipeline
// (Fig 12): it profiles the job's output register with the technique the
// paper prescribes for its size — brute force up to 5 qubits, AWCT with
// window 4 / overlap 2 beyond — then runs AIM with that profile. The
// profiling budget (profileShots per basis state or per window) is spent
// once per machine in practice; pair with internal/persist to reuse a
// saved profile instead.
func AutoAIM(j *Job, cfg AIMConfig, profileShots, shots int, seed int64) (*AIMResult, RBMS, error) {
	return AutoAIMContext(context.Background(), j, cfg, profileShots, shots, seed)
}

// AutoAIMContext is AutoAIM with cancellation; profiling and both AIM
// phases stop promptly when ctx ends.
func AutoAIMContext(ctx context.Context, j *Job, cfg AIMConfig, profileShots, shots int, seed int64) (*AIMResult, RBMS, error) {
	if profileShots <= 0 {
		return nil, RBMS{}, fmt.Errorf("core: profileShots must be positive")
	}
	prof := j.Profiler()
	var rbms RBMS
	var err error
	if j.Width() <= 5 {
		rbms, err = prof.BruteForceContext(ctx, profileShots, deriveSeed(seed, 6000))
	} else {
		rbms, err = prof.AWCTContext(ctx, 4, 2, profileShots, deriveSeed(seed, 6000))
	}
	if err != nil {
		return nil, RBMS{}, fmt.Errorf("core: AutoAIM profiling: %w", err)
	}
	res, err := AIMContext(ctx, j, rbms, cfg, shots, seed)
	if err != nil {
		return nil, RBMS{}, err
	}
	return res, rbms, nil
}

// AIM runs Adaptive Invert-and-Measure (paper §6.2, Fig 12):
//
//  1. Canary phase: CanaryFraction of the budget runs as SIM over
//     CanaryStrings, producing a bias-averaged output estimate.
//  2. Candidate generation: outputs are ranked by likelihood
//     L = frequency / RBMS strength and the top K survive.
//  3. Adaptive phase: the remaining budget is split across K tailored
//     inversion strings, each mapping one candidate onto the machine's
//     strongest state (inversion = candidate XOR strongest).
//
// All phases' corrected histograms merge into the final output log; the
// total trial count equals the baseline's, as in the paper.
func AIM(j *Job, rbms RBMS, cfg AIMConfig, shots int, seed int64) (*AIMResult, error) {
	return AIMContext(context.Background(), j, rbms, cfg, shots, seed)
}

// AIMContext is AIM with cancellation. The canary phase runs as a
// (possibly parallel) SIMContext; the adaptive phase's tailored modes are
// independent jobs run on Machine.Workers goroutines, with each mode's
// seed derived from (seed, mode index) and histograms merged in mode
// order — bit-identical at every worker count.
func AIMContext(ctx context.Context, j *Job, rbms RBMS, cfg AIMConfig, shots int, seed int64) (*AIMResult, error) {
	cfg, err := cfg.withDefaults(j.Width())
	if err != nil {
		return nil, err
	}
	if rbms.Width != j.Width() {
		return nil, fmt.Errorf("core: RBMS width %d for %d-qubit job", rbms.Width, j.Width())
	}
	canaryShots := int(float64(shots) * cfg.CanaryFraction)
	if canaryShots < len(cfg.CanaryStrings) {
		return nil, fmt.Errorf("core: %d canary shots cannot cover %d strings", canaryShots, len(cfg.CanaryStrings))
	}
	adaptiveShots := shots - canaryShots
	if adaptiveShots < cfg.K {
		return nil, fmt.Errorf("core: %d adaptive shots cannot cover K=%d", adaptiveShots, cfg.K)
	}

	canary, err := SIMContext(ctx, j, cfg.CanaryStrings, canaryShots, deriveSeed(seed, 1000))
	if err != nil {
		return nil, fmt.Errorf("core: AIM canary phase: %w", err)
	}

	strongest := rbms.StrongestState()
	likes := Likelihoods(canary.Merged.Dist(), rbms)
	if cfg.ExpandHamming > 0 {
		likes = expandCandidates(likes, cfg.K, cfg.ExpandHamming)
	}
	tops := topKByLikelihood(likes, cfg.K)
	if len(tops) == 0 {
		return nil, fmt.Errorf("core: canary phase observed no outputs")
	}

	res := &AIMResult{
		Merged:    canary.Merged.Clone(),
		Canary:    canary.Merged,
		Strongest: strongest,
	}
	for _, b := range tops {
		res.Candidates = append(res.Candidates, Candidate{
			Output:     b,
			Likelihood: likes[b],
			Inversion:  b.Xor(strongest),
		})
	}

	var allocation []int
	if cfg.EqualAllocation {
		allocation = splitShots(adaptiveShots, len(res.Candidates))
	} else {
		weights := make([]float64, len(res.Candidates))
		for i, c := range res.Candidates {
			weights[i] = c.Likelihood
		}
		allocation = splitShotsWeighted(adaptiveShots, weights)
	}
	adaptive, err := orchestrate.Map(ctx, j.Machine.workers(), allocation,
		func(ctx context.Context, i, n int) (*dist.Counts, error) {
			if n == 0 {
				return nil, nil
			}
			cand := res.Candidates[i]
			counts, err := j.RunWithInversionContext(ctx, cand.Inversion, n, deriveSeed(seed, 2000+i))
			if err != nil {
				return nil, fmt.Errorf("core: AIM adaptive mode %v: %w", cand.Inversion, err)
			}
			return counts, nil
		})
	if err != nil {
		return nil, err
	}
	for _, counts := range adaptive {
		if counts != nil {
			res.Merged.Merge(counts)
		}
	}
	return res, nil
}

// splitShotsWeighted divides a trial budget proportionally to weights,
// guaranteeing at least one trial per positive-weight group and an exact
// total. Zero or negative weights fall back to an equal split.
func splitShotsWeighted(shots int, weights []float64) []int {
	n := len(weights)
	var total float64
	for _, w := range weights {
		if w < 0 {
			w = 0
		}
		total += w
	}
	if total <= 0 || shots < n {
		return splitShots(shots, n)
	}
	out := make([]int, n)
	assigned := 0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		out[i] = int(float64(shots) * w / total)
		if out[i] == 0 && w > 0 {
			out[i] = 1
		}
		assigned += out[i]
	}
	// Distribute the rounding remainder (or claw back an excess) from the
	// heaviest group down.
	for assigned != shots {
		// Index of the largest current allocation.
		best := 0
		for i := 1; i < n; i++ {
			if out[i] > out[best] {
				best = i
			}
		}
		if assigned < shots {
			out[best]++
			assigned++
		} else {
			if out[best] <= 1 {
				break
			}
			out[best]--
			assigned--
		}
	}
	return out
}

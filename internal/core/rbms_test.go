package core

import (
	"math"
	"testing"

	"biasmit/internal/bitstring"
	"biasmit/internal/device"
	"biasmit/internal/kernels"
)

// exactRBMS computes the ground-truth logical BMS for a layout on a
// device's readout channel (gate noise excluded).
func exactRBMS(dev *device.Device, layout []int) RBMS {
	model := dev.ReadoutModel()
	n := len(layout)
	strength := make([]float64, 1<<uint(n))
	for _, b := range bitstring.All(n) {
		phys := bitstring.Zeros(dev.NumQubits)
		for lq, pq := range layout {
			phys = phys.SetBit(pq, b.Bit(lq))
		}
		strength[b.Uint64()] = model.SubsetSuccessProb(phys, layout)
	}
	r, err := NewRBMS(n, strength)
	if err != nil {
		panic(err)
	}
	return r
}

func TestNewRBMSValidation(t *testing.T) {
	if _, err := NewRBMS(3, make([]float64, 7)); err == nil {
		t.Error("wrong length accepted")
	}
	if _, err := NewRBMS(2, []float64{1, -0.1, 0.5, 0.2}); err == nil {
		t.Error("negative strength accepted")
	}
	if _, err := NewRBMS(2, []float64{1, math.NaN(), 0.5, 0.2}); err == nil {
		t.Error("NaN strength accepted")
	}
}

func TestRBMSAccessorsAndNormalization(t *testing.T) {
	r, err := NewRBMS(2, []float64{0.8, 0.4, 0.4, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Of(bs("00")); got != 0.8 {
		t.Errorf("Of(00) = %v", got)
	}
	rel := r.Relative()
	if rel.Strength[0] != 1 || rel.Strength[3] != 0.25 {
		t.Errorf("Relative = %v", rel.Strength)
	}
	sum := r.NormalizeSum()
	var tot float64
	for _, s := range sum.Strength {
		tot += s
	}
	if math.Abs(tot-1) > 1e-12 {
		t.Errorf("NormalizeSum total = %v", tot)
	}
	if got := r.StrongestState(); got != bs("00") {
		t.Errorf("StrongestState = %v", got)
	}
}

func TestStrongestStateTieBreak(t *testing.T) {
	r, _ := NewRBMS(2, []float64{0.5, 0.9, 0.9, 0.1})
	if got := r.StrongestState(); got != bs("01") {
		t.Errorf("tie-break = %v, want 01 (numerically smallest)", got)
	}
}

func TestBruteForceMatchesExactBMS(t *testing.T) {
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	layout := []int{0, 1, 2, 3, 4}
	prof := &Profiler{Machine: m, Layout: layout}
	got, err := prof.BruteForce(4000, 201)
	if err != nil {
		t.Fatal(err)
	}
	want := exactRBMS(dev, layout)
	for _, b := range bitstring.All(5) {
		if math.Abs(got.Of(b)-want.Of(b)) > 0.04 {
			t.Errorf("BMS(%v) = %v, exact %v", b, got.Of(b), want.Of(b))
		}
	}
}

func TestESCTMatchesBruteForceShape(t *testing.T) {
	// Appendix A: ESCT approximates the brute-force RBMS within a few
	// percent MSE on normalized curves (paper: 5%).
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	prof := &Profiler{Machine: m, Layout: []int{0, 1, 2, 3, 4}}
	esct, err := prof.ESCT(120000, 202)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactRBMS(dev, prof.Layout)
	mse, err := esct.MSE(exact)
	if err != nil {
		t.Fatal(err)
	}
	// Normalized strengths are ≈ 1/32 ≈ 0.031 each; an MSE of 1e-5 is
	// ~10% relative error per point.
	if mse > 2e-5 {
		t.Errorf("ESCT MSE vs exact = %v", mse)
	}
	// The state ESCT picks as strongest must be near-optimal in truth:
	// sampling noise may swap close contenders, but not strong for weak.
	// (within ~5%, the ESCT approximation error the paper reports).
	picked := exact.Of(esct.StrongestState())
	best := exact.Of(exact.StrongestState())
	if picked < 0.95*best {
		t.Errorf("ESCT strongest %v has exact strength %v, true best %v has %v",
			esct.StrongestState(), picked, exact.StrongestState(), best)
	}
}

func TestAWCTApproximatesESCT(t *testing.T) {
	// Fig 15: AWCT with window 4 / overlap 2 tracks the direct
	// characterization on a 5-qubit machine.
	dev := device.IBMQX4()
	m := readoutOnlyMachine(dev)
	prof := &Profiler{Machine: m, Layout: []int{0, 1, 2, 3, 4}}
	awct, err := prof.AWCT(4, 2, 60000, 203)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactRBMS(dev, prof.Layout)
	mse, err := awct.MSE(exact)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 5e-5 {
		t.Errorf("AWCT MSE vs exact = %v", mse)
	}
	// Rank correlation at the extremes: the exact weakest state should
	// be in AWCT's bottom quartile.
	exWeak := weakestState(exact)
	rank := 0
	for _, b := range bitstring.All(5) {
		if awct.Of(b) < awct.Of(exWeak) {
			rank++
		}
	}
	if rank > 8 {
		t.Errorf("exact weakest state ranks %d from bottom in AWCT", rank+1)
	}
}

func weakestState(r RBMS) bitstring.Bits {
	worst := 0
	for i, s := range r.Strength {
		if s < r.Strength[worst] {
			worst = i
		}
	}
	return bitstring.New(uint64(worst), r.Width)
}

func TestAWCTScalesToMelbourne(t *testing.T) {
	// Appendix A's point: windowed characterization works where brute
	// force cannot (2^10 = 1024 states probed with 4-qubit windows).
	if testing.Short() {
		t.Skip("melbourne characterization is slow")
	}
	dev := device.IBMQMelbourne()
	m := readoutOnlyMachine(dev)
	layout := []int{0, 1, 2, 3, 4, 5, 6, 8, 9, 10}
	prof := &Profiler{Machine: m, Layout: layout}
	awct, err := prof.AWCT(4, 2, 30000, 204)
	if err != nil {
		t.Fatal(err)
	}
	exact := exactRBMS(dev, layout)
	// Hamming-weight trend must match: correlation strongly negative.
	gotCorr, err := awct.HammingCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	wantCorr, err := exact.HammingCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	if gotCorr > -0.5 {
		t.Errorf("AWCT Hamming correlation = %v (exact %v)", gotCorr, wantCorr)
	}
}

func TestAWCTValidation(t *testing.T) {
	m := readoutOnlyMachine(device.IBMQX2())
	prof := &Profiler{Machine: m, Layout: []int{0, 1, 2, 3, 4}}
	cases := []struct{ win, ov, shots int }{
		{1, 0, 100},  // window too small
		{6, 0, 100},  // window larger than register
		{4, 4, 100},  // overlap >= window
		{4, -1, 100}, // negative overlap
		{4, 2, 0},    // no shots
	}
	for i, c := range cases {
		if _, err := prof.AWCT(c.win, c.ov, c.shots, 1); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBruteForceValidation(t *testing.T) {
	m := readoutOnlyMachine(device.IBMQX2())
	prof := &Profiler{Machine: m, Layout: []int{0, 1, 2}}
	if _, err := prof.BruteForce(0, 1); err == nil {
		t.Error("zero shots accepted")
	}
	bigLayout := make([]int, 17)
	bigProf := &Profiler{Machine: m, Layout: bigLayout}
	if _, err := bigProf.BruteForce(10, 1); err == nil {
		t.Error("17-qubit brute force accepted")
	}
}

func TestProfilerUsesJobLayout(t *testing.T) {
	m := readoutOnlyMachine(device.IBMQMelbourne())
	job, err := NewJob(kernels.BasisPrep(bitstring.Zeros(3)), m)
	if err != nil {
		t.Fatal(err)
	}
	prof := job.Profiler()
	if len(prof.Layout) != 3 {
		t.Fatalf("profiler layout = %v", prof.Layout)
	}
	for i, p := range prof.Layout {
		if p != job.Plan.FinalLayout[i] {
			t.Errorf("layout[%d] = %d, want %d", i, p, job.Plan.FinalLayout[i])
		}
	}
}

func TestHammingCorrelationOnIBMQX2(t *testing.T) {
	// Fig 4's correlation, via the exact channel: strongly negative.
	r := exactRBMS(device.IBMQX2(), []int{0, 1, 2, 3, 4})
	corr, err := r.HammingCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	if corr > -0.85 {
		t.Errorf("ibmqx2 correlation = %v", corr)
	}
}

func TestMSEWidthMismatch(t *testing.T) {
	a, _ := NewRBMS(2, []float64{1, 1, 1, 1})
	b, _ := NewRBMS(3, make([]float64, 8))
	if _, err := a.MSE(b); err == nil {
		t.Error("width mismatch accepted")
	}
}

package core

import (
	"context"
	"errors"
	"testing"

	"biasmit/internal/backend"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/kernels"
)

// sameCounts reports whether two histograms agree exactly on every
// outcome in either.
func sameCounts(t *testing.T, label string, a, b *dist.Counts) {
	t.Helper()
	if a.Total() != b.Total() {
		t.Fatalf("%s: totals %d vs %d", label, a.Total(), b.Total())
	}
	for _, o := range a.Outcomes() {
		if a.Get(o) != b.Get(o) {
			t.Fatalf("%s: outcome %v count %d vs %d", label, o, a.Get(o), b.Get(o))
		}
	}
	for _, o := range b.Outcomes() {
		if a.Get(o) != b.Get(o) {
			t.Fatalf("%s: outcome %v count %d vs %d", label, o, a.Get(o), b.Get(o))
		}
	}
}

// TestBruteForceParallelMatchesSequential is the tentpole determinism
// guarantee: at a fixed seed, the parallel profiler produces a profile
// bit-identical to the sequential one, at every worker count.
func TestBruteForceParallelMatchesSequential(t *testing.T) {
	const seed, shots = 41, 300
	profile := func(workers int) RBMS {
		m := readoutOnlyMachine(device.IBMQX2())
		m.Workers = workers
		j, err := NewJob(kernels.BasisPrep(bs("10110")), m)
		if err != nil {
			t.Fatal(err)
		}
		rbms, err := j.Profiler().BruteForce(shots, seed)
		if err != nil {
			t.Fatal(err)
		}
		return rbms
	}
	want := profile(1)
	for _, workers := range []int{2, 4, 8} {
		got := profile(workers)
		for i := range want.Strength {
			if got.Strength[i] != want.Strength[i] {
				t.Fatalf("workers=%d state %d strength %v, want %v",
					workers, i, got.Strength[i], want.Strength[i])
			}
		}
	}
}

func TestSIMParallelMatchesSequential(t *testing.T) {
	const seed, shots = 7, 2000
	run := func(workers int) *SIMResult {
		m := readoutOnlyMachine(device.IBMQX4())
		m.Workers = workers
		j, err := NewJob(kernels.BasisPrep(bs("0110")), m)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SIM4(j, shots, seed)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	got := run(8)
	sameCounts(t, "merged", want.Merged, got.Merged)
	if len(want.PerMode) != len(got.PerMode) {
		t.Fatalf("per-mode lengths %d vs %d", len(want.PerMode), len(got.PerMode))
	}
	for i := range want.PerMode {
		sameCounts(t, "per-mode", want.PerMode[i], got.PerMode[i])
	}
}

func TestAIMParallelMatchesSequential(t *testing.T) {
	const seed, shots = 19, 2400
	run := func(workers int) *AIMResult {
		m := readoutOnlyMachine(device.IBMQX2())
		m.Workers = workers
		j, err := NewJob(kernels.BasisPrep(bs("01011")), m)
		if err != nil {
			t.Fatal(err)
		}
		res, rbms, err := AutoAIM(j, AIMConfig{}, 200, shots, seed)
		if err != nil {
			t.Fatal(err)
		}
		_ = rbms
		return res
	}
	want := run(1)
	got := run(8)
	sameCounts(t, "merged", want.Merged, got.Merged)
	sameCounts(t, "canary", want.Canary, got.Canary)
	if len(want.Candidates) != len(got.Candidates) {
		t.Fatalf("candidate counts %d vs %d", len(want.Candidates), len(got.Candidates))
	}
	for i := range want.Candidates {
		if want.Candidates[i].Output != got.Candidates[i].Output {
			t.Fatalf("candidate %d output %v vs %v",
				i, want.Candidates[i].Output, got.Candidates[i].Output)
		}
	}
}

func TestAWCTParallelMatchesSequential(t *testing.T) {
	const seed, shots = 61, 500
	profile := func(workers int) RBMS {
		m := readoutOnlyMachine(device.IBMQX2())
		m.Workers = workers
		j, err := NewJob(kernels.BasisPrep(bs("00000")), m)
		if err != nil {
			t.Fatal(err)
		}
		rbms, err := j.Profiler().AWCT(3, 1, shots, seed)
		if err != nil {
			t.Fatal(err)
		}
		return rbms
	}
	want := profile(1)
	got := profile(8)
	for i := range want.Strength {
		if got.Strength[i] != want.Strength[i] {
			t.Fatalf("state %d strength %v, want %v", i, got.Strength[i], want.Strength[i])
		}
	}
}

func TestProfilerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := readoutOnlyMachine(device.IBMQX2())
	j, err := NewJob(kernels.BasisPrep(bs("00000")), m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Profiler().BruteForceContext(ctx, 100, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("BruteForceContext err = %v, want context.Canceled", err)
	}
	if _, err := SIMContext(ctx, j, nil, 0, 1); err == nil {
		t.Fatal("SIMContext accepted an empty string set")
	}
	if _, err := SIM4Context(ctx, j, 400, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("SIM4Context err = %v, want context.Canceled", err)
	}
	if _, err := AIMContext(ctx, j, RBMS{}, AIMConfig{}, 400, 1); err == nil {
		t.Fatal("AIMContext accepted a zero RBMS")
	}
}

// TestBruteForceBudgetGuard covers the satellite overflow fix: shot
// budgets that overflow when multiplied by the state count must surface
// as a typed BudgetError instead of silently wrapping.
func TestBruteForceBudgetGuard(t *testing.T) {
	m := readoutOnlyMachine(device.IBMQX2())
	j, err := NewJob(kernels.BasisPrep(bs("00000")), m)
	if err != nil {
		t.Fatal(err)
	}
	var be *backend.BudgetError
	if _, err := j.Profiler().BruteForce(backend.MaxShots, 1); !errors.As(err, &be) {
		t.Fatalf("overflowing brute-force budget err = %v, want *backend.BudgetError", err)
	}
	if _, err := j.Profiler().BruteForce(0, 1); !errors.As(err, &be) {
		t.Fatalf("zero brute-force budget err = %v, want *backend.BudgetError", err)
	}
	if _, err := j.Profiler().AWCT(3, 1, backend.MaxShots, 1); !errors.As(err, &be) {
		t.Fatalf("overflowing AWCT budget err = %v, want *backend.BudgetError", err)
	}
}

package core

import (
	"fmt"
	"sort"

	"biasmit/internal/bitstring"
	"biasmit/internal/kernels"
)

// Crosstalk is a measured readout-crosstalk matrix: Excess[target][trigger]
// is the additional flip probability of the target qubit's readout when
// the trigger qubit is excited, beyond its baseline flip rate with the
// trigger in |0⟩. On a crosstalk-free machine every entry is statistical
// noise around zero; on ibmqx4 the planted correlated-readout terms stand
// out. This is the data-driven counterpart of the correlated-SPAM
// characterization the paper cites ([25], Sun & Geller) and explains the
// "arbitrary bias" AIM adapts to (§6.1).
type Crosstalk struct {
	Width  int
	Excess [][]float64 // [target][trigger]; diagonal entries are zero
}

// CrosstalkPair is one detected interaction.
type CrosstalkPair struct {
	Trigger, Target int
	Excess          float64
}

// SignificantPairs returns pairs whose |excess| exceeds the threshold,
// ordered by descending magnitude (ties by trigger, then target).
func (x *Crosstalk) SignificantPairs(threshold float64) []CrosstalkPair {
	var out []CrosstalkPair
	for target := 0; target < x.Width; target++ {
		for trigger := 0; trigger < x.Width; trigger++ {
			if target == trigger {
				continue
			}
			if e := x.Excess[target][trigger]; e >= threshold || e <= -threshold {
				out = append(out, CrosstalkPair{Trigger: trigger, Target: target, Excess: e})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs(out[i].Excess), abs(out[j].Excess)
		if ai != aj {
			return ai > aj
		}
		if out[i].Trigger != out[j].Trigger {
			return out[i].Trigger < out[j].Trigger
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// MaxExcess returns the largest |excess| in the matrix.
func (x *Crosstalk) MaxExcess() float64 {
	var m float64
	for t := range x.Excess {
		for _, e := range x.Excess[t] {
			if a := abs(e); a > m {
				m = a
			}
		}
	}
	return m
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Crosstalk measures the readout-crosstalk matrix of the profiler's
// register: for every trigger qubit, it compares each other qubit's flip
// rate with the trigger excited versus relaxed, using shotsPerState
// trials for each of the n+1 calibration states (all-zeros plus one
// single-excitation state per qubit).
func (p *Profiler) Crosstalk(shotsPerState int, seed int64) (*Crosstalk, error) {
	n := p.width()
	if shotsPerState <= 0 {
		return nil, fmt.Errorf("core: shotsPerState must be positive")
	}

	// flipRates measures, for a prepared state, each qubit's probability
	// of reading back flipped.
	flipRates := func(state bitstring.Bits, s int64) ([]float64, error) {
		job, err := NewJobWithLayout(kernels.BasisPrep(state), p.Machine, p.Layout)
		if err != nil {
			return nil, err
		}
		counts, err := job.Baseline(shotsPerState, s)
		if err != nil {
			return nil, err
		}
		flips := make([]float64, n)
		for _, out := range counts.Outcomes() {
			c := float64(counts.Get(out))
			for q := 0; q < n; q++ {
				if out.Bit(q) != state.Bit(q) {
					flips[q] += c
				}
			}
		}
		for q := range flips {
			flips[q] /= float64(counts.Total())
		}
		return flips, nil
	}

	baseline, err := flipRates(bitstring.Zeros(n), deriveSeed(seed, 5000))
	if err != nil {
		return nil, err
	}
	x := &Crosstalk{Width: n, Excess: make([][]float64, n)}
	for t := range x.Excess {
		x.Excess[t] = make([]float64, n)
	}
	for trigger := 0; trigger < n; trigger++ {
		excited, err := flipRates(bitstring.Zeros(n).SetBit(trigger, true), deriveSeed(seed, 5001+trigger))
		if err != nil {
			return nil, err
		}
		for target := 0; target < n; target++ {
			if target == trigger {
				continue // the trigger's own flip rate is its P10, not crosstalk
			}
			x.Excess[target][trigger] = excited[target] - baseline[target]
		}
	}
	return x, nil
}

package qasm

import (
	"math"
	"testing"
)

// FuzzParse asserts the parser never panics on arbitrary input and that
// anything it accepts round-trips through Export with unit fidelity.
func FuzzParse(f *testing.F) {
	f.Add("qreg q[2];\nh q[0];\ncx q[0],q[1];")
	f.Add("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nrz(pi/2) q[1];")
	f.Add("qreg q[1];\nu3(0.1,0.2,0.3) q[0];")
	f.Add("barrier q;")
	f.Add("qreg q[4];\nswap q[0],q[3];\nmeasure q -> c;")
	f.Add("qreg q[2];\nrz(-3*pi/4) q[0];\ncz q[1],q[0];")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(src)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		reparsed, err := Parse(Export(c))
		if err != nil {
			t.Fatalf("accepted program failed to round-trip: %v", err)
		}
		if reparsed.NumQubits != c.NumQubits {
			t.Fatalf("round-trip changed register: %d -> %d", c.NumQubits, reparsed.NumQubits)
		}
		if c.NumQubits <= 10 {
			if fid := reparsed.Simulate().Fidelity(c.Simulate()); math.Abs(fid-1) > 1e-6 {
				t.Fatalf("round-trip fidelity %v", fid)
			}
		}
	})
}

package qasm

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/kernels"
	"biasmit/internal/maxcut"
)

func TestExportContainsStructure(t *testing.T) {
	c := circuit.New(3, "demo").H(0).CX(0, 1).RZ(math.Pi/4, 2).AddBarrier().Swap(1, 2)
	out := Export(c)
	for _, want := range []string{
		"OPENQASM 2.0;",
		"qreg q[3];",
		"creg c[3];",
		"h q[0];",
		"cx q[0],q[1];",
		"barrier q;",
		"swap q[1],q[2];",
		"measure q -> c;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

func TestParseBasicProgram(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
// bell
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q -> c;`
	c, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 2 || len(c.Ops) != 2 {
		t.Fatalf("parsed %d qubits, %d ops", c.NumQubits, len(c.Ops))
	}
	p := c.Simulate().Probabilities()
	if math.Abs(p[0]-0.5) > 1e-9 || math.Abs(p[3]-0.5) > 1e-9 {
		t.Errorf("parsed bell state wrong: %v", p)
	}
}

func TestParseAngles(t *testing.T) {
	cases := map[string]float64{
		"rz(pi) q[0];":       math.Pi,
		"rz(pi/2) q[0];":     math.Pi / 2,
		"rz(2*pi) q[0];":     2 * math.Pi,
		"rz(-pi/4) q[0];":    -math.Pi / 4,
		"rz(0.5) q[0];":      0.5,
		"rz(3*pi/4) q[0];":   3 * math.Pi / 4,
		"rz(-0.25*pi) q[0];": -0.25 * math.Pi,
	}
	for stmt, want := range cases {
		src := "qreg q[1];\n" + stmt
		c, err := Parse(src)
		if err != nil {
			t.Errorf("%q: %v", stmt, err)
			continue
		}
		// Verify by comparing against a reference circuit with the angle.
		ref := circuit.New(1, "ref").RZ(want, 0)
		if f := c.Simulate().Fidelity(ref.Simulate()); math.Abs(f-1) > 1e-9 {
			t.Errorf("%q: fidelity %v", stmt, f)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                           // no qreg
		"h q[0];",                    // gate before qreg
		"qreg q[2];\nfoo q[0];",      // unknown gate
		"qreg q[2];\nh q[5];",        // out of range
		"qreg q[2];\nh q;",           // register-wide unsupported
		"qreg q[2];\ncx q[0];",       // wrong arity
		"qreg q[2];\nrz() q[0];",     // missing angle
		"qreg q[2];\nrz(xy) q[0];",   // bad angle
		"qreg q[2];\nqreg r[2];",     // second register
		"qreg q[0];",                 // empty register
		"qreg q[2];\nrz(pi/0) q[0];", // division by zero
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestRoundTripKernels(t *testing.T) {
	pg, err := maxcut.Table3Graph("qaoa-4A")
	if err != nil {
		t.Fatal(err)
	}
	circuits := []*circuit.Circuit{
		kernels.GHZ(5),
		kernels.BV("bv", bitstring.MustParse("0111")).Circuit,
		kernels.QAOACircuit(pg.Graph, kernels.QAOAAngles{Gammas: []float64{0.7}, Betas: []float64{0.4}}),
		kernels.UniformSuperposition(4),
		kernels.BasisPrep(bitstring.MustParse("10110")),
	}
	for _, orig := range circuits {
		parsed, err := Parse(Export(orig))
		if err != nil {
			t.Errorf("%s: %v", orig.Name, err)
			continue
		}
		if parsed.NumQubits != orig.NumQubits {
			t.Errorf("%s: register %d != %d", orig.Name, parsed.NumQubits, orig.NumQubits)
			continue
		}
		if f := parsed.Simulate().Fidelity(orig.Simulate()); math.Abs(f-1) > 1e-9 {
			t.Errorf("%s: round-trip fidelity %v", orig.Name, f)
		}
	}
}

// Property: random circuits round-trip through QASM with unit fidelity.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		c := circuit.New(n, "rand")
		for i := 0; i < 15; i++ {
			switch rng.Intn(7) {
			case 0:
				c.H(rng.Intn(n))
			case 1:
				c.X(rng.Intn(n))
			case 2:
				c.RZ(rng.Float64()*2*math.Pi-math.Pi, rng.Intn(n))
			case 3:
				c.RY(rng.Float64()*2*math.Pi-math.Pi, rng.Intn(n))
			case 4:
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.CX(a, b)
			case 5:
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.CZGate(a, b)
			case 6:
				c.S(rng.Intn(n))
			}
		}
		parsed, err := Parse(Export(c))
		if err != nil {
			return false
		}
		return math.Abs(parsed.Simulate().Fidelity(c.Simulate())-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(101))}); err != nil {
		t.Error(err)
	}
}

func TestParseRejectsOversizedRegister(t *testing.T) {
	// Regression for a fuzzer finding: an oversized qreg must be a parse
	// error, not a panic from the circuit constructor.
	if _, err := Parse("qreg q[70];"); err == nil {
		t.Error("oversized register accepted")
	}
}

func TestParseRejectsRepeatedOperands(t *testing.T) {
	// Regression for a fuzzer finding: two-qubit gates on one qubit must
	// be a parse error, not a builder panic.
	for _, stmt := range []string{"cx q[0],q[0];", "cz q[1],q[1];", "swap q[0],q[0];"} {
		if _, err := Parse("qreg q[2];\n" + stmt); err == nil {
			t.Errorf("%q accepted", stmt)
		}
	}
}

// Package qasm serializes circuits to and from OpenQASM 2.0, the
// interchange format of the IBM Q Experience the paper's experiments ran
// on. Export lets any circuit built here run on real hardware toolchains
// (including the inversion strings SIM/AIM append); Parse lets published
// QASM kernels run on the simulated machines.
//
// The supported gate set covers what internal/circuit can represent:
// h, x, y, z, s, sdg, t, tdg, rx(θ), ry(θ), rz(θ), u3(θ,φ,λ), cx, cz,
// swap, and barrier. A trailing full-register measurement is emitted on
// export and ignored on parse (measurement is implicit in the NISQ trial
// loop).
package qasm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"biasmit/internal/circuit"
	"biasmit/internal/quantum"
)

// Export renders c as an OpenQASM 2.0 program with a full-register
// measurement at the end.
func Export(c *circuit.Circuit) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n// %s\n", c.Name)
	fmt.Fprintf(&sb, "qreg q[%d];\ncreg c[%d];\n", c.NumQubits, c.NumQubits)
	for _, op := range c.Ops {
		switch op.Kind {
		case circuit.Barrier:
			sb.WriteString("barrier q;\n")
		case circuit.CNOT:
			fmt.Fprintf(&sb, "cx q[%d],q[%d];\n", op.Qubits[0], op.Qubits[1])
		case circuit.CZ:
			fmt.Fprintf(&sb, "cz q[%d],q[%d];\n", op.Qubits[0], op.Qubits[1])
		case circuit.SwapOp:
			fmt.Fprintf(&sb, "swap q[%d],q[%d];\n", op.Qubits[0], op.Qubits[1])
		case circuit.Gate1:
			fmt.Fprintf(&sb, "%s q[%d];\n", op.Label, op.Qubits[0])
		}
	}
	fmt.Fprintf(&sb, "measure q -> c;\n")
	return sb.String()
}

// Parse reads an OpenQASM 2.0 program produced by Export (or a subset of
// hand-written QASM using the supported gates, single qreg, and indexed
// operands) and rebuilds the circuit.
func Parse(src string) (*circuit.Circuit, error) {
	var c *circuit.Circuit
	name := "qasm"
	lineNo := 0
	for _, rawLine := range strings.Split(src, "\n") {
		lineNo++
		line := stripComment(rawLine)
		if line == "" {
			continue
		}
		if strings.HasPrefix(strings.TrimSpace(rawLine), "//") {
			if c == nil {
				name = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rawLine), "//"))
			}
			continue
		}
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := parseStatement(&c, name, stmt); err != nil {
				return nil, fmt.Errorf("qasm: line %d: %w", lineNo, err)
			}
		}
	}
	if c == nil {
		return nil, fmt.Errorf("qasm: no qreg declaration found")
	}
	return c, nil
}

func stripComment(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func parseStatement(c **circuit.Circuit, name, stmt string) error {
	head := stmt
	if i := strings.IndexAny(stmt, " \t("); i >= 0 {
		head = stmt[:i]
	}
	switch head {
	case "OPENQASM", "include", "creg":
		return nil
	case "qreg":
		if *c != nil {
			return fmt.Errorf("multiple qreg declarations")
		}
		n, err := parseRegSize(stmt)
		if err != nil {
			return err
		}
		*c = circuit.New(n, name)
		return nil
	case "measure":
		return nil // implicit full-register measurement
	}
	if *c == nil {
		return fmt.Errorf("gate %q before qreg declaration", head)
	}
	return parseGate(*c, stmt)
}

func parseRegSize(stmt string) (int, error) {
	open := strings.Index(stmt, "[")
	close := strings.Index(stmt, "]")
	if open < 0 || close < open {
		return 0, fmt.Errorf("malformed register declaration %q", stmt)
	}
	n, err := strconv.Atoi(stmt[open+1 : close])
	if err != nil || n < 1 {
		return 0, fmt.Errorf("bad register size in %q", stmt)
	}
	if n > quantum.MaxQubits {
		return 0, fmt.Errorf("register size %d exceeds the simulator limit of %d qubits", n, quantum.MaxQubits)
	}
	return n, nil
}

func parseGate(c *circuit.Circuit, stmt string) error {
	// Split "name(params) operands" or "name operands".
	var gate, params, operands string
	if open := strings.Index(stmt, "("); open >= 0 {
		close := strings.Index(stmt, ")")
		if close < open {
			return fmt.Errorf("unbalanced parentheses in %q", stmt)
		}
		gate = strings.TrimSpace(stmt[:open])
		params = stmt[open+1 : close]
		operands = strings.TrimSpace(stmt[close+1:])
	} else {
		fields := strings.Fields(stmt)
		if len(fields) < 1 {
			return fmt.Errorf("empty statement")
		}
		gate = fields[0]
		operands = strings.TrimSpace(strings.TrimPrefix(stmt, fields[0]))
	}

	if gate == "barrier" {
		c.AddBarrier()
		return nil
	}

	qubits, err := parseOperands(operands, c.NumQubits)
	if err != nil {
		return fmt.Errorf("%q: %w", stmt, err)
	}
	angles, err := parseParams(params)
	if err != nil {
		return fmt.Errorf("%q: %w", stmt, err)
	}

	need := func(nq, na int) error {
		if len(qubits) != nq {
			return fmt.Errorf("%s takes %d qubits, got %d", gate, nq, len(qubits))
		}
		if len(angles) != na {
			return fmt.Errorf("%s takes %d parameters, got %d", gate, na, len(angles))
		}
		if nq == 2 && qubits[0] == qubits[1] {
			return fmt.Errorf("%s operands must be distinct, got q[%d] twice", gate, qubits[0])
		}
		return nil
	}

	switch gate {
	case "h", "x", "y", "z", "s", "sdg", "t", "tdg", "id":
		if err := need(1, 0); err != nil {
			return err
		}
		m := map[string]quantum.Matrix2{
			"h": quantum.H, "x": quantum.X, "y": quantum.Y, "z": quantum.Z,
			"s": quantum.S, "sdg": quantum.Sdg, "t": quantum.T, "tdg": quantum.Tdg,
			"id": quantum.I,
		}[gate]
		c.Gate(m, qubits[0], gate)
	case "rx":
		if err := need(1, 1); err != nil {
			return err
		}
		c.RX(angles[0], qubits[0])
	case "ry":
		if err := need(1, 1); err != nil {
			return err
		}
		c.RY(angles[0], qubits[0])
	case "rz":
		if err := need(1, 1); err != nil {
			return err
		}
		c.RZ(angles[0], qubits[0])
	case "u3":
		if err := need(1, 3); err != nil {
			return err
		}
		c.Gate(quantum.U3(angles[0], angles[1], angles[2]), qubits[0],
			fmt.Sprintf("u3(%.17g,%.17g,%.17g)", angles[0], angles[1], angles[2]))
	case "cx":
		if err := need(2, 0); err != nil {
			return err
		}
		c.CX(qubits[0], qubits[1])
	case "cz":
		if err := need(2, 0); err != nil {
			return err
		}
		c.CZGate(qubits[0], qubits[1])
	case "swap":
		if err := need(2, 0); err != nil {
			return err
		}
		c.Swap(qubits[0], qubits[1])
	default:
		return fmt.Errorf("unsupported gate %q", gate)
	}
	return nil
}

func parseOperands(s string, numQubits int) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("missing operands")
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		open := strings.Index(part, "[")
		close := strings.Index(part, "]")
		if open < 0 || close < open {
			return nil, fmt.Errorf("malformed operand %q (register-wide gates unsupported)", part)
		}
		q, err := strconv.Atoi(part[open+1 : close])
		if err != nil {
			return nil, fmt.Errorf("bad qubit index in %q", part)
		}
		if q < 0 || q >= numQubits {
			return nil, fmt.Errorf("qubit %d out of range [0,%d)", q, numQubits)
		}
		out = append(out, q)
	}
	return out, nil
}

// parseParams evaluates comma-separated angle expressions supporting
// numeric literals, pi, and the forms k*pi, pi/k, k*pi/m, -expr.
func parseParams(s string) ([]float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := evalAngle(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func evalAngle(expr string) (float64, error) {
	if expr == "" {
		return 0, fmt.Errorf("empty parameter")
	}
	neg := false
	if strings.HasPrefix(expr, "-") {
		neg = true
		expr = strings.TrimSpace(expr[1:])
	}
	// Split on '/' for a single division.
	num := expr
	den := ""
	if i := strings.Index(expr, "/"); i >= 0 {
		num, den = strings.TrimSpace(expr[:i]), strings.TrimSpace(expr[i+1:])
	}
	v, err := evalProduct(num)
	if err != nil {
		return 0, err
	}
	if den != "" {
		d, err := evalProduct(den)
		if err != nil {
			return 0, err
		}
		if d == 0 {
			return 0, fmt.Errorf("division by zero in %q", expr)
		}
		v /= d
	}
	if neg {
		v = -v
	}
	return v, nil
}

func evalProduct(expr string) (float64, error) {
	v := 1.0
	for _, factor := range strings.Split(expr, "*") {
		factor = strings.TrimSpace(factor)
		switch factor {
		case "pi":
			v *= math.Pi
		default:
			f, err := strconv.ParseFloat(factor, 64)
			if err != nil {
				return 0, fmt.Errorf("cannot evaluate %q", factor)
			}
			v *= f
		}
	}
	return v, nil
}

package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// waitState polls until the job reaches state st or the deadline ends.
func waitState(t *testing.T, q *Queue, id string, st State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if j.State == st {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := q.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, j.State, st)
	return Job{}
}

func TestIDOrderingAndValidation(t *testing.T) {
	g := newIDGen(nil)
	prev := ""
	for i := 0; i < 10000; i++ {
		id := g.Next()
		if err := ValidID(id); err != nil {
			t.Fatal(err)
		}
		if id <= prev {
			t.Fatalf("ID %q does not sort after %q", id, prev)
		}
		prev = id
	}
	for _, bad := range []string{"", "short", "abcdefghijklmnopqrstuvwxyz", "0123456789ABCDEFGHJKMNPQRSI"} {
		if err := ValidID(bad); err == nil {
			t.Fatalf("ValidID(%q) accepted", bad)
		}
	}
}

func TestSubmitLifecycleDone(t *testing.T) {
	q, err := NewQueue(Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(q, SchedulerOptions{
		Workers: 2,
		Exec: func(ctx context.Context, j Job) (json.RawMessage, *Failure) {
			return json.RawMessage(`{"echo":"` + j.Spec.Type + `"}`), nil
		},
	})
	s.Start()
	defer s.Drain(context.Background())

	j, err := q.Submit(Spec{Type: "mitigate", Tenant: "t1", Payload: json.RawMessage(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || j.ID == "" {
		t.Fatalf("submitted job = %+v", j)
	}
	ch, ok := q.Await(j.ID)
	if !ok {
		t.Fatal("Await: job not found")
	}
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("job never reached a terminal state")
	}
	got := waitState(t, q, j.ID, StateDone)
	if string(got.Result) != `{"echo":"mitigate"}` {
		t.Fatalf("result = %s", got.Result)
	}
	if got.Attempts != 1 || got.BatchSize != 1 {
		t.Fatalf("attempts=%d batch=%d, want 1/1", got.Attempts, got.BatchSize)
	}
	st := q.Stats()
	if st.Done != 1 || st.Transitions[StateDone] != 1 || st.Transitions[StateRunning] != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFailureIsTerminal(t *testing.T) {
	q, _ := NewQueue(Options{})
	s := NewScheduler(q, SchedulerOptions{
		Workers: 1,
		Exec: func(context.Context, Job) (json.RawMessage, *Failure) {
			return nil, &Failure{Code: "internal", Message: "boom", Status: 500}
		},
	})
	s.Start()
	defer s.Drain(context.Background())
	j, _ := q.Submit(Spec{Type: "mitigate"})
	got := waitState(t, q, j.ID, StateFailed)
	if got.Failure == nil || got.Failure.Code != "internal" {
		t.Fatalf("failure = %+v", got.Failure)
	}
	if got.Spec.Tenant != "anon" {
		t.Fatalf("tenant defaulted to %q, want anon", got.Spec.Tenant)
	}
}

func TestCancelQueuedImmediate(t *testing.T) {
	q, _ := NewQueue(Options{}) // no scheduler: the job stays queued
	j, _ := q.Submit(Spec{Type: "mitigate"})
	got, err := q.Cancel(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got.State)
	}
	if _, err := q.Cancel(j.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("second cancel err = %v, want ErrTerminal", err)
	}
	if _, err := q.Cancel("00000000000000000000000000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown cancel err = %v, want ErrNotFound", err)
	}
}

func TestCancelRunningPropagatesContext(t *testing.T) {
	started := make(chan struct{})
	q, _ := NewQueue(Options{})
	s := NewScheduler(q, SchedulerOptions{
		Workers: 1,
		Exec: func(ctx context.Context, j Job) (json.RawMessage, *Failure) {
			close(started)
			<-ctx.Done() // the cancel must reach the runner
			return nil, &Failure{Code: "canceled", Message: ctx.Err().Error()}
		},
	})
	s.Start()
	defer s.Drain(context.Background())
	j, _ := q.Submit(Spec{Type: "mitigate"})
	<-started
	if _, err := q.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, q, j.ID, StateCancelled)
	if got.Failure != nil {
		t.Fatalf("cancelled job carries failure %+v", got.Failure)
	}
	if st := q.Stats(); st.Transitions[StateCancelled] != 1 {
		t.Fatalf("transitions = %+v", st.Transitions)
	}
}

func TestTenantQuota(t *testing.T) {
	q, _ := NewQueue(Options{MaxPerTenant: 2})
	if _, err := q.Submit(Spec{Tenant: "a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(Spec{Tenant: "a"}); err != nil {
		t.Fatal(err)
	}
	_, err := q.Submit(Spec{Tenant: "a"})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("third submit err = %v, want *QuotaError", err)
	}
	// Other tenants are unaffected.
	if _, err := q.Submit(Spec{Tenant: "b"}); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.Throttled != 1 || st.Submitted != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPriorityClasses(t *testing.T) {
	q, _ := NewQueue(Options{})
	var mu sync.Mutex
	var order []string
	s := NewScheduler(q, SchedulerOptions{
		Workers: 1,
		Exec: func(_ context.Context, j Job) (json.RawMessage, *Failure) {
			mu.Lock()
			order = append(order, j.Spec.Type)
			mu.Unlock()
			return json.RawMessage(`{}`), nil
		},
	})
	// Submit before starting so dispatch order is pure policy.
	var last Job
	for _, spec := range []Spec{
		{Type: "low-1", Priority: 0},
		{Type: "high-1", Priority: 5},
		{Type: "low-2", Priority: 0},
		{Type: "high-2", Priority: 5},
	} {
		last, _ = q.Submit(spec)
	}
	s.Start()
	defer s.Drain(context.Background())
	waitState(t, q, last.ID, StateDone)
	for _, j := range q.List("", "") {
		waitState(t, q, j.ID, StateDone)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"high-1", "high-2", "low-1", "low-2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want %v", order, want)
	}
}

func TestWeightedRoundRobinFairness(t *testing.T) {
	q, _ := NewQueue(Options{})
	var mu sync.Mutex
	var order []string
	s := NewScheduler(q, SchedulerOptions{
		Workers: 1,
		Weights: map[string]int{"heavy": 2, "light": 1},
		Exec: func(_ context.Context, j Job) (json.RawMessage, *Failure) {
			mu.Lock()
			order = append(order, j.Spec.Tenant)
			mu.Unlock()
			return json.RawMessage(`{}`), nil
		},
	})
	const n = 9
	for i := 0; i < n; i++ {
		if _, err := q.Submit(Spec{Tenant: "heavy"}); err != nil {
			t.Fatal(err)
		}
		if _, err := q.Submit(Spec{Tenant: "light"}); err != nil {
			t.Fatal(err)
		}
	}
	s.Start()
	defer s.Drain(context.Background())
	for _, j := range q.List("", "") {
		if j.Spec.Tenant == "heavy" {
			waitState(t, q, j.ID, StateDone)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	// While both tenants have work pending, every window of 3 slots gives
	// the weight-2 tenant exactly 2 (smooth WRR). Check the first 3
	// windows — both tenants still have backlog there.
	for w := 0; w+3 <= 9; w += 3 {
		heavy := 0
		for _, tn := range order[w : w+3] {
			if tn == "heavy" {
				heavy++
			}
		}
		if heavy != 2 {
			t.Fatalf("window %d of %v gave heavy %d of 3 slots, want 2", w/3, order, heavy)
		}
	}
}

func TestRetryableFailureRequeues(t *testing.T) {
	q, _ := NewQueue(Options{})
	var mu sync.Mutex
	attempts := 0
	s := NewScheduler(q, SchedulerOptions{
		Workers: 1,
		Exec: func(_ context.Context, j Job) (json.RawMessage, *Failure) {
			mu.Lock()
			attempts++
			n := attempts
			mu.Unlock()
			if n == 1 {
				return nil, &Failure{Code: "upstream_transient", Retryable: true}
			}
			return json.RawMessage(`{"ok":true}`), nil
		},
	})
	s.Start()
	defer s.Drain(context.Background())
	j, _ := q.Submit(Spec{Type: "mitigate", MaxAttempts: 3})
	got := waitState(t, q, j.ID, StateDone)
	if got.Attempts != 2 || got.Requeues != 1 {
		t.Fatalf("attempts=%d requeues=%d, want 2/1", got.Attempts, got.Requeues)
	}
	if st := q.Stats(); st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	q, _ := NewQueue(Options{})
	s := NewScheduler(q, SchedulerOptions{
		Workers: 1,
		Exec: func(context.Context, Job) (json.RawMessage, *Failure) {
			return nil, &Failure{Code: "upstream_transient", Retryable: true}
		},
	})
	s.Start()
	defer s.Drain(context.Background())
	j, _ := q.Submit(Spec{Type: "mitigate", MaxAttempts: 2})
	got := waitState(t, q, j.ID, StateFailed)
	if got.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", got.Attempts)
	}
}

func TestMicroBatchCoalescesPendingJobs(t *testing.T) {
	q, _ := NewQueue(Options{})
	var mu sync.Mutex
	prepares := 0
	var prepSize int
	s := NewScheduler(q, SchedulerOptions{
		Workers: 1,
		Prepare: func(_ context.Context, key string, size int) {
			mu.Lock()
			prepares++
			prepSize = size
			mu.Unlock()
		},
		Exec: func(_ context.Context, j Job) (json.RawMessage, *Failure) {
			return json.RawMessage(`{}`), nil
		},
	})
	var ids []string
	for i := 0; i < 3; i++ {
		j, _ := q.Submit(Spec{Type: "mitigate", Tenant: fmt.Sprintf("t%d", i), BatchKey: "aim|qx4|5|brute"})
		ids = append(ids, j.ID)
	}
	solo, _ := q.Submit(Spec{Type: "mitigate", Tenant: "t0"}) // no batch key
	s.Start()
	defer s.Drain(context.Background())
	sizes := map[int]int{}
	for _, id := range ids {
		j := waitState(t, q, id, StateDone)
		sizes[j.BatchSize]++
	}
	if sizes[3] != 3 {
		t.Fatalf("batch sizes %v, want all three jobs in one batch of 3", sizes)
	}
	if j := waitState(t, q, solo.ID, StateDone); j.BatchSize != 1 {
		t.Fatalf("solo job batch size %d, want 1", j.BatchSize)
	}
	mu.Lock()
	defer mu.Unlock()
	if prepares != 1 || prepSize != 3 {
		t.Fatalf("prepare called %d times (size %d), want once with size 3", prepares, prepSize)
	}
	st := q.Stats()
	if st.MaxBatch != 3 || st.Batches != 2 || st.BatchedJobs != 4 {
		t.Fatalf("batch stats = %+v", st)
	}
}

// TestBatchWindowCollectsLateArrivals drives the batching window with an
// injectable clock: the lead job is held open, two compatible jobs
// arrive "during" the window, and firing the window coalesces all
// three.
func TestBatchWindowCollectsLateArrivals(t *testing.T) {
	q, _ := NewQueue(Options{})
	windowAsked := make(chan struct{}, 8)
	fire := make(chan time.Time)
	s := NewScheduler(q, SchedulerOptions{
		Workers:     1,
		BatchWindow: time.Hour, // duration is nominal; the fake clock fires it
		After: func(d time.Duration) <-chan time.Time {
			if d == time.Hour {
				windowAsked <- struct{}{}
				return fire
			}
			return time.After(d)
		},
		Exec: func(_ context.Context, j Job) (json.RawMessage, *Failure) {
			return json.RawMessage(`{}`), nil
		},
	})
	s.Start()
	defer s.Drain(context.Background())

	lead, _ := q.Submit(Spec{Type: "mitigate", BatchKey: "k"})
	select {
	case <-windowAsked:
	case <-time.After(10 * time.Second):
		t.Fatal("scheduler never opened the batching window")
	}
	// These arrive while the window is open.
	late1, _ := q.Submit(Spec{Type: "mitigate", BatchKey: "k"})
	late2, _ := q.Submit(Spec{Type: "mitigate", BatchKey: "k"})
	fire <- time.Now()

	for _, id := range []string{lead.ID, late1.ID, late2.ID} {
		if j := waitState(t, q, id, StateDone); j.BatchSize != 3 {
			t.Fatalf("job %s ran in batch of %d, want 3", id, j.BatchSize)
		}
	}
}

func TestListFilters(t *testing.T) {
	q, _ := NewQueue(Options{})
	a, _ := q.Submit(Spec{Tenant: "a"})
	b, _ := q.Submit(Spec{Tenant: "b"})
	if _, err := q.Cancel(b.ID); err != nil {
		t.Fatal(err)
	}
	if got := q.List(StateQueued, ""); len(got) != 1 || got[0].ID != a.ID {
		t.Fatalf("List(queued) = %+v", got)
	}
	if got := q.List("", "b"); len(got) != 1 || got[0].State != StateCancelled {
		t.Fatalf("List(tenant b) = %+v", got)
	}
	if got := q.List(StateCancelled, "a"); len(got) != 0 {
		t.Fatalf("List(cancelled, a) = %+v", got)
	}
	if _, err := ParseState("bogus"); err == nil {
		t.Fatal("ParseState accepted bogus")
	}
	sorted := q.List("", "")
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID }) {
		t.Fatal("List not sorted by ID")
	}
}

func TestTerminalRetention(t *testing.T) {
	q, _ := NewQueue(Options{Retention: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		j, _ := q.Submit(Spec{})
		if _, err := q.Cancel(j.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	if _, ok := q.Get(ids[0]); ok {
		t.Fatal("oldest terminal job should have been evicted")
	}
	if _, ok := q.Get(ids[3]); !ok {
		t.Fatal("newest terminal job should be retained")
	}
}

func TestPageCursorWalk(t *testing.T) {
	q, _ := NewQueue(Options{})
	var want []string
	for i := 0; i < 5; i++ {
		j, err := q.Submit(Spec{Tenant: "a"})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, j.ID)
	}

	// Pages of two hand out every job exactly once, in ID order, with
	// next cursors that chain and run dry on the final page.
	var got []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 3 {
			t.Fatal("pagination did not terminate")
		}
		page, next := q.Page("", "", cursor, 2)
		if len(page) > 2 {
			t.Fatalf("page of %d jobs, limit 2", len(page))
		}
		for _, j := range page {
			got = append(got, j.ID)
		}
		if next == "" {
			break
		}
		cursor = next
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("paged %v, want %v", got, want)
	}

	// The cursor is a watermark: a job submitted mid-iteration sorts
	// after every ID already handed out, so resuming from the old
	// cursor surfaces it without disturbing earlier pages.
	first, next := q.Page("", "", "", 3)
	late, err := q.Submit(Spec{Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	rest, last := q.Page("", "", next, 0)
	if last != "" {
		t.Fatalf("unbounded page still has next cursor %q", last)
	}
	var resumed []string
	for _, j := range append(first, rest...) {
		resumed = append(resumed, j.ID)
	}
	if !reflect.DeepEqual(resumed, append(want, late.ID)) {
		t.Fatalf("resumed walk %v, want %v", resumed, append(want, late.ID))
	}

	// Filters and limits compose; a cursor past the end is an empty page.
	if page, _ := q.Page(StateQueued, "b", "", 2); len(page) != 0 {
		t.Fatalf("Page(tenant b) = %+v", page)
	}
	if page, next := q.Page("", "", late.ID, 2); len(page) != 0 || next != "" {
		t.Fatalf("Page past the end = %+v next %q", page, next)
	}
}

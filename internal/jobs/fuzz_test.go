package jobs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"biasmit/internal/persist"
)

// FuzzJobRecordCodec throws arbitrary bytes at the job-record decoder.
// Invariants: decoding never panics, anything that decodes carries a
// valid ID and state, and decode → encode → decode is a fixed point.
func FuzzJobRecordCodec(f *testing.F) {
	valid, _ := EncodeRecord(Record{Seq: 3, Job: *testJob("00000000000000000000000000", StateRunning)})
	f.Add([]byte{})
	f.Add(valid)
	f.Add([]byte(`{"seq":1,"job":{"id":"x","state":"queued"}}`))
	f.Add([]byte(`{"seq":1,"job":{"id":"x","state":"nope"}}`))
	f.Add([]byte(`{"seq":-1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if rec.Job.ID == "" {
			t.Fatal("decoder accepted a record without a job ID")
		}
		switch rec.Job.State {
		case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
		default:
			t.Fatalf("decoder accepted unknown state %q", rec.Job.State)
		}
		enc, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encoding a decoded record failed: %v", err)
		}
		rec2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decoding a re-encoded record failed: %v", err)
		}
		if rec2.Seq != rec.Seq || rec2.Job.ID != rec.Job.ID || rec2.Job.State != rec.Job.State ||
			rec2.Job.Requeues != rec.Job.Requeues || rec2.Job.Attempts != rec.Job.Attempts {
			t.Fatalf("codec round trip diverged: %+v vs %+v", rec, rec2)
		}
	})
}

// FuzzJobLogReplay feeds arbitrary bytes to the jobs WAL as a whole
// file. Invariants: OpenLog never panics; when it accepts the file, the
// recovered jobs are all well-formed, and compact + reopen reproduces
// the identical job set (recovery is idempotent).
func FuzzJobLogReplay(f *testing.F) {
	recA, _ := EncodeRecord(Record{Seq: 1, Job: *testJob("00000000000000000000000000", StateQueued)})
	recB, _ := EncodeRecord(Record{Seq: 2, Job: *testJob("00000000000000000000000001", StateRunning)})
	one := persist.AppendWALRecord(nil, recA)
	two := persist.AppendWALRecord(one, recB)
	f.Add([]byte{})
	f.Add(one)
	f.Add(two)
	f.Add(two[:len(two)-4])                                   // torn tail
	f.Add(persist.AppendWALRecord(nil, []byte(`{"seq":1}`)))  // frames, fails schema
	f.Add(append(append([]byte{}, one...), 0xDE, 0xAD, 0xBE)) // record + garbage tail
	f.Add(persist.AppendWALRecord(one, recA))                 // duplicate ID: last writer wins

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, jobWALFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := OpenLog(dir)
		if err != nil {
			return // a framed-but-invalid record fails the open, by design
		}
		first := l.Recovered()
		for _, j := range first {
			if j.ID == "" {
				t.Fatal("recovered a job without an ID")
			}
			switch j.State {
			case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
			default:
				t.Fatalf("recovered job %s in unknown state %q", j.ID, j.State)
			}
		}
		if err := l.Close(); err != nil { // compacts into a snapshot
			t.Fatalf("close after replay: %v", err)
		}
		l2, err := OpenLog(dir)
		if err != nil {
			t.Fatalf("reopen after compact: %v", err)
		}
		defer l2.Close()
		second := l2.Recovered()
		if len(second) != len(first) {
			t.Fatalf("replay not idempotent: %d jobs, then %d", len(first), len(second))
		}
		for i := range first {
			a, _ := EncodeRecord(Record{Job: first[i]})
			b, _ := EncodeRecord(Record{Job: second[i]})
			if !bytes.Equal(a, b) {
				t.Fatalf("job %s changed across compact+reopen", first[i].ID)
			}
		}
	})
}

// Package jobs is biasmitd's durable asynchronous job-queue subsystem:
// submit a mitigation or characterization as a job, poll (or long-poll)
// its state, and fetch the result later — the request-queue shape that
// lets large AIM runs outlive the HTTP connection that submitted them.
//
// The package is two halves sharing one lock:
//
//   - Queue: typed job specs with ULID-style ordered IDs, a journaled
//     state machine (queued → running → done/failed/cancelled), and
//     crash-safe recovery. Every state transition is appended as a full
//     job record to a checksummed WAL with periodic snapshot compaction
//     (internal/persist, the same torn-tail-tolerant replay as the
//     profile store). On restart no job is lost and none duplicated:
//     jobs caught mid-run are re-queued and re-executed — the executor
//     is deterministic per seed, so the re-run is byte-identical to
//     what the first run would have produced.
//
//   - Scheduler: drains the queue into an orchestrate.Pool-backed
//     worker set with priority classes, smooth weighted-round-robin
//     per-tenant fairness, per-tenant admission quotas, and a
//     micro-batcher that coalesces compatible jobs (same batch key,
//     within a batching window on an injectable clock) so one profile
//     fetch serves the whole batch.
//
// The queue never executes anything itself; the executor is injected
// (ExecFunc), which keeps this package free of simulator imports and
// lets tests drive the full lifecycle with stub executors.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is a job lifecycle state.
type State string

// Job lifecycle states. Terminal states are final: a job enters exactly
// one of them exactly once.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ParseState validates a state filter string ("" matches everything).
func ParseState(s string) (State, error) {
	switch State(s) {
	case "", StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
		return State(s), nil
	}
	return "", fmt.Errorf("jobs: unknown state %q", s)
}

// Spec is what a job runs: the typed payload plus its scheduling
// attributes. Specs are immutable after submission.
type Spec struct {
	// Type names the job kind (api.JobTypeMitigate / Characterize); the
	// queue treats it as opaque, the executor dispatches on it.
	Type string `json:"type"`
	// Tenant is the fairness and quota identity (API key or "anon").
	Tenant string `json:"tenant"`
	// Priority is the scheduling class: higher dispatches first within
	// the tenant's share.
	Priority int `json:"priority,omitempty"`
	// MaxAttempts bounds executions when runs fail retryably; zero or
	// one means a single attempt.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// BatchKey marks the job compatible with others carrying the same
	// key: the scheduler coalesces them into one micro-batch so shared
	// setup (the profile fetch) is paid once. Empty = never batched.
	BatchKey string `json:"batch_key,omitempty"`
	// Deadline is the propagated absolute deadline (X-Request-Deadline):
	// the scheduler fails the job with deadline_exceeded instead of
	// starting it once the deadline has passed — executing work whose
	// requester has given up is pure waste — and caps the execution
	// context so a started job cannot overrun it either. Nil = none.
	Deadline *time.Time `json:"deadline,omitempty"`
	// TraceID is the submitting request's trace ID. It travels in the
	// spec — and therefore through the journal — so a job recovered
	// after a crash still carries the trace its submitter was handed,
	// and the recovery re-execution logs under the original ID.
	TraceID string `json:"trace_id,omitempty"`
	// Payload is the request body the executor will decode (the same
	// struct the synchronous endpoint takes).
	Payload json.RawMessage `json:"payload"`
}

// Failure is the terminal error of a failed job — the same stable code
// and message the synchronous endpoint would have returned.
type Failure struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Status  int    `json:"status,omitempty"`
	// Retryable marks failures worth re-running (transient upstream
	// faults, open breakers); the scheduler honours it against
	// Spec.MaxAttempts.
	Retryable bool `json:"retryable,omitempty"`
	// RetryAfterMS delays the retry (an open breaker's cooldown).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Job is one queued unit of work and its full lifecycle trace. The
// exported fields are exactly what the journal persists.
type Job struct {
	ID              string          `json:"id"`
	Spec            Spec            `json:"spec"`
	State           State           `json:"state"`
	SubmittedAt     time.Time       `json:"submitted_at"`
	StartedAt       time.Time       `json:"started_at,omitempty"`
	FinishedAt      time.Time       `json:"finished_at,omitempty"`
	Attempts        int             `json:"attempts,omitempty"`
	Requeues        int             `json:"requeues,omitempty"`
	BatchSize       int             `json:"batch_size,omitempty"`
	CancelRequested bool            `json:"cancel_requested,omitempty"`
	Result          json.RawMessage `json:"result,omitempty"`
	Failure         *Failure        `json:"failure,omitempty"`

	// Runtime-only state, never persisted.
	seq        uint64             // in-memory FIFO order (recovery preserves ID order)
	reserved   bool               // pulled from pending by the dispatcher, not yet running
	notBefore  time.Time          // earliest dispatch time (retry backoff)
	cancel     context.CancelFunc // cancels the running execution
	done       chan struct{}      // closed on terminal
	stalled    bool               // watchdog cancelled the run; settle requeues
	reservedAt time.Time          // when the dispatcher reserved the job
	batchWait  time.Duration      // reserved→running gap (micro-batch window wait)
}

// BatchWait is how long the job sat reserved for a micro-batch before
// its last execution started — the batch-window wait the executor
// records as a trace span. Zero when the job went straight to running.
func (j *Job) BatchWait() time.Duration { return j.batchWait }

// clone returns a persistence/wire-safe copy (shared immutable slices,
// no runtime fields — they are unexported, so marshalling ignores them,
// but the copy also detaches the caller from future mutations).
func (j *Job) clone() Job {
	c := *j
	c.cancel = nil
	c.done = nil
	return c
}

// ErrNotFound reports an unknown job ID.
var ErrNotFound = errors.New("jobs: no such job")

// ErrTerminal reports a cancel of a job already in a terminal state.
var ErrTerminal = errors.New("jobs: job already in a terminal state")

// QuotaError reports a submission rejected by the tenant's admission
// quota.
type QuotaError struct {
	Tenant string
	Limit  int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("jobs: tenant %q already has %d jobs queued or running", e.Tenant, e.Limit)
}

// Options tunes a Queue.
type Options struct {
	// Log makes the queue durable; nil is memory-only (tests, ad-hoc
	// runs). The queue owns appends; the caller owns Close.
	Log *Log
	// Now overrides the clock, for tests.
	Now func() time.Time
	// MaxPerTenant bounds a tenant's non-terminal jobs; submissions past
	// it are rejected with *QuotaError. Zero = unbounded.
	MaxPerTenant int
	// Retention bounds how many terminal jobs stay queryable; the oldest
	// are evicted (and dropped from the journal's next snapshot). Zero
	// selects 4096.
	Retention int
}

// Stats is a point-in-time snapshot of the queue's gauges and counters.
type Stats struct {
	// Depth by state (gauges).
	Queued, Running, Done, Failed, Cancelled int
	// Submitted counts accepted submissions; Throttled counts
	// quota-rejected ones.
	Submitted uint64
	Throttled uint64
	// Transitions counts entries into each state (queued includes
	// requeues).
	Transitions map[State]uint64
	// Batches counts micro-batches executed; BatchedJobs their total
	// member count; MaxBatch the largest batch seen.
	Batches     uint64
	BatchedJobs uint64
	MaxBatch    int
	// Retries counts retryable-failure requeues; DrainRequeues counts
	// jobs pushed back to queued by a drain deadline; StallRequeues
	// counts jobs the watchdog cancelled and requeued; Expired counts
	// jobs failed because their propagated deadline passed before they
	// started.
	Retries       uint64
	DrainRequeues uint64
	StallRequeues uint64
	Expired       uint64
	// OldestQueued is the age of the oldest still-queued job — the
	// backlog-staleness signal /healthz reports. Zero when nothing is
	// queued.
	OldestQueued time.Duration
	// RecoveredJobs / RecoveredRequeued describe the last boot: live
	// jobs reconstructed, and how many were mid-run and went back to
	// queued.
	RecoveredJobs     int
	RecoveredRequeued int
	// JournalErrors counts transition appends that failed (the in-memory
	// state kept going).
	JournalErrors uint64
	// Log mirrors the journal's own counters (zero when memory-only).
	Log LogStats
}

// Queue is the durable job queue. Construct with NewQueue; all methods
// are safe for concurrent use.
type Queue struct {
	opts Options
	now  func() time.Time

	mu       sync.Mutex
	jobs     map[string]*Job
	pending  map[string][]*Job // tenant -> dispatchable jobs, seq order
	credits  map[string]int    // smooth-WRR state, tenant -> credit
	terminal []string          // terminal job IDs, oldest first (retention)
	gen      *idGen
	seq      uint64
	notifyCh chan struct{}

	submitted   uint64
	throttled   uint64
	transitions map[State]uint64
	batches     uint64
	batchedJobs uint64
	maxBatch    int
	retries     uint64
	drainReqs   uint64
	stallReqs   uint64
	expired     uint64
	recovered   int
	recoveredRq int
	journalErrs uint64
}

// NewQueue builds a queue, recovering journaled jobs when opts.Log is
// set: terminal jobs become queryable history, queued jobs go back to
// pending, and jobs caught mid-run (state running) are re-queued — they
// never reached a terminal state, so re-executing them is the
// exactly-once outcome. Requeues performed here are themselves
// journaled, so a second crash replays the same decision.
func NewQueue(opts Options) (*Queue, error) {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Retention <= 0 {
		opts.Retention = 4096
	}
	q := &Queue{
		opts:        opts,
		now:         opts.Now,
		jobs:        make(map[string]*Job),
		pending:     make(map[string][]*Job),
		credits:     make(map[string]int),
		gen:         newIDGen(opts.Now),
		notifyCh:    make(chan struct{}, 1),
		transitions: make(map[State]uint64),
	}
	for _, rec := range opts.Log.Recovered() {
		j := rec // copy
		j.seq = q.nextSeq()
		j.done = make(chan struct{})
		switch {
		case j.State.Terminal():
			close(j.done)
			q.terminal = append(q.terminal, j.ID)
		case j.CancelRequested:
			// The cancel was accepted before the crash; honour it rather
			// than re-running work nobody wants.
			j.State = StateCancelled
			j.FinishedAt = q.now()
			j.Failure = nil
			close(j.done)
			q.terminal = append(q.terminal, j.ID)
			q.transitions[StateCancelled]++
			q.journalLocked(&j)
		case j.State == StateRunning:
			// Caught mid-run: back to the queue for deterministic
			// re-execution.
			j.State = StateQueued
			j.StartedAt = time.Time{}
			j.Requeues++
			q.recoveredRq++
			q.transitions[StateQueued]++
			// A journal failure here is absorbed like any runtime append
			// failure: the in-memory requeue stands, and a second crash
			// replays the same deterministic running→queued decision from
			// the prior records.
			q.journalLocked(&j)
			q.pending[j.Spec.Tenant] = append(q.pending[j.Spec.Tenant], &j)
		default: // queued
			q.pending[j.Spec.Tenant] = append(q.pending[j.Spec.Tenant], &j)
		}
		if !j.State.Terminal() {
			q.recovered++
		}
		q.jobs[j.ID] = &j
	}
	q.enforceRetentionLocked()
	return q, nil
}

func (q *Queue) nextSeq() uint64 {
	q.seq++
	return q.seq
}

// notify wakes the dispatcher without blocking.
func (q *Queue) notify() {
	select {
	case q.notifyCh <- struct{}{}:
	default:
	}
}

// Submit accepts one job. The job is durably queued (journaled and
// fsynced) when Submit returns; a journal failure rejects the
// submission rather than accepting work that would vanish in a crash.
func (q *Queue) Submit(spec Spec) (Job, error) {
	if spec.Tenant == "" {
		spec.Tenant = "anon"
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.opts.MaxPerTenant > 0 {
		active := 0
		for _, j := range q.jobs {
			if j.Spec.Tenant == spec.Tenant && !j.State.Terminal() {
				active++
			}
		}
		if active >= q.opts.MaxPerTenant {
			q.throttled++
			return Job{}, &QuotaError{Tenant: spec.Tenant, Limit: active}
		}
	}
	j := &Job{
		ID:          q.gen.Next(),
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: q.now(),
		seq:         q.nextSeq(),
		done:        make(chan struct{}),
	}
	if err := q.opts.Log.Append(j); err != nil {
		return Job{}, err
	}
	q.jobs[j.ID] = j
	q.pending[spec.Tenant] = append(q.pending[spec.Tenant], j)
	q.submitted++
	q.transitions[StateQueued]++
	q.notify()
	return j.clone(), nil
}

// Get returns a snapshot of one job.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.clone(), true
}

// Await returns a channel closed when the job reaches a terminal state
// (already closed for terminal jobs) — the long-poll primitive.
func (q *Queue) Await(id string) (<-chan struct{}, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, false
	}
	return j.done, true
}

// List returns job snapshots filtered by state and tenant ("" matches
// all), in submission order.
func (q *Queue) List(state State, tenant string) []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		if state != "" && j.State != state {
			continue
		}
		if tenant != "" && j.Spec.Tenant != tenant {
			continue
		}
		out = append(out, j.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Page returns one page of job snapshots filtered by state and tenant
// ("" matches all), ordered by ID ascending — ULIDs, so submission
// order — starting strictly after cursor ("" starts at the beginning),
// at most limit jobs (limit < 1 means no bound). The second return is
// the cursor for the next page, empty when this page exhausted the
// listing.
//
// The cursor is an ID watermark, not an offset, so the pagination is
// stable under concurrent inserts: new jobs mint ULIDs that sort after
// every ID already handed out, so they appear on (or after) the final
// page rather than shifting earlier pages.
func (q *Queue) Page(state State, tenant, cursor string, limit int) ([]Job, string) {
	all := q.List(state, tenant)
	i := sort.Search(len(all), func(i int) bool { return all[i].ID > cursor })
	all = all[i:]
	if limit > 0 && len(all) > limit {
		return all[:limit], all[limit-1].ID
	}
	return all, ""
}

// Cancel requests cancellation. A queued job is cancelled immediately;
// a running (or batch-reserved) job gets its context cancelled and
// winds down to cancelled asynchronously. Returns the job as it now
// stands. ErrTerminal when there is nothing left to stop.
func (q *Queue) Cancel(id string) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	switch {
	case j.State.Terminal():
		return j.clone(), ErrTerminal
	case j.State == StateQueued && !j.reserved:
		q.removePendingLocked(j)
		q.terminalLocked(j, StateCancelled, nil, nil)
	default:
		// Running, or reserved for a batch about to start: flag it (the
		// flag is honoured at batch start and persisted so a crash
		// before wind-down still ends in cancelled) and cut the
		// execution context.
		j.CancelRequested = true
		q.journalLocked(j)
		if j.cancel != nil {
			j.cancel()
		}
	}
	return j.clone(), nil
}

// removePendingLocked drops j from its tenant's pending list.
func (q *Queue) removePendingLocked(j *Job) {
	list := q.pending[j.Spec.Tenant]
	for i, p := range list {
		if p == j {
			q.pending[j.Spec.Tenant] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(q.pending[j.Spec.Tenant]) == 0 {
		delete(q.pending, j.Spec.Tenant)
	}
}

// journalLocked appends the job's current state to the log, absorbing
// (and counting) failures: once a job is accepted, in-memory progress
// must not stall on a sick disk — the WAL append-error counter is the
// operator's signal.
func (q *Queue) journalLocked(j *Job) {
	if err := q.opts.Log.Append(j); err != nil {
		q.journalErrs++
	}
}

// terminalLocked moves j into a terminal state and wakes waiters.
func (q *Queue) terminalLocked(j *Job, st State, result json.RawMessage, fail *Failure) {
	j.State = st
	j.FinishedAt = q.now()
	j.Result = result
	j.Failure = fail
	j.reserved = false
	j.cancel = nil
	j.stalled = false
	q.transitions[st]++
	q.journalLocked(j)
	close(j.done)
	q.terminal = append(q.terminal, j.ID)
	q.enforceRetentionLocked()
}

// requeueLocked sends a reserved/running job back to pending.
func (q *Queue) requeueLocked(j *Job, delay time.Duration) {
	j.State = StateQueued
	j.StartedAt = time.Time{}
	j.Requeues++
	j.reserved = false
	j.cancel = nil
	j.stalled = false
	if delay > 0 {
		j.notBefore = q.now().Add(delay)
	} else {
		j.notBefore = time.Time{}
	}
	q.transitions[StateQueued]++
	q.journalLocked(j)
	q.pending[j.Spec.Tenant] = append(q.pending[j.Spec.Tenant], j)
	// Keep FIFO order by seq: the requeued job kept its original seq, so
	// re-sort the tenant's list (short — per-tenant backlog).
	list := q.pending[j.Spec.Tenant]
	sort.Slice(list, func(a, b int) bool { return list[a].seq < list[b].seq })
	q.notify()
}

// enforceRetentionLocked evicts the oldest terminal jobs past the
// retention bound, dropping them from future snapshots too.
func (q *Queue) enforceRetentionLocked() {
	for len(q.terminal) > q.opts.Retention {
		id := q.terminal[0]
		q.terminal = q.terminal[1:]
		delete(q.jobs, id)
		q.opts.Log.Forget(id)
	}
}

// Checkpoint folds the journal into a fresh snapshot (the drain path's
// "checkpoint queued jobs"). No-op when memory-only.
func (q *Queue) Checkpoint() error { return q.opts.Log.Compact() }

// Stats snapshots the queue's gauges and counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := Stats{
		Submitted:         q.submitted,
		Throttled:         q.throttled,
		Transitions:       make(map[State]uint64, len(q.transitions)),
		Batches:           q.batches,
		BatchedJobs:       q.batchedJobs,
		MaxBatch:          q.maxBatch,
		Retries:           q.retries,
		DrainRequeues:     q.drainReqs,
		StallRequeues:     q.stallReqs,
		Expired:           q.expired,
		RecoveredJobs:     q.recovered,
		RecoveredRequeued: q.recoveredRq,
		JournalErrors:     q.journalErrs,
		Log:               q.opts.Log.Stats(),
	}
	for s, n := range q.transitions {
		st.Transitions[s] = n
	}
	now := q.now()
	for _, j := range q.jobs {
		switch j.State {
		case StateQueued:
			st.Queued++
			if age := now.Sub(j.SubmittedAt); age > st.OldestQueued {
				st.OldestQueued = age
			}
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	return st
}

package jobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testJob(id string, st State) *Job {
	return &Job{
		ID:          id,
		Spec:        Spec{Type: "mitigate", Tenant: "anon", Payload: json.RawMessage(`{"shots":100}`)},
		State:       st,
		SubmittedAt: time.Unix(1700000000, 0).UTC(),
	}
}

func TestLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := testJob("00000000000000000000000000", StateQueued)
	b := testJob("00000000000000000000000001", StateQueued)
	for _, j := range []*Job{a, b} {
		if err := l.Append(j); err != nil {
			t.Fatal(err)
		}
	}
	b.State = StateDone
	b.Result = json.RawMessage(`{"ok":true}`)
	if err := l.Append(b); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := l2.Recovered()
	if len(got) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(got))
	}
	if got[0].ID != a.ID || got[0].State != StateQueued {
		t.Fatalf("job a = %+v", got[0])
	}
	if got[1].ID != b.ID || got[1].State != StateDone || string(got[1].Result) != `{"ok":true}` {
		t.Fatalf("job b = %+v", got[1])
	}
	// Close compacted, so the reopen came from the snapshot.
	if rec := l2.Recovery(); rec.SnapshotJobs != 2 || rec.WALRecords != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
}

func TestLogTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testJob("00000000000000000000000000", StateQueued)); err != nil {
		t.Fatal(err)
	}
	// Leave the WAL un-compacted and simulate a crash mid-append: a
	// partial frame at the tail.
	walPath := filepath.Join(dir, jobWALFile)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := OpenLog(dir)
	if err != nil {
		t.Fatalf("torn tail must not fail the open: %v", err)
	}
	defer l2.Close()
	rec := l2.Recovery()
	if !rec.TailTruncated {
		t.Fatalf("recovery = %+v, want TailTruncated", rec)
	}
	if rec.WALRecords != 1 || rec.Jobs != 1 {
		t.Fatalf("recovery = %+v, want the intact record preserved", rec)
	}
}

func TestLogSnapshotWatermark(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{
		"00000000000000000000000000",
		"00000000000000000000000001",
		"00000000000000000000000002",
	} {
		st := StateQueued
		if i == 0 {
			st = StateDone
		}
		if err := l.Append(testJob(id, st)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testJob("00000000000000000000000003", StateQueued)); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash window where the snapshot exists but the WAL was
	// not reset: replay must skip entries at or below the watermark.
	if st := l.Stats(); st.Snapshots != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Abandon l without Close (no final compact) and reopen.
	l2, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	rec := l2.Recovery()
	if rec.SnapshotJobs != 3 || rec.WALRecords != 1 || rec.Jobs != 4 {
		t.Fatalf("recovery = %+v, want 3 snapshot jobs + 1 WAL record = 4", rec)
	}
	if rec.WALSkipped != 0 {
		t.Fatalf("recovery = %+v: compact reset the WAL, nothing to skip", rec)
	}
}

func TestLogForgetDropsFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testJob("00000000000000000000000000", StateDone)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testJob("00000000000000000000000001", StateQueued)); err != nil {
		t.Fatal(err)
	}
	l.Forget("00000000000000000000000000")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := l2.Recovered()
	if len(got) != 1 || got[0].ID != "00000000000000000000000001" {
		t.Fatalf("recovered = %+v, want only the un-forgotten job", got)
	}
}

func TestRecordCodecValidation(t *testing.T) {
	if _, err := EncodeRecord(Record{Seq: 1}); err == nil {
		t.Fatal("EncodeRecord accepted an empty job ID")
	}
	if _, err := DecodeRecord([]byte(`{`)); err == nil {
		t.Fatal("DecodeRecord accepted malformed JSON")
	}
	if _, err := DecodeRecord([]byte(`{"seq":1,"job":{"state":"queued"}}`)); err == nil {
		t.Fatal("DecodeRecord accepted a record without a job ID")
	}
	if _, err := DecodeRecord([]byte(`{"seq":1,"job":{"id":"x","state":"pondering"}}`)); err == nil {
		t.Fatal("DecodeRecord accepted an unknown state")
	}
	payload, err := EncodeRecord(Record{Seq: 7, Job: *testJob("00000000000000000000000000", StateRunning)})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Seq != 7 || rec.Job.State != StateRunning {
		t.Fatalf("round-trip = %+v", rec)
	}
}

func TestLogPreservesTraceID(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob("00000000000000000000000000", StateQueued)
	j.Spec.TraceID = "01AAAAAAAAAAAAAAAAAAAAAAAA"
	if err := l.Append(j); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The trace ID rides the journaled spec through close/compact and
	// reopen — a job recovered after a crash keeps the trace its
	// submitter saw.
	l2, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := l2.Recovered()
	if len(got) != 1 || got[0].Spec.TraceID != j.Spec.TraceID {
		t.Fatalf("recovered %+v, want spec trace ID %q", got, j.Spec.TraceID)
	}
}

package jobs

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Job IDs are ULID-shaped: a 48-bit millisecond timestamp followed by
// 80 bits of entropy, rendered as 26 characters of Crockford base32.
// Lexicographic order therefore is submission-time order, which is what
// lets listings, the WAL, and the scheduler's FIFO tie-break all sort by
// ID. Within one millisecond the entropy is incremented rather than
// redrawn, so IDs from one generator are strictly monotonic even under
// bursts.

const idLen = 26

// crockford is the base32 alphabet ULIDs use: no I, L, O, or U, so IDs
// survive transcription.
const crockford = "0123456789ABCDEFGHJKMNPQRSTVWXYZ"

// idGen mints ordered job IDs. Safe for concurrent use.
type idGen struct {
	mu      sync.Mutex
	now     func() time.Time
	rnd     *rand.Rand
	lastMS  uint64
	entropy [10]byte
}

// newIDGen builds a generator on the given clock, seeding its entropy
// stream from the OS so two processes never collide. A nil clock selects
// time.Now.
func newIDGen(now func() time.Time) *idGen {
	if now == nil {
		now = time.Now
	}
	var seed [8]byte
	if _, err := cryptorand.Read(seed[:]); err != nil {
		binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	}
	return &idGen{now: now, rnd: rand.New(rand.NewSource(int64(binary.LittleEndian.Uint64(seed[:]))))}
}

// Next mints one ID.
func (g *idGen) Next() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	ms := uint64(g.now().UnixMilli())
	if ms <= g.lastMS {
		// Same (or rewound) millisecond: bump the entropy so the new ID
		// still sorts after the previous one.
		ms = g.lastMS
		for i := len(g.entropy) - 1; i >= 0; i-- {
			g.entropy[i]++
			if g.entropy[i] != 0 {
				break
			}
		}
	} else {
		g.lastMS = ms
		binary.LittleEndian.PutUint64(g.entropy[0:8], g.rnd.Uint64())
		binary.LittleEndian.PutUint16(g.entropy[8:10], uint16(g.rnd.Uint32()))
	}
	return encodeID(ms, g.entropy)
}

// encodeID renders 48 bits of timestamp plus 80 bits of entropy as 26
// Crockford base32 characters (the standard ULID text form).
func encodeID(ms uint64, entropy [10]byte) string {
	var bin [16]byte
	bin[0] = byte(ms >> 40)
	bin[1] = byte(ms >> 32)
	bin[2] = byte(ms >> 24)
	bin[3] = byte(ms >> 16)
	bin[4] = byte(ms >> 8)
	bin[5] = byte(ms)
	copy(bin[6:], entropy[:])

	var out [idLen]byte
	// 128 bits into 26 five-bit groups, most significant first (the top
	// group holds only 3 bits, ULID-style).
	var acc uint32
	bits := 0
	j := idLen - 1
	for i := len(bin) - 1; i >= 0; i-- {
		acc |= uint32(bin[i]) << bits
		bits += 8
		for bits >= 5 && j >= 0 {
			out[j] = crockford[acc&31]
			acc >>= 5
			bits -= 5
			j--
		}
	}
	for j >= 0 {
		out[j] = crockford[acc&31]
		acc >>= 5
		j--
	}
	return string(out[:])
}

// ValidID reports whether s is shaped like a job ID: 26 Crockford
// base32 characters. Used to reject garbage before a map lookup.
func ValidID(s string) error {
	if len(s) != idLen {
		return fmt.Errorf("jobs: ID %q has length %d, want %d", s, len(s), idLen)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := (c >= '0' && c <= '9') ||
			(c >= 'A' && c <= 'Z' && c != 'I' && c != 'L' && c != 'O' && c != 'U')
		if !ok {
			return fmt.Errorf("jobs: ID %q has invalid character %q", s, c)
		}
	}
	return nil
}

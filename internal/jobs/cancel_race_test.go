package jobs

import (
	"context"
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestCancelDuringBatchWindowDeterministic pins the exact interleaving
// satellite 3 worries about: a job is reserved for a micro-batch, the
// dispatcher is holding the batch window open, and DELETE /v1/jobs lands
// before the window fires. The injectable After hands the test the window
// channel so the ordering is forced, not lucky. The cancel must win
// cleanly — the job ends cancelled, the executor never runs.
func TestCancelDuringBatchWindowDeterministic(t *testing.T) {
	q, err := NewQueue(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Only the batch-window hold asks for a timer here (there are no
	// retry-delayed jobs), so the first channel handed out is the window.
	windows := make(chan chan time.Time, 4)
	execCalls := 0
	var mu sync.Mutex
	s := NewScheduler(q, SchedulerOptions{
		Workers:     1,
		BatchWindow: time.Hour,
		After: func(d time.Duration) <-chan time.Time {
			ch := make(chan time.Time, 1)
			windows <- ch
			return ch
		},
		Exec: func(ctx context.Context, j Job) (json.RawMessage, *Failure) {
			mu.Lock()
			execCalls++
			mu.Unlock()
			return j.Spec.Payload, nil
		},
	})
	j, _ := q.Submit(Spec{Type: "mitigate", BatchKey: "m1"})
	s.Start()

	win := <-windows // dispatcher reserved the job and is holding the window
	if _, err := q.Cancel(j.ID); err != nil {
		t.Fatalf("cancel while window open: %v", err)
	}
	win <- time.Time{} // now let the batch fire

	got := waitState(t, q, j.ID, StateCancelled)
	if got.State != StateCancelled {
		t.Fatalf("state = %v, want cancelled", got.State)
	}
	res := s.Drain(context.Background())
	mu.Lock()
	defer mu.Unlock()
	if execCalls != 0 {
		t.Fatalf("executor ran %d times for a job cancelled inside the batch window, want 0", execCalls)
	}
	if j2, ok := q.Get(j.ID); ok && j2.State == StateRunning {
		t.Fatalf("job left running after drain (drain result %+v)", res)
	}
}

// TestCancelRacingBatchWindowNeverOrphans hammers the same interleaving
// without forcing it: many rounds of batchable jobs with a tiny real
// batch window, each cancelled from a racing goroutine at a random
// point. Run under -race this doubles as a data-race probe. The
// invariant is the satellite's: after a full drain no job may be left
// in the running state — every one is terminal, or still queued and
// never started.
func TestCancelRacingBatchWindowNeverOrphans(t *testing.T) {
	const rounds = 30
	const jobsPerRound = 4
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < rounds; round++ {
		q, err := NewQueue(Options{})
		if err != nil {
			t.Fatal(err)
		}
		s := NewScheduler(q, SchedulerOptions{
			Workers:     2,
			BatchWindow: 200 * time.Microsecond,
			MaxBatch:    jobsPerRound,
			Exec: func(ctx context.Context, j Job) (json.RawMessage, *Failure) {
				select {
				case <-ctx.Done():
					return nil, &Failure{Code: "canceled", Message: "ctx cut", Status: 503}
				default:
					return j.Spec.Payload, nil
				}
			},
		})
		ids := make([]string, 0, jobsPerRound)
		for i := 0; i < jobsPerRound; i++ {
			j, err := q.Submit(Spec{Type: "mitigate", BatchKey: "k"})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, j.ID)
		}
		s.Start()
		var wg sync.WaitGroup
		for _, id := range ids {
			id := id
			delay := time.Duration(rng.Intn(500)) * time.Microsecond
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(delay)
				// ErrTerminal just means the batch beat us; fine.
				_, _ = q.Cancel(id)
			}()
		}
		wg.Wait()
		s.Drain(context.Background())
		for _, id := range ids {
			j, ok := q.Get(id)
			if !ok {
				t.Fatalf("round %d: job %s vanished", round, id)
			}
			switch j.State {
			case StateDone, StateCancelled, StateFailed:
				// Clean outcomes: ran to completion, cancelled before or
				// during the window, or cut mid-run.
			case StateQueued:
				// Never picked before drain stopped dispatch — but then
				// the cancel must have been requeue-raced, never lost
				// silently alongside a started run.
			default:
				t.Fatalf("round %d: job %s left in state %v after drain", round, id, j.State)
			}
			if j.State == StateRunning {
				t.Fatalf("round %d: job %s is a running orphan after drain", round, id)
			}
		}
	}
}

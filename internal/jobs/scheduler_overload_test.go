package jobs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"biasmit/internal/overload"
)

// TestWatchdogStallRequeuesJob: an executor that wedges (no progress, no
// return) is cancelled by the watchdog and its job requeued; the fresh
// attempt succeeds. The stall clock is injectable, so no real waiting.
func TestWatchdogStallRequeuesJob(t *testing.T) {
	clock := struct {
		mu sync.Mutex
		t  time.Time
	}{t: time.Unix(1700000000, 0)}
	now := func() time.Time {
		clock.mu.Lock()
		defer clock.mu.Unlock()
		return clock.t
	}
	advance := func(d time.Duration) {
		clock.mu.Lock()
		clock.t = clock.t.Add(d)
		clock.mu.Unlock()
	}

	w := overload.NewWatchdog(time.Second, 10*time.Second, t.Logf)
	w.SetNow(now)
	// No w.Start(): the test drives Sweep by hand against the fake clock.

	q, err := NewQueue(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	attempts := 0
	wedged := make(chan struct{})
	s := NewScheduler(q, SchedulerOptions{
		Workers:  1,
		Watchdog: w,
		Exec: func(ctx context.Context, j Job) (json.RawMessage, *Failure) {
			mu.Lock()
			attempts++
			first := attempts == 1
			mu.Unlock()
			if first {
				close(wedged)
				<-ctx.Done() // wedged until the watchdog cuts the context
				return nil, &Failure{Code: "canceled", Message: ctx.Err().Error(), Status: 503}
			}
			return j.Spec.Payload, nil
		},
	})
	j, _ := q.Submit(Spec{Type: "mitigate", Payload: json.RawMessage(`{"seed":1}`)})
	s.Start()
	defer s.Drain(context.Background())

	<-wedged
	waitState(t, q, j.ID, StateRunning)
	advance(11 * time.Second)
	w.Sweep()

	got := waitState(t, q, j.ID, StateDone)
	if got.Requeues != 1 || got.Attempts != 2 {
		t.Fatalf("job = requeues %d attempts %d, want 1 stall requeue then success", got.Requeues, got.Attempts)
	}
	st := q.Stats()
	if st.StallRequeues != 1 {
		t.Fatalf("stats = %+v, want 1 stall requeue", st)
	}
	if ws := w.Stats(); ws.Stalls != 1 {
		t.Fatalf("watchdog stats = %+v, want 1 stall", ws)
	}
}

// TestDeadlineExpiredJobShedsBeforeStart: a job whose propagated
// deadline passed while it sat queued fails typed, without the executor
// ever running.
func TestDeadlineExpiredJobShedsBeforeStart(t *testing.T) {
	q, err := NewQueue(Options{})
	if err != nil {
		t.Fatal(err)
	}
	execCalls := 0
	s := NewScheduler(q, SchedulerOptions{
		Workers: 1,
		Exec: func(ctx context.Context, j Job) (json.RawMessage, *Failure) {
			execCalls++
			return j.Spec.Payload, nil
		},
	})
	past := time.Now().Add(-time.Minute)
	j, _ := q.Submit(Spec{Type: "mitigate", Deadline: &past})
	s.Start()
	defer s.Drain(context.Background())

	got := waitState(t, q, j.ID, StateFailed)
	if got.Failure == nil || got.Failure.Code != "deadline_exceeded" || got.Failure.Status != 504 {
		t.Fatalf("failure = %+v, want typed deadline_exceeded/504", got.Failure)
	}
	if execCalls != 0 {
		t.Fatalf("executor ran %d times for an expired job, want 0", execCalls)
	}
	if st := q.Stats(); st.Expired != 1 {
		t.Fatalf("stats = %+v, want 1 expired", st)
	}
}

// TestDeadlineCapsExecutionContext: a live deadline reaches the
// executor's context so a started job cannot overrun its budget.
func TestDeadlineCapsExecutionContext(t *testing.T) {
	q, err := NewQueue(Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotDeadline := make(chan time.Time, 1)
	s := NewScheduler(q, SchedulerOptions{
		Workers: 1,
		Exec: func(ctx context.Context, j Job) (json.RawMessage, *Failure) {
			if d, ok := ctx.Deadline(); ok {
				gotDeadline <- d
			} else {
				gotDeadline <- time.Time{}
			}
			return j.Spec.Payload, nil
		},
	})
	want := time.Now().Add(time.Hour).Truncate(time.Millisecond)
	j, _ := q.Submit(Spec{Type: "mitigate", Deadline: &want})
	s.Start()
	defer s.Drain(context.Background())
	waitState(t, q, j.ID, StateDone)
	if d := <-gotDeadline; !d.Equal(want) {
		t.Fatalf("executor context deadline = %v, want %v", d, want)
	}
}

// TestOldestQueuedAge: the backlog-staleness gauge /healthz reports.
func TestOldestQueuedAge(t *testing.T) {
	base := time.Unix(1700000000, 0)
	cur := base
	q, err := NewQueue(Options{Now: func() time.Time { return cur }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit(Spec{Type: "mitigate"}); err != nil {
		t.Fatal(err)
	}
	cur = base.Add(3 * time.Second)
	if _, err := q.Submit(Spec{Type: "mitigate"}); err != nil {
		t.Fatal(err)
	}
	cur = base.Add(5 * time.Second)
	if st := q.Stats(); st.OldestQueued != 5*time.Second {
		t.Fatalf("oldest queued = %v, want 5s (the first job's age)", st.OldestQueued)
	}
}

package jobs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"biasmit/internal/persist"
)

// The durable side of the queue mirrors the profile store's journal
// (profilestore.DiskLog): every state transition appends one full job
// record to a checksummed WAL (persist.WAL, fsync-on-commit), and the
// WAL is periodically folded into an atomically written snapshot.
// Full-record entries make replay idempotent — last writer wins — which
// is what makes the snapshot/WAL overlap window harmless: a crash
// between "snapshot renamed" and "WAL reset" replays stale entries as
// no-ops (their sequence number is at or below the snapshot watermark).
//
// Layout under the jobs directory:
//
//	jobs.snapshot.json  snapshot envelope (atomic temp+rename writes)
//	jobs.wal            length-prefixed CRC32-framed records
//
// Replay tolerates a torn WAL tail exactly like the profile journal: a
// kill -9 mid-append loses at most the record being appended, never the
// log. A record that frames intact but does not decode is a schema
// problem and fails the open — silently dropping committed transitions
// would un-happen a job.

const (
	jobSnapshotFile = "jobs.snapshot.json"
	jobWALFile      = "jobs.wal"

	// jobSnapshotKind/Version guard the snapshot envelope the same way
	// persist.Envelope guards profile artifacts.
	jobSnapshotKind    = "biasmit/jobs-snapshot"
	jobSnapshotVersion = 1
)

// Record is the on-disk form of one job state transition: the full job
// at that moment plus the journal sequence number that orders it
// against snapshots.
type Record struct {
	Seq uint64 `json:"seq"`
	Job Job    `json:"job"`
}

// EncodeRecord serializes one WAL record payload. Exposed (with
// DecodeRecord) so tests and the fuzz target can exercise the codec
// byte-for-byte.
func EncodeRecord(rec Record) ([]byte, error) {
	if rec.Job.ID == "" {
		return nil, fmt.Errorf("jobs: refusing to encode record with empty job ID")
	}
	return json.Marshal(rec)
}

// DecodeRecord parses one WAL record payload, validating the fields
// recovery depends on.
func DecodeRecord(payload []byte) (Record, error) {
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, fmt.Errorf("jobs: decoding record: %w", err)
	}
	if rec.Job.ID == "" {
		return Record{}, fmt.Errorf("jobs: record has no job ID")
	}
	switch rec.Job.State {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
	default:
		return Record{}, fmt.Errorf("jobs: record %s has unknown state %q", rec.Job.ID, rec.Job.State)
	}
	return rec, nil
}

// jobSnapshot is the compacted image: every live record plus the
// sequence number of the last WAL entry it folds in.
type jobSnapshot struct {
	Kind    string   `json:"kind"`
	Version int      `json:"version"`
	LastSeq uint64   `json:"last_seq"`
	Jobs    []Record `json:"jobs"`
}

// LogRecovery describes what OpenLog reconstructed.
type LogRecovery struct {
	// SnapshotJobs is how many records the snapshot held.
	SnapshotJobs int
	// WALRecords is how many intact WAL entries were replayed;
	// WALSkipped counts those already folded into the snapshot.
	WALRecords int
	WALSkipped int
	// TailTruncated is true when the WAL ended in a torn record that was
	// dropped — the signature of a crash mid-append.
	TailTruncated bool
	// Jobs is the live record count after snapshot+WAL replay.
	Jobs int
}

// LogStats is a point-in-time snapshot of the log's counters, for
// /metrics.
type LogStats struct {
	Recovery        LogRecovery
	WALAppends      uint64
	WALAppendErrors uint64
	WALSizeBytes    int64
	Snapshots       uint64
	SnapshotErrors  uint64
	LiveRecords     int
}

// Log journals job transitions to a data directory. Construct with
// OpenLog; safe for concurrent use. A nil *Log is a valid no-op journal
// (the memory-only queue).
type Log struct {
	dir string

	mu       sync.Mutex
	wal      *persist.WAL
	seq      uint64
	state    map[string]Record
	recovery LogRecovery
	appends  uint64
	appendEs uint64
	snaps    uint64
	snapEs   uint64
	closed   bool
}

// OpenLog opens (creating if needed) the jobs directory and
// reconstructs the journaled state: snapshot first, then WAL replay.
func OpenLog(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating jobs dir %s: %w", dir, err)
	}
	l := &Log{dir: dir, state: make(map[string]Record)}

	snapPath := filepath.Join(dir, jobSnapshotFile)
	var lastSeq uint64
	if data, err := os.ReadFile(snapPath); err == nil {
		var snap jobSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("jobs: reading %s: %w", snapPath, err)
		}
		if snap.Kind != jobSnapshotKind {
			return nil, fmt.Errorf("jobs: %s holds %q, expected %q", snapPath, snap.Kind, jobSnapshotKind)
		}
		if snap.Version != jobSnapshotVersion {
			return nil, fmt.Errorf("jobs: %s version %d not supported (current %d)", snapPath, snap.Version, jobSnapshotVersion)
		}
		lastSeq = snap.LastSeq
		for _, rec := range snap.Jobs {
			l.state[rec.Job.ID] = rec
		}
		l.recovery.SnapshotJobs = len(snap.Jobs)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("jobs: opening %s: %w", snapPath, err)
	}
	l.seq = lastSeq

	wal, rep, err := persist.OpenWAL(filepath.Join(dir, jobWALFile), func(payload []byte) error {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return err
		}
		l.recovery.WALRecords++
		if rec.Seq > l.seq {
			l.seq = rec.Seq
		}
		if rec.Seq <= lastSeq {
			l.recovery.WALSkipped++
			return nil
		}
		l.state[rec.Job.ID] = rec
		return nil
	})
	if err != nil {
		return nil, err
	}
	l.wal = wal
	l.recovery.TailTruncated = rep.Truncated
	l.recovery.Jobs = len(l.state)
	return l, nil
}

// Recovery reports what the open reconstructed. Nil-safe.
func (l *Log) Recovery() LogRecovery {
	if l == nil {
		return LogRecovery{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recovery
}

// Recovered returns the journaled jobs in ID (= submission) order,
// ready for Queue recovery.
func (l *Log) Recovered() []Job {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]Job, 0, len(l.state))
	for _, rec := range l.state {
		out = append(out, rec.Job)
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Append journals one job transition: the full job as it now stands.
// Durable (written and fsynced) when it returns nil. Nil-safe no-op.
func (l *Log) Append(j *Job) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("jobs: journal is closed")
	}
	rec := Record{Seq: l.seq + 1, Job: j.clone()}
	payload, err := EncodeRecord(rec)
	if err != nil {
		l.appendEs++
		return err
	}
	if err := l.wal.Append(payload); err != nil {
		l.appendEs++
		return err
	}
	l.seq = rec.Seq
	l.appends++
	l.state[rec.Job.ID] = rec
	return nil
}

// Forget journals nothing but drops a job from the live state so the
// next compaction stops carrying it — used when the queue evicts an old
// terminal job from its retention window.
func (l *Log) Forget(id string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.state, id)
}

// Compact folds the journaled state into a fresh snapshot (written
// atomically) and empties the WAL. Crash-safe at every step, same
// argument as profilestore.DiskLog.Compact.
func (l *Log) Compact() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.compactLocked()
}

func (l *Log) compactLocked() error {
	if l.closed {
		return fmt.Errorf("jobs: journal is closed")
	}
	snap := jobSnapshot{Kind: jobSnapshotKind, Version: jobSnapshotVersion, LastSeq: l.seq,
		Jobs: make([]Record, 0, len(l.state))}
	ids := make([]string, 0, len(l.state))
	for id := range l.state {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		snap.Jobs = append(snap.Jobs, l.state[id])
	}
	// No indentation: an indented encoder re-formats embedded RawMessage
	// payloads/results, and job result bytes must survive snapshot
	// round-trips untouched.
	err := persist.WriteFileAtomic(filepath.Join(l.dir, jobSnapshotFile), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(snap)
	})
	if err != nil {
		l.snapEs++
		return err
	}
	if err := l.wal.Reset(); err != nil {
		l.snapEs++
		return err
	}
	l.snaps++
	return nil
}

// Stats snapshots the log's counters. Nil-safe.
func (l *Log) Stats() LogStats {
	if l == nil {
		return LogStats{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return LogStats{
		Recovery:        l.recovery,
		WALAppends:      l.appends,
		WALAppendErrors: l.appendEs,
		WALSizeBytes:    l.wal.Size(),
		Snapshots:       l.snaps,
		SnapshotErrors:  l.snapEs,
		LiveRecords:     len(l.state),
	}
}

// Close compacts once more (best effort — a failure leaves the WAL to
// replay on the next boot) and releases the log. Nil-safe.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	_ = l.compactLocked()
	l.closed = true
	return l.wal.Close()
}

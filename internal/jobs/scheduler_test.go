package jobs

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestCrashRecoveryRequeuesMidRunJobs is the exactly-once core: kill the
// process with one job mid-run and one queued, reopen the journal, and
// both must execute to done — the interrupted one re-queued (never lost,
// never doubled).
func TestCrashRecoveryRequeuesMidRunJobs(t *testing.T) {
	dir := t.TempDir()
	log1, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := NewQueue(Options{Log: log1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	s1 := NewScheduler(q1, SchedulerOptions{
		Workers: 1,
		Exec: func(ctx context.Context, j Job) (json.RawMessage, *Failure) {
			close(started)
			select {} // hang forever: the "process" dies mid-run
		},
	})
	running, _ := q1.Submit(Spec{Type: "mitigate", Payload: json.RawMessage(`{"seed":1}`)})
	queued, _ := q1.Submit(Spec{Type: "mitigate", Payload: json.RawMessage(`{"seed":2}`)})
	s1.Start()
	<-started
	waitState(t, q1, running.ID, StateRunning)
	// Crash: no drain, no close. The running transition is already
	// fsynced, so a fresh open of the same directory sees it.

	log2, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	q2, err := NewQueue(Options{Log: log2})
	if err != nil {
		t.Fatal(err)
	}
	st := q2.Stats()
	if st.RecoveredJobs != 2 || st.RecoveredRequeued != 1 {
		t.Fatalf("recovery stats = %+v, want 2 recovered / 1 requeued", st)
	}
	got, ok := q2.Get(running.ID)
	if !ok || got.State != StateQueued || got.Requeues != 1 || got.Attempts != 1 {
		t.Fatalf("interrupted job = %+v, want queued with requeues=1 attempts=1", got)
	}
	if got, _ := q2.Get(queued.ID); got.State != StateQueued || got.Requeues != 0 {
		t.Fatalf("queued job = %+v", got)
	}

	s2 := NewScheduler(q2, SchedulerOptions{
		Workers: 2,
		Exec: func(ctx context.Context, j Job) (json.RawMessage, *Failure) {
			return j.Spec.Payload, nil
		},
	})
	s2.Start()
	defer s2.Drain(context.Background())
	for _, id := range []string{running.ID, queued.ID} {
		j := waitState(t, q2, id, StateDone)
		if j.Result == nil {
			t.Fatalf("job %s has no result", id)
		}
	}
	if j, _ := q2.Get(running.ID); j.Attempts != 2 {
		t.Fatalf("interrupted job attempts = %d, want 2 (one lost run, one replay)", j.Attempts)
	}
}

// TestCrashRecoveryHonoursPendingCancel: a cancel accepted (journaled)
// just before the crash must end in cancelled after recovery, not rerun.
func TestCrashRecoveryHonoursPendingCancel(t *testing.T) {
	dir := t.TempDir()
	log1, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := NewQueue(Options{Log: log1})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	s1 := NewScheduler(q1, SchedulerOptions{
		Workers: 1,
		Exec: func(ctx context.Context, j Job) (json.RawMessage, *Failure) {
			close(started)
			select {}
		},
	})
	j, _ := q1.Submit(Spec{Type: "mitigate"})
	s1.Start()
	<-started
	if _, err := q1.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	// Crash before the executor winds down.

	log2, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	q2, err := NewQueue(Options{Log: log2})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := q2.Get(j.ID)
	if !ok || got.State != StateCancelled {
		t.Fatalf("job after recovery = %+v, want cancelled", got)
	}
	ch, _ := q2.Await(j.ID)
	select {
	case <-ch:
	default:
		t.Fatal("terminal job's done channel not closed after recovery")
	}
}

// TestDrainDeadlineCheckpointsAndRequeues is the graceful-drain
// regression test: on a drain whose deadline has passed (injectable —
// the test controls the drain context and the scheduler clock), running
// jobs are cancelled and journaled back to queued, queued jobs are
// checkpointed, and a restart re-executes everything exactly once.
func TestDrainDeadlineCheckpointsAndRequeues(t *testing.T) {
	dir := t.TempDir()
	log1, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	q1, err := NewQueue(Options{Log: log1})
	if err != nil {
		t.Fatal(err)
	}
	fixed := time.Unix(1700000000, 0).UTC()
	started := make(chan struct{}, 2)
	s1 := NewScheduler(q1, SchedulerOptions{
		Workers: 2,
		Now:     func() time.Time { return fixed },
		After: func(d time.Duration) <-chan time.Time {
			// The drain path must not depend on wall-clock timers at all; a
			// never-firing clock proves it.
			return make(chan time.Time)
		},
		Exec: func(ctx context.Context, j Job) (json.RawMessage, *Failure) {
			started <- struct{}{}
			<-ctx.Done() // only the drain's cancellation ends the run
			return nil, &Failure{Code: "canceled", Message: ctx.Err().Error()}
		},
	})
	s1.Start()
	a, _ := q1.Submit(Spec{Type: "mitigate"})
	b, _ := q1.Submit(Spec{Type: "mitigate"})
	<-started
	<-started
	c, _ := q1.Submit(Spec{Type: "mitigate"}) // both workers busy: stays queued

	drainCtx, cancel := context.WithCancel(context.Background())
	cancel() // deadline already passed
	res := s1.Drain(drainCtx)
	if res.Requeued != 2 || res.Finished != 0 {
		t.Fatalf("drain = %+v, want 2 requeued / 0 finished", res)
	}
	st := q1.Stats()
	if st.DrainRequeues != 2 || st.Queued != 3 || st.Running != 0 {
		t.Fatalf("post-drain stats = %+v", st)
	}
	for _, id := range []string{a.ID, b.ID} {
		if j, _ := q1.Get(id); j.State != StateQueued || j.Requeues != 1 {
			t.Fatalf("job %s = %+v, want queued with requeues=1", id, j)
		}
	}
	if j, _ := q1.Get(c.ID); j.State != StateQueued || j.Requeues != 0 {
		t.Fatalf("job %s = %+v", c.ID, j)
	}
	// Drain checkpointed: the snapshot alone must carry all three.
	if ls := log1.Stats(); ls.Snapshots == 0 {
		t.Fatalf("log stats = %+v, drain did not checkpoint", ls)
	}
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: all three run to done exactly once.
	log2, err := OpenLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	q2, err := NewQueue(Options{Log: log2})
	if err != nil {
		t.Fatal(err)
	}
	if st := q2.Stats(); st.RecoveredJobs != 3 || st.RecoveredRequeued != 0 {
		t.Fatalf("recovery stats = %+v, want 3 recovered / 0 requeued (drain journaled them queued)", st)
	}
	s2 := NewScheduler(q2, SchedulerOptions{
		Workers: 2,
		Exec: func(ctx context.Context, j Job) (json.RawMessage, *Failure) {
			return json.RawMessage(`{}`), nil
		},
	})
	s2.Start()
	for _, id := range []string{a.ID, b.ID, c.ID} {
		waitState(t, q2, id, StateDone)
	}
	if res := s2.Drain(context.Background()); res.Requeued != 0 {
		t.Fatalf("clean drain = %+v", res)
	}
}

// TestDrainGracefulFinish: with no deadline pressure, running jobs
// finish normally and nothing is requeued.
func TestDrainGracefulFinish(t *testing.T) {
	q, _ := NewQueue(Options{})
	started := make(chan struct{}, 2)
	s := NewScheduler(q, SchedulerOptions{
		Workers: 2,
		Exec: func(ctx context.Context, j Job) (json.RawMessage, *Failure) {
			started <- struct{}{}
			time.Sleep(5 * time.Millisecond)
			return json.RawMessage(`{}`), nil
		},
	})
	s.Start()
	a, _ := q.Submit(Spec{Type: "mitigate"})
	b, _ := q.Submit(Spec{Type: "mitigate"})
	<-started
	<-started
	res := s.Drain(context.Background())
	if res.Requeued != 0 {
		t.Fatalf("drain = %+v, want nothing requeued", res)
	}
	for _, id := range []string{a.ID, b.ID} {
		if j, _ := q.Get(id); j.State != StateDone {
			t.Fatalf("job %s = %s after graceful drain, want done", id, j.State)
		}
	}
}

package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"biasmit/internal/orchestrate"
	"biasmit/internal/overload"
)

// ExecFunc executes one job and returns its result or failure. It must
// honour ctx (cancellation, drain) and be deterministic for a given
// spec — crash recovery re-runs interrupted jobs and promises the same
// bytes. The job argument is a snapshot; mutating it has no effect.
type ExecFunc func(ctx context.Context, job Job) (json.RawMessage, *Failure)

// PrepareFunc runs once per micro-batch before its members execute —
// the shared-setup hook (one profile fetch serving the whole batch).
// Failures are the members' problem to re-discover individually, so
// Prepare returns nothing.
type PrepareFunc func(ctx context.Context, batchKey string, size int)

// SchedulerOptions tunes a Scheduler.
type SchedulerOptions struct {
	// Exec executes jobs (required).
	Exec ExecFunc
	// Prepare, when set, runs once per batch with a BatchKey.
	Prepare PrepareFunc
	// Workers bounds concurrently executing batches (default 2).
	Workers int
	// BatchWindow is how long a dispatched batchable job waits for
	// compatible jobs to coalesce before executing (0 = no waiting).
	BatchWindow time.Duration
	// MaxBatch bounds a micro-batch (default 8).
	MaxBatch int
	// Weights are the per-tenant fairness weights (default 1 each).
	Weights map[string]int
	// Watchdog, when set, heartbeats the dispatcher loop and every
	// executing batch. A batch whose executor stops making progress
	// (no heartbeat for the watchdog's stall threshold) gets a goroutine
	// dump logged, its member contexts cancelled, and its jobs requeued
	// — the self-healing path for runs wedged on a gray backend. Nil
	// disables watching.
	Watchdog *overload.Watchdog
	// Now and After override the clock, for tests.
	Now   func() time.Time
	After func(d time.Duration) <-chan time.Time
}

func (o SchedulerOptions) withDefaults() SchedulerOptions {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.After == nil {
		o.After = time.After
	}
	return o
}

// DrainResult reports what a drain accomplished.
type DrainResult struct {
	// Finished is how many running jobs reached a terminal state during
	// the drain; Requeued how many were checkpointed back to queued for
	// the next boot.
	Finished int
	Requeued int
}

// Scheduler drains a Queue into a bounded worker set. Construct with
// NewScheduler, call Start once, and Drain on shutdown.
type Scheduler struct {
	q    *Queue
	opts SchedulerOptions

	dispatchCtx  context.Context
	stopDispatch context.CancelFunc
	pool         *orchestrate.Pool
	slots        chan struct{}  // worker backpressure: dispatch picks only when a worker is free
	wg           sync.WaitGroup // in-flight batches
	dispatcherWG sync.WaitGroup

	mu       sync.Mutex
	draining bool
	started  bool
}

// NewScheduler wires a scheduler to a queue.
func NewScheduler(q *Queue, opts SchedulerOptions) *Scheduler {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Scheduler{
		q:            q,
		opts:         opts,
		dispatchCtx:  ctx,
		stopDispatch: cancel,
		// The pool's own context is never cancelled while batches are in
		// flight — drain cancels per-job contexts instead — so every
		// submitted batch is guaranteed to run and settle its jobs.
		pool:  orchestrate.NewPool(context.Background(), opts.Workers),
		slots: make(chan struct{}, opts.Workers),
	}
}

// Start launches the dispatcher. Idempotent.
func (s *Scheduler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	s.dispatcherWG.Add(1)
	go func() {
		defer s.dispatcherWG.Done()
		s.dispatch()
	}()
}

func (s *Scheduler) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// dispatch is the scheduler loop: pick the next batch under the
// fairness policy, optionally hold it open for the batching window,
// then hand it to the pool.
func (s *Scheduler) dispatch() {
	// The dispatcher heartbeats the watchdog every iteration and marks
	// itself idle before blocking on an empty queue; a wedged dispatch
	// loop (not an empty one) is what trips the stall detector.
	task := s.opts.Watchdog.Register("jobs-dispatcher", s.stopDispatch)
	defer task.Done()
	for {
		task.Beat()
		// Hold a worker slot before picking: scheduling decisions (WRR
		// slot, priority, batch coalescing) are made against the live
		// queue as workers free up, and batches execute in pick order —
		// the pool's semaphore never has to arbitrate.
		task.Idle()
		select {
		case <-s.dispatchCtx.Done():
			return
		case s.slots <- struct{}{}:
		}
		task.Beat()
		batch, wait := s.nextBatch()
		if batch == nil {
			<-s.slots
			var timer <-chan time.Time
			if wait > 0 {
				timer = s.opts.After(wait)
			}
			task.Idle()
			select {
			case <-s.dispatchCtx.Done():
				return
			case <-s.q.notifyCh:
			case <-timer:
			}
			continue
		}
		if batch[0].Spec.BatchKey != "" && s.opts.BatchWindow > 0 && len(batch) < s.opts.MaxBatch {
			// Hold the batch open: compatible jobs arriving within the
			// window ride along and share the batch's setup.
			task.Idle()
			select {
			case <-s.dispatchCtx.Done():
				s.releaseReserved(batch)
				return
			case <-s.opts.After(s.opts.BatchWindow):
			}
			task.Beat()
			batch = append(batch, s.gather(batch[0].Spec.BatchKey, s.opts.MaxBatch-len(batch))...)
		}
		s.wg.Add(1)
		b := batch
		s.pool.Go(func(context.Context) error {
			defer func() { <-s.slots }()
			defer s.wg.Done()
			s.runBatch(b)
			return nil
		})
	}
}

// weight resolves a tenant's fairness weight.
func (s *Scheduler) weight(tenant string) int {
	if w, ok := s.opts.Weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// nextBatch picks the next job under smooth weighted round-robin across
// tenants (priority then FIFO within a tenant) and immediately gathers
// already-pending compatible jobs. Returns (nil, wait) when nothing is
// dispatchable: wait > 0 means a retry-delayed job becomes ready then.
func (s *Scheduler) nextBatch() ([]*Job, time.Duration) {
	q := s.q
	q.mu.Lock()
	defer q.mu.Unlock()
	now := s.opts.Now()

	// Tenants with at least one dispatchable job, in stable order so the
	// WRR sequence is deterministic.
	var tenants []string
	var soonest time.Duration
	for tenant, list := range q.pending {
		ready := false
		for _, j := range list {
			if j.notBefore.IsZero() || !j.notBefore.After(now) {
				ready = true
				break
			}
			if d := j.notBefore.Sub(now); soonest == 0 || d < soonest {
				soonest = d
			}
		}
		if ready {
			tenants = append(tenants, tenant)
		}
	}
	if len(tenants) == 0 {
		return nil, soonest
	}
	sort.Strings(tenants)

	// Smooth WRR: every dispatchable tenant earns its weight, the
	// highest credit wins the slot and pays back the round's total.
	total := 0
	for _, t := range tenants {
		q.credits[t] += s.weight(t)
		total += s.weight(t)
	}
	pick := tenants[0]
	for _, t := range tenants[1:] {
		if q.credits[t] > q.credits[pick] {
			pick = t
		}
	}
	q.credits[pick] -= total

	// Within the tenant: highest priority class first, then FIFO.
	var lead *Job
	for _, j := range q.pending[pick] {
		if !j.notBefore.IsZero() && j.notBefore.After(now) {
			continue
		}
		if lead == nil || j.Spec.Priority > lead.Spec.Priority {
			lead = j
		}
	}
	q.removePendingLocked(lead)
	lead.reserved = true
	lead.reservedAt = now
	batch := []*Job{lead}
	if lead.Spec.BatchKey != "" {
		batch = append(batch, s.gatherLocked(lead.Spec.BatchKey, s.opts.MaxBatch-1, now)...)
	}
	return batch, 0
}

// gather pulls pending jobs compatible with key (any tenant — riding an
// existing batch is free amortization, not a fairness slot).
func (s *Scheduler) gather(key string, max int) []*Job {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	return s.gatherLocked(key, max, s.opts.Now())
}

func (s *Scheduler) gatherLocked(key string, max int, now time.Time) []*Job {
	q := s.q
	if max <= 0 {
		return nil
	}
	var all []*Job
	for _, list := range q.pending {
		for _, j := range list {
			if j.Spec.BatchKey == key && (j.notBefore.IsZero() || !j.notBefore.After(now)) {
				all = append(all, j)
			}
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].seq < all[b].seq })
	if len(all) > max {
		all = all[:max]
	}
	for _, j := range all {
		q.removePendingLocked(j)
		j.reserved = true
		j.reservedAt = now
	}
	return all
}

// releaseReserved puts a dispatched-but-never-started batch back in the
// queue (dispatcher shutdown won the race).
func (s *Scheduler) releaseReserved(batch []*Job) {
	s.q.mu.Lock()
	defer s.q.mu.Unlock()
	for _, j := range batch {
		if j.State == StateQueued && j.reserved {
			j.reserved = false
			q := s.q
			q.pending[j.Spec.Tenant] = append(q.pending[j.Spec.Tenant], j)
			list := q.pending[j.Spec.Tenant]
			sort.Slice(list, func(a, b int) bool { return list[a].seq < list[b].seq })
		}
	}
}

// runBatch executes one micro-batch: start every member (skipping ones
// cancelled while reserved, requeueing all of them if a drain began),
// run the shared prepare hook once, then execute members in order.
func (s *Scheduler) runBatch(batch []*Job) {
	type member struct {
		j   *Job
		ctx context.Context
	}
	q := s.q
	var members []member
	var cancels []context.CancelFunc
	draining := s.isDraining()
	q.mu.Lock()
	now := s.opts.Now()
	size := 0
	for _, j := range batch {
		switch {
		case j.CancelRequested:
			q.terminalLocked(j, StateCancelled, nil, nil)
		case draining:
			// Drain began before this batch got a worker: checkpoint the
			// members straight back to queued for the next boot.
			q.drainReqs++
			q.requeueLocked(j, 0)
		case j.Spec.Deadline != nil && now.After(*j.Spec.Deadline):
			// The propagated deadline expired while the job sat queued:
			// whoever asked has given up, so running it now is pure
			// waste. Shed it as the typed failure the sync path returns.
			q.expired++
			q.terminalLocked(j, StateFailed, nil, &Failure{
				Code:    "deadline_exceeded",
				Message: "job deadline expired before execution started",
				Status:  504,
			})
		default:
			size++
		}
	}
	for _, j := range batch {
		if j.State != StateQueued || !j.reserved {
			continue
		}
		j.State = StateRunning
		j.StartedAt = now
		j.Attempts++
		j.BatchSize = size
		j.reserved = false
		if !j.reservedAt.IsZero() {
			// The reserved→running gap is the micro-batch window wait;
			// the executor reports it as the batch_wait trace span.
			j.batchWait = now.Sub(j.reservedAt)
			j.reservedAt = time.Time{}
		}
		ctx, cancel := context.WithCancel(context.Background())
		if j.Spec.Deadline != nil {
			// The execution budget is the remaining propagated deadline.
			ctx, cancel = context.WithDeadline(context.Background(), *j.Spec.Deadline)
		}
		j.cancel = cancel
		cancels = append(cancels, cancel)
		q.transitions[StateRunning]++
		q.journalLocked(j)
		members = append(members, member{j: j, ctx: ctx})
	}
	if len(members) > 0 {
		q.batches++
		q.batchedJobs += uint64(len(members))
		if len(members) > q.maxBatch {
			q.maxBatch = len(members)
		}
	}
	q.mu.Unlock()
	if len(members) == 0 {
		return
	}
	defer func() {
		// Release the deadline timers (terminalLocked/requeueLocked only
		// drop the reference).
		for _, c := range cancels {
			c()
		}
	}()

	// The batch heartbeats between members; an executor that stops
	// making progress trips the watchdog, which dumps goroutines, marks
	// the still-running members stalled, and cancels their contexts so
	// settle() requeues them instead of failing them.
	wtask := s.opts.Watchdog.Register(fmt.Sprintf("jobs-batch %s", members[0].j.ID), func() {
		q.mu.Lock()
		var cut []context.CancelFunc
		for _, m := range members {
			if m.j.State == StateRunning {
				m.j.stalled = true
				if m.j.cancel != nil {
					cut = append(cut, m.j.cancel)
				}
			}
		}
		q.mu.Unlock()
		for _, c := range cut {
			c()
		}
	})
	defer wtask.Done()

	if s.opts.Prepare != nil && members[0].j.Spec.BatchKey != "" {
		s.opts.Prepare(members[0].ctx, members[0].j.Spec.BatchKey, len(members))
	}
	for _, m := range members {
		wtask.Beat()
		result, fail := s.opts.Exec(m.ctx, m.j.clone())
		s.settle(m.j, result, fail)
	}
}

// settle routes an execution outcome into the job's next state:
// done, cancelled (user asked), requeued (drain interrupted it, or the
// failure is retryable with attempts left), or failed.
func (s *Scheduler) settle(j *Job, result json.RawMessage, fail *Failure) {
	draining := s.isDraining()
	q := s.q
	q.mu.Lock()
	defer q.mu.Unlock()
	switch {
	case fail == nil:
		q.terminalLocked(j, StateDone, result, nil)
	case j.CancelRequested:
		q.terminalLocked(j, StateCancelled, nil, nil)
	case j.stalled:
		// The watchdog cancelled a wedged run: the job did nothing
		// wrong, so it goes back to the queue for a fresh attempt (the
		// deterministic executor makes the re-run byte-identical).
		q.stallReqs++
		q.requeueLocked(j, 0)
	case draining:
		// The drain deadline cancelled the run; the work is not failed,
		// just unfinished — back to queued, checkpointed for next boot.
		q.drainReqs++
		q.requeueLocked(j, 0)
	case fail.Retryable && j.Attempts < j.Spec.MaxAttempts:
		q.retries++
		q.requeueLocked(j, time.Duration(fail.RetryAfterMS)*time.Millisecond)
	default:
		q.terminalLocked(j, StateFailed, nil, fail)
	}
}

// Drain shuts the scheduler down gracefully: stop dispatching, give
// running jobs until ctx ends to finish, then cancel the stragglers and
// requeue them (journaled) so the next boot re-executes them, and fold
// the journal into a fresh snapshot. Safe to call once.
func (s *Scheduler) Drain(ctx context.Context) DrainResult {
	before := s.q.Stats()
	s.stopDispatch()
	s.dispatcherWG.Wait()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: flag the drain (settle() now requeues instead of
		// failing), cut every running job's context, and wait for the
		// executors to unwind — they honour ctx, so this is prompt.
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		s.q.mu.Lock()
		for _, j := range s.q.jobs {
			if j.State == StateRunning && j.cancel != nil {
				j.cancel()
			}
		}
		s.q.mu.Unlock()
		<-done
	}
	_ = s.pool.Wait()
	_ = s.q.Checkpoint()

	after := s.q.Stats()
	fin := (after.Transitions[StateDone] + after.Transitions[StateFailed] + after.Transitions[StateCancelled]) -
		(before.Transitions[StateDone] + before.Transitions[StateFailed] + before.Transitions[StateCancelled])
	return DrainResult{
		Finished: int(fin),
		Requeued: int(after.DrainRequeues - before.DrainRequeues),
	}
}

package kernels

import (
	"math"
	"testing"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/maxcut"
	"biasmit/internal/metrics"
)

func bs(s string) bitstring.Bits { return bitstring.MustParse(s) }

func TestGHZIdealDistribution(t *testing.T) {
	for _, n := range []int{2, 5, 10} {
		d := backend.RunIdeal(GHZ(n))
		if p := d.Prob(bitstring.Zeros(n)); math.Abs(p-0.5) > 1e-9 {
			t.Errorf("ghz-%d P(0…0) = %v", n, p)
		}
		if p := d.Prob(bitstring.Ones(n)); math.Abs(p-0.5) > 1e-9 {
			t.Errorf("ghz-%d P(1…1) = %v", n, p)
		}
		if len(d.Outcomes()) != 2 {
			t.Errorf("ghz-%d has %d outcomes", n, len(d.Outcomes()))
		}
	}
}

func TestBasisPrep(t *testing.T) {
	b := bs("01101")
	d := backend.RunIdeal(BasisPrep(b))
	if p := d.Prob(b); math.Abs(p-1) > 1e-9 {
		t.Errorf("P(%v) = %v", b, p)
	}
}

func TestUniformSuperposition(t *testing.T) {
	n := 4
	d := backend.RunIdeal(UniformSuperposition(n))
	want := 1.0 / 16
	for _, b := range bitstring.All(n) {
		if math.Abs(d.Prob(b)-want) > 1e-9 {
			t.Errorf("P(%v) = %v", b, d.Prob(b))
		}
	}
}

func TestBVProducesKeyDeterministically(t *testing.T) {
	// On an ideal machine BV outputs the secret key with probability 1
	// (paper §4.1).
	for _, key := range []string{"01", "11", "0111", "1111", "011111"} {
		b := BV("bv", bs(key))
		if b.Width() != len(key)+1 {
			t.Errorf("bv(%s) width = %d", key, b.Width())
		}
		d := backend.RunIdeal(b.Circuit)
		want := b.Correct[0]
		if p := d.Prob(want); math.Abs(p-1) > 1e-9 {
			t.Errorf("bv(%s): P(%v) = %v, dist %v", key, want, p, d.P)
		}
		// Expected output is key + ancilla 1.
		if want.Slice(0, len(key)) != bs(key) {
			t.Errorf("bv(%s) key part = %v", key, want)
		}
		if !want.Bit(len(key)) {
			t.Errorf("bv(%s) ancilla bit not 1", key)
		}
	}
}

func TestBVWithTargetSweepsAllStates(t *testing.T) {
	// Fig 13 sweeps all 32 5-bit outputs: every target must be produced
	// with certainty on an ideal machine.
	for _, target := range bitstring.All(5) {
		b := BVWithTarget("bv-sweep", target)
		d := backend.RunIdeal(b.Circuit)
		if p := d.Prob(target); math.Abs(p-1) > 1e-9 {
			t.Fatalf("target %v: P = %v", target, p)
		}
	}
}

func TestQAOACircuitStructure(t *testing.T) {
	pg, err := maxcut.Table3Graph("qaoa-4A")
	if err != nil {
		t.Fatal(err)
	}
	angles := QAOAAngles{Gammas: []float64{0.4}, Betas: []float64{0.3}}
	c := QAOACircuit(pg.Graph, angles)
	oneQ, twoQ, _ := c.GateCounts()
	// Per edge: 2 CNOTs; per level: n mixers; plus n initial H and the RZs.
	wantTwoQ := 2 * len(pg.Graph.Edges)
	if twoQ != wantTwoQ {
		t.Errorf("two-qubit gates = %d, want %d", twoQ, wantTwoQ)
	}
	wantOneQ := pg.Graph.N + len(pg.Graph.Edges) + pg.Graph.N // H + RZ + RX
	if oneQ != wantOneQ {
		t.Errorf("one-qubit gates = %d, want %d", oneQ, wantOneQ)
	}
}

func TestOptimizedQAOAConcentratesOnOptimum(t *testing.T) {
	// After angle optimization the ideal distribution must put the most
	// mass on the optimal cut — the paper's premise that on an ideal
	// machine the correct QAOA output has the highest frequency.
	for _, name := range []string{"qaoa-4A", "qaoa-4B"} {
		pg, err := maxcut.Table3Graph(name)
		if err != nil {
			t.Fatal(err)
		}
		p := 1
		if name == "qaoa-4B" {
			p = 2
		}
		b := QAOA(name, pg, p)
		ideal := backend.RunIdeal(b.Circuit)
		pst := metrics.PSTEquiv(ideal, b.Correct...)
		if pst < 0.4 {
			t.Errorf("%s ideal PST = %v, want concentrated mass", name, pst)
		}
		if rank := metrics.ROCA(ideal, b.Correct...); rank != 1 {
			t.Errorf("%s ideal ROCA = %d", name, rank)
		}
	}
}

func TestQAOACorrectSetIsCutAndComplement(t *testing.T) {
	pg, err := maxcut.Table3Graph("qaoa-6")
	if err != nil {
		t.Fatal(err)
	}
	b := QAOA("qaoa-6", pg, 1)
	if len(b.Correct) != 2 {
		t.Fatalf("correct set = %v", b.Correct)
	}
	if b.Correct[0] != pg.Optimal || b.Correct[1] != pg.Optimal.Invert() {
		t.Errorf("correct set = %v", b.Correct)
	}
}

func TestTable3Suite(t *testing.T) {
	suite := Table3Suite()
	if len(suite) != 8 {
		t.Fatalf("suite has %d benchmarks", len(suite))
	}
	wantWidths := map[string]int{
		"bv-4A": 5, "bv-4B": 5, "bv-6": 7, "bv-7": 8,
		"qaoa-4A": 4, "qaoa-4B": 4, "qaoa-6": 6, "qaoa-7": 7,
	}
	for _, b := range suite {
		if w, ok := wantWidths[b.Name]; !ok || b.Width() != w {
			t.Errorf("%s width = %d, want %d", b.Name, b.Width(), w)
		}
		// Every benchmark's correct answers must dominate on an ideal
		// machine.
		ideal := backend.RunIdeal(b.Circuit)
		if rank := metrics.ROCA(ideal, b.Correct...); rank != 1 {
			t.Errorf("%s ideal ROCA = %d", b.Name, rank)
		}
	}
}

func TestBVGateCountScalesLinearly(t *testing.T) {
	// Paper §4.1: BV gate count scales linearly with problem size.
	count := func(n int) int {
		key := bitstring.Ones(n)
		_, _, total := BV("bv", key).Circuit.GateCounts()
		return total
	}
	c4, c8 := count(4), count(8)
	if c8 >= 3*c4 {
		t.Errorf("gate count growth looks superlinear: %d → %d", c4, c8)
	}
}

func TestGroverFindsMarkedState(t *testing.T) {
	// Width 2, one iteration: certainty on an ideal machine.
	for _, marked := range []string{"00", "01", "10", "11"} {
		b := Grover("grover-2", bs(marked), 1)
		d := backend.RunIdeal(b.Circuit)
		if p := d.Prob(bs(marked)); math.Abs(p-1) > 1e-9 {
			t.Errorf("grover-2 marked %s: P = %v", marked, p)
		}
	}
	// Width 3: one iteration gives exactly 25/32, two give ≈ 0.9453.
	for _, marked := range []string{"000", "101", "111"} {
		b1 := Grover("grover-3", bs(marked), 1)
		if p := backend.RunIdeal(b1.Circuit).Prob(bs(marked)); math.Abs(p-0.78125) > 1e-9 {
			t.Errorf("grover-3 marked %s, 1 iter: P = %v, want 25/32", marked, p)
		}
		b2 := Grover("grover-3", bs(marked), 2)
		if p := backend.RunIdeal(b2.Circuit).Prob(bs(marked)); math.Abs(p-0.9453125) > 1e-9 {
			t.Errorf("grover-3 marked %s, 2 iters: P = %v", marked, p)
		}
	}
}

func TestGroverValidation(t *testing.T) {
	for _, f := range []func(){
		func() { Grover("g", bs("1"), 1) },
		func() { Grover("g", bs("1111"), 1) },
		func() { Grover("g", bs("11"), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Package kernels generates the NISQ programs the paper evaluates:
// Bernstein-Vazirani (BV), QAOA max-cut, GHZ state preparation, basis
// state preparation, and uniform superposition (the last two drive the
// characterization experiments of §3 and Appendix A).
//
// A Benchmark couples a logical circuit with its set of correct outputs
// so the metrics package can score any execution of it.
package kernels

import (
	"fmt"
	"math"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/maxcut"
)

// Benchmark is a logical NISQ program plus its ground truth.
type Benchmark struct {
	Name    string
	Circuit *circuit.Circuit
	// Correct lists every output string counted as a success. BV has
	// one; QAOA has the optimal partition and its complement.
	Correct []bitstring.Bits
}

// Width returns the logical output width.
func (b Benchmark) Width() int { return b.Circuit.NumQubits }

// GHZ returns the n-qubit Greenberger-Horne-Zeilinger preparation
// (H then a CNOT chain), the maximally entangled probe of §3.2.
func GHZ(n int) *circuit.Circuit {
	c := circuit.New(n, fmt.Sprintf("ghz-%d", n)).H(0)
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
	}
	return c
}

// BasisPrep returns a circuit preparing the classical state b, used by
// the brute-force RBMS characterization (§3.1).
func BasisPrep(b bitstring.Bits) *circuit.Circuit {
	return circuit.New(b.Width(), "prep-"+b.String()).PrepareBasis(b)
}

// UniformSuperposition returns H on every qubit — the ESCT preparation of
// Appendix A that probes all 2^n basis states in one circuit.
func UniformSuperposition(n int) *circuit.Circuit {
	c := circuit.New(n, fmt.Sprintf("uniform-%d", n))
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}

// BV returns the Bernstein-Vazirani benchmark for the given secret key.
// The circuit uses len(key)+1 qubits, with the ancilla on the highest
// index; on an ideal machine the measured output is the key with the
// ancilla reading 1, matching the paper's "4-bit secret key and 1-bit
// ancillary qubit" 5-bit outputs.
func BV(name string, key bitstring.Bits) Benchmark {
	target := key.Concat(bitstring.Ones(1))
	return BVWithTarget(name, target)
}

// BVWithTarget builds a BV instance whose full expected output —
// including the ancilla bit (highest index) — equals target. A target
// ancilla of 0 appends a final X on the ancilla. This lets experiments
// like Fig 13 sweep every basis state of the output register.
func BVWithTarget(name string, target bitstring.Bits) Benchmark {
	n := target.Width() - 1
	if n < 1 {
		panic("kernels: BV target must include at least one key bit plus the ancilla")
	}
	key := target.Slice(0, n)
	anc := n
	c := circuit.New(n+1, name)
	// Ancilla into |−⟩.
	c.X(anc)
	c.H(anc)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	// Oracle: phase kickback through CNOTs on key bits.
	for q := 0; q < n; q++ {
		if key.Bit(q) {
			c.CX(q, anc)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	// Return the ancilla to a classical state: H|−⟩ = |1⟩.
	c.H(anc)
	if !target.Bit(n) {
		c.X(anc)
	}
	return Benchmark{Name: name, Circuit: c, Correct: []bitstring.Bits{target}}
}

// Grover returns Grover's search over width-2 or width-3 registers for
// the given marked state: uniform superposition, then `iterations`
// rounds of phase oracle plus diffusion. One iteration suffices for
// certainty at width 2 and ≈94.5% at width 3 on an ideal machine. It is
// an additional library workload (not from the paper's suite) whose
// single high-probability output makes it a natural Invert-and-Measure
// client.
func Grover(name string, marked bitstring.Bits, iterations int) Benchmark {
	n := marked.Width()
	if n < 2 || n > 3 {
		panic(fmt.Sprintf("kernels: Grover supports 2 or 3 qubits, got %d", n))
	}
	if iterations < 1 {
		panic("kernels: Grover needs at least one iteration")
	}
	c := circuit.New(n, name)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	multiCZ := func() {
		if n == 2 {
			c.CZGate(0, 1)
		} else {
			c.CCZ(0, 1, 2)
		}
	}
	for it := 0; it < iterations; it++ {
		// Oracle: phase-flip the marked state (X-conjugated multi-CZ).
		for q := 0; q < n; q++ {
			if !marked.Bit(q) {
				c.X(q)
			}
		}
		multiCZ()
		for q := 0; q < n; q++ {
			if !marked.Bit(q) {
				c.X(q)
			}
		}
		// Diffusion: inversion about the mean.
		for q := 0; q < n; q++ {
			c.H(q)
			c.X(q)
		}
		multiCZ()
		for q := 0; q < n; q++ {
			c.X(q)
			c.H(q)
		}
	}
	return Benchmark{Name: name, Circuit: c, Correct: []bitstring.Bits{marked}}
}

// QAOAAngles are the variational parameters of one QAOA instance.
type QAOAAngles struct {
	Gammas []float64 // cost-layer angles, one per level
	Betas  []float64 // mixer-layer angles, one per level
}

// P returns the number of QAOA levels.
func (a QAOAAngles) P() int { return len(a.Gammas) }

// QAOACircuit builds the QAOA max-cut circuit for graph g with the given
// angles: H on all vertices, then per level a ZZ(2γ) on every edge
// followed by RX(2β) mixers.
func QAOACircuit(g maxcut.Graph, angles QAOAAngles) *circuit.Circuit {
	if len(angles.Gammas) != len(angles.Betas) {
		panic("kernels: gamma/beta length mismatch")
	}
	c := circuit.New(g.N, "qaoa-"+g.Name)
	for q := 0; q < g.N; q++ {
		c.H(q)
	}
	for level := range angles.Gammas {
		for _, e := range g.Edges {
			c.ZZ(2*angles.Gammas[level]*e.Weight, e.A, e.B)
		}
		for q := 0; q < g.N; q++ {
			c.RX(2*angles.Betas[level], q)
		}
	}
	return c
}

// OptimizeQAOAAngles finds angles maximizing the expected cut value of
// the ideal-machine output — the standard QAOA objective — by
// deterministic coordinate descent on a grid. This plays the role of
// QAOA's classical outer loop; the paper fixes one tuned program per
// graph and compares policies on it, which is exactly what a
// deterministic optimizer gives. Maximizing ⟨C⟩ (rather than the
// probability of the optimum) leaves the realistic, diffuse output
// distributions on which measurement bias can mask the answer (§3.3).
func OptimizeQAOAAngles(g maxcut.Graph, p int) QAOAAngles {
	angles := QAOAAngles{Gammas: make([]float64, p), Betas: make([]float64, p)}
	for i := 0; i < p; i++ {
		angles.Gammas[i] = 0.4
		angles.Betas[i] = 0.3
	}
	// Deterministic fold order matters here: the grid search compares
	// scores of near-tied candidates, so a map-order float sum would pick
	// different angles — and hence build a different circuit — from one
	// run to the next.
	score := func(a QAOAAngles) float64 {
		return backend.RunIdeal(QAOACircuit(g, a)).Expectation(g.CutValue)
	}
	best := score(angles)
	const gridSteps = 20
	for round := 0; round < 3; round++ {
		improved := false
		for i := 0; i < p; i++ {
			for _, param := range []struct {
				slot []float64
				span float64
			}{
				{angles.Gammas, math.Pi},    // γ ∈ (0, π)
				{angles.Betas, math.Pi / 2}, // β ∈ (0, π/2)
			} {
				orig := param.slot[i]
				bestV := orig
				for s := 1; s < gridSteps; s++ {
					v := param.span * float64(s) / gridSteps
					param.slot[i] = v
					if sc := score(angles); sc > best {
						best = sc
						bestV = v
						improved = true
					}
				}
				param.slot[i] = bestV
			}
		}
		if !improved {
			break
		}
	}
	return angles
}

// QAOA returns the QAOA max-cut benchmark for a paper graph at the given
// level count, with angles tuned on the ideal simulator.
func QAOA(name string, pg maxcut.PaperGraph, p int) Benchmark {
	angles := OptimizeQAOAAngles(pg.Graph, p)
	c := QAOACircuit(pg.Graph, angles)
	c.Name = name
	return Benchmark{
		Name:    name,
		Circuit: c,
		Correct: []bitstring.Bits{pg.Optimal, pg.Optimal.Invert()},
	}
}

// Table3Suite returns the paper's benchmark suite (Table 3): four BV
// sizes and four QAOA instances. QAOA-4A uses p=1; the others use p=2,
// as annotated in the table.
func Table3Suite() []Benchmark {
	var out []Benchmark
	bv := []struct{ name, key string }{
		{"bv-4A", "0111"},
		{"bv-4B", "1111"},
		{"bv-6", "011111"},
		{"bv-7", "0111111"},
	}
	for _, b := range bv {
		out = append(out, BV(b.name, bitstring.MustParse(b.key)))
	}
	qaoa := []struct {
		name string
		p    int
	}{
		{"qaoa-4A", 1},
		{"qaoa-4B", 2},
		{"qaoa-6", 2},
		{"qaoa-7", 2},
	}
	for _, q := range qaoa {
		pg, err := maxcut.Table3Graph(q.name)
		if err != nil {
			panic(err)
		}
		out = append(out, QAOA(q.name, pg, q.p))
	}
	return out
}

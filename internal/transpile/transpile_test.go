package transpile

import (
	"context"
	"math"
	"testing"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/dist"
)

func bs(s string) bitstring.Bits { return bitstring.MustParse(s) }

func TestPlaceRejectsOversizedCircuits(t *testing.T) {
	c := circuit.New(6, "big")
	if _, err := Place(c, device.IBMQX2()); err == nil {
		t.Error("6-qubit circuit accepted on 5-qubit device")
	}
}

func TestPlaceProducesValidPhysicalCircuit(t *testing.T) {
	dev := device.IBMQMelbourne()
	c := circuit.New(5, "chain").H(0).CX(0, 1).CX(1, 2).CX(2, 3).CX(3, 4)
	plan, err := Place(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Physical.NumQubits != dev.NumQubits {
		t.Errorf("physical register = %d", plan.Physical.NumQubits)
	}
	for i, op := range plan.Physical.Ops {
		if op.IsTwoQubit() && !dev.Connected(op.Qubits[0], op.Qubits[1]) {
			t.Errorf("op %d (%s) on uncoupled %v", i, op.Label, op.Qubits)
		}
	}
	// Layouts are injective.
	for _, layout := range [][]int{plan.InitialLayout, plan.FinalLayout} {
		seen := make(map[int]bool)
		for _, p := range layout {
			if seen[p] {
				t.Errorf("layout reuses physical qubit %d", p)
			}
			seen[p] = true
		}
	}
}

func TestRoutedCircuitPreservesSemantics(t *testing.T) {
	// The routed GHZ must produce the same logical distribution as the
	// logical circuit, once outcomes are extracted via the final layout.
	dev := device.IBMQMelbourne()
	logical := circuit.New(4, "ghz4").H(0).CX(0, 1).CX(1, 2).CX(2, 3)
	// Force a layout that requires routing: qubits on opposite corners.
	plan, err := PlaceWithLayout(logical, dev, []int{0, 6, 7, 13})
	if err != nil {
		t.Fatal(err)
	}
	if plan.SwapCount == 0 {
		t.Fatal("expected SWAPs for an adversarial layout")
	}
	counts, err := backend.RunContext(context.Background(), plan.Physical, dev, backend.Options{
		Shots: 30000, Seed: 21, NoGateNoise: true, NoDecay: true, NoReadoutError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := plan.ExtractLogical(counts).Dist()
	want := backend.RunIdeal(logical)
	if tvd := got.TVD(want); tvd > 0.02 {
		t.Errorf("routed TVD vs logical ideal = %v", tvd)
	}
}

func TestAllocatePrefersStrongQubits(t *testing.T) {
	// On melbourne, qubit 13 has a 31% readout error; a small circuit
	// must avoid it.
	dev := device.IBMQMelbourne()
	c := circuit.New(3, "small").H(0).CX(0, 1).CX(1, 2)
	plan, err := Place(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plan.InitialLayout {
		if p == 13 {
			t.Errorf("allocation used the weakest qubit 13: %v", plan.InitialLayout)
		}
	}
}

func TestAllocatePlacesInteractingPairsAdjacent(t *testing.T) {
	dev := device.IBMQX2()
	c := circuit.New(2, "pair").H(0).CX(0, 1).CX(0, 1).CX(0, 1)
	plan, err := Place(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SwapCount != 0 {
		t.Errorf("heavily interacting pair required %d swaps", plan.SwapCount)
	}
	if !dev.Connected(plan.InitialLayout[0], plan.InitialLayout[1]) {
		t.Errorf("pair placed on uncoupled qubits %v", plan.InitialLayout)
	}
}

func TestPlaceWithLayoutValidation(t *testing.T) {
	dev := device.IBMQX2()
	c := circuit.New(2, "x").CX(0, 1)
	if _, err := PlaceWithLayout(c, dev, []int{0}); err == nil {
		t.Error("short layout accepted")
	}
	if _, err := PlaceWithLayout(c, dev, []int{0, 0}); err == nil {
		t.Error("colliding layout accepted")
	}
	if _, err := PlaceWithLayout(c, dev, []int{0, 9}); err == nil {
		t.Error("out-of-range layout accepted")
	}
}

func TestWithInversionAppendsXOnFinalLayout(t *testing.T) {
	dev := device.IBMQX2()
	c := circuit.New(3, "id").H(0)
	plan, err := PlaceWithLayout(c, dev, []int{2, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	inv := plan.WithInversion(bs("101")) // logical qubits 0 and 2
	added := inv.Ops[len(plan.Physical.Ops):]
	if len(added) != 2 {
		t.Fatalf("added %d ops, want 2", len(added))
	}
	gotQubits := map[int]bool{}
	for _, op := range added {
		if op.Label != "x" {
			t.Errorf("appended %q, want x", op.Label)
		}
		gotQubits[op.Qubits[0]] = true
	}
	if !gotQubits[2] || !gotQubits[4] {
		t.Errorf("X gates on %v, want physical 2 and 4", gotQubits)
	}
}

func TestWithInversionDoesNotMutatePlan(t *testing.T) {
	dev := device.IBMQX2()
	plan, err := Place(circuit.New(2, "id").H(0), dev)
	if err != nil {
		t.Fatal(err)
	}
	before := len(plan.Physical.Ops)
	plan.WithInversion(bs("11"))
	if len(plan.Physical.Ops) != before {
		t.Error("WithInversion mutated the plan's physical circuit")
	}
}

func TestExtractLogical(t *testing.T) {
	dev := device.IBMQX2()
	plan, err := PlaceWithLayout(circuit.New(2, "id"), dev, []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := dist.NewCounts(5)
	counts.Add(bs("01010"), 7) // physical bits: q1=1, q3=1 → logical "11"
	counts.Add(bs("00010"), 3) // q1=1, q3=0 → logical "10"
	logical := plan.ExtractLogical(counts)
	if logical.Get(bs("11")) != 7 || logical.Get(bs("10")) != 3 {
		t.Errorf("extracted: 11=%d 10=%d", logical.Get(bs("11")), logical.Get(bs("10")))
	}
	if logical.Total() != 10 {
		t.Errorf("total = %d", logical.Total())
	}
}

func TestExtractLogicalAfterRouting(t *testing.T) {
	// With SWAPs, extraction must honour the *final* layout: prepare a
	// distinguishable logical state and check it survives a swap-heavy route.
	dev := device.IBMQMelbourne()
	logical := circuit.New(3, "prep").PrepareBasis(bs("101")).CX(0, 2)
	// CX flips logical q2 (control q0=1): expected output 001? No:
	// PrepareBasis(101) sets q0=1,q2=1; CX(0,2) flips q2 → 0: expect "001".
	plan, err := PlaceWithLayout(logical, dev, []int{0, 3, 13})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := backend.RunContext(context.Background(), plan.Physical, dev, backend.Options{
		Shots: 2000, Seed: 22, NoGateNoise: true, NoDecay: true, NoReadoutError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := plan.ExtractLogical(counts).Dist()
	if p := got.Prob(bs("001")); math.Abs(p-1) > 1e-9 {
		t.Errorf("P(001) = %v, distribution %v", p, got.P)
	}
}

func TestEndToEndInversionIdentity(t *testing.T) {
	// Noiseless end-to-end Invert-and-Measure through the transpiler:
	// prepare b, apply inversion s physically, run, extract, XOR-correct,
	// and recover b exactly.
	dev := device.IBMQX4()
	b, s := bs("0110"), bs("1011")
	logical := circuit.New(4, "prep").PrepareBasis(b)
	plan, err := Place(logical, dev)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := backend.RunContext(context.Background(), plan.WithInversion(s), dev, backend.Options{
		Shots: 1000, Seed: 23, NoGateNoise: true, NoDecay: true, NoReadoutError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	corrected := plan.ExtractLogical(counts).XorTransform(s)
	if got := corrected.Get(b); got != 1000 {
		t.Errorf("corrected count of %v = %d, want 1000", b, got)
	}
}

func TestPlaceNoiseRoutedAvoidsBadLinks(t *testing.T) {
	// Craft a device where the hop-shortest route crosses a 40% link.
	dev := device.IBMQMelbourne()
	// Poison the rung 3-11 and force a circuit that would route across it.
	for i := range dev.Links {
		if (dev.Links[i].A == 3 && dev.Links[i].B == 11) || (dev.Links[i].A == 11 && dev.Links[i].B == 3) {
			dev.Links[i].Gate2Error = 0.40
		}
	}
	logical := circuit.New(2, "far").CX(0, 1)
	plan, err := PlaceWithLayout(logical, dev, []int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	// Hop routing uses the direct poisoned link (no swaps).
	usesPoisoned := false
	for _, op := range plan.Physical.Ops {
		if op.IsTwoQubit() && ((op.Qubits[0] == 3 && op.Qubits[1] == 11) || (op.Qubits[0] == 11 && op.Qubits[1] == 3)) {
			usesPoisoned = true
		}
	}
	if !usesPoisoned {
		t.Fatal("test premise broken: hop routing avoided the direct link")
	}
	// Noise-aware routing on an adversarial allocation must avoid it
	// when the detour is cheap enough. Use the same forced placement via
	// a circuit whose allocation lands there naturally instead: verify at
	// the path level.
	path := dev.CheapestPath(3, 11)
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if (a == 3 && b == 11) || (a == 11 && b == 3) {
			t.Errorf("cheapest path still crosses the poisoned link: %v", path)
		}
	}
	// And the noise-routed plan executes correctly end to end.
	nr, err := PlaceNoiseRouted(circuit.New(5, "chain").H(0).CX(0, 1).CX(1, 2).CX(2, 3).CX(3, 4), dev)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range nr.Physical.Ops {
		if op.IsTwoQubit() && !dev.Connected(op.Qubits[0], op.Qubits[1]) {
			t.Errorf("noise-routed op on uncoupled qubits %v", op.Qubits)
		}
	}
}

// Package transpile maps logical circuits onto physical device qubits.
//
// The paper's baseline is a variability-aware mapping ([26, 28] in the
// paper): logical qubits are allocated to the machine's strongest
// physical qubits and links, and SWAPs are inserted only when the
// coupling graph requires them. Both the baseline and the SIM/AIM
// policies run through the same mapping (paper §4.3: "identical program,
// number of gates, and position of qubits"), so this package is shared by
// every experiment.
package transpile

import (
	"fmt"
	"sort"

	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/dist"
)

// Plan is the result of placing a logical circuit on a device.
type Plan struct {
	// Physical is the routed circuit on the full device register.
	Physical *circuit.Circuit
	// InitialLayout maps each logical qubit to the physical qubit that
	// holds it at circuit start.
	InitialLayout []int
	// FinalLayout maps each logical qubit to the physical qubit that
	// holds it at measurement time (differs from InitialLayout when
	// routing inserted SWAPs).
	FinalLayout []int
	// SwapCount is the number of SWAP gates inserted by routing.
	SwapCount int

	logicalQubits int
	deviceQubits  int
}

// Place allocates the logical qubits of c onto dev's strongest connected
// qubits and routes every two-qubit gate, returning an executable plan.
func Place(c *circuit.Circuit, dev *device.Device) (*Plan, error) {
	if c.NumQubits > dev.NumQubits {
		return nil, fmt.Errorf("transpile: circuit needs %d qubits but %s has %d",
			c.NumQubits, dev.Name, dev.NumQubits)
	}
	layout := allocate(c, dev)
	return route(c, dev, layout, dev.ShortestPath)
}

// PlaceNoiseRouted is Place with noise-aware routing: SWAP paths minimize
// accumulated link error (device.CheapestPath) instead of hop count, so
// detours around a noisy link are taken when they pay for themselves.
func PlaceNoiseRouted(c *circuit.Circuit, dev *device.Device) (*Plan, error) {
	if c.NumQubits > dev.NumQubits {
		return nil, fmt.Errorf("transpile: circuit needs %d qubits but %s has %d",
			c.NumQubits, dev.Name, dev.NumQubits)
	}
	layout := allocate(c, dev)
	return route(c, dev, layout, dev.CheapestPath)
}

// PlaceNaive routes c with the identity layout (logical qubit i on
// physical qubit i), the allocation a hardware-oblivious compiler would
// produce. It exists as the comparison point for the variability-aware
// Place: the paper's baseline already includes noise-aware allocation
// ([26, 28]), and the gap between the two policies is measured by
// experiments.AllocationComparison.
func PlaceNaive(c *circuit.Circuit, dev *device.Device) (*Plan, error) {
	if c.NumQubits > dev.NumQubits {
		return nil, fmt.Errorf("transpile: circuit needs %d qubits but %s has %d",
			c.NumQubits, dev.Name, dev.NumQubits)
	}
	layout := make([]int, c.NumQubits)
	for i := range layout {
		layout[i] = i
	}
	return route(c, dev, layout, dev.ShortestPath)
}

// PlaceWithLayout routes c using a caller-chosen initial layout, e.g. to
// pin benchmarks to identical qubits across policies.
func PlaceWithLayout(c *circuit.Circuit, dev *device.Device, layout []int) (*Plan, error) {
	if len(layout) != c.NumQubits {
		return nil, fmt.Errorf("transpile: layout has %d entries for %d logical qubits",
			len(layout), c.NumQubits)
	}
	seen := make(map[int]bool)
	for _, p := range layout {
		if p < 0 || p >= dev.NumQubits {
			return nil, fmt.Errorf("transpile: layout target %d outside %s", p, dev.Name)
		}
		if seen[p] {
			return nil, fmt.Errorf("transpile: layout reuses physical qubit %d", p)
		}
		seen[p] = true
	}
	return route(c, dev, append([]int(nil), layout...), dev.ShortestPath)
}

// qubitCost scores a physical qubit: lower is better. Readout error
// dominates, as in the paper's focus; gate error and short T1 penalize.
func qubitCost(dev *device.Device, q int) float64 {
	model := dev.ReadoutModel()
	cost := 4*model.PerQubit[q].Average() + 2*dev.Qubits[q].Gate1Error
	// Favor qubits with at least one strong link.
	best := 1.0
	for _, nb := range dev.Neighbors(q) {
		if e, err := dev.Gate2Error(q, nb); err == nil && e < best {
			best = e
		}
	}
	cost += best
	// Short T1 worsens both decay and readout relaxation.
	cost += 1.0 / dev.Qubits[q].T1
	return cost
}

// allocate chooses an initial layout: logical qubits ordered by how much
// they interact are greedily placed on the cheapest physical qubits,
// preferring neighbours of already-placed interaction partners so that
// heavy pairs land on real links.
func allocate(c *circuit.Circuit, dev *device.Device) []int {
	// Interaction weights between logical qubits.
	weight := make(map[[2]int]int)
	degree := make([]int, c.NumQubits)
	for _, op := range c.Ops {
		if !op.IsTwoQubit() {
			continue
		}
		a, b := op.Qubits[0], op.Qubits[1]
		if a > b {
			a, b = b, a
		}
		weight[[2]int{a, b}]++
		degree[op.Qubits[0]]++
		degree[op.Qubits[1]]++
	}
	order := make([]int, c.NumQubits)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return degree[order[i]] > degree[order[j]] })

	costs := make([]float64, dev.NumQubits)
	for q := 0; q < dev.NumQubits; q++ {
		costs[q] = qubitCost(dev, q)
	}
	used := make([]bool, dev.NumQubits)
	layout := make([]int, c.NumQubits)
	for i := range layout {
		layout[i] = -1
	}

	cheapestFree := func(candidates []int) int {
		best, bestCost := -1, 0.0
		for _, q := range candidates {
			if used[q] {
				continue
			}
			if best == -1 || costs[q] < bestCost {
				best, bestCost = q, costs[q]
			}
		}
		return best
	}
	allQubits := make([]int, dev.NumQubits)
	for q := range allQubits {
		allQubits[q] = q
	}

	for _, lq := range order {
		// Prefer free neighbours of already placed interaction partners,
		// weighted by interaction count.
		var candidates []int
		bestWeight := 0
		for other := 0; other < c.NumQubits; other++ {
			if layout[other] == -1 || other == lq {
				continue
			}
			a, b := lq, other
			if a > b {
				a, b = b, a
			}
			w := weight[[2]int{a, b}]
			if w == 0 {
				continue
			}
			if w > bestWeight {
				bestWeight = w
				candidates = nil
			}
			if w == bestWeight {
				candidates = append(candidates, dev.Neighbors(layout[other])...)
			}
		}
		choice := cheapestFree(candidates)
		if choice == -1 {
			choice = cheapestFree(allQubits)
		}
		layout[lq] = choice
		used[choice] = true
	}
	return layout
}

// route rewrites c onto the device register using the given initial
// layout, inserting SWAPs along pathfinder-chosen coupling paths when a
// two-qubit gate spans uncoupled physical qubits.
func route(c *circuit.Circuit, dev *device.Device, layout []int, pathfinder func(a, b int) []int) (*Plan, error) {
	l2p := append([]int(nil), layout...)
	p2l := make([]int, dev.NumQubits)
	for i := range p2l {
		p2l[i] = -1
	}
	for lq, pq := range l2p {
		if p2l[pq] != -1 {
			return nil, fmt.Errorf("transpile: layout collision on physical qubit %d", pq)
		}
		p2l[pq] = lq
	}

	phys := circuit.New(dev.NumQubits, c.Name+"@"+dev.Name)
	swaps := 0
	swapPhysical := func(u, v int) {
		phys.Swap(u, v)
		swaps++
		lu, lv := p2l[u], p2l[v]
		p2l[u], p2l[v] = lv, lu
		if lu != -1 {
			l2p[lu] = v
		}
		if lv != -1 {
			l2p[lv] = u
		}
	}

	for _, op := range c.Ops {
		switch {
		case op.Kind == circuit.Barrier:
			phys.AddBarrier()
		case !op.IsTwoQubit():
			phys.Gate(op.Matrix, l2p[op.Qubits[0]], op.Label)
		default:
			pa, pb := l2p[op.Qubits[0]], l2p[op.Qubits[1]]
			if !dev.Connected(pa, pb) {
				path := pathfinder(pa, pb)
				if path == nil {
					return nil, fmt.Errorf("transpile: no coupling path between physical %d and %d on %s",
						pa, pb, dev.Name)
				}
				// Walk the first operand toward the second until adjacent.
				for len(path) > 2 {
					swapPhysical(path[0], path[1])
					path = path[1:]
				}
				pa, pb = l2p[op.Qubits[0]], l2p[op.Qubits[1]]
			}
			switch op.Kind {
			case circuit.CNOT:
				phys.CX(pa, pb)
			case circuit.CZ:
				phys.CZGate(pa, pb)
			case circuit.SwapOp:
				phys.Swap(pa, pb)
			}
		}
	}
	return &Plan{
		Physical:      phys,
		InitialLayout: append([]int(nil), layout...),
		FinalLayout:   l2p,
		SwapCount:     swaps,
		logicalQubits: c.NumQubits,
		deviceQubits:  dev.NumQubits,
	}, nil
}

// WithInversion returns a copy of the physical circuit with the logical
// inversion string s applied just before measurement: an X gate on the
// physical qubit holding each logical qubit where s has a 1. This is the
// transpiler-level realization of Invert-and-Measure.
func (p *Plan) WithInversion(s bitstring.Bits) *circuit.Circuit {
	if s.Width() != p.logicalQubits {
		panic(fmt.Sprintf("transpile: inversion string width %d for %d logical qubits",
			s.Width(), p.logicalQubits))
	}
	c := p.Physical.Clone()
	for lq := 0; lq < p.logicalQubits; lq++ {
		if s.Bit(lq) {
			c.X(p.FinalLayout[lq])
		}
	}
	return c
}

// ExtractLogical projects a device-register histogram down to the logical
// register using the final layout: logical bit i is read from physical
// qubit FinalLayout[i].
func (p *Plan) ExtractLogical(counts *dist.Counts) *dist.Counts {
	if counts.Width() != p.deviceQubits {
		panic(fmt.Sprintf("transpile: histogram width %d does not match device %d",
			counts.Width(), p.deviceQubits))
	}
	out := dist.NewCounts(p.logicalQubits)
	for _, b := range counts.Outcomes() {
		logical := bitstring.Zeros(p.logicalQubits)
		for lq := 0; lq < p.logicalQubits; lq++ {
			logical = logical.SetBit(lq, b.Bit(p.FinalLayout[lq]))
		}
		out.Add(logical, counts.Get(b))
	}
	return out
}

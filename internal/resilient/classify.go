package resilient

import (
	"context"
	"errors"

	"biasmit/internal/backend"
)

// IsTransient classifies an error chain as retryable or permanent.
//
// Classification is permanent-first: any evidence of a permanent cause
// anywhere in the chain vetoes a transient marker, so a
// *backend.BudgetError (a caller mistake — retrying can only waste the
// machine) or a context ending (the caller's deadline is gone — retrying
// cannot beat it) is never retried even if some layer wrapped it in a
// *backend.TransientError. Only a chain whose sole failure evidence is a
// TransientError is retryable. The fuzz test in this package holds the
// classifier to the BudgetError half of that contract against random
// wrapped chains.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var be *backend.BudgetError
	if errors.As(err, &be) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var te *backend.TransientError
	return errors.As(err, &te)
}

// Package resilient executes backend runs on unreliable machines: it
// retries transient failures with exponential backoff and full jitter,
// fails fast on permanent errors (see IsTransient), sheds load through a
// per-machine circuit breaker, and salvages completed work across
// retries so a fault late in a large run does not discard the trials
// that already finished.
//
// # Salvage and determinism
//
// A run's trial budget is partitioned into fixed slices of
// Policy.SliceShots trials; slice i executes as an independent backend
// run with seed orchestrate.DeriveSeed(seed, i), exactly the discipline
// SIM groups and parallel workers already follow. Slices are atomic:
// one either completes and its histogram is kept, or it failed and is
// re-dispatched whole. The merged result is therefore the slice-order
// merge of per-slice histograms — a pure function of (circuit, device,
// options, slice size) that does not depend on how many attempts were
// needed or where faults landed. That is the determinism argument: with
// fault injection at any rate and a fixed seed, the merged dist.Counts
// are byte-identical to the fault-free run, because retries re-execute
// identical seeded slices and never perturb a completed slice's RNG
// stream. (Within a failed slice nothing is salvaged — resuming a
// half-consumed RNG stream across process boundaries is exactly what
// would break reproducibility — so SliceShots bounds the work a single
// fault can waste.)
//
// With SliceShots ≤ 0 the run stays a single slice under its original
// seed, byte-compatible with calling the backend directly; retries then
// replay the whole run, which is still deterministic, just with nothing
// to salvage.
package resilient

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"biasmit/internal/backend"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/obs"
	"biasmit/internal/orchestrate"
)

// Policy tunes an Executor. Zero values select the defaults.
type Policy struct {
	// MaxAttempts bounds how many times a run's pending slices are
	// dispatched before the last transient error is surfaced (default 4;
	// 1 disables retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: the delay before attempt
	// k (k ≥ 2) is uniform in (0, min(MaxDelay, BaseDelay·2^(k-2))] —
	// "full jitter" (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
	// SliceShots is the salvage granularity: runs larger than this are
	// partitioned into independent seeded slices of at most this many
	// trials (see the package comment). Zero disables slicing.
	SliceShots int
	// Seed drives the backoff jitter. Jitter affects only timing, never
	// results; a zero seed uses 1.
	Seed int64
	// Breaker, when set, gates every run: open → immediate
	// *BreakerOpenError; run outcomes feed back into it.
	Breaker *Breaker
	// Machine names the protected machine in BreakerOpenError messages.
	Machine string
	// Sleep overrides the backoff sleep, for tests. It must honour ctx.
	Sleep func(ctx context.Context, d time.Duration) error
	// RetryAllow, when set, is consulted before every retry (attempts
	// after the first). Returning false surfaces the last transient
	// error instead of retrying — the hook the shared token-bucket
	// retry budget (internal/overload.Budget) plugs in so that under a
	// sick backend the fleet's retries stay a bounded fraction of fresh
	// traffic instead of amplifying the outage.
	RetryAllow func() bool
	// Metrics, when set, receives the executor's counters; several
	// executors may share one Metrics.
	Metrics *Metrics
}

// Metrics counts executor outcomes with atomic counters, shareable
// across executors and safe for concurrent scraping.
type Metrics struct {
	Runs              atomic.Uint64 // runs started (past the breaker)
	Attempts          atomic.Uint64 // dispatch passes over pending slices
	Retries           atomic.Uint64 // attempts after the first
	Failures          atomic.Uint64 // runs that ultimately failed
	SalvagedSlices    atomic.Uint64 // completed slices carried across a retry
	SalvagedShots     atomic.Uint64 // trials those slices contained
	BreakerRejections atomic.Uint64 // runs refused by an open breaker
	BudgetDenials     atomic.Uint64 // retries suppressed by the retry budget
}

// MetricsSnapshot is a plain-value copy of Metrics for rendering.
type MetricsSnapshot struct {
	Runs              uint64
	Attempts          uint64
	Retries           uint64
	Failures          uint64
	SalvagedSlices    uint64
	SalvagedShots     uint64
	BreakerRejections uint64
	BudgetDenials     uint64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return MetricsSnapshot{}
	}
	return MetricsSnapshot{
		Runs:              m.Runs.Load(),
		Attempts:          m.Attempts.Load(),
		Retries:           m.Retries.Load(),
		Failures:          m.Failures.Load(),
		SalvagedSlices:    m.SalvagedSlices.Load(),
		SalvagedShots:     m.SalvagedShots.Load(),
		BreakerRejections: m.BreakerRejections.Load(),
		BudgetDenials:     m.BudgetDenials.Load(),
	}
}

// Flags registers the CLI retry-tuning flags on fs and returns the
// policy they fill in; pair with chaos.Flags to build the full -chaos-*
// execution path. The defaults keep results byte-identical to an
// unretried backend: no slicing, and retries only fire on failures.
func Flags(fs *flag.FlagSet) *Policy {
	p := &Policy{}
	fs.IntVar(&p.MaxAttempts, "retry-attempts", 4,
		"execution attempts per backend run before the transient error surfaces (1 disables retries)")
	fs.DurationVar(&p.BaseDelay, "retry-base-delay", 50*time.Millisecond,
		"base delay for the full-jitter exponential retry backoff")
	fs.DurationVar(&p.MaxDelay, "retry-max-delay", 2*time.Second,
		"upper bound on the retry backoff")
	fs.IntVar(&p.SliceShots, "slice-shots", 0,
		"partial-shot salvage granularity: split each run into independently "+
			"seeded slices of this many trials so a fault only re-runs unfinished "+
			"work (0 = no slicing; changes the sampled random streams)")
	return p
}

// Executor is a retrying backend.Runner. Construct with New; safe for
// concurrent use (core fans SIM/AIM groups out over one shared
// executor).
type Executor struct {
	run    backend.Runner
	policy Policy

	mu  sync.Mutex
	rng *rand.Rand // backoff jitter
}

// New wraps run with the retry/salvage/breaker policy.
func New(run backend.Runner, p Policy) *Executor {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return &Executor{run: run, policy: p, rng: rand.New(rand.NewSource(p.Seed))}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// slice is one independently seeded unit of a run's trial budget.
type slice struct {
	shots int
	seed  int64
}

// slices partitions a run. A single slice keeps the caller's seed so an
// unsliced executor is byte-compatible with the raw backend.
func (e *Executor) slices(opt backend.Options) []slice {
	if e.policy.SliceShots <= 0 || opt.Shots <= e.policy.SliceShots {
		return []slice{{shots: opt.Shots, seed: opt.Seed}}
	}
	n := (opt.Shots + e.policy.SliceShots - 1) / e.policy.SliceShots
	out := make([]slice, 0, n)
	remaining := opt.Shots
	for i := 0; remaining > 0; i++ {
		s := e.policy.SliceShots
		if s > remaining {
			s = remaining
		}
		out = append(out, slice{shots: s, seed: orchestrate.DeriveSeed(opt.Seed, i)})
		remaining -= s
	}
	return out
}

// backoff returns the full-jitter delay before the given retry (attempt
// numbering starts at 1; the first retry is attempt 2).
func (e *Executor) backoff(attempt int) time.Duration {
	max := e.policy.BaseDelay << uint(attempt-2)
	if max <= 0 || max > e.policy.MaxDelay {
		max = e.policy.MaxDelay
	}
	e.mu.Lock()
	d := time.Duration(e.rng.Int63n(int64(max))) + 1
	e.mu.Unlock()
	return d
}

// Run executes one backend run under the policy. It implements
// backend.Runner, so a *core.Machine can use it directly.
func (e *Executor) Run(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt backend.Options) (*dist.Counts, error) {
	m := e.policy.Metrics
	br := e.policy.Breaker
	if err := backend.CheckShots(opt.Shots); err != nil {
		// A bad budget is the caller's mistake, not the machine's: fail
		// before the breaker sees anything.
		return nil, err
	}
	if br != nil {
		if ok, retryAfter := br.Allow(); !ok {
			if m != nil {
				m.BreakerRejections.Add(1)
			}
			machine := e.policy.Machine
			if machine == "" {
				machine = dev.Name
			}
			obs.Annotate(ctx, "breaker open: %s rejected the run (retry after %s)", machine, retryAfter)
			return nil, &BreakerOpenError{Machine: machine, RetryAfter: retryAfter}
		}
	}
	if m != nil {
		m.Runs.Add(1)
	}

	slices := e.slices(opt)
	done := make([]*dist.Counts, len(slices))
	// Salvage already credited to the counters, so each retry only adds
	// the newly surviving slices.
	creditedSlices, creditedShots := 0, 0
	var lastErr error
	for attempt := 1; attempt <= e.policy.MaxAttempts; attempt++ {
		if m != nil {
			m.Attempts.Add(1)
			if attempt > 1 {
				m.Retries.Add(1)
			}
		}
		lastErr = e.dispatch(ctx, c, dev, opt, slices, done)
		if lastErr == nil {
			if br != nil {
				br.Success()
			}
			merged := dist.NewCounts(dev.NumQubits)
			for _, counts := range done {
				merged.Merge(counts)
			}
			return merged, nil
		}
		if !IsTransient(lastErr) || attempt == e.policy.MaxAttempts {
			break
		}
		// The retry budget has the last word: no tokens, no retry. The
		// transient error surfaces to the caller (still typed retryable),
		// shifting the retry decision to whoever holds budget.
		if e.policy.RetryAllow != nil && !e.policy.RetryAllow() {
			if m != nil {
				m.BudgetDenials.Add(1)
			}
			obs.Annotate(ctx, "retry budget exhausted after attempt %d: %v", attempt, lastErr)
			break
		}
		// Credit the trials that survived this failed attempt: they are
		// kept, and only the pending remainder is re-dispatched.
		kept, shots := 0, 0
		for _, counts := range done {
			if counts != nil {
				kept++
				shots += counts.Total()
			}
		}
		if m != nil && kept > creditedSlices {
			m.SalvagedSlices.Add(uint64(kept - creditedSlices))
			m.SalvagedShots.Add(uint64(shots - creditedShots))
			creditedSlices, creditedShots = kept, shots
		}
		if kept > 0 {
			obs.Annotate(ctx, "retry %d/%d after transient (%d/%d slices salvaged, %d shots): %v",
				attempt+1, e.policy.MaxAttempts, kept, len(slices), shots, lastErr)
		} else {
			obs.Annotate(ctx, "retry %d/%d after transient: %v", attempt+1, e.policy.MaxAttempts, lastErr)
		}
		if err := e.policy.Sleep(ctx, e.backoff(attempt+1)); err != nil {
			lastErr = err
			break
		}
	}
	if br != nil {
		// A run cut short by the caller's own context says nothing about
		// the machine; release any probe slot without a transition.
		if errors.Is(lastErr, context.Canceled) || errors.Is(lastErr, context.DeadlineExceeded) {
			br.Cancel()
		} else {
			br.Failure()
		}
	}
	if m != nil {
		m.Failures.Add(1)
	}
	return nil, lastErr
}

// dispatch runs every pending slice in order, recording completions in
// done. It returns the first error, leaving completed slices in place
// for the next attempt to skip.
func (e *Executor) dispatch(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt backend.Options, slices []slice, done []*dist.Counts) error {
	for i, s := range slices {
		if done[i] != nil {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		sliceOpt := opt
		sliceOpt.Shots = s.shots
		sliceOpt.Seed = s.seed
		counts, err := e.run(ctx, c, dev, sliceOpt)
		if err != nil {
			if len(slices) > 1 {
				return fmt.Errorf("resilient: slice %d/%d (%d shots): %w", i+1, len(slices), s.shots, err)
			}
			return err
		}
		done[i] = counts
	}
	return nil
}

package resilient

import (
	"fmt"
	"sync"
	"time"
)

// Breaker states. A breaker protects one machine: while it is open,
// runs are rejected immediately instead of queuing work behind a
// backend that keeps failing.
const (
	StateClosed   = "closed"    // normal operation
	StateOpen     = "open"      // rejecting runs until the cooldown ends
	StateHalfOpen = "half-open" // cooldown over; one probe in flight
)

// BreakerOptions tunes a Breaker. Zero values select the defaults.
type BreakerOptions struct {
	// Threshold is how many consecutive run failures open the breaker
	// (default 5). Failures are counted at run granularity — after the
	// executor has exhausted its retries — not per attempt.
	Threshold int
	// Cooldown is how long the breaker stays open before letting one
	// probe through (default 30s).
	Cooldown time.Duration
	// Now overrides the clock, for tests.
	Now func() time.Time
}

// BreakerStats counts state transitions since the breaker was created.
type BreakerStats struct {
	Opened     uint64 // transitions into open (including half-open → open)
	HalfOpened uint64 // transitions open → half-open (probe admitted)
	Closed     uint64 // transitions half-open → closed (probe succeeded)
	Rejected   uint64 // runs refused while open or during a probe
}

// Breaker is a closed/open/half-open circuit breaker with a cooldown
// clock. Construct with NewBreaker; safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    string
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
	stats    BreakerStats
}

// NewBreaker returns a closed breaker.
func NewBreaker(opt BreakerOptions) *Breaker {
	if opt.Threshold <= 0 {
		opt.Threshold = 5
	}
	if opt.Cooldown <= 0 {
		opt.Cooldown = 30 * time.Second
	}
	if opt.Now == nil {
		opt.Now = time.Now
	}
	return &Breaker{threshold: opt.Threshold, cooldown: opt.Cooldown, now: opt.Now, state: StateClosed}
}

// Allow reports whether a run may proceed. While open it returns false
// with the time left until a probe will be admitted; once the cooldown
// has elapsed the first caller becomes the half-open probe and later
// callers are rejected until the probe reports Success or Failure.
func (b *Breaker) Allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true, 0
	case StateOpen:
		remaining := b.cooldown - b.now().Sub(b.openedAt)
		if remaining > 0 {
			b.stats.Rejected++
			return false, remaining
		}
		b.state = StateHalfOpen
		b.probing = true
		b.stats.HalfOpened++
		return true, 0
	default: // half-open
		if !b.probing {
			b.probing = true
			return true, 0
		}
		b.stats.Rejected++
		return false, b.cooldown
	}
}

// Success reports a completed run: a half-open probe closes the breaker;
// a closed breaker forgets its consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateHalfOpen:
		b.state = StateClosed
		b.probing = false
		b.failures = 0
		b.stats.Closed++
	case StateClosed:
		b.failures = 0
	}
}

// Failure reports a failed run: a half-open probe reopens the breaker;
// a closed breaker opens once Threshold consecutive runs have failed.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateHalfOpen:
		b.state = StateOpen
		b.probing = false
		b.openedAt = b.now()
		b.stats.Opened++
	case StateClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = StateOpen
			b.openedAt = b.now()
			b.stats.Opened++
		}
	}
}

// Cancel reports a run that ended without a verdict on the machine —
// typically the caller's context ended first. A half-open probe slot is
// released without a state transition so the next caller can probe; a
// closed or open breaker is left untouched.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateHalfOpen {
		b.probing = false
	}
}

// State returns the current state string.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	// An expired open breaker is morally half-openable; report it as
	// open until a caller actually probes, so observers see the truth of
	// what Allow would have done before their read.
	return b.state
}

// RetryAfter returns how long until an open breaker admits a probe
// (zero when not open or already due).
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != StateOpen {
		return 0
	}
	if remaining := b.cooldown - b.now().Sub(b.openedAt); remaining > 0 {
		return remaining
	}
	return 0
}

// Stats returns the transition counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// BreakerOpenError reports a run rejected because the machine's breaker
// is open. The serving layer maps it onto 503 + Retry-After with the
// breaker_open code.
type BreakerOpenError struct {
	Machine    string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("resilient: circuit breaker for %s is open (retry in %s)", e.Machine, e.RetryAfter.Round(time.Millisecond))
}

package resilient

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock safe for concurrent reads.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := newFakeClock()
	return NewBreaker(BreakerOptions{Threshold: threshold, Cooldown: cooldown, Now: clk.now}), clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	br, _ := newTestBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		br.Failure()
		if br.State() != StateClosed {
			t.Fatalf("after %d failures state %q, want closed", i+1, br.State())
		}
	}
	br.Failure()
	if br.State() != StateOpen {
		t.Fatalf("state %q, want open at the threshold", br.State())
	}
	if ok, retryAfter := br.Allow(); ok || retryAfter <= 0 || retryAfter > time.Minute {
		t.Fatalf("Allow() = %v, %v on an open breaker", ok, retryAfter)
	}
	if s := br.Stats(); s.Opened != 1 || s.Rejected != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	br, _ := newTestBreaker(3, time.Minute)
	br.Failure()
	br.Failure()
	br.Success()
	br.Failure()
	br.Failure()
	if br.State() != StateClosed {
		t.Fatal("a success must reset the consecutive-failure count")
	}
}

func TestBreakerHalfOpenProbeAndRecovery(t *testing.T) {
	br, clk := newTestBreaker(1, time.Minute)
	br.Failure()
	if br.State() != StateOpen {
		t.Fatal("want open")
	}
	if ok, _ := br.Allow(); ok {
		t.Fatal("want rejection before the cooldown")
	}
	clk.advance(61 * time.Second)
	ok, _ := br.Allow()
	if !ok {
		t.Fatal("want a probe admitted after the cooldown")
	}
	if br.State() != StateHalfOpen {
		t.Fatalf("state %q, want half-open while probing", br.State())
	}
	// Only one probe at a time: a second caller is rejected.
	if ok, _ := br.Allow(); ok {
		t.Fatal("half-open must admit exactly one probe")
	}
	br.Success()
	if br.State() != StateClosed {
		t.Fatalf("state %q, want closed after a successful probe", br.State())
	}
	if ok, _ := br.Allow(); !ok {
		t.Fatal("closed breaker must admit work")
	}
	if s := br.Stats(); s.Opened != 1 || s.HalfOpened != 1 || s.Closed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	br, clk := newTestBreaker(1, time.Minute)
	br.Failure()
	clk.advance(2 * time.Minute)
	if ok, _ := br.Allow(); !ok {
		t.Fatal("want a probe")
	}
	br.Failure()
	if br.State() != StateOpen {
		t.Fatalf("state %q, want reopened after a failed probe", br.State())
	}
	// The cooldown restarts from the failed probe.
	if ok, _ := br.Allow(); ok {
		t.Fatal("want rejection during the fresh cooldown")
	}
	clk.advance(2 * time.Minute)
	if ok, _ := br.Allow(); !ok {
		t.Fatal("want a second probe after the fresh cooldown")
	}
}

func TestBreakerCancelReleasesProbe(t *testing.T) {
	br, clk := newTestBreaker(1, time.Minute)
	br.Failure()
	clk.advance(2 * time.Minute)
	if ok, _ := br.Allow(); !ok {
		t.Fatal("want a probe")
	}
	br.Cancel()
	if br.State() != StateHalfOpen {
		t.Fatalf("state %q, want half-open unchanged by a cancelled probe", br.State())
	}
	if ok, _ := br.Allow(); !ok {
		t.Fatal("the probe slot must be reusable after Cancel")
	}
}

// TestBreakerConcurrency drives the breaker from many goroutines so the
// race detector can check the locking. Invariant: the state is always
// one of the three names, and Allow never panics.
func TestBreakerConcurrency(t *testing.T) {
	br, clk := newTestBreaker(5, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if ok, _ := br.Allow(); ok {
					if (g+i)%3 == 0 {
						br.Failure()
					} else {
						br.Success()
					}
				}
				if i%50 == 0 {
					clk.advance(time.Millisecond)
				}
				switch br.State() {
				case StateClosed, StateOpen, StateHalfOpen:
				default:
					t.Errorf("impossible state %q", br.State())
					return
				}
				br.RetryAfter()
				br.Stats()
			}
		}(g)
	}
	wg.Wait()
}

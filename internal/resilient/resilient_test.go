package resilient

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/dist"
)

// noSleep skips backoff delays in tests.
func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

// scriptRunner fails according to a per-call script: calls whose index
// (0-based) is in fail return a transient error; entries in perm return
// a permanent error instead. Successful calls return a histogram whose
// single outcome is keyed by the slice seed, so merges are checkable.
type scriptRunner struct {
	mu    sync.Mutex
	calls int
	fail  map[int]bool
	perm  map[int]error
	seeds []int64
}

func (r *scriptRunner) run(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt backend.Options) (*dist.Counts, error) {
	r.mu.Lock()
	i := r.calls
	r.calls++
	r.seeds = append(r.seeds, opt.Seed)
	r.mu.Unlock()
	if err, ok := r.perm[i]; ok {
		return nil, err
	}
	if r.fail[i] {
		return nil, &backend.TransientError{Op: "test", Err: fmt.Errorf("scripted failure %d", i)}
	}
	counts := dist.NewCounts(dev.NumQubits)
	counts.Add(bitstring.Zeros(dev.NumQubits), opt.Shots)
	return counts, nil
}

func (r *scriptRunner) callCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

func probeCircuit() *circuit.Circuit {
	c := circuit.New(2, "probe")
	c.H(0)
	return c
}

func runOpts(shots int) backend.Options { return backend.Options{Shots: shots, Seed: 11} }

func TestRetriesTransientThenSucceeds(t *testing.T) {
	r := &scriptRunner{fail: map[int]bool{0: true, 1: true}}
	m := &Metrics{}
	ex := New(r.run, Policy{MaxAttempts: 4, Sleep: noSleep, Metrics: m})
	counts, err := ex.Run(context.Background(), probeCircuit(), device.IBMQX2(), runOpts(100))
	if err != nil {
		t.Fatal(err)
	}
	if counts.Total() != 100 {
		t.Fatalf("total = %d, want 100", counts.Total())
	}
	if r.callCount() != 3 {
		t.Fatalf("calls = %d, want 3", r.callCount())
	}
	if s := m.Snapshot(); s.Retries != 2 || s.Failures != 0 {
		t.Fatalf("metrics = %+v", s)
	}
}

func TestPermanentErrorFailsFast(t *testing.T) {
	permanent := errors.New("qasm: parse error")
	r := &scriptRunner{perm: map[int]error{0: permanent}}
	ex := New(r.run, Policy{MaxAttempts: 4, Sleep: noSleep})
	_, err := ex.Run(context.Background(), probeCircuit(), device.IBMQX2(), runOpts(100))
	if !errors.Is(err, permanent) {
		t.Fatalf("error = %v, want the permanent error", err)
	}
	if r.callCount() != 1 {
		t.Fatalf("calls = %d, want 1 (no retry of a permanent error)", r.callCount())
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	r := &scriptRunner{fail: map[int]bool{0: true, 1: true, 2: true}}
	m := &Metrics{}
	ex := New(r.run, Policy{MaxAttempts: 3, Sleep: noSleep, Metrics: m})
	_, err := ex.Run(context.Background(), probeCircuit(), device.IBMQX2(), runOpts(100))
	if !IsTransient(err) {
		t.Fatalf("error = %v, want the final transient error", err)
	}
	if r.callCount() != 3 {
		t.Fatalf("calls = %d, want 3", r.callCount())
	}
	if s := m.Snapshot(); s.Failures != 1 {
		t.Fatalf("metrics = %+v, want one failed run", s)
	}
}

func TestBadBudgetNeverDispatches(t *testing.T) {
	r := &scriptRunner{}
	br := NewBreaker(BreakerOptions{Threshold: 1})
	ex := New(r.run, Policy{Sleep: noSleep, Breaker: br})
	_, err := ex.Run(context.Background(), probeCircuit(), device.IBMQX2(), runOpts(-5))
	var be *backend.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("error = %v, want BudgetError", err)
	}
	if r.callCount() != 0 {
		t.Fatal("a bad budget must not reach the backend")
	}
	if br.State() != StateClosed {
		t.Fatal("a bad budget must not charge the breaker")
	}
}

func TestSalvageSkipsCompletedSlices(t *testing.T) {
	// 1000 shots at 300/slice: slices of 300, 300, 300, 100. The third
	// slice fails once (call index 2), ending the first dispatch pass
	// before slice 4 runs; attempt 2 runs only slices 3 and 4 — 5 calls
	// in total, and the merged histogram holds every trial exactly once.
	r := &scriptRunner{fail: map[int]bool{2: true}}
	m := &Metrics{}
	ex := New(r.run, Policy{MaxAttempts: 3, SliceShots: 300, Sleep: noSleep, Metrics: m})
	counts, err := ex.Run(context.Background(), probeCircuit(), device.IBMQX2(), runOpts(1000))
	if err != nil {
		t.Fatal(err)
	}
	if counts.Total() != 1000 {
		t.Fatalf("total = %d, want 1000", counts.Total())
	}
	if r.callCount() != 5 {
		t.Fatalf("calls = %d, want 5 (3 + the 2 pending slices)", r.callCount())
	}
	s := m.Snapshot()
	if s.SalvagedSlices != 2 || s.SalvagedShots != 600 {
		t.Fatalf("salvage = %d slices / %d shots, want 2 / 600", s.SalvagedSlices, s.SalvagedShots)
	}
}

func TestMergedResultIndependentOfFaultPlacement(t *testing.T) {
	run := func(fail map[int]bool) *dist.Counts {
		t.Helper()
		r := &scriptRunner{fail: fail}
		ex := New(r.run, Policy{MaxAttempts: 10, SliceShots: 64, Sleep: noSleep})
		counts, err := ex.Run(context.Background(), probeCircuit(), device.IBMQX2(), runOpts(500))
		if err != nil {
			t.Fatal(err)
		}
		return counts
	}
	clean := run(nil)
	faulty := run(map[int]bool{0: true, 3: true, 5: true, 9: true})
	if clean.Total() != faulty.Total() {
		t.Fatalf("totals differ: %d vs %d", clean.Total(), faulty.Total())
	}
	for _, b := range clean.Outcomes() {
		if clean.Get(b) != faulty.Get(b) {
			t.Fatalf("outcome %v: %d vs %d", b, clean.Get(b), faulty.Get(b))
		}
	}
}

func TestSingleSliceKeepsCallerSeed(t *testing.T) {
	r := &scriptRunner{}
	ex := New(r.run, Policy{Sleep: noSleep})
	if _, err := ex.Run(context.Background(), probeCircuit(), device.IBMQX2(), runOpts(100)); err != nil {
		t.Fatal(err)
	}
	if len(r.seeds) != 1 || r.seeds[0] != 11 {
		t.Fatalf("seeds = %v, want the caller's seed 11 untouched", r.seeds)
	}
}

func TestSlicedSeedsAreDerivedAndStable(t *testing.T) {
	seeds := func() []int64 {
		r := &scriptRunner{}
		ex := New(r.run, Policy{SliceShots: 100, Sleep: noSleep})
		if _, err := ex.Run(context.Background(), probeCircuit(), device.IBMQX2(), runOpts(250)); err != nil {
			t.Fatal(err)
		}
		return r.seeds
	}
	a, b := seeds(), seeds()
	if len(a) != 3 {
		t.Fatalf("slices = %d, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slice %d seed not stable: %d vs %d", i, a[i], b[i])
		}
	}
	if a[0] == 11 || a[1] == 11 {
		t.Fatal("sliced runs must use derived seeds, not the caller's")
	}
}

func TestBackoffBounds(t *testing.T) {
	ex := New(func(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt backend.Options) (*dist.Counts, error) {
		return nil, nil
	}, Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond})
	for attempt := 2; attempt <= 12; attempt++ {
		cap := time.Duration(10*time.Millisecond) << uint(attempt-2)
		if cap > 80*time.Millisecond || cap <= 0 {
			cap = 80 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			d := ex.backoff(attempt)
			if d <= 0 || d > cap {
				t.Fatalf("attempt %d: backoff %v outside (0, %v]", attempt, d, cap)
			}
		}
	}
}

func TestBreakerOpenRejectsRun(t *testing.T) {
	r := &scriptRunner{fail: map[int]bool{0: true, 1: true}}
	br := NewBreaker(BreakerOptions{Threshold: 2, Cooldown: time.Hour})
	m := &Metrics{}
	ex := New(r.run, Policy{MaxAttempts: 1, Sleep: noSleep, Breaker: br, Machine: "ibmqx2", Metrics: m})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := ex.Run(ctx, probeCircuit(), device.IBMQX2(), runOpts(10)); err == nil {
			t.Fatal("scripted failure should surface")
		}
	}
	if br.State() != StateOpen {
		t.Fatalf("breaker state %q, want open after 2 failures", br.State())
	}
	_, err := ex.Run(ctx, probeCircuit(), device.IBMQX2(), runOpts(10))
	var boe *BreakerOpenError
	if !errors.As(err, &boe) {
		t.Fatalf("error = %v, want BreakerOpenError", err)
	}
	if boe.Machine != "ibmqx2" || boe.RetryAfter <= 0 {
		t.Fatalf("BreakerOpenError = %+v", boe)
	}
	if r.callCount() != 2 {
		t.Fatal("an open breaker must not dispatch work")
	}
	if s := m.Snapshot(); s.BreakerRejections != 1 {
		t.Fatalf("metrics = %+v, want one breaker rejection", s)
	}
}

func TestContextCancellationDoesNotChargeBreaker(t *testing.T) {
	br := NewBreaker(BreakerOptions{Threshold: 1, Cooldown: time.Hour})
	ex := New(func(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt backend.Options) (*dist.Counts, error) {
		return nil, ctx.Err()
	}, Policy{MaxAttempts: 3, Sleep: noSleep, Breaker: br})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ex.Run(ctx, probeCircuit(), device.IBMQX2(), runOpts(10)); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want Canceled", err)
	}
	if br.State() != StateClosed {
		t.Fatalf("breaker state %q: a caller cancellation is not machine failure", br.State())
	}
}

func TestRetryAllowDeniedSurfacesTransient(t *testing.T) {
	r := &scriptRunner{fail: map[int]bool{0: true}}
	m := &Metrics{}
	denied := 0
	ex := New(r.run, Policy{
		MaxAttempts: 4, Sleep: noSleep, Metrics: m,
		RetryAllow: func() bool { denied++; return false },
	})
	_, err := ex.Run(context.Background(), probeCircuit(), device.IBMQX2(), runOpts(100))
	if !IsTransient(err) {
		t.Fatalf("error = %v, want the transient error surfaced un-retried", err)
	}
	if r.callCount() != 1 {
		t.Fatalf("calls = %d, want 1 (budget denied the retry)", r.callCount())
	}
	if denied != 1 {
		t.Fatalf("RetryAllow consulted %d times, want 1", denied)
	}
	if s := m.Snapshot(); s.BudgetDenials != 1 || s.Retries != 0 {
		t.Fatalf("metrics = %+v, want one budget denial and zero retries", s)
	}
}

func TestRetryAllowGrantedRetries(t *testing.T) {
	r := &scriptRunner{fail: map[int]bool{0: true}}
	ex := New(r.run, Policy{
		MaxAttempts: 4, Sleep: noSleep,
		RetryAllow: func() bool { return true },
	})
	counts, err := ex.Run(context.Background(), probeCircuit(), device.IBMQX2(), runOpts(100))
	if err != nil {
		t.Fatal(err)
	}
	if counts.Total() != 100 || r.callCount() != 2 {
		t.Fatalf("total = %d calls = %d, want 100 over 2 calls", counts.Total(), r.callCount())
	}
}

package resilient_test

import (
	"context"
	"testing"
	"time"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/chaos"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/kernels"
	"biasmit/internal/resilient"
)

// newMachine builds a machine whose execution path is a sliced retrying
// executor, optionally under fault injection. Both sides of the
// determinism comparison share the slice size, because slicing (not
// fault placement) defines the random streams.
func newMachine(t *testing.T, plan chaos.Plan, workers int) *core.Machine {
	t.Helper()
	ex := resilient.New(plan.Wrap(backend.RunContext), resilient.Policy{
		MaxAttempts: 60,
		SliceShots:  64,
		Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	})
	m := core.NewMachine(device.IBMQX2())
	m.Workers = workers
	m.Run = ex.Run
	return m
}

func equalCounts(t *testing.T, label string, a, b *dist.Counts) {
	t.Helper()
	if a.Total() != b.Total() {
		t.Fatalf("%s: totals differ: %d vs %d", label, a.Total(), b.Total())
	}
	for _, o := range a.Outcomes() {
		if a.Get(o) != b.Get(o) {
			t.Fatalf("%s: outcome %v: %d vs %d", label, o, a.Get(o), b.Get(o))
		}
	}
}

// TestPoliciesByteIdenticalUnderFaults is the acceptance property of the
// resilience layer: with fault injection at a 30% rate and a fixed seed,
// baseline, SIM, and AIM distributions — and the brute-force RBMS
// profile feeding AIM — are byte-identical to the fault-free run at the
// same seed and worker count.
func TestPoliciesByteIdenticalUnderFaults(t *testing.T) {
	ctx := context.Background()
	// 0.22 transient + 0.08 partial = 30% of calls injured.
	faults := chaos.Plan{Seed: 7, TransientRate: 0.22, PartialRate: 0.08}
	bench := kernels.BV("bv-0111", bitstring.MustParse("0111"))
	const shots, seed = 2000, 2019

	type result struct {
		rbms     core.RBMS
		baseline *dist.Counts
		sim      *dist.Counts
		aim      *dist.Counts
	}
	runAll := func(plan chaos.Plan, workers int) result {
		t.Helper()
		m := newMachine(t, plan, workers)
		job, err := core.NewJob(bench.Circuit, m)
		if err != nil {
			t.Fatal(err)
		}
		var res result
		if res.rbms, err = job.Profiler().BruteForceContext(ctx, 128, seed+1); err != nil {
			t.Fatal(err)
		}
		if res.baseline, err = job.BaselineContext(ctx, shots, seed+2); err != nil {
			t.Fatal(err)
		}
		sim, err := core.SIM4Context(ctx, job, shots, seed+3)
		if err != nil {
			t.Fatal(err)
		}
		res.sim = sim.Merged
		aim, err := core.AIMContext(ctx, job, res.rbms, core.AIMConfig{}, shots, seed+4)
		if err != nil {
			t.Fatal(err)
		}
		res.aim = aim.Merged
		return res
	}

	clean := runAll(chaos.Plan{}, 2)
	faulty := runAll(faults, 2)
	for i, s := range clean.rbms.Strength {
		if s != faulty.rbms.Strength[i] {
			t.Fatalf("RBMS strength[%d] differs under faults: %v vs %v", i, s, faulty.rbms.Strength[i])
		}
	}
	equalCounts(t, "baseline", clean.baseline, faulty.baseline)
	equalCounts(t, "sim", clean.sim, faulty.sim)
	equalCounts(t, "aim", clean.aim, faulty.aim)

	// Worker count must not change results either (the repo-wide
	// contract), including under faults.
	sequential := runAll(faults, 1)
	equalCounts(t, "baseline seq-vs-par", clean.baseline, sequential.baseline)
	equalCounts(t, "sim seq-vs-par", clean.sim, sequential.sim)
	equalCounts(t, "aim seq-vs-par", clean.aim, sequential.aim)
}

package resilient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"biasmit/internal/backend"
)

func TestIsTransient(t *testing.T) {
	transient := &backend.TransientError{Op: "run", Err: errors.New("queue hiccup")}
	budget := &backend.BudgetError{Shots: -1}
	for _, tc := range []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("boom"), false},
		{"transient", transient, true},
		{"wrapped transient", fmt.Errorf("slice 2/4: %w", transient), true},
		{"budget", budget, false},
		{"wrapped budget", fmt.Errorf("checking: %w", budget), false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"transient wrapping canceled", &backend.TransientError{Op: "x", Err: context.Canceled}, false},
		{"transient wrapping budget", &backend.TransientError{Op: "x", Err: budget}, false},
		{"budget wrapping transient", fmt.Errorf("%w via %w", budget, transient), false},
	} {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("%s: IsTransient = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// FuzzIsTransient builds random wrapped error chains from a byte script
// and checks the permanent-first invariant: any chain containing a
// *backend.BudgetError (or a context ending) is never classified
// transient, no matter how many transient wrappers surround it.
func FuzzIsTransient(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2})
	f.Add(int64(2), []byte{1, 1, 1, 0})
	f.Add(int64(3), []byte{3, 2, 1, 0, 4})
	f.Fuzz(func(t *testing.T, seed int64, script []byte) {
		rng := rand.New(rand.NewSource(seed))
		var err error = errors.New("base")
		hasBudget, hasCtx, hasTransient := false, false, false
		for _, op := range script {
			switch op % 5 {
			case 0:
				err = fmt.Errorf("layer %d: %w", rng.Intn(100), err)
			case 1:
				err = &backend.TransientError{Op: "fuzz", Err: err}
				hasTransient = true
			case 2:
				err = fmt.Errorf("%w (budget %w)", err, &backend.BudgetError{Shots: rng.Intn(10) - 5})
				hasBudget = true
			case 3:
				err = fmt.Errorf("%w after %w", err, context.Canceled)
				hasCtx = true
			case 4:
				err = fmt.Errorf("%w after %w", err, context.DeadlineExceeded)
				hasCtx = true
			}
		}
		got := IsTransient(err)
		if hasBudget || hasCtx {
			if got {
				t.Fatalf("chain with permanent marker classified transient: %v", err)
			}
			return
		}
		if got != hasTransient {
			t.Fatalf("IsTransient = %v, want %v for %v", got, hasTransient, err)
		}
	})
}

// Package api defines the wire contract of the biasmitd HTTP API: the
// request and response bodies of every route, the stable error envelope,
// and the protocol version string. It is the single source of truth
// shared by the server (internal/server) and the typed Go client
// (internal/client), so the two cannot drift apart — a field added here
// is visible on both sides at compile time.
//
// The package is deliberately free of server and simulator imports; it
// is plain data. See DESIGN.md §"API contract" for the route-by-route
// table.
package api

import (
	"encoding/json"
	"fmt"
	"time"
)

// Version is the protocol version stamped on every response envelope as
// "api_version". Clients should check it before interpreting fields;
// breaking changes bump it and move the routes to a new prefix.
const Version = "v1"

// TraceHeader carries the request's ULID trace ID. The server mints one
// per request when the header is absent or malformed, adopts it when
// valid (so the typed client can pre-assign IDs), and always echoes the
// effective ID back as the same response header. The envelope's
// trace_id field carries the identical value in the body.
const TraceHeader = "X-Trace-Id"

// HedgeHeader marks a hedged duplicate of an in-flight request: the
// typed client's WithHedgedReads sets it to "true" on the second
// attempt, which reuses the first attempt's trace ID instead of minting
// a new trace. The server tags the trace hedge=true so both attempts
// are distinguishable under one ID.
const HedgeHeader = "X-Hedged"

// Stable error codes of the biasmitd API. Clients should branch on
// these, never on message text.
const (
	// CodeBadRequest marks malformed or semantically invalid input.
	CodeBadRequest = "bad_request"
	// CodeBadBudget marks a shot budget outside the accepted range —
	// non-positive, above backend.MaxShots, or above the server's
	// per-request cap.
	CodeBadBudget = "bad_budget"
	// CodeUnknownMachine marks a machine name with no device model.
	CodeUnknownMachine = "unknown_machine"
	// CodeUnknownBenchmark marks an unrecognized benchmark identifier.
	CodeUnknownBenchmark = "unknown_benchmark"
	// CodeProfileStale marks an AIM request that required a cached
	// profile when none is cached (or the cached one outlived its TTL).
	CodeProfileStale = "profile_stale"
	// CodeDeadlineExceeded marks a request that ran out of its deadline.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeBreakerOpen marks a request refused because the target
	// machine's circuit breaker is open after repeated failures; the
	// response carries a Retry-After header with the cooldown remainder.
	CodeBreakerOpen = "breaker_open"
	// CodeUpstreamTransient marks a run that kept failing transiently
	// even after the server's retry budget; the request is safe to retry.
	CodeUpstreamTransient = "upstream_transient"
	// CodeOverloaded marks a request shed by admission control: the
	// adaptive concurrency limiter's queue was full or timed out, or the
	// request could not finish inside its propagated deadline budget.
	// The response carries a Retry-After header; clients must not retry
	// sooner (HTTP 503). The request did no work and is safe to retry.
	CodeOverloaded = "overloaded"
	// CodeCanceled marks a request whose context was canceled (usually a
	// client disconnect or server drain).
	CodeCanceled = "canceled"
	// CodeBodyTooLarge marks a request body over the server's byte cap;
	// the request was rejected before any of it was processed (HTTP 413).
	CodeBodyTooLarge = "body_too_large"
	// CodeJobNotFound marks a job ID the queue does not know — never
	// issued, or already evicted from the terminal-job retention window.
	CodeJobNotFound = "job_not_found"
	// CodeQuotaExceeded marks a job submission rejected by the tenant's
	// admission quota: too many of the tenant's jobs are already queued
	// or running (HTTP 429). Wait for some to finish and resubmit.
	CodeQuotaExceeded = "quota_exceeded"
	// CodeJobTerminal marks a cancel of a job already in a terminal
	// state (done, failed, or cancelled) — there is nothing to stop.
	CodeJobTerminal = "job_terminal"
	// CodeMethodNotAllowed marks a wrong HTTP method on a known route.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotFound marks an unknown route.
	CodeNotFound = "not_found"
	// CodeInternal marks an unexpected server-side failure.
	CodeInternal = "internal"
)

// Envelope carries the fields common to every response body: the
// protocol version and the request's trace ID. Response types embed
// it; the server stamps both in its JSON writer, so handlers cannot
// forget them.
type Envelope struct {
	APIVersion string `json:"api_version"`
	// TraceID is the request's ULID trace ID — the same value as the
	// X-Trace-Id response header. Quote it when reporting a slow or
	// failed request; the server's /debug/traces and logs key on it.
	TraceID string `json:"trace_id,omitempty"`
}

// SetAPIVersion stamps the version; the server's response writer calls
// it on every body it serializes.
func (e *Envelope) SetAPIVersion(v string) { e.APIVersion = v }

// SetTraceID stamps the trace ID; the server's response writer calls
// it on every body it serializes.
func (e *Envelope) SetTraceID(id string) { e.TraceID = id }

// Error is the stable wire shape of every biasmitd failure: a machine
// readable code plus a human-readable message, delivered as
// {"api_version":...,"error":{"code":...,"message":...}} with the
// matching HTTP status.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// TraceID identifies the failed request for support lookups; it
	// duplicates the envelope's trace_id so the error survives being
	// unwrapped from the envelope (e.g. inside JobInfo.Error).
	TraceID string `json:"trace_id,omitempty"`
	Status  int    `json:"-"` // HTTP status, not serialized
	// RetryAfter, when positive, is surfaced as a Retry-After header —
	// set on breaker_open responses with the breaker's remaining
	// cooldown. The client restores it from the header, so the field
	// round-trips even though it is not part of the JSON body.
	RetryAfter time.Duration `json:"-"`
	// RetryAfterSet records that the server sent an explicit
	// Retry-After header — including `Retry-After: 0`, which means
	// "retry immediately" and is distinct from no header at all (the
	// client then falls back to its own default cooldown).
	RetryAfterSet bool `json:"-"`
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// ErrorEnvelope wraps an Error on the wire.
type ErrorEnvelope struct {
	Envelope
	Error *Error `json:"error"`
}

// MitigateRequest is the body of POST /v1/mitigate.
type MitigateRequest struct {
	// Machine names the device model (ibmqx2, ibmqx4, ibmq-melbourne).
	Machine string `json:"machine"`
	// Policy selects the measurement policy: baseline, sim, or aim.
	Policy string `json:"policy"`
	// Benchmark names a paper workload (bv-4A … qaoa-7) or uses the
	// bv:<key> / prep:<bits> / ghz-<n> shorthands. Mutually exclusive
	// with QASM.
	Benchmark string `json:"benchmark,omitempty"`
	// QASM carries an OpenQASM 2.0 program to run instead of a named
	// benchmark.
	QASM string `json:"qasm,omitempty"`
	// Shots is the trial budget for the run (required).
	Shots int `json:"shots"`
	// Seed makes the run deterministic; zero selects 1.
	Seed int64 `json:"seed,omitempty"`
	// Modes is the SIM inversion-string count (1, 2, 4, or 8; default 4).
	Modes int `json:"modes,omitempty"`
	// CanaryFraction tunes AIM's canary budget (default 0.25).
	CanaryFraction float64 `json:"canary_fraction,omitempty"`
	// K is AIM's adaptive candidate count (default 4).
	K int `json:"k,omitempty"`
	// ProfileMethod forces the AIM characterization method (brute, esct,
	// awct); empty or "auto" picks brute for ≤5 qubits, awct beyond.
	ProfileMethod string `json:"profile_method,omitempty"`
	// RequireCachedProfile makes an AIM request fail with profile_stale
	// instead of characterizing in-line when no fresh profile is cached.
	RequireCachedProfile bool `json:"require_cached_profile,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline
	// (capped at the server maximum).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Top bounds how many outcomes the response lists (default 10).
	Top int `json:"top,omitempty"`
}

// OutcomeCount is one output-histogram row.
type OutcomeCount struct {
	Outcome     string  `json:"outcome"`
	Count       int     `json:"count"`
	Probability float64 `json:"probability"`
}

// PolicyMetrics carries the paper's reliability metrics for a run whose
// correct answer is known.
type PolicyMetrics struct {
	PST  float64 `json:"pst"`
	IST  float64 `json:"ist"`
	ROCA int     `json:"roca"`
}

// AIMCandidate is one canary-phase candidate with its tailored
// inversion string.
type AIMCandidate struct {
	Output     string  `json:"output"`
	Likelihood float64 `json:"likelihood"`
	Inversion  string  `json:"inversion"`
}

// ProfileInfo describes a cached RBMS profile.
type ProfileInfo struct {
	Machine            string    `json:"machine"`
	Width              int       `json:"width"`
	Method             string    `json:"method"`
	Layout             []int     `json:"layout"`
	Shots              int       `json:"shots"`
	LearnedAt          time.Time `json:"learned_at"`
	AgeMS              int64     `json:"age_ms"`
	Stale              bool      `json:"stale"`
	Strongest          string    `json:"strongest"`
	HammingCorrelation *float64  `json:"hamming_correlation,omitempty"`
}

// MitigateProfile reports which profile an AIM run used and whether it
// came from the cache. Degraded marks a stale profile served because
// re-characterization failed.
type MitigateProfile struct {
	ProfileInfo
	Cached   bool `json:"cached"`
	Degraded bool `json:"degraded,omitempty"`
}

// MitigateResponse is the body of a successful POST /v1/mitigate.
type MitigateResponse struct {
	Envelope
	Machine          string           `json:"machine"`
	Benchmark        string           `json:"benchmark"`
	Policy           string           `json:"policy"`
	Shots            int              `json:"shots"`
	Seed             int64            `json:"seed"`
	Layout           []int            `json:"layout"`
	Swaps            int              `json:"swaps"`
	Outcomes         []OutcomeCount   `json:"outcomes"`
	DistinctOutcomes int              `json:"distinct_outcomes"`
	Metrics          *PolicyMetrics   `json:"metrics,omitempty"`
	Correct          []string         `json:"correct,omitempty"`
	Strongest        string           `json:"strongest,omitempty"`
	Candidates       []AIMCandidate   `json:"candidates,omitempty"`
	Profile          *MitigateProfile `json:"profile,omitempty"`
	// Degraded is true when the run leaned on stale data (see
	// MitigateProfile.Degraded): the result is usable but the caller
	// should know the machine view behind it is old.
	Degraded bool `json:"degraded,omitempty"`
	// ServedPolicy is the policy actually executed. It equals Policy
	// except under brownout, when the server steps mitigation quality
	// down (aim → sim → baseline) instead of shedding: Policy echoes
	// what was asked, ServedPolicy is what the counts really are.
	ServedPolicy string `json:"served_policy"`
	// BrownoutTier is the server's degradation tier at serving time
	// (0 = full quality, 1 = sim, 2 = baseline). Omitted when zero.
	BrownoutTier int `json:"brownout_tier,omitempty"`
	// CacheHit is true when this response was served from the result
	// cache: the body (ElapsedMS included) is byte-identical to the
	// response the original computation produced; only the envelope
	// and these two cache-metadata fields are stamped per request.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Coalesced is true when this request attached to an identical
	// in-flight computation and received the same bytes as its leader
	// instead of running the pipeline itself.
	Coalesced bool    `json:"coalesced,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// CharacterizeRequest is the body of POST /v1/characterize. The
// characterization budget is a server setting (-profile-shots), not a
// request field, so every caller of a cached profile gets the same
// quality.
type CharacterizeRequest struct {
	Machine string `json:"machine"`
	// Method is brute, esct, or awct; empty or "auto" picks brute for
	// ≤5 qubits, awct beyond.
	Method string `json:"method,omitempty"`
	// Qubits is the register width to characterize; zero selects
	// min(machine, 5) for brute and the machine size otherwise.
	Qubits int `json:"qubits,omitempty"`
	// Force re-learns the profile even if a fresh one is cached.
	Force bool `json:"force,omitempty"`
	// IncludeStrengths adds the relative per-state strengths to the
	// response (always included for widths ≤ 8).
	IncludeStrengths bool `json:"include_strengths,omitempty"`
	// TimeoutMS overrides the default per-request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// CharacterizeResponse is the body of a successful POST /v1/characterize.
type CharacterizeResponse struct {
	Envelope
	Profile ProfileInfo `json:"profile"`
	Cached  bool        `json:"cached"`
	// Degraded is true when the returned profile is stale and
	// re-characterization failed, so the stale one was served instead.
	Degraded  bool      `json:"degraded,omitempty"`
	Strengths []float64 `json:"strengths,omitempty"` // relative, strongest = 1
	ElapsedMS float64   `json:"elapsed_ms"`
}

// ProfilesResponse is the body of GET /v1/profiles. The listing is
// ordered by profile key (machine/width/method) and paginated with
// ?limit= and ?cursor=; NextCursor is set when more pages remain.
type ProfilesResponse struct {
	Envelope
	Profiles []ProfileInfo `json:"profiles"`
	// NextCursor, when non-empty, is the ?cursor= value that fetches
	// the next page. Absent on the last page.
	NextCursor string `json:"next_cursor,omitempty"`
}

// HealthMachine is one machine's health row: the circuit-breaker state
// ("closed", "open", or "half-open") and, when open, how long until the
// next probe.
type HealthMachine struct {
	Machine      string `json:"machine"`
	Breaker      string `json:"breaker"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// Job types accepted by POST /v1/jobs.
const (
	JobTypeMitigate     = "mitigate"
	JobTypeCharacterize = "characterize"
)

// Job lifecycle states. A job moves queued → running → one of the three
// terminal states; a crash or drain can move it running → queued again
// (counted in JobInfo.Requeues) before it reaches a terminal state
// exactly once.
const (
	JobStateQueued    = "queued"
	JobStateRunning   = "running"
	JobStateDone      = "done"
	JobStateFailed    = "failed"
	JobStateCancelled = "cancelled"
)

// JobSubmitRequest is the body of POST /v1/jobs: exactly one of Mitigate
// or Characterize, matching Type. The submitting tenant is taken from
// the X-API-Key header ("anon" when absent), never from the body.
type JobSubmitRequest struct {
	// Type selects the job kind: "mitigate" or "characterize".
	Type string `json:"type"`
	// Mitigate is the work of a mitigate job — the same body a
	// synchronous POST /v1/mitigate takes, executed identically (same
	// seed ⇒ byte-identical outcomes).
	Mitigate *MitigateRequest `json:"mitigate,omitempty"`
	// Characterize is the work of a characterize job.
	Characterize *CharacterizeRequest `json:"characterize,omitempty"`
	// Priority is the scheduling class: higher runs first within the
	// tenant's share. Zero is the normal class.
	Priority int `json:"priority,omitempty"`
	// MaxAttempts bounds execution attempts when the run fails
	// transiently (upstream_transient, breaker_open): the scheduler
	// requeues and retries up to this many attempts total. Zero or one
	// disables job-level retries (the per-run retry budget inside the
	// executor still applies).
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// JobInfo is the wire view of one queued/running/finished job.
type JobInfo struct {
	ID       string `json:"id"`
	Type     string `json:"type"`
	State    string `json:"state"`
	Tenant   string `json:"tenant"`
	Priority int    `json:"priority,omitempty"`
	// SubmittedAt/StartedAt/FinishedAt trace the lifecycle; the latter
	// two are unset until the job reaches the matching state.
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// Attempts counts executions started; Requeues counts times the job
	// went back from running to queued (crash recovery, drain, retry).
	Attempts int `json:"attempts,omitempty"`
	Requeues int `json:"requeues,omitempty"`
	// BatchSize is how many compatible jobs shared the micro-batch this
	// job last ran in (1 = ran alone).
	BatchSize int `json:"batch_size,omitempty"`
	// CancelRequested is true once DELETE /v1/jobs/{id} has been
	// accepted for a job that was already running; the job winds down to
	// cancelled asynchronously.
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// Error carries the failure of a failed job (stable code + message).
	Error *Error `json:"error,omitempty"`
	// TraceID is the trace under which the job was submitted. It is
	// persisted with the job spec, so a job recovered after a crash
	// keeps the trace ID its submitter saw.
	TraceID string `json:"trace_id,omitempty"`
}

// JobResponse is the body of POST /v1/jobs (202), GET /v1/jobs/{id},
// and DELETE /v1/jobs/{id}.
type JobResponse struct {
	Envelope
	Job JobInfo `json:"job"`
	// Result is the response body the equivalent synchronous call would
	// have produced (a MitigateResponse or CharacterizeResponse), set
	// once the job is done.
	Result json.RawMessage `json:"result,omitempty"`
}

// JobListResponse is the body of GET /v1/jobs. Results are omitted;
// fetch a job by ID for its result. The listing is ordered by job ID
// (ULIDs, so submission order) and paginated with ?limit= and
// ?cursor=; NextCursor is set when more pages remain.
type JobListResponse struct {
	Envelope
	Jobs []JobInfo `json:"jobs"`
	// NextCursor, when non-empty, is the ?cursor= value that fetches
	// the next page. Absent on the last page.
	NextCursor string `json:"next_cursor,omitempty"`
}

// HealthResponse is the body of GET /healthz. Status is "ok" when every
// breaker is closed and no cached profile is stale, "degraded" when any
// breaker is not closed or stale profiles are being served, and
// "unavailable" (HTTP 503) when every machine's breaker is open.
type HealthResponse struct {
	Envelope
	Status         string          `json:"status"`
	UptimeMS       int64           `json:"uptime_ms"`
	Machines       []HealthMachine `json:"machines,omitempty"`
	ProfilesCached int             `json:"profiles_cached"`
	ProfilesStale  int             `json:"profiles_stale"`
	// JobsQueued/JobsRunning expose the async queue depth; a queue past
	// the server's high-water mark flips Status to "unavailable" (503)
	// so load balancers stop routing new work here.
	JobsQueued  int `json:"jobs_queued"`
	JobsRunning int `json:"jobs_running"`
	// OldestQueuedMS is the age of the oldest still-queued job — the
	// honest backlog signal (a deep queue of fresh jobs is busy; a
	// shallow queue of old jobs is stuck).
	OldestQueuedMS int64 `json:"oldest_queued_ms,omitempty"`
	// BrownoutTier is the current quality-degradation tier
	// (0 full, 1 sim, 2 baseline). Omitted when zero.
	BrownoutTier int `json:"brownout_tier,omitempty"`
}

// TraceSpan is one completed stage of a trace: its offset from the
// trace start and its wall time, both in milliseconds.
type TraceSpan struct {
	Name       string            `json:"name"`
	StartMS    float64           `json:"start_ms"`
	DurationMS float64           `json:"duration_ms"`
	Tags       map[string]string `json:"tags,omitempty"`
}

// TraceEntry is one finished request or job execution as recorded by
// the server's trace ring buffer.
type TraceEntry struct {
	TraceID string    `json:"trace_id"`
	Route   string    `json:"route"`
	Status  int       `json:"status"`
	Start   time.Time `json:"start"`
	// ElapsedMS is the end-to-end wall time; the spans tile it, so
	// their durations sum to approximately this value.
	ElapsedMS   float64           `json:"elapsed_ms"`
	Spans       []TraceSpan       `json:"spans,omitempty"`
	Annotations []string          `json:"annotations,omitempty"`
	Tags        map[string]string `json:"tags,omitempty"`
}

// TracesResponse is the body of GET /debug/traces: the most recent
// completed traces, newest first. With ?slow=1 the listing is instead
// the retained slow-request exemplars (requests over the server's
// -slow-request threshold).
type TracesResponse struct {
	Envelope
	Traces []TraceEntry `json:"traces"`
	// SlowThresholdMS is the server's slow-request exemplar threshold.
	SlowThresholdMS int64 `json:"slow_threshold_ms"`
}

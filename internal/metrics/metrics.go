// Package metrics implements the reliability figures of merit the paper
// uses to evaluate NISQ executions (§4.2):
//
//   - PST, Probability of a Successful Trial — the fraction of trials
//     that produced the error-free answer;
//   - IST, Inference Strength — the ratio of the correct answer's
//     frequency to the strongest incorrect answer's frequency (IST > 1
//     means the correct answer can be inferred by majority);
//   - ROCA, Rank of Correct Answer — the position of the correct answer
//     in the frequency-sorted output log.
//
// It also provides the statistical helpers used by the characterization
// sections: Pearson correlation (the paper reports r = −0.93 between BMS
// and Hamming weight on ibmqx2) and mean-squared error (ESCT validation).
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"biasmit/internal/bitstring"
	"biasmit/internal/dist"
)

// PST returns the probability of a successful trial for a single correct
// answer.
func PST(d dist.Dist, correct bitstring.Bits) float64 {
	return d.Prob(correct)
}

// PSTEquiv returns the PST when several outcomes are all correct. QAOA
// max-cut has two: the optimal partition and its complement label the
// same cut, so the paper sums both frequencies (§4.2.1).
func PSTEquiv(d dist.Dist, correct ...bitstring.Bits) float64 {
	seen := make(map[bitstring.Bits]bool, len(correct))
	var p float64
	for _, c := range correct {
		if seen[c] {
			continue
		}
		seen[c] = true
		p += d.Prob(c)
	}
	return p
}

// IST returns the inference strength: P(correct)/P(strongest incorrect).
// The correct set may contain several equivalent answers (QAOA cut and
// complement); their mass is pooled and every one of them is excluded
// from the "incorrect" side. If no incorrect outcome was observed the
// correct answer is unmaskable and IST is +Inf; if the correct answer
// never appeared IST is 0.
func IST(d dist.Dist, correct ...bitstring.Bits) float64 {
	isCorrect := make(map[bitstring.Bits]bool, len(correct))
	var pCorrect float64
	for _, c := range correct {
		if !isCorrect[c] {
			isCorrect[c] = true
			pCorrect += d.Prob(c)
		}
	}
	var pWorst float64
	for b, p := range d.P {
		if !isCorrect[b] && p > pWorst {
			pWorst = p
		}
	}
	if pWorst == 0 {
		if pCorrect == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return pCorrect / pWorst
}

// ROCA returns the 1-based rank of the correct answer in the output log
// sorted by descending frequency. With several equivalent correct
// answers the best (lowest) rank among them is returned.
func ROCA(d dist.Dist, correct ...bitstring.Bits) int {
	if len(correct) == 0 {
		panic("metrics: ROCA with no correct answers")
	}
	best := math.MaxInt
	for _, c := range correct {
		if r := d.Rank(c); r < best {
			best = r
		}
	}
	return best
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns an error when the lengths differ, fewer than two points are
// given, or either series is constant (undefined correlation).
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("metrics: series lengths %d and %d differ", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("metrics: need at least 2 points, got %d", len(x))
	}
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, fmt.Errorf("metrics: constant series has undefined correlation")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns the Spearman rank correlation between x and y: the
// Pearson correlation of their rank series. It measures whether two
// measurement-strength profiles order the basis states the same way,
// which is the paper's §6.1 repeatability criterion across calibration
// cycles.
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("metrics: series lengths %d and %d differ", len(x), len(y))
	}
	return Pearson(ranks(x), ranks(y))
}

// ranks converts values to fractional ranks (ties averaged).
func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	out := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// MSE returns the mean squared error between two equal-length series.
func MSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: series lengths %d and %d differ", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("metrics: empty series")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s / float64(len(a)), nil
}

// BootstrapCI estimates a confidence interval for any statistic of an
// output log by resampling the histogram with replacement. PST has a
// closed-form interval (dist.Counts.WilsonInterval), but IST and ROCA do
// not — their sampling distributions depend on the gap between the
// correct answer and its strongest competitor — so experiments report
// them with bootstrap intervals.
//
// iters resamples are drawn (a few hundred suffice); confidence is the
// two-sided level, e.g. 0.95. The returned interval is the empirical
// percentile range of the statistic across resamples.
func BootstrapCI(counts *dist.Counts, stat func(dist.Dist) float64, iters int, confidence float64, seed int64) (lo, hi float64, err error) {
	if counts.Total() == 0 {
		return 0, 0, fmt.Errorf("metrics: bootstrap on an empty histogram")
	}
	if iters < 10 {
		return 0, 0, fmt.Errorf("metrics: need at least 10 bootstrap iterations, got %d", iters)
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, fmt.Errorf("metrics: confidence %v out of (0,1)", confidence)
	}
	sampler := dist.NewSampler(counts.Dist())
	rng := rand.New(rand.NewSource(seed))
	values := make([]float64, iters)
	for i := range values {
		resampled := sampler.SampleCounts(rng, counts.Total())
		values[i] = stat(resampled.Dist())
	}
	sort.Float64s(values)
	alpha := (1 - confidence) / 2
	loIdx := int(alpha * float64(iters))
	hiIdx := int((1 - alpha) * float64(iters))
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	return values[loIdx], values[hiIdx], nil
}

// Relative rescales a series by its maximum, producing the "relative"
// measurement-strength curves of Figs 4, 5, 11 and 15 (strongest state
// normalized to 1). A zero or empty series is returned unchanged.
func Relative(v []float64) []float64 {
	max := 0.0
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	out := make([]float64, len(v))
	if max == 0 {
		copy(out, v)
		return out
	}
	for i, x := range v {
		out[i] = x / max
	}
	return out
}

// AverageByHammingWeight groups a per-basis-state series (indexed by
// packed basis value) by Hamming weight and averages each group — the
// aggregation used in Fig 5. The returned slice has width+1 entries.
func AverageByHammingWeight(v []float64, width int) []float64 {
	if len(v) != 1<<uint(width) {
		panic(fmt.Sprintf("metrics: series length %d does not match width %d", len(v), width))
	}
	sums := make([]float64, width+1)
	counts := make([]int, width+1)
	for i, x := range v {
		w := bitstring.New(uint64(i), width).HammingWeight()
		sums[w] += x
		counts[w]++
	}
	for w := range sums {
		sums[w] /= float64(counts[w])
	}
	return sums
}

// HammingWeightSeries returns, for each packed basis value of the given
// width, its Hamming weight as a float — the x variable in the paper's
// BMS-vs-weight correlations.
func HammingWeightSeries(width int) []float64 {
	out := make([]float64, 1<<uint(width))
	for i := range out {
		out[i] = float64(bitstring.New(uint64(i), width).HammingWeight())
	}
	return out
}

package metrics

import (
	"math"
	"testing"

	"biasmit/internal/bitstring"
	"biasmit/internal/dist"
)

func bs(s string) bitstring.Bits { return bitstring.MustParse(s) }

func sampleDist() dist.Dist {
	return dist.Dist{Width: 3, P: map[bitstring.Bits]float64{
		bs("101"): 0.35, bs("001"): 0.45, bs("100"): 0.15, bs("000"): 0.05,
	}}
}

func TestPST(t *testing.T) {
	d := sampleDist()
	if got := PST(d, bs("101")); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("PST = %v", got)
	}
	if got := PST(d, bs("111")); got != 0 {
		t.Errorf("PST of unseen = %v", got)
	}
}

func TestPSTEquiv(t *testing.T) {
	d := sampleDist()
	// QAOA counts a cut and its complement: 101 and 010.
	if got := PSTEquiv(d, bs("101"), bs("010")); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("PSTEquiv = %v", got)
	}
	d.P[bs("010")] = 0.10
	if got := PSTEquiv(d, bs("101"), bs("010")); math.Abs(got-0.45) > 1e-12 {
		t.Errorf("PSTEquiv with both = %v", got)
	}
	// Duplicate equivalents must not double-count.
	if got := PSTEquiv(d, bs("101"), bs("101")); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("PSTEquiv duplicate = %v", got)
	}
}

func TestIST(t *testing.T) {
	d := sampleDist()
	// Correct 101 (0.35); strongest incorrect 001 (0.45) → IST < 1: the
	// paper's Fig 7(A) scenario where the wrong answer dominates.
	if got := IST(d, bs("101")); math.Abs(got-0.35/0.45) > 1e-12 {
		t.Errorf("IST = %v", got)
	}
	// Correct 001 → strongest incorrect 101 → IST > 1.
	if got := IST(d, bs("001")); math.Abs(got-0.45/0.35) > 1e-12 {
		t.Errorf("IST = %v", got)
	}
}

func TestISTEdgeCases(t *testing.T) {
	only := dist.Dist{Width: 2, P: map[bitstring.Bits]float64{bs("01"): 1}}
	if got := IST(only, bs("01")); !math.IsInf(got, 1) {
		t.Errorf("IST with no incorrect = %v, want +Inf", got)
	}
	if got := IST(only, bs("10")); got != 0 {
		t.Errorf("IST with no correct = %v, want 0", got)
	}
	if got := IST(dist.NewDist(2), bs("10")); got != 0 {
		t.Errorf("IST on empty dist = %v, want 0", got)
	}
}

func TestISTPoolsEquivalents(t *testing.T) {
	d := dist.Dist{Width: 2, P: map[bitstring.Bits]float64{
		bs("01"): 0.3, bs("10"): 0.3, bs("00"): 0.4,
	}}
	if got := IST(d, bs("01"), bs("10")); math.Abs(got-0.6/0.4) > 1e-12 {
		t.Errorf("pooled IST = %v", got)
	}
}

func TestROCA(t *testing.T) {
	d := sampleDist()
	if got := ROCA(d, bs("001")); got != 1 {
		t.Errorf("ROCA best = %d", got)
	}
	if got := ROCA(d, bs("101")); got != 2 {
		t.Errorf("ROCA second = %d", got)
	}
	if got := ROCA(d, bs("000")); got != 4 {
		t.Errorf("ROCA last = %d", got)
	}
	// Equivalent answers: best rank wins.
	if got := ROCA(d, bs("000"), bs("001")); got != 1 {
		t.Errorf("ROCA equivalents = %d", got)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	yPos := []float64{1, 3, 5, 7, 9}
	if r, err := Pearson(x, yPos); err != nil || math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect positive: r=%v err=%v", r, err)
	}
	yNeg := []float64{9, 7, 5, 3, 1}
	if r, err := Pearson(x, yNeg); err != nil || math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect negative: r=%v err=%v", r, err)
	}
	if _, err := Pearson(x, yPos[:3]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Pearson(x, []float64{2, 2, 2, 2, 2}); err == nil {
		t.Error("constant series accepted")
	}
}

func TestMSE(t *testing.T) {
	got, err := MSE([]float64{1, 2, 3}, []float64{1, 2, 5})
	if err != nil || math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("MSE = %v err=%v", got, err)
	}
	if _, err := MSE([]float64{1}, []float64{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MSE(nil, nil); err == nil {
		t.Error("empty series accepted")
	}
}

func TestRelative(t *testing.T) {
	got := Relative([]float64{0.5, 1.0, 0.25})
	want := []float64{0.5, 1.0, 0.25}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Relative[%d] = %v", i, got[i])
		}
	}
	got2 := Relative([]float64{0.2, 0.4})
	if math.Abs(got2[1]-1) > 1e-12 || math.Abs(got2[0]-0.5) > 1e-12 {
		t.Errorf("Relative rescale = %v", got2)
	}
	zero := Relative([]float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("Relative of zeros = %v", zero)
	}
}

func TestAverageByHammingWeight(t *testing.T) {
	// Width 2: states 00,01,10,11 with values 1.0, 0.8, 0.6, 0.2.
	got := AverageByHammingWeight([]float64{1.0, 0.8, 0.6, 0.2}, 2)
	want := []float64{1.0, 0.7, 0.2}
	for w := range want {
		if math.Abs(got[w]-want[w]) > 1e-12 {
			t.Errorf("avg[weight %d] = %v, want %v", w, got[w], want[w])
		}
	}
}

func TestHammingWeightSeries(t *testing.T) {
	got := HammingWeightSeries(3)
	want := []float64{0, 1, 1, 2, 1, 2, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("weight[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBiasedBMSCorrelatesNegatively(t *testing.T) {
	// A synthetic asymmetric readout gives the paper's strong negative
	// correlation between BMS and Hamming weight.
	const n = 5
	bms := make([]float64, 1<<n)
	for i := range bms {
		w := bitstring.New(uint64(i), n).HammingWeight()
		bms[i] = math.Pow(0.98, float64(n-w)) * math.Pow(0.88, float64(w))
	}
	r, err := Pearson(HammingWeightSeries(n), bms)
	if err != nil {
		t.Fatal(err)
	}
	if r > -0.9 {
		t.Errorf("correlation = %v, want strongly negative", r)
	}
}

func TestSpearman(t *testing.T) {
	// Monotone but nonlinear relation: Spearman 1, Pearson < 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	rho, err := Spearman(x, y)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Errorf("Spearman = %v, err=%v", rho, err)
	}
	rev := []float64{125, 64, 27, 8, 1}
	rho, err = Spearman(x, rev)
	if err != nil || math.Abs(rho+1) > 1e-12 {
		t.Errorf("reversed Spearman = %v, err=%v", rho, err)
	}
	if _, err := Spearman(x, y[:3]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSpearmanHandlesTies(t *testing.T) {
	x := []float64{1, 2, 2, 3}
	y := []float64{10, 20, 20, 30}
	rho, err := Spearman(x, y)
	if err != nil || math.Abs(rho-1) > 1e-12 {
		t.Errorf("tied Spearman = %v, err=%v", rho, err)
	}
}

func TestRanks(t *testing.T) {
	got := ranks([]float64{30, 10, 20, 10})
	want := []float64{4, 1.5, 3, 1.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

func TestBootstrapCIBracketsTruth(t *testing.T) {
	// 60/40 histogram: the IST of the majority outcome is 1.5; a 95%
	// bootstrap interval from 10k trials should bracket it tightly.
	c := dist.NewCounts(1)
	c.Add(bs("0"), 6000)
	c.Add(bs("1"), 4000)
	stat := func(d dist.Dist) float64 { return IST(d, bs("0")) }
	lo, hi, err := BootstrapCI(c, stat, 300, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 1.5 && 1.5 < hi) {
		t.Errorf("interval [%v,%v] does not bracket 1.5", lo, hi)
	}
	if hi-lo > 0.3 {
		t.Errorf("interval too wide at n=10000: [%v,%v]", lo, hi)
	}
}

func TestBootstrapCIShrinksWithSamples(t *testing.T) {
	small := dist.NewCounts(1)
	small.Add(bs("0"), 60)
	small.Add(bs("1"), 40)
	big := dist.NewCounts(1)
	big.Add(bs("0"), 60000)
	big.Add(bs("1"), 40000)
	stat := func(d dist.Dist) float64 { return PST(d, bs("0")) }
	lo1, hi1, err := BootstrapCI(small, stat, 300, 0.95, 2)
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := BootstrapCI(big, stat, 300, 0.95, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("interval did not shrink: [%v,%v] vs [%v,%v]", lo2, hi2, lo1, hi1)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	c := dist.NewCounts(1)
	c.Add(bs("0"), 70)
	c.Add(bs("1"), 30)
	stat := func(d dist.Dist) float64 { return PST(d, bs("0")) }
	lo1, hi1, _ := BootstrapCI(c, stat, 100, 0.9, 7)
	lo2, hi2, _ := BootstrapCI(c, stat, 100, 0.9, 7)
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("same seed produced different intervals")
	}
}

func TestBootstrapCIValidation(t *testing.T) {
	c := dist.NewCounts(1)
	stat := func(d dist.Dist) float64 { return 0 }
	if _, _, err := BootstrapCI(c, stat, 100, 0.95, 1); err == nil {
		t.Error("empty histogram accepted")
	}
	c.Add(bs("0"), 5)
	if _, _, err := BootstrapCI(c, stat, 5, 0.95, 1); err == nil {
		t.Error("too few iterations accepted")
	}
	if _, _, err := BootstrapCI(c, stat, 100, 1.5, 1); err == nil {
		t.Error("bad confidence accepted")
	}
}

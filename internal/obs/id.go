package obs

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Trace IDs are ULID-shaped, the same text form the job queue uses for
// job IDs: a 48-bit millisecond timestamp followed by 80 bits of
// entropy, rendered as 26 characters of Crockford base32. Lexicographic
// order is therefore mint-time order, which keeps /debug/traces and log
// greps naturally chronological, and the alphabet (no I, L, O, U)
// survives transcription into a support ticket.

const traceIDLen = 26

// crockford is the base32 alphabet ULIDs use.
const crockford = "0123456789ABCDEFGHJKMNPQRSTVWXYZ"

// traceIDGen mints ordered trace IDs. Safe for concurrent use.
type traceIDGen struct {
	mu      sync.Mutex
	now     func() time.Time
	rnd     *rand.Rand
	lastMS  uint64
	entropy [10]byte
}

func newTraceIDGen(now func() time.Time) *traceIDGen {
	if now == nil {
		now = time.Now
	}
	var seed [8]byte
	if _, err := cryptorand.Read(seed[:]); err != nil {
		binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	}
	return &traceIDGen{now: now, rnd: rand.New(rand.NewSource(int64(binary.LittleEndian.Uint64(seed[:]))))}
}

func (g *traceIDGen) next() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	ms := uint64(g.now().UnixMilli())
	if ms <= g.lastMS {
		// Same (or rewound) millisecond: bump the entropy so the new ID
		// still sorts after the previous one.
		ms = g.lastMS
		for i := len(g.entropy) - 1; i >= 0; i-- {
			g.entropy[i]++
			if g.entropy[i] != 0 {
				break
			}
		}
	} else {
		g.lastMS = ms
		binary.LittleEndian.PutUint64(g.entropy[0:8], g.rnd.Uint64())
		binary.LittleEndian.PutUint16(g.entropy[8:10], uint16(g.rnd.Uint32()))
	}
	return encodeTraceID(ms, g.entropy)
}

// encodeTraceID renders 48 bits of timestamp plus 80 bits of entropy as
// 26 Crockford base32 characters (the standard ULID text form).
func encodeTraceID(ms uint64, entropy [10]byte) string {
	var bin [16]byte
	bin[0] = byte(ms >> 40)
	bin[1] = byte(ms >> 32)
	bin[2] = byte(ms >> 24)
	bin[3] = byte(ms >> 16)
	bin[4] = byte(ms >> 8)
	bin[5] = byte(ms)
	copy(bin[6:], entropy[:])

	var out [traceIDLen]byte
	var acc uint32
	bits := 0
	j := traceIDLen - 1
	for i := len(bin) - 1; i >= 0; i-- {
		acc |= uint32(bin[i]) << bits
		bits += 8
		for bits >= 5 && j >= 0 {
			out[j] = crockford[acc&31]
			acc >>= 5
			bits -= 5
			j--
		}
	}
	for j >= 0 {
		out[j] = crockford[acc&31]
		acc >>= 5
		j--
	}
	return string(out[:])
}

var defaultIDGen = newTraceIDGen(nil)

// NewTraceID mints one trace ID from the process-wide generator.
func NewTraceID() string { return defaultIDGen.next() }

// ValidTraceID reports whether s is shaped like a trace ID: 26
// Crockford base32 characters. The server uses it to decide whether an
// inbound X-Trace-Id header is worth adopting.
func ValidTraceID(s string) error {
	if len(s) != traceIDLen {
		return fmt.Errorf("obs: trace ID %q has length %d, want %d", s, len(s), traceIDLen)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := (c >= '0' && c <= '9') ||
			(c >= 'A' && c <= 'Z' && c != 'I' && c != 'L' && c != 'O' && c != 'U')
		if !ok {
			return fmt.Errorf("obs: trace ID %q has invalid character %q", s, c)
		}
	}
	return nil
}

// Package obs is the request-scoped observability layer: ULID trace
// IDs, wall-time spans, a leveled JSON logger, and a recorder that
// keeps the last N completed traces for /debug/traces plus per-stage
// latency histograms for /metrics.
//
// The package is deliberately a leaf — standard library only, no
// imports from the rest of the module — so every layer (server, jobs,
// resilient, backend, client) can annotate a trace through the
// context without cycles. Every method on Trace and Span is safe on a
// nil receiver: code paths that run without a trace (tests, library
// use of the executor) pay one nil check and no allocation.
package obs

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// maxAnnotations bounds a trace's annotation list so a retry storm
// cannot grow one request's trace without bound.
const maxAnnotations = 32

// SpanData is one completed stage of a trace, offsets relative to the
// trace's start.
type SpanData struct {
	Name       string            `json:"name"`
	StartMS    float64           `json:"start_ms"`
	DurationMS float64           `json:"duration_ms"`
	Tags       map[string]string `json:"tags,omitempty"`
}

// TraceData is a finished trace: the immutable snapshot the recorder
// stores, /debug/traces serves, and the request log line embeds.
type TraceData struct {
	TraceID     string            `json:"trace_id"`
	Route       string            `json:"route"`
	Status      int               `json:"status"`
	Start       time.Time         `json:"start"`
	ElapsedMS   float64           `json:"elapsed_ms"`
	Spans       []SpanData        `json:"spans,omitempty"`
	Annotations []string          `json:"annotations,omitempty"`
	Tags        map[string]string `json:"tags,omitempty"`
}

// Trace accumulates spans, tags, and annotations for one request (or
// one async job execution). It is created at the edge, carried in the
// context, and finished exactly once when the response is written.
// Safe for concurrent use; all methods tolerate a nil receiver.
type Trace struct {
	id    string
	start time.Time
	now   func() time.Time

	mu     sync.Mutex
	spans  []SpanData
	notes  []string
	tags   map[string]string
	capped bool
}

// NewTrace starts a trace. An empty or malformed id mints a fresh one,
// so callers can pass an inbound X-Trace-Id header unvalidated. A nil
// clock selects time.Now.
func NewTrace(id string, now func() time.Time) *Trace {
	if now == nil {
		now = time.Now
	}
	if ValidTraceID(id) != nil {
		id = NewTraceID()
	}
	return &Trace{id: id, start: now(), now: now}
}

// ID returns the trace ID, or "" on a nil trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns when the trace began.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// SetTag attaches a key/value to the whole trace (e.g. hedge=true,
// tenant, job_id). Last write per key wins.
func (t *Trace) SetTag(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.tags == nil {
		t.tags = make(map[string]string)
	}
	t.tags[key] = value
}

// Annotate appends a free-form event to the trace — retries, salvages,
// budget denials. Bounded; past the cap new annotations are dropped
// and a single "... (truncated)" marker records the loss.
func (t *Trace) Annotate(format string, args ...any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.notes) >= maxAnnotations {
		if !t.capped {
			t.capped = true
			t.notes = append(t.notes, "... (truncated)")
		}
		return
	}
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// StartSpan opens a named stage. End it (idempotently) to record its
// wall time. Returns a nil span on a nil trace; that nil span's
// methods are all no-ops.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, name: name, start: t.now()}
}

// AddSpan records a stage that was measured externally — queue wait
// computed from timestamps, batch wait measured by the scheduler. The
// span is placed as if it ended now and lasted d.
func (t *Trace) AddSpan(name string, d time.Duration) {
	if t == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	end := t.now()
	startMS := end.Add(-d).Sub(t.start).Seconds() * 1e3
	if startMS < 0 {
		startMS = 0
	}
	t.record(SpanData{Name: name, StartMS: startMS, DurationMS: d.Seconds() * 1e3})
}

func (t *Trace) record(sd SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, sd)
}

// Finish closes the trace and returns the immutable snapshot. The
// trace remains usable (idempotent snapshots), but by convention it is
// finished once, by whoever minted it.
func (t *Trace) Finish(route string, status int) TraceData {
	if t == nil {
		return TraceData{}
	}
	elapsed := t.now().Sub(t.start)
	t.mu.Lock()
	defer t.mu.Unlock()
	td := TraceData{
		TraceID:   t.id,
		Route:     route,
		Status:    status,
		Start:     t.start,
		ElapsedMS: elapsed.Seconds() * 1e3,
	}
	if len(t.spans) > 0 {
		td.Spans = append([]SpanData(nil), t.spans...)
	}
	if len(t.notes) > 0 {
		td.Annotations = append([]string(nil), t.notes...)
	}
	if len(t.tags) > 0 {
		td.Tags = make(map[string]string, len(t.tags))
		for k, v := range t.tags {
			td.Tags[k] = v
		}
	}
	return td
}

// Span is one in-progress stage of a trace.
type Span struct {
	tr    *Trace
	name  string
	start time.Time

	mu   sync.Mutex
	tags map[string]string
	done bool
}

// Tag attaches a key/value to this span (e.g. cached=true on the
// characterize stage). Returns the span for chaining.
func (s *Span) Tag(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tags == nil {
		s.tags = make(map[string]string)
	}
	s.tags[key] = value
	return s
}

// End records the span's wall time into its trace. Idempotent; safe on
// a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	tags := s.tags
	s.mu.Unlock()

	end := s.tr.now()
	s.tr.record(SpanData{
		Name:       s.name,
		StartMS:    s.start.Sub(s.tr.start).Seconds() * 1e3,
		DurationMS: end.Sub(s.start).Seconds() * 1e3,
		Tags:       tags,
	})
}

// ctxKey is the private context key carrying the *Trace.
type ctxKey struct{}

// WithTrace returns a context carrying the trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil — and nil is fine:
// every Trace/Span method no-ops on nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// StartSpan opens a span on the context's trace (no-op span if none).
func StartSpan(ctx context.Context, name string) *Span {
	return FromContext(ctx).StartSpan(name)
}

// Annotate appends an event to the context's trace, if any.
func Annotate(ctx context.Context, format string, args ...any) {
	FromContext(ctx).Annotate(format, args...)
}

// TraceID returns the context's trace ID, or "".
func TraceID(ctx context.Context) string {
	return FromContext(ctx).ID()
}

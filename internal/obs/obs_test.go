package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic span timing.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestTraceIDShapeAndOrder(t *testing.T) {
	gen := newTraceIDGen(nil)
	prev := ""
	for i := 0; i < 1000; i++ {
		id := gen.next()
		if err := ValidTraceID(id); err != nil {
			t.Fatalf("minted invalid ID: %v", err)
		}
		if id <= prev {
			t.Fatalf("IDs not strictly increasing: %q then %q", prev, id)
		}
		prev = id
	}
	if err := ValidTraceID(""); err == nil {
		t.Fatal("empty string validated as a trace ID")
	}
	if err := ValidTraceID(strings.Repeat("I", 26)); err == nil {
		t.Fatal("excluded alphabet character validated")
	}
	if err := ValidTraceID(NewTraceID()); err != nil {
		t.Fatalf("package-level NewTraceID invalid: %v", err)
	}
}

func TestTraceSpansAndFinish(t *testing.T) {
	clk := newFakeClock()
	tr := NewTrace("", clk.now)
	if err := ValidTraceID(tr.ID()); err != nil {
		t.Fatalf("minted trace ID invalid: %v", err)
	}

	clk.advance(10 * time.Millisecond)
	sp := tr.StartSpan("sample")
	clk.advance(40 * time.Millisecond)
	sp.Tag("shots", "512").End()
	sp.End() // idempotent

	tr.AddSpan("queue_wait", 5*time.Millisecond)
	tr.SetTag("tenant", "team-a")
	tr.Annotate("retry %d: %v", 1, fmt.Errorf("transient"))

	clk.advance(50 * time.Millisecond)
	td := tr.Finish("/v1/mitigate", 200)

	if td.TraceID != tr.ID() || td.Route != "/v1/mitigate" || td.Status != 200 {
		t.Fatalf("snapshot header wrong: %+v", td)
	}
	if math.Abs(td.ElapsedMS-100) > 1e-9 {
		t.Fatalf("elapsed = %g ms, want 100", td.ElapsedMS)
	}
	if len(td.Spans) != 2 {
		t.Fatalf("spans = %+v, want 2", td.Spans)
	}
	sample := td.Spans[0]
	if sample.Name != "sample" || math.Abs(sample.StartMS-10) > 1e-9 || math.Abs(sample.DurationMS-40) > 1e-9 {
		t.Fatalf("sample span wrong: %+v", sample)
	}
	if sample.Tags["shots"] != "512" {
		t.Fatalf("sample span lost its tag: %+v", sample)
	}
	qw := td.Spans[1]
	if qw.Name != "queue_wait" || math.Abs(qw.DurationMS-5) > 1e-9 || math.Abs(qw.StartMS-45) > 1e-9 {
		t.Fatalf("queue_wait span wrong: %+v", qw)
	}
	if td.Tags["tenant"] != "team-a" {
		t.Fatalf("trace tag lost: %+v", td.Tags)
	}
	if len(td.Annotations) != 1 || td.Annotations[0] != "retry 1: transient" {
		t.Fatalf("annotations wrong: %+v", td.Annotations)
	}
}

func TestTraceAdoptsValidInboundID(t *testing.T) {
	id := NewTraceID()
	if got := NewTrace(id, nil).ID(); got != id {
		t.Fatalf("valid inbound ID %q replaced with %q", id, got)
	}
	if got := NewTrace("not-a-ulid", nil).ID(); got == "not-a-ulid" {
		t.Fatal("malformed inbound ID adopted verbatim")
	}
}

func TestAnnotationCap(t *testing.T) {
	tr := NewTrace("", nil)
	for i := 0; i < maxAnnotations+10; i++ {
		tr.Annotate("note %d", i)
	}
	td := tr.Finish("r", 200)
	if len(td.Annotations) != maxAnnotations+1 {
		t.Fatalf("got %d annotations, want %d + truncation marker", len(td.Annotations), maxAnnotations)
	}
	if td.Annotations[maxAnnotations] != "... (truncated)" {
		t.Fatalf("last annotation = %q, want truncation marker", td.Annotations[maxAnnotations])
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	tr.SetTag("k", "v")
	tr.Annotate("x")
	tr.AddSpan("s", time.Second)
	sp := tr.StartSpan("s")
	sp.Tag("k", "v")
	sp.End()
	if tr.ID() != "" || tr.Finish("r", 200).TraceID != "" {
		t.Fatal("nil trace produced non-zero data")
	}

	ctx := context.Background()
	if FromContext(ctx) != nil || TraceID(ctx) != "" {
		t.Fatal("empty context yielded a trace")
	}
	StartSpan(ctx, "s").End()
	Annotate(ctx, "x")
	if WithTrace(ctx, nil) != ctx {
		t.Fatal("WithTrace(nil) should return ctx unchanged")
	}

	var lg *Logger
	lg.Info("dropped")
	lg.Logf("dropped %d", 1)
	if lg.Enabled(LevelError) {
		t.Fatal("nil logger claims to be enabled")
	}

	var rec *Recorder
	rec.Record(TraceData{})
	if rec.Last(1) != nil || rec.Slow() != nil || rec.Stages() != nil {
		t.Fatal("nil recorder produced data")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTrace("", nil)
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr || TraceID(ctx) != tr.ID() {
		t.Fatal("context round-trip lost the trace")
	}
	StartSpan(ctx, "stage").End()
	Annotate(ctx, "via ctx")
	td := tr.Finish("r", 200)
	if len(td.Spans) != 1 || len(td.Annotations) != 1 {
		t.Fatalf("context helpers did not reach the trace: %+v", td)
	}
}

func TestLoggerJSONShape(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelInfo)
	lg.now = newFakeClock().now

	lg.Debug("dropped")
	lg.Info("request", "trace_id", "ABC", "status", 200, "elapsed_ms", 12.5,
		"err", fmt.Errorf("boom"), "odd_key")
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("wrote %d lines, want 1 (debug filtered): %q", got, buf.String())
	}

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	for k, want := range map[string]any{
		"level": "info", "msg": "request", "trace_id": "ABC",
		"status": float64(200), "elapsed_ms": 12.5, "err": "boom", "odd_key": "(MISSING)",
	} {
		if rec[k] != want {
			t.Fatalf("field %q = %v, want %v", k, rec[k], want)
		}
	}
	if _, err := time.Parse(time.RFC3339Nano, rec["ts"].(string)); err != nil {
		t.Fatalf("ts field unparseable: %v", err)
	}

	// Key order is argument order, after the fixed header.
	line := buf.String()
	if !strings.HasPrefix(line, `{"ts":`) ||
		strings.Index(line, `"trace_id"`) > strings.Index(line, `"status"`) {
		t.Fatalf("key order not preserved: %s", line)
	}
}

func TestLoggerLevelsAndLogf(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, LevelWarn)
	lg.Info("nope")
	lg.Logf("nope %d", 2) // Logf is info-level
	lg.Warn("yes")
	lg.Error("also")
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("min=warn wrote %d lines, want 2:\n%s", got, buf.String())
	}

	buf.Reset()
	lg = NewLogger(&buf, LevelInfo)
	lg.Logf("watchdog: task %q stalled for %v", "batch", time.Second)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("Logf line not JSON: %v", err)
	}
	if rec["msg"] != `watchdog: task "batch" stalled for 1s` {
		t.Fatalf("Logf msg = %q", rec["msg"])
	}

	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "": LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

func TestRecorderRingAndSlow(t *testing.T) {
	rec := NewRecorder(4, 100*time.Millisecond)
	for i := 0; i < 10; i++ {
		rec.Record(TraceData{
			TraceID:   fmt.Sprintf("T%02d", i),
			ElapsedMS: float64(i * 30), // 0,30,...,270: i>=4 crosses 100ms
		})
	}
	last := rec.Last(0)
	if len(last) != 4 {
		t.Fatalf("ring kept %d, want 4", len(last))
	}
	for i, want := range []string{"T09", "T08", "T07", "T06"} {
		if last[i].TraceID != want {
			t.Fatalf("Last[%d] = %q, want %q (newest first)", i, last[i].TraceID, want)
		}
	}
	if got := rec.Last(2); len(got) != 2 || got[0].TraceID != "T09" {
		t.Fatalf("Last(2) = %+v", got)
	}

	slow := rec.Slow()
	if len(slow) != 6 {
		t.Fatalf("slow ring kept %d, want 6 (elapsed >= 100ms)", len(slow))
	}
	if slow[0].TraceID != "T09" || slow[5].TraceID != "T04" {
		t.Fatalf("slow exemplars wrong: %+v", slow)
	}
	for _, td := range slow {
		if td.ElapsedMS < 100 {
			t.Fatalf("fast trace %q in slow ring", td.TraceID)
		}
	}
}

func TestRecorderStages(t *testing.T) {
	rec := NewRecorder(8, time.Second)
	rec.Record(TraceData{Spans: []SpanData{
		{Name: "sample", DurationMS: 40},
		{Name: "sample", DurationMS: 400},
		{Name: "serialize", DurationMS: 1},
	}})
	st := rec.Stages()
	sm := st["sample"]
	if sm.Count != 2 || math.Abs(sm.Sum-0.44) > 1e-9 {
		t.Fatalf("sample stage = %+v", sm)
	}
	// 40ms lands in the (0.02, 0.05] bucket, 400ms in (0.25, 0.5].
	if i := sort.SearchFloat64s(StageBuckets, 0.04); sm.Counts[i] != 1 {
		t.Fatalf("40ms not in bucket %d: %+v", i, sm.Counts)
	}
	if st["serialize"].Count != 1 {
		t.Fatalf("serialize stage = %+v", st["serialize"])
	}
	// Snapshot is a deep copy: mutating it must not corrupt the recorder.
	sm.Counts[0] = 999
	if rec.Stages()["sample"].Counts[0] == 999 {
		t.Fatal("Stages() returned shared storage")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder(16, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Record(TraceData{TraceID: fmt.Sprintf("g%d-%d", g, i),
					ElapsedMS: 5, Spans: []SpanData{{Name: "s", DurationMS: 1}}})
				rec.Last(4)
				rec.Slow()
				rec.Stages()
			}
		}(g)
	}
	wg.Wait()
	if got := rec.Stages()["s"].Count; got != 800 {
		t.Fatalf("stage count = %d, want 800", got)
	}
}

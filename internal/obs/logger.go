package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level is a log severity. Records below the logger's minimum are
// dropped before formatting.
type Level int

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String renders the level the way it appears in the JSON record.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "info"
	}
}

// ParseLevel maps a -log-level flag value to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// Logger writes structured JSON lines: {"ts":...,"level":...,"msg":...}
// followed by the caller's key/value pairs in argument order. One line
// per record, one Write call per line, serialized by a mutex so
// concurrent handlers never interleave bytes. Safe on a nil receiver
// (drops everything), so optional logging costs one nil check.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	now func() time.Time
}

// NewLogger builds a logger writing to w, dropping records below min.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min, now: time.Now}
}

// Enabled reports whether records at lv would be written.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= l.min
}

// Debug logs at debug level. kv alternates string keys and values.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv...) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv...) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv...) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv...) }

// Logf is the printf bridge for components that take a plain
// `func(format string, args ...any)` sink (the watchdog, server
// Config.Logf). Records at info level with the formatted text as msg.
func (l *Logger) Logf(format string, args ...any) {
	l.log(LevelInfo, fmt.Sprintf(format, args...))
}

func (l *Logger) log(lv Level, msg string, kv ...any) {
	if !l.Enabled(lv) {
		return
	}
	var buf bytes.Buffer
	buf.WriteByte('{')
	buf.WriteString(`"ts":`)
	appendJSON(&buf, l.now().UTC().Format(time.RFC3339Nano))
	buf.WriteString(`,"level":`)
	appendJSON(&buf, lv.String())
	buf.WriteString(`,"msg":`)
	appendJSON(&buf, msg)
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			key = fmt.Sprint(kv[i])
		}
		var val any = "(MISSING)"
		if i+1 < len(kv) {
			val = kv[i+1]
		}
		buf.WriteByte(',')
		appendJSON(&buf, key)
		buf.WriteByte(':')
		appendJSON(&buf, val)
	}
	buf.WriteString("}\n")

	l.mu.Lock()
	defer l.mu.Unlock()
	l.w.Write(buf.Bytes()) //nolint:errcheck // logging is best-effort
}

// appendJSON marshals v onto buf, falling back to the %v rendering for
// values encoding/json refuses (channels, NaN floats, cyclic data).
func appendJSON(buf *bytes.Buffer, v any) {
	if err, ok := v.(error); ok && err != nil {
		v = err.Error()
	}
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	buf.Write(b)
}

package obs

import (
	"sort"
	"sync"
	"time"
)

// StageBuckets are the per-stage latency histogram bounds in seconds,
// matching the server's request-latency buckets so stage and
// end-to-end distributions line up on the same dashboard axis.
var StageBuckets = []float64{0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// StageHist is one stage's aggregated latency distribution.
type StageHist struct {
	Counts []uint64 // per-bucket (non-cumulative), one extra for +Inf
	Sum    float64  // seconds
	Count  uint64
}

// slowExemplars is how many over-threshold traces the exemplar ring
// retains (newest win).
const slowExemplars = 8

// Recorder aggregates finished traces: a last-N ring for
// /debug/traces, a slow-request exemplar ring for /metrics, and
// per-stage latency histograms. Safe for concurrent use and on a nil
// receiver.
type Recorder struct {
	mu     sync.Mutex
	ring   []TraceData // circular, last N completed traces
	next   int
	count  uint64 // total recorded, for ring unwinding
	slow   []TraceData
	snext  int
	scount uint64
	thresh time.Duration
	stages map[string]*StageHist
}

// NewRecorder keeps the last n traces and flags traces slower than
// thresh as slow-request exemplars. n < 1 defaults to 256; thresh <= 0
// defaults to 500ms.
func NewRecorder(n int, thresh time.Duration) *Recorder {
	if n < 1 {
		n = 256
	}
	if thresh <= 0 {
		thresh = 500 * time.Millisecond
	}
	return &Recorder{
		ring:   make([]TraceData, n),
		slow:   make([]TraceData, slowExemplars),
		thresh: thresh,
		stages: make(map[string]*StageHist),
	}
}

// SlowThreshold returns the exemplar threshold.
func (r *Recorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.thresh
}

// Record folds one finished trace into the rings and histograms.
func (r *Recorder) Record(td TraceData) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring[r.next] = td
	r.next = (r.next + 1) % len(r.ring)
	r.count++
	if time.Duration(td.ElapsedMS*float64(time.Millisecond)) >= r.thresh {
		r.slow[r.snext] = td
		r.snext = (r.snext + 1) % len(r.slow)
		r.scount++
	}
	for _, sp := range td.Spans {
		h := r.stages[sp.Name]
		if h == nil {
			h = &StageHist{Counts: make([]uint64, len(StageBuckets)+1)}
			r.stages[sp.Name] = h
		}
		sec := sp.DurationMS / 1e3
		h.Counts[sort.SearchFloat64s(StageBuckets, sec)]++
		h.Sum += sec
		h.Count++
	}
}

// unwind copies a circular buffer newest-first: ring holds the last
// min(count, len) entries ending just before next.
func unwind(ring []TraceData, next int, count uint64) []TraceData {
	n := len(ring)
	if count < uint64(n) {
		n = int(count)
	}
	out := make([]TraceData, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ring[((next-1-i)%len(ring)+len(ring))%len(ring)])
	}
	return out
}

// Last returns up to n of the most recent traces, newest first. n < 1
// returns everything retained.
func (r *Recorder) Last(n int) []TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := unwind(r.ring, r.next, r.count)
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Slow returns the retained slow-request exemplars, newest first.
func (r *Recorder) Slow() []TraceData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return unwind(r.slow, r.snext, r.scount)
}

// Stages snapshots the per-stage histograms (deep copies, safe to
// render without the lock).
func (r *Recorder) Stages() map[string]StageHist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]StageHist, len(r.stages))
	for name, h := range r.stages {
		out[name] = StageHist{
			Counts: append([]uint64(nil), h.Counts...),
			Sum:    h.Sum,
			Count:  h.Count,
		}
	}
	return out
}

package rescache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHitMiss is the basic contract: first call computes, second call
// with the same key+generation returns the stored bytes untouched.
func TestHitMiss(t *testing.T) {
	c := New(Options{})
	ctx := context.Background()

	var runs atomic.Int64
	compute := func(context.Context) (Computed, error) {
		runs.Add(1)
		return Computed{Value: []byte("result"), Gen: 1, Store: true}, nil
	}

	v, out, err := c.Do(ctx, "k", 1, compute)
	if err != nil || out != Miss || string(v) != "result" {
		t.Fatalf("first Do = %q, %v, %v; want result, miss, nil", v, out, err)
	}
	v, out, err = c.Do(ctx, "k", 1, compute)
	if err != nil || out != Hit || string(v) != "result" {
		t.Fatalf("second Do = %q, %v, %v; want result, hit, nil", v, out, err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != int64(len("result")) {
		t.Fatalf("stats %+v; want 1 hit, 1 miss, 1 entry, %d bytes", st, len("result"))
	}
}

// TestGenerationInvalidation: bumping the profile generation must
// invalidate the dependent entry — the stale bytes are never served.
func TestGenerationInvalidation(t *testing.T) {
	c := New(Options{})
	ctx := context.Background()

	mk := func(tag string, g uint64) func(context.Context) (Computed, error) {
		return func(context.Context) (Computed, error) {
			return Computed{Value: []byte(tag), Gen: g, Store: true}, nil
		}
	}

	if v, out, _ := c.Do(ctx, "k", 1, mk("gen1", 1)); out != Miss || string(v) != "gen1" {
		t.Fatalf("gen1 Do = %q, %v", v, out)
	}
	// Same key, new generation: the gen-1 entry must be dropped and
	// the computation re-run.
	v, out, err := c.Do(ctx, "k", 2, mk("gen2", 2))
	if err != nil || out != Miss || string(v) != "gen2" {
		t.Fatalf("gen2 Do = %q, %v, %v; want gen2, miss, nil", v, out, err)
	}
	st := c.Stats()
	if st.Invalidated != 1 {
		t.Fatalf("invalidated = %d, want 1", st.Invalidated)
	}
	// The new generation is now the cached one.
	if v, out, _ := c.Do(ctx, "k", 2, mk("gen2-again", 2)); out != Hit || string(v) != "gen2" {
		t.Fatalf("gen2 re-Do = %q, %v; want cached gen2 hit", v, out)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != int64(len("gen2")) {
		t.Fatalf("stats %+v; want exactly the gen2 entry accounted", st)
	}
}

// TestCoalescing: N concurrent identical requests run the computation
// exactly once and every waiter receives the identical bytes.
func TestCoalescing(t *testing.T) {
	c := New(Options{})
	ctx := context.Background()

	const n = 16
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(context.Context) (Computed, error) {
		runs.Add(1)
		close(started)
		<-release
		return Computed{Value: []byte("shared"), Gen: 3, Store: true}, nil
	}

	type res struct {
		v   []byte
		out Outcome
		err error
	}
	results := make(chan res, n)

	// Leader first, so the computation is registered and parked before
	// the followers arrive.
	go func() {
		v, out, err := c.Do(ctx, "k", 3, compute)
		results <- res{v, out, err}
	}()
	<-started
	var wg sync.WaitGroup
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, out, err := c.Do(ctx, "k", 3, func(context.Context) (Computed, error) {
				t.Error("a coalesced caller ran compute")
				return Computed{}, nil
			})
			results <- res{v, out, err}
		}()
	}
	// Let the followers reach the coalescing point before releasing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := c.Stats(); st.Coalesced == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("followers never coalesced: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	var misses, coalesced int
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil || string(r.v) != "shared" {
			t.Fatalf("waiter got %q, %v; want shared, nil", r.v, r.err)
		}
		switch r.out {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		}
	}
	if misses != 1 || coalesced != n-1 {
		t.Fatalf("outcomes: %d misses, %d coalesced; want 1 and %d", misses, coalesced, n-1)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", got)
	}
	if st := c.Stats(); st.Coalesced != n-1 {
		t.Fatalf("coalesced counter %d, want %d", st.Coalesced, n-1)
	}
}

// TestWaiterCancelDoesNotCancelComputation: a waiter abandoning the
// wait gets its own ctx error; the shared computation runs to
// completion on the detached context and its result is still cached.
func TestWaiterCancelDoesNotCancelComputation(t *testing.T) {
	c := New(Options{})

	started := make(chan struct{})
	release := make(chan struct{})
	var sawCancel atomic.Bool
	compute := func(cctx context.Context) (Computed, error) {
		close(started)
		<-release
		if cctx.Err() != nil {
			sawCancel.Store(true)
		}
		return Computed{Value: []byte("survived"), Gen: 1, Store: true}, nil
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, "k", 1, compute)
		leaderDone <- err
	}()
	<-started

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	cancelWaiter()
	_, out, err := c.Do(waiterCtx, "k", 1, compute)
	if !errors.Is(err, context.Canceled) || out != Coalesced {
		t.Fatalf("canceled waiter got %v, %v; want context.Canceled, coalesced", out, err)
	}

	// Even the leader hanging up must not kill the computation.
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled leader got %v; want context.Canceled", err)
	}
	close(release)

	// The detached computation finishes and stores; a fresh caller
	// gets a hit without recomputing.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, out, err := c.Do(context.Background(), "k", 1, func(context.Context) (Computed, error) {
			return Computed{Value: []byte("recomputed"), Gen: 1, Store: true}, nil
		})
		if err != nil {
			t.Fatalf("post-cancel Do: %v", err)
		}
		if out == Hit {
			if string(v) != "survived" {
				t.Fatalf("cached value %q, want the detached computation's %q", v, "survived")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detached computation's result never became a hit")
		}
		time.Sleep(time.Millisecond)
	}
	if sawCancel.Load() {
		t.Fatal("the detached computation observed a canceled context")
	}
}

// TestErrorsNotCached: a failed computation fans its error out and
// leaves nothing behind; the next call retries.
func TestErrorsNotCached(t *testing.T) {
	c := New(Options{})
	ctx := context.Background()

	boom := errors.New("boom")
	_, out, err := c.Do(ctx, "k", 1, func(context.Context) (Computed, error) {
		return Computed{}, boom
	})
	if !errors.Is(err, boom) || out != Miss {
		t.Fatalf("failing Do = %v, %v; want boom, miss", out, err)
	}
	v, out, err := c.Do(ctx, "k", 1, func(context.Context) (Computed, error) {
		return Computed{Value: []byte("ok"), Gen: 1, Store: true}, nil
	})
	if err != nil || out != Miss || string(v) != "ok" {
		t.Fatalf("retry Do = %q, %v, %v; want ok, miss, nil", v, out, err)
	}
	st := c.Stats()
	if st.Errors != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v; want 1 error and only the retry's entry", st)
	}
}

// TestComputePanicBecomesError: a panicking computation must not crash
// the process (it runs on a bare goroutine) — waiters get an error.
func TestComputePanicBecomesError(t *testing.T) {
	c := New(Options{})
	_, out, err := c.Do(context.Background(), "k", 1, func(context.Context) (Computed, error) {
		panic("kaboom")
	})
	if err == nil || out != Miss {
		t.Fatalf("panicking Do = %v, %v; want error, miss", out, err)
	}
	if st := c.Stats(); st.Errors != 1 || st.Entries != 0 {
		t.Fatalf("stats %+v; want 1 error, nothing cached", st)
	}
}

// TestStoreFalseFansOutWithoutCaching: responses flagged store=false
// (e.g. brownout-degraded) reach every waiter but are never cached.
func TestStoreFalseFansOutWithoutCaching(t *testing.T) {
	c := New(Options{})
	ctx := context.Background()

	v, out, err := c.Do(ctx, "k", 1, func(context.Context) (Computed, error) {
		return Computed{Value: []byte("degraded"), Gen: 1, Store: false}, nil
	})
	if err != nil || out != Miss || string(v) != "degraded" {
		t.Fatalf("store=false Do = %q, %v, %v", v, out, err)
	}
	// Nothing cached: the next call misses again.
	_, out, _ = c.Do(ctx, "k", 1, func(context.Context) (Computed, error) {
		return Computed{Value: []byte("fresh"), Gen: 1, Store: true}, nil
	})
	if out != Miss {
		t.Fatalf("second Do outcome %v, want miss (store=false must not cache)", out)
	}
	if st := c.Stats(); st.Entries != 1 || st.Misses != 2 {
		t.Fatalf("stats %+v; want 2 misses and only the stored entry", st)
	}
}

// TestLRUEviction: the entry bound holds, victims are least recently
// used, and the byte gauge tracks exactly the stored payloads.
func TestLRUEviction(t *testing.T) {
	c := New(Options{MaxEntries: 3})
	ctx := context.Background()

	put := func(key, val string) {
		t.Helper()
		_, _, err := c.Do(ctx, key, 1, func(context.Context) (Computed, error) {
			return Computed{Value: []byte(val), Gen: 1, Store: true}, nil
		})
		if err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	put("a", "aa")
	put("b", "bb")
	put("c", "cc")
	// Touch a so b becomes the LRU victim.
	if _, out, _ := c.Do(ctx, "a", 1, nil); out != Hit {
		t.Fatalf("touch a: outcome %v, want hit", out)
	}
	put("d", "dd")

	st := c.Stats()
	if st.Evicted != 1 || st.Entries != 3 || st.Bytes != 6 {
		t.Fatalf("stats %+v; want 1 eviction, 3 entries, 6 bytes", st)
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, out, _ := c.Do(ctx, k, 1, nil); out != Hit {
			t.Fatalf("%s outcome %v, want hit (should have survived eviction)", k, out)
		}
	}
	// Probe b with store=false so the probe itself cannot evict.
	if _, out, _ := c.Do(ctx, "b", 1, func(context.Context) (Computed, error) {
		return Computed{Value: []byte("bb"), Gen: 1, Store: false}, nil
	}); out != Miss {
		t.Fatalf("b outcome %v, want miss (b was the LRU victim)", out)
	}
}

// TestStoreUnderNewerGeneration: a computation may publish the very
// profile it is keyed on (a cold-start AIM request characterizing
// in-line bumps generation 0 → 1 mid-run) and reports the consumed
// generation back via Computed.Gen. The entry must land under that
// newer generation so the next lookup — which reads the bumped
// generation — hits instead of finding a stillborn gen-0 entry.
func TestStoreUnderNewerGeneration(t *testing.T) {
	c := New(Options{})
	ctx := context.Background()

	var runs atomic.Int64
	v, out, err := c.Do(ctx, "k", 0, func(context.Context) (Computed, error) {
		runs.Add(1)
		return Computed{Value: []byte("cold"), Gen: 1, Store: true}, nil
	})
	if err != nil || out != Miss || string(v) != "cold" {
		t.Fatalf("cold Do = %q, %v, %v; want cold, miss, nil", v, out, err)
	}
	// The next caller sees the bumped generation and must hit.
	v, out, err = c.Do(ctx, "k", 1, func(context.Context) (Computed, error) {
		runs.Add(1)
		return Computed{Value: []byte("warm"), Gen: 1, Store: true}, nil
	})
	if err != nil || out != Hit || string(v) != "cold" {
		t.Fatalf("warm Do = %q, %v, %v; want cached cold bytes, hit, nil", v, out, err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	// A straggler still reading generation 0 invalidates and recomputes
	// rather than being served the newer-generation bytes as a gen-0
	// hit; its recompute reports the current generation again, so the
	// entry it stores does not clobber anything newer.
	_, out, _ = c.Do(ctx, "k", 0, func(context.Context) (Computed, error) {
		return Computed{Value: []byte("straggler"), Gen: 1, Store: true}, nil
	})
	if out != Miss {
		t.Fatalf("straggler outcome %v, want miss (gen mismatch invalidates)", out)
	}
}

// TestInvalidate: the explicit flush drops the entry and counts it.
func TestInvalidate(t *testing.T) {
	c := New(Options{})
	ctx := context.Background()
	if _, _, err := c.Do(ctx, "k", 1, func(context.Context) (Computed, error) {
		return Computed{Value: []byte("v"), Gen: 1, Store: true}, nil
	}); err != nil {
		t.Fatal(err)
	}
	c.Invalidate("k")
	c.Invalidate("k") // absent: no double count
	st := c.Stats()
	if st.Invalidated != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats %+v; want 1 invalidation, empty cache", st)
	}
}

// TestConcurrentHitMissInvalidate hammers one cache from many
// goroutines mixing hits, misses across generations, and explicit
// invalidations. Run under -race; correctness assertion: a caller at
// generation g only ever observes bytes computed for generation g.
func TestConcurrentHitMissInvalidate(t *testing.T) {
	c := New(Options{MaxEntries: 8})
	ctx := context.Background()

	var gen atomic.Uint64
	gen.Store(1)

	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", i%12)
				switch i % 7 {
				case 5:
					gen.Add(1)
				case 6:
					c.Invalidate(key)
				default:
					g := gen.Load()
					want := fmt.Sprintf("%s@%d", key, g)
					v, _, err := c.Do(ctx, key, g, func(context.Context) (Computed, error) {
						return Computed{Value: []byte(want), Gen: g, Store: true}, nil
					})
					if err != nil {
						t.Errorf("Do(%s, %d): %v", key, g, err)
						return
					}
					// The generation check is the staleness contract:
					// bytes from another generation must never leak
					// through, no matter the interleaving.
					if string(v) != want {
						t.Errorf("Do(%s, %d) = %q, want %q", key, g, v, want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	st := c.Stats()
	if st.Entries > 8 {
		t.Fatalf("entries %d exceed the bound 8", st.Entries)
	}
	if st.Misses == 0 {
		t.Fatalf("degenerate run: %+v (the storm never missed)", st)
	}
	// Whether the storm itself produced hits is timing-dependent (gen
	// churn plus eviction pressure can starve them), so prove the hit
	// path deterministically now that the storm is over.
	g := gen.Load()
	probe := func(context.Context) (Computed, error) {
		return Computed{Value: []byte("probe"), Gen: g, Store: true}, nil
	}
	if _, out, _ := c.Do(ctx, "post-storm", g, probe); out != Miss {
		t.Fatalf("post-storm first Do outcome %v, want miss", out)
	}
	if _, out, _ := c.Do(ctx, "post-storm", g, probe); out != Hit {
		t.Fatalf("post-storm second Do outcome %v, want hit", out)
	}
}

// TestHashKey: equal values hash equal, different values differ, and
// field order is fixed by declaration so the digest is stable.
func TestHashKey(t *testing.T) {
	type key struct {
		Machine string
		Shots   int
	}
	a, err := HashKey(key{"ibmqx4", 1024})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := HashKey(key{"ibmqx4", 1024})
	if a != b {
		t.Fatalf("equal values hashed %s vs %s", a, b)
	}
	d, _ := HashKey(key{"ibmqx4", 2048})
	if a == d {
		t.Fatal("different shot budgets collided")
	}
	if len(a) != 64 {
		t.Fatalf("digest %q is not hex sha256", a)
	}
	if _, err := HashKey(func() {}); err == nil {
		t.Fatal("unmarshalable value must error, not silently collide")
	}
}

// Package rescache is the content-addressed mitigation result cache.
//
// Every mitigation result biasmitd serves is a deterministic pure
// function of the canonical request (machine, circuit digest, policy,
// shot budget, seed, api version) and the RBMS profile the run used —
// the PR 1 determinism work and the PR 4 fast-path equality suites
// guarantee byte-identical outputs for identical inputs. That makes
// results safe to cache by content hash and to fan out to concurrent
// identical requests, as long as two hazards are handled:
//
//   - Staleness: an AIM/SIM result computed against profile generation
//     G must never be served after the profile store publishes
//     generation G+1 (re-characterization, refresh, import, eviction).
//     Every entry therefore records the profile generation it was
//     computed under, and lookups compare it against the caller's
//     current generation — a mismatch deletes the entry and counts an
//     invalidation.
//
//   - Torn reads: a waiter must never observe a half-built result, and
//     one waiter's cancellation must not cancel the computation other
//     waiters (or the cache) are depending on. The cache runs each
//     computation exactly once on a detached context and fans the
//     finished bytes out; waiters that give up early get their own
//     ctx error while the computation keeps running to completion.
//
// The cache stores opaque byte slices (in biasmitd: the marshaled
// response body before the per-request envelope is stamped), bounded
// by an entry-count LRU. Callers must treat returned bytes as
// immutable.
package rescache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// Outcome classifies how Do satisfied a request.
type Outcome int

const (
	// Miss: this call ran the computation (it was the singleflight
	// leader). The result may or may not have been stored, per the
	// compute closure's store flag.
	Miss Outcome = iota
	// Hit: the result was served from a cached entry whose profile
	// generation still matches; no computation ran.
	Hit
	// Coalesced: this call attached to an identical in-flight
	// computation started by an earlier request and received the same
	// bytes (or error) the leader produced.
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Stats is a point-in-time snapshot of the cache counters, exported on
// /metrics by the server.
type Stats struct {
	Hits        uint64 // lookups served from a stored entry
	Misses      uint64 // lookups that ran the computation
	Coalesced   uint64 // lookups that joined an in-flight computation
	Evicted     uint64 // entries dropped by the LRU bound
	Invalidated uint64 // entries dropped because their profile generation went stale
	Errors      uint64 // computations that finished with an error (never stored)
	Entries     int    // entries currently stored
	Bytes       int64  // payload bytes currently stored
}

// Computed is one finished computation as the compute closure reports
// it back to the cache.
type Computed struct {
	// Value is the bytes to fan out to every waiter.
	Value []byte
	// Gen is the profile generation the computation actually consumed
	// — the generation the entry is stored under. It may be newer
	// than the generation the lookup saw when the computation itself
	// (re)published the profile (an AIM request characterizing
	// in-line); storing under the consumed generation keeps the entry
	// valid instead of stillborn.
	Gen uint64
	// Store is false for results that are not pure functions of the
	// request (brownout-degraded policy, stale-profile serving): the
	// bytes fan out to every waiter but nothing is cached.
	Store bool
}

// Options configures a Cache.
type Options struct {
	// MaxEntries bounds the number of stored results; the least
	// recently used entry is evicted past it. Zero or negative
	// selects 1024.
	MaxEntries int
	// Detach derives the context the shared computation runs on from
	// the leader's request context. It must sever cancellation (so one
	// waiter hanging up cannot kill the result every other waiter is
	// blocked on) while keeping request-scoped values (trace,
	// priority class). Nil selects context.WithoutCancel.
	Detach func(context.Context) context.Context
}

// Cache is a bounded, generation-checked LRU of computed results with
// singleflight coalescing. All methods are safe for concurrent use.
type Cache struct {
	maxEntries int
	detach     func(context.Context) context.Context

	mu       sync.Mutex
	entries  map[string]*entry
	inflight map[flightKey]*call
	useSeq   uint64
	bytes    int64

	hits        uint64
	misses      uint64
	coalesced   uint64
	evicted     uint64
	invalidated uint64
	errors      uint64
}

// entry is one stored result.
type entry struct {
	gen     uint64 // profile generation the result was computed under
	value   []byte
	lastUse uint64 // LRU clock (monotonic useSeq at last touch)
}

// flightKey identifies an in-flight computation. The generation is
// part of the identity: a request arriving after a profile bump must
// not coalesce onto a computation keyed to the stale generation.
type flightKey struct {
	key string
	gen uint64
}

// call is one in-flight computation and its fan-out point.
type call struct {
	done  chan struct{}
	value []byte
	err   error
}

// New builds a Cache.
func New(opts Options) *Cache {
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 1024
	}
	if opts.Detach == nil {
		opts.Detach = func(ctx context.Context) context.Context {
			return context.WithoutCancel(ctx)
		}
	}
	return &Cache{
		maxEntries: opts.MaxEntries,
		detach:     opts.Detach,
		entries:    make(map[string]*entry),
		inflight:   make(map[flightKey]*call),
	}
}

// Do returns the cached bytes for key at profile generation gen, or
// runs compute (once across all concurrent callers of the same
// key+gen) and returns its result.
//
// compute receives a detached context — canceling ctx abandons the
// wait but not the shared computation. It reports back a Computed
// (the bytes to fan out, the generation they were computed under, and
// whether to store them) or an error. Errors fan out to every waiter
// and are never cached; the next request retries.
//
// A cached entry whose generation differs from gen is deleted
// (counted as an invalidation) and the lookup proceeds as a miss.
func (c *Cache) Do(ctx context.Context, key string, gen uint64, compute func(context.Context) (Computed, error)) ([]byte, Outcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.gen == gen {
			c.hits++
			c.useSeq++
			e.lastUse = c.useSeq
			v := e.value
			c.mu.Unlock()
			return v, Hit, nil
		}
		// The profile moved on under this entry: drop it and recompute.
		c.invalidated++
		c.removeLocked(key, e)
	}

	fk := flightKey{key: key, gen: gen}
	if cl, ok := c.inflight[fk]; ok {
		c.coalesced++
		c.mu.Unlock()
		return c.wait(ctx, cl, Coalesced)
	}

	// Singleflight leader: register the call, then run compute on a
	// detached goroutine so the leader hanging up cannot strand the
	// waiters that coalesced onto it.
	c.misses++
	cl := &call{done: make(chan struct{})}
	c.inflight[fk] = cl
	c.mu.Unlock()

	go c.run(c.detach(ctx), fk, cl, compute)
	return c.wait(ctx, cl, Miss)
}

// run executes one computation and publishes its result.
func (c *Cache) run(ctx context.Context, fk flightKey, cl *call, compute func(context.Context) (Computed, error)) {
	var (
		res Computed
		err error
	)
	func() {
		// The computation runs on a bare goroutine — a panic here
		// would crash the daemon with no net/http recovery between.
		// Convert it to an error and fan that out instead.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("rescache: compute panicked: %v", r)
			}
		}()
		res, err = compute(ctx)
	}()

	c.mu.Lock()
	delete(c.inflight, fk)
	switch {
	case err != nil:
		c.errors++
	case res.Store:
		c.storeLocked(fk.key, res.Gen, res.Value)
	}
	c.mu.Unlock()

	cl.value, cl.err = res.Value, err
	close(cl.done)
}

// wait blocks until the computation finishes or ctx is done. The
// computation keeps running either way.
func (c *Cache) wait(ctx context.Context, cl *call, outcome Outcome) ([]byte, Outcome, error) {
	select {
	case <-cl.done:
		return cl.value, outcome, cl.err
	case <-ctx.Done():
		return nil, outcome, ctx.Err()
	}
}

// storeLocked installs a finished result and enforces the LRU bound.
func (c *Cache) storeLocked(key string, gen uint64, value []byte) {
	if old, ok := c.entries[key]; ok {
		// A racing computation at a newer generation already
		// published; do not clobber it with the older result.
		if old.gen > gen {
			return
		}
		c.removeLocked(key, old)
	}
	c.useSeq++
	c.entries[key] = &entry{gen: gen, value: value, lastUse: c.useSeq}
	c.bytes += int64(len(value))
	for len(c.entries) > c.maxEntries {
		var victimKey string
		var victim *entry
		for k, e := range c.entries {
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		c.evicted++
		c.removeLocked(victimKey, victim)
	}
}

func (c *Cache) removeLocked(key string, e *entry) {
	delete(c.entries, key)
	c.bytes -= int64(len(e.value))
}

// Invalidate drops the entry for key, if present, counting an
// invalidation. The generation check in Do makes this unnecessary for
// profile bumps; it exists for explicit operator-driven flushes.
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.invalidated++
		c.removeLocked(key, e)
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Coalesced:   c.coalesced,
		Evicted:     c.evicted,
		Invalidated: c.invalidated,
		Errors:      c.errors,
		Entries:     len(c.entries),
		Bytes:       c.bytes,
	}
}

// HashKey derives the content-address of an arbitrary canonical
// request value: the hex SHA-256 of its JSON encoding. Go's
// encoding/json marshals struct fields in declaration order and map
// keys sorted, so equal values hash equal.
func HashKey(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("rescache: hash key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

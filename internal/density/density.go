// Package density implements an exact density-matrix simulator for small
// registers. Where the backend samples stochastic trajectories, this
// package applies the noise channels (depolarizing gate error, amplitude
// damping, classical readout corruption) exactly, producing the true
// output distribution with no sampling error.
//
// Its role in the reproduction is validation: the trajectory sampler and
// the exact channel evolution must agree in distribution, which pins down
// the correctness of the entire noise pipeline (see the cross-validation
// tests). Cost scales as O(4^n), so it is practical up to ~8 qubits —
// enough to cover both 5-qubit machines end to end.
package density

import (
	"fmt"
	"math"

	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/dist"
	"biasmit/internal/noise"
	"biasmit/internal/quantum"
)

// MaxQubits bounds register size; a density matrix holds 4^n complex
// entries (64 MiB at n=11; we stop well before).
const MaxQubits = 10

// Matrix is an n-qubit density matrix ρ, stored row-major with dimension
// d = 2^n. Construct with New; the zero value is unusable.
type Matrix struct {
	n   int
	d   int
	rho []complex128
}

// New returns the pure ground-state density matrix |0…0⟩⟨0…0|.
func New(n int) *Matrix {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("density: qubit count %d out of range [1,%d]", n, MaxQubits))
	}
	d := 1 << uint(n)
	m := &Matrix{n: n, d: d, rho: make([]complex128, d*d)}
	m.rho[0] = 1
	return m
}

// NumQubits returns the register size.
func (m *Matrix) NumQubits() int { return m.n }

// At returns ρ[r][c].
func (m *Matrix) At(r, c int) complex128 { return m.rho[r*m.d+c] }

// Trace returns tr(ρ), which stays 1 under every channel.
func (m *Matrix) Trace() float64 {
	var t complex128
	for i := 0; i < m.d; i++ {
		t += m.rho[i*m.d+i]
	}
	return real(t)
}

// Purity returns tr(ρ²): 1 for pure states, 1/2^n for the maximally
// mixed state. Noise strictly decreases it.
func (m *Matrix) Purity() float64 {
	var t complex128
	for r := 0; r < m.d; r++ {
		for c := 0; c < m.d; c++ {
			t += m.rho[r*m.d+c] * m.rho[c*m.d+r]
		}
	}
	return real(t)
}

// Probabilities returns the measurement distribution diag(ρ).
func (m *Matrix) Probabilities() []float64 {
	out := make([]float64, m.d)
	m.ProbabilitiesInto(out)
	return out
}

// ProbabilitiesInto writes diag(ρ) into dst, the allocation-free form of
// Probabilities for callers that evaluate channels in loops; dst must
// have length exactly 2^n.
func (m *Matrix) ProbabilitiesInto(dst []float64) {
	if len(dst) != m.d {
		panic(fmt.Sprintf("density: ProbabilitiesInto dst length %d for dimension %d", len(dst), m.d))
	}
	for i := 0; i < m.d; i++ {
		dst[i] = real(m.rho[i*m.d+i])
	}
}

func (m *Matrix) checkQubit(q int) {
	if q < 0 || q >= m.n {
		panic(fmt.Sprintf("density: qubit %d out of range [0,%d)", q, m.n))
	}
}

// applyLeft multiplies every column by the single-qubit matrix u acting
// on qubit q: ρ → (u⊗I)·ρ.
func (m *Matrix) applyLeft(u quantum.Matrix2, q int) {
	stride := 1 << uint(q)
	for c := 0; c < m.d; c++ {
		for base := 0; base < m.d; base += stride * 2 {
			for off := 0; off < stride; off++ {
				r0 := base + off
				r1 := r0 + stride
				a0, a1 := m.rho[r0*m.d+c], m.rho[r1*m.d+c]
				m.rho[r0*m.d+c] = u[0][0]*a0 + u[0][1]*a1
				m.rho[r1*m.d+c] = u[1][0]*a0 + u[1][1]*a1
			}
		}
	}
}

// applyRight multiplies every row by u† on qubit q: ρ → ρ·(u†⊗I).
func (m *Matrix) applyRight(u quantum.Matrix2, q int) {
	ud := u.Dagger()
	stride := 1 << uint(q)
	for r := 0; r < m.d; r++ {
		row := m.rho[r*m.d : (r+1)*m.d]
		for base := 0; base < m.d; base += stride * 2 {
			for off := 0; off < stride; off++ {
				c0 := base + off
				c1 := c0 + stride
				a0, a1 := row[c0], row[c1]
				row[c0] = a0*ud[0][0] + a1*ud[1][0]
				row[c1] = a0*ud[0][1] + a1*ud[1][1]
			}
		}
	}
}

// Apply1 conjugates ρ by the single-qubit unitary u on qubit q.
func (m *Matrix) Apply1(u quantum.Matrix2, q int) {
	m.checkQubit(q)
	m.applyLeft(u, q)
	m.applyRight(u, q)
}

// permute conjugates ρ by a basis permutation: ρ'[p(r)][p(c)] = ρ[r][c].
func (m *Matrix) permute(p func(int) int) {
	next := make([]complex128, len(m.rho))
	for r := 0; r < m.d; r++ {
		pr := p(r)
		for c := 0; c < m.d; c++ {
			next[pr*m.d+p(c)] = m.rho[r*m.d+c]
		}
	}
	m.rho = next
}

// ApplyCNOT conjugates ρ by a CNOT.
func (m *Matrix) ApplyCNOT(control, target int) {
	m.checkQubit(control)
	m.checkQubit(target)
	if control == target {
		panic("density: CNOT with identical qubits")
	}
	cb, tb := 1<<uint(control), 1<<uint(target)
	m.permute(func(i int) int {
		if i&cb != 0 {
			return i ^ tb
		}
		return i
	})
}

// ApplySWAP conjugates ρ by a SWAP.
func (m *Matrix) ApplySWAP(a, b int) {
	m.checkQubit(a)
	m.checkQubit(b)
	if a == b {
		panic("density: SWAP with identical qubits")
	}
	ba, bb := 1<<uint(a), 1<<uint(b)
	m.permute(func(i int) int {
		bitA := i & ba >> uint(a)
		bitB := i & bb >> uint(b)
		if bitA == bitB {
			return i
		}
		return i ^ ba ^ bb
	})
}

// ApplyCZ conjugates ρ by a controlled-Z.
func (m *Matrix) ApplyCZ(a, b int) {
	m.checkQubit(a)
	m.checkQubit(b)
	if a == b {
		panic("density: CZ with identical qubits")
	}
	mask := 1<<uint(a) | 1<<uint(b)
	sign := func(i int) complex128 {
		if i&mask == mask {
			return -1
		}
		return 1
	}
	// U = diag(±1) is real: ρ'[r][c] = sign(r)·ρ[r][c]·sign(c).
	for r := 0; r < m.d; r++ {
		sr := sign(r)
		for c := 0; c < m.d; c++ {
			m.rho[r*m.d+c] *= sr * sign(c)
		}
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{n: m.n, d: m.d, rho: append([]complex128(nil), m.rho...)}
	return out
}

// Depolarize1 applies the single-qubit depolarizing channel with error
// probability p on qubit q: ρ → (1−p)ρ + p/3·Σ_{P∈{X,Y,Z}} PρP.
func (m *Matrix) Depolarize1(q int, p float64) {
	m.checkQubit(q)
	if p <= 0 {
		return
	}
	orig := m.Clone()
	scale(m.rho, complex(1-p, 0))
	for _, pl := range []quantum.Matrix2{quantum.X, quantum.Y, quantum.Z} {
		kick := orig.Clone()
		kick.Apply1(pl, q)
		accumulate(m.rho, kick.rho, complex(p/3, 0))
	}
}

// Depolarize2 applies the two-qubit depolarizing channel with error
// probability p on qubits (a,b): a uniform mixture over the 15
// non-identity Pauli pairs.
func (m *Matrix) Depolarize2(a, b int, p float64) {
	m.checkQubit(a)
	m.checkQubit(b)
	if a == b {
		panic("density: Depolarize2 with identical qubits")
	}
	if p <= 0 {
		return
	}
	orig := m.Clone()
	scale(m.rho, complex(1-p, 0))
	paulis := []quantum.Matrix2{quantum.I, quantum.X, quantum.Y, quantum.Z}
	for i := 1; i < 16; i++ {
		kick := orig.Clone()
		if pa := paulis[i/4]; i/4 != 0 {
			kick.Apply1(pa, a)
		}
		if pb := paulis[i%4]; i%4 != 0 {
			kick.Apply1(pb, b)
		}
		accumulate(m.rho, kick.rho, complex(p/15, 0))
	}
}

// AmplitudeDamp applies the T1 relaxation channel with decay probability
// gamma on qubit q: ρ → K0ρK0† + K1ρK1†.
func (m *Matrix) AmplitudeDamp(q int, gamma float64) {
	m.checkQubit(q)
	if gamma <= 0 {
		return
	}
	if gamma > 1 {
		panic(fmt.Sprintf("density: gamma %v out of [0,1]", gamma))
	}
	s := math.Sqrt(1 - gamma)
	bit := 1 << uint(q)
	next := make([]complex128, len(m.rho))
	for r := 0; r < m.d; r++ {
		for c := 0; c < m.d; c++ {
			v := m.rho[r*m.d+c]
			if v == 0 {
				continue
			}
			// K0 = diag(1, s): factor s per side with the bit set.
			f := 1.0
			if r&bit != 0 {
				f *= s
			}
			if c&bit != 0 {
				f *= s
			}
			next[r*m.d+c] += v * complex(f, 0)
			// K1 = sqrt(gamma)|0><1|: contributes only from (1,1) blocks.
			if r&bit != 0 && c&bit != 0 {
				next[(r^bit)*m.d+(c^bit)] += v * complex(gamma, 0)
			}
		}
	}
	m.rho = next
}

func scale(v []complex128, f complex128) {
	for i := range v {
		v[i] *= f
	}
}

func accumulate(dst, src []complex128, f complex128) {
	for i := range dst {
		dst[i] += f * src[i]
	}
}

// ApplyOp applies one circuit operation.
func (m *Matrix) ApplyOp(op circuit.Op) {
	switch op.Kind {
	case circuit.Gate1:
		m.Apply1(op.Matrix, op.Qubits[0])
	case circuit.CNOT:
		m.ApplyCNOT(op.Qubits[0], op.Qubits[1])
	case circuit.CZ:
		m.ApplyCZ(op.Qubits[0], op.Qubits[1])
	case circuit.SwapOp:
		m.ApplySWAP(op.Qubits[0], op.Qubits[1])
	case circuit.Barrier:
	default:
		panic(fmt.Sprintf("density: unknown op kind %d", op.Kind))
	}
}

// OutputDist applies the exact classical readout channel to diag(ρ) and
// returns the distribution of recorded strings.
func (m *Matrix) OutputDist(readout *noise.ReadoutModel) dist.Dist {
	if readout.NumQubits() != m.n {
		panic(fmt.Sprintf("density: readout model has %d qubits for %d-qubit state", readout.NumQubits(), m.n))
	}
	probs := quantum.AcquireProbs(m.n)
	defer func() {
		// Drop (don't pool) the buffer when unwinding a panic; its
		// contents are torn.
		if r := recover(); r != nil {
			panic(r)
		}
		quantum.ReleaseProbs(m.n, probs)
	}()
	m.ProbabilitiesInto(probs)
	out := dist.NewDist(m.n)
	for _, x := range bitstring.All(m.n) {
		px := probs[x.Uint64()]
		if px < 1e-15 {
			continue
		}
		for _, y := range bitstring.All(m.n) {
			if t := readout.TransitionProb(x, y); t > 0 {
				out.P[y] += px * t
			}
		}
	}
	return out
}

package density

import (
	"fmt"

	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/noise"
)

// RunExact evolves the circuit on the device model with every noise
// channel applied exactly — the closed-form counterpart of
// backend.Run. Channel placement matches the trajectory sampler: after
// each gate, a depolarizing kick with the calibrated error probability
// followed by amplitude damping on the operand qubits for the gate
// duration; at the end, the classical readout channel.
//
// The returned distribution is what backend.Run converges to as the shot
// count grows; the cross-validation tests assert exactly that.
func RunExact(c *circuit.Circuit, dev *device.Device) (dist.Dist, error) {
	if c.NumQubits != dev.NumQubits {
		return dist.Dist{}, fmt.Errorf("density: circuit register %d does not match device %s with %d qubits",
			c.NumQubits, dev.Name, dev.NumQubits)
	}
	if dev.NumQubits > MaxQubits {
		return dist.Dist{}, fmt.Errorf("density: %s has %d qubits; exact simulation supports up to %d",
			dev.Name, dev.NumQubits, MaxQubits)
	}
	m := New(dev.NumQubits)
	for i, op := range c.Ops {
		if op.Kind == circuit.Barrier {
			continue
		}
		m.ApplyOp(op)
		duration := dev.Gate1Duration
		if op.IsTwoQubit() {
			duration = dev.Gate2Duration
			p2, err := dev.Gate2Error(op.Qubits[0], op.Qubits[1])
			if err != nil {
				return dist.Dist{}, fmt.Errorf("density: op %d (%s): %w", i, op.Label, err)
			}
			if op.Kind == circuit.SwapOp {
				p2 = 1 - (1-p2)*(1-p2)*(1-p2)
				duration = 3 * dev.Gate2Duration
			}
			m.Depolarize2(op.Qubits[0], op.Qubits[1], p2)
		} else {
			m.Depolarize1(op.Qubits[0], dev.Qubits[op.Qubits[0]].Gate1Error)
		}
		for _, q := range op.Qubits {
			m.AmplitudeDamp(q, noise.DecayProb(duration, dev.Qubits[q].T1))
		}
	}
	return m.OutputDist(dev.ReadoutModel()), nil
}

package density

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/kernels"
	"biasmit/internal/noise"
	"biasmit/internal/quantum"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewIsPureGroundState(t *testing.T) {
	m := New(3)
	if !approx(m.Trace(), 1) || !approx(m.Purity(), 1) {
		t.Errorf("trace %v purity %v", m.Trace(), m.Purity())
	}
	if !approx(real(m.At(0, 0)), 1) {
		t.Errorf("rho[0][0] = %v", m.At(0, 0))
	}
}

func TestUnitaryEvolutionMatchesStateVector(t *testing.T) {
	// A pure-state circuit must give identical probabilities in both
	// simulators.
	c := circuit.New(3, "mix").H(0).CX(0, 1).RY(0.7, 2).CZGate(1, 2).Swap(0, 2).RZ(-1.1, 1).T(0)
	m := New(3)
	for _, op := range c.Ops {
		m.ApplyOp(op)
	}
	sv := c.Simulate().Probabilities()
	dm := m.Probabilities()
	for i := range sv {
		if !approx(sv[i], dm[i]) {
			t.Errorf("P(%d): statevector %v, density %v", i, sv[i], dm[i])
		}
	}
	if !approx(m.Purity(), 1) {
		t.Errorf("unitary evolution lost purity: %v", m.Purity())
	}
}

func TestDepolarize1FullyMixesSingleQubit(t *testing.T) {
	m := New(1)
	m.Depolarize1(0, 0.75) // p=3/4 is the fully depolarizing point
	p := m.Probabilities()
	if !approx(p[0], 0.5) || !approx(p[1], 0.5) {
		t.Errorf("probabilities %v", p)
	}
	if !approx(m.Purity(), 0.5) {
		t.Errorf("purity = %v, want 1/2 (maximally mixed)", m.Purity())
	}
}

func TestDepolarizePreservesTrace(t *testing.T) {
	m := New(3)
	m.Apply1(quantum.H, 0)
	m.ApplyCNOT(0, 1)
	m.Depolarize1(0, 0.1)
	m.Depolarize2(0, 2, 0.2)
	if !approx(m.Trace(), 1) {
		t.Errorf("trace = %v", m.Trace())
	}
	if m.Purity() >= 1 {
		t.Errorf("noise did not reduce purity: %v", m.Purity())
	}
}

func TestAmplitudeDampExactChannel(t *testing.T) {
	// |1⟩ under damping γ: P(1) = 1−γ exactly.
	const gamma = 0.3
	m := New(1)
	m.Apply1(quantum.X, 0)
	m.AmplitudeDamp(0, gamma)
	p := m.Probabilities()
	if !approx(p[1], 1-gamma) || !approx(p[0], gamma) {
		t.Errorf("probabilities %v", p)
	}
	// Coherences shrink by √(1−γ): check on |+⟩.
	plus := New(1)
	plus.Apply1(quantum.H, 0)
	plus.AmplitudeDamp(0, gamma)
	if got := real(plus.At(0, 1)); !approx(got, 0.5*math.Sqrt(1-gamma)) {
		t.Errorf("coherence = %v, want %v", got, 0.5*math.Sqrt(1-gamma))
	}
}

func TestAmplitudeDampTraceAndValidation(t *testing.T) {
	m := New(2)
	m.Apply1(quantum.H, 0)
	m.ApplyCNOT(0, 1)
	m.AmplitudeDamp(1, 0.4)
	if !approx(m.Trace(), 1) {
		t.Errorf("trace = %v", m.Trace())
	}
	defer func() {
		if recover() == nil {
			t.Error("gamma > 1 accepted")
		}
	}()
	m.AmplitudeDamp(0, 1.5)
}

func TestOutputDistAppliesReadout(t *testing.T) {
	m := New(2)
	m.Apply1(quantum.X, 0) // |01⟩ (qubit 0 set)
	readout := &noise.ReadoutModel{PerQubit: []noise.ReadoutError{
		{P01: 0, P10: 0.2},
		{P01: 0.1, P10: 0},
	}}
	d := m.OutputDist(readout)
	// True state q0=1,q1=0. P(read 01) = 0.8·0.9; P(read 00)=0.2·0.9;
	// P(read 11)=0.8·0.1; P(read 10)=0.2·0.1.
	if got := d.Prob(bitstring.MustParse("01")); !approx(got, 0.72) {
		t.Errorf("P(01) = %v", got)
	}
	if got := d.Prob(bitstring.MustParse("00")); !approx(got, 0.18) {
		t.Errorf("P(00) = %v", got)
	}
	if !approx(d.Mass(), 1) {
		t.Errorf("mass = %v", d.Mass())
	}
}

func TestRunExactValidation(t *testing.T) {
	dev := device.IBMQX2()
	if _, err := RunExact(circuit.New(3, "small"), dev); err == nil {
		t.Error("register mismatch accepted")
	}
	uncoupled := circuit.New(5, "bad").CX(0, 4)
	if _, err := RunExact(uncoupled, dev); err == nil {
		t.Error("uncoupled CNOT accepted")
	}
}

func TestTrajectoriesConvergeToExactChannel(t *testing.T) {
	// The central cross-validation: the stochastic trajectory backend
	// must converge to the exact density-matrix evolution on a fully
	// noisy workload (gates + decay + biased readout + crosstalk).
	dev := device.IBMQX4()
	c := circuit.New(5, "ghz-x4").H(0).CX(1, 0).CX(2, 1).CX(3, 2).CX(3, 4)
	exact, err := RunExact(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := backend.RunContext(context.Background(), c, dev, backend.Options{Shots: 120000, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if tvd := counts.Dist().TVD(exact); tvd > 0.012 {
		t.Errorf("trajectory vs exact TVD = %v", tvd)
	}
}

func TestTrajectoriesConvergeOnBVKernel(t *testing.T) {
	dev := device.IBMQX2()
	bench := kernels.BV("bv", bitstring.MustParse("1011"))
	// Express on device qubits without routing (identity layout works on
	// ibmqx2 only if CNOTs are coupled; BV couples every key qubit to the
	// ancilla q4 — ibmqx2 couples 2-4 and 3-4 only, so remap key bits
	// onto {2,3} neighbours... simpler: use a 3-bit key on qubits 2,3→4).
	_ = bench
	c := circuit.New(5, "mini-bv")
	c.X(4).H(4).H(2).H(3)
	c.CX(2, 4).CX(3, 4)
	c.H(2).H(3).H(4)
	exact, err := RunExact(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := backend.RunContext(context.Background(), c, dev, backend.Options{Shots: 120000, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if tvd := counts.Dist().TVD(exact); tvd > 0.012 {
		t.Errorf("trajectory vs exact TVD = %v", tvd)
	}
}

func TestExactBMSMatchesNoiseModel(t *testing.T) {
	// For a pure basis-state preparation with no gate noise (set error
	// rates to zero), OutputDist's diagonal must equal the noise model's
	// TransitionProb row.
	dev := device.IBMQX4()
	x := bitstring.MustParse("10101")
	m := New(5)
	for q := 0; q < 5; q++ {
		if x.Bit(q) {
			m.Apply1(quantum.X, q)
		}
	}
	readout := dev.ReadoutModel()
	d := m.OutputDist(readout)
	for _, y := range bitstring.All(5) {
		want := readout.TransitionProb(x, y)
		if math.Abs(d.Prob(y)-want) > 1e-9 {
			t.Errorf("P(%v) = %v, want %v", y, d.Prob(y), want)
		}
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	cases := []func(){
		func() { New(0) },
		func() { New(MaxQubits + 1) },
		func() { New(2).Apply1(quantum.X, 2) },
		func() { New(2).ApplyCNOT(1, 1) },
		func() { New(2).ApplySWAP(0, 0) },
		func() { New(2).ApplyCZ(1, 1) },
		func() { New(2).Depolarize2(0, 0, 0.1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: random unitary circuits keep trace 1 and purity 1, and the
// diagonal matches the state-vector simulator exactly; adding channels
// keeps trace 1 while strictly reducing purity.
func TestQuickDensityInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 3
		c := circuit.New(n, "rand")
		for i := 0; i < 12; i++ {
			switch rng.Intn(5) {
			case 0:
				c.H(rng.Intn(n))
			case 1:
				c.RY(rng.Float64()*4-2, rng.Intn(n))
			case 2:
				c.RZ(rng.Float64()*4-2, rng.Intn(n))
			case 3:
				a := rng.Intn(n)
				c.CX(a, (a+1)%n)
			case 4:
				a := rng.Intn(n)
				c.CZGate(a, (a+1)%n)
			}
		}
		m := New(n)
		for _, op := range c.Ops {
			m.ApplyOp(op)
		}
		if math.Abs(m.Trace()-1) > 1e-9 || math.Abs(m.Purity()-1) > 1e-9 {
			return false
		}
		sv := c.Simulate().Probabilities()
		dm := m.Probabilities()
		for i := range sv {
			if math.Abs(sv[i]-dm[i]) > 1e-9 {
				return false
			}
		}
		m.Depolarize1(rng.Intn(n), 0.05+0.2*rng.Float64())
		m.AmplitudeDamp(rng.Intn(n), 0.05+0.2*rng.Float64())
		return math.Abs(m.Trace()-1) < 1e-9 && m.Purity() < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(107))}); err != nil {
		t.Error(err)
	}
}

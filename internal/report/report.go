// Package report renders experiment results as fixed-width text tables
// and ASCII bar series, the output format of cmd/paperfigs and the
// benchmark harness.
package report

import (
	"fmt"
	"strings"
)

// Table renders a fixed-width text table with a header row.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", w, cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// Bars renders labeled values as horizontal ASCII bars scaled so the
// largest value spans width characters. Values must be non-negative.
func Bars(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("report: labels and values length mismatch")
	}
	if width < 1 {
		width = 40
	}
	maxLabel, maxVal := 0, 0.0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if values[i] > maxVal {
			maxVal = values[i]
		}
	}
	var sb strings.Builder
	for i, l := range labels {
		n := 0
		if maxVal > 0 {
			n = int(values[i] / maxVal * float64(width))
		}
		fmt.Fprintf(&sb, "%-*s %s %.4f\n", maxLabel, l, strings.Repeat("#", n), values[i])
	}
	return sb.String()
}

// F formats a float compactly for table cells.
func F(v float64) string { return fmt.Sprintf("%.4f", v) }

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

package report

import (
	"strings"
	"testing"
)

func TestTableAlignsColumns(t *testing.T) {
	out := Table(
		[]string{"name", "value"},
		[][]string{
			{"a", "1"},
			{"longer-name", "22"},
		},
	)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// All lines equally wide (trailing spaces trimmed per cell rendering).
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Errorf("separator: %q", lines[1])
	}
	if !strings.Contains(lines[3], "longer-name") || !strings.Contains(lines[3], "22") {
		t.Errorf("row: %q", lines[3])
	}
	// Value column starts at the same offset in every row.
	col := strings.Index(lines[0], "value")
	if strings.Index(lines[2], "1") != col {
		t.Errorf("misaligned value column:\n%s", out)
	}
}

func TestTableHandlesShortRows(t *testing.T) {
	out := Table([]string{"a", "b"}, [][]string{{"only"}})
	if !strings.Contains(out, "only") {
		t.Errorf("short row missing: %q", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"x", "yy"}, []float64{1.0, 0.5}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if n := strings.Count(lines[0], "#"); n != 10 {
		t.Errorf("max bar has %d chars, want 10: %q", n, lines[0])
	}
	if n := strings.Count(lines[1], "#"); n != 5 {
		t.Errorf("half bar has %d chars, want 5: %q", n, lines[1])
	}
	if !strings.Contains(lines[0], "1.0000") {
		t.Errorf("value missing: %q", lines[0])
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars([]string{"a"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Errorf("zero value drew a bar: %q", out)
	}
}

func TestBarsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Bars([]string{"a"}, []float64{1, 2}, 10)
}

func TestBarsDefaultWidth(t *testing.T) {
	out := Bars([]string{"a"}, []float64{1}, 0)
	if n := strings.Count(out, "#"); n != 40 {
		t.Errorf("default width bar = %d", n)
	}
}

func TestFormatters(t *testing.T) {
	if got := F(0.12345); got != "0.1234" && got != "0.1235" {
		t.Errorf("F = %q", got)
	}
	if got := Pct(0.1234); got != "12.34%" {
		t.Errorf("Pct = %q", got)
	}
}

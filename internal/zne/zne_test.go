package zne

import (
	"math"
	"math/rand"
	"testing"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/kernels"
	"biasmit/internal/maxcut"
)

func TestFoldPreservesSemantics(t *testing.T) {
	pg, err := maxcut.Table3Graph("qaoa-4A")
	if err != nil {
		t.Fatal(err)
	}
	circuits := []*circuit.Circuit{
		kernels.GHZ(4),
		kernels.BV("bv", bitstring.MustParse("101")).Circuit,
		kernels.QAOACircuit(pg.Graph, kernels.QAOAAngles{Gammas: []float64{0.6}, Betas: []float64{0.3}}),
	}
	for _, c := range circuits {
		ideal := c.Simulate()
		for _, factor := range []int{1, 3, 5} {
			folded, err := Fold(c, factor)
			if err != nil {
				t.Fatalf("%s fold %d: %v", c.Name, factor, err)
			}
			oneQ, twoQ, _ := c.GateCounts()
			fq, ftwoQ, _ := folded.GateCounts()
			if fq != factor*oneQ || ftwoQ != factor*twoQ {
				t.Errorf("%s fold %d: gate counts %d/%d, want %d/%d",
					c.Name, factor, fq, ftwoQ, factor*oneQ, factor*twoQ)
			}
			if f := folded.Simulate().Fidelity(ideal); math.Abs(f-1) > 1e-9 {
				t.Errorf("%s fold %d: ideal fidelity %v", c.Name, factor, f)
			}
		}
	}
}

func TestFoldValidation(t *testing.T) {
	c := kernels.GHZ(3)
	for _, bad := range []int{0, 2, -1} {
		if _, err := Fold(c, bad); err == nil {
			t.Errorf("factor %d accepted", bad)
		}
	}
}

func TestInverseIsAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 20; trial++ {
		c := circuit.New(4, "rand")
		for i := 0; i < 20; i++ {
			switch rng.Intn(6) {
			case 0:
				c.H(rng.Intn(4))
			case 1:
				c.T(rng.Intn(4))
			case 2:
				c.RZ(rng.Float64()*4-2, rng.Intn(4))
			case 3:
				c.RY(rng.Float64()*4-2, rng.Intn(4))
			case 4:
				a := rng.Intn(4)
				c.CX(a, (a+1)%4)
			case 5:
				a := rng.Intn(4)
				c.Swap(a, (a+1)%4)
			}
		}
		roundTrip := c.Clone().Append(c.Inverse())
		ground := circuit.New(4, "ground").Simulate()
		if f := roundTrip.Simulate().Fidelity(ground); math.Abs(f-1) > 1e-9 {
			t.Fatalf("trial %d: C·C† fidelity to identity %v", trial, f)
		}
	}
}

func TestExtrapolate(t *testing.T) {
	// Exact linear data: intercept recovered exactly.
	got, err := Extrapolate([]float64{1, 3, 5}, []float64{0.9, 0.7, 0.5})
	if err != nil || math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Extrapolate = %v, err=%v; want 1.0", got, err)
	}
	// Two-point Richardson.
	got, err = Extrapolate([]float64{1, 3}, []float64{0.8, 0.6})
	if err != nil || math.Abs(got-0.9) > 1e-12 {
		t.Errorf("two-point = %v, err=%v; want 0.9", got, err)
	}
	if _, err := Extrapolate([]float64{1}, []float64{0.5}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Extrapolate([]float64{2, 2}, []float64{0.5, 0.6}); err == nil {
		t.Error("degenerate factors accepted")
	}
	if _, err := Extrapolate([]float64{1, 3}, []float64{0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestExpectation(t *testing.T) {
	d := dist.Dist{Width: 2, P: map[bitstring.Bits]float64{
		bitstring.MustParse("00"): 0.5,
		bitstring.MustParse("11"): 0.25,
		bitstring.MustParse("01"): 0.25,
	}}
	parity := func(b bitstring.Bits) float64 {
		if b.HammingWeight()%2 == 0 {
			return 1
		}
		return -1
	}
	// 0.75·(+1) + 0.25·(−1) = 0.5
	if got := Expectation(d, parity); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Expectation = %v", got)
	}
}

func TestMitigateExpectationRecoversCutValue(t *testing.T) {
	// QAOA on melbourne: gate noise pulls the expected cut value toward
	// the random-guess mean; ZNE must move the estimate back toward the
	// ideal value.
	pg, err := maxcut.Table3Graph("qaoa-6")
	if err != nil {
		t.Fatal(err)
	}
	bench := kernels.QAOA("qaoa-6", pg, 1)
	obs := func(b bitstring.Bits) float64 { return pg.Graph.CutValue(b) }

	ideal := Expectation(backend.RunIdeal(bench.Circuit), obs)

	m := core.NewMachine(device.IBMQMelbourne())
	m.Opt.NoReadoutError = true // isolate the gate-error family ZNE targets
	res, err := MitigateExpectation(bench.Circuit, m, obs, []int{1, 3}, 20000, 101)
	if err != nil {
		t.Fatal(err)
	}
	raw := res.Values[0]
	if raw >= ideal {
		t.Fatalf("premise broken: noisy value %v not below ideal %v", raw, ideal)
	}
	if math.Abs(res.Mitigated-ideal) >= math.Abs(raw-ideal) {
		t.Errorf("ZNE did not improve: raw %v, mitigated %v, ideal %v", raw, res.Mitigated, ideal)
	}
	// Noise must actually be amplified at factor 3.
	if res.Values[1] >= res.Values[0] {
		t.Errorf("folding did not amplify noise: %v", res.Values)
	}
}

func TestMitigateExpectationValidation(t *testing.T) {
	m := core.NewMachine(device.IBMQX2())
	c := kernels.GHZ(3)
	obs := func(b bitstring.Bits) float64 { return 0 }
	if _, err := MitigateExpectation(c, m, obs, []int{1}, 100, 1); err == nil {
		t.Error("single factor accepted")
	}
	if _, err := MitigateExpectation(c, m, obs, []int{1, 3}, 0, 1); err == nil {
		t.Error("zero shots accepted")
	}
	if _, err := MitigateExpectation(c, m, obs, []int{1, 2}, 100, 1); err == nil {
		t.Error("even factor accepted")
	}
}

// Package zne implements zero-noise extrapolation, the standard
// mitigation for the error family Invert-and-Measure cannot touch: gate
// errors and decoherence during computation (the paper notes in §7.1
// that these cap SIM/AIM's gains on melbourne).
//
// The noise level of a circuit is amplified by global folding — C is
// replaced by C·(C†·C)^((k−1)/2) for odd k, which is the identity on an
// ideal machine but runs k× the gates — the observable is measured at
// several fold factors, and a least-squares polynomial is extrapolated
// back to the zero-noise limit. Readout error is *not* amplified by
// folding (measurement happens once per trial), so ZNE composes with the
// readout-side techniques of internal/core and internal/correct rather
// than replacing them.
package zne

import (
	"fmt"

	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/core"
	"biasmit/internal/dist"
)

// Fold returns the circuit with its noise amplified by the odd factor k:
// C for k=1, C·C†·C for k=3, and so on. The folded circuit computes the
// same unitary with k times the gates.
func Fold(c *circuit.Circuit, factor int) (*circuit.Circuit, error) {
	if factor < 1 || factor%2 == 0 {
		return nil, fmt.Errorf("zne: fold factor must be odd and positive, got %d", factor)
	}
	out := c.Clone()
	out.Name = fmt.Sprintf("%s(fold %d)", c.Name, factor)
	if factor == 1 {
		return out, nil
	}
	inv := c.Inverse()
	for i := 0; i < (factor-1)/2; i++ {
		out.Append(inv)
		out.Append(c)
	}
	return out, nil
}

// Observable maps a measured bit string to a number, e.g. a max-cut
// value or a parity. Expectation integrates it over an output log.
type Observable func(bitstring.Bits) float64

// Expectation returns Σ p(x)·obs(x) over a distribution. It folds in
// deterministic outcome order (dist.Dist.Expectation) so extrapolated
// estimates reproduce exactly at a fixed seed.
func Expectation(d dist.Dist, obs Observable) float64 {
	return d.Expectation(obs)
}

// Extrapolate fits values measured at the given noise factors with a
// least-squares line and returns its value at factor 0 — the Richardson
// zero-noise estimate. At exactly two points this is the classic
// two-point formula; more points damp statistical noise.
func Extrapolate(factors, values []float64) (float64, error) {
	if len(factors) != len(values) {
		return 0, fmt.Errorf("zne: %d factors for %d values", len(factors), len(values))
	}
	if len(factors) < 2 {
		return 0, fmt.Errorf("zne: need at least 2 noise factors, got %d", len(factors))
	}
	n := float64(len(factors))
	var sx, sy, sxx, sxy float64
	for i := range factors {
		sx += factors[i]
		sy += values[i]
		sxx += factors[i] * factors[i]
		sxy += factors[i] * values[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, fmt.Errorf("zne: degenerate factor set %v", factors)
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	return intercept, nil
}

// Result records one mitigation run.
type Result struct {
	Factors   []float64
	Values    []float64 // measured expectation at each factor
	Mitigated float64   // zero-noise extrapolation
}

// MitigateExpectation measures the observable on the machine at each fold
// factor (shots trials per factor, on the identical placement) and
// extrapolates to zero noise. The circuit is the *logical* program;
// placement happens once so all factors share qubits.
func MitigateExpectation(c *circuit.Circuit, m *core.Machine, obs Observable, factors []int, shots int, seed int64) (Result, error) {
	if len(factors) < 2 {
		return Result{}, fmt.Errorf("zne: need at least 2 noise factors")
	}
	if shots < 1 {
		return Result{}, fmt.Errorf("zne: shots must be positive")
	}
	// Pin the layout with the unfolded circuit so every factor runs on
	// the same physical qubits.
	base, err := core.NewJob(c, m)
	if err != nil {
		return Result{}, err
	}
	layout := base.Plan.InitialLayout

	res := Result{}
	for i, factor := range factors {
		folded, err := Fold(c, factor)
		if err != nil {
			return Result{}, err
		}
		job, err := core.NewJobWithLayout(folded, m, layout)
		if err != nil {
			return Result{}, fmt.Errorf("zne: factor %d: %w", factor, err)
		}
		counts, err := job.Baseline(shots, seed+int64(i))
		if err != nil {
			return Result{}, fmt.Errorf("zne: factor %d: %w", factor, err)
		}
		res.Factors = append(res.Factors, float64(factor))
		res.Values = append(res.Values, Expectation(counts.Dist(), obs))
	}
	mitigated, err := Extrapolate(res.Factors, res.Values)
	if err != nil {
		return Result{}, err
	}
	res.Mitigated = mitigated
	return res, nil
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/jobs"
	"biasmit/internal/obs"
	"biasmit/internal/overload"
	"biasmit/internal/profilestore"
)

// The async job API: POST /v1/jobs submits a mitigation or
// characterization as a queued job, GET polls it (optionally
// long-polling with ?wait=), DELETE cancels it. Jobs execute through
// the exact same validation and execution paths as the synchronous
// endpoints — same admission gate, same deadline, same seeds — so a
// job's result is byte-identical to what the synchronous call would
// have returned.

// tenantKey resolves the fairness/quota identity of a request: the
// X-API-Key header, or "anon".
func tenantKey(r *http.Request) string {
	if k := strings.TrimSpace(r.Header.Get("X-API-Key")); k != "" {
		return k
	}
	return "anon"
}

// jobError maps queue errors onto the typed wire shape.
func jobError(err error) *APIError {
	var qe *jobs.QuotaError
	switch {
	case errors.As(err, &qe):
		out := apiErrorf(http.StatusTooManyRequests, api.CodeQuotaExceeded,
			"tenant %q already has %d jobs queued or running", qe.Tenant, qe.Limit)
		out.RetryAfter = time.Second
		return out
	case errors.Is(err, jobs.ErrNotFound):
		return apiErrorf(http.StatusNotFound, api.CodeJobNotFound, "no such job")
	case errors.Is(err, jobs.ErrTerminal):
		return apiErrorf(http.StatusConflict, api.CodeJobTerminal, "job already reached a terminal state")
	}
	return toAPIError(err)
}

// jobInfo renders a queue job for the wire. The trace ID travels in
// the persisted spec, so it survives restarts and crash recovery along
// with the job itself.
func jobInfo(j jobs.Job) api.JobInfo {
	info := api.JobInfo{
		ID:              j.ID,
		Type:            j.Spec.Type,
		State:           string(j.State),
		Tenant:          j.Spec.Tenant,
		Priority:        j.Spec.Priority,
		TraceID:         j.Spec.TraceID,
		SubmittedAt:     j.SubmittedAt.UTC(),
		Attempts:        j.Attempts,
		Requeues:        j.Requeues,
		BatchSize:       j.BatchSize,
		CancelRequested: j.CancelRequested,
	}
	if !j.StartedAt.IsZero() {
		t := j.StartedAt.UTC()
		info.StartedAt = &t
	}
	if !j.FinishedAt.IsZero() {
		t := j.FinishedAt.UTC()
		info.FinishedAt = &t
	}
	if j.Failure != nil {
		info.Error = &api.Error{
			Code:    j.Failure.Code,
			Message: j.Failure.Message,
			TraceID: j.Spec.TraceID,
			Status:  j.Failure.Status,
		}
	}
	return info
}

func jobResponse(j jobs.Job) *api.JobResponse {
	return &api.JobResponse{Job: jobInfo(j), Result: j.Result}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, r)
	case http.MethodGet:
		s.handleJobList(w, r)
	default:
		writeError(w, r, apiErrorf(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"%s requires POST or GET", r.URL.Path))
	}
}

// handleJobSubmit validates a submission enough to reject obvious
// mistakes synchronously (unknown machine/benchmark/policy never enter
// the queue), computes the micro-batching key, and durably enqueues.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.JobSubmitRequest
	sp := obs.StartSpan(r.Context(), "decode")
	err := decodeJSON(w, r, &req)
	sp.End()
	if err != nil {
		writeError(w, r, err)
		return
	}
	spec := jobs.Spec{
		Type:        req.Type,
		Tenant:      tenantKey(r),
		Priority:    req.Priority,
		MaxAttempts: req.MaxAttempts,
		// The submission's trace ID rides into the persisted spec: the
		// job's executions — including a re-run after crash recovery —
		// continue the trace the submitter saw in the 202 envelope.
		TraceID: obs.TraceID(r.Context()),
	}
	// Deadline propagation: a caller's X-Request-Deadline rides into the
	// persisted spec, so the scheduler sheds the job the moment its
	// budget lapses — even across a crash and recovery — instead of
	// burning a worker on an answer nobody is waiting for.
	if h := r.Header.Get(overload.DeadlineHeader); h != "" {
		dl, err := overload.ParseDeadline(h)
		if err != nil {
			writeError(w, r, apiErrorf(http.StatusBadRequest, CodeBadRequest,
				"bad %s header %q: %v", overload.DeadlineHeader, h, err))
			return
		}
		spec.Deadline = &dl
	}
	switch req.Type {
	case api.JobTypeMitigate:
		if req.Mitigate == nil || req.Characterize != nil {
			writeError(w, r, apiErrorf(http.StatusBadRequest, CodeBadRequest,
				"a %q job carries exactly the mitigate body", req.Type))
			return
		}
		if err := s.vetMitigateJob(req.Mitigate, &spec); err != nil {
			writeError(w, r, err)
			return
		}
	case api.JobTypeCharacterize:
		if req.Characterize == nil || req.Mitigate != nil {
			writeError(w, r, apiErrorf(http.StatusBadRequest, CodeBadRequest,
				"a %q job carries exactly the characterize body", req.Type))
			return
		}
		if err := s.vetCharacterizeJob(req.Characterize, &spec); err != nil {
			writeError(w, r, err)
			return
		}
	default:
		writeError(w, r, apiErrorf(http.StatusBadRequest, CodeBadRequest,
			"unknown job type %q (want %s or %s)", req.Type, api.JobTypeMitigate, api.JobTypeCharacterize))
		return
	}
	j, err := s.jobq.Submit(spec)
	if err != nil {
		writeError(w, r, jobError(err))
		return
	}
	writeJSON(w, r, http.StatusAccepted, jobResponse(j))
}

// vetMitigateJob front-loads the request validation a synchronous
// mitigate would fail on, fixes the payload bytes the executor will
// decode, and derives the batch key: AIM runs on the same
// machine/width/method share one profile fetch.
func (s *Server) vetMitigateJob(req *MitigateRequest, spec *jobs.Spec) *APIError {
	dev, ok := s.cfg.Machines(req.Machine)
	if !ok {
		return apiErrorf(http.StatusNotFound, CodeUnknownMachine, "unknown machine %q", req.Machine)
	}
	bench, err := resolveBenchmark(req)
	if err != nil {
		return toAPIError(err)
	}
	if err := s.checkShots(req.Shots); err != nil {
		return toAPIError(err)
	}
	switch req.Policy {
	case "baseline", "sim":
	case "aim":
		method, merr := resolveProfileMethod(req.ProfileMethod, bench.Width())
		if merr != nil {
			return toAPIError(merr)
		}
		spec.BatchKey = batchKey(dev.Name, bench.Width(), method)
	default:
		return apiErrorf(http.StatusBadRequest, CodeBadRequest,
			"unknown policy %q (want baseline, sim, or aim)", req.Policy)
	}
	payload, perr := json.Marshal(req)
	if perr != nil {
		return apiErrorf(http.StatusBadRequest, CodeBadRequest, "encoding job payload: %v", perr)
	}
	spec.Payload = payload
	return nil
}

// vetCharacterizeJob mirrors the synchronous characterize validation
// and keys the batch so concurrent characterizations of one profile
// coalesce (a forced re-characterization never batches — its point is a
// fresh run).
func (s *Server) vetCharacterizeJob(req *CharacterizeRequest, spec *jobs.Spec) *APIError {
	dev, ok := s.cfg.Machines(req.Machine)
	if !ok {
		return apiErrorf(http.StatusNotFound, CodeUnknownMachine, "unknown machine %q", req.Machine)
	}
	width := req.Qubits
	if width == 0 {
		width = dev.NumQubits
		if (req.Method == "" || req.Method == "auto" || req.Method == "brute") && width > 5 {
			width = 5
		}
	}
	if width < 1 || width > dev.NumQubits {
		return apiErrorf(http.StatusBadRequest, CodeBadRequest,
			"qubits %d out of range [1,%d] for %s", width, dev.NumQubits, dev.Name)
	}
	method, err := resolveProfileMethod(req.Method, width)
	if err != nil {
		return toAPIError(err)
	}
	if !req.Force {
		spec.BatchKey = batchKey(dev.Name, width, method)
	}
	payload, perr := json.Marshal(req)
	if perr != nil {
		return apiErrorf(http.StatusBadRequest, CodeBadRequest, "encoding job payload: %v", perr)
	}
	spec.Payload = payload
	return nil
}

// batchKey marks jobs that share one RBMS profile as batch-compatible.
// The separator cannot occur in machine names, widths, or methods.
func batchKey(machine string, width int, method string) string {
	return machine + "|" + strconv.Itoa(width) + "|" + method
}

// parseBatchKey is batchKey's inverse, for the prepare hook.
func parseBatchKey(key string) (profilestore.Key, bool) {
	parts := strings.Split(key, "|")
	if len(parts) != 3 {
		return profilestore.Key{}, false
	}
	width, err := strconv.Atoi(parts[1])
	if err != nil {
		return profilestore.Key{}, false
	}
	return profilestore.Key{Machine: parts[0], Width: width, Method: parts[2]}, true
}

// prepareBatch is the scheduler's shared-setup hook: fetch (or learn)
// the batch's RBMS profile once, so every member's own profile lookup
// is a cache hit. Errors are deliberately dropped — each member
// re-discovers them through its normal path and fails with the proper
// code.
func (s *Server) prepareBatch(ctx context.Context, key string, size int) {
	pk, ok := parseBatchKey(key)
	if !ok {
		return
	}
	_, _, _ = s.store.Serve(ctx, pk)
}

// execJob is the scheduler's executor. It rebuilds the job's trace
// from the persisted spec — the scheduler's execution context is
// detached from the submitting request, and a SIGKILL-recovered job
// has no live request at all, so the spec's trace ID is the thread
// that survives — then runs the payload through the exact synchronous
// path and records the finished trace like any HTTP request.
func (s *Server) execJob(ctx context.Context, j jobs.Job) (json.RawMessage, *jobs.Failure) {
	// Async work is the first class shed under overload: its callers
	// already chose to wait, so an admission retry later beats competing
	// with interactive requests now.
	ctx = overload.WithClass(ctx, overload.ClassJobs)
	tr := obs.NewTrace(j.Spec.TraceID, s.cfg.Now)
	tr.SetTag("job_id", j.ID)
	tr.SetTag("tenant", j.Spec.Tenant)
	if j.Requeues > 0 {
		tr.SetTag("requeues", strconv.Itoa(j.Requeues))
	}
	// The time between submission and this attempt splits into plain
	// queue wait and — for batchable jobs — the micro-batch coalescing
	// window the scheduler held the job open for.
	bw := j.BatchWait()
	if qw := s.cfg.Now().Sub(j.SubmittedAt) - bw; qw > 0 {
		tr.AddSpan("queue_wait", qw)
	}
	if bw > 0 {
		tr.AddSpan("batch_wait", bw)
	}
	ctx = obs.WithTrace(ctx, tr)
	result, fail := s.runJob(ctx, j)
	status := http.StatusOK
	if fail != nil {
		status = fail.Status
		if status == 0 {
			status = http.StatusInternalServerError
		}
		tr.Annotate("failed: %s: %s", fail.Code, fail.Message)
	}
	td := tr.Finish("job:"+j.Spec.Type, status)
	s.traces.Record(td)
	s.logTrace("job", td)
	return result, fail
}

// runJob decodes the payload and runs it through the exact synchronous
// path. Deterministic per spec — the seeds are in the payload — which
// is what makes crash-recovery re-runs byte-identical.
func (s *Server) runJob(ctx context.Context, j jobs.Job) (json.RawMessage, *jobs.Failure) {
	var (
		result any
		err    error
	)
	switch j.Spec.Type {
	case api.JobTypeMitigate:
		var req MitigateRequest
		if derr := json.Unmarshal(j.Spec.Payload, &req); derr != nil {
			return nil, &jobs.Failure{Code: CodeInternal, Status: http.StatusInternalServerError,
				Message: fmt.Sprintf("decoding job payload: %v", derr)}
		}
		result, err = s.mitigate(ctx, &req)
	case api.JobTypeCharacterize:
		var req CharacterizeRequest
		if derr := json.Unmarshal(j.Spec.Payload, &req); derr != nil {
			return nil, &jobs.Failure{Code: CodeInternal, Status: http.StatusInternalServerError,
				Message: fmt.Sprintf("decoding job payload: %v", derr)}
		}
		result, err = s.characterizeRequest(ctx, &req)
	default:
		return nil, &jobs.Failure{Code: CodeBadRequest, Status: http.StatusBadRequest,
			Message: fmt.Sprintf("unknown job type %q", j.Spec.Type)}
	}
	if err != nil {
		return nil, jobFailure(err)
	}
	// Stamp the protocol version and trace ID exactly like writeJSON
	// would have: a job's stored result carries the same envelope fields
	// the synchronous call's body would, trace ID included — which is
	// how a recovered job's result still names its original trace.
	if ve, ok := result.(interface{ SetAPIVersion(string) }); ok {
		ve.SetAPIVersion(api.Version)
	}
	if te, ok := result.(interface{ SetTraceID(string) }); ok {
		te.SetTraceID(obs.TraceID(ctx))
	}
	raw, merr := json.Marshal(result)
	if merr != nil {
		return nil, &jobs.Failure{Code: CodeInternal, Status: http.StatusInternalServerError,
			Message: fmt.Sprintf("encoding job result: %v", merr)}
	}
	return raw, nil
}

// jobFailure maps an execution error onto the job's terminal failure,
// marking the transient classes (upstream faults, open breakers)
// retryable so the scheduler can requeue within the job's attempt
// budget — with the breaker's cooldown as the retry delay.
func jobFailure(err error) *jobs.Failure {
	ae := toAPIError(err)
	f := &jobs.Failure{Code: ae.Code, Message: ae.Message, Status: ae.Status}
	switch ae.Code {
	case CodeUpstreamTransient, CodeBreakerOpen, CodeOverloaded:
		f.Retryable = true
		f.RetryAfterMS = ae.RetryAfter.Milliseconds()
	}
	return f
}

// handleJobList lists jobs in submission (ULID) order, one page at a
// time: ?cursor= is the ID of the last job of the previous page,
// ?limit= bounds the page (the documented default cap applies either
// way), and next_cursor in the envelope links the pages. The
// strictly-after cursor makes iteration stable under concurrent
// submissions — new jobs mint later ULIDs than any already listed.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	state, err := jobs.ParseState(r.URL.Query().Get("state"))
	if err != nil {
		writeError(w, r, apiErrorf(http.StatusBadRequest, CodeBadRequest,
			"unknown state filter %q", r.URL.Query().Get("state")))
		return
	}
	limit, cursor, aerr := parsePage(r.URL.Query())
	if aerr != nil {
		writeError(w, r, aerr)
		return
	}
	page, next := s.jobq.Page(state, r.URL.Query().Get("tenant"), cursor, limit)
	resp := &api.JobListResponse{Jobs: []api.JobInfo{}, NextCursor: next}
	for _, j := range page {
		resp.Jobs = append(resp.Jobs, jobInfo(j))
	}
	writeJSON(w, r, http.StatusOK, resp)
}

func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, r, apiErrorf(http.StatusNotFound, CodeNotFound, "no route %s %s", r.Method, r.URL.Path))
		return
	}
	if err := jobs.ValidID(id); err != nil {
		writeError(w, r, apiErrorf(http.StatusBadRequest, CodeBadRequest, "malformed job ID %q", id))
		return
	}
	switch r.Method {
	case http.MethodGet:
		s.handleJobGet(w, r, id)
	case http.MethodDelete:
		s.handleJobCancel(w, r, id)
	default:
		writeError(w, r, apiErrorf(http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"%s requires GET or DELETE", r.URL.Path))
	}
}

// handleJobGet returns one job, long-polling up to ?wait= (a Go
// duration, or a plain number of seconds) for it to reach a terminal
// state. The response is 200 with the job's current state either way —
// a long poll that times out is not an error.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request, id string) {
	j, ok := s.jobq.Get(id)
	if !ok {
		writeError(w, r, jobError(jobs.ErrNotFound))
		return
	}
	if wait := r.URL.Query().Get("wait"); wait != "" && !j.State.Terminal() {
		d, err := parseWait(wait, s.cfg.MaxTimeout)
		if err != nil {
			writeError(w, r, apiErrorf(http.StatusBadRequest, CodeBadRequest, "bad wait %q: %v", wait, err))
			return
		}
		if ch, ok := s.jobq.Await(id); ok && d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-ch:
			case <-timer.C:
			case <-r.Context().Done():
			}
			timer.Stop()
		}
		j, _ = s.jobq.Get(id)
	}
	writeJSON(w, r, http.StatusOK, jobResponse(j))
}

// parseWait accepts "30s"-style durations and bare seconds, clamped
// into [0, max]. Negative and overflowing values clamp to max: a
// caller asking for an out-of-range wait wants "as long as you'll let
// me", and the alternatives are both bugs — a negative or
// float-overflowed duration would skip the wait entirely (an
// immediate-return busy-poll), and an unclamped positive one would
// pin the connection past the server's long-poll ceiling. Only
// syntactically malformed values (including NaN, which would
// otherwise slip through every range check) are errors.
func parseWait(s string, max time.Duration) (time.Duration, error) {
	if d, err := time.ParseDuration(s); err == nil {
		if d < 0 || d > max {
			return max, nil
		}
		return d, nil
	}
	secs, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(secs) {
		return 0, fmt.Errorf("want a duration like 30s")
	}
	if secs < 0 || secs >= float64(max)/float64(time.Second) {
		// Covers +Inf and values whose nanosecond count would
		// overflow (or merely exceed) the ceiling — the conversion
		// below is only reached when it is exact and in range.
		return max, nil
	}
	return time.Duration(secs * float64(time.Second)), nil
}

// handleJobCancel cancels a job: queued jobs die immediately, running
// jobs get their execution context cancelled and wind down
// asynchronously (poll for the cancelled state).
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request, id string) {
	j, err := s.jobq.Cancel(id)
	if err != nil {
		writeError(w, r, jobError(err))
		return
	}
	writeJSON(w, r, http.StatusOK, jobResponse(j))
}

package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"biasmit/internal/profilestore"
)

// durableServer spins up the API journaling to dir.
func durableServer(t *testing.T, dir string) (*Server, *httptest.Server, *profilestore.DiskLog) {
	t.Helper()
	dlog, err := profilestore.OpenDiskLog(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		Workers:      2,
		MaxJobs:      2,
		ProfileShots: 64,
		MaxShots:     1 << 16,
		ProfileTTL:   time.Hour,
		Persist:      dlog,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, dlog
}

// canonicalAIM strips the fields that legitimately differ between runs
// (elapsed time, profile age) and returns the deterministic rest as
// JSON for byte comparison.
func canonicalAIM(t *testing.T, out *MitigateResponse) string {
	t.Helper()
	canon := struct {
		Machine    string
		Benchmark  string
		Shots      int
		Seed       int64
		Layout     []int
		Swaps      int
		Outcomes   []OutcomeCount
		Distinct   int
		Metrics    *PolicyMetrics
		Strongest  string
		Candidates []AIMCandidate
	}{
		out.Machine, out.Benchmark, out.Shots, out.Seed, out.Layout, out.Swaps,
		out.Outcomes, out.DistinctOutcomes, out.Metrics, out.Strongest, out.Candidates,
	}
	raw, err := json.Marshal(canon)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestWarmRestartServesIdenticalMitigation is the server-level crash
// recovery contract: a profile learned before an unclean shutdown (no
// Close, no compaction — WAL only) is served warm by the next process,
// with zero re-characterization and byte-identical AIM output.
func TestWarmRestartServesIdenticalMitigation(t *testing.T) {
	dir := t.TempDir()
	req := MitigateRequest{Machine: "ibmqx4", Policy: "aim", Benchmark: "bv-4A", Shots: 600, Seed: 3}

	_, ts1, _ := durableServer(t, dir)
	var before MitigateResponse
	_, data := postJSON(t, ts1.URL+"/v1/mitigate", req)
	if err := json.Unmarshal(data, &before); err != nil {
		t.Fatalf("pre-crash AIM run: %v\n%s", err, data)
	}
	if before.Profile == nil || before.Profile.Cached {
		t.Fatalf("pre-crash run should characterize fresh: %s", data)
	}
	// Unclean death: the DiskLog is abandoned mid-life. Every committed
	// WAL record is already fsynced, so nothing more is owed to disk.

	s2, ts2, _ := durableServer(t, dir)
	if st := s2.Store().StatsSnapshot(); st.Entries != 1 {
		t.Fatalf("restarted store has %d entries, want 1 recovered", st.Entries)
	}

	// require_cached_profile makes re-characterization an error rather
	// than a fallback — "warm" is asserted, not hoped for.
	warmReq := req
	warmReq.RequireCachedProfile = true
	var after MitigateResponse
	_, data = postJSON(t, ts2.URL+"/v1/mitigate", warmReq)
	if err := json.Unmarshal(data, &after); err != nil {
		t.Fatalf("post-restart AIM run: %v\n%s", err, data)
	}
	if after.Profile == nil || !after.Profile.Cached {
		t.Fatalf("post-restart run should hit the recovered profile: %s", data)
	}
	if !after.Profile.LearnedAt.Equal(before.Profile.LearnedAt) {
		t.Fatalf("recovered profile learned_at %v, want the original %v",
			after.Profile.LearnedAt, before.Profile.LearnedAt)
	}
	if got, want := canonicalAIM(t, &after), canonicalAIM(t, &before); got != want {
		t.Fatalf("mitigation output changed across restart:\npre:  %s\npost: %s", want, got)
	}
	if st := s2.Store().StatsSnapshot(); st.Characterizations != 0 {
		t.Fatalf("restarted server re-characterized %d times, want 0", st.Characterizations)
	}

	// The recovery gauges tell the same story on /metrics.
	_, metricsBody := getBody(t, ts2.URL+"/metrics")
	for _, want := range []string{
		"biasmitd_persistence_enabled 1",
		"biasmitd_profiles_restored 1",
		"biasmitd_profile_characterizations_total 0",
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metricsBody)
		}
	}
}

// TestMemoryOnlyServerReportsPersistenceDisabled pins the metrics
// contract for the default (no -data-dir) configuration.
func TestMemoryOnlyServerReportsPersistenceDisabled(t *testing.T) {
	_, ts := testServer(t)
	_, metricsBody := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metricsBody), "biasmitd_persistence_enabled 0") {
		t.Fatalf("metrics missing persistence_enabled 0:\n%s", metricsBody)
	}
}

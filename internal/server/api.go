package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/backend"
	"biasmit/internal/obs"
	"biasmit/internal/overload"
	"biasmit/internal/resilient"
)

// The wire contract — request/response bodies, error codes, the version
// string — lives in internal/api, shared with the typed client. The
// aliases below keep the server's historical names working; new code
// can use either spelling.
const (
	CodeBadRequest        = api.CodeBadRequest
	CodeBadBudget         = api.CodeBadBudget
	CodeUnknownMachine    = api.CodeUnknownMachine
	CodeUnknownBenchmark  = api.CodeUnknownBenchmark
	CodeProfileStale      = api.CodeProfileStale
	CodeDeadlineExceeded  = api.CodeDeadlineExceeded
	CodeBreakerOpen       = api.CodeBreakerOpen
	CodeOverloaded        = api.CodeOverloaded
	CodeUpstreamTransient = api.CodeUpstreamTransient
	CodeCanceled          = api.CodeCanceled
	CodeMethodNotAllowed  = api.CodeMethodNotAllowed
	CodeNotFound          = api.CodeNotFound
	CodeInternal          = api.CodeInternal
)

// APIError is the typed failure envelope (see api.Error).
type APIError = api.Error

// Aliases for the shared request/response bodies (see internal/api).
type (
	MitigateRequest      = api.MitigateRequest
	MitigateResponse     = api.MitigateResponse
	MitigateProfile      = api.MitigateProfile
	OutcomeCount         = api.OutcomeCount
	PolicyMetrics        = api.PolicyMetrics
	AIMCandidate         = api.AIMCandidate
	ProfileInfo          = api.ProfileInfo
	CharacterizeRequest  = api.CharacterizeRequest
	CharacterizeResponse = api.CharacterizeResponse
	ProfilesResponse     = api.ProfilesResponse
	HealthMachine        = api.HealthMachine
	HealthResponse       = api.HealthResponse
	errorEnvelope        = api.ErrorEnvelope
)

// apiErrorf builds an APIError with a formatted message.
func apiErrorf(status int, code, format string, args ...any) *APIError {
	return &APIError{Code: code, Message: fmt.Sprintf(format, args...), Status: status}
}

// toAPIError maps an arbitrary pipeline error onto the typed wire shape:
// APIErrors pass through, budget violations become bad_budget (a client
// mistake, not a server fault), and context endings become
// deadline_exceeded/canceled. Anything else is an internal error.
func toAPIError(err error) *APIError {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae
	}
	var boe *resilient.BreakerOpenError
	if errors.As(err, &boe) {
		out := apiErrorf(http.StatusServiceUnavailable, CodeBreakerOpen, "%v", boe)
		out.RetryAfter = boe.RetryAfter
		return out
	}
	var oe *overload.Error
	if errors.As(err, &oe) {
		// Shed by admission control: the typed 503 carries Retry-After so
		// well-behaved clients back off instead of hammering.
		out := apiErrorf(http.StatusServiceUnavailable, api.CodeOverloaded, "%v", oe)
		out.RetryAfter = oe.RetryAfter
		return out
	}
	var be *backend.BudgetError
	if errors.As(err, &be) {
		return apiErrorf(http.StatusBadRequest, CodeBadBudget, "%v", be)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return apiErrorf(http.StatusGatewayTimeout, CodeDeadlineExceeded, "request deadline exceeded")
	}
	if errors.Is(err, context.Canceled) {
		return apiErrorf(http.StatusServiceUnavailable, CodeCanceled, "request canceled")
	}
	var te *backend.TransientError
	if errors.As(err, &te) {
		return apiErrorf(http.StatusServiceUnavailable, CodeUpstreamTransient,
			"run kept failing transiently after retries: %v", err)
	}
	return apiErrorf(http.StatusInternalServerError, CodeInternal, "%v", err)
}

// asBadRequest is toAPIError with a different default: pipeline stages
// whose failures are driven by request parameters (benchmark
// construction, transpilation, policy configuration) surface their plain
// errors as bad_request instead of internal.
func asBadRequest(err error) *APIError {
	var ae *APIError
	var be *backend.BudgetError
	var te *backend.TransientError
	var boe *resilient.BreakerOpenError
	if errors.As(err, &ae) || errors.As(err, &be) || errors.As(err, &te) || errors.As(err, &boe) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return toAPIError(err)
	}
	return apiErrorf(http.StatusBadRequest, CodeBadRequest, "%v", err)
}

// writeJSON writes v with the given status, stamping the protocol
// version and the request's trace ID on every body that embeds
// api.Envelope (all of them — the contract says every response carries
// "api_version", and every envelope echoes the X-Trace-Id header as
// trace_id). Serialization runs under its own span so slow encodes show
// up in the stage breakdown.
func writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	if ve, ok := v.(interface{ SetAPIVersion(string) }); ok {
		ve.SetAPIVersion(api.Version)
	}
	if te, ok := v.(interface{ SetTraceID(string) }); ok {
		te.SetTraceID(obs.TraceID(r.Context()))
	}
	sp := obs.StartSpan(r.Context(), "serialize")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	sp.End()
}

// writeError maps err onto the typed wire shape and writes it, with a
// Retry-After header (in whole seconds, rounded up) when the error
// carries a cooldown. The error copy is stamped with the request's
// trace ID so every failure — 4xx and 5xx alike — is correlatable with
// the daemon's logs and /debug/traces.
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	ae := *toAPIError(err)
	ae.TraceID = obs.TraceID(r.Context())
	if ae.RetryAfter > 0 {
		secs := int64((ae.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, r, ae.Status, &errorEnvelope{Error: &ae})
}

// defaultPageLimit caps one page of a list response (GET /v1/profiles,
// GET /v1/jobs). Calls without ?limit= get up to this many entries plus
// a next_cursor when more remain, so pre-pagination clients keep
// working against any listing that fits one page.
const defaultPageLimit = 1000

// parsePage reads the shared ?limit=/?cursor= pagination parameters.
// Cursors are opaque watermarks (the last entry of the previous page);
// pages start strictly after them, which keeps iteration stable under
// concurrent inserts — new ULIDs sort after every ID already handed
// out.
func parsePage(q url.Values) (limit int, cursor string, aerr *APIError) {
	limit = defaultPageLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		// Non-integers, zero, and negatives are caller bugs: reject
		// with a typed 400 rather than silently serving the default
		// page. Values past the cap merely clamp — asking for "a lot"
		// is well-formed, the server just bounds its own work.
		if err != nil || n < 1 {
			return 0, "", apiErrorf(http.StatusBadRequest, CodeBadRequest,
				"bad limit %q (want a positive integer; pages cap at %d)", v, defaultPageLimit)
		}
		if n > defaultPageLimit {
			n = defaultPageLimit
		}
		limit = n
	}
	return limit, q.Get("cursor"), nil
}

// maxBodyBytes bounds request bodies; circuits above this are not a
// serving-path use case.
const maxBodyBytes = 1 << 20

// decodeJSON strictly decodes a request body into v. Oversized bodies
// get their own status and stable code (413 body_too_large) so clients
// can tell "shrink the circuit" apart from "fix the JSON".
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return apiErrorf(http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
				"request body exceeds %d bytes", mbe.Limit)
		}
		return apiErrorf(http.StatusBadRequest, CodeBadRequest, "decoding request body: %v", err)
	}
	return nil
}

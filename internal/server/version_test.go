package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"biasmit/internal/api"
)

// TestEveryResponseCarriesAPIVersion sweeps the JSON routes — success
// and error paths alike — and asserts each body carries the protocol
// version stamp. This is the wire contract the typed client checks
// before interpreting fields.
func TestEveryResponseCarriesAPIVersion(t *testing.T) {
	_, ts := testServer(t)

	assertVersion := func(label string, data []byte) {
		t.Helper()
		var probe struct {
			APIVersion string `json:"api_version"`
		}
		if err := json.Unmarshal(data, &probe); err != nil {
			t.Fatalf("%s: body is not JSON: %v\n%s", label, err, data)
		}
		if probe.APIVersion != api.Version {
			t.Fatalf("%s: api_version %q, want %q in %s", label, probe.APIVersion, api.Version, data)
		}
	}

	// Success paths.
	_, data := getBody(t, ts.URL+"/healthz")
	assertVersion("healthz", data)
	_, data = getBody(t, ts.URL+"/v1/profiles")
	assertVersion("profiles", data)
	resp, data := postJSON(t, ts.URL+"/v1/mitigate", MitigateRequest{
		Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 128, Seed: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mitigate status %d: %s", resp.StatusCode, data)
	}
	assertVersion("mitigate", data)
	resp, data = postJSON(t, ts.URL+"/v1/characterize", CharacterizeRequest{Machine: "ibmqx4"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("characterize status %d: %s", resp.StatusCode, data)
	}
	assertVersion("characterize", data)

	// Error paths: unknown machine, bad method, unknown route.
	_, data = postJSON(t, ts.URL+"/v1/mitigate", MitigateRequest{
		Machine: "no-such-machine", Policy: "baseline", Benchmark: "bv-4A", Shots: 128,
	})
	assertVersion("mitigate-error", data)
	_, data = getBody(t, ts.URL+"/v1/mitigate")
	assertVersion("method-error", data)
	_, data = getBody(t, ts.URL+"/v1/no-such-route")
	assertVersion("route-error", data)
}

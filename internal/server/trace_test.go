package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/obs"
)

// doRequest issues one request with optional headers and returns the
// response plus its body.
func doRequest(t *testing.T, method, url, body string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// envelopeProbe is the part of every response body under test here.
type envelopeProbe struct {
	APIVersion string    `json:"api_version"`
	TraceID    string    `json:"trace_id"`
	Error      *APIError `json:"error"`
}

// TestErrorEnvelopeFullyStamped drives every route into representative
// error statuses (405 on all of them, plus 400/404/413/429/504 where
// the route can produce them) and requires each failure to be the full
// contract: typed code, api_version, a trace ID on the envelope, on the
// error object, and in the X-Trace-Id header — all three the same ID.
func TestErrorEnvelopeFullyStamped(t *testing.T) {
	s := New(Config{
		Workers:      2,
		MaxJobs:      2,
		ProfileShots: 64,
		MaxShots:     1 << 16,
		ProfileTTL:   time.Hour,
		JobQuota:     1,
		JobWorkers:   1,
	})
	ts := newTestHTTP(t, s)

	// Occupy the single-job tenant quota so a second submission 429s.
	slowJob := `{"type":"mitigate","mitigate":{"machine":"ibmqx4","policy":"baseline","benchmark":"bv-4A","shots":65536}}`
	if resp, data := doRequest(t, "POST", ts+"/v1/jobs", slowJob, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("quota-filling job: status %d: %s", resp.StatusCode, data)
	}

	big := `{"machine":"` + strings.Repeat("x", maxBodyBytes) + `"}`
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		// First, while the 65536-shot filler above is still occupying the
		// quota — it takes ~300ms, far longer than this case needs.
		{"quota 429", "POST", "/v1/jobs", slowJob, 429, api.CodeQuotaExceeded},
		{"mitigate 405", "GET", "/v1/mitigate", "", 405, CodeMethodNotAllowed},
		{"characterize 405", "GET", "/v1/characterize", "", 405, CodeMethodNotAllowed},
		{"profiles 405", "POST", "/v1/profiles", "{}", 405, CodeMethodNotAllowed},
		{"jobs 405", "PUT", "/v1/jobs", "{}", 405, CodeMethodNotAllowed},
		{"job by id 405", "PUT", "/v1/jobs/01AAAAAAAAAAAAAAAAAAAAAAAA", "{}", 405, CodeMethodNotAllowed},
		{"healthz 405", "POST", "/healthz", "", 405, CodeMethodNotAllowed},
		{"metrics 405", "POST", "/metrics", "", 405, CodeMethodNotAllowed},
		{"debug traces 405", "POST", "/debug/traces", "", 405, CodeMethodNotAllowed},
		{"unknown route 404", "GET", "/v1/nope", "", 404, CodeNotFound},
		{"bad json 400", "POST", "/v1/mitigate", "{not json", 400, CodeBadRequest},
		{"bad limit 400", "GET", "/v1/jobs?limit=0", "", 400, CodeBadRequest},
		{"unknown machine 404", "POST", "/v1/mitigate",
			`{"machine":"nope","policy":"baseline","benchmark":"bv-4A","shots":100}`, 404, CodeUnknownMachine},
		{"oversized body 413", "POST", "/v1/mitigate", big, 413, api.CodeBodyTooLarge},
		{"job not found 404", "GET", "/v1/jobs/01AAAAAAAAAAAAAAAAAAAAAAAA", "", 404, api.CodeJobNotFound},
		{"malformed job id 400", "GET", "/v1/jobs/xyz", "", 400, CodeBadRequest},
		{"deadline 504", "POST", "/v1/mitigate",
			`{"machine":"ibmqx4","policy":"baseline","benchmark":"bv-4A","shots":65536,"timeout_ms":1}`,
			504, CodeDeadlineExceeded},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := doRequest(t, tc.method, ts+tc.path, tc.body, nil)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, data)
			}
			var env envelopeProbe
			if err := json.Unmarshal(data, &env); err != nil {
				t.Fatalf("body is not the error envelope: %v\n%s", err, data)
			}
			if env.Error == nil || env.Error.Code != tc.wantCode {
				t.Fatalf("error %+v, want code %q", env.Error, tc.wantCode)
			}
			if env.APIVersion != api.Version {
				t.Fatalf("api_version %q, want %q", env.APIVersion, api.Version)
			}
			header := resp.Header.Get(api.TraceHeader)
			if header == "" || env.TraceID != header || env.Error.TraceID != header {
				t.Fatalf("trace stamping diverged: header=%q envelope=%q error=%q",
					header, env.TraceID, env.Error.TraceID)
			}
		})
	}
}

// newTestHTTP wraps an already-constructed server in httptest.
func newTestHTTP(t *testing.T, s *Server) string {
	t.Helper()
	h := httptest.NewServer(s.Handler())
	t.Cleanup(h.Close)
	return h.URL
}

// TestTraceIDAdoptedAndMinted covers the edge contract: a valid inbound
// X-Trace-Id is adopted verbatim, a malformed one is replaced with a
// fresh mint, and successive requests get distinct IDs.
func TestTraceIDAdoptedAndMinted(t *testing.T) {
	_, ts := testServer(t)
	mine := obs.NewTraceID()
	resp, data := doRequest(t, "GET", ts.URL+"/healthz", "", map[string]string{api.TraceHeader: mine})
	var env envelopeProbe
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get(api.TraceHeader) != mine || env.TraceID != mine {
		t.Fatalf("valid inbound ID not adopted: header=%q envelope=%q want %q",
			resp.Header.Get(api.TraceHeader), env.TraceID, mine)
	}

	resp, _ = doRequest(t, "GET", ts.URL+"/healthz", "", map[string]string{api.TraceHeader: "not-a-ulid"})
	minted := resp.Header.Get(api.TraceHeader)
	if minted == "" || minted == "not-a-ulid" {
		t.Fatalf("malformed inbound ID not replaced: %q", minted)
	}
	resp2, _ := doRequest(t, "GET", ts.URL+"/healthz", "", nil)
	if again := resp2.Header.Get(api.TraceHeader); again == minted || again == "" {
		t.Fatalf("successive requests share trace ID %q", again)
	}
}

// TestDebugTracesSpansAccountForElapsed runs one mitigation under a
// known trace ID and requires /debug/traces to hold it with a span
// breakdown (decode → sample → correct → serialize) whose durations
// stay within the recorded end-to-end time, plus the hedge tag when
// X-Hedged is set.
func TestDebugTracesSpansAccountForElapsed(t *testing.T) {
	_, ts := testServer(t)
	mine := obs.NewTraceID()
	resp, data := doRequest(t, "POST", ts.URL+"/v1/mitigate",
		`{"machine":"ibmqx4","policy":"baseline","benchmark":"bv-4A","shots":4096,"seed":9}`,
		map[string]string{api.TraceHeader: mine, api.HedgeHeader: "true", "Content-Type": "application/json"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mitigate: status %d: %s", resp.StatusCode, data)
	}

	_, data = getBody(t, ts.URL+"/debug/traces")
	var tr api.TracesResponse
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatal(err)
	}
	var entry *api.TraceEntry
	for i := range tr.Traces {
		if tr.Traces[i].TraceID == mine {
			entry = &tr.Traces[i]
		}
	}
	if entry == nil {
		t.Fatalf("trace %s not retained in %d entries: %s", mine, len(tr.Traces), data)
	}
	if entry.Route != "/v1/mitigate" || entry.Status != 200 {
		t.Fatalf("entry route=%q status=%d, want /v1/mitigate 200", entry.Route, entry.Status)
	}
	if entry.Tags["hedge"] != "true" {
		t.Fatalf("X-Hedged request not tagged hedge=true: %+v", entry.Tags)
	}
	var sum float64
	seen := map[string]bool{}
	for _, sp := range entry.Spans {
		if sp.DurationMS < 0 || sp.StartMS < 0 {
			t.Fatalf("span %+v has negative timing", sp)
		}
		sum += sp.DurationMS
		seen[sp.Name] = true
	}
	for _, want := range []string{"decode", "sample", "correct", "serialize"} {
		if !seen[want] {
			t.Fatalf("span %q missing from %+v", want, entry.Spans)
		}
	}
	// The spans tile the request, so their sum cannot exceed the
	// end-to-end time by more than rounding; the smoke trace scenario
	// asserts the tight 10% bound where a slow backend dominates.
	if sum > entry.ElapsedMS*1.05+1 {
		t.Fatalf("spans sum to %.2fms, more than the %.2fms end-to-end", sum, entry.ElapsedMS)
	}

	// ?limit= caps the listing; a bad limit is a typed 400.
	_, data = getBody(t, ts.URL+"/debug/traces?limit=1")
	tr = api.TracesResponse{}
	if err := json.Unmarshal(data, &tr); err != nil || len(tr.Traces) != 1 {
		t.Fatalf("limit=1 returned %d traces (err %v)", len(tr.Traces), err)
	}
	resp, data = getBody(t, ts.URL+"/debug/traces?limit=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: status %d: %s", resp.StatusCode, data)
	}
}

// TestProfilesPagination learns three profiles and walks them in pages
// of two, requiring the cursor to hand out each profile exactly once in
// key order.
func TestProfilesPagination(t *testing.T) {
	_, ts := testServer(t)
	for _, body := range []string{
		`{"machine":"ibmqx2","method":"brute","qubits":2}`,
		`{"machine":"ibmqx4","method":"brute","qubits":3}`,
		`{"machine":"ibmqx4","method":"brute","qubits":5}`,
	} {
		if resp, data := postJSON(t, ts.URL+"/v1/characterize", json.RawMessage(body)); resp.StatusCode != 200 {
			t.Fatalf("characterize %s: %d %s", body, resp.StatusCode, data)
		}
	}
	var got []ProfileInfo
	cursor := ""
	for page := 0; ; page++ {
		url := ts.URL + "/v1/profiles?limit=2"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		_, data := getBody(t, url)
		var pr ProfilesResponse
		if err := json.Unmarshal(data, &pr); err != nil {
			t.Fatal(err)
		}
		got = append(got, pr.Profiles...)
		if pr.NextCursor == "" {
			break
		}
		cursor = pr.NextCursor
		if page > 3 {
			t.Fatal("pagination did not terminate")
		}
	}
	if len(got) != 3 {
		t.Fatalf("paged %d profiles, want 3: %+v", len(got), got)
	}
	seen := map[string]bool{}
	for _, p := range got {
		key := p.Machine + "/" + p.Method
		if seen[key+string(rune('0'+p.Width))] {
			t.Fatalf("profile %s width %d served twice", key, p.Width)
		}
		seen[key+string(rune('0'+p.Width))] = true
	}
}

// TestJobListPagination submits four jobs and walks them in pages of
// two, requiring ULID order and exactly-once delivery.
func TestJobListPagination(t *testing.T) {
	_, ts := testServer(t)
	for i := 0; i < 4; i++ {
		body := `{"type":"mitigate","mitigate":{"machine":"ibmqx4","policy":"baseline","benchmark":"bv-4A","shots":256}}`
		if resp, data := doRequest(t, "POST", ts.URL+"/v1/jobs", body, nil); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	var ids []string
	cursor := ""
	for page := 0; ; page++ {
		url := ts.URL + "/v1/jobs?limit=2"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		_, data := getBody(t, url)
		var jr api.JobListResponse
		if err := json.Unmarshal(data, &jr); err != nil {
			t.Fatal(err)
		}
		if len(jr.Jobs) > 2 {
			t.Fatalf("page %d has %d jobs, limit 2", page, len(jr.Jobs))
		}
		for _, j := range jr.Jobs {
			ids = append(ids, j.ID)
		}
		if jr.NextCursor == "" {
			break
		}
		cursor = jr.NextCursor
		if page > 4 {
			t.Fatal("pagination did not terminate")
		}
	}
	if len(ids) != 4 {
		t.Fatalf("paged %d jobs, want 4: %v", len(ids), ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("jobs out of ULID order: %v", ids)
		}
	}
}

// TestRoutesDocumented walks the server's route table and requires
// every pattern to appear in docs/API.md — the reference cannot
// silently fall behind the registered surface.
func TestRoutesDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatalf("docs/API.md unreadable: %v", err)
	}
	s := New(Config{Workers: 1, ProfileShots: 16})
	for _, rt := range s.routes() {
		if rt.pattern == "/" {
			continue // the catch-all 404, not an API surface
		}
		if !strings.Contains(string(doc), rt.pattern) {
			t.Errorf("route %s registered but absent from docs/API.md", rt.pattern)
		}
	}
}

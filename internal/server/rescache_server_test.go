package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/backend"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/dist"
)

// countingRuns counts backend executions, optionally holding each one
// open until released so concurrent requests demonstrably overlap.
type countingRuns struct {
	runs    atomic.Int64
	hold    chan struct{} // non-nil: every run blocks here
	entered chan struct{} // buffered; one tick per run that started
}

func (c *countingRuns) wrap(run backend.Runner) backend.Runner {
	return func(ctx context.Context, cc *circuit.Circuit, dev *device.Device, opt backend.Options) (*dist.Counts, error) {
		c.runs.Add(1)
		if c.entered != nil {
			c.entered <- struct{}{}
		}
		if c.hold != nil {
			<-c.hold
		}
		return run(ctx, cc, dev, opt)
	}
}

func cachedServer(t *testing.T, counting *countingRuns) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Workers: 2, MaxJobs: 4, ProfileShots: 64, MaxShots: 1 << 16,
		ProfileTTL: time.Hour, ResultCache: true,
	}
	if counting != nil {
		cfg.wrapRun = counting.wrap
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// stripPerRequest zeroes the fields writeJSON and the cache stamp per
// request — envelope and cache metadata — leaving everything the
// byte-identity contract covers, ElapsedMS included.
func stripPerRequest(t *testing.T, raw []byte) []byte {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("unmarshal response: %v", err)
	}
	delete(m, "api_version")
	delete(m, "trace_id")
	delete(m, "cache_hit")
	delete(m, "coalesced")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestResultCacheHitIsByteIdentical: the second identical request is
// served from the cache (pipeline not re-run) and its body — elapsed
// time included — is byte-identical to the first modulo the envelope
// and the cache_hit marker.
func TestResultCacheHitIsByteIdentical(t *testing.T) {
	counting := &countingRuns{}
	_, ts := cachedServer(t, counting)

	req := &MitigateRequest{Machine: "ibmqx4", Policy: "aim", Benchmark: "bv-4A", Shots: 512, Seed: 7}
	resp1, raw1 := postJSON(t, ts.URL+"/v1/mitigate", req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", resp1.StatusCode, raw1)
	}
	runsAfterFirst := counting.runs.Load()
	resp2, raw2 := postJSON(t, ts.URL+"/v1/mitigate", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d %s", resp2.StatusCode, raw2)
	}
	if got := counting.runs.Load(); got != runsAfterFirst {
		t.Fatalf("cache hit re-ran the backend: %d runs, want %d", got, runsAfterFirst)
	}

	var m1, m2 MitigateResponse
	if err := json.Unmarshal(raw1, &m1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw2, &m2); err != nil {
		t.Fatal(err)
	}
	if m1.CacheHit {
		t.Fatal("first response claims cache_hit")
	}
	if !m2.CacheHit {
		t.Fatal("second response not marked cache_hit")
	}
	if m1.ElapsedMS != m2.ElapsedMS {
		t.Fatalf("cached elapsed_ms %v differs from original %v — the bytes were recomputed, not replayed", m2.ElapsedMS, m1.ElapsedMS)
	}
	if !bytes.Equal(stripPerRequest(t, raw1), stripPerRequest(t, raw2)) {
		t.Fatalf("cached body differs from original:\n%s\n%s", raw1, raw2)
	}
	if m1.TraceID == m2.TraceID || m2.TraceID == "" {
		t.Fatalf("trace IDs %q/%q: each response must carry its own", m1.TraceID, m2.TraceID)
	}
}

// TestResultCacheCoalescing: N concurrent identical requests execute
// the backend pipeline exactly once; every response carries the same
// result bytes, one as the leader (miss) and N-1 marked coalesced.
func TestResultCacheCoalescing(t *testing.T) {
	const n = 4
	counting := &countingRuns{hold: make(chan struct{}), entered: make(chan struct{}, 16)}
	s, ts := cachedServer(t, counting)

	req := &MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 512, Seed: 11}
	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		resp, raw := postJSON(t, ts.URL+"/v1/mitigate", req)
		results <- result{resp.StatusCode, raw}
	}
	wg.Add(1)
	go post()
	// The leader is inside the backend before the followers launch, so
	// all N verifiably overlap one execution.
	<-counting.entered
	for i := 1; i < n; i++ {
		wg.Add(1)
		go post()
	}
	waitFor(t, func() bool { return s.rescache.Stats().Coalesced == n-1 })
	close(counting.hold)
	wg.Wait()
	close(results)

	var leaders, coalesced int
	var canonical []byte
	for r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("request failed: %d %s", r.status, r.body)
		}
		var m MitigateResponse
		if err := json.Unmarshal(r.body, &m); err != nil {
			t.Fatal(err)
		}
		if m.Coalesced {
			coalesced++
		} else {
			leaders++
		}
		stripped := stripPerRequest(t, r.body)
		if canonical == nil {
			canonical = stripped
		} else if !bytes.Equal(canonical, stripped) {
			t.Fatalf("coalesced responses diverge:\n%s\n%s", canonical, stripped)
		}
	}
	if leaders != 1 || coalesced != n-1 {
		t.Fatalf("%d leaders, %d coalesced; want 1 and %d", leaders, coalesced, n-1)
	}
	if got := counting.runs.Load(); got != 1 {
		t.Fatalf("backend ran %d times for %d concurrent identical requests, want exactly 1", got, n)
	}
	if st := s.rescache.Stats(); st.Coalesced != n-1 || st.Misses != 1 {
		t.Fatalf("cache stats %+v; want 1 miss, %d coalesced", st, n-1)
	}
}

// TestResultCacheInvalidatedByCharacterize: a forced re-characterize
// bumps the profile generation, so the next identical AIM request
// recomputes instead of replaying bytes tied to the old profile.
func TestResultCacheInvalidatedByCharacterize(t *testing.T) {
	s, ts := cachedServer(t, nil)

	req := &MitigateRequest{Machine: "ibmqx4", Policy: "aim", Benchmark: "bv-4A", Shots: 512, Seed: 7}
	if resp, raw := postJSON(t, ts.URL+"/v1/mitigate", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", resp.StatusCode, raw)
	}
	if resp, raw := postJSON(t, ts.URL+"/v1/mitigate", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d %s", resp.StatusCode, raw)
	} else {
		var m MitigateResponse
		_ = json.Unmarshal(raw, &m)
		if !m.CacheHit {
			t.Fatalf("second request not a cache hit: %s", raw)
		}
	}

	// Force a re-learn: the published profile bumps the generation.
	cresp, craw := postJSON(t, ts.URL+"/v1/characterize",
		&api.CharacterizeRequest{Machine: "ibmqx4", Method: "brute", Qubits: 5, Force: true})
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("characterize: %d %s", cresp.StatusCode, craw)
	}

	resp3, raw3 := postJSON(t, ts.URL+"/v1/mitigate", req)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-characterize request: %d %s", resp3.StatusCode, raw3)
	}
	var m3 MitigateResponse
	if err := json.Unmarshal(raw3, &m3); err != nil {
		t.Fatal(err)
	}
	if m3.CacheHit {
		t.Fatal("request after a forced re-characterize was served stale cached bytes")
	}
	st := s.rescache.Stats()
	if st.Invalidated != 1 {
		t.Fatalf("invalidations %d, want 1 (the re-characterize must drop the dependent entry)", st.Invalidated)
	}
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("cache stats %+v; want 1 hit and 2 misses around the invalidation", st)
	}
	// The fresh result is cached under the new generation.
	if resp, raw := postJSON(t, ts.URL+"/v1/mitigate", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("fourth request: %d %s", resp.StatusCode, raw)
	} else {
		var m MitigateResponse
		_ = json.Unmarshal(raw, &m)
		if !m.CacheHit {
			t.Fatal("result under the new profile generation was not cached")
		}
	}
}

// TestResultCacheMetricsExposed: the /metrics exposition carries the
// result-cache counters, and a disabled cache reports enabled 0.
func TestResultCacheMetricsExposed(t *testing.T) {
	_, ts := cachedServer(t, nil)
	req := &MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 256, Seed: 3}
	postJSON(t, ts.URL+"/v1/mitigate", req)
	postJSON(t, ts.URL+"/v1/mitigate", req)

	_, data := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"biasmitd_result_cache_enabled 1",
		"biasmitd_result_cache_hits_total 1",
		"biasmitd_result_cache_misses_total 1",
		"biasmitd_result_cache_coalesced_total 0",
		"biasmitd_result_cache_invalidations_total 0",
		"biasmitd_result_cache_entries 1",
		"biasmitd_result_cache_bytes",
	} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("metrics missing %q:\n%s", want, data)
		}
	}

	_, tsOff := testServer(t)
	_, dataOff := getBody(t, tsOff.URL+"/metrics")
	if !strings.Contains(string(dataOff), "biasmitd_result_cache_enabled 0") {
		t.Fatalf("cache-off metrics missing enabled 0 gauge:\n%s", dataOff)
	}
	if strings.Contains(string(dataOff), "biasmitd_result_cache_hits_total") {
		t.Fatal("cache-off metrics expose cache counters")
	}
}

// TestResultCacheAsyncJobsShareCache: async jobs execute through the
// same cached path, so a job identical to a completed sync request
// replays its bytes (and vice versa) rather than re-running.
func TestResultCacheAsyncJobsShareCache(t *testing.T) {
	counting := &countingRuns{}
	s, ts := cachedServer(t, counting)
	t.Cleanup(func() { s.DrainJobs(context.Background()) })

	mreq := &MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 512, Seed: 21}
	_, syncRaw := postJSON(t, ts.URL+"/v1/mitigate", mreq)
	runsAfterSync := counting.runs.Load()

	sresp, sraw := postJSON(t, ts.URL+"/v1/jobs", &api.JobSubmitRequest{Type: "mitigate", Mitigate: mreq})
	if sresp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", sresp.StatusCode, sraw)
	}
	var sub api.JobResponse
	if err := json.Unmarshal(sraw, &sub); err != nil {
		t.Fatal(err)
	}

	var jr api.JobResponse
	waitFor(t, func() bool {
		_, data := getBody(t, ts.URL+"/v1/jobs/"+sub.Job.ID)
		if err := json.Unmarshal(data, &jr); err != nil {
			return false
		}
		return jr.Job.State == "done"
	})
	if counting.runs.Load() != runsAfterSync {
		t.Fatalf("async job re-ran the backend despite an identical cached sync result")
	}
	var jm MitigateResponse
	if err := json.Unmarshal(jr.Result, &jm); err != nil {
		t.Fatalf("job result: %v", err)
	}
	if !jm.CacheHit {
		t.Fatal("job result not marked cache_hit")
	}
	if !bytes.Equal(stripPerRequest(t, syncRaw), stripPerRequest(t, jr.Result)) {
		t.Fatalf("job result differs from the cached sync bytes:\n%s\n%s", syncRaw, jr.Result)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/backend"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/jobs"
	"biasmit/internal/overload"
)

// postJSONHeaders is postJSON with request headers.
func postJSONHeaders(t *testing.T, url string, body any, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestServedPolicyEchoesWithoutBrownout: every mitigate response says
// what actually ran; with no brownout that is the requested policy at
// tier 0.
func TestServedPolicyEchoesWithoutBrownout(t *testing.T) {
	_, ts := testServer(t)
	resp, data := postJSON(t, ts.URL+"/v1/mitigate", MitigateRequest{
		Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 128, Seed: 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out MitigateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ServedPolicy != "baseline" || out.BrownoutTier != overload.TierFull {
		t.Fatalf("served=%q tier=%d, want baseline at tier 0", out.ServedPolicy, out.BrownoutTier)
	}
}

// TestBrownoutServesSIMForAIM: with the brownout controller one tier
// down, an AIM request runs the cheaper SIM policy and the response
// says so — requested policy, served policy, and tier all visible.
func TestBrownoutServesSIMForAIM(t *testing.T) {
	s := New(Config{
		Workers: 2, MaxJobs: 2, ProfileShots: 64, MaxShots: 1 << 16, ProfileTTL: time.Hour,
		Brownout: true, BrownoutDwellDown: time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Step the controller down: sustained shedding past the dwell.
	s.brown.Observe(true)
	time.Sleep(10 * time.Millisecond)
	s.brown.Observe(true)
	if tier := s.brown.Tier(); tier != overload.TierSIM {
		t.Fatalf("tier = %d after sustained pressure, want %d", tier, overload.TierSIM)
	}

	resp, data := postJSON(t, ts.URL+"/v1/mitigate", MitigateRequest{
		Machine: "ibmqx4", Policy: "aim", Benchmark: "bv-4A", Shots: 128, Seed: 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out MitigateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Policy != "aim" || out.ServedPolicy != "sim" || out.BrownoutTier != overload.TierSIM {
		t.Fatalf("policy=%q served=%q tier=%d, want aim served as sim at tier 1",
			out.Policy, out.ServedPolicy, out.BrownoutTier)
	}
	if out.Profile != nil {
		t.Fatalf("degraded SIM run still fetched an AIM profile: %s", data)
	}
}

// blockingRuns wraps the backend so every run parks until release is
// closed — a saturated fleet for admission tests.
type blockingRuns struct {
	mu      sync.Mutex
	release chan struct{}
	entered chan struct{}
}

func (b *blockingRuns) wrap(run backend.Runner) backend.Runner {
	return func(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt backend.Options) (*dist.Counts, error) {
		b.mu.Lock()
		entered := b.entered
		b.entered = nil // signal first entry only
		b.mu.Unlock()
		if entered != nil {
			close(entered)
		}
		select {
		case <-b.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return run(ctx, c, dev, opt)
	}
}

// TestAdaptiveLimiterShedsTyped503: with the adaptive limiter on and
// capacity saturated, excess requests are shed after the CoDel queue
// timeout with the typed overloaded error and a Retry-After header —
// not queued behind the stuck work.
func TestAdaptiveLimiterShedsTyped503(t *testing.T) {
	blocker := &blockingRuns{release: make(chan struct{}), entered: make(chan struct{})}
	entered := blocker.entered
	cfg := Config{
		Workers: 1, MaxJobs: 1, ProfileShots: 64, MaxShots: 1 << 16, ProfileTTL: time.Hour,
		AutoInflight: true, QueueTimeout: 5 * time.Millisecond,
	}
	cfg.wrapRun = blocker.wrap
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	var once sync.Once
	release := func() { once.Do(func() { close(blocker.release) }) }
	t.Cleanup(release)

	req := MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 128, Seed: 3}
	done := make(chan struct{})
	go func() {
		defer close(done)
		postJSON(t, ts.URL+"/v1/mitigate", req)
	}()
	<-entered // the slot-holder is inside the backend, parked

	start := time.Now()
	resp, data := postJSON(t, ts.URL+"/v1/mitigate", req)
	waited := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	ae := decodeError(t, data)
	if ae.Code != api.CodeOverloaded {
		t.Fatalf("code %q, want %q", ae.Code, api.CodeOverloaded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	// Shed, not queued: the wait is the queue timeout, far under the
	// slot-holder's park time.
	if waited > 2*time.Second {
		t.Fatalf("shed took %v — request queued behind stuck work", waited)
	}
	if st := s.limiter.Stats(); st.Timeouts[overload.ClassMitigate] == 0 {
		t.Fatalf("limiter stats %+v recorded no mitigate queue-timeout shed", st)
	}

	release()
	<-done
}

// TestDeadlineHeaderShedsExpiredBudget: a request whose propagated
// deadline already lapsed is refused up front with the typed overload
// error; a malformed header is the caller's mistake.
func TestDeadlineHeaderShedsExpiredBudget(t *testing.T) {
	_, ts := testServer(t)
	req := MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 128, Seed: 3}

	past := overload.FormatDeadline(time.Now().Add(-time.Second))
	resp, data := postJSONHeaders(t, ts.URL+"/v1/mitigate", req, map[string]string{overload.DeadlineHeader: past})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d for expired budget: %s", resp.StatusCode, data)
	}
	if ae := decodeError(t, data); ae.Code != api.CodeOverloaded {
		t.Fatalf("code %q, want %q", ae.Code, api.CodeOverloaded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("expired-budget shed missing Retry-After")
	}

	resp, data = postJSONHeaders(t, ts.URL+"/v1/mitigate", req, map[string]string{overload.DeadlineHeader: "not-a-time"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d for malformed header: %s", resp.StatusCode, data)
	}
}

// TestJobSubmitPersistsDeadline: the header rides into the durable job
// spec so the scheduler (even post-recovery) can expire it.
func TestJobSubmitPersistsDeadline(t *testing.T) {
	s, ts := testServer(t)
	dl := time.Now().Add(time.Hour).UTC().Truncate(time.Millisecond)
	resp, data := postJSONHeaders(t, ts.URL+"/v1/jobs", api.JobSubmitRequest{
		Type: api.JobTypeMitigate,
		Mitigate: &MitigateRequest{
			Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 128, Seed: 3,
		},
	}, map[string]string{overload.DeadlineHeader: overload.FormatDeadline(dl)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var jr api.JobResponse
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatal(err)
	}
	j, ok := s.jobq.Get(jr.Job.ID)
	if !ok {
		t.Fatalf("submitted job %s not in queue", jr.Job.ID)
	}
	if j.Spec.Deadline == nil || !j.Spec.Deadline.Equal(dl) {
		t.Fatalf("spec deadline = %v, want %v", j.Spec.Deadline, dl)
	}
}

// TestHealthzQueueHighWater: backlog past the mark flips readiness to
// 503 so balancers stop routing here, and the depth gauges are visible.
func TestHealthzQueueHighWater(t *testing.T) {
	s := New(Config{
		Workers: 2, MaxJobs: 2, ProfileShots: 64, MaxShots: 1 << 16, ProfileTTL: time.Hour,
		QueueHighWater: 1,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	// Halt dispatch so submissions stay queued.
	s.DrainJobs(context.Background())
	for i := 0; i < 2; i++ {
		if _, err := s.jobq.Submit(jobs.Spec{Type: "mitigate", Payload: json.RawMessage(`{}`)}); err != nil {
			t.Fatal(err)
		}
	}
	resp, data := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with backlog over high water, want 503: %s", resp.StatusCode, data)
	}
	var h HealthResponse
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "unavailable" || h.JobsQueued != 2 {
		t.Fatalf("health %+v, want unavailable with 2 queued", h)
	}
}

// TestMetricsExposeOverload: the overload subsystem is visible on
// /metrics even when fully disabled (gauges read 0/off).
func TestMetricsExposeOverload(t *testing.T) {
	_, ts := testServer(t)
	resp, data := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"biasmitd_overload_limiter_enabled 0",
		"biasmitd_brownout_tier 0",
		"biasmitd_watchdog_tasks",
		"biasmitd_retry_budget_denials_total 0",
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

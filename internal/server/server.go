// Package server implements biasmitd's HTTP/JSON API: readout-error
// mitigation as a service over the simulated machine models.
//
// The daemon inverts the CLI workflow. Instead of every invocation
// re-learning the machine's RBMS profile and exiting, a long-lived
// process holds a profile cache (internal/profilestore) and serves
// mitigation requests against it:
//
//	POST /v1/mitigate     run a benchmark under baseline/SIM/AIM
//	POST /v1/characterize learn (or reuse) an RBMS profile
//	GET  /v1/profiles     list cached profiles and their freshness
//	GET  /healthz         liveness probe
//	GET  /metrics         Prometheus text metrics
//
// Requests carry explicit budgets and deadlines: shot counts are
// validated with backend.CheckShots plus a server-level cap, every job
// runs under a context deadline, and heavy work is admitted through a
// bounded job gate so a burst cannot oversubscribe the orchestrate
// worker pools underneath. Failures use one stable JSON error shape
// (APIError) with machine-readable codes.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"hash/fnv"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"biasmit/internal/api"
	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/chaos"
	"biasmit/internal/core"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/experiments"
	"biasmit/internal/jobs"
	"biasmit/internal/kernels"
	"biasmit/internal/metrics"
	"biasmit/internal/obs"
	"biasmit/internal/orchestrate"
	"biasmit/internal/overload"
	"biasmit/internal/profilestore"
	"biasmit/internal/qasm"
	"biasmit/internal/rescache"
	"biasmit/internal/resilient"
)

// Config tunes a Server. The zero value of every field selects a
// sensible default.
type Config struct {
	// Machines resolves a machine name to its device model; defaults to
	// device.ByName (the paper's three machines).
	Machines func(name string) (*device.Device, bool)
	// Workers bounds each job's internal parallelism (core.Machine
	// Workers; zero selects all CPUs).
	Workers int
	// MaxJobs bounds how many mitigation/characterization jobs run
	// concurrently; further requests queue until a slot frees or their
	// deadline ends. Default 2.
	MaxJobs int
	// DefaultTimeout is the per-request deadline when the request does
	// not set one (default 60s); MaxTimeout caps what a request may ask
	// for (default 5m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxShots is the per-request trial-budget cap (default 1<<20,
	// never above backend.MaxShots).
	MaxShots int
	// ProfileShots is the characterization budget per basis state
	// (brute) or per window (awct) or total (esct); default 2048.
	ProfileShots int
	// ProfileTTL is how long cached profiles stay fresh (default
	// profilestore.DefaultTTL).
	ProfileTTL time.Duration
	// Persist, when non-nil, makes the profile store durable: every
	// insert/refresh/eviction is journaled through it (WAL + snapshots)
	// and its recovered profiles are loaded into the store at
	// construction, so a restarted daemon serves warm. The caller owns
	// the log's lifecycle (compaction loop, Close).
	Persist *profilestore.DiskLog
	// MaxProfiles bounds the profile cache; past it the least recently
	// used profile is evicted (and the eviction journaled). Zero means
	// unbounded.
	MaxProfiles int
	// Seed is the base seed for characterization runs (default 1); the
	// per-key seed is derived from it so profiles are reproducible.
	Seed int64
	// Chaos injects faults into every backend execution on every machine
	// (tests and the CI chaos job); the zero Plan disables injection.
	Chaos chaos.Plan
	// RetryAttempts bounds how many times each backend run is attempted
	// before its transient error surfaces (default 4; 1 disables
	// retries).
	RetryAttempts int
	// RetryBaseDelay seeds the retry backoff (default 50ms; see
	// resilient.Policy).
	RetryBaseDelay time.Duration
	// SliceShots is the partial-shot salvage granularity: backend runs
	// above this many trials are split into independently seeded slices
	// so a fault only re-runs unfinished work (default 0: no slicing,
	// byte-compatible with the raw backend).
	SliceShots int
	// BreakerThreshold is how many consecutive failed runs open a
	// machine's circuit breaker (default 5); BreakerCooldown is how long
	// an open breaker rejects work before probing again (default 30s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// JobsLog, when non-nil, makes the async job queue durable: every job
	// state transition is journaled through it (WAL + snapshots) and the
	// jobs it recovered are re-queued or surfaced as history at
	// construction. The caller owns the log's lifecycle (Close after
	// DrainJobs).
	JobsLog *jobs.Log
	// JobWorkers bounds concurrently executing async job batches
	// (default 2).
	JobWorkers int
	// JobBatchWindow is how long a dispatched batchable job is held open
	// for compatible jobs to coalesce into its micro-batch (default 0:
	// only already-queued jobs coalesce).
	JobBatchWindow time.Duration
	// JobQuota bounds each tenant's queued+running async jobs;
	// submissions past it are rejected with 429 quota_exceeded. Zero
	// means unbounded.
	JobQuota int
	// MachineNames lists the machines /healthz reports on; defaults to
	// the paper's three machines (device.AllMachines).
	MachineNames []string
	// AutoInflight replaces the static MaxJobs admission gate with the
	// adaptive concurrency limiter (internal/overload): the in-flight
	// ceiling tracks observed latency against the min-latency baseline,
	// and excess load is shed with a typed 503 instead of queueing
	// unboundedly. MaxJobs seeds the limiter's initial limit.
	AutoInflight bool
	// QueueTimeout bounds how long an admission-queued request may wait
	// before being shed, CoDel style (default 100ms). Only meaningful
	// with AutoInflight.
	QueueTimeout time.Duration
	// Brownout enables policy degradation under sustained admission
	// pressure: AIM requests serve SIM, then baseline, stepping back up
	// as pressure clears. The served tier is stamped on every mitigate
	// response.
	Brownout bool
	// BrownoutDwellDown/Up are how long pressure (calm) must persist
	// before stepping a tier down (up); defaults 2s / 5s.
	BrownoutDwellDown time.Duration
	BrownoutDwellUp   time.Duration
	// RetryBudget, when positive, caps retry traffic (backend re-runs)
	// to this fraction of fresh admitted work via a shared token bucket
	// — the standard defence against retry storms. 0.1 means retries may
	// add at most ~10% load. Zero disables the budget.
	RetryBudget float64
	// QueueHighWater, when positive, flips /healthz to 503 unavailable
	// once more than this many async jobs sit queued — the backpressure
	// signal load balancers act on.
	QueueHighWater int
	// WatchdogInterval/WatchdogStall tune the scheduler watchdog: a job
	// batch with no executor heartbeat for WatchdogStall gets a goroutine
	// dump logged, its contexts cancelled, and its jobs requeued
	// (defaults 1s / 30s).
	WatchdogInterval time.Duration
	WatchdogStall    time.Duration
	// ResultCache enables the content-addressed mitigation result
	// cache (internal/rescache): responses to identical requests are
	// replayed byte-for-byte, identical in-flight requests coalesce
	// onto one pipeline execution, and entries keyed to an RBMS
	// profile are invalidated the moment that profile's generation
	// moves. Off by default in the zero Config; cmd/biasmitd enables
	// it unless -result-cache=false.
	ResultCache bool
	// ResultCacheSize bounds the result cache's entry count (LRU past
	// it; default 1024).
	ResultCacheSize int
	// Logger is the server's structured logger: every completed request
	// and job execution emits one JSON line through it, keyed by trace
	// ID. Defaults to info-level JSON on stderr.
	Logger *obs.Logger
	// TraceBuffer is how many finished traces GET /debug/traces retains
	// (default 256).
	TraceBuffer int
	// SlowRequest is the elapsed time past which a finished trace is
	// retained as a slow-request exemplar on /metrics (default 500ms).
	SlowRequest time.Duration
	// Logf sinks watchdog and overload diagnostics (default: info lines
	// through Logger).
	Logf func(format string, args ...any)
	// Now overrides the clock, for tests.
	Now func() time.Time
	// sleep overrides the retry backoff sleep, for tests.
	sleep func(ctx context.Context, d time.Duration) error
	// wrapRun, for tests, wraps the raw backend runner before chaos and
	// the retrying executor are layered on.
	wrapRun func(backend.Runner) backend.Runner
}

func (c Config) withDefaults() Config {
	if c.Machines == nil {
		c.Machines = device.ByName
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 2
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxShots <= 0 || c.MaxShots > backend.MaxShots {
		c.MaxShots = 1 << 20
	}
	if c.ProfileShots <= 0 {
		c.ProfileShots = 2048
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 4
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 1024
	}
	if len(c.MachineNames) == 0 {
		for _, dev := range device.AllMachines() {
			c.MachineNames = append(c.MachineNames, dev.Name)
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Logger == nil {
		c.Logger = obs.NewLogger(os.Stderr, obs.LevelInfo)
	}
	if c.Logf == nil {
		c.Logf = c.Logger.Logf
	}
	return c
}

// Server is the biasmitd request handler. Construct with New; the
// handler is safe for concurrent use.
type Server struct {
	cfg   Config
	store *profilestore.Store
	reg   *metricsRegistry
	jobs  chan struct{} // admission gate for heavy endpoints
	mux   *http.ServeMux
	start time.Time

	// Per-machine resilient execution: every backend run (mitigation
	// and characterization alike) goes through the machine's retrying
	// executor and circuit breaker; the counters are shared so /metrics
	// shows one fleet-wide view.
	runMetrics *resilient.Metrics
	execMu     sync.Mutex
	execs      map[string]*machineExec

	// Async job queue (POST /v1/jobs): durable when cfg.JobsLog is set,
	// drained into the same mitigate/characterize paths the synchronous
	// endpoints use.
	jobq     *jobs.Queue
	jobsched *jobs.Scheduler

	// traces aggregates finished request/job traces: the /debug/traces
	// ring, the slow-request exemplars, and the per-stage histograms.
	traces *obs.Recorder

	// rescache, when non-nil, is the content-addressed result cache
	// the sync and async mitigate paths share: byte-replay of
	// identical requests, singleflight coalescing of identical
	// in-flight ones, profile-generation invalidation.
	rescache *rescache.Cache

	// Overload control (all optional; nil disables each):
	// limiter replaces the static admission gate with adaptive
	// concurrency + priority shedding, budget caps retry traffic,
	// brown steps AIM down to SIM/baseline under sustained pressure,
	// watchdog cancels-and-requeues wedged job batches.
	limiter  *overload.Limiter
	budget   *overload.Budget
	brown    *overload.Brownout
	watchdog *overload.Watchdog
}

// machineExec is one machine's execution path plus its breaker.
type machineExec struct {
	breaker *resilient.Breaker
	run     backend.Runner
}

// New builds a server and its profile store.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		reg:        newMetricsRegistry(),
		jobs:       make(chan struct{}, cfg.MaxJobs),
		mux:        http.NewServeMux(),
		start:      cfg.Now(),
		runMetrics: &resilient.Metrics{},
		execs:      make(map[string]*machineExec),
		traces:     obs.NewRecorder(cfg.TraceBuffer, cfg.SlowRequest),
	}
	if cfg.ResultCache {
		s.rescache = rescache.New(rescache.Options{MaxEntries: cfg.ResultCacheSize})
	}
	if cfg.AutoInflight {
		s.limiter = overload.NewLimiter(overload.LimiterConfig{
			Initial:      float64(cfg.MaxJobs),
			QueueTimeout: cfg.QueueTimeout,
			Now:          cfg.Now,
		})
	}
	if cfg.RetryBudget > 0 {
		s.budget = overload.NewBudget(cfg.RetryBudget, 0)
	}
	if cfg.Brownout {
		s.brown = overload.NewBrownout(cfg.BrownoutDwellDown, cfg.BrownoutDwellUp, cfg.Now)
	}
	s.watchdog = overload.NewWatchdog(cfg.WatchdogInterval, cfg.WatchdogStall, cfg.Logf)
	s.watchdog.SetNow(cfg.Now)
	s.watchdog.Start()
	opts := profilestore.Options{
		TTL:            cfg.ProfileTTL,
		RefreshWorkers: 1, // one characterization at a time in the background
		MaxProfiles:    cfg.MaxProfiles,
		Now:            cfg.Now,
	}
	if cfg.Persist != nil {
		opts.Journal = cfg.Persist
	}
	s.store = profilestore.New(s.characterizeKey, opts)
	if cfg.Persist != nil {
		// Warm restart: profiles recovered from snapshot+WAL serve
		// immediately, with their original LearnedAt (staleness carries
		// across the restart — an old profile on disk is still old).
		s.store.Load(cfg.Persist.RecoveredProfiles())
	}
	q, err := jobs.NewQueue(jobs.Options{
		Log:          cfg.JobsLog,
		Now:          cfg.Now,
		MaxPerTenant: cfg.JobQuota,
	})
	if err != nil {
		// Recovery absorbs journal faults into its error counters, so this
		// path is defensive: serve memory-only rather than boot dark.
		q, _ = jobs.NewQueue(jobs.Options{Now: cfg.Now, MaxPerTenant: cfg.JobQuota})
	}
	s.jobq = q
	s.jobsched = jobs.NewScheduler(q, jobs.SchedulerOptions{
		Exec:        s.execJob,
		Prepare:     s.prepareBatch,
		Workers:     cfg.JobWorkers,
		BatchWindow: cfg.JobBatchWindow,
		Watchdog:    s.watchdog,
		Now:         cfg.Now,
	})
	s.jobsched.Start()
	for _, rt := range s.routes() {
		s.mux.HandleFunc(rt.pattern, s.instrument(rt.pattern, rt.handler))
	}
	return s
}

// route is one mux registration: the pattern doubles as the metrics and
// trace label.
type route struct {
	pattern string
	handler http.HandlerFunc
}

// routes is the server's canonical route table. The mux is built from
// it, and the API-reference test walks it to assert docs/API.md
// documents every pattern registered here.
func (s *Server) routes() []route {
	return []route{
		{"/v1/mitigate", s.handleMitigate},
		{"/v1/characterize", s.handleCharacterize},
		{"/v1/profiles", s.handleProfiles},
		{"/v1/jobs", s.handleJobs},
		{"/v1/jobs/", s.handleJobByID},
		{"/healthz", s.handleHealthz},
		{"/metrics", s.handleMetrics},
		{"/debug/traces", s.handleDebugTraces},
		{"/", s.handleNotFound},
	}
}

// Handler returns the HTTP handler serving the full API surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the profile store so the daemon can run its background
// refresh loop (Store().RefreshLoop).
func (s *Server) Store() *profilestore.Store { return s.store }

// DrainJobs gracefully stops the async job scheduler: dispatch halts,
// running jobs get until ctx ends to finish, stragglers are cancelled
// and journaled back to queued, and the job journal is checkpointed.
// Call before closing the jobs log. The watchdog stops with the
// scheduler it was watching.
func (s *Server) DrainJobs(ctx context.Context) jobs.DrainResult {
	res := s.jobsched.Drain(ctx)
	s.watchdog.Stop()
	return res
}

// JobStats snapshots the async job queue's gauges and counters (the
// daemon logs recovery from it at boot).
func (s *Server) JobStats() jobs.Stats { return s.jobq.Stats() }

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the request's whole observability
// envelope: the in-flight gauge, the request counter, and the latency
// histogram for route, plus the trace lifecycle — mint (or adopt a
// valid inbound X-Trace-Id), echo the ID as a response header, thread
// the trace through the request context, and on completion fold it
// into the trace ring and emit the structured request log line.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tr := obs.NewTrace(r.Header.Get(api.TraceHeader), s.cfg.Now)
		if r.Header.Get(api.HedgeHeader) == "true" {
			// A hedged duplicate shares its primary's trace ID; the tag is
			// what tells the two apart in the ring and the logs.
			tr.SetTag("hedge", "true")
		}
		w.Header().Set(api.TraceHeader, tr.ID())
		r = r.WithContext(obs.WithTrace(r.Context(), tr))
		s.reg.begin(route)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.reg.end(route, rec.code, time.Since(start).Seconds())
		td := tr.Finish(route, rec.code)
		s.traces.Record(td)
		s.logTrace("request", td)
	}
}

// logTrace emits the one structured line every completed request or job
// gets: trace ID, route, status, elapsed time, and the per-stage span
// breakdown. Scrape and debug endpoints log at debug so an idle
// daemon's log is not all Prometheus polls; API traffic logs at info,
// client errors at warn, server errors at error.
func (s *Server) logTrace(msg string, td obs.TraceData) {
	lg := s.cfg.Logger
	lvl := obs.LevelDebug
	if strings.HasPrefix(td.Route, "/v1/") || strings.HasPrefix(td.Route, "job:") {
		lvl = obs.LevelInfo
	}
	switch {
	case td.Status >= 500:
		lvl = obs.LevelError
	case td.Status >= 400:
		lvl = obs.LevelWarn
	}
	if !lg.Enabled(lvl) {
		return
	}
	kv := []any{"trace_id", td.TraceID, "route", td.Route, "status", td.Status, "elapsed_ms", td.ElapsedMS}
	if len(td.Spans) > 0 {
		kv = append(kv, "spans", td.Spans)
	}
	if len(td.Tags) > 0 {
		kv = append(kv, "tags", td.Tags)
	}
	if len(td.Annotations) > 0 {
		kv = append(kv, "annotations", td.Annotations)
	}
	switch lvl {
	case obs.LevelDebug:
		lg.Debug(msg, kv...)
	case obs.LevelInfo:
		lg.Info(msg, kv...)
	case obs.LevelWarn:
		lg.Warn(msg, kv...)
	default:
		lg.Error(msg, kv...)
	}
}

// exec returns the machine's resilient execution path, building its
// breaker and retrying executor on first use. Machines share the chaos
// plan, retry policy, and metrics but each gets its own breaker, so one
// persistently failing machine sheds load without darkening the rest.
func (s *Server) exec(dev *device.Device) *machineExec {
	s.execMu.Lock()
	defer s.execMu.Unlock()
	if e, ok := s.execs[dev.Name]; ok {
		return e
	}
	br := resilient.NewBreaker(resilient.BreakerOptions{
		Threshold: s.cfg.BreakerThreshold,
		Cooldown:  s.cfg.BreakerCooldown,
		Now:       s.cfg.Now,
	})
	run := backend.RunContext
	if s.cfg.wrapRun != nil {
		run = s.cfg.wrapRun(run)
	}
	pol := resilient.Policy{
		MaxAttempts: s.cfg.RetryAttempts,
		BaseDelay:   s.cfg.RetryBaseDelay,
		SliceShots:  s.cfg.SliceShots,
		Seed:        s.cfg.Seed,
		Breaker:     br,
		Machine:     dev.Name,
		Sleep:       s.cfg.sleep,
		Metrics:     s.runMetrics,
	}
	if s.budget != nil {
		// The shared retry budget has the last word before every backend
		// retry: when retries would exceed their fraction of fresh
		// traffic, the transient error surfaces instead of amplifying an
		// outage.
		pol.RetryAllow = s.budget.Allow
	}
	ex := resilient.New(s.cfg.Chaos.Wrap(run), pol)
	e := &machineExec{breaker: br, run: ex.Run}
	s.execs[dev.Name] = e
	return e
}

// breakerFor reports a machine's breaker state without forcing the
// executor into existence: a machine nobody has used yet is closed.
func (s *Server) breakerFor(name string) *resilient.Breaker {
	s.execMu.Lock()
	defer s.execMu.Unlock()
	if e, ok := s.execs[name]; ok {
		return e.breaker
	}
	return nil
}

// deadline derives the job context: the request's own timeout if set,
// else the server default, never above the server maximum.
func (s *Server) deadline(ctx context.Context, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(ctx, d)
}

// admit reserves an execution slot for heavy work. With AutoInflight
// the adaptive limiter decides: requests past the latency-derived
// ceiling queue briefly (CoDel-bounded) and then shed, lowest priority
// class first, with a typed overload error. Otherwise the static
// bounded gate waits until a slot frees or ctx ends. Every admission
// outcome feeds the brownout controller, and every fresh admission
// funds the shared retry budget.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	if s.limiter != nil {
		release, err = s.limiter.Acquire(ctx, overload.ClassFromContext(ctx))
		if err != nil {
			var oe *overload.Error
			if errors.As(err, &oe) {
				s.brown.Observe(true)
			}
			return nil, err
		}
		// A success only reads as calm when nobody is left waiting:
		// during a storm the limiter still admits at capacity, and that
		// goodput must not reset the brownout's pressure clock.
		if s.limiter.Stats().Queued == 0 {
			s.brown.Observe(false)
		}
		s.budget.OnRequest()
		return release, nil
	}
	select {
	case s.jobs <- struct{}{}:
		s.brown.Observe(false)
		s.budget.OnRequest()
		return func() { <-s.jobs }, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// propagatedDeadline narrows ctx to the X-Request-Deadline header, the
// cross-service budget a caller forwards so work the callee cannot
// finish in time is shed immediately instead of burning a slot. A
// malformed header is a client error; an already-expired budget sheds
// with the typed overload error (503 + Retry-After) before any work
// starts. The returned cancel is non-nil even when no header is set.
func (s *Server) propagatedDeadline(ctx context.Context, r *http.Request) (context.Context, context.CancelFunc, error) {
	h := r.Header.Get(overload.DeadlineHeader)
	if h == "" {
		return ctx, func() {}, nil
	}
	dl, err := overload.ParseDeadline(h)
	if err != nil {
		return ctx, func() {}, apiErrorf(http.StatusBadRequest, CodeBadRequest,
			"bad %s header %q: %v", overload.DeadlineHeader, h, err)
	}
	if !s.cfg.Now().Before(dl) {
		return ctx, func() {}, &overload.Error{
			Reason:     "deadline_budget",
			Class:      overload.ClassFromContext(ctx),
			RetryAfter: time.Second,
		}
	}
	ctx, cancel := context.WithDeadline(ctx, dl)
	return ctx, cancel, nil
}

// checkShots validates a request budget against both the backend limit
// and the server's own per-request cap.
func (s *Server) checkShots(shots int) error {
	if err := backend.CheckShots(shots); err != nil {
		return err
	}
	if shots > s.cfg.MaxShots {
		return apiErrorf(http.StatusBadRequest, CodeBadBudget,
			"shot budget %d exceeds the server's per-request cap %d", shots, s.cfg.MaxShots)
	}
	return nil
}

// resolveBenchmark builds the workload a mitigate request names: an
// inline QASM program, a paper suite benchmark, or one of the bv:<key>,
// prep:<bits>, ghz-<n> shorthands.
func resolveBenchmark(req *MitigateRequest) (kernels.Benchmark, error) {
	if req.QASM != "" {
		if req.Benchmark != "" {
			return kernels.Benchmark{}, apiErrorf(http.StatusBadRequest, CodeBadRequest,
				"benchmark and qasm are mutually exclusive")
		}
		c, err := qasm.Parse(req.QASM)
		if err != nil {
			return kernels.Benchmark{}, apiErrorf(http.StatusBadRequest, CodeBadRequest, "parsing qasm: %v", err)
		}
		return kernels.Benchmark{Name: c.Name, Circuit: c}, nil
	}
	name := req.Benchmark
	switch {
	case name == "":
		return kernels.Benchmark{}, apiErrorf(http.StatusBadRequest, CodeBadRequest,
			"one of benchmark or qasm is required")
	case strings.HasPrefix(name, "bv:"):
		key, err := bitstring.Parse(name[len("bv:"):])
		if err != nil {
			return kernels.Benchmark{}, apiErrorf(http.StatusBadRequest, CodeUnknownBenchmark, "bad bv key: %v", err)
		}
		return kernels.BV(name, key), nil
	case strings.HasPrefix(name, "prep:"):
		b, err := bitstring.Parse(name[len("prep:"):])
		if err != nil {
			return kernels.Benchmark{}, apiErrorf(http.StatusBadRequest, CodeUnknownBenchmark, "bad prep state: %v", err)
		}
		return kernels.Benchmark{Name: name, Circuit: kernels.BasisPrep(b), Correct: []bitstring.Bits{b}}, nil
	case strings.HasPrefix(name, "ghz-"):
		n, err := strconv.Atoi(name[len("ghz-"):])
		if err != nil || n < 1 {
			return kernels.Benchmark{}, apiErrorf(http.StatusBadRequest, CodeUnknownBenchmark, "bad ghz size in %q", name)
		}
		return kernels.Benchmark{Name: name, Circuit: kernels.GHZ(n),
			Correct: []bitstring.Bits{bitstring.Zeros(n), bitstring.Ones(n)}}, nil
	}
	bench, err := experiments.BenchmarkByName(name)
	if err != nil {
		return kernels.Benchmark{}, apiErrorf(http.StatusBadRequest, CodeUnknownBenchmark, "%v", err)
	}
	return bench, nil
}

// resolveProfileMethod applies the paper's size rule when the request
// does not force a method: brute force up to 5 qubits, AWCT beyond.
func resolveProfileMethod(method string, width int) (string, error) {
	switch method {
	case "", "auto":
		if width <= 5 {
			return "brute", nil
		}
		return "awct", nil
	case "brute", "esct", "awct":
		return method, nil
	}
	return "", apiErrorf(http.StatusBadRequest, CodeBadRequest,
		"unknown characterization method %q (want brute, esct, awct, or auto)", method)
}

// keyStream hashes a profile key into a seed stream so characterization
// seeds are decorrelated across keys but reproducible across restarts.
func keyStream(key profilestore.Key) int {
	h := fnv.New32a()
	h.Write([]byte(key.String()))
	return int(h.Sum32() & (1<<31 - 1))
}

// characterizeKey is the profile store's CharacterizeFunc: it learns an
// RBMS profile on the canonical layout (the machine's first Width
// qubits) with the server's characterization budget. Per-benchmark
// layouts can differ from this canonical register; the paper's stability
// result (§6.1) is what makes the shared profile reusable across them.
func (s *Server) characterizeKey(ctx context.Context, key profilestore.Key) (*profilestore.Profile, error) {
	dev, ok := s.cfg.Machines(key.Machine)
	if !ok {
		return nil, apiErrorf(http.StatusNotFound, CodeUnknownMachine, "unknown machine %q", key.Machine)
	}
	if key.Width < 1 || key.Width > dev.NumQubits {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest,
			"register width %d out of range [1,%d] for %s", key.Width, dev.NumQubits, dev.Name)
	}
	layout := make([]int, key.Width)
	for i := range layout {
		layout[i] = i
	}
	m := core.NewMachine(dev)
	m.Workers = s.cfg.Workers
	m.Run = s.exec(dev).run
	prof := &core.Profiler{Machine: m, Layout: layout}
	seed := orchestrate.DeriveSeed(s.cfg.Seed, keyStream(key))
	var (
		rbms core.RBMS
		err  error
	)
	switch key.Method {
	case "brute":
		rbms, err = prof.BruteForceContext(ctx, s.cfg.ProfileShots, seed)
	case "esct":
		rbms, err = prof.ESCTContext(ctx, s.cfg.ProfileShots, seed)
	case "awct":
		rbms, err = prof.AWCTContext(ctx, 4, 2, s.cfg.ProfileShots, seed)
	default:
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest, "unknown characterization method %q", key.Method)
	}
	if err != nil {
		return nil, err
	}
	return &profilestore.Profile{Key: key, RBMS: rbms, Layout: layout, Shots: s.cfg.ProfileShots}, nil
}

// profileInfo renders a cached profile for the wire.
func (s *Server) profileInfo(p *profilestore.Profile) ProfileInfo {
	info := ProfileInfo{
		Machine:   p.Key.Machine,
		Width:     p.Key.Width,
		Method:    p.Key.Method,
		Layout:    p.Layout,
		Shots:     p.Shots,
		LearnedAt: p.LearnedAt.UTC(),
		AgeMS:     s.store.Age(p).Milliseconds(),
		Stale:     s.store.Stale(p),
		Strongest: p.RBMS.StrongestState().String(),
	}
	if corr, err := p.RBMS.HammingCorrelation(); err == nil {
		info.HammingCorrelation = &corr
	}
	return info
}

// outcomeRows renders the top outcomes of a histogram.
// defaultTopOutcomes is how many outcome rows a response lists when
// the request leaves top unset; the cache key normalizes onto it.
const defaultTopOutcomes = 10

func outcomeRows(counts *dist.Counts, top int) ([]OutcomeCount, int) {
	if top <= 0 {
		top = defaultTopOutcomes
	}
	d := counts.Dist()
	outcomes := counts.Outcomes()
	rows := make([]OutcomeCount, 0, top)
	for _, b := range d.TopK(top) {
		rows = append(rows, OutcomeCount{
			Outcome:     b.String(),
			Count:       counts.Get(b),
			Probability: d.Prob(b),
		})
	}
	return rows, len(outcomes)
}

func (s *Server) handleMitigate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, apiErrorf(http.StatusMethodNotAllowed, CodeMethodNotAllowed, "%s requires POST", r.URL.Path))
		return
	}
	var req MitigateRequest
	sp := obs.StartSpan(r.Context(), "decode")
	err := decodeJSON(w, r, &req)
	sp.End()
	if err != nil {
		writeError(w, r, err)
		return
	}
	ctx := overload.WithClass(r.Context(), overload.ClassMitigate)
	ctx, cancel, err := s.propagatedDeadline(ctx, r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	defer cancel()
	resp, err := s.mitigate(ctx, &req)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, resp)
}

// mitigate validates and executes one mitigation request.
func (s *Server) mitigate(ctx context.Context, req *MitigateRequest) (*MitigateResponse, error) {
	dev, ok := s.cfg.Machines(req.Machine)
	if !ok {
		return nil, apiErrorf(http.StatusNotFound, CodeUnknownMachine, "unknown machine %q", req.Machine)
	}
	bench, err := resolveBenchmark(req)
	if err != nil {
		return nil, err
	}
	if err := s.checkShots(req.Shots); err != nil {
		return nil, err
	}
	switch req.Policy {
	case "baseline", "sim", "aim":
	default:
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest,
			"unknown policy %q (want baseline, sim, or aim)", req.Policy)
	}
	if req.CanaryFraction < 0 || req.CanaryFraction >= 1 {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest, "canary_fraction %v out of [0,1)", req.CanaryFraction)
	}
	if req.K < 0 {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest, "k must be non-negative")
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}

	if s.rescache != nil {
		return s.mitigateCached(ctx, req, dev, bench, seed)
	}
	return s.mitigateExec(ctx, req, dev, bench, seed)
}

// mitigateExec runs one validated mitigation request through the full
// pipeline: admission, brownout policy resolution, placement,
// sample, correct. It is the compute function behind the result cache
// — everything nondeterministic about a response (brownout tier,
// degraded profile serving) is visible on the returned struct, which
// mitigateCached inspects to decide cacheability.
func (s *Server) mitigateExec(ctx context.Context, req *MitigateRequest, dev *device.Device, bench kernels.Benchmark, seed int64) (*MitigateResponse, error) {
	ctx, cancel := s.deadline(ctx, req.TimeoutMS)
	defer cancel()
	qsp := obs.StartSpan(ctx, "queue_wait")
	release, err := s.admit(ctx)
	qsp.End()
	if err != nil {
		return nil, err
	}
	defer release()

	m := core.NewMachine(dev)
	m.Workers = s.cfg.Workers
	m.Run = s.exec(dev).run
	job, err := core.NewJob(bench.Circuit, m)
	if err != nil {
		return nil, asBadRequest(err)
	}

	// Under brownout pressure an AIM request is served with a cheaper
	// policy (AIM → SIM → baseline) rather than shed outright: degraded
	// mitigation beats a 503. The response carries both the requested
	// policy and what actually ran, so clients can tell.
	tier := s.brown.Tier() // TierFull when brownout is disabled
	served := overload.Degrade(req.Policy, tier)
	if served != req.Policy {
		obs.Annotate(ctx, "brownout: serving %s for requested %s", served, req.Policy)
	}

	started := time.Now()
	resp := &MitigateResponse{
		Machine:      dev.Name,
		Benchmark:    bench.Name,
		Policy:       req.Policy,
		ServedPolicy: served,
		BrownoutTier: tier,
		Shots:        req.Shots,
		Seed:         seed,
		Layout:       job.Plan.InitialLayout,
		Swaps:        job.Plan.SwapCount,
	}
	var counts *dist.Counts
	switch served {
	case "baseline":
		ssp := obs.StartSpan(ctx, "sample").Tag("policy", served)
		counts, err = job.BaselineContext(ctx, req.Shots, seed)
		ssp.End()
		if err != nil {
			return nil, toAPIError(err)
		}
	case "sim":
		modes := req.Modes
		if modes == 0 {
			modes = 4
		}
		invs, serr := core.StandardInversionStrings(job.Width(), modes)
		if serr != nil {
			return nil, asBadRequest(serr)
		}
		ssp := obs.StartSpan(ctx, "sample").Tag("policy", served)
		res, serr := core.SIMContext(ctx, job, invs, req.Shots, seed)
		ssp.End()
		if serr != nil {
			return nil, asBadRequest(serr)
		}
		counts = res.Merged
	case "aim":
		prof, serveRes, aerr := s.aimProfile(ctx, req, job, dev)
		if aerr != nil {
			return nil, aerr
		}
		cfg := core.AIMConfig{CanaryFraction: req.CanaryFraction, K: req.K}
		ssp := obs.StartSpan(ctx, "sample").Tag("policy", served)
		res, serr := core.AIMContext(ctx, job, prof.RBMS, cfg, req.Shots, seed)
		ssp.End()
		if serr != nil {
			return nil, asBadRequest(serr)
		}
		counts = res.Merged
		resp.Strongest = res.Strongest.String()
		for _, c := range res.Candidates {
			resp.Candidates = append(resp.Candidates, AIMCandidate{
				Output:     c.Output.String(),
				Likelihood: c.Likelihood,
				Inversion:  c.Inversion.String(),
			})
		}
		resp.Profile = &MitigateProfile{
			ProfileInfo: s.profileInfo(prof),
			Cached:      serveRes.Cached,
			Degraded:    serveRes.Degraded,
		}
		resp.Degraded = serveRes.Degraded
	}

	csp := obs.StartSpan(ctx, "correct")
	resp.Outcomes, resp.DistinctOutcomes = outcomeRows(counts, req.Top)
	if len(bench.Correct) > 0 {
		d := counts.Dist()
		resp.Metrics = &PolicyMetrics{
			PST:  metrics.PSTEquiv(d, bench.Correct...),
			IST:  metrics.IST(d, bench.Correct...),
			ROCA: metrics.ROCA(d, bench.Correct...),
		}
		for _, b := range bench.Correct {
			resp.Correct = append(resp.Correct, b.String())
		}
	}
	csp.End()
	resp.ElapsedMS = float64(time.Since(started).Microseconds()) / 1000
	return resp, nil
}

// mitigateCacheKey is the canonical identity a mitigation result is
// content-addressed by: every request field that feeds the
// deterministic pipeline, normalized so requests that differ only in
// spelling (seed 0 vs 1, modes 0 vs 4, an explicit "auto" method)
// share an entry. Fields that cannot change the bytes — timeouts,
// trace IDs, tenant — are deliberately absent. The api version is
// included so a protocol bump can never replay old-shape bytes.
type mitigateCacheKey struct {
	V       string  `json:"v"`
	Machine string  `json:"machine"`
	Bench   string  `json:"bench,omitempty"`
	QASM    string  `json:"qasm,omitempty"`
	Policy  string  `json:"policy"`
	Shots   int     `json:"shots"`
	Seed    int64   `json:"seed"`
	Modes   int     `json:"modes,omitempty"`
	Canary  float64 `json:"canary,omitempty"`
	K       int     `json:"k,omitempty"`
	Method  string  `json:"method,omitempty"`
	Require bool    `json:"require,omitempty"`
	Top     int     `json:"top,omitempty"`
}

// resultCacheKey builds the content hash for a validated request plus
// the profile-store key (and its current generation) an AIM run would
// consume. Baseline and SIM runs touch no profile; their generation is
// pinned to 0 and hasProf is false.
func (s *Server) resultCacheKey(req *MitigateRequest, dev *device.Device, bench kernels.Benchmark, seed int64) (key string, gen uint64, profKey profilestore.Key, hasProf bool, err error) {
	ck := mitigateCacheKey{
		V:       api.Version,
		Machine: dev.Name,
		Bench:   req.Benchmark,
		QASM:    req.QASM,
		Policy:  req.Policy,
		Shots:   req.Shots,
		Seed:    seed,
		Top:     req.Top,
	}
	if ck.Top <= 0 {
		ck.Top = defaultTopOutcomes
	}
	switch req.Policy {
	case "sim":
		ck.Modes = req.Modes
		if ck.Modes == 0 {
			ck.Modes = 4
		}
	case "aim":
		ck.Canary = req.CanaryFraction
		ck.K = req.K
		ck.Require = req.RequireCachedProfile
		method, merr := resolveProfileMethod(req.ProfileMethod, bench.Width())
		if merr != nil {
			return "", 0, profilestore.Key{}, false, merr
		}
		ck.Method = method
		profKey = profilestore.Key{Machine: dev.Name, Width: bench.Width(), Method: method}
		hasProf = true
		gen = s.store.Generation(profKey)
	}
	key, herr := rescache.HashKey(ck)
	if herr != nil {
		return "", 0, profilestore.Key{}, false, herr
	}
	return key, gen, profKey, hasProf, nil
}

// mitigateCached fronts mitigateExec with the result cache: a content
// hash of the canonical request plus the AIM profile's generation
// addresses the stored bytes, identical in-flight requests coalesce
// onto one execution, and responses that are not pure functions of
// the request (brownout-degraded policy, stale-profile serving) fan
// out without being stored. Cached bytes are the marshaled response
// exactly as first computed — ElapsedMS included — so a hit is
// byte-identical to the original; only the per-request envelope and
// the cache_hit/coalesced metadata differ.
func (s *Server) mitigateCached(ctx context.Context, req *MitigateRequest, dev *device.Device, bench kernels.Benchmark, seed int64) (*MitigateResponse, error) {
	csp := obs.StartSpan(ctx, "cache")
	key, gen, profKey, hasProf, err := s.resultCacheKey(req, dev, bench, seed)
	csp.End()
	if err != nil {
		// A key that cannot be built (bad profile method) fails the
		// same way uncached execution would — run it for the typed
		// error.
		return s.mitigateExec(ctx, req, dev, bench, seed)
	}

	compute := func(cctx context.Context) (rescache.Computed, error) {
		resp, rerr := s.mitigateExec(cctx, req, dev, bench, seed)
		if rerr != nil {
			return rescache.Computed{}, rerr
		}
		// Only pure-function-of-the-request responses are stored:
		// brownout degradation and stale-profile serving depend on
		// server state at execution time.
		store := resp.ServedPolicy == resp.Policy && !resp.Degraded && resp.BrownoutTier == 0
		storeGen := gen
		if store && hasProf {
			switch cur := s.store.Generation(profKey); {
			case cur == gen:
				// Warm path: the profile the lookup keyed on is the one
				// the run consumed.
			case resp.Profile != nil && !resp.Profile.Cached:
				// The run characterized in-line, publishing the profile
				// itself (cold start: generation 0 → 1). The bytes
				// belong to the new generation; storing them there
				// keeps the entry alive instead of stillborn.
				storeGen = cur
			default:
				// Someone else republished the profile mid-run: the
				// result was computed against the old profile and is
				// stale under either generation.
				store = false
			}
		}
		data, merr := json.Marshal(resp)
		if merr != nil {
			return rescache.Computed{}, merr
		}
		return rescache.Computed{Value: data, Gen: storeGen, Store: store}, nil
	}

	data, outcome, err := s.rescache.Do(ctx, key, gen, compute)
	obs.Annotate(ctx, "result cache: %s", outcome)
	if err != nil {
		return nil, toAPIError(err)
	}
	// Unmarshal a fresh struct per request: the cached bytes are
	// shared, and writeJSON stamps a per-request envelope on whatever
	// struct it is handed.
	resp := new(MitigateResponse)
	if uerr := json.Unmarshal(data, resp); uerr != nil {
		return nil, apiErrorf(http.StatusInternalServerError, CodeInternal, "decoding cached result: %v", uerr)
	}
	switch outcome {
	case rescache.Hit:
		resp.CacheHit = true
	case rescache.Coalesced:
		resp.Coalesced = true
	}
	return resp, nil
}

// aimProfile resolves the RBMS profile an AIM run needs: a fresh cached
// profile when available, otherwise an in-line characterization — unless
// the request insists on cache-only, which maps a miss onto the
// profile_stale error. When re-characterization fails but a stale
// profile survives, the stale one is served with Degraded set: the
// paper's stability result (§6.1) makes an aged profile a better guide
// than none.
func (s *Server) aimProfile(ctx context.Context, req *MitigateRequest, job *core.Job, dev *device.Device) (*profilestore.Profile, profilestore.ServeResult, error) {
	method, err := resolveProfileMethod(req.ProfileMethod, job.Width())
	if err != nil {
		return nil, profilestore.ServeResult{}, err
	}
	key := profilestore.Key{Machine: dev.Name, Width: job.Width(), Method: method}
	sp := obs.StartSpan(ctx, "characterize")
	defer sp.End()
	if req.RequireCachedProfile {
		p, ok := s.store.Get(key)
		if !ok {
			return nil, profilestore.ServeResult{}, apiErrorf(http.StatusConflict, CodeProfileStale,
				"no fresh %s profile cached for %s; POST /v1/characterize first or drop require_cached_profile", method, key)
		}
		sp.Tag("cached", "true")
		return p, profilestore.ServeResult{Cached: true}, nil
	}
	p, res, err := s.store.Serve(ctx, key)
	sp.Tag("cached", strconv.FormatBool(res.Cached))
	if res.Degraded {
		sp.Tag("degraded", "true")
	}
	if err != nil {
		return nil, res, toAPIError(err)
	}
	return p, res, nil
}

func (s *Server) handleCharacterize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, r, apiErrorf(http.StatusMethodNotAllowed, CodeMethodNotAllowed, "%s requires POST", r.URL.Path))
		return
	}
	var req CharacterizeRequest
	sp := obs.StartSpan(r.Context(), "decode")
	err := decodeJSON(w, r, &req)
	sp.End()
	if err != nil {
		writeError(w, r, err)
		return
	}
	// Characterization is the most valuable class under overload: a
	// learned profile amortizes across every later mitigation, so it is
	// shed last.
	ctx := overload.WithClass(r.Context(), overload.ClassCharacterize)
	ctx, cancel, err := s.propagatedDeadline(ctx, r)
	if err != nil {
		writeError(w, r, err)
		return
	}
	defer cancel()
	resp, err := s.characterizeRequest(ctx, &req)
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, r, http.StatusOK, resp)
}

// characterizeRequest validates and executes one characterization
// request against the shared profile store.
func (s *Server) characterizeRequest(ctx context.Context, req *CharacterizeRequest) (*CharacterizeResponse, error) {
	dev, ok := s.cfg.Machines(req.Machine)
	if !ok {
		return nil, apiErrorf(http.StatusNotFound, CodeUnknownMachine, "unknown machine %q", req.Machine)
	}
	width := req.Qubits
	if width == 0 {
		width = dev.NumQubits
		if (req.Method == "" || req.Method == "auto" || req.Method == "brute") && width > 5 {
			width = 5
		}
	}
	if width < 1 || width > dev.NumQubits {
		return nil, apiErrorf(http.StatusBadRequest, CodeBadRequest,
			"qubits %d out of range [1,%d] for %s", width, dev.NumQubits, dev.Name)
	}
	method, err := resolveProfileMethod(req.Method, width)
	if err != nil {
		return nil, err
	}
	key := profilestore.Key{Machine: dev.Name, Width: width, Method: method}

	ctx, cancel := s.deadline(ctx, req.TimeoutMS)
	defer cancel()
	qsp := obs.StartSpan(ctx, "queue_wait")
	release, err := s.admit(ctx)
	qsp.End()
	if err != nil {
		return nil, err
	}
	defer release()

	started := time.Now()
	var (
		p   *profilestore.Profile
		res profilestore.ServeResult
	)
	csp := obs.StartSpan(ctx, "characterize")
	if req.Force {
		p, err = s.store.Characterize(ctx, key)
		csp.Tag("forced", "true")
	} else {
		p, res, err = s.store.Serve(ctx, key)
		csp.Tag("cached", strconv.FormatBool(res.Cached))
	}
	csp.End()
	if err != nil {
		return nil, toAPIError(err)
	}
	resp := &CharacterizeResponse{
		Profile:   s.profileInfo(p),
		Cached:    res.Cached,
		Degraded:  res.Degraded,
		ElapsedMS: float64(time.Since(started).Microseconds()) / 1000,
	}
	if req.IncludeStrengths || p.Key.Width <= 8 {
		resp.Strengths = p.RBMS.Relative().Strength
	}
	return resp, nil
}

// handleProfiles lists cached profiles in stable key order
// (machine/width/method), one page at a time: ?cursor= is the key of
// the last profile of the previous page, ?limit= bounds the page (the
// documented default cap applies either way), and next_cursor in the
// envelope links the pages.
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, apiErrorf(http.StatusMethodNotAllowed, CodeMethodNotAllowed, "%s requires GET", r.URL.Path))
		return
	}
	limit, cursor, aerr := parsePage(r.URL.Query())
	if aerr != nil {
		writeError(w, r, aerr)
		return
	}
	profs := s.store.Profiles()
	sort.Slice(profs, func(i, j int) bool { return profs[i].Key.String() < profs[j].Key.String() })
	i := sort.Search(len(profs), func(i int) bool { return profs[i].Key.String() > cursor })
	profs = profs[i:]
	resp := &ProfilesResponse{Profiles: []ProfileInfo{}}
	if len(profs) > limit {
		resp.NextCursor = profs[limit-1].Key.String()
		profs = profs[:limit]
	}
	for _, p := range profs {
		resp.Profiles = append(resp.Profiles, s.profileInfo(p))
	}
	writeJSON(w, r, http.StatusOK, resp)
}

// handleHealthz reports honest readiness rather than bare liveness:
// each machine's breaker state, plus how much of the profile cache has
// gone stale. The status is "ok" with every breaker closed, "degraded"
// while any breaker is open/half-open or any cached profile is stale,
// and "unavailable" (with a 503, so load balancers stop routing here)
// only when every machine's breaker is open.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, apiErrorf(http.StatusMethodNotAllowed, CodeMethodNotAllowed, "%s requires GET", r.URL.Path))
		return
	}
	resp := &HealthResponse{
		Status:   "ok",
		UptimeMS: time.Since(s.start).Milliseconds(),
	}
	open := 0
	for _, name := range s.cfg.MachineNames {
		hm := HealthMachine{Machine: name, Breaker: resilient.StateClosed}
		if br := s.breakerFor(name); br != nil {
			hm.Breaker = br.State()
			if hm.Breaker == resilient.StateOpen {
				open++
				hm.RetryAfterMS = br.RetryAfter().Milliseconds()
			}
		}
		if hm.Breaker != resilient.StateClosed {
			resp.Status = "degraded"
		}
		resp.Machines = append(resp.Machines, hm)
	}
	for _, p := range s.store.Profiles() {
		resp.ProfilesCached++
		if s.store.Stale(p) {
			resp.ProfilesStale++
			resp.Status = "degraded"
		}
	}
	jst := s.jobq.Stats()
	resp.JobsQueued = jst.Queued
	resp.JobsRunning = jst.Running
	resp.OldestQueuedMS = jst.OldestQueued.Milliseconds()
	if resp.BrownoutTier = s.brown.Tier(); resp.BrownoutTier > overload.TierFull {
		resp.Status = "degraded"
	}
	status := http.StatusOK
	if len(resp.Machines) > 0 && open == len(resp.Machines) {
		resp.Status = "unavailable"
		status = http.StatusServiceUnavailable
	}
	// Backlog past the high-water mark means new work will sit longer
	// than it is worth: tell the balancer to stop routing here until the
	// queue drains below the mark.
	if hw := s.cfg.QueueHighWater; hw > 0 && jst.Queued > hw {
		resp.Status = "unavailable"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, r, status, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, apiErrorf(http.StatusMethodNotAllowed, CodeMethodNotAllowed, "%s requires GET", r.URL.Path))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var persistStats *profilestore.DiskLogStats
	if s.cfg.Persist != nil {
		st := s.cfg.Persist.Stats()
		persistStats = &st
	}
	s.reg.write(w, s.store.StatsSnapshot(), s.runMetrics.Snapshot(), s.breakerInfos(), persistStats,
		s.jobq.Stats(), s.cfg.JobsLog != nil)
	s.writeOverloadMetrics(w)
	s.writeResultCacheMetrics(w)
	s.writeTraceMetrics(w)
}

// handleDebugTraces serves the recent-trace ring: the last completed
// requests and job executions, newest first, each with its per-stage
// span breakdown. ?slow=1 narrows the listing to the retained
// slow-request exemplars; ?limit= bounds the page.
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, apiErrorf(http.StatusMethodNotAllowed, CodeMethodNotAllowed, "%s requires GET", r.URL.Path))
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, r, apiErrorf(http.StatusBadRequest, CodeBadRequest,
				"bad limit %q (want a positive integer)", v))
			return
		}
		limit = n
	}
	var list []obs.TraceData
	if r.URL.Query().Get("slow") == "1" {
		list = s.traces.Slow()
		if limit > 0 && len(list) > limit {
			list = list[:limit]
		}
	} else {
		list = s.traces.Last(limit)
	}
	resp := &api.TracesResponse{
		Traces:          make([]api.TraceEntry, 0, len(list)),
		SlowThresholdMS: s.traces.SlowThreshold().Milliseconds(),
	}
	for _, td := range list {
		resp.Traces = append(resp.Traces, toTraceEntry(td))
	}
	writeJSON(w, r, http.StatusOK, resp)
}

// toTraceEntry converts a recorded trace to its wire shape.
func toTraceEntry(td obs.TraceData) api.TraceEntry {
	e := api.TraceEntry{
		TraceID:     td.TraceID,
		Route:       td.Route,
		Status:      td.Status,
		Start:       td.Start.UTC(),
		ElapsedMS:   td.ElapsedMS,
		Annotations: td.Annotations,
		Tags:        td.Tags,
	}
	for _, sp := range td.Spans {
		e.Spans = append(e.Spans, api.TraceSpan{
			Name:       sp.Name,
			StartMS:    sp.StartMS,
			DurationMS: sp.DurationMS,
			Tags:       sp.Tags,
		})
	}
	return e
}

// breakerInfos snapshots every machine's breaker for /metrics, in a
// stable machine-name order. Machines never executed on report closed
// with zeroed transition counters.
func (s *Server) breakerInfos() []breakerInfo {
	names := append([]string(nil), s.cfg.MachineNames...)
	s.execMu.Lock()
	for name := range s.execs {
		found := false
		for _, n := range names {
			if n == name {
				found = true
				break
			}
		}
		if !found {
			names = append(names, name)
		}
	}
	s.execMu.Unlock()
	sort.Strings(names)
	out := make([]breakerInfo, 0, len(names))
	for _, name := range names {
		info := breakerInfo{machine: name, state: resilient.StateClosed}
		if br := s.breakerFor(name); br != nil {
			info.state = br.State()
			info.stats = br.Stats()
		}
		out = append(out, info)
	}
	return out
}

func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, r, apiErrorf(http.StatusNotFound, CodeNotFound, "no route %s %s", r.Method, r.URL.Path))
}

package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// testServer spins up the API over httptest with a budget small enough
// for fast tests.
func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{
		Workers:      2,
		MaxJobs:      2,
		ProfileShots: 64,
		MaxShots:     1 << 16,
		ProfileTTL:   time.Hour,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// decodeError asserts the response is the typed error envelope and
// returns the APIError.
func decodeError(t *testing.T, data []byte) *APIError {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("response is not the typed error envelope: %v\n%s", err, data)
	}
	if env.Error == nil || env.Error.Code == "" {
		t.Fatalf("error envelope missing code: %s", data)
	}
	return env.Error
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, data := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var h HealthResponse
	if err := json.Unmarshal(data, &h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz body %s (err %v)", data, err)
	}
}

func TestMitigateBaseline(t *testing.T) {
	_, ts := testServer(t)
	resp, data := postJSON(t, ts.URL+"/v1/mitigate", MitigateRequest{
		Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 512, Seed: 7,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out MitigateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Outcomes) == 0 || out.Metrics == nil {
		t.Fatalf("incomplete response: %s", data)
	}
	if out.Metrics.PST <= 0.3 || out.Metrics.PST > 1 {
		t.Fatalf("PST %v out of (0.3,1]", out.Metrics.PST)
	}
	// The correct BV answer should dominate a 512-shot baseline run.
	if len(out.Correct) == 0 || out.Outcomes[0].Outcome != out.Correct[0] {
		t.Fatalf("top outcome %q, want the correct answer %v", out.Outcomes[0].Outcome, out.Correct)
	}
}

func TestMitigateDeterministicForFixedSeed(t *testing.T) {
	_, ts := testServer(t)
	req := MitigateRequest{Machine: "ibmqx2", Policy: "sim", Benchmark: "bv-4B", Shots: 400, Seed: 11}
	_, first := postJSON(t, ts.URL+"/v1/mitigate", req)
	_, second := postJSON(t, ts.URL+"/v1/mitigate", req)
	var a, b MitigateResponse
	if err := json.Unmarshal(first, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &b); err != nil {
		t.Fatal(err)
	}
	a.ElapsedMS, b.ElapsedMS = 0, 0
	a.TraceID, b.TraceID = "", "" // unique per request by design
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same request, different results:\n%+v\n%+v", a, b)
	}
}

func TestMitigateAIMProfileCacheMissThenHit(t *testing.T) {
	s, ts := testServer(t)
	req := MitigateRequest{Machine: "ibmqx4", Policy: "aim", Benchmark: "bv-4A", Shots: 600, Seed: 3}

	var out MitigateResponse
	_, data := postJSON(t, ts.URL+"/v1/mitigate", req)
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("first AIM run: %v\n%s", err, data)
	}
	if out.Profile == nil || out.Profile.Cached {
		t.Fatalf("first AIM run should characterize (cache miss): %s", data)
	}
	// bv-4A carries an ancilla, so the logical register is 5 bits wide.
	if out.Profile.Method != "brute" || out.Profile.Width != 5 {
		t.Fatalf("profile %+v, want brute/5q", out.Profile)
	}

	_, data = postJSON(t, ts.URL+"/v1/mitigate", req)
	out = MitigateResponse{}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Profile == nil || !out.Profile.Cached {
		t.Fatalf("second AIM run should reuse the cached profile: %s", data)
	}

	st := s.Store().StatsSnapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Characterizations != 1 {
		t.Fatalf("cache stats %+v, want 1 hit / 1 miss / 1 characterization", st)
	}

	// The metrics endpoint reports the same story.
	_, metricsBody := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"biasmitd_profile_cache_hits_total 1",
		"biasmitd_profile_cache_misses_total 1",
		`biasmitd_requests_total{route="/v1/mitigate",code="200"} 2`,
		`biasmitd_in_flight_requests{route="/v1/mitigate"} 0`,
		`biasmitd_request_duration_seconds_count{route="/v1/mitigate"} 2`,
	} {
		if !strings.Contains(string(metricsBody), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metricsBody)
		}
	}

	// And /v1/profiles lists the one learned profile.
	_, profBody := getBody(t, ts.URL+"/v1/profiles")
	var profs ProfilesResponse
	if err := json.Unmarshal(profBody, &profs); err != nil {
		t.Fatal(err)
	}
	if len(profs.Profiles) != 1 || profs.Profiles[0].Stale {
		t.Fatalf("profiles = %s, want one fresh profile", profBody)
	}
}

func TestMitigateBudgetErrorsAreTyped(t *testing.T) {
	_, ts := testServer(t)
	for _, shots := range []int{0, -5, 1 << 17} { // zero, negative, above server cap
		resp, data := postJSON(t, ts.URL+"/v1/mitigate", MitigateRequest{
			Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: shots,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("shots=%d: status %d, want 400: %s", shots, resp.StatusCode, data)
		}
		if ae := decodeError(t, data); ae.Code != CodeBadBudget {
			t.Fatalf("shots=%d: code %q, want %q", shots, ae.Code, CodeBadBudget)
		}
	}
}

func TestMitigateValidationErrors(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name   string
		req    MitigateRequest
		status int
		code   string
	}{
		{"unknown machine", MitigateRequest{Machine: "ibmqx9", Policy: "baseline", Benchmark: "bv-4A", Shots: 100},
			http.StatusNotFound, CodeUnknownMachine},
		{"unknown benchmark", MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "nope-7", Shots: 100},
			http.StatusBadRequest, CodeUnknownBenchmark},
		{"unknown policy", MitigateRequest{Machine: "ibmqx4", Policy: "psychic", Benchmark: "bv-4A", Shots: 100},
			http.StatusBadRequest, CodeBadRequest},
		{"bad qasm", MitigateRequest{Machine: "ibmqx4", Policy: "baseline", QASM: "garbage;", Shots: 100},
			http.StatusBadRequest, CodeBadRequest},
		{"stale-only AIM without profile", MitigateRequest{Machine: "ibmqx4", Policy: "aim", Benchmark: "bv-4A",
			Shots: 600, RequireCachedProfile: true}, http.StatusConflict, CodeProfileStale},
	}
	for _, tc := range cases {
		resp, data := postJSON(t, ts.URL+"/v1/mitigate", tc.req)
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.status, data)
		}
		if ae := decodeError(t, data); ae.Code != tc.code {
			t.Fatalf("%s: code %q, want %q", tc.name, ae.Code, tc.code)
		}
	}
}

func TestMitigateDeadlineExceeded(t *testing.T) {
	_, ts := testServer(t)
	resp, data := postJSON(t, ts.URL+"/v1/mitigate", MitigateRequest{
		Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A",
		Shots: 1 << 16, TimeoutMS: 1,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, data)
	}
	if ae := decodeError(t, data); ae.Code != CodeDeadlineExceeded {
		t.Fatalf("code %q, want %q", ae.Code, CodeDeadlineExceeded)
	}
}

func TestMitigateQASM(t *testing.T) {
	_, ts := testServer(t)
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q -> c;
`
	resp, data := postJSON(t, ts.URL+"/v1/mitigate", MitigateRequest{
		Machine: "ibmqx2", Policy: "baseline", QASM: src, Shots: 256,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out MitigateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Outcomes) == 0 {
		t.Fatalf("no outcomes: %s", data)
	}
}

func TestCharacterizeEndpointSharesStoreWithAIM(t *testing.T) {
	_, ts := testServer(t)
	resp, data := postJSON(t, ts.URL+"/v1/characterize", CharacterizeRequest{
		Machine: "ibmqx4", Method: "brute", Qubits: 5,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var ch CharacterizeResponse
	if err := json.Unmarshal(data, &ch); err != nil {
		t.Fatal(err)
	}
	if ch.Cached || ch.Profile.Method != "brute" || len(ch.Strengths) != 32 {
		t.Fatalf("unexpected characterize response: %s", data)
	}

	// An AIM request for the same (machine, width, method) now hits.
	_, data = postJSON(t, ts.URL+"/v1/mitigate", MitigateRequest{
		Machine: "ibmqx4", Policy: "aim", Benchmark: "bv-4A", Shots: 600, RequireCachedProfile: true,
	})
	var out MitigateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Profile == nil || !out.Profile.Cached {
		t.Fatalf("AIM did not reuse the characterize endpoint's profile: %s", data)
	}

	// Force re-learns even though a fresh profile exists.
	_, data = postJSON(t, ts.URL+"/v1/characterize", CharacterizeRequest{
		Machine: "ibmqx4", Method: "brute", Qubits: 5, Force: true,
	})
	ch = CharacterizeResponse{}
	if err := json.Unmarshal(data, &ch); err != nil {
		t.Fatal(err)
	}
	if ch.Cached {
		t.Fatalf("force=true reported a cache hit: %s", data)
	}
}

func TestMethodNotAllowedAndNotFound(t *testing.T) {
	_, ts := testServer(t)
	resp, data := getBody(t, ts.URL+"/v1/mitigate")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET mitigate: status %d, want 405", resp.StatusCode)
	}
	if ae := decodeError(t, data); ae.Code != CodeMethodNotAllowed {
		t.Fatalf("code %q, want %q", ae.Code, CodeMethodNotAllowed)
	}
	resp, data = getBody(t, ts.URL+"/v1/unknown")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route: status %d, want 404", resp.StatusCode)
	}
	if ae := decodeError(t, data); ae.Code != CodeNotFound {
		t.Fatalf("code %q, want %q", ae.Code, CodeNotFound)
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/mitigate", "application/json",
		strings.NewReader(`{"machine":"ibmqx4","policy":"baseline","benchmark":"bv-4A","shots":100,"shotz":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
	}
	if ae := decodeError(t, data); ae.Code != CodeBadRequest {
		t.Fatalf("code %q, want %q", ae.Code, CodeBadRequest)
	}
}

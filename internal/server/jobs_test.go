package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"biasmit/internal/api"
)

// jobsTestServer spins up a server whose async queue runs one batch at a
// time, so tests can park a slow job on the worker and reason about what
// stays queued behind it.
func jobsTestServer(t *testing.T, quota int) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{
		Workers:      2,
		MaxJobs:      2,
		ProfileShots: 64,
		MaxShots:     1 << 20,
		ProfileTTL:   time.Hour,
		JobWorkers:   1,
		JobQuota:     quota,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJob submits a job as the given tenant and returns the decoded
// response (or the raw bytes for error assertions).
func postJob(t *testing.T, url, tenant string, body *api.JobSubmitRequest) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-API-Key", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func submitJob(t *testing.T, url, tenant string, body *api.JobSubmitRequest) api.JobResponse {
	t.Helper()
	resp, data := postJob(t, url, tenant, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202: %s", resp.StatusCode, data)
	}
	var out api.JobResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Job.ID == "" || out.Job.State != api.JobStateQueued {
		t.Fatalf("submit response %s, want a queued job with an ID", data)
	}
	return out
}

// waitJob long-polls until the job leaves the non-terminal states.
func waitJob(t *testing.T, url, id string) api.JobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, data := getBody(t, url+"/v1/jobs/"+id+"?wait=2s")
		var out api.JobResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("poll %s: %v\n%s", id, err, data)
		}
		switch out.Job.State {
		case api.JobStateDone, api.JobStateFailed, api.JobStateCancelled:
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, out.Job.State)
		}
	}
}

func baselineJob(shots int, seed int64) *api.JobSubmitRequest {
	return &api.JobSubmitRequest{
		Type: api.JobTypeMitigate,
		Mitigate: &api.MitigateRequest{
			Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: shots, Seed: seed,
		},
	}
}

func TestJobLifecycleResultMatchesSync(t *testing.T) {
	_, ts := jobsTestServer(t, 0)

	// The synchronous answer for this exact request is the reference.
	req := MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 512, Seed: 7}
	_, syncData := postJSON(t, ts.URL+"/v1/mitigate", req)
	var syncOut MitigateResponse
	if err := json.Unmarshal(syncData, &syncOut); err != nil {
		t.Fatal(err)
	}

	sub := submitJob(t, ts.URL, "", &api.JobSubmitRequest{Type: api.JobTypeMitigate, Mitigate: &req})
	if sub.Job.Tenant != "anon" {
		t.Fatalf("tenant %q, want anon without X-API-Key", sub.Job.Tenant)
	}
	final := waitJob(t, ts.URL, sub.Job.ID)
	if final.Job.State != api.JobStateDone || final.Job.Attempts != 1 {
		t.Fatalf("final job %+v, want done after one attempt", final.Job)
	}
	if final.Job.StartedAt == nil || final.Job.FinishedAt == nil {
		t.Fatalf("done job missing lifecycle timestamps: %+v", final.Job)
	}

	var asyncOut MitigateResponse
	if err := json.Unmarshal(final.Result, &asyncOut); err != nil {
		t.Fatal(err)
	}
	syncOut.ElapsedMS, asyncOut.ElapsedMS = 0, 0
	syncOut.TraceID, asyncOut.TraceID = "", "" // unique per request by design
	if !reflect.DeepEqual(syncOut, asyncOut) {
		t.Fatalf("async result diverged from the synchronous path:\nsync  %+v\nasync %+v", syncOut, asyncOut)
	}
}

func TestJobCharacterizeAndList(t *testing.T) {
	_, ts := jobsTestServer(t, 0)
	sub := submitJob(t, ts.URL, "team-a", &api.JobSubmitRequest{
		Type:         api.JobTypeCharacterize,
		Characterize: &api.CharacterizeRequest{Machine: "ibmqx4", Method: "brute", Qubits: 4},
	})
	final := waitJob(t, ts.URL, sub.Job.ID)
	if final.Job.State != api.JobStateDone {
		t.Fatalf("characterize job ended %s: %+v", final.Job.State, final.Job.Error)
	}
	var ch CharacterizeResponse
	if err := json.Unmarshal(final.Result, &ch); err != nil {
		t.Fatal(err)
	}
	if ch.Profile.Method != "brute" || len(ch.Strengths) != 16 {
		t.Fatalf("unexpected characterize result: %s", final.Result)
	}

	// List filters by state and tenant.
	_, data := getBody(t, ts.URL+"/v1/jobs?state=done&tenant=team-a")
	var list api.JobListResponse
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.Job.ID {
		t.Fatalf("filtered list %s, want exactly the one done team-a job", data)
	}
	_, data = getBody(t, ts.URL+"/v1/jobs?tenant=nobody")
	list = api.JobListResponse{}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 0 {
		t.Fatalf("list for unknown tenant returned %s", data)
	}
	resp, data := getBody(t, ts.URL+"/v1/jobs?state=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus state filter: status %d, want 400: %s", resp.StatusCode, data)
	}
}

func TestJobCancelReachesCancelled(t *testing.T) {
	_, ts := jobsTestServer(t, 0)
	// Park a slow job on the single worker so the next one queues.
	slow := submitJob(t, ts.URL, "", baselineJob(1<<16, 1))
	victim := submitJob(t, ts.URL, "", baselineJob(1<<16, 2))

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+victim.Job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d, want 200: %s", resp.StatusCode, data)
	}
	final := waitJob(t, ts.URL, victim.Job.ID)
	if final.Job.State != api.JobStateCancelled {
		t.Fatalf("cancelled job ended %s", final.Job.State)
	}

	// Cancelling a terminal job is a typed conflict.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+victim.Job.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel: status %d, want 409: %s", resp.StatusCode, data)
	}
	if ae := decodeError(t, data); ae.Code != api.CodeJobTerminal {
		t.Fatalf("re-cancel code %q, want %q", ae.Code, api.CodeJobTerminal)
	}
	waitJob(t, ts.URL, slow.Job.ID)
}

func TestJobTenantQuota(t *testing.T) {
	_, ts := jobsTestServer(t, 1)
	first := submitJob(t, ts.URL, "tenant-a", baselineJob(1<<16, 1))

	resp, data := postJob(t, ts.URL, "tenant-a", baselineJob(512, 2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429: %s", resp.StatusCode, data)
	}
	if ae := decodeError(t, data); ae.Code != api.CodeQuotaExceeded {
		t.Fatalf("over-quota code %q, want %q", ae.Code, api.CodeQuotaExceeded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("over-quota response missing Retry-After")
	}

	// The quota is per tenant: another tenant is unaffected.
	other := submitJob(t, ts.URL, "tenant-b", baselineJob(512, 3))
	waitJob(t, ts.URL, other.Job.ID)
	waitJob(t, ts.URL, first.Job.ID)
}

func TestJobSubmitValidation(t *testing.T) {
	_, ts := jobsTestServer(t, 0)
	cases := []struct {
		name   string
		req    *api.JobSubmitRequest
		status int
		code   string
	}{
		{"unknown type", &api.JobSubmitRequest{Type: "psychic"}, http.StatusBadRequest, CodeBadRequest},
		{"missing body", &api.JobSubmitRequest{Type: api.JobTypeMitigate}, http.StatusBadRequest, CodeBadRequest},
		{"both bodies", &api.JobSubmitRequest{Type: api.JobTypeMitigate,
			Mitigate:     &api.MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: 100},
			Characterize: &api.CharacterizeRequest{Machine: "ibmqx4"}}, http.StatusBadRequest, CodeBadRequest},
		{"unknown machine", &api.JobSubmitRequest{Type: api.JobTypeMitigate,
			Mitigate: &api.MitigateRequest{Machine: "ibmqx9", Policy: "baseline", Benchmark: "bv-4A", Shots: 100}},
			http.StatusNotFound, CodeUnknownMachine},
		{"unknown policy", &api.JobSubmitRequest{Type: api.JobTypeMitigate,
			Mitigate: &api.MitigateRequest{Machine: "ibmqx4", Policy: "psychic", Benchmark: "bv-4A", Shots: 100}},
			http.StatusBadRequest, CodeBadRequest},
		{"bad budget", &api.JobSubmitRequest{Type: api.JobTypeMitigate,
			Mitigate: &api.MitigateRequest{Machine: "ibmqx4", Policy: "baseline", Benchmark: "bv-4A", Shots: -1}},
			http.StatusBadRequest, CodeBadBudget},
	}
	for _, tc := range cases {
		resp, data := postJob(t, ts.URL, "", tc.req)
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.status, data)
		}
		if ae := decodeError(t, data); ae.Code != tc.code {
			t.Fatalf("%s: code %q, want %q", tc.name, ae.Code, tc.code)
		}
	}
}

func TestJobIDValidationAndNotFound(t *testing.T) {
	_, ts := jobsTestServer(t, 0)
	resp, data := getBody(t, ts.URL+"/v1/jobs/not-a-job-id")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ID: status %d, want 400: %s", resp.StatusCode, data)
	}
	if ae := decodeError(t, data); ae.Code != CodeBadRequest {
		t.Fatalf("malformed ID code %q, want %q", ae.Code, CodeBadRequest)
	}
	resp, data = getBody(t, ts.URL+"/v1/jobs/"+strings.Repeat("0", 26))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ID: status %d, want 404: %s", resp.StatusCode, data)
	}
	if ae := decodeError(t, data); ae.Code != api.CodeJobNotFound {
		t.Fatalf("unknown ID code %q, want %q", ae.Code, api.CodeJobNotFound)
	}
}

func TestPostBodyTooLargeIsTyped(t *testing.T) {
	_, ts := jobsTestServer(t, 0)
	// Every POST handler shares the cap; an over-limit body is rejected
	// with the typed 413 before any processing.
	huge := `{"type":"mitigate","mitigate":{"machine":"ibmqx4","policy":"baseline","qasm":"` +
		strings.Repeat("x", maxBodyBytes+1024) + `","shots":100}}`
	for _, path := range []string{"/v1/jobs", "/v1/mitigate"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413", path, resp.StatusCode)
		}
		if ae := decodeError(t, data); ae.Code != api.CodeBodyTooLarge {
			t.Fatalf("%s: code %q, want %q", path, ae.Code, api.CodeBodyTooLarge)
		}
	}
}

func TestJobMetricsExposed(t *testing.T) {
	_, ts := jobsTestServer(t, 0)
	sub := submitJob(t, ts.URL, "", baselineJob(512, 9))
	waitJob(t, ts.URL, sub.Job.ID)

	_, data := getBody(t, ts.URL+"/metrics")
	body := string(data)
	for _, want := range []string{
		`biasmitd_jobs_depth{state="done"} 1`,
		`biasmitd_jobs_depth{state="queued"} 0`,
		`biasmitd_job_transitions_total{state="done"} 1`,
		"biasmitd_jobs_submitted_total 1",
		"biasmitd_job_batches_total 1",
		"biasmitd_jobs_persistence_enabled 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

package server

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"biasmit/internal/jobs"
	"biasmit/internal/obs"
	"biasmit/internal/overload"
	"biasmit/internal/profilestore"
	"biasmit/internal/resilient"
)

// latencyBuckets are the histogram upper bounds in seconds. Mitigation
// latency is dominated by the trial loop, so the range runs from
// millisecond health checks to multi-second characterizations.
var latencyBuckets = []float64{0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts []uint64 // per-bucket (non-cumulative), one extra for +Inf
	sum    float64
	total  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(latencyBuckets, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// metricsRegistry is a minimal hand-rolled registry exposing the
// Prometheus text format from the standard library alone: request
// counters by route and status code, per-route latency histograms, and
// per-route in-flight gauges. The profile-cache counters are appended
// from the store's own stats at render time.
type metricsRegistry struct {
	mu       sync.Mutex
	requests map[string]map[int]uint64 // route -> status code -> count
	latency  map[string]*histogram     // route -> seconds
	inFlight map[string]int            // route -> gauge
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{
		requests: make(map[string]map[int]uint64),
		latency:  make(map[string]*histogram),
		inFlight: make(map[string]int),
	}
}

// begin marks a request in flight on route.
func (m *metricsRegistry) begin(route string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inFlight[route]++
}

// end completes a request: decrements the gauge, counts the status code,
// and records the latency.
func (m *metricsRegistry) end(route string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inFlight[route]--
	byCode := m.requests[route]
	if byCode == nil {
		byCode = make(map[int]uint64)
		m.requests[route] = byCode
	}
	byCode[code]++
	h := m.latency[route]
	if h == nil {
		h = newHistogram()
		m.latency[route] = h
	}
	h.observe(seconds)
}

// sortedKeys returns map keys in lexical order so the exposition is
// deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// breakerInfo is one machine's breaker snapshot for the exposition.
type breakerInfo struct {
	machine string
	state   string
	stats   resilient.BreakerStats
}

// breakerStateValue encodes a breaker state as a gauge value: 0 closed,
// 1 half-open, 2 open.
func breakerStateValue(state string) int {
	switch state {
	case resilient.StateHalfOpen:
		return 1
	case resilient.StateOpen:
		return 2
	}
	return 0
}

// write renders the registry plus the profile-cache stats, the resilient
// executor counters, the per-machine breaker snapshots, and — when the
// store is durable — the persistence counters and recovery gauges, in
// the Prometheus text exposition format.
func (m *metricsRegistry) write(w io.Writer, cache profilestore.Stats, runs resilient.MetricsSnapshot, breakers []breakerInfo, persist *profilestore.DiskLogStats, jobStats jobs.Stats, jobsDurable bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP biasmitd_requests_total Completed HTTP requests by route and status code.")
	fmt.Fprintln(w, "# TYPE biasmitd_requests_total counter")
	for _, route := range sortedKeys(m.requests) {
		byCode := m.requests[route]
		codes := make([]int, 0, len(byCode))
		for c := range byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "biasmitd_requests_total{route=%q,code=\"%d\"} %d\n", route, c, byCode[c])
		}
	}

	fmt.Fprintln(w, "# HELP biasmitd_request_duration_seconds Request latency by route.")
	fmt.Fprintln(w, "# TYPE biasmitd_request_duration_seconds histogram")
	for _, route := range sortedKeys(m.latency) {
		h := m.latency[route]
		var cum uint64
		for i, le := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "biasmitd_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", route, le, cum)
		}
		fmt.Fprintf(w, "biasmitd_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, h.total)
		fmt.Fprintf(w, "biasmitd_request_duration_seconds_sum{route=%q} %g\n", route, h.sum)
		fmt.Fprintf(w, "biasmitd_request_duration_seconds_count{route=%q} %d\n", route, h.total)
	}

	fmt.Fprintln(w, "# HELP biasmitd_in_flight_requests Requests currently being served, by route.")
	fmt.Fprintln(w, "# TYPE biasmitd_in_flight_requests gauge")
	for _, route := range sortedKeys(m.inFlight) {
		fmt.Fprintf(w, "biasmitd_in_flight_requests{route=%q} %d\n", route, m.inFlight[route])
	}

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("biasmitd_profile_cache_hits_total", "Profile lookups served from a fresh cache entry.", cache.Hits)
	counter("biasmitd_profile_cache_misses_total", "Profile lookups with no cached entry.", cache.Misses)
	counter("biasmitd_profile_cache_expired_total", "Profile lookups whose cached entry had outlived its TTL.", cache.Expired)
	counter("biasmitd_profile_cache_joined_total", "Profile lookups deduplicated onto an in-flight characterization.", cache.Joined)
	counter("biasmitd_profile_characterizations_total", "Request-path characterizations completed.", cache.Characterizations)
	counter("biasmitd_profile_characterize_errors_total", "Request-path characterizations failed.", cache.CharacterizeErrors)
	counter("biasmitd_profile_refreshes_total", "Background profile refreshes completed.", cache.Refreshes)
	counter("biasmitd_profile_refresh_errors_total", "Background profile refreshes failed.", cache.RefreshErrors)
	counter("biasmitd_profile_degraded_serves_total", "Stale profiles served because re-characterization failed.", cache.DegradedServes)
	counter("biasmitd_profile_evictions_total", "Profiles dropped by the max-profiles LRU bound.", cache.Evictions)
	counter("biasmitd_profile_journal_errors_total", "Journal writes that failed (the in-memory cache kept serving).", cache.JournalErrors)
	fmt.Fprintln(w, "# HELP biasmitd_profile_cache_entries Profiles currently cached.")
	fmt.Fprintln(w, "# TYPE biasmitd_profile_cache_entries gauge")
	fmt.Fprintf(w, "biasmitd_profile_cache_entries %d\n", cache.Entries)

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	if persist == nil {
		gauge("biasmitd_persistence_enabled", "1 when the profile store journals to disk, 0 for memory-only.", 0)
	} else {
		gauge("biasmitd_persistence_enabled", "1 when the profile store journals to disk, 0 for memory-only.", 1)
		gauge("biasmitd_profiles_restored", "Profiles reconstructed from snapshot+WAL at the last boot.", int64(persist.Recovery.Profiles))
		gauge("biasmitd_recovery_snapshot_profiles", "Profiles the boot-time snapshot held.", int64(persist.Recovery.SnapshotProfiles))
		gauge("biasmitd_recovery_wal_records", "Intact WAL records replayed at the last boot.", int64(persist.Recovery.WALRecords))
		gauge("biasmitd_recovery_wal_skipped", "Replayed WAL records already folded into the snapshot.", int64(persist.Recovery.WALSkipped))
		gauge("biasmitd_recovery_invalid_records", "Recovered records dropped by validation.", int64(persist.Recovery.Invalid))
		tail := int64(0)
		if persist.Recovery.TailTruncated {
			tail = 1
		}
		gauge("biasmitd_recovery_wal_tail_truncated", "1 when the last boot dropped a torn WAL tail (crash mid-append).", tail)
		counter("biasmitd_wal_appends_total", "Journal entries committed (written and fsynced).", persist.WALAppends)
		counter("biasmitd_wal_append_errors_total", "Journal entries that failed to commit.", persist.WALAppendErrors)
		gauge("biasmitd_wal_size_bytes", "Committed bytes currently in the WAL.", persist.WALSizeBytes)
		counter("biasmitd_snapshots_total", "Snapshot compactions completed.", persist.Snapshots)
		counter("biasmitd_snapshot_errors_total", "Snapshot compactions failed.", persist.SnapshotErrors)
		gauge("biasmitd_journal_live_records", "Profiles in the durable journal (mirror of the cache gauge).", int64(persist.LiveRecords))
	}

	// Async job queue: depth by state, lifecycle transitions, batching,
	// fairness throttles, and the queue's own durability counters.
	fmt.Fprintln(w, "# HELP biasmitd_jobs_depth Async jobs currently in each lifecycle state.")
	fmt.Fprintln(w, "# TYPE biasmitd_jobs_depth gauge")
	for _, sc := range []struct {
		state string
		n     int
	}{
		{"queued", jobStats.Queued}, {"running", jobStats.Running}, {"done", jobStats.Done},
		{"failed", jobStats.Failed}, {"cancelled", jobStats.Cancelled},
	} {
		fmt.Fprintf(w, "biasmitd_jobs_depth{state=%q} %d\n", sc.state, sc.n)
	}
	fmt.Fprintln(w, "# HELP biasmitd_job_transitions_total Async job entries into each state (queued includes requeues).")
	fmt.Fprintln(w, "# TYPE biasmitd_job_transitions_total counter")
	for _, st := range []jobs.State{jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCancelled} {
		fmt.Fprintf(w, "biasmitd_job_transitions_total{state=%q} %d\n", string(st), jobStats.Transitions[st])
	}
	counter("biasmitd_jobs_submitted_total", "Async job submissions accepted.", jobStats.Submitted)
	counter("biasmitd_jobs_throttled_total", "Async job submissions rejected by a tenant quota.", jobStats.Throttled)
	counter("biasmitd_job_batches_total", "Micro-batches executed.", jobStats.Batches)
	counter("biasmitd_job_batched_jobs_total", "Jobs executed inside micro-batches.", jobStats.BatchedJobs)
	gauge("biasmitd_job_max_batch_size", "Largest micro-batch executed since boot.", int64(jobStats.MaxBatch))
	counter("biasmitd_job_retries_total", "Jobs requeued after a retryable failure.", jobStats.Retries)
	counter("biasmitd_job_drain_requeues_total", "Running jobs checkpointed back to queued by a drain deadline.", jobStats.DrainRequeues)
	counter("biasmitd_job_journal_errors_total", "Job journal appends that failed (the queue kept going).", jobStats.JournalErrors)
	gauge("biasmitd_jobs_recovered", "Live jobs reconstructed from the journal at the last boot.", int64(jobStats.RecoveredJobs))
	gauge("biasmitd_jobs_recovered_requeued", "Recovered jobs that were mid-run and went back to queued.", int64(jobStats.RecoveredRequeued))
	if !jobsDurable {
		gauge("biasmitd_jobs_persistence_enabled", "1 when the job queue journals to disk, 0 for memory-only.", 0)
	} else {
		gauge("biasmitd_jobs_persistence_enabled", "1 when the job queue journals to disk, 0 for memory-only.", 1)
		counter("biasmitd_jobs_wal_appends_total", "Job journal entries committed (written and fsynced).", jobStats.Log.WALAppends)
		counter("biasmitd_jobs_wal_append_errors_total", "Job journal entries that failed to commit.", jobStats.Log.WALAppendErrors)
		gauge("biasmitd_jobs_wal_size_bytes", "Committed bytes currently in the job WAL.", jobStats.Log.WALSizeBytes)
		counter("biasmitd_jobs_snapshots_total", "Job journal snapshot compactions completed.", jobStats.Log.Snapshots)
		counter("biasmitd_jobs_snapshot_errors_total", "Job journal snapshot compactions failed.", jobStats.Log.SnapshotErrors)
		tail := int64(0)
		if jobStats.Log.Recovery.TailTruncated {
			tail = 1
		}
		gauge("biasmitd_jobs_recovery_wal_tail_truncated", "1 when the last boot dropped a torn job-WAL tail (crash mid-append).", tail)
	}

	counter("biasmitd_backend_runs_total", "Backend runs started (past the breaker).", runs.Runs)
	counter("biasmitd_backend_attempts_total", "Dispatch passes over a run's pending slices.", runs.Attempts)
	counter("biasmitd_backend_retries_total", "Attempts after a run's first, i.e. transient-failure retries.", runs.Retries)
	counter("biasmitd_backend_run_failures_total", "Backend runs that failed after exhausting retries.", runs.Failures)
	counter("biasmitd_salvaged_slices_total", "Completed shot slices carried across a retry instead of re-run.", runs.SalvagedSlices)
	counter("biasmitd_salvaged_shots_total", "Trials inside salvaged slices.", runs.SalvagedShots)
	counter("biasmitd_breaker_rejections_total", "Runs refused outright by an open circuit breaker.", runs.BreakerRejections)

	fmt.Fprintln(w, "# HELP biasmitd_breaker_state Circuit-breaker state per machine (0 closed, 1 half-open, 2 open).")
	fmt.Fprintln(w, "# TYPE biasmitd_breaker_state gauge")
	for _, b := range breakers {
		fmt.Fprintf(w, "biasmitd_breaker_state{machine=%q} %d\n", b.machine, breakerStateValue(b.state))
	}
	fmt.Fprintln(w, "# HELP biasmitd_breaker_transitions_total Circuit-breaker state transitions per machine.")
	fmt.Fprintln(w, "# TYPE biasmitd_breaker_transitions_total counter")
	for _, b := range breakers {
		fmt.Fprintf(w, "biasmitd_breaker_transitions_total{machine=%q,to=\"open\"} %d\n", b.machine, b.stats.Opened)
		fmt.Fprintf(w, "biasmitd_breaker_transitions_total{machine=%q,to=\"half-open\"} %d\n", b.machine, b.stats.HalfOpened)
		fmt.Fprintf(w, "biasmitd_breaker_transitions_total{machine=%q,to=\"closed\"} %d\n", b.machine, b.stats.Closed)
	}
	counter("biasmitd_retry_budget_denials_total", "Backend retries blocked by the shared retry budget.", runs.BudgetDenials)
}

// writeOverloadMetrics renders the overload-control subsystem: the
// adaptive limiter's ceiling and per-class admission counters, the
// retry budget's token level, brownout tier transitions, and watchdog
// stall recoveries. Written after the registry block by /metrics.
func (s *Server) writeOverloadMetrics(w io.Writer) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	enabled := int64(0)
	if s.limiter != nil {
		enabled = 1
	}
	gauge("biasmitd_overload_limiter_enabled", "1 when the adaptive concurrency limiter gates admissions.", enabled)
	if s.limiter != nil {
		ls := s.limiter.Stats()
		fmt.Fprintln(w, "# HELP biasmitd_overload_limit Current adaptive in-flight ceiling.")
		fmt.Fprintln(w, "# TYPE biasmitd_overload_limit gauge")
		fmt.Fprintf(w, "biasmitd_overload_limit %g\n", ls.Limit)
		gauge("biasmitd_overload_inflight", "Requests currently holding an admission slot.", int64(ls.Inflight))
		gauge("biasmitd_overload_queued", "Requests waiting in the admission queue.", int64(ls.Queued))
		fmt.Fprintln(w, "# HELP biasmitd_overload_admissions_total Requests admitted, by priority class.")
		fmt.Fprintln(w, "# TYPE biasmitd_overload_admissions_total counter")
		for c := overload.ClassJobs; c <= overload.ClassCharacterize; c++ {
			fmt.Fprintf(w, "biasmitd_overload_admissions_total{class=%q} %d\n", c.String(), ls.Admitted[c])
		}
		fmt.Fprintln(w, "# HELP biasmitd_overload_sheds_total Requests shed by admission control, by priority class.")
		fmt.Fprintln(w, "# TYPE biasmitd_overload_sheds_total counter")
		for c := overload.ClassJobs; c <= overload.ClassCharacterize; c++ {
			fmt.Fprintf(w, "biasmitd_overload_sheds_total{class=%q} %d\n", c.String(), ls.Shed[c])
		}
		fmt.Fprintln(w, "# HELP biasmitd_overload_queue_timeouts_total Queued requests shed at the CoDel queue timeout, by priority class.")
		fmt.Fprintln(w, "# TYPE biasmitd_overload_queue_timeouts_total counter")
		for c := overload.ClassJobs; c <= overload.ClassCharacterize; c++ {
			fmt.Fprintf(w, "biasmitd_overload_queue_timeouts_total{class=%q} %d\n", c.String(), ls.Timeouts[c])
		}
		counter("biasmitd_overload_limit_raises_total", "Adaptive-limit increases (latency at baseline).", ls.AdjustUp)
		counter("biasmitd_overload_limit_cuts_total", "Adaptive-limit multiplicative decreases (latency inflated).", ls.AdjustDown)
		counter("biasmitd_overload_evictions_total", "Queued low-class waiters displaced by higher-class arrivals.", ls.Evictions)
	}
	if s.budget != nil {
		bs := s.budget.Stats()
		fmt.Fprintln(w, "# HELP biasmitd_retry_budget_tokens Retry tokens currently available.")
		fmt.Fprintln(w, "# TYPE biasmitd_retry_budget_tokens gauge")
		fmt.Fprintf(w, "biasmitd_retry_budget_tokens %g\n", bs.Tokens)
		counter("biasmitd_retry_budget_allowed_total", "Retries the budget admitted.", bs.Allowed)
		counter("biasmitd_retry_budget_denied_total", "Retries the budget refused.", bs.Denied)
	}
	br := s.brown.Stats()
	gauge("biasmitd_brownout_tier", "Current brownout tier (0 full, 1 sim, 2 baseline).", int64(br.Tier))
	counter("biasmitd_brownout_steps_down_total", "Brownout tier degradations under admission pressure.", br.StepsDown)
	counter("biasmitd_brownout_steps_up_total", "Brownout tier recoveries after sustained calm.", br.StepsUp)
	ws := s.watchdog.Stats()
	gauge("biasmitd_watchdog_tasks", "Loops and batches currently heartbeating the watchdog.", int64(ws.Tasks))
	counter("biasmitd_watchdog_stalls_total", "Stalled tasks the watchdog cancelled and requeued.", ws.Stalls)
}

// writeTraceMetrics renders the tracing layer: per-stage latency
// histograms aggregated from finished spans, and the retained
// slow-request exemplars — trace IDs a debugger can paste straight
// into GET /debug/traces. Written after the overload block by
// /metrics.
func (s *Server) writeTraceMetrics(w io.Writer) {
	stages := s.traces.Stages()
	fmt.Fprintln(w, "# HELP biasmitd_stage_duration_seconds Per-stage span latency across traced requests and jobs.")
	fmt.Fprintln(w, "# TYPE biasmitd_stage_duration_seconds histogram")
	for _, name := range sortedKeys(stages) {
		h := stages[name]
		var cum uint64
		for i, le := range obs.StageBuckets {
			cum += h.Counts[i]
			fmt.Fprintf(w, "biasmitd_stage_duration_seconds_bucket{stage=%q,le=\"%g\"} %d\n", name, le, cum)
		}
		fmt.Fprintf(w, "biasmitd_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", name, h.Count)
		fmt.Fprintf(w, "biasmitd_stage_duration_seconds_sum{stage=%q} %g\n", name, h.Sum)
		fmt.Fprintf(w, "biasmitd_stage_duration_seconds_count{stage=%q} %d\n", name, h.Count)
	}
	fmt.Fprintln(w, "# HELP biasmitd_slow_request_threshold_seconds Elapsed time past which a request is retained as a slow exemplar.")
	fmt.Fprintln(w, "# TYPE biasmitd_slow_request_threshold_seconds gauge")
	fmt.Fprintf(w, "biasmitd_slow_request_threshold_seconds %g\n", s.traces.SlowThreshold().Seconds())
	fmt.Fprintln(w, "# HELP biasmitd_slow_request_seconds Elapsed seconds of retained slow-request exemplars, newest first.")
	fmt.Fprintln(w, "# TYPE biasmitd_slow_request_seconds gauge")
	for _, td := range s.traces.Slow() {
		fmt.Fprintf(w, "biasmitd_slow_request_seconds{trace_id=%q,route=%q} %g\n", td.TraceID, td.Route, td.ElapsedMS/1e3)
	}
}

// writeResultCacheMetrics renders the content-addressed result cache:
// hit/miss/coalesce/evict/invalidate counters and the entry/byte
// gauges. Written after the overload block by /metrics.
func (s *Server) writeResultCacheMetrics(w io.Writer) {
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	enabled := int64(0)
	if s.rescache != nil {
		enabled = 1
	}
	gauge("biasmitd_result_cache_enabled", "1 when the content-addressed mitigation result cache is on.", enabled)
	if s.rescache == nil {
		return
	}
	st := s.rescache.Stats()
	counter("biasmitd_result_cache_hits_total", "Mitigation responses replayed byte-for-byte from the result cache.", st.Hits)
	counter("biasmitd_result_cache_misses_total", "Mitigation requests that executed the pipeline (singleflight leaders).", st.Misses)
	counter("biasmitd_result_cache_coalesced_total", "Mitigation requests that attached to an identical in-flight execution.", st.Coalesced)
	counter("biasmitd_result_cache_evictions_total", "Result-cache entries dropped by the LRU bound.", st.Evicted)
	counter("biasmitd_result_cache_invalidations_total", "Result-cache entries dropped because their profile generation went stale.", st.Invalidated)
	counter("biasmitd_result_cache_errors_total", "Cached-path executions that finished with an error (never stored).", st.Errors)
	gauge("biasmitd_result_cache_entries", "Results currently cached.", int64(st.Entries))
	gauge("biasmitd_result_cache_bytes", "Payload bytes currently cached.", st.Bytes)
}

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"biasmit/internal/backend"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/dist"
)

// fakeClock is a manually advanced clock safe for concurrent reads.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// faultySwitch makes every backend run fail transiently while on. The
// failShots filter, when non-zero, restricts failures to runs with that
// exact shot budget (used to break characterization but not mitigation).
type faultySwitch struct {
	on        atomic.Bool
	failShots int
}

func (f *faultySwitch) wrap(run backend.Runner) backend.Runner {
	return func(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt backend.Options) (*dist.Counts, error) {
		if f.on.Load() && (f.failShots == 0 || opt.Shots == f.failShots) {
			return nil, &backend.TransientError{Op: "test", Err: fmt.Errorf("injected outage")}
		}
		return run(ctx, c, dev, opt)
	}
}

// resilientServer builds a server with a switchable fault source, a fake
// clock, no retries, and a tight breaker, so breaker transitions are
// driven by individual requests.
func resilientServer(t *testing.T, f *faultySwitch, cfg Config) (*Server, *httptest.Server, *fakeClock) {
	t.Helper()
	clk := newFakeClock()
	cfg.Now = clk.now
	cfg.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	cfg.wrapRun = f.wrap
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.MaxShots == 0 {
		cfg.MaxShots = 1 << 16
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, clk
}

func TestBreakerOpensServes503AndRecovers(t *testing.T) {
	f := &faultySwitch{}
	_, ts, clk := resilientServer(t, f, Config{
		RetryAttempts:    1,
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Second,
		ProfileShots:     64,
	})
	req := MitigateRequest{Machine: "ibmqx2", Policy: "baseline", Benchmark: "prep:00", Shots: 64, Seed: 1}

	// Two failing runs exhaust the (single-attempt) retry budget twice
	// and open the breaker.
	f.on.Store(true)
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/mitigate", req)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 503: %s", i+1, resp.StatusCode, data)
		}
		if ae := decodeError(t, data); ae.Code != CodeUpstreamTransient {
			t.Fatalf("request %d: code %q, want %q", i+1, ae.Code, CodeUpstreamTransient)
		}
	}

	// The third request is rejected by the open breaker without touching
	// the backend: typed code plus a Retry-After header.
	resp, data := postJSON(t, ts.URL+"/v1/mitigate", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, data)
	}
	if ae := decodeError(t, data); ae.Code != CodeBreakerOpen {
		t.Fatalf("code %q, want %q", ae.Code, CodeBreakerOpen)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "5" {
		t.Fatalf("Retry-After %q, want %q", ra, "5")
	}

	// /healthz is honest about it: degraded, with the machine marked open.
	hresp, hdata := getBody(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d (only one machine is dark)", hresp.StatusCode)
	}
	var h HealthResponse
	if err := json.Unmarshal(hdata, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Fatalf("health status %q, want degraded: %s", h.Status, hdata)
	}
	foundOpen := false
	for _, m := range h.Machines {
		if m.Machine == "ibmqx2" {
			foundOpen = m.Breaker == "open" && m.RetryAfterMS > 0
		} else if m.Breaker != "closed" {
			t.Fatalf("machine %s breaker %q, want closed", m.Machine, m.Breaker)
		}
	}
	if !foundOpen {
		t.Fatalf("ibmqx2 not reported open: %s", hdata)
	}

	// After the cooldown the half-open probe succeeds and the breaker
	// closes again.
	clk.advance(6 * time.Second)
	f.on.Store(false)
	resp, data = postJSON(t, ts.URL+"/v1/mitigate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery status %d: %s", resp.StatusCode, data)
	}
	hresp, hdata = getBody(t, ts.URL+"/healthz")
	if err := json.Unmarshal(hdata, &h); err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("health after recovery: status %d %q", hresp.StatusCode, h.Status)
	}

	// /metrics exposes the retry, salvage, and breaker-transition
	// counters.
	_, mdata := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"biasmitd_backend_retries_total",
		"biasmitd_salvaged_shots_total",
		"biasmitd_breaker_rejections_total 1",
		`biasmitd_breaker_transitions_total{machine="ibmqx2",to="open"} 1`,
		`biasmitd_breaker_transitions_total{machine="ibmqx2",to="half-open"} 1`,
		`biasmitd_breaker_transitions_total{machine="ibmqx2",to="closed"} 1`,
		`biasmitd_breaker_state{machine="ibmqx2"} 0`,
	} {
		if !strings.Contains(string(mdata), want) {
			t.Fatalf("metrics missing %q:\n%s", want, mdata)
		}
	}
}

func TestHealthzUnavailableWhenEveryBreakerOpen(t *testing.T) {
	f := &faultySwitch{}
	s, ts, _ := resilientServer(t, f, Config{BreakerThreshold: 1})
	for _, name := range s.cfg.MachineNames {
		dev, ok := device.ByName(name)
		if !ok {
			t.Fatalf("unknown machine %q", name)
		}
		s.exec(dev).breaker.Failure()
	}
	resp, data := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 with every breaker open: %s", resp.StatusCode, data)
	}
	var h HealthResponse
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "unavailable" {
		t.Fatalf("status %q, want unavailable", h.Status)
	}
}

func TestCharacterizeServesStaleProfileDegraded(t *testing.T) {
	f := &faultySwitch{}
	_, ts, clk := resilientServer(t, f, Config{
		RetryAttempts:    1,
		BreakerThreshold: 1000, // keep the breaker out of this test
		ProfileShots:     64,
		ProfileTTL:       time.Minute,
	})
	req := CharacterizeRequest{Machine: "ibmqx2", Method: "brute", Qubits: 2}

	resp, data := postJSON(t, ts.URL+"/v1/characterize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out CharacterizeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cached || out.Degraded {
		t.Fatalf("first characterization cached=%v degraded=%v", out.Cached, out.Degraded)
	}

	// Past the TTL with the backend dark, the stale profile is served
	// flagged degraded instead of erroring.
	clk.advance(2 * time.Minute)
	f.on.Store(true)
	resp, data = postJSON(t, ts.URL+"/v1/characterize", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded serve status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || !out.Cached {
		t.Fatalf("degraded serve cached=%v degraded=%v: %s", out.Cached, out.Degraded, data)
	}
	if !out.Profile.Stale {
		t.Fatal("the served profile should be marked stale")
	}

	_, mdata := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(mdata), "biasmitd_profile_degraded_serves_total 1") {
		t.Fatalf("metrics missing degraded-serve counter:\n%s", mdata)
	}

	// /healthz reports the stale cache entry.
	_, hdata := getBody(t, ts.URL+"/healthz")
	var h HealthResponse
	if err := json.Unmarshal(hdata, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.ProfilesStale != 1 || h.ProfilesCached != 1 {
		t.Fatalf("health %+v, want degraded with 1/1 profiles stale", h)
	}
}

func TestMitigateAIMDegradedProfile(t *testing.T) {
	// Fail only characterization-sized runs (the 257-shot sentinel), so
	// the AIM run itself succeeds against a stale profile.
	f := &faultySwitch{failShots: 257}
	_, ts, clk := resilientServer(t, f, Config{
		RetryAttempts:    1,
		BreakerThreshold: 1000,
		ProfileShots:     257,
		ProfileTTL:       time.Minute,
	})
	req := MitigateRequest{Machine: "ibmqx2", Policy: "aim", Benchmark: "bv:01", Shots: 400, Seed: 5}

	resp, data := postJSON(t, ts.URL+"/v1/mitigate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out MitigateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Degraded || out.Profile == nil || out.Profile.Degraded {
		t.Fatalf("fresh AIM run should not be degraded: %s", data)
	}

	clk.advance(2 * time.Minute)
	f.on.Store(true)
	resp, data = postJSON(t, ts.URL+"/v1/mitigate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded AIM status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.Profile == nil || !out.Profile.Degraded || !out.Profile.Cached {
		t.Fatalf("degraded AIM response flags wrong: %s", data)
	}
}

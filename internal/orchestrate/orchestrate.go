// Package orchestrate provides the bounded worker-pool job runner used
// by every embarrassingly parallel stage of the pipeline: brute-force
// RBMS profiling (one job per basis state), SIM/AIM inversion groups,
// AWCT windows, and the experiment drivers' benchmark × policy cells.
//
// The scheduling contract is that parallel execution is invisible in the
// results: callers derive every job's seed from (base seed, job index)
// before submission, each job runs its trial loop sequentially with its
// own RNG, and results land in index-addressed slots. A run with N
// workers is therefore bit-identical to a sequential run at the same
// seed — only wall-clock changes. Cancellation flows through a
// context.Context: the first job error (or a parent cancellation) stops
// new work, and Wait/Map report that first error. Panics inside jobs are
// captured and surfaced as *PanicError instead of killing the process.
package orchestrate

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Workers resolves a worker-count setting: values above zero are taken
// as-is, anything else selects GOMAXPROCS (use 1 to force sequential
// execution).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError wraps a panic recovered from a job so the failure surfaces
// as an ordinary error on the submitting goroutine, with the worker's
// stack preserved for diagnosis.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // the panicking goroutine's stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("orchestrate: job panicked: %v\n%s", e.Value, e.Stack)
}

// DeriveSeed splits a base seed into decorrelated per-job streams with a
// splitmix64 step, so a pool of jobs stays a pure function of the
// caller's seed. Stream indices need not be contiguous.
func DeriveSeed(seed int64, stream int) int64 {
	x := uint64(seed) + 0x9E3779B97F4A7C15*uint64(stream+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x & (1<<63 - 1))
}

// Pool runs heterogeneous jobs on at most Workers(workers) goroutines.
// The zero value is not usable; construct with NewPool.
type Pool struct {
	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	wg     sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewPool returns a pool bounded to workers concurrent jobs (see
// Workers for the zero default). The pool's jobs observe a context that
// is cancelled as soon as any job fails, so in-flight work can stop
// early.
func NewPool(ctx context.Context, workers int) *Pool {
	if ctx == nil {
		ctx = context.Background()
	}
	pctx, cancel := context.WithCancel(ctx)
	return &Pool{ctx: pctx, cancel: cancel, sem: make(chan struct{}, Workers(workers))}
}

// Go submits a job. If the pool is already cancelled (a previous job
// failed or the parent context ended) the job is dropped and its slot's
// error reflects the cancellation. Go must not be called after Wait.
func (p *Pool) Go(f func(ctx context.Context) error) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		select {
		case p.sem <- struct{}{}:
			defer func() { <-p.sem }()
		case <-p.ctx.Done():
			p.report(p.ctx.Err())
			return
		}
		if err := p.ctx.Err(); err != nil {
			p.report(err)
			return
		}
		p.report(protect(p.ctx, f))
	}()
}

// Wait blocks until every submitted job has finished or been skipped and
// returns the first error (in completion order) that any job produced,
// or the parent context's error if it ended first.
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.cancel()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// report records the first failure and cancels the remaining jobs.
func (p *Pool) report(err error) {
	if err == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err == nil {
		p.err = err
		p.cancel()
	}
}

// protect runs f, converting a panic into a *PanicError.
func protect(ctx context.Context, f func(ctx context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return f(ctx)
}

// Map applies f to every item on at most Workers(workers) goroutines and
// returns the results in input order. f receives the item's index so it
// can derive a per-job seed (DeriveSeed) and write-free callers can
// label work. On failure Map returns the first error (job error, panic,
// or context cancellation); result slots whose jobs did not complete are
// left as zero values.
func Map[T, R any](ctx context.Context, workers int, items []T, f func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, ctx.Err()
	}
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}

	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	report := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
	}
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := pctx.Err(); err != nil {
					report(err)
					continue // drain so the feeder can finish
				}
				r, err := protectMap(pctx, i, items[i], f)
				if err != nil {
					report(err)
					continue
				}
				results[i] = r
			}
		}()
	}
	for i := range items {
		idx <- i
	}
	close(idx)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return results, firstErr
}

// protectMap runs one Map job with panic capture.
func protectMap[T, R any](ctx context.Context, i int, item T, f func(ctx context.Context, i int, item T) (R, error)) (r R, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = &PanicError{Value: rec, Stack: debug.Stack()}
		}
	}()
	return f(ctx, i, item)
}

package orchestrate

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderAndValues(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got, err := Map(context.Background(), 8, items, func(_ context.Context, i, item int) (int, error) {
		return item * item, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapMatchesSequentialAtEveryWorkerCount(t *testing.T) {
	items := []int{3, 1, 4, 1, 5, 9, 2, 6}
	f := func(_ context.Context, i, item int) (int64, error) {
		return DeriveSeed(int64(item), i), nil
	}
	want, err := Map(context.Background(), 1, items, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 16} {
		got, err := Map(context.Background(), workers, items, f)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	later := errors.New("later")
	gate := make(chan struct{})
	_, err := Map(context.Background(), 2, []int{0, 1}, func(_ context.Context, i, _ int) (int, error) {
		if i == 0 {
			defer close(gate) // job 1 errors strictly after job 0
			return 0, boom
		}
		<-gate
		time.Sleep(10 * time.Millisecond)
		return 0, later
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want first error %v", err, boom)
	}
}

func TestMapErrorSkipsRemainingJobs(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := Map(context.Background(), 1, make([]int, 50), func(_ context.Context, i, _ int) (int, error) {
		ran.Add(1)
		if i == 4 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// With one worker, nothing after the failing job should execute.
	if n := ran.Load(); n != 5 {
		t.Fatalf("ran %d jobs, want 5", n)
	}
}

func TestMapCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	var finished atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, err := Map(ctx, 2, make([]int, 64), func(jctx context.Context, i, _ int) (int, error) {
			started <- struct{}{}
			select {
			case <-jctx.Done():
				return 0, jctx.Err()
			case <-time.After(5 * time.Second):
				finished.Add(1)
				return i, nil
			}
		})
		done <- err
	}()
	<-started // at least one job is in flight
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Map did not return after cancellation")
	}
	if finished.Load() != 0 {
		t.Fatalf("%d jobs ran to completion despite cancellation", finished.Load())
	}
}

func TestMapPanicSurfacesAsError(t *testing.T) {
	_, err := Map(context.Background(), 4, make([]int, 8), func(_ context.Context, i, _ int) (int, error) {
		if i == 3 {
			panic("job exploded")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if fmt.Sprint(pe.Value) != "job exploded" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(pe.Error(), "job exploded") || len(pe.Stack) == 0 {
		t.Fatalf("panic error missing context: %v", pe)
	}
}

func TestMapEmptyAndSingleItem(t *testing.T) {
	if got, err := Map(context.Background(), 4, nil, func(_ context.Context, i, item int) (int, error) {
		return item, nil
	}); err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v, %v", got, err)
	}
	got, err := Map(context.Background(), 4, []int{7}, func(_ context.Context, _, item int) (int, error) {
		return item + 1, nil
	})
	if err != nil || got[0] != 8 {
		t.Fatalf("single item: %v, %v", got, err)
	}
}

func TestPoolGoWait(t *testing.T) {
	p := NewPool(context.Background(), 4)
	var sum atomic.Int64
	for i := 1; i <= 10; i++ {
		p.Go(func(context.Context) error {
			sum.Add(int64(i))
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 55 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestPoolFirstErrorCancelsRest(t *testing.T) {
	p := NewPool(context.Background(), 2)
	boom := errors.New("boom")
	var after atomic.Bool
	p.Go(func(context.Context) error { return boom })
	p.Go(func(ctx context.Context) error {
		select {
		case <-ctx.Done(): // fires once the first job's error is reported
			return ctx.Err()
		case <-time.After(2 * time.Second):
			after.Store(true)
			return nil
		}
	})
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if after.Load() {
		t.Fatal("job after the failure observed a live context")
	}
}

func TestPoolPanicSurfacesAsError(t *testing.T) {
	p := NewPool(context.Background(), 2)
	p.Go(func(context.Context) error { panic(42) })
	var pe *PanicError
	if err := p.Wait(); !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if fmt.Sprint(pe.Value) != "42" {
		t.Fatalf("panic value = %v", pe.Value)
	}
}

func TestPoolParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPool(ctx, 2)
	p.Go(func(ctx context.Context) error {
		return errors.New("should not run")
	})
	if err := p.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[int64]bool{}
	for stream := 0; stream < 1000; stream++ {
		s := DeriveSeed(12345, stream)
		if s < 0 {
			t.Fatalf("seed %d negative", s)
		}
		if seen[s] {
			t.Fatalf("stream %d collides", stream)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("DeriveSeed ignores the base seed")
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit worker count not honoured")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("default worker count must be at least 1")
	}
}

// Package tomography reconstructs single-qubit states from measurement
// statistics: the Bloch vector of one qubit of a register is estimated
// by running the same preparation under Z-, X-, and Y-basis readout.
//
// In this reproduction it serves as a state-level diagnostic: the
// T1-relaxation mechanism behind the paper's measurement bias appears as
// a Bloch vector drifting toward +Z (the |0⟩ pole) and shrinking in the
// equatorial plane, and readout asymmetry appears as a biased Z estimate
// even for perfectly prepared states. Like every run in this module, the
// estimates are taken through the full noisy pipeline — they measure
// what an experimenter would see, not the underlying density matrix.
package tomography

import (
	"fmt"
	"math"

	"biasmit/internal/circuit"
	"biasmit/internal/core"
	"biasmit/internal/dist"
)

// BlochVector is the expectation triple (⟨X⟩, ⟨Y⟩, ⟨Z⟩) of one qubit.
type BlochVector struct {
	X, Y, Z float64
}

// Norm returns |r|, which is 1 for pure states and shrinks under noise.
func (b BlochVector) Norm() float64 {
	return math.Sqrt(b.X*b.X + b.Y*b.Y + b.Z*b.Z)
}

// Purity returns tr(ρ²) = (1 + |r|²)/2 of the implied single-qubit state.
func (b BlochVector) Purity() float64 {
	n := b.Norm()
	return (1 + n*n) / 2
}

// Basis selects a measurement basis for one qubit.
type Basis int

// Measurement bases. The computational basis is Z; X and Y are reached
// by appending H, or S†·H, before readout.
const (
	BasisZ Basis = iota
	BasisX
	BasisY
)

// String names the basis.
func (b Basis) String() string {
	switch b {
	case BasisZ:
		return "Z"
	case BasisX:
		return "X"
	case BasisY:
		return "Y"
	}
	return "?"
}

// withBasisRotation returns a copy of c with the pre-measurement rotation
// that maps the requested basis onto Z for qubit q.
func withBasisRotation(c *circuit.Circuit, q int, basis Basis) *circuit.Circuit {
	out := c.Clone()
	switch basis {
	case BasisZ:
	case BasisX:
		out.H(q)
	case BasisY:
		out.Sdg(q)
		out.H(q)
	}
	return out
}

// expectation converts a logical output histogram into ⟨σ⟩ for qubit q:
// P(bit 0) − P(bit 1).
func expectation(counts *dist.Counts, q int) float64 {
	d := counts.Dist()
	var e float64
	for b, p := range d.P {
		if b.Bit(q) {
			e -= p
		} else {
			e += p
		}
	}
	return e
}

// T1Fit is the result of estimating a qubit's relaxation time from
// measured decay data.
type T1Fit struct {
	T1 float64 // fitted relaxation time, in the device's time units
	// Survival holds the measured P(read 1) at each requested delay.
	Delays   []float64
	Survival []float64
}

// FitT1 estimates the relaxation time of logical qubit q on the machine
// the way a calibration suite does: prepare |1⟩, idle for each requested
// delay (realized as schedule gaps under schedule-aware decay), measure,
// and fit ln P(1) against delay by least squares. Readout error biases
// the individual points but cancels in the slope, so the estimate tracks
// the model's true T1. The machine's options must enable
// ScheduleAwareDecay for the delays to take effect.
func FitT1(m *core.Machine, physicalQubit int, delays []float64, shotsPerDelay int, seed int64) (T1Fit, error) {
	if len(delays) < 2 {
		return T1Fit{}, fmt.Errorf("tomography: need at least 2 delays, got %d", len(delays))
	}
	if shotsPerDelay <= 0 {
		return T1Fit{}, fmt.Errorf("tomography: shotsPerDelay must be positive")
	}
	dev := m.Device
	if physicalQubit < 0 || physicalQubit >= dev.NumQubits {
		return T1Fit{}, fmt.Errorf("tomography: qubit %d out of range [0,%d)", physicalQubit, dev.NumQubits)
	}
	// A helper qubit runs busy-work to open an idle window on the probe.
	helper := (physicalQubit + 1) % dev.NumQubits

	fit := T1Fit{}
	for i, delay := range delays {
		if delay <= 0 {
			return T1Fit{}, fmt.Errorf("tomography: delay %v must be positive", delay)
		}
		c := circuit.New(2, fmt.Sprintf("t1-delay-%g", delay))
		c.X(0)
		// Stack single-qubit gates on the helper until the probe has
		// idled for at least the requested delay.
		reps := int(delay/dev.Gate1Duration + 0.5)
		for r := 0; r < reps; r++ {
			c.X(1)
			c.X(1)
		}
		// Entangle nothing; a final helper-probe barrier synchronizes the
		// schedule so the probe's idle window closes at measurement.
		job, err := core.NewJobWithLayout(c, m, []int{physicalQubit, helper})
		if err != nil {
			return T1Fit{}, err
		}
		counts, err := job.Baseline(shotsPerDelay, seed+int64(i))
		if err != nil {
			return T1Fit{}, err
		}
		ones := 0
		for _, out := range counts.Outcomes() {
			if out.Bit(0) {
				ones += counts.Get(out)
			}
		}
		p := float64(ones) / float64(counts.Total())
		if p <= 0 {
			return T1Fit{}, fmt.Errorf("tomography: qubit fully decayed at delay %v; use shorter delays", delay)
		}
		fit.Delays = append(fit.Delays, 2*float64(reps)*dev.Gate1Duration)
		fit.Survival = append(fit.Survival, p)
	}
	// Least-squares slope of ln P against delay: slope = −1/T1.
	n := float64(len(fit.Delays))
	var sx, sy, sxx, sxy float64
	for i := range fit.Delays {
		x, y := fit.Delays[i], math.Log(fit.Survival[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return T1Fit{}, fmt.Errorf("tomography: degenerate delay set")
	}
	slope := (n*sxy - sx*sy) / den
	if slope >= 0 {
		return T1Fit{}, fmt.Errorf("tomography: no decay observed (slope %v); enable ScheduleAwareDecay", slope)
	}
	fit.T1 = -1 / slope
	return fit, nil
}

// Config controls a tomography run.
type Config struct {
	// ShotsPerBasis is the trial budget of each of the three bases.
	ShotsPerBasis int
	// Seed drives all three runs deterministically.
	Seed int64
	// Layout optionally pins the circuit to physical qubits; empty uses
	// variability-aware placement.
	Layout []int
}

// Bloch estimates the Bloch vector of logical qubit q at the end of
// circuit c on machine m, measuring ShotsPerBasis trials in each basis.
func Bloch(c *circuit.Circuit, q int, m *core.Machine, cfg Config) (BlochVector, error) {
	if q < 0 || q >= c.NumQubits {
		return BlochVector{}, fmt.Errorf("tomography: qubit %d out of range [0,%d)", q, c.NumQubits)
	}
	if cfg.ShotsPerBasis <= 0 {
		return BlochVector{}, fmt.Errorf("tomography: ShotsPerBasis must be positive")
	}
	var out BlochVector
	for i, basis := range []Basis{BasisZ, BasisX, BasisY} {
		rotated := withBasisRotation(c, q, basis)
		var job *core.Job
		var err error
		if len(cfg.Layout) > 0 {
			job, err = core.NewJobWithLayout(rotated, m, cfg.Layout)
		} else {
			job, err = core.NewJob(rotated, m)
		}
		if err != nil {
			return BlochVector{}, fmt.Errorf("tomography: %s basis: %w", basis, err)
		}
		counts, err := job.Baseline(cfg.ShotsPerBasis, cfg.Seed+int64(i))
		if err != nil {
			return BlochVector{}, fmt.Errorf("tomography: %s basis: %w", basis, err)
		}
		e := expectation(counts, q)
		switch basis {
		case BasisZ:
			out.Z = e
		case BasisX:
			out.X = e
		case BasisY:
			out.Y = e
		}
	}
	return out, nil
}

package tomography

import (
	"math"
	"testing"

	"biasmit/internal/backend"
	"biasmit/internal/circuit"
	"biasmit/internal/core"
	"biasmit/internal/device"
)

func idealMachine() *core.Machine {
	m := core.NewMachine(device.IBMQX2())
	m.Opt = backend.Options{NoGateNoise: true, NoDecay: true, NoReadoutError: true}
	return m
}

func cfgWith(shots int, seed int64) Config {
	return Config{ShotsPerBasis: shots, Seed: seed, Layout: []int{0, 1, 2, 3, 4}}
}

func within(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestBlochCardinalStates(t *testing.T) {
	m := idealMachine()
	cases := []struct {
		name  string
		build func(c *circuit.Circuit)
		want  BlochVector
	}{
		{"zero", func(c *circuit.Circuit) {}, BlochVector{Z: 1}},
		{"one", func(c *circuit.Circuit) { c.X(0) }, BlochVector{Z: -1}},
		{"plus", func(c *circuit.Circuit) { c.H(0) }, BlochVector{X: 1}},
		{"minus", func(c *circuit.Circuit) { c.X(0); c.H(0) }, BlochVector{X: -1}},
		{"plus-i", func(c *circuit.Circuit) { c.H(0); c.S(0) }, BlochVector{Y: 1}},
	}
	for _, tc := range cases {
		c := circuit.New(5, tc.name)
		tc.build(c)
		got, err := Bloch(c, 0, m, cfgWith(20000, 1))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !within(got.X, tc.want.X, 0.03) || !within(got.Y, tc.want.Y, 0.03) || !within(got.Z, tc.want.Z, 0.03) {
			t.Errorf("%s: got %+v, want %+v", tc.name, got, tc.want)
		}
		if got.Purity() < 0.95 {
			t.Errorf("%s: purity %v on an ideal machine", tc.name, got.Purity())
		}
	}
}

func TestBlochRotatedState(t *testing.T) {
	// RX(θ)|0⟩ has Z = cos θ, Y = −sin θ, X = 0.
	m := idealMachine()
	theta := 0.8
	c := circuit.New(5, "rx").RX(theta, 0)
	got, err := Bloch(c, 0, m, cfgWith(30000, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !within(got.Z, math.Cos(theta), 0.03) || !within(got.Y, -math.Sin(theta), 0.03) || !within(got.X, 0, 0.03) {
		t.Errorf("RX(%v): %+v", theta, got)
	}
}

func TestBlochSeesReadoutBias(t *testing.T) {
	// With readout error on, a perfectly prepared |1⟩ reads with Z above
	// its true −1 (1→0 misreads dominate): the state-level signature of
	// the paper's bias.
	m := core.NewMachine(device.IBMQX2())
	m.Opt = backend.Options{NoGateNoise: true, NoDecay: true}
	c := circuit.New(5, "one").X(0)
	got, err := Bloch(c, 0, m, cfgWith(30000, 3))
	if err != nil {
		t.Fatal(err)
	}
	model := m.Device.ReadoutModel()
	p10 := model.PerQubit[0].P10
	wantZ := -(1 - 2*p10) // Z = P(read 0) − P(read 1) = p10 − (1 − p10)
	if !within(got.Z, wantZ, 0.03) {
		t.Errorf("Z = %v, want ≈ %v (readout-biased)", got.Z, wantZ)
	}
	if got.Z <= -1+p10 {
		t.Errorf("Z = %v shows no bias toward 0", got.Z)
	}
}

func TestBlochSeesDecay(t *testing.T) {
	// A |1⟩ left to decay (schedule-aware idle on a slow circuit) drifts
	// toward +Z and loses purity relative to the ideal preparation.
	dev := device.IBMQX2()
	m := core.NewMachine(dev)
	m.Opt = backend.Options{NoGateNoise: true, NoReadoutError: true, ScheduleAwareDecay: true}
	c := circuit.New(5, "decay").X(0)
	// Busy other qubits so qubit 0 idles.
	for i := 0; i < 30; i++ {
		c.CX(1, 2)
	}
	got, err := Bloch(c, 0, m, cfgWith(30000, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got.Z <= -0.95 {
		t.Errorf("Z = %v: no decay visible", got.Z)
	}
	if got.Z >= 0.5 {
		t.Errorf("Z = %v: decayed too far for this idle window", got.Z)
	}
}

func TestBlochValidation(t *testing.T) {
	m := idealMachine()
	c := circuit.New(3, "v")
	if _, err := Bloch(c, 5, m, Config{ShotsPerBasis: 10}); err == nil {
		t.Error("out-of-range qubit accepted")
	}
	if _, err := Bloch(c, 0, m, Config{ShotsPerBasis: 0}); err == nil {
		t.Error("zero shots accepted")
	}
}

func TestBasisString(t *testing.T) {
	if BasisZ.String() != "Z" || BasisX.String() != "X" || BasisY.String() != "Y" {
		t.Error("basis names broken")
	}
}

func TestFitT1RecoversModelValue(t *testing.T) {
	dev := device.IBMQX2()
	m := core.NewMachine(dev)
	m.Opt = backend.Options{NoGateNoise: true, ScheduleAwareDecay: true}
	const probe = 0
	trueT1 := dev.Qubits[probe].T1
	delays := []float64{trueT1 / 6, trueT1 / 3, trueT1 / 2}
	fit, err := FitT1(m, probe, delays, 12000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(fit.T1-trueT1) / trueT1; rel > 0.15 {
		t.Errorf("fitted T1 = %v, model %v (%.0f%% off)", fit.T1, trueT1, 100*rel)
	}
	// Survival must be monotone decreasing across delays.
	for i := 1; i < len(fit.Survival); i++ {
		if fit.Survival[i] >= fit.Survival[i-1] {
			t.Errorf("survival not decreasing: %v", fit.Survival)
		}
	}
}

func TestFitT1Validation(t *testing.T) {
	m := core.NewMachine(device.IBMQX2())
	m.Opt = backend.Options{ScheduleAwareDecay: true}
	if _, err := FitT1(m, 0, []float64{10}, 100, 1); err == nil {
		t.Error("single delay accepted")
	}
	if _, err := FitT1(m, 99, []float64{10, 20}, 100, 1); err == nil {
		t.Error("bad qubit accepted")
	}
	if _, err := FitT1(m, 0, []float64{10, 20}, 0, 1); err == nil {
		t.Error("zero shots accepted")
	}
	if _, err := FitT1(m, 0, []float64{-5, 20}, 100, 1); err == nil {
		t.Error("negative delay accepted")
	}
}

// Package chaos injects faults into the backend execution path so the
// resilience layer (internal/resilient) and everything above it can be
// tested against the failure modes real NISQ services exhibit: transient
// queue errors, latency spikes, runs that blow their deadline, and jobs
// that return only part of the requested trials.
//
// The injector wraps a backend.Runner. Its fault schedule is
// deterministic and seed-derived: every intercepted call draws one
// splitmix64 stream keyed by (Plan.Seed, attempt index) — the same
// seeding discipline internal/orchestrate uses for job seeds — so a
// sequential run replays the identical fault sequence at the same seed.
// Under concurrency the attempt indices interleave nondeterministically,
// which is fine by construction: the resilience layer's salvage
// mechanism guarantees results are independent of where faults land, and
// the chaos CI job exists to enforce exactly that property.
//
// Faults never corrupt results: an injected failure either returns a
// typed *backend.TransientError (optionally after completing m < shots
// trials, simulating a partial job), delays the run (latency spike), or
// parks the run until the context deadline (stall). A successful call is
// byte-identical to an uninjected one.
package chaos

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"biasmit/internal/backend"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/orchestrate"
)

// Plan configures the fault schedule. The zero value injects nothing;
// rates are probabilities in [0,1] and are evaluated in the order
// transient, partial, latency, stall from a single uniform draw, so
// their sum must stay ≤ 1.
type Plan struct {
	// Seed drives the fault schedule. Equal seeds replay equal schedules
	// for sequential callers.
	Seed int64
	// TransientRate is the probability a call fails immediately with a
	// *backend.TransientError, having done no work.
	TransientRate float64
	// PartialRate is the probability a call completes only m < shots
	// trials (m drawn uniformly) and then fails transiently — the work
	// is really performed and then lost, like a job evicted mid-run.
	PartialRate float64
	// LatencyRate is the probability a call is delayed by a uniform
	// fraction of Latency before executing normally.
	LatencyRate float64
	// Latency is the maximum injected delay (default 50ms when a latency
	// fault fires with a zero Latency).
	Latency time.Duration
	// StallRate is the probability a call blocks until its context
	// deadline and returns the context error — the fault that exercises
	// deadline handling end to end. Calls without a deadline degrade to a
	// plain transient failure instead of hanging forever.
	StallRate float64
	// GraySlowRate is the probability of a gray failure: the call
	// succeeds — nothing for a breaker to count — but only after a
	// delay of 50–100% of GraySlow. This is the slow-drip backend that
	// kills services the error-rate machinery cannot see; only a
	// latency-sensing limiter reacts to it.
	GraySlowRate float64
	// GraySlow is the maximum gray-failure delay (default 100ms when a
	// gray-slow fault fires with a zero GraySlow).
	GraySlow time.Duration
	// RampStep, when positive, adds an unconditional creeping delay of
	// min(callIndex×RampStep, RampMax) to every intercepted call: a
	// backend whose latency degrades gradually, the ramp an adaptive
	// limiter must back off from before anything ever "fails".
	RampStep time.Duration
	// RampMax caps the creeping ramp (default 1s when RampStep is set
	// with a zero RampMax).
	RampMax time.Duration
	// FailFirst deterministically fails the first N intercepted calls
	// with a transient error before the probabilistic schedule applies.
	// This is the knob breaker tests use: N failures open the breaker,
	// call N+1 succeeds and closes it again.
	FailFirst int
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return p.TransientRate > 0 || p.PartialRate > 0 || p.LatencyRate > 0 ||
		p.StallRate > 0 || p.GraySlowRate > 0 || p.RampStep > 0 || p.FailFirst > 0
}

// Validate rejects malformed rates.
func (p Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"transient", p.TransientRate},
		{"partial", p.PartialRate},
		{"latency", p.LatencyRate},
		{"stall", p.StallRate},
		{"gray-slow", p.GraySlowRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("chaos: %s rate %v out of [0,1]", r.name, r.v)
		}
	}
	if sum := p.TransientRate + p.PartialRate + p.LatencyRate + p.StallRate + p.GraySlowRate; sum > 1 {
		return fmt.Errorf("chaos: fault rates sum to %v > 1", sum)
	}
	if p.FailFirst < 0 {
		return fmt.Errorf("chaos: fail-first %d is negative", p.FailFirst)
	}
	if p.RampStep < 0 || p.RampMax < 0 {
		return fmt.Errorf("chaos: negative ramp (step %v, max %v)", p.RampStep, p.RampMax)
	}
	return nil
}

// Stats counts injected faults since the injector was created.
type Stats struct {
	Calls      uint64
	Transients uint64
	Partials   uint64
	Latencies  uint64
	Stalls     uint64
	GraySlows  uint64
	Ramped     uint64
}

// Injector intercepts backend runs according to a Plan. Construct with
// New; safe for concurrent use.
type Injector struct {
	plan Plan
	run  backend.Runner

	attempt    atomic.Int64 // next fault-schedule stream index
	calls      atomic.Uint64
	transients atomic.Uint64
	partials   atomic.Uint64
	latencies  atomic.Uint64
	stalls     atomic.Uint64
	graySlows  atomic.Uint64
	ramped     atomic.Uint64
}

// New wraps run with fault injection under plan.
func New(plan Plan, run backend.Runner) *Injector {
	return &Injector{plan: plan, run: run}
}

// Wrap returns a backend.Runner injecting faults under p. A disabled
// plan returns run unchanged, so wiring chaos unconditionally costs
// nothing in production paths.
func (p Plan) Wrap(run backend.Runner) backend.Runner {
	if !p.Enabled() {
		return run
	}
	return New(p, run).Run
}

// Stats returns the fault counters so far.
func (in *Injector) Stats() Stats {
	return Stats{
		Calls:      in.calls.Load(),
		Transients: in.transients.Load(),
		Partials:   in.partials.Load(),
		Latencies:  in.latencies.Load(),
		Stalls:     in.stalls.Load(),
		GraySlows:  in.graySlows.Load(),
		Ramped:     in.ramped.Load(),
	}
}

// transientf builds the typed transient error every injected failure
// carries.
func transientf(format string, args ...any) error {
	return &backend.TransientError{Op: "chaos", Err: fmt.Errorf(format, args...)}
}

// Run is the injector's backend.Runner. Each call consumes one attempt
// index from the schedule; the fault (if any) for that index is a pure
// function of (Plan.Seed, index).
func (in *Injector) Run(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt backend.Options) (*dist.Counts, error) {
	attempt := in.attempt.Add(1) - 1
	in.calls.Add(1)
	if in.plan.RampStep > 0 {
		if err := in.ramp(ctx, attempt); err != nil {
			return nil, err
		}
	}
	if attempt < int64(in.plan.FailFirst) {
		in.transients.Add(1)
		return nil, transientf("injected fail-first failure %d/%d", attempt+1, in.plan.FailFirst)
	}
	rng := rand.New(rand.NewSource(orchestrate.DeriveSeed(in.plan.Seed, int(attempt))))
	u := rng.Float64()
	switch {
	case u < in.plan.TransientRate:
		in.transients.Add(1)
		return nil, transientf("injected transient failure (attempt %d)", attempt)
	case u < in.plan.TransientRate+in.plan.PartialRate:
		in.partials.Add(1)
		return nil, in.partial(ctx, c, dev, opt, rng, attempt)
	case u < in.plan.TransientRate+in.plan.PartialRate+in.plan.LatencyRate:
		in.latencies.Add(1)
		if err := in.spike(ctx, rng); err != nil {
			return nil, err
		}
	case u < in.plan.TransientRate+in.plan.PartialRate+in.plan.LatencyRate+in.plan.StallRate:
		in.stalls.Add(1)
		if _, ok := ctx.Deadline(); !ok {
			// No deadline to blow: degrade to a transient failure rather
			// than hanging an undeadlined caller forever.
			return nil, transientf("injected stall (no deadline to exhaust, attempt %d)", attempt)
		}
		<-ctx.Done()
		return nil, fmt.Errorf("chaos: injected stall exhausted the deadline (attempt %d): %w", attempt, ctx.Err())
	case u < in.plan.TransientRate+in.plan.PartialRate+in.plan.LatencyRate+in.plan.StallRate+in.plan.GraySlowRate:
		in.graySlows.Add(1)
		if err := in.graySlow(ctx, rng); err != nil {
			return nil, err
		}
	}
	return in.run(ctx, c, dev, opt)
}

// graySlow sleeps 50–100% of Plan.GraySlow and then lets the call
// succeed: the gray failure that never trips error-rate machinery. The
// 50% floor keeps the fault unmistakably slow — a uniform draw from zero
// would sometimes inject delays indistinguishable from health.
func (in *Injector) graySlow(ctx context.Context, rng *rand.Rand) error {
	max := in.plan.GraySlow
	if max <= 0 {
		max = 100 * time.Millisecond
	}
	d := max/2 + time.Duration(rng.Int63n(int64(max/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ramp delays the call by min(attempt×RampStep, RampMax): latency that
// creeps upward with every call, the degradation pattern of a backend
// slowly running out of some resource.
func (in *Injector) ramp(ctx context.Context, attempt int64) error {
	max := in.plan.RampMax
	if max <= 0 {
		max = time.Second
	}
	d := time.Duration(attempt) * in.plan.RampStep
	if d > max || d/in.plan.RampStep != time.Duration(attempt) { // cap, overflow-safe
		d = max
	}
	if d <= 0 {
		return nil
	}
	in.ramped.Add(1)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// partial completes m < shots trials for real — consuming the same
// per-trial RNG stream prefix the full run would — and then reports a
// transient failure, so the caller observes a job evicted mid-run. The
// completed trials are genuinely lost (the resilience layer salvages at
// slice granularity, never inside a failed call), which is exactly the
// waste the salvage mechanism bounds.
func (in *Injector) partial(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt backend.Options, rng *rand.Rand, attempt int64) error {
	m := 0
	if opt.Shots > 1 {
		m = rng.Intn(opt.Shots) // 0 ≤ m < shots
	}
	if m > 0 {
		partialOpt := opt
		partialOpt.Shots = m
		if _, err := in.run(ctx, c, dev, partialOpt); err != nil {
			// The underlying run failed on its own; report that, but keep
			// it transient so the retry semantics stay uniform.
			if ctx.Err() != nil {
				return err
			}
			return &backend.TransientError{Op: "chaos", Err: err}
		}
	}
	return transientf("injected partial result: %d of %d trials completed (attempt %d)", m, opt.Shots, attempt)
}

// spike sleeps a uniform fraction of Plan.Latency, honouring ctx.
func (in *Injector) spike(ctx context.Context, rng *rand.Rand) error {
	max := in.plan.Latency
	if max <= 0 {
		max = 50 * time.Millisecond
	}
	d := time.Duration(rng.Int63n(int64(max) + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Flags registers the -chaos-* flag family on fs (flag.CommandLine when
// nil) and returns the Plan they populate. All CLIs share this helper so
// the fault-injection surface is uniform across binaries.
func Flags(fs *flag.FlagSet) *Plan {
	if fs == nil {
		fs = flag.CommandLine
	}
	p := &Plan{}
	fs.Int64Var(&p.Seed, "chaos-seed", 1, "seed for the deterministic fault schedule")
	fs.Float64Var(&p.TransientRate, "chaos-transient", 0, "probability a backend call fails with a transient error")
	fs.Float64Var(&p.PartialRate, "chaos-partial", 0, "probability a backend call completes only part of its trials, then fails")
	fs.Float64Var(&p.LatencyRate, "chaos-latency-rate", 0, "probability a backend call is delayed before executing")
	fs.DurationVar(&p.Latency, "chaos-latency", 50*time.Millisecond, "maximum injected delay for latency faults")
	fs.Float64Var(&p.StallRate, "chaos-stall", 0, "probability a backend call blocks until its deadline")
	fs.Float64Var(&p.GraySlowRate, "chaos-gray-slow-rate", 0, "probability a backend call succeeds slowly (gray failure)")
	fs.DurationVar(&p.GraySlow, "chaos-gray-slow", 100*time.Millisecond, "maximum gray-failure delay (calls sleep 50-100% of this)")
	fs.DurationVar(&p.RampStep, "chaos-ramp-step", 0, "per-call creeping latency increment (0 disables the ramp)")
	fs.DurationVar(&p.RampMax, "chaos-ramp-max", time.Second, "cap on the creeping latency ramp")
	fs.IntVar(&p.FailFirst, "chaos-fail-first", 0, "deterministically fail this many calls before the probabilistic schedule applies")
	return p
}

// Environment variables read by FromEnv. The chaos CI job sets these so
// the entire test suite runs with fault injection enabled without any
// test knowing about it.
const (
	EnvTransient = "BIASMIT_CHAOS_TRANSIENT"
	EnvPartial   = "BIASMIT_CHAOS_PARTIAL"
	EnvSeed      = "BIASMIT_CHAOS_SEED"
)

// FromEnv builds a Plan from the BIASMIT_CHAOS_* environment variables.
// It returns a zero (disabled) plan when none are set and an error when
// one is set but unparsable.
func FromEnv() (Plan, error) {
	var p Plan
	parse := func(name string, dst *float64) error {
		v := os.Getenv(name)
		if v == "" {
			return nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("chaos: parsing %s=%q: %w", name, v, err)
		}
		*dst = f
		return nil
	}
	if err := errors.Join(
		parse(EnvTransient, &p.TransientRate),
		parse(EnvPartial, &p.PartialRate),
	); err != nil {
		return Plan{}, err
	}
	p.Seed = 1
	if v := os.Getenv(EnvSeed); v != "" {
		s, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return Plan{}, fmt.Errorf("chaos: parsing %s=%q: %w", EnvSeed, v, err)
		}
		p.Seed = s
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

package chaos

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/dist"
)

// okRunner returns a one-outcome histogram and records the shot budgets
// it was called with.
type okRunner struct {
	mu    sync.Mutex
	shots []int
}

func (r *okRunner) run(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt backend.Options) (*dist.Counts, error) {
	r.mu.Lock()
	r.shots = append(r.shots, opt.Shots)
	r.mu.Unlock()
	counts := dist.NewCounts(dev.NumQubits)
	counts.Add(bitstring.Zeros(dev.NumQubits), opt.Shots)
	return counts, nil
}

func testCircuit() *circuit.Circuit {
	c := circuit.New(2, "probe")
	c.H(0)
	return c
}

func TestDisabledPlanPassesThrough(t *testing.T) {
	under := &okRunner{}
	run := Plan{}.Wrap(under.run)
	counts, err := run(context.Background(), testCircuit(), device.IBMQX2(), backend.Options{Shots: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if counts.Total() != 100 {
		t.Fatalf("total = %d, want 100", counts.Total())
	}
}

func TestFailFirst(t *testing.T) {
	under := &okRunner{}
	in := New(Plan{FailFirst: 3}, under.run)
	ctx := context.Background()
	opt := backend.Options{Shots: 10, Seed: 1}
	for i := 0; i < 3; i++ {
		_, err := in.Run(ctx, testCircuit(), device.IBMQX2(), opt)
		var te *backend.TransientError
		if !errors.As(err, &te) {
			t.Fatalf("call %d: error %v, want TransientError", i+1, err)
		}
	}
	if _, err := in.Run(ctx, testCircuit(), device.IBMQX2(), opt); err != nil {
		t.Fatalf("call 4 after fail-first budget: %v", err)
	}
	if s := in.Stats(); s.Transients != 3 || s.Calls != 4 {
		t.Fatalf("stats = %+v, want 3 transients over 4 calls", s)
	}
}

func TestTransientRateIsSeedDeterministic(t *testing.T) {
	outcome := func() []bool {
		under := &okRunner{}
		in := New(Plan{Seed: 42, TransientRate: 0.5}, under.run)
		var out []bool
		for i := 0; i < 64; i++ {
			_, err := in.Run(context.Background(), testCircuit(), device.IBMQX2(), backend.Options{Shots: 10, Seed: 1})
			out = append(out, err != nil)
		}
		return out
	}
	a, b := outcome(), outcome()
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedule diverged at call %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("transient rate 0.5 produced %d/%d failures", fails, len(a))
	}
}

func TestPartialReallyRunsFewerTrials(t *testing.T) {
	under := &okRunner{}
	in := New(Plan{Seed: 3, PartialRate: 1}, under.run)
	_, err := in.Run(context.Background(), testCircuit(), device.IBMQX2(), backend.Options{Shots: 1000, Seed: 1})
	var te *backend.TransientError
	if !errors.As(err, &te) {
		t.Fatalf("error %v, want TransientError", err)
	}
	under.mu.Lock()
	defer under.mu.Unlock()
	if len(under.shots) != 1 || under.shots[0] >= 1000 {
		t.Fatalf("underlying runs %v, want one run with fewer than 1000 shots", under.shots)
	}
	if s := in.Stats(); s.Partials != 1 {
		t.Fatalf("stats = %+v, want one partial", s)
	}
}

func TestStallHonoursDeadline(t *testing.T) {
	under := &okRunner{}
	in := New(Plan{Seed: 5, StallRate: 1}, under.run)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := in.Run(ctx, testCircuit(), device.IBMQX2(), backend.Options{Shots: 10, Seed: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stall took %v, should end at the deadline", elapsed)
	}
}

func TestStallWithoutDeadlineDegradesToTransient(t *testing.T) {
	under := &okRunner{}
	in := New(Plan{Seed: 5, StallRate: 1}, under.run)
	_, err := in.Run(context.Background(), testCircuit(), device.IBMQX2(), backend.Options{Shots: 10, Seed: 1})
	var te *backend.TransientError
	if !errors.As(err, &te) {
		t.Fatalf("error %v, want TransientError (no deadline to stall against)", err)
	}
}

func TestValidate(t *testing.T) {
	for _, tc := range []struct {
		plan Plan
		ok   bool
	}{
		{Plan{}, true},
		{Plan{TransientRate: 0.3, PartialRate: 0.3, LatencyRate: 0.3}, true},
		{Plan{TransientRate: 1.2}, false},
		{Plan{PartialRate: -0.1}, false},
		{Plan{TransientRate: 0.6, StallRate: 0.6}, false},
		{Plan{FailFirst: -1}, false},
	} {
		err := tc.plan.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", tc.plan, err, tc.ok)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvTransient, "0.25")
	t.Setenv(EnvPartial, "0.1")
	t.Setenv(EnvSeed, "99")
	plan, err := FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if plan.TransientRate != 0.25 || plan.PartialRate != 0.1 || plan.Seed != 99 {
		t.Fatalf("plan = %+v", plan)
	}
	if !plan.Enabled() {
		t.Fatal("plan should be enabled")
	}

	t.Setenv(EnvTransient, "not-a-rate")
	if _, err := FromEnv(); err == nil {
		t.Fatal("malformed rate should error")
	}
}

func TestGraySlowSucceedsSlowly(t *testing.T) {
	under := &okRunner{}
	in := New(Plan{Seed: 3, GraySlowRate: 1, GraySlow: 20 * time.Millisecond}, under.run)
	start := time.Now()
	counts, err := in.Run(context.Background(), testCircuit(), device.IBMQX2(), backend.Options{Shots: 50, Seed: 1})
	if err != nil {
		t.Fatalf("gray-slow call must succeed, got %v", err)
	}
	if counts.Total() != 50 {
		t.Fatalf("total = %d, want 50 (gray failures never corrupt results)", counts.Total())
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("gray-slow call finished in %v, want >= 50%% of the configured delay", elapsed)
	}
	if s := in.Stats(); s.GraySlows != 1 {
		t.Fatalf("stats = %+v, want one gray-slow", s)
	}
}

func TestGraySlowHonoursContext(t *testing.T) {
	under := &okRunner{}
	in := New(Plan{Seed: 3, GraySlowRate: 1, GraySlow: time.Minute}, under.run)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := in.Run(ctx, testCircuit(), device.IBMQX2(), backend.Options{Shots: 10, Seed: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("gray-slow under a tight deadline: %v, want deadline exceeded", err)
	}
}

func TestLatencyRampCreeps(t *testing.T) {
	under := &okRunner{}
	in := New(Plan{RampStep: 5 * time.Millisecond, RampMax: 12 * time.Millisecond}, under.run)
	ctx := context.Background()
	opt := backend.Options{Shots: 10, Seed: 1}

	// Call 0: no delay yet.
	start := time.Now()
	if _, err := in.Run(ctx, testCircuit(), device.IBMQX2(), opt); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Millisecond {
		t.Logf("call 0 took %v (expected ~0); slow runner, not failing", elapsed)
	}

	// Call 1: one step.
	start = time.Now()
	if _, err := in.Run(ctx, testCircuit(), device.IBMQX2(), opt); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("call 1 took %v, want >= one 5ms ramp step", elapsed)
	}

	// Call 5 would be 25ms unclamped; the cap holds it at 12ms.
	for i := 2; i < 5; i++ {
		if _, err := in.Run(ctx, testCircuit(), device.IBMQX2(), opt); err != nil {
			t.Fatal(err)
		}
	}
	start = time.Now()
	if _, err := in.Run(ctx, testCircuit(), device.IBMQX2(), opt); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 12*time.Millisecond {
		t.Fatalf("capped call took %v, want >= RampMax 12ms", elapsed)
	}
	if s := in.Stats(); s.Ramped != 5 {
		t.Fatalf("stats = %+v, want 5 ramped calls (call 0 free)", s)
	}
}

func TestGrayModesValidate(t *testing.T) {
	if err := (Plan{GraySlowRate: 1.5}).Validate(); err == nil {
		t.Fatal("gray-slow rate > 1 accepted")
	}
	if err := (Plan{TransientRate: 0.6, GraySlowRate: 0.6}).Validate(); err == nil {
		t.Fatal("rate sum > 1 accepted")
	}
	if err := (Plan{RampStep: -time.Second}).Validate(); err == nil {
		t.Fatal("negative ramp accepted")
	}
	if !(Plan{GraySlowRate: 0.1}).Enabled() || !(Plan{RampStep: time.Millisecond}).Enabled() {
		t.Fatal("gray modes must enable the injector")
	}
}

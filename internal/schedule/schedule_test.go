package schedule_test

import (
	"context"
	"math"
	"testing"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/schedule"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// testDevice returns a fully-connected 3-qubit device with unit gate
// durations for easy arithmetic.
func testDevice() *device.Device {
	d := &device.Device{
		Name:          "sched-test",
		NumQubits:     3,
		Gate1Duration: 1,
		Gate2Duration: 10,
	}
	for i := 0; i < 3; i++ {
		d.Qubits = append(d.Qubits, device.Qubit{T1: 100})
	}
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			d.Links = append(d.Links, device.Link{A: a, B: b})
		}
	}
	return d
}

func TestComputeSerialChain(t *testing.T) {
	dev := testDevice()
	c := circuit.New(3, "chain").H(0).CX(0, 1).H(1)
	tl, err := schedule.Compute(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	// H(0): [0,1); CX(0,1): [1,11); H(1): [11,12).
	want := []schedule.OpTiming{{0, 1}, {1, 11}, {11, 12}}
	for i, w := range want {
		if !approx(tl.Ops[i].Start, w.Start) || !approx(tl.Ops[i].End, w.End) {
			t.Errorf("op %d timing = %+v, want %+v", i, tl.Ops[i], w)
		}
	}
	if !approx(tl.Duration, 12) {
		t.Errorf("duration = %v", tl.Duration)
	}
}

func TestComputeParallelOps(t *testing.T) {
	dev := testDevice()
	c := circuit.New(3, "par").H(0).H(1).H(2)
	tl, err := schedule.Compute(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Ops {
		if !approx(tl.Ops[i].Start, 0) {
			t.Errorf("op %d did not start at 0: %+v", i, tl.Ops[i])
		}
	}
	if !approx(tl.Duration, 1) || len(tl.Idle) != 0 {
		t.Errorf("duration %v, idle %v", tl.Duration, tl.Idle)
	}
	if !approx(tl.Utilization(), 1) {
		t.Errorf("utilization = %v", tl.Utilization())
	}
}

func TestIdleWindows(t *testing.T) {
	dev := testDevice()
	// q2 acts at time 0 (H), then waits while q0-q1 run a CX, then CX(1,2).
	c := circuit.New(3, "idle").H(2).CX(0, 1).CX(1, 2)
	tl, err := schedule.Compute(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	// CX(1,2) starts at 10 (after CX(0,1)); q2 idle from 1 to 10.
	found := false
	for _, w := range tl.Idle {
		if w.Qubit == 2 && approx(w.From, 1) && approx(w.To, 10) {
			found = true
		}
	}
	if !found {
		t.Errorf("missing q2 idle window [1,10): %v", tl.Idle)
	}
	if got := tl.QubitIdle(2); !approx(got, 9) {
		t.Errorf("QubitIdle(2) = %v", got)
	}
	// q0 finishes at 10, circuit ends at 20: final idle window of 10.
	if got := tl.QubitIdle(0); !approx(got, 10) {
		t.Errorf("QubitIdle(0) = %v", got)
	}
	if got := tl.TotalIdle(); !approx(got, 19) {
		t.Errorf("TotalIdle = %v", got)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	dev := testDevice()
	c := circuit.New(3, "bar").H(0).CX(1, 2).AddBarrier().H(0)
	tl, err := schedule.Compute(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	// Barrier at t=10 (end of CX); q0 idle [1,10); final H starts at 10.
	if !approx(tl.Ops[3].Start, 10) {
		t.Errorf("post-barrier op starts at %v", tl.Ops[3].Start)
	}
	if got := tl.QubitIdle(0); !approx(got, 9) {
		t.Errorf("QubitIdle(0) = %v (pre-barrier wait)", got)
	}
}

func TestUnusedQubitHasNoIdle(t *testing.T) {
	dev := testDevice()
	c := circuit.New(3, "partial").CX(0, 1)
	tl, err := schedule.Compute(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.QubitIdle(2); got != 0 {
		t.Errorf("unused qubit idle = %v", got)
	}
}

func TestComputeValidation(t *testing.T) {
	if _, err := schedule.Compute(circuit.New(2, "small"), testDevice()); err == nil {
		t.Error("register mismatch accepted")
	}
}

func TestPerOpIdleMatchesTimeline(t *testing.T) {
	dev := testDevice()
	c := circuit.New(3, "idle").H(2).CX(0, 1).CX(1, 2).AddBarrier().H(0)
	tl, err := schedule.Compute(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	before, final, err := schedule.PerOpIdle(c, dev)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, gaps := range before {
		for _, g := range gaps {
			total += g.Duration
		}
	}
	for _, g := range final {
		total += g.Duration
	}
	if !approx(total, tl.TotalIdle()) {
		t.Errorf("PerOpIdle total %v != timeline total %v", total, tl.TotalIdle())
	}
}

func TestScheduleAwareDecayWeakensIdleOnes(t *testing.T) {
	// A |1⟩ prepared early and left idle while other qubits work must
	// decay more under schedule-aware decay than under the gate-only
	// model. Construct: X(2) then a long serial CX chain on q0-q1.
	dev := testDevice()
	for i := range dev.Qubits {
		dev.Qubits[i].T1 = 30 // strong decay relative to the 40-unit chain
	}
	c := circuit.New(3, "decay").X(2)
	for i := 0; i < 4; i++ {
		c.CX(0, 1)
		c.CX(0, 1)
	}
	const shots = 20000
	gateOnly, err := backend.RunContext(context.Background(), c, dev, backend.Options{
		Shots: shots, Seed: 61, NoGateNoise: true, NoReadoutError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	scheduled, err := backend.RunContext(context.Background(), c, dev, backend.Options{
		Shots: shots, Seed: 62, NoGateNoise: true, NoReadoutError: true,
		ScheduleAwareDecay: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p1 := func(counts interface {
		Get(bitstring.Bits) int
		Total() int
	}) float64 {
		return float64(counts.Get(bitstring.MustParse("100"))) / float64(counts.Total())
	}
	gOnly, sched := p1(gateOnly), p1(scheduled)
	if sched >= gOnly {
		t.Errorf("schedule-aware decay did not weaken the idle |1⟩: gate-only %v, scheduled %v", gOnly, sched)
	}
	// Expected survival: exp(-80/30) ≈ 0.07 (q2 idles the whole 80-unit
	// chain); gate-only leaves it at ≈ exp(-1/30) ≈ 0.97.
	if sched > 0.25 {
		t.Errorf("scheduled survival %v too high", sched)
	}
	if gOnly < 0.9 {
		t.Errorf("gate-only survival %v too low", gOnly)
	}
}

func TestScheduleAwareDecayNoopWhenNoDecay(t *testing.T) {
	dev := device.IBMQX2()
	c := circuit.New(5, "x").PrepareBasis(bitstring.MustParse("11111"))
	a, err := backend.RunContext(context.Background(), c, dev, backend.Options{
		Shots: 2000, Seed: 63, NoDecay: true, NoGateNoise: true, NoReadoutError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := backend.RunContext(context.Background(), c, dev, backend.Options{
		Shots: 2000, Seed: 63, NoDecay: true, NoGateNoise: true, NoReadoutError: true,
		ScheduleAwareDecay: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range a.Outcomes() {
		if a.Get(o) != b.Get(o) {
			t.Fatalf("NoDecay + ScheduleAwareDecay changed results at %v", o)
		}
	}
}

func TestIdleInversionEqualizesDecay(t *testing.T) {
	// An idle |1⟩ drains toward 0 while an idle |0⟩ is safe; midpoint
	// inversion makes both spend half the wait in the fragile state,
	// equalizing their survival — the paper's averaging idea applied to
	// idle decoherence.
	// Idle ~79 units vs T1 = 200: a first-order decay regime (~33%
	// loss), where midpoint inversion symmetrizes cleanly. (With idle
	// comparable to T1, double-decay paths dominate and the inversion
	// overshoots toward favouring |1>.)
	dev := testDevice()
	for i := range dev.Qubits {
		dev.Qubits[i].T1 = 200
	}
	// q2 idles for ~80 units while q0-q1 run a CX chain.
	build := func(q2state bool) *circuit.Circuit {
		c := circuit.New(3, "idle")
		if q2state {
			c.X(2)
		} else {
			// Keep gate counts identical: two X's cancel.
			c.X(2)
			c.X(2)
		}
		for i := 0; i < 4; i++ {
			c.CX(0, 1)
			c.CX(0, 1)
		}
		return c
	}
	survival := func(c *circuit.Circuit, want bitstring.Bits, inversion bool, seed int64) float64 {
		counts, err := backend.RunContext(context.Background(), c, dev, backend.Options{
			Shots: 30000, Seed: seed, NoGateNoise: true, NoReadoutError: true,
			ScheduleAwareDecay: true, IdleInversion: inversion,
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(counts.Get(want)) / float64(counts.Total())
	}

	one := bitstring.MustParse("100")
	zero := bitstring.MustParse("000")

	plainOne := survival(build(true), one, false, 71)
	plainZero := survival(build(false), zero, false, 72)
	invOne := survival(build(true), one, true, 73)
	invZero := survival(build(false), zero, true, 74)

	// Without inversion the |1⟩ idle state is far weaker than |0⟩.
	if plainZero-plainOne < 0.2 {
		t.Fatalf("expected strong idle bias: zero %v, one %v", plainZero, plainOne)
	}
	// With inversion the two survivals converge.
	gapPlain := plainZero - plainOne
	gapInv := invZero - invOne
	if gapInv < 0 {
		gapInv = -gapInv
	}
	if gapInv > gapPlain/3 {
		t.Errorf("idle inversion did not equalize: plain gap %v, inverted gap %v", gapPlain, gapInv)
	}
	// And the weak state improved substantially.
	if invOne < plainOne+0.15 {
		t.Errorf("idle |1⟩ survival: plain %v, inverted %v", plainOne, invOne)
	}
}

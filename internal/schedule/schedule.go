// Package schedule computes gate timing for circuits on device models:
// an ASAP (as-soon-as-possible) schedule assigning each operation a start
// and end time, per-qubit idle windows, and aggregate statistics.
//
// Timing matters to the paper's effect in two ways. First, qubits relax
// toward |0⟩ during *idle* time as well as during gates, so a
// schedule-aware noise model (backend.Options.ScheduleAwareDecay) decays
// qubits through the gaps between their operations — deep, poorly packed
// circuits lose their high-Hamming-weight amplitudes before measurement
// ever begins. Second, the schedule exposes circuit duration and critical
// path, the quantities a compiler would minimize to protect weak states.
package schedule

import (
	"fmt"

	"biasmit/internal/circuit"
	"biasmit/internal/device"
)

// OpTiming is the scheduled interval of one circuit operation. Barrier
// ops get zero-length intervals at the synchronization point.
type OpTiming struct {
	Start, End float64
}

// IdleWindow is a gap during which a qubit sits idle between operations
// (or between its last operation and measurement).
type IdleWindow struct {
	Qubit    int
	From, To float64
}

// Timeline is the full ASAP schedule of a circuit on a device.
type Timeline struct {
	Ops []OpTiming
	// Duration is the time at which every qubit is finished and
	// measurement can begin.
	Duration float64
	// FinishAt holds each qubit's last busy time.
	FinishAt []float64
	// Idle lists every idle window of every qubit that ever executed a
	// gate, including the final gap before measurement, in op order.
	Idle []IdleWindow
}

// OpDuration returns the modeled duration of op on dev: calibrated gate
// times, with SWAP costed as three CNOTs and barriers free.
func OpDuration(op circuit.Op, dev *device.Device) float64 {
	switch {
	case op.Kind == circuit.Barrier:
		return 0
	case op.Kind == circuit.SwapOp:
		return 3 * dev.Gate2Duration
	case op.IsTwoQubit():
		return dev.Gate2Duration
	default:
		return dev.Gate1Duration
	}
}

// Compute builds the ASAP timeline of c on dev. The circuit must already
// be expressed on the device register.
func Compute(c *circuit.Circuit, dev *device.Device) (*Timeline, error) {
	if c.NumQubits != dev.NumQubits {
		return nil, fmt.Errorf("schedule: circuit register %d does not match device %s with %d qubits",
			c.NumQubits, dev.Name, dev.NumQubits)
	}
	tl := &Timeline{
		Ops:      make([]OpTiming, len(c.Ops)),
		FinishAt: make([]float64, c.NumQubits),
	}
	everUsed := make([]bool, c.NumQubits)
	for i, op := range c.Ops {
		if op.Kind == circuit.Barrier {
			// Synchronize all qubits, recording the waiting time of the
			// early finishers as idle.
			sync := 0.0
			for _, t := range tl.FinishAt {
				if t > sync {
					sync = t
				}
			}
			for q := range tl.FinishAt {
				if everUsed[q] && tl.FinishAt[q] < sync {
					tl.Idle = append(tl.Idle, IdleWindow{Qubit: q, From: tl.FinishAt[q], To: sync})
				}
				tl.FinishAt[q] = sync
			}
			tl.Ops[i] = OpTiming{Start: sync, End: sync}
			continue
		}
		start := 0.0
		for _, q := range op.Qubits {
			if tl.FinishAt[q] > start {
				start = tl.FinishAt[q]
			}
		}
		end := start + OpDuration(op, dev)
		tl.Ops[i] = OpTiming{Start: start, End: end}
		for _, q := range op.Qubits {
			if everUsed[q] && start > tl.FinishAt[q] {
				tl.Idle = append(tl.Idle, IdleWindow{Qubit: q, From: tl.FinishAt[q], To: start})
			}
			tl.FinishAt[q] = end
			everUsed[q] = true
		}
	}
	for _, t := range tl.FinishAt {
		if t > tl.Duration {
			tl.Duration = t
		}
	}
	// Final pre-measurement gaps for qubits that executed gates.
	for q, used := range everUsed {
		if used && tl.FinishAt[q] < tl.Duration {
			tl.Idle = append(tl.Idle, IdleWindow{Qubit: q, From: tl.FinishAt[q], To: tl.Duration})
		}
	}
	return tl, nil
}

// QubitGap is an idle duration attributed to a qubit, consumed by the
// backend's schedule-aware decay.
type QubitGap struct {
	Qubit    int
	Duration float64
}

// PerOpIdle replays the ASAP schedule and returns, for each op, the idle
// gaps its operand qubits accumulated since their previous activity, plus
// the final pre-measurement gaps of all active qubits. This is the form
// the noisy backend consumes: decay each gap just before the op (or the
// measurement) that ends it.
func PerOpIdle(c *circuit.Circuit, dev *device.Device) (before [][]QubitGap, final []QubitGap, err error) {
	tl, err := Compute(c, dev)
	if err != nil {
		return nil, nil, err
	}
	before = make([][]QubitGap, len(c.Ops))
	finish := make([]float64, c.NumQubits)
	everUsed := make([]bool, c.NumQubits)
	for i, op := range c.Ops {
		if op.Kind == circuit.Barrier {
			for q := range finish {
				if gap := tl.Ops[i].End - finish[q]; everUsed[q] && gap > 0 {
					before[i] = append(before[i], QubitGap{Qubit: q, Duration: gap})
				}
				finish[q] = tl.Ops[i].End
			}
			continue
		}
		for _, q := range op.Qubits {
			if gap := tl.Ops[i].Start - finish[q]; everUsed[q] && gap > 0 {
				before[i] = append(before[i], QubitGap{Qubit: q, Duration: gap})
			}
			finish[q] = tl.Ops[i].End
			everUsed[q] = true
		}
	}
	for q, used := range everUsed {
		if gap := tl.Duration - finish[q]; used && gap > 0 {
			final = append(final, QubitGap{Qubit: q, Duration: gap})
		}
	}
	return before, final, nil
}

// TotalIdle returns the summed idle time across all qubits.
func (tl *Timeline) TotalIdle() float64 {
	var s float64
	for _, w := range tl.Idle {
		s += w.To - w.From
	}
	return s
}

// QubitIdle returns the summed idle time of one qubit.
func (tl *Timeline) QubitIdle(q int) float64 {
	var s float64
	for _, w := range tl.Idle {
		if w.Qubit == q {
			s += w.To - w.From
		}
	}
	return s
}

// Utilization returns busy-time / (active qubits × duration), a packing
// quality measure in (0, 1].
func (tl *Timeline) Utilization() float64 {
	if tl.Duration == 0 {
		return 1
	}
	active := 0
	var busy float64
	for q, t := range tl.FinishAt {
		if t > 0 {
			active++
			busy += tl.Duration - tl.QubitIdle(q)
		}
	}
	if active == 0 {
		return 1
	}
	return busy / (float64(active) * tl.Duration)
}

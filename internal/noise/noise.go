// Package noise models the error processes of NISQ hardware that the
// paper characterizes and mitigates:
//
//   - Asymmetric readout error: each qubit i is misread with
//     state-dependent probabilities P01 (prepared 0, read 1) and P10
//     (prepared 1, read 0). On IBM machines P10 > P01 because the qubit
//     relaxes toward |0⟩ during the long readout pulse; this asymmetry is
//     the source of the Hamming-weight bias in Figures 4 and 5.
//   - Correlated readout flips: a qubit's readout error can depend on the
//     true state of a neighbouring qubit (readout crosstalk). These terms
//     break the clean Hamming-weight correlation and produce the
//     "arbitrary bias" observed on ibmqx4 (Figure 11).
//   - Depolarizing gate noise: after each gate a uniformly random
//     non-identity Pauli is applied with the gate's error probability.
//   - T1 decay: exponential relaxation with rate 1/T1, applied during
//     gates (amplitude damping trajectories) and during the readout pulse
//     (folded into the effective P10).
//
// The readout channel is classical — it corrupts the measured bit string
// after the quantum measurement — which matches how readout error behaves
// physically and keeps the exact per-state success probability (BMS)
// computable in closed form for tests and for the AIM oracle.
package noise

import (
	"fmt"
	"math"
	"math/rand"

	"biasmit/internal/bitstring"
	"biasmit/internal/quantum"
)

// ReadoutError holds the two misread probabilities of one qubit.
type ReadoutError struct {
	P01 float64 // P(read 1 | true 0)
	P10 float64 // P(read 0 | true 1)
}

// Validate reports an error if either probability is outside [0,1].
func (r ReadoutError) Validate() error {
	if r.P01 < 0 || r.P01 > 1 || r.P10 < 0 || r.P10 > 1 {
		return fmt.Errorf("noise: readout probabilities out of range: %+v", r)
	}
	return nil
}

// Average returns the mean of the two misread probabilities — the single
// "measurement error rate" number IBM reports and the paper's Table 1
// summarizes.
func (r ReadoutError) Average() float64 { return (r.P01 + r.P10) / 2 }

// WithT1Decay returns a copy of r whose P10 additionally includes
// relaxation during a readout pulse of the given duration: the qubit
// decays 1→0 with probability 1−exp(−t/T1) before the bare discrimination
// error applies.
func (r ReadoutError) WithT1Decay(duration, t1 float64) ReadoutError {
	if t1 <= 0 || duration <= 0 {
		return r
	}
	pDecay := 1 - math.Exp(-duration/t1)
	// Decay first (1→0), then discriminator error on the resulting state:
	// still 1: misread as 0 with P10. Decayed to 0: misread back as 1
	// with P01.
	r.P10 = pDecay*(1-r.P01) + (1-pDecay)*r.P10
	return r
}

// CorrelatedFlip adds extra readout-flip probability on Target when the
// *true* (pre-readout) state of Trigger equals TriggerState. Extra
// means: the target's effective misread probability for this shot
// becomes p + PExtra − p·PExtra (an independent extra flip chance).
type CorrelatedFlip struct {
	Trigger      int
	TriggerState bool
	Target       int
	PExtra       float64
}

// Validate reports an error for out-of-range fields.
func (c CorrelatedFlip) Validate(numQubits int) error {
	if c.Trigger < 0 || c.Trigger >= numQubits || c.Target < 0 || c.Target >= numQubits {
		return fmt.Errorf("noise: correlated flip qubits out of range: %+v", c)
	}
	if c.Trigger == c.Target {
		return fmt.Errorf("noise: correlated flip with trigger == target %d", c.Trigger)
	}
	if c.PExtra < 0 || c.PExtra > 1 {
		return fmt.Errorf("noise: correlated flip probability %v out of range", c.PExtra)
	}
	return nil
}

// ReadoutModel is the full classical readout channel of a device.
type ReadoutModel struct {
	PerQubit     []ReadoutError
	Correlations []CorrelatedFlip
}

// NumQubits returns the register size of the model.
func (m *ReadoutModel) NumQubits() int { return len(m.PerQubit) }

// Validate checks every component.
func (m *ReadoutModel) Validate() error {
	for i, r := range m.PerQubit {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("qubit %d: %w", i, err)
		}
	}
	for _, c := range m.Correlations {
		if err := c.Validate(len(m.PerQubit)); err != nil {
			return err
		}
	}
	return nil
}

// flipProbs returns, for the given true state, the per-qubit probability
// that the read bit differs from the true bit. Because correlated terms
// are conditioned only on the true state, the flips are conditionally
// independent given x, so the channel factorizes per true state.
func (m *ReadoutModel) flipProbs(x bitstring.Bits) []float64 {
	p := make([]float64, len(m.PerQubit))
	for i, r := range m.PerQubit {
		if x.Bit(i) {
			p[i] = r.P10
		} else {
			p[i] = r.P01
		}
	}
	for _, c := range m.Correlations {
		if x.Bit(c.Trigger) == c.TriggerState {
			p[c.Target] = p[c.Target] + c.PExtra - p[c.Target]*c.PExtra
		}
	}
	return p
}

// Apply corrupts one measured outcome: given the true post-measurement
// state x, it returns the classically recorded string.
func (m *ReadoutModel) Apply(x bitstring.Bits, rng *rand.Rand) bitstring.Bits {
	if x.Width() != len(m.PerQubit) {
		panic(fmt.Sprintf("noise: outcome width %d does not match model %d", x.Width(), len(m.PerQubit)))
	}
	p := m.flipProbs(x)
	out := x
	for i, pi := range p {
		if pi > 0 && rng.Float64() < pi {
			out = out.SetBit(i, !out.Bit(i))
		}
	}
	return out
}

// CompiledReadout is a ReadoutModel with its per-qubit flip thresholds
// precomputed for the shot loop: the two misread probabilities of every
// qubit live in flat arrays and the correlated-flip terms are grouped by
// target, so Apply computes each qubit's effective flip probability with
// no allocation and no scan over the full correlation list per shot.
//
// Stream identity: CompiledReadout.Apply consumes the rng exactly as
// ReadoutModel.Apply does — one Float64 per qubit whose flip probability
// is positive, in ascending qubit order, compared with `<` against the
// same IEEE-754 probability values (correlations fold in the same order
// as the model's Correlations slice) — so the corrupted outcome stream
// is byte-identical. The equality tests in this package and the backend
// fast-path suite assert exactly that.
//
// Compile snapshots the model: mutations to the ReadoutModel after
// compiling are not reflected.
type CompiledReadout struct {
	model        *ReadoutModel
	p01, p10     []float64
	corrByTarget [][]CorrelatedFlip // nil when the model has no correlations
}

// Compile precomputes the per-qubit flip thresholds of m.
func (m *ReadoutModel) Compile() *CompiledReadout {
	n := len(m.PerQubit)
	c := &CompiledReadout{
		model: m,
		p01:   make([]float64, n),
		p10:   make([]float64, n),
	}
	for i, r := range m.PerQubit {
		c.p01[i] = r.P01
		c.p10[i] = r.P10
	}
	if len(m.Correlations) > 0 {
		c.corrByTarget = make([][]CorrelatedFlip, n)
		// Grouping by target preserves the Correlations slice order within
		// each target, so repeated correlations on one qubit fold in the
		// same order as ReadoutModel.flipProbs.
		for _, corr := range m.Correlations {
			c.corrByTarget[corr.Target] = append(c.corrByTarget[corr.Target], corr)
		}
	}
	return c
}

// Model returns the ReadoutModel this was compiled from.
func (c *CompiledReadout) Model() *ReadoutModel { return c.model }

// NumQubits returns the register size of the compiled model.
func (c *CompiledReadout) NumQubits() int { return len(c.p01) }

// Apply corrupts one measured outcome exactly as ReadoutModel.Apply
// does (see the type comment for the stream-identity contract), without
// allocating.
func (c *CompiledReadout) Apply(x bitstring.Bits, rng *rand.Rand) bitstring.Bits {
	n := len(c.p01)
	if x.Width() != n {
		panic(fmt.Sprintf("noise: outcome width %d does not match model %d", x.Width(), n))
	}
	out := x
	for i := 0; i < n; i++ {
		var pi float64
		if x.Bit(i) {
			pi = c.p10[i]
		} else {
			pi = c.p01[i]
		}
		if c.corrByTarget != nil {
			for _, corr := range c.corrByTarget[i] {
				if x.Bit(corr.Trigger) == corr.TriggerState {
					pi = pi + corr.PExtra - pi*corr.PExtra
				}
			}
		}
		if pi > 0 && rng.Float64() < pi {
			out = out.SetBit(i, !out.Bit(i))
		}
	}
	return out
}

// SuccessProb returns the exact probability that state x is read back
// correctly — the paper's Basis Measurement Strength (BMS) of x.
func (m *ReadoutModel) SuccessProb(x bitstring.Bits) float64 {
	if x.Width() != len(m.PerQubit) {
		panic(fmt.Sprintf("noise: outcome width %d does not match model %d", x.Width(), len(m.PerQubit)))
	}
	prob := 1.0
	for _, pi := range m.flipProbs(x) {
		prob *= 1 - pi
	}
	return prob
}

// SubsetSuccessProb returns the probability that every qubit in the given
// subset is read correctly when the full register's true state is x.
// Qubits outside the subset may read anything. This is the exact value
// that windowed characterization (AWCT) estimates for one window.
func (m *ReadoutModel) SubsetSuccessProb(x bitstring.Bits, qubits []int) float64 {
	if x.Width() != len(m.PerQubit) {
		panic(fmt.Sprintf("noise: outcome width %d does not match model %d", x.Width(), len(m.PerQubit)))
	}
	p := m.flipProbs(x)
	prob := 1.0
	for _, q := range qubits {
		if q < 0 || q >= len(m.PerQubit) {
			panic(fmt.Sprintf("noise: subset qubit %d out of range", q))
		}
		prob *= 1 - p[q]
	}
	return prob
}

// TransitionProb returns the exact P(read y | true x).
func (m *ReadoutModel) TransitionProb(x, y bitstring.Bits) float64 {
	if x.Width() != len(m.PerQubit) || y.Width() != len(m.PerQubit) {
		panic("noise: width mismatch in TransitionProb")
	}
	prob := 1.0
	for i, pi := range m.flipProbs(x) {
		if x.Bit(i) == y.Bit(i) {
			prob *= 1 - pi
		} else {
			prob *= pi
		}
	}
	return prob
}

// ExactBMS returns the success probability of every basis state, indexed
// by packed basis value. It is the ground truth the characterization
// techniques in internal/core estimate. Cost is O(n·2^n).
func (m *ReadoutModel) ExactBMS() []float64 {
	n := len(m.PerQubit)
	out := make([]float64, 1<<uint(n))
	for _, b := range bitstring.All(n) {
		out[b.Uint64()] = m.SuccessProb(b)
	}
	return out
}

// GateErrors holds the depolarizing error probability of each gate class
// on a device location.
type GateErrors struct {
	P1 float64 // single-qubit gate error probability
	P2 float64 // two-qubit gate error probability
}

// SamplePauli1 draws the depolarizing kick after a single-qubit gate with
// error probability p: identity with probability 1−p, otherwise a
// uniformly random X, Y, or Z.
func SamplePauli1(p float64, rng *rand.Rand) quantum.Pauli {
	if p <= 0 || rng.Float64() >= p {
		return quantum.PauliI
	}
	return quantum.Pauli(1 + rng.Intn(3))
}

// SamplePauli2 draws the depolarizing kick after a two-qubit gate with
// error probability p: (I,I) with probability 1−p, otherwise a uniformly
// random non-identity pair from the 15 two-qubit Paulis.
func SamplePauli2(p float64, rng *rand.Rand) (quantum.Pauli, quantum.Pauli) {
	if p <= 0 || rng.Float64() >= p {
		return quantum.PauliI, quantum.PauliI
	}
	k := 1 + rng.Intn(15) // 1..15 excludes (I,I)
	return quantum.Pauli(k / 4), quantum.Pauli(k % 4)
}

// DecayProb converts an idle/gate duration and a T1 time into the
// amplitude-damping jump probability 1−exp(−t/T1).
func DecayProb(duration, t1 float64) float64 {
	if t1 <= 0 || duration <= 0 {
		return 0
	}
	return 1 - math.Exp(-duration/t1)
}

package noise

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"biasmit/internal/bitstring"
	"biasmit/internal/quantum"
)

func bs(s string) bitstring.Bits { return bitstring.MustParse(s) }

func uniformModel(n int, p01, p10 float64) *ReadoutModel {
	per := make([]ReadoutError, n)
	for i := range per {
		per[i] = ReadoutError{P01: p01, P10: p10}
	}
	return &ReadoutModel{PerQubit: per}
}

func TestReadoutErrorAverage(t *testing.T) {
	r := ReadoutError{P01: 0.02, P10: 0.10}
	if got := r.Average(); math.Abs(got-0.06) > 1e-12 {
		t.Errorf("Average = %v", got)
	}
}

func TestReadoutErrorValidate(t *testing.T) {
	if err := (ReadoutError{P01: 0.1, P10: 0.2}).Validate(); err != nil {
		t.Errorf("valid error rejected: %v", err)
	}
	for _, r := range []ReadoutError{{P01: -0.1}, {P10: 1.5}} {
		if r.Validate() == nil {
			t.Errorf("invalid %+v accepted", r)
		}
	}
}

func TestWithT1Decay(t *testing.T) {
	r := ReadoutError{P01: 0, P10: 0}
	d := r.WithT1Decay(60, 60) // one T1 of readout duration
	want := 1 - math.Exp(-1)
	if math.Abs(d.P10-want) > 1e-12 {
		t.Errorf("P10 after decay = %v, want %v", d.P10, want)
	}
	if d.P01 != 0 {
		t.Errorf("P01 changed: %v", d.P01)
	}
	// Zero duration or T1 is a no-op.
	if r.WithT1Decay(0, 60) != r || r.WithT1Decay(60, 0) != r {
		t.Error("no-op cases modified the error")
	}
}

func TestWithT1DecayComposesWithDiscriminator(t *testing.T) {
	// With P01 > 0, a decayed qubit can be misread back as 1.
	r := ReadoutError{P01: 0.5, P10: 0}
	d := r.WithT1Decay(1e12, 60) // certain decay
	if math.Abs(d.P10-0.5) > 1e-9 {
		t.Errorf("P10 = %v, want 0.5 (decayed then misread back)", d.P10)
	}
}

func TestSuccessProbMonotoneInHammingWeight(t *testing.T) {
	// With uniform P10 > P01, BMS must strictly decrease with Hamming
	// weight — the paper's central characterization result (Fig 4).
	m := uniformModel(5, 0.02, 0.12)
	byWeight := make([]float64, 6)
	for _, b := range bitstring.All(5) {
		byWeight[b.HammingWeight()] = m.SuccessProb(b)
	}
	for w := 1; w < 6; w++ {
		if byWeight[w] >= byWeight[w-1] {
			t.Errorf("BMS(weight %d)=%v >= BMS(weight %d)=%v", w, byWeight[w], w-1, byWeight[w-1])
		}
	}
	// Exact values: (1-p01)^(5-w) (1-p10)^w.
	want := math.Pow(0.98, 5)
	if got := m.SuccessProb(bs("00000")); math.Abs(got-want) > 1e-12 {
		t.Errorf("BMS(00000) = %v, want %v", got, want)
	}
	want = math.Pow(0.88, 5)
	if got := m.SuccessProb(bs("11111")); math.Abs(got-want) > 1e-12 {
		t.Errorf("BMS(11111) = %v, want %v", got, want)
	}
}

func TestTransitionProbRowsSumToOne(t *testing.T) {
	m := uniformModel(4, 0.03, 0.09)
	m.Correlations = []CorrelatedFlip{{Trigger: 0, TriggerState: true, Target: 1, PExtra: 0.2}}
	for _, x := range bitstring.All(4) {
		var sum float64
		for _, y := range bitstring.All(4) {
			sum += m.TransitionProb(x, y)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %v sums to %v", x, sum)
		}
	}
}

func TestApplyMatchesTransitionProb(t *testing.T) {
	m := uniformModel(3, 0.05, 0.15)
	m.Correlations = []CorrelatedFlip{{Trigger: 2, TriggerState: true, Target: 0, PExtra: 0.3}}
	rng := rand.New(rand.NewSource(61))
	x := bs("101")
	const trials = 200000
	counts := make(map[bitstring.Bits]int)
	for i := 0; i < trials; i++ {
		counts[m.Apply(x, rng)]++
	}
	for _, y := range bitstring.All(3) {
		want := m.TransitionProb(x, y)
		got := float64(counts[y]) / trials
		if math.Abs(got-want) > 0.005 {
			t.Errorf("P(%v|%v): sampled %v, exact %v", y, x, got, want)
		}
	}
}

func TestCorrelatedFlipBreaksMonotonicity(t *testing.T) {
	// A strong enough crosstalk term makes a low-weight state weaker than
	// a higher-weight one — the ibmqx4 "arbitrary bias" mechanism.
	m := uniformModel(3, 0.01, 0.05)
	m.Correlations = []CorrelatedFlip{{Trigger: 0, TriggerState: true, Target: 1, PExtra: 0.5}}
	weak := m.SuccessProb(bs("001"))   // weight 1, but triggers crosstalk
	strong := m.SuccessProb(bs("110")) // weight 2, no trigger
	if weak >= strong {
		t.Errorf("crosstalk did not break monotonicity: BMS(001)=%v BMS(110)=%v", weak, strong)
	}
}

func TestExactBMS(t *testing.T) {
	m := uniformModel(3, 0.02, 0.1)
	bms := m.ExactBMS()
	if len(bms) != 8 {
		t.Fatalf("len = %d", len(bms))
	}
	for _, b := range bitstring.All(3) {
		if math.Abs(bms[b.Uint64()]-m.SuccessProb(b)) > 1e-12 {
			t.Errorf("ExactBMS mismatch at %v", b)
		}
	}
}

func TestValidateModel(t *testing.T) {
	m := uniformModel(3, 0.02, 0.1)
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	m.Correlations = []CorrelatedFlip{{Trigger: 0, Target: 0, PExtra: 0.1}}
	if m.Validate() == nil {
		t.Error("trigger==target accepted")
	}
	m.Correlations = []CorrelatedFlip{{Trigger: 0, Target: 5, PExtra: 0.1}}
	if m.Validate() == nil {
		t.Error("out-of-range target accepted")
	}
	m.Correlations = nil
	m.PerQubit[1].P10 = 2
	if m.Validate() == nil {
		t.Error("bad probability accepted")
	}
}

func TestSamplePauli1Distribution(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	const p = 0.3
	const trials = 100000
	counts := make(map[quantum.Pauli]int)
	for i := 0; i < trials; i++ {
		counts[SamplePauli1(p, rng)]++
	}
	if got := float64(counts[quantum.PauliI]) / trials; math.Abs(got-0.7) > 0.01 {
		t.Errorf("P(I) = %v, want 0.7", got)
	}
	for _, pl := range []quantum.Pauli{quantum.PauliX, quantum.PauliY, quantum.PauliZ} {
		if got := float64(counts[pl]) / trials; math.Abs(got-0.1) > 0.01 {
			t.Errorf("P(%v) = %v, want 0.1", pl, got)
		}
	}
	if SamplePauli1(0, rng) != quantum.PauliI {
		t.Error("p=0 produced an error")
	}
}

func TestSamplePauli2Distribution(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const p = 0.5
	const trials = 150000
	var identity, errs int
	pairCounts := make(map[[2]quantum.Pauli]int)
	for i := 0; i < trials; i++ {
		a, b := SamplePauli2(p, rng)
		if a == quantum.PauliI && b == quantum.PauliI {
			identity++
		} else {
			errs++
			pairCounts[[2]quantum.Pauli{a, b}]++
		}
	}
	if got := float64(identity) / trials; math.Abs(got-0.5) > 0.01 {
		t.Errorf("P(I,I) = %v", got)
	}
	if len(pairCounts) != 15 {
		t.Errorf("saw %d distinct error pairs, want 15", len(pairCounts))
	}
	for pair, n := range pairCounts {
		got := float64(n) / float64(errs)
		if math.Abs(got-1.0/15) > 0.01 {
			t.Errorf("P(%v|err) = %v, want 1/15", pair, got)
		}
	}
}

func TestDecayProb(t *testing.T) {
	if got := DecayProb(60, 60); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Errorf("DecayProb = %v", got)
	}
	if DecayProb(0, 60) != 0 || DecayProb(60, 0) != 0 {
		t.Error("degenerate cases not zero")
	}
}

// Property: SuccessProb equals TransitionProb(x,x) for all states and
// models, with and without correlations.
func TestQuickSuccessIsDiagonal(t *testing.T) {
	f := func(xraw uint8, p01c, p10c uint8, hasCorr bool) bool {
		const n = 5
		m := uniformModel(n, float64(p01c%50)/500, float64(p10c%50)/250)
		if hasCorr {
			m.Correlations = []CorrelatedFlip{{Trigger: 1, TriggerState: true, Target: 3, PExtra: 0.25}}
		}
		x := bitstring.New(uint64(xraw), n)
		return math.Abs(m.SuccessProb(x)-m.TransitionProb(x, x)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(73))}); err != nil {
		t.Error(err)
	}
}

// Property: with asymmetric error (P10 > P01) and no correlations,
// inverting a majority-ones state always yields a strictly stronger
// state — the physical justification for Invert-and-Measure.
func TestQuickInversionStrengthens(t *testing.T) {
	f := func(xraw uint8) bool {
		const n = 5
		m := uniformModel(n, 0.02, 0.12)
		x := bitstring.New(uint64(xraw), n)
		if x.HammingWeight() <= n/2 {
			return true // only majority-ones states are guaranteed to gain
		}
		return m.SuccessProb(x.Invert()) > m.SuccessProb(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(79))}); err != nil {
		t.Error(err)
	}
}

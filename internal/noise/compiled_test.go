package noise

import (
	"math/rand"
	"testing"

	"biasmit/internal/bitstring"
)

// correlatedTestModel builds a model with asymmetric per-qubit errors
// and stacked correlations, including two on the same target (whose
// fold order is observable in the effective flip probability stream).
func correlatedTestModel() *ReadoutModel {
	return &ReadoutModel{
		PerQubit: []ReadoutError{
			{P01: 0.01, P10: 0.08},
			{P01: 0.02, P10: 0.12},
			{P01: 0.00, P10: 0.30},
			{P01: 0.03, P10: 0.05},
			{P01: 0.015, P10: 0.9},
		},
		Correlations: []CorrelatedFlip{
			{Trigger: 0, TriggerState: true, Target: 2, PExtra: 0.2},
			{Trigger: 3, TriggerState: false, Target: 2, PExtra: 0.15},
			{Trigger: 1, TriggerState: true, Target: 4, PExtra: 0.05},
			{Trigger: 2, TriggerState: false, Target: 0, PExtra: 0.07},
		},
	}
}

// TestCompiledApplyStreamIdentical drives the naive and compiled
// channels over one shared rng stream each and asserts byte-identical
// corrupted outcomes across every true state, shot after shot — the
// stream-identity contract the backend fast path rests on.
func TestCompiledApplyStreamIdentical(t *testing.T) {
	m := correlatedTestModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	c := m.Compile()
	rngA := rand.New(rand.NewSource(99))
	rngB := rand.New(rand.NewSource(99))
	for _, x := range bitstring.All(5) {
		for shot := 0; shot < 200; shot++ {
			want := m.Apply(x, rngA)
			got := c.Apply(x, rngB)
			if want != got {
				t.Fatalf("x=%s shot %d: naive %s, compiled %s", x, shot, want, got)
			}
		}
	}
}

func TestCompiledApplyNoCorrelations(t *testing.T) {
	m := &ReadoutModel{PerQubit: correlatedTestModel().PerQubit}
	c := m.Compile()
	rngA := rand.New(rand.NewSource(3))
	rngB := rand.New(rand.NewSource(3))
	for _, x := range bitstring.All(5) {
		for shot := 0; shot < 100; shot++ {
			if want, got := m.Apply(x, rngA), c.Apply(x, rngB); want != got {
				t.Fatalf("x=%s shot %d: naive %s, compiled %s", x, shot, want, got)
			}
		}
	}
}

// TestCompiledApplyAllocs pins the whole point of compiling: zero
// allocations per shot (the naive path allocates a flip-probability
// slice every call).
func TestCompiledApplyAllocs(t *testing.T) {
	c := correlatedTestModel().Compile()
	rng := rand.New(rand.NewSource(1))
	x := bitstring.MustParse("10110")
	if allocs := testing.AllocsPerRun(200, func() {
		_ = c.Apply(x, rng)
	}); allocs != 0 {
		t.Fatalf("CompiledReadout.Apply allocates %v per shot, want 0", allocs)
	}
}

func TestCompiledModelRoundTrip(t *testing.T) {
	m := correlatedTestModel()
	c := m.Compile()
	if c.Model() != m {
		t.Fatal("Model() does not return the source model")
	}
	if c.NumQubits() != m.NumQubits() {
		t.Fatalf("NumQubits %d != %d", c.NumQubits(), m.NumQubits())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("width mismatch did not panic")
		}
	}()
	c.Apply(bitstring.MustParse("101"), rand.New(rand.NewSource(1)))
}

package bitstring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAndString(t *testing.T) {
	cases := []struct {
		s     string
		value uint64
		width int
	}{
		{"0", 0, 1},
		{"1", 1, 1},
		{"00000", 0, 5},
		{"11111", 31, 5},
		{"00101", 5, 5},
		{"10000", 16, 5},
		{"101011", 43, 6},
	}
	for _, c := range cases {
		b, err := Parse(c.s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.s, err)
		}
		if b.Uint64() != c.value || b.Width() != c.width {
			t.Errorf("Parse(%q) = (%d,%d), want (%d,%d)", c.s, b.Uint64(), b.Width(), c.value, c.width)
		}
		if got := b.String(); got != c.s {
			t.Errorf("String() = %q, want %q", got, c.s)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "012", "abc", "1 0", string(make([]byte, 65))} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestNewTruncates(t *testing.T) {
	b := New(0xFF, 4)
	if b.Uint64() != 0xF {
		t.Errorf("New(0xFF,4) = %d, want 15", b.Uint64())
	}
}

func TestNewPanicsOnBadWidth(t *testing.T) {
	for _, w := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(_, %d) did not panic", w)
				}
			}()
			New(0, w)
		}()
	}
}

func TestZerosOnesAlternating(t *testing.T) {
	if got := Zeros(5).String(); got != "00000" {
		t.Errorf("Zeros(5) = %q", got)
	}
	if got := Ones(5).String(); got != "11111" {
		t.Errorf("Ones(5) = %q", got)
	}
	if got := Alternating(5, false).String(); got != "10101" {
		t.Errorf("Alternating(5,false) = %q", got)
	}
	if got := Alternating(5, true).String(); got != "01010" {
		t.Errorf("Alternating(5,true) = %q", got)
	}
	if got := Ones(64); got.HammingWeight() != 64 {
		t.Errorf("Ones(64) weight = %d", got.HammingWeight())
	}
}

func TestBitAndSetBit(t *testing.T) {
	b := MustParse("00101")
	wantSet := []bool{true, false, true, false, false} // bit 0 is rightmost char
	for i, want := range wantSet {
		if got := b.Bit(i); got != want {
			t.Errorf("Bit(%d) = %v, want %v", i, got, want)
		}
	}
	b2 := b.SetBit(4, true)
	if b2.String() != "10101" {
		t.Errorf("SetBit(4,true) = %q, want 10101", b2.String())
	}
	if b.String() != "00101" {
		t.Errorf("SetBit mutated receiver: %q", b.String())
	}
	b3 := b.SetBit(0, false)
	if b3.String() != "00100" {
		t.Errorf("SetBit(0,false) = %q, want 00100", b3.String())
	}
}

func TestHammingWeightAndDistance(t *testing.T) {
	if w := MustParse("101011").HammingWeight(); w != 4 {
		t.Errorf("weight(101011) = %d, want 4", w)
	}
	a, b := MustParse("10101"), MustParse("01010")
	if d := a.HammingDistance(b); d != 5 {
		t.Errorf("distance = %d, want 5", d)
	}
	if d := a.HammingDistance(a); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
}

func TestInvertAndXor(t *testing.T) {
	b := MustParse("00101")
	if got := b.Invert().String(); got != "11010" {
		t.Errorf("Invert = %q", got)
	}
	if got := b.Xor(MustParse("11111")).String(); got != "11010" {
		t.Errorf("Xor ones = %q", got)
	}
	if got := b.Xor(Zeros(5)); got != b {
		t.Errorf("Xor zeros = %v, want %v", got, b)
	}
}

func TestSliceAndConcat(t *testing.T) {
	b := MustParse("110010")
	if got := b.Slice(0, 3).String(); got != "010" {
		t.Errorf("Slice(0,3) = %q, want 010", got)
	}
	if got := b.Slice(3, 6).String(); got != "110" {
		t.Errorf("Slice(3,6) = %q, want 110", got)
	}
	if got := b.Slice(0, 6); got != b {
		t.Errorf("full slice = %v", got)
	}
	lo, hi := MustParse("010"), MustParse("110")
	if got := lo.Concat(hi).String(); got != "110010" {
		t.Errorf("Concat = %q, want 110010", got)
	}
}

func TestAllOrdering(t *testing.T) {
	all := All(3)
	if len(all) != 8 {
		t.Fatalf("All(3) has %d entries", len(all))
	}
	for v, b := range all {
		if b.Uint64() != uint64(v) || b.Width() != 3 {
			t.Errorf("All(3)[%d] = %v", v, b)
		}
	}
}

func TestAllByHammingWeight(t *testing.T) {
	ordered := AllByHammingWeight(5)
	if len(ordered) != 32 {
		t.Fatalf("got %d entries", len(ordered))
	}
	if ordered[0].String() != "00000" || ordered[31].String() != "11111" {
		t.Errorf("endpoints: %v ... %v", ordered[0], ordered[31])
	}
	prev := -1
	for _, b := range ordered {
		if w := b.HammingWeight(); w < prev {
			t.Fatalf("ordering violated at %v (weight %d after %d)", b, w, prev)
		} else {
			prev = w
		}
	}
	// The paper's Fig 4 x-axis starts 00000, 00001, 00010, 00100 ...
	if ordered[1].String() != "00001" || ordered[2].String() != "00010" || ordered[3].String() != "00100" {
		t.Errorf("weight-1 ordering: %v %v %v", ordered[1], ordered[2], ordered[3])
	}
}

func TestLessIsTotalOrder(t *testing.T) {
	a, b := New(3, 5), New(4, 5)
	if !a.Less(b) || b.Less(a) || a.Less(a) {
		t.Error("Less is not a strict order on same width")
	}
	narrow, wide := New(7, 3), New(0, 5)
	if !narrow.Less(wide) {
		t.Error("narrower width should order first")
	}
}

// Property: Invert is an involution.
func TestQuickInvertInvolution(t *testing.T) {
	f := func(v uint64, w uint8) bool {
		width := int(w%64) + 1
		b := New(v, width)
		return b.Invert().Invert() == b
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: Xor with a string twice restores the original (the basis of
// SIM post-correction: measure, XOR with the inversion string, recover).
func TestQuickXorInvolution(t *testing.T) {
	f := func(v, s uint64, w uint8) bool {
		width := int(w%64) + 1
		b, inv := New(v, width), New(s, width)
		return b.Xor(inv).Xor(inv) == b
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: HammingDistance(a,b) == weight(a XOR b) and is a metric
// (symmetry + identity).
func TestQuickHammingMetric(t *testing.T) {
	f := func(x, y uint64, w uint8) bool {
		width := int(w%64) + 1
		a, b := New(x, width), New(y, width)
		d := a.HammingDistance(b)
		return d == a.Xor(b).HammingWeight() && d == b.HammingDistance(a) && a.HammingDistance(a) == 0
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: weight(b) + weight(Invert(b)) == width.
func TestQuickInvertWeightComplement(t *testing.T) {
	f := func(v uint64, w uint8) bool {
		width := int(w%64) + 1
		b := New(v, width)
		return b.HammingWeight()+b.Invert().HammingWeight() == width
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: Parse(String(b)) round-trips.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(v uint64, w uint8) bool {
		width := int(w%64) + 1
		b := New(v, width)
		got, err := Parse(b.String())
		return err == nil && got == b
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: Slice and Concat are inverse: Concat(Slice(0,k), Slice(k,w)) == b.
func TestQuickSliceConcat(t *testing.T) {
	f := func(v uint64, w, k uint8) bool {
		width := int(w%64) + 1
		cut := int(k) % (width + 1)
		b := New(v, width)
		return b.Slice(0, cut).Concat(b.Slice(cut, width)) == b
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}
}

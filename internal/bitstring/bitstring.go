// Package bitstring provides fixed-width classical bit strings as they
// appear in quantum measurement records: outcomes of reading an n-qubit
// register, inversion strings applied before measurement, and secret keys
// of oracle problems.
//
// A Bits value packs up to 64 bits into a uint64 together with an explicit
// width, so that "00101" and "101" are distinct values. Bit 0 is the least
// significant bit and, by the convention used throughout this module,
// corresponds to qubit 0. The String form prints the most significant bit
// first, matching the basis-state labels used in the paper (e.g. "00000"
// to "11111" for five qubits).
package bitstring

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxWidth is the largest register width representable by Bits.
const MaxWidth = 64

// Bits is a fixed-width string of classical bits.
type Bits struct {
	value uint64
	width int
}

// New returns a Bits of the given width holding value. Bits of value above
// the width are truncated. It panics if width is negative or exceeds
// MaxWidth; widths are structural program constants, so a bad width is a
// programming error rather than a runtime condition.
func New(value uint64, width int) Bits {
	if width < 0 || width > MaxWidth {
		panic(fmt.Sprintf("bitstring: width %d out of range [0,%d]", width, MaxWidth))
	}
	return Bits{value: value & mask(width), width: width}
}

// Parse converts a string such as "01011" into a Bits value. The leftmost
// character is the most significant bit. Only '0' and '1' are permitted.
func Parse(s string) (Bits, error) {
	if len(s) == 0 {
		return Bits{}, fmt.Errorf("bitstring: empty string")
	}
	if len(s) > MaxWidth {
		return Bits{}, fmt.Errorf("bitstring: string %q longer than %d bits", s, MaxWidth)
	}
	var v uint64
	for _, c := range s {
		switch c {
		case '0':
			v <<= 1
		case '1':
			v = v<<1 | 1
		default:
			return Bits{}, fmt.Errorf("bitstring: invalid character %q in %q", c, s)
		}
	}
	return Bits{value: v, width: len(s)}, nil
}

// MustParse is Parse for compile-time constants; it panics on error.
func MustParse(s string) Bits {
	b, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return b
}

// Zeros returns the all-zero string of the given width.
func Zeros(width int) Bits { return New(0, width) }

// Ones returns the all-one string of the given width.
func Ones(width int) Bits { return New(mask(width), width) }

// Alternating returns the width-wide string whose bit i equal to one when
// i has the parity given by oddBits: Alternating(5, false) = "10101"
// (even bit positions set), Alternating(5, true) = "01010".
// These are the partial-inversion strings used by the four-mode SIM policy.
func Alternating(width int, oddBits bool) Bits {
	var v uint64
	for i := 0; i < width; i++ {
		if (i%2 == 1) == oddBits {
			v |= 1 << uint(i)
		}
	}
	return New(v, width)
}

// Uint64 returns the packed value of b.
func (b Bits) Uint64() uint64 { return b.value }

// Width returns the number of bits in b.
func (b Bits) Width() int { return b.width }

// Bit reports whether bit i (qubit i, least-significant first) is set.
func (b Bits) Bit(i int) bool {
	if i < 0 || i >= b.width {
		panic(fmt.Sprintf("bitstring: bit index %d out of range for width %d", i, b.width))
	}
	return b.value>>uint(i)&1 == 1
}

// SetBit returns a copy of b with bit i set to v.
func (b Bits) SetBit(i int, v bool) Bits {
	if i < 0 || i >= b.width {
		panic(fmt.Sprintf("bitstring: bit index %d out of range for width %d", i, b.width))
	}
	if v {
		b.value |= 1 << uint(i)
	} else {
		b.value &^= 1 << uint(i)
	}
	return b
}

// HammingWeight returns the number of set bits. The paper's central
// observation is that measurement fidelity falls as this grows.
func (b Bits) HammingWeight() int { return bits.OnesCount64(b.value) }

// HammingDistance returns the number of differing bit positions between b
// and o. It panics if the widths differ.
func (b Bits) HammingDistance(o Bits) int {
	b.mustMatch(o)
	return bits.OnesCount64(b.value ^ o.value)
}

// Invert returns the bitwise complement of b within its width. This is the
// classical post-correction applied after a fully inverted measurement.
func (b Bits) Invert() Bits {
	b.value = ^b.value & mask(b.width)
	return b
}

// Xor returns b XOR o. Applying an inversion string to a measured outcome
// is exactly this operation. It panics if the widths differ.
func (b Bits) Xor(o Bits) Bits {
	b.mustMatch(o)
	b.value ^= o.value
	return b
}

// Slice returns bits [lo, hi) of b as a new Bits of width hi-lo, with bit
// lo becoming bit 0 of the result. It is used by the sliding-window RBMS
// characterization (AWCT) to extract window substrings.
func (b Bits) Slice(lo, hi int) Bits {
	if lo < 0 || hi > b.width || lo > hi {
		panic(fmt.Sprintf("bitstring: slice [%d,%d) out of range for width %d", lo, hi, b.width))
	}
	return New(b.value>>uint(lo), hi-lo)
}

// Concat returns the string formed by o occupying the high bits above b:
// bit i of b stays bit i, bit j of o becomes bit b.width+j.
func (b Bits) Concat(o Bits) Bits {
	if b.width+o.width > MaxWidth {
		panic(fmt.Sprintf("bitstring: concat width %d exceeds %d", b.width+o.width, MaxWidth))
	}
	return New(b.value|o.value<<uint(b.width), b.width+o.width)
}

// String renders b most-significant bit first, e.g. New(0b00101,5) → "00101".
func (b Bits) String() string {
	if b.width == 0 {
		return ""
	}
	var sb strings.Builder
	sb.Grow(b.width)
	for i := b.width - 1; i >= 0; i-- {
		if b.value>>uint(i)&1 == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Less orders Bits by width, then by value. It provides a stable total
// order for deterministic iteration over maps keyed by Bits.
func (b Bits) Less(o Bits) bool {
	if b.width != o.width {
		return b.width < o.width
	}
	return b.value < o.value
}

func (b Bits) mustMatch(o Bits) {
	if b.width != o.width {
		panic(fmt.Sprintf("bitstring: width mismatch %d vs %d", b.width, o.width))
	}
}

func mask(width int) uint64 {
	if width == 64 {
		return ^uint64(0)
	}
	return 1<<uint(width) - 1
}

// All returns every width-wide bit string in ascending numeric order.
// It panics for widths above 30 to guard against accidental exponential
// allocations; characterization code that needs larger registers must use
// windowed techniques instead (see the paper's Appendix A).
func All(width int) []Bits {
	if width > 30 {
		panic(fmt.Sprintf("bitstring: All(%d) would allocate 2^%d values", width, width))
	}
	out := make([]Bits, 1<<uint(width))
	for v := range out {
		out[v] = New(uint64(v), width)
	}
	return out
}

// AllByHammingWeight returns every width-wide bit string ordered by
// ascending Hamming weight, with numeric order breaking ties. This is the
// x-axis ordering used by the paper's basis-state figures (Figs 4, 6, 9,
// 11, 13).
func AllByHammingWeight(width int) []Bits {
	out := All(width)
	sort.SliceStable(out, func(i, j int) bool {
		wi, wj := out[i].HammingWeight(), out[j].HammingWeight()
		if wi != wj {
			return wi < wj
		}
		return out[i].value < out[j].value
	})
	return out
}

package bitstring

import "testing"

// FuzzParse asserts Parse never panics and that accepted strings
// round-trip through String exactly.
func FuzzParse(f *testing.F) {
	f.Add("0")
	f.Add("10101")
	f.Add("1111111111111111111111111111111111111111111111111111111111111111")
	f.Add("")
	f.Add("2")
	f.Fuzz(func(t *testing.T, s string) {
		b, err := Parse(s)
		if err != nil {
			return
		}
		if got := b.String(); got != s {
			t.Fatalf("round-trip %q -> %q", s, got)
		}
		if b.Width() != len(s) {
			t.Fatalf("width %d for %q", b.Width(), s)
		}
		if b.Invert().Invert() != b {
			t.Fatal("double inversion changed value")
		}
	})
}

package quantum

import "sync"

// Per-width free lists for the two large buffers of the trial loop: the
// 2^n-amplitude state vector a trajectory evolves, and the 2^n-entry
// prefix array its sampler binary-searches. The backend acquires one of
// each per runShots call and releases them when the loop ends, so a
// million-shot run allocates O(1) large buffers instead of one per
// trajectory. sync.Pool keeps the lists per-P and GC-aware, which is
// exactly the lifecycle wanted here: hot servers keep buffers warm, idle
// processes give them back.
var (
	statePools   [MaxQubits + 1]sync.Pool
	samplerPools [MaxQubits + 1]sync.Pool
	probPools    [MaxQubits + 1]sync.Pool
)

// AcquireState returns an n-qubit ground state |00…0⟩, reusing a pooled
// amplitude buffer when one is available. The caller owns the state
// until it passes it to ReleaseState; never release a state that other
// code may still hold.
func AcquireState(n int) *State {
	if n < 1 || n > MaxQubits {
		return NewState(n) // delegate the panic with its range message
	}
	if v := statePools[n].Get(); v != nil {
		s := v.(*State)
		s.released = false
		s.Reset()
		return s
	}
	return NewState(n)
}

// ReleaseState returns s's buffers to the per-width pool. s must not be
// used afterwards. Releasing the same state twice is a no-op: panic and
// error unwinding can run overlapping cleanup paths, and a double Put
// would hand one buffer to two future acquirers.
func ReleaseState(s *State) {
	if s == nil || s.n < 1 || s.n > MaxQubits || s.released {
		return
	}
	s.released = true
	statePools[s.n].Put(s)
}

// AcquireProbs returns a 2^n-entry probability buffer for
// State.ProbabilitiesInto, reusing a pooled one when available. The
// contents are unspecified; callers overwrite the whole buffer.
func AcquireProbs(n int) []float64 {
	if n >= 1 && n <= MaxQubits {
		if v := probPools[n].Get(); v != nil {
			return *(v.(*[]float64))
		}
	}
	return make([]float64, 1<<uint(n))
}

// ReleaseProbs returns a buffer obtained from AcquireProbs to the pool.
// The buffer must not be used afterwards.
func ReleaseProbs(n int, p []float64) {
	if n < 1 || n > MaxQubits || len(p) != 1<<uint(n) {
		return
	}
	probPools[n].Put(&p)
}

// AcquireSampler returns a Sampler holding the CDF of s, reusing a
// pooled prefix buffer of the same width when one is available.
func AcquireSampler(s *State) *Sampler {
	if s.n >= 1 && s.n <= MaxQubits {
		if v := samplerPools[s.n].Get(); v != nil {
			sp := v.(*Sampler)
			sp.released = false
			sp.Reset(s)
			return sp
		}
	}
	return NewSampler(s)
}

// ReleaseSampler returns sp's prefix buffer to the per-width pool. sp
// must not be used afterwards. Like ReleaseState, a second release of
// the same sampler is a safe no-op rather than a double Put.
func ReleaseSampler(sp *Sampler) {
	if sp == nil || sp.n < 1 || sp.n > MaxQubits || sp.released {
		return
	}
	sp.released = true
	samplerPools[sp.n].Put(sp)
}

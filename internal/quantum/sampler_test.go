package quantum

import (
	"math"
	"math/rand"
	"testing"

	"biasmit/internal/bitstring"
)

// randomState fills an n-qubit state with amplitudes drawn from rng and
// scales it so its total probability mass is exactly mass (1 for a
// physical state; below 1 to exercise the round-off tail where a uniform
// draw can land at or beyond the accumulated total).
func randomMassState(n int, rng *rand.Rand, mass float64) *State {
	s := NewState(n)
	for i := range s.amps {
		s.amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	norm := math.Sqrt(s.Norm())
	f := complex(math.Sqrt(mass)/norm, 0)
	for i := range s.amps {
		s.amps[i] *= f
	}
	return s
}

// drawPair runs the linear-scan and CDF samplers over the same rng
// stream and fails on the first divergence.
func drawPair(t *testing.T, s *State, sp *Sampler, seed int64, draws int) {
	t.Helper()
	rngA := rand.New(rand.NewSource(seed))
	rngB := rand.New(rand.NewSource(seed))
	for i := 0; i < draws; i++ {
		want := s.Sample(rngA)
		got := sp.Sample(rngB)
		if want != got {
			t.Fatalf("draw %d: linear scan %s, CDF sampler %s", i, want, got)
		}
	}
}

func TestSamplerMatchesLinearScan(t *testing.T) {
	for _, n := range []int{1, 2, 4, 6, 9} {
		for seed := int64(1); seed <= 5; seed++ {
			rng := rand.New(rand.NewSource(seed * 100))
			s := randomMassState(n, rng, 1)
			drawPair(t, s, NewSampler(s), seed, 200)
		}
	}
}

// TestSamplerRoundOffTail forces draws past the total mass: with mass
// well below 1 most uniforms land beyond the final prefix entry, where
// both samplers must return the last basis state.
func TestSamplerRoundOffTail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomMassState(3, rng, 0.25)
	sp := NewSampler(s)
	drawPair(t, s, sp, 11, 200)

	// Directly past the mass: u = 0.9 ≥ 0.25 must hit the last state.
	last := bitstring.New(uint64(len(s.amps)-1), 3)
	if got := sp.sampleU(0.9); got != last {
		t.Fatalf("u beyond total mass: got %s, want %s", got, last)
	}
	// u exactly equal to the final prefix entry is NOT strictly below it,
	// so it also falls through to the last state.
	if got := sp.sampleU(sp.prefix[len(sp.prefix)-1]); got != last {
		t.Fatalf("u == total mass: got %s, want %s", got, last)
	}
}

func TestSamplerZeroAmplitudeRuns(t *testing.T) {
	// A state with long runs of zero amplitude produces repeated prefix
	// values; the strict `u < prefix[i]` rule must skip them exactly as
	// the linear scan does.
	s := NewState(4)
	s.amps[0] = 0
	s.amps[3] = complex(math.Sqrt(0.5), 0)
	s.amps[12] = complex(0, math.Sqrt(0.5))
	sp := NewSampler(s)
	drawPair(t, s, sp, 3, 500)
	if got := sp.sampleU(0); got != bitstring.New(3, 4) {
		t.Fatalf("u=0 through a zero run: got %s, want 0011", got)
	}
}

func TestSamplerResetReusesBuffer(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomMassState(5, rng, 1)
	sp := NewSampler(s)
	buf := &sp.prefix[0]
	s2 := randomMassState(5, rng, 1)
	sp.Reset(s2)
	if &sp.prefix[0] != buf {
		t.Fatal("Reset at equal width reallocated the prefix buffer")
	}
	drawPair(t, s2, sp, 9, 100)
}

func TestProbabilitiesInto(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := randomMassState(4, rng, 1)
	want := s.Probabilities()
	dst := make([]float64, len(want))
	s.ProbabilitiesInto(dst)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("index %d: ProbabilitiesInto %v, Probabilities %v", i, dst[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	s.ProbabilitiesInto(make([]float64, 3))
}

func TestAcquireReleaseState(t *testing.T) {
	s := AcquireState(3)
	if s.NumQubits() != 3 || s.amps[0] != 1 {
		t.Fatal("acquired state is not the ground state")
	}
	s.Apply1(H, 0)
	ReleaseState(s)
	s2 := AcquireState(3)
	if s2.amps[0] != 1 || s2.Norm() != 1 {
		t.Fatal("recycled state was not reset to ground")
	}
	for i := 1; i < len(s2.amps); i++ {
		if s2.amps[i] != 0 {
			t.Fatalf("recycled state has residual amplitude at %d", i)
		}
	}
	ReleaseState(s2)
}

// sampleU is a test hook: sample with an explicit uniform value instead
// of drawing from an rng.
func (sp *Sampler) sampleU(u float64) bitstring.Bits {
	rng := rand.New(&fixedUniform{u: u})
	return sp.Sample(rng)
}

// fixedUniform is a rand.Source whose Float64 resolves to a chosen u.
// rand.Rand.Float64 computes float64(Int63()) / (1<<63), so feeding
// u*(1<<63) reproduces u bit-exactly whenever u*(1<<63) is an integer
// representable in a float64 — true for any u produced by float64
// arithmetic on values ≥ 2^-10, which covers the prefix sums fed here.
type fixedUniform struct{ u float64 }

func (f *fixedUniform) Int63() int64 {
	return int64(f.u * (1 << 63))
}
func (f *fixedUniform) Seed(int64) {}

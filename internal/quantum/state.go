package quantum

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"biasmit/internal/bitstring"
)

// MaxQubits bounds register size; a dense state vector for n qubits
// allocates 2^n complex128 values (16 MiB at n=20).
const MaxQubits = 24

// State is a dense n-qubit state vector. Construct with NewState; the
// zero value is not usable.
type State struct {
	n    int
	amps []complex128
	// released marks a state currently owned by the pool; ReleaseState
	// sets it so overlapping cleanup paths cannot double-Put.
	released bool
}

// NewState returns the n-qubit computational ground state |00…0⟩.
func NewState(n int) *State {
	if n < 1 || n > MaxQubits {
		panic(fmt.Sprintf("quantum: qubit count %d out of range [1,%d]", n, MaxQubits))
	}
	s := &State{n: n, amps: make([]complex128, 1<<uint(n))}
	s.amps[0] = 1
	return s
}

// NewBasisState returns |b⟩ for the given classical string.
func NewBasisState(b bitstring.Bits) *State {
	s := NewState(b.Width())
	s.amps[0] = 0
	s.amps[b.Uint64()] = 1
	return s
}

// NumQubits returns the register size.
func (s *State) NumQubits() int { return s.n }

// Clone returns a deep copy of s.
func (s *State) Clone() *State {
	c := &State{n: s.n, amps: make([]complex128, len(s.amps))}
	copy(c.amps, s.amps)
	return c
}

// Amplitude returns ⟨b|s⟩.
func (s *State) Amplitude(b bitstring.Bits) complex128 {
	if b.Width() != s.n {
		panic(fmt.Sprintf("quantum: basis width %d does not match register %d", b.Width(), s.n))
	}
	return s.amps[b.Uint64()]
}

// Norm returns ⟨s|s⟩, which is 1 for a normalized state.
func (s *State) Norm() float64 {
	var t float64
	for _, a := range s.amps {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return t
}

// Normalize rescales s to unit norm. It panics on a zero vector, which
// can only arise from a programming error (projecting onto an impossible
// outcome).
func (s *State) Normalize() {
	n := math.Sqrt(s.Norm())
	if n == 0 {
		panic("quantum: normalizing zero state")
	}
	inv := complex(1/n, 0)
	for i := range s.amps {
		s.amps[i] *= inv
	}
}

func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("quantum: qubit %d out of range [0,%d)", q, s.n))
	}
}

// Apply1 applies the single-qubit gate m to qubit q in place.
func (s *State) Apply1(m Matrix2, q int) {
	s.checkQubit(q)
	stride := uint64(1) << uint(q)
	size := uint64(len(s.amps))
	for base := uint64(0); base < size; base += stride * 2 {
		for off := uint64(0); off < stride; off++ {
			i0 := base + off
			i1 := i0 + stride
			a0, a1 := s.amps[i0], s.amps[i1]
			s.amps[i0] = m[0][0]*a0 + m[0][1]*a1
			s.amps[i1] = m[1][0]*a0 + m[1][1]*a1
		}
	}
}

// Apply2 applies the two-qubit gate m to qubits (q0, q1) in place, where
// m is expressed in the basis |q1 q0⟩ ∈ {00,01,10,11}.
func (s *State) Apply2(m Matrix4, q0, q1 int) {
	s.checkQubit(q0)
	s.checkQubit(q1)
	if q0 == q1 {
		panic("quantum: Apply2 with identical qubits")
	}
	b0 := uint64(1) << uint(q0)
	b1 := uint64(1) << uint(q1)
	size := uint64(len(s.amps))
	for i := uint64(0); i < size; i++ {
		if i&b0 != 0 || i&b1 != 0 {
			continue // visit each 4-amplitude block once, from its 00 corner
		}
		i00 := i
		i01 := i | b0
		i10 := i | b1
		i11 := i | b0 | b1
		a := [4]complex128{s.amps[i00], s.amps[i01], s.amps[i10], s.amps[i11]}
		var r [4]complex128
		for row := 0; row < 4; row++ {
			r[row] = m[row][0]*a[0] + m[row][1]*a[1] + m[row][2]*a[2] + m[row][3]*a[3]
		}
		s.amps[i00], s.amps[i01], s.amps[i10], s.amps[i11] = r[0], r[1], r[2], r[3]
	}
}

// ApplyCNOT applies a controlled-X with the given control and target.
func (s *State) ApplyCNOT(control, target int) {
	s.checkQubit(control)
	s.checkQubit(target)
	if control == target {
		panic("quantum: CNOT with identical qubits")
	}
	cb := uint64(1) << uint(control)
	tb := uint64(1) << uint(target)
	size := uint64(len(s.amps))
	for i := uint64(0); i < size; i++ {
		if i&cb != 0 && i&tb == 0 {
			j := i | tb
			s.amps[i], s.amps[j] = s.amps[j], s.amps[i]
		}
	}
}

// ApplyCZ applies a controlled-Z between qubits a and b.
func (s *State) ApplyCZ(a, b int) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic("quantum: CZ with identical qubits")
	}
	ab := uint64(1)<<uint(a) | uint64(1)<<uint(b)
	for i := range s.amps {
		if uint64(i)&ab == ab {
			s.amps[i] = -s.amps[i]
		}
	}
}

// ApplySWAP exchanges qubits a and b.
func (s *State) ApplySWAP(a, b int) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic("quantum: SWAP with identical qubits")
	}
	ba := uint64(1) << uint(a)
	bb := uint64(1) << uint(b)
	size := uint64(len(s.amps))
	for i := uint64(0); i < size; i++ {
		if i&ba != 0 && i&bb == 0 {
			j := i ^ ba ^ bb
			s.amps[i], s.amps[j] = s.amps[j], s.amps[i]
		}
	}
}

// ApplyControlled applies gate m to target when control is |1⟩.
func (s *State) ApplyControlled(m Matrix2, control, target int) {
	s.checkQubit(control)
	s.checkQubit(target)
	if control == target {
		panic("quantum: controlled gate with identical qubits")
	}
	cb := uint64(1) << uint(control)
	tb := uint64(1) << uint(target)
	size := uint64(len(s.amps))
	for i := uint64(0); i < size; i++ {
		if i&cb != 0 && i&tb == 0 {
			i0 := i
			i1 := i | tb
			a0, a1 := s.amps[i0], s.amps[i1]
			s.amps[i0] = m[0][0]*a0 + m[0][1]*a1
			s.amps[i1] = m[1][0]*a0 + m[1][1]*a1
		}
	}
}

// Prob1 returns the probability that measuring qubit q yields 1.
func (s *State) Prob1(q int) float64 {
	s.checkQubit(q)
	b := uint64(1) << uint(q)
	var p float64
	for i, a := range s.amps {
		if uint64(i)&b != 0 {
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// Probabilities returns the full measurement distribution over all 2^n
// basis states, indexed by the packed basis value.
func (s *State) Probabilities() []float64 {
	p := make([]float64, len(s.amps))
	for i, a := range s.amps {
		p[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return p
}

// Sample draws one measurement outcome without collapsing the state.
// This is the correct semantics for the NISQ trial loop: each trial
// re-prepares the state, so sampling repeatedly from the final state of
// one (noisy) trajectory is equivalent to measuring fresh copies.
func (s *State) Sample(rng *rand.Rand) bitstring.Bits {
	u := rng.Float64()
	var acc float64
	for i, a := range s.amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
		if u < acc {
			return bitstring.New(uint64(i), s.n)
		}
	}
	// Floating-point round-off: return the last basis state.
	return bitstring.New(uint64(len(s.amps)-1), s.n)
}

// MeasureAll performs a projective measurement of every qubit, collapsing
// s onto the sampled basis state, and returns the outcome.
func (s *State) MeasureAll(rng *rand.Rand) bitstring.Bits {
	out := s.Sample(rng)
	for i := range s.amps {
		s.amps[i] = 0
	}
	s.amps[out.Uint64()] = 1
	return out
}

// ApplyAmplitudeDamping applies one stochastic trajectory step of the
// amplitude-damping (T1 relaxation) channel with decay probability gamma
// on qubit q. With probability gamma·P(q=1) the qubit jumps to |0⟩
// (Kraus K1); otherwise the no-jump evolution K0 rescales the |1⟩
// amplitudes. Averaged over trajectories this reproduces the channel
// exactly; it is the physical mechanism behind the paper's 1→0
// measurement bias.
func (s *State) ApplyAmplitudeDamping(q int, gamma float64, rng *rand.Rand) {
	s.checkQubit(q)
	if gamma < 0 || gamma > 1 {
		panic(fmt.Sprintf("quantum: damping gamma %v out of [0,1]", gamma))
	}
	if gamma == 0 {
		return
	}
	p1 := s.Prob1(q)
	pJump := gamma * p1
	b := uint64(1) << uint(q)
	if rng.Float64() < pJump {
		// Jump: |x…1…⟩ → |x…0…⟩, amplitude moves to the relaxed index.
		for i := range s.amps {
			if uint64(i)&b != 0 {
				s.amps[uint64(i)^b] = s.amps[i]
				s.amps[i] = 0
			}
		}
	} else {
		// No jump: K0 = diag(1, √(1−γ)).
		f := complex(math.Sqrt(1-gamma), 0)
		for i := range s.amps {
			if uint64(i)&b != 0 {
				s.amps[i] *= f
			}
		}
	}
	s.Normalize()
}

// ApplyPauli applies Pauli p to qubit q (a stochastic gate-error kick).
func (s *State) ApplyPauli(p Pauli, q int) {
	if p == PauliI {
		return
	}
	s.Apply1(p.Matrix(), q)
}

// Fidelity returns |⟨s|o⟩|², the overlap between two pure states.
func (s *State) Fidelity(o *State) float64 {
	if s.n != o.n {
		panic("quantum: fidelity between different register sizes")
	}
	var ip complex128
	for i, a := range s.amps {
		ip += cmplx.Conj(a) * o.amps[i]
	}
	return real(ip)*real(ip) + imag(ip)*imag(ip)
}

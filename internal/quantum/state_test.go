package quantum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"biasmit/internal/bitstring"
)

const tol = 1e-12

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewStateIsGround(t *testing.T) {
	s := NewState(3)
	if s.NumQubits() != 3 {
		t.Fatalf("NumQubits = %d", s.NumQubits())
	}
	if got := s.Amplitude(bitstring.Zeros(3)); got != 1 {
		t.Errorf("amp(000) = %v", got)
	}
	if !approx(s.Norm(), 1) {
		t.Errorf("norm = %v", s.Norm())
	}
}

func TestNewBasisState(t *testing.T) {
	b := bitstring.MustParse("101")
	s := NewBasisState(b)
	if got := s.Amplitude(b); got != 1 {
		t.Errorf("amp(101) = %v", got)
	}
	if got := s.Amplitude(bitstring.Zeros(3)); got != 0 {
		t.Errorf("amp(000) = %v", got)
	}
}

func TestXInvertsBasisState(t *testing.T) {
	// Fig 2(c): X inverts the qubit state.
	s := NewState(2)
	s.Apply1(X, 0)
	if got := s.Amplitude(bitstring.MustParse("01")); got != 1 {
		t.Errorf("after X on q0, amp(01) = %v", got)
	}
	s.Apply1(X, 1)
	if got := s.Amplitude(bitstring.MustParse("11")); got != 1 {
		t.Errorf("after X on q1, amp(11) = %v", got)
	}
}

func TestHadamardCreatesEqualSuperposition(t *testing.T) {
	s := NewState(1)
	s.Apply1(H, 0)
	p := s.Probabilities()
	if !approx(p[0], 0.5) || !approx(p[1], 0.5) {
		t.Errorf("probabilities = %v", p)
	}
	s.Apply1(H, 0) // H is self-inverse
	if !approx(real(s.Amplitude(bitstring.Zeros(1))), 1) {
		t.Errorf("HH|0> != |0>: %v", s.amps)
	}
}

func TestUniformSuperpositionAllQubits(t *testing.T) {
	// ESCT preparation: H on every qubit yields 1/2^n for every basis state.
	const n = 5
	s := NewState(n)
	for q := 0; q < n; q++ {
		s.Apply1(H, q)
	}
	want := 1.0 / float64(1<<n)
	for i, p := range s.Probabilities() {
		if !approx(p, want) {
			t.Fatalf("P(%d) = %v, want %v", i, p, want)
		}
	}
}

func TestCNOT(t *testing.T) {
	// |10⟩ (q1=1): CNOT(control=1,target=0) → |11⟩.
	s := NewBasisState(bitstring.MustParse("10"))
	s.ApplyCNOT(1, 0)
	if got := s.Amplitude(bitstring.MustParse("11")); got != 1 {
		t.Errorf("CNOT|10> amp(11) = %v", got)
	}
	// Control 0 leaves target alone.
	s2 := NewBasisState(bitstring.MustParse("01"))
	s2.ApplyCNOT(1, 0)
	if got := s2.Amplitude(bitstring.MustParse("01")); got != 1 {
		t.Errorf("CNOT|01> amp(01) = %v", got)
	}
}

func TestGHZState(t *testing.T) {
	// H + CNOT chain yields (|000…⟩+|111…⟩)/√2 — the paper's GHZ-5 probe.
	const n = 5
	s := NewState(n)
	s.Apply1(H, 0)
	for q := 0; q < n-1; q++ {
		s.ApplyCNOT(q, q+1)
	}
	p := s.Probabilities()
	if !approx(p[0], 0.5) || !approx(p[(1<<n)-1], 0.5) {
		t.Fatalf("GHZ endpoints: p0=%v p31=%v", p[0], p[(1<<n)-1])
	}
	for i := 1; i < (1<<n)-1; i++ {
		if p[i] > tol {
			t.Fatalf("GHZ leaked mass to %d: %v", i, p[i])
		}
	}
}

func TestCZ(t *testing.T) {
	s := NewState(2)
	s.Apply1(H, 0)
	s.Apply1(H, 1)
	s.ApplyCZ(0, 1)
	if got := s.Amplitude(bitstring.MustParse("11")); !approx(real(got), -0.5) {
		t.Errorf("CZ phase: %v", got)
	}
	if got := s.Amplitude(bitstring.MustParse("01")); !approx(real(got), 0.5) {
		t.Errorf("CZ should not touch |01>: %v", got)
	}
}

func TestSWAP(t *testing.T) {
	s := NewBasisState(bitstring.MustParse("01"))
	s.ApplySWAP(0, 1)
	if got := s.Amplitude(bitstring.MustParse("10")); got != 1 {
		t.Errorf("SWAP|01> = %v", s.amps)
	}
}

func TestApplyControlledMatchesCNOT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s1 := randomState(3, rng)
	s2 := s1.Clone()
	s1.ApplyCNOT(2, 0)
	s2.ApplyControlled(X, 2, 0)
	if f := s1.Fidelity(s2); !approx(f, 1) {
		t.Errorf("controlled-X vs CNOT fidelity = %v", f)
	}
}

func TestApply2MatchesComposition(t *testing.T) {
	// A 4×4 CZ matrix must agree with ApplyCZ.
	cz := Matrix4{}
	for i := 0; i < 4; i++ {
		cz[i][i] = 1
	}
	cz[3][3] = -1
	rng := rand.New(rand.NewSource(6))
	s1 := randomState(3, rng)
	s2 := s1.Clone()
	s1.ApplyCZ(0, 2)
	s2.Apply2(cz, 0, 2)
	if f := s1.Fidelity(s2); !approx(f, 1) {
		t.Errorf("Apply2 CZ fidelity = %v", f)
	}
}

func TestRotationGates(t *testing.T) {
	// RX(π) = -iX: flips |0⟩ to |1⟩ up to phase.
	s := NewState(1)
	s.Apply1(RX(math.Pi), 0)
	if p := s.Prob1(0); !approx(p, 1) {
		t.Errorf("RX(pi) P(1) = %v", p)
	}
	// RY(π/2)|0> has equal probabilities.
	s2 := NewState(1)
	s2.Apply1(RY(math.Pi/2), 0)
	if p := s2.Prob1(0); !approx(p, 0.5) {
		t.Errorf("RY(pi/2) P(1) = %v", p)
	}
	// RZ only adds phase on basis states.
	s3 := NewState(1)
	s3.Apply1(RZ(1.3), 0)
	if p := s3.Prob1(0); !approx(p, 0) {
		t.Errorf("RZ changed probabilities: %v", p)
	}
}

func TestGateUnitarity(t *testing.T) {
	gates := map[string]Matrix2{
		"I": I, "X": X, "Y": Y, "Z": Z, "H": H, "S": S, "Sdg": Sdg, "T": T, "Tdg": Tdg,
		"RX": RX(0.7), "RY": RY(-1.2), "RZ": RZ(2.9), "U3": U3(0.3, 1.1, -0.4),
	}
	for name, g := range gates {
		if !g.IsUnitary(1e-12) {
			t.Errorf("%s is not unitary", name)
		}
	}
}

func TestPauliMatrices(t *testing.T) {
	for _, p := range []Pauli{PauliI, PauliX, PauliY, PauliZ} {
		if !p.Matrix().IsUnitary(1e-12) {
			t.Errorf("%v not unitary", p)
		}
	}
	if PauliX.String() != "X" || PauliI.String() != "I" {
		t.Error("Pauli String broken")
	}
}

func TestProb1(t *testing.T) {
	s := NewBasisState(bitstring.MustParse("101"))
	if !approx(s.Prob1(0), 1) || !approx(s.Prob1(1), 0) || !approx(s.Prob1(2), 1) {
		t.Errorf("Prob1 = %v %v %v", s.Prob1(0), s.Prob1(1), s.Prob1(2))
	}
}

func TestSampleMatchesProbabilities(t *testing.T) {
	s := NewState(2)
	s.Apply1(H, 0)
	s.Apply1(RY(math.Pi/3), 1)
	rng := rand.New(rand.NewSource(11))
	counts := make(map[uint64]int)
	const trials = 100000
	for i := 0; i < trials; i++ {
		counts[s.Sample(rng).Uint64()]++
	}
	p := s.Probabilities()
	for i := range p {
		got := float64(counts[uint64(i)]) / trials
		if math.Abs(got-p[i]) > 0.01 {
			t.Errorf("P(%d): sampled %v, exact %v", i, got, p[i])
		}
	}
}

func TestMeasureAllCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := NewState(3)
	for q := 0; q < 3; q++ {
		s.Apply1(H, q)
	}
	out := s.MeasureAll(rng)
	if got := s.Amplitude(out); got != 1 {
		t.Errorf("post-measurement amp(%v) = %v", out, got)
	}
	// Re-measuring must give the same outcome.
	if again := s.MeasureAll(rng); again != out {
		t.Errorf("repeat measurement %v != %v", again, out)
	}
}

func TestAmplitudeDampingFullDecay(t *testing.T) {
	// gamma=1 forces |1⟩ → |0⟩ always: the extreme of the paper's
	// relaxation-during-readout mechanism.
	rng := rand.New(rand.NewSource(17))
	s := NewBasisState(bitstring.MustParse("1"))
	s.ApplyAmplitudeDamping(0, 1, rng)
	if p := s.Prob1(0); !approx(p, 0) {
		t.Errorf("gamma=1 left P(1)=%v", p)
	}
}

func TestAmplitudeDampingChannelAverage(t *testing.T) {
	// Averaged over trajectories, P(1) of an initial |1⟩ must decay to
	// 1-gamma.
	const gamma = 0.3
	const trials = 20000
	rng := rand.New(rand.NewSource(19))
	var sum float64
	for i := 0; i < trials; i++ {
		s := NewBasisState(bitstring.MustParse("1"))
		s.ApplyAmplitudeDamping(0, gamma, rng)
		sum += s.Prob1(0)
	}
	got := sum / trials
	if math.Abs(got-(1-gamma)) > 0.01 {
		t.Errorf("mean P(1) = %v, want %v", got, 1-gamma)
	}
}

func TestAmplitudeDampingPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := randomState(4, rng)
	for i := 0; i < 10; i++ {
		s.ApplyAmplitudeDamping(i%4, 0.2, rng)
		if !approx(s.Norm(), 1) {
			t.Fatalf("norm drifted to %v", s.Norm())
		}
	}
}

func TestAmplitudeDampingGroundStateUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	s := NewState(2)
	s.ApplyAmplitudeDamping(0, 0.9, rng)
	if got := s.Amplitude(bitstring.Zeros(2)); !approx(real(got), 1) {
		t.Errorf("damping disturbed |00>: %v", got)
	}
}

func TestFidelity(t *testing.T) {
	a := NewState(2)
	b := NewState(2)
	if f := a.Fidelity(b); !approx(f, 1) {
		t.Errorf("identical fidelity = %v", f)
	}
	b.Apply1(X, 0)
	if f := a.Fidelity(b); !approx(f, 0) {
		t.Errorf("orthogonal fidelity = %v", f)
	}
}

func TestInvalidArgumentsPanic(t *testing.T) {
	cases := []func(){
		func() { NewState(0) },
		func() { NewState(MaxQubits + 1) },
		func() { NewState(2).Apply1(X, 2) },
		func() { NewState(2).ApplyCNOT(0, 0) },
		func() { NewState(2).ApplyCZ(1, 1) },
		func() { NewState(2).ApplySWAP(0, 0) },
		func() { NewState(2).ApplyAmplitudeDamping(0, 1.5, rand.New(rand.NewSource(1))) },
		func() { NewState(3).Apply2(Matrix4{}, 1, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: every unitary gate application preserves the norm.
func TestQuickUnitaryPreservesNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64, thetaRaw uint16, q0raw, q1raw uint8) bool {
		localRng := rand.New(rand.NewSource(seed))
		const n = 4
		s := randomState(n, localRng)
		theta := float64(thetaRaw) / 1000
		q0 := int(q0raw) % n
		q1 := int(q1raw) % n
		s.Apply1(H, q0)
		s.Apply1(RX(theta), q0)
		s.Apply1(RZ(-theta), q1)
		if q0 != q1 {
			s.ApplyCNOT(q0, q1)
			s.ApplyCZ(q0, q1)
			s.ApplySWAP(q0, q1)
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: X on every qubit maps |b⟩ to |~b⟩ — the inversion identity
// underlying Invert-and-Measure.
func TestQuickFullInversionMapsToComplement(t *testing.T) {
	f := func(v uint8) bool {
		b := bitstring.New(uint64(v), 5)
		s := NewBasisState(b)
		for q := 0; q < 5; q++ {
			s.Apply1(X, q)
		}
		return approx(real(s.Amplitude(b.Invert())), 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64, Rand: rand.New(rand.NewSource(37))}); err != nil {
		t.Error(err)
	}
}

// Property: applying an arbitrary inversion string via X gates maps |b⟩
// to |b XOR s⟩.
func TestQuickInversionStringSemantics(t *testing.T) {
	f := func(v, inv uint8) bool {
		b := bitstring.New(uint64(v), 6)
		s6 := bitstring.New(uint64(inv), 6)
		st := NewBasisState(b)
		for q := 0; q < 6; q++ {
			if s6.Bit(q) {
				st.Apply1(X, q)
			}
		}
		return approx(real(st.Amplitude(b.Xor(s6))), 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Error(err)
	}
}

func randomState(n int, rng *rand.Rand) *State {
	s := NewState(n)
	for i := range s.amps {
		s.amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	s.Normalize()
	return s
}

package quantum

import (
	"fmt"
	"math/rand"
	"sort"

	"biasmit/internal/bitstring"
)

// Sampler is a cumulative-probability (CDF) view of a state, built once
// per trajectory so that a batch of shots pays O(2^n) a single time and
// O(log 2^n) = O(n) per shot, instead of the O(2^n) linear scan
// State.Sample performs on every draw.
//
// Stream identity: Sampler.Sample is guaranteed to be byte-identical to
// State.Sample for the same *rand.Rand stream. Both draw exactly one
// rng.Float64 per shot; the prefix array is accumulated left to right in
// the same order as Sample's running sum, so every partial sum is the
// same IEEE-754 value Sample would have compared against; and the
// selection rule is "first index i with u < prefix[i]" — exactly
// Sample's `u < acc` tie semantics. The accumulated terms are
// non-negative, so the prefix array is non-decreasing and the predicate
// u < prefix[i] is monotone in i, which makes binary search return the
// same index the linear scan would. When u lands at or beyond the total
// accumulated mass (floating-point round-off), both return the last
// basis state.
//
// A Sampler does not alias the state it was built from; the state may be
// mutated or released afterwards. Construct with NewSampler or recycle
// one with Reset; the zero value is not usable.
type Sampler struct {
	n      int
	prefix []float64
	// released marks a sampler currently owned by the pool; see
	// State.released.
	released bool
}

// NewSampler builds the CDF of s.
func NewSampler(s *State) *Sampler {
	sp := &Sampler{}
	sp.Reset(s)
	return sp
}

// Reset rebuilds the CDF from s, reusing the prefix buffer when the
// widths match (the per-trajectory refill path of the backend trial
// loop).
func (sp *Sampler) Reset(s *State) {
	sp.n = s.n
	if cap(sp.prefix) >= len(s.amps) {
		sp.prefix = sp.prefix[:len(s.amps)]
	} else {
		sp.prefix = make([]float64, len(s.amps))
	}
	var acc float64
	for i, a := range s.amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
		sp.prefix[i] = acc
	}
}

// NumQubits returns the register width the CDF was built over.
func (sp *Sampler) NumQubits() int { return sp.n }

// Sample draws one measurement outcome. See the type comment for the
// stream-identity contract with State.Sample.
func (sp *Sampler) Sample(rng *rand.Rand) bitstring.Bits {
	if sp.prefix == nil {
		panic("quantum: Sample on zero Sampler")
	}
	u := rng.Float64()
	// First index with u < prefix[i] — strict, matching State.Sample's
	// `u < acc`. The prefix is non-decreasing, so the predicate is
	// monotone and Search lands on the same index the linear scan would.
	i := sort.Search(len(sp.prefix), func(j int) bool { return u < sp.prefix[j] })
	if i >= len(sp.prefix) {
		// Floating-point round-off: u ≥ total mass ⇒ last basis state,
		// matching State.Sample's fallthrough.
		i = len(sp.prefix) - 1
	}
	return bitstring.New(uint64(i), sp.n)
}

// ProbabilitiesInto writes the full measurement distribution over all
// 2^n basis states into dst, indexed by packed basis value. It is the
// allocation-free form of Probabilities for callers that sit in loops;
// dst must have length exactly 2^n.
func (s *State) ProbabilitiesInto(dst []float64) {
	if len(dst) != len(s.amps) {
		panic(fmt.Sprintf("quantum: ProbabilitiesInto dst length %d for 2^%d amplitudes", len(dst), s.n))
	}
	for i, a := range s.amps {
		dst[i] = real(a)*real(a) + imag(a)*imag(a)
	}
}

// Reset returns s to the computational ground state |00…0⟩ in place,
// the re-preparation step of the NISQ trial loop. Combined with
// AcquireState/ReleaseState it lets the backend reuse one amplitude
// buffer across every trajectory of a run.
func (s *State) Reset() {
	for i := range s.amps {
		s.amps[i] = 0
	}
	s.amps[0] = 1
}

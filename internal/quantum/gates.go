// Package quantum implements a dense state-vector simulator for n-qubit
// registers, the substrate every experiment in this reproduction runs on.
//
// The paper's measurements were taken on IBM superconducting hardware;
// with no quantum ecosystem available in Go, this package provides the
// ideal quantum mechanics (superposition, entanglement, unitary gates,
// projective measurement) and the stochastic noise jumps (Pauli kicks,
// amplitude-damping trajectories) that the device models in
// internal/device compose into machine-faithful behaviour.
//
// Amplitudes are stored in the computational basis with qubit q occupying
// bit q of the index (little-endian): index 0b101 means qubit 0 and
// qubit 2 are |1⟩. This matches the bitstring package convention.
package quantum

import "math"

// Matrix2 is a single-qubit operator in the computational basis:
// [ a b ]   acting as |0⟩ → a|0⟩ + c|1⟩,
// [ c d ]             |1⟩ → b|0⟩ + d|1⟩.
type Matrix2 [2][2]complex128

// Matrix4 is a two-qubit operator in the basis |q1 q0⟩ = {00,01,10,11}
// where q0 is the first qubit argument of Apply2.
type Matrix4 [4][4]complex128

// Mul returns the matrix product m·o.
func (m Matrix2) Mul(o Matrix2) Matrix2 {
	var r Matrix2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			r[i][j] = m[i][0]*o[0][j] + m[i][1]*o[1][j]
		}
	}
	return r
}

// Dagger returns the conjugate transpose of m.
func (m Matrix2) Dagger() Matrix2 {
	var r Matrix2
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			c := m[j][i]
			r[i][j] = complex(real(c), -imag(c))
		}
	}
	return r
}

// IsUnitary reports whether m†m = I within tol.
func (m Matrix2) IsUnitary(tol float64) bool {
	p := m.Dagger().Mul(m)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := complex(0, 0)
			if i == j {
				want = 1
			}
			d := p[i][j] - want
			if math.Hypot(real(d), imag(d)) > tol {
				return false
			}
		}
	}
	return true
}

// Standard single-qubit gates.
var (
	// I is the identity.
	I = Matrix2{{1, 0}, {0, 1}}
	// X is the Pauli-X (bit flip) gate — the inversion primitive of
	// Invert-and-Measure (paper Fig 2c).
	X = Matrix2{{0, 1}, {1, 0}}
	// Y is the Pauli-Y gate.
	Y = Matrix2{{0, complex(0, -1)}, {complex(0, 1), 0}}
	// Z is the Pauli-Z (phase flip) gate.
	Z = Matrix2{{1, 0}, {0, -1}}
	// H is the Hadamard gate, used to prepare equal superpositions for
	// ESCT characterization and the BV/QAOA kernels.
	H = Matrix2{{complex(1/math.Sqrt2, 0), complex(1/math.Sqrt2, 0)},
		{complex(1/math.Sqrt2, 0), complex(-1/math.Sqrt2, 0)}}
	// S is the phase gate (√Z).
	S = Matrix2{{1, 0}, {0, complex(0, 1)}}
	// Sdg is S†.
	Sdg = Matrix2{{1, 0}, {0, complex(0, -1)}}
	// T is the π/8 gate (√S).
	T = Matrix2{{1, 0}, {0, complex(math.Cos(math.Pi/4), math.Sin(math.Pi/4))}}
	// Tdg is T†.
	Tdg = Matrix2{{1, 0}, {0, complex(math.Cos(math.Pi/4), -math.Sin(math.Pi/4))}}
)

// RX returns the rotation exp(-iθX/2), the QAOA mixer gate.
func RX(theta float64) Matrix2 {
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	return Matrix2{
		{complex(c, 0), complex(0, -s)},
		{complex(0, -s), complex(c, 0)},
	}
}

// RY returns the rotation exp(-iθY/2).
func RY(theta float64) Matrix2 {
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	return Matrix2{
		{complex(c, 0), complex(-s, 0)},
		{complex(s, 0), complex(c, 0)},
	}
}

// RZ returns the rotation exp(-iθZ/2), used (between CNOTs) to implement
// the QAOA cost-layer ZZ interaction.
func RZ(theta float64) Matrix2 {
	return Matrix2{
		{complex(math.Cos(theta/2), -math.Sin(theta/2)), 0},
		{0, complex(math.Cos(theta/2), math.Sin(theta/2))},
	}
}

// U3 returns the general single-qubit gate with the OpenQASM u3 convention.
func U3(theta, phi, lambda float64) Matrix2 {
	ct, st := math.Cos(theta/2), math.Sin(theta/2)
	eip := complex(math.Cos(phi), math.Sin(phi))
	eil := complex(math.Cos(lambda), math.Sin(lambda))
	return Matrix2{
		{complex(ct, 0), -eil * complex(st, 0)},
		{eip * complex(st, 0), eip * eil * complex(ct, 0)},
	}
}

// Pauli identifies one of the four Pauli operators; it is the error type
// injected by the depolarizing gate-noise channel.
type Pauli int

// The Pauli operators.
const (
	PauliI Pauli = iota
	PauliX
	PauliY
	PauliZ
)

// Matrix returns the 2×2 matrix of p.
func (p Pauli) Matrix() Matrix2 {
	switch p {
	case PauliI:
		return I
	case PauliX:
		return X
	case PauliY:
		return Y
	case PauliZ:
		return Z
	}
	panic("quantum: invalid Pauli")
}

// String returns "I", "X", "Y" or "Z".
func (p Pauli) String() string {
	switch p {
	case PauliI:
		return "I"
	case PauliX:
		return "X"
	case PauliY:
		return "Y"
	case PauliZ:
		return "Z"
	}
	return "?"
}

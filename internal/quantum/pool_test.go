package quantum

import (
	"math/rand"
	"testing"
)

// TestDoubleReleaseStateIsNoOp: overlapping cleanup paths (a panic
// unwinding through two defers, an error path that already released)
// may call ReleaseState twice on the same state. The second call must
// not Put the buffer again — a double Put hands one amplitude buffer
// to two future acquirers, which then corrupt each other's
// trajectories.
func TestDoubleReleaseStateIsNoOp(t *testing.T) {
	const n = 4
	s := NewState(n)
	ReleaseState(s)
	ReleaseState(s) // must be a no-op, not a second Put

	// Drain the pool: at most one acquisition may come back with s's
	// identity. If the double Put leaked through, both of these would
	// be the same object.
	a := AcquireState(n)
	b := AcquireState(n)
	if a == b {
		t.Fatal("double ReleaseState put one *State into the pool twice")
	}
	// Pooled reacquisition is reset and usable again.
	if n := a.Norm(); n != 1 {
		t.Fatalf("reacquired state norm %v, want 1 (Reset on acquire)", n)
	}
	ReleaseState(a)
	ReleaseState(b)
}

// TestDoubleReleaseSamplerIsNoOp is the sampler-side twin.
func TestDoubleReleaseSamplerIsNoOp(t *testing.T) {
	const n = 4
	st := NewState(n)
	sp := NewSampler(st)
	ReleaseSampler(sp)
	ReleaseSampler(sp)

	a := AcquireSampler(st)
	b := AcquireSampler(st)
	if a == b {
		t.Fatal("double ReleaseSampler put one *Sampler into the pool twice")
	}
	ReleaseSampler(a)
	ReleaseSampler(b)
}

// TestReleasedStateIsReusableAfterReacquire: the released flag must
// clear on acquire, so a recycled state can be released again later.
func TestReleasedStateIsReusableAfterReacquire(t *testing.T) {
	const n = 3
	s := NewState(n)
	ReleaseState(s)
	got := AcquireState(n)
	ReleaseState(got) // must actually pool it (flag cleared on acquire)
	again := AcquireState(n)
	if again != got && again != s {
		// Not guaranteed by sync.Pool, but with no concurrent use the
		// per-P free list returns the last Put. If this turns flaky,
		// drop the identity check; the releases above are the point.
		t.Skip("sync.Pool did not recycle; identity check inconclusive")
	}
	rng := rand.New(rand.NewSource(1))
	_ = again.Sample(rng) // still structurally valid
}

package quantum

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzSamplerMatchesLinearScan is the satellite guarantee of the fast
// sampling path: for arbitrary states (normalized or deliberately
// sub-normalized, so uniform draws can land at or past the total mass)
// and arbitrary rng streams, the CDF binary-search sampler returns the
// same outcome as State.Sample, draw for draw.
func FuzzSamplerMatchesLinearScan(f *testing.F) {
	f.Add(int64(1), int64(2), uint8(4), uint8(0))
	f.Add(int64(7), int64(9), uint8(1), uint8(1))
	f.Add(int64(42), int64(3), uint8(8), uint8(3))
	f.Add(int64(-5), int64(0), uint8(12), uint8(2))
	f.Fuzz(func(t *testing.T, stateSeed, drawSeed int64, widthRaw, massRaw uint8) {
		n := int(widthRaw%10) + 1 // 1..10 qubits
		// massRaw selects the total probability mass: 1 (physical), or a
		// sub-normalized state whose tail a uniform draw can overrun.
		mass := 1.0
		switch massRaw % 4 {
		case 1:
			mass = 0.5
		case 2:
			mass = 0.05
		case 3:
			mass = 0.999999
		}
		rng := rand.New(rand.NewSource(stateSeed))
		s := randomMassState(n, rng, mass)
		// Occasionally zero out a run of amplitudes so the prefix array
		// has plateaus (repeated values) around the chosen u.
		if massRaw%2 == 1 {
			for i := len(s.amps) / 4; i < len(s.amps)/2; i++ {
				s.amps[i] = 0
			}
		}
		sp := NewSampler(s)
		rngA := rand.New(rand.NewSource(drawSeed))
		rngB := rand.New(rand.NewSource(drawSeed))
		for i := 0; i < 32; i++ {
			want := s.Sample(rngA)
			got := sp.Sample(rngB)
			if want != got {
				t.Fatalf("draw %d (n=%d mass=%v): linear scan %s, CDF %s", i, n, mass, want, got)
			}
		}
		// The tail contract in isolation: u at or past the accumulated
		// mass returns the last basis state from both samplers.
		total := sp.prefix[len(sp.prefix)-1]
		if u := math.Nextafter(total, 2); u < 1 {
			last := len(s.amps) - 1
			if got := sp.sampleU(u); int(got.Uint64()) != last {
				t.Fatalf("u just past total mass: CDF returned %s, want index %d", got, last)
			}
		}
	})
}

package maxcut

import (
	"testing"

	"biasmit/internal/bitstring"
)

func bs(s string) bitstring.Bits { return bitstring.MustParse(s) }

func TestCutValue(t *testing.T) {
	// Triangle 0-1-2: any nontrivial partition cuts 2 edges.
	g := Graph{Name: "triangle", N: 3, Edges: []Edge{
		{A: 0, B: 1, Weight: 1}, {A: 1, B: 2, Weight: 1}, {A: 0, B: 2, Weight: 1},
	}}
	if v := g.CutValue(bs("000")); v != 0 {
		t.Errorf("trivial cut = %v", v)
	}
	if v := g.CutValue(bs("001")); v != 2 {
		t.Errorf("cut {0} = %v", v)
	}
	if v := g.CutValue(bs("011")); v != 2 {
		t.Errorf("cut {0,1} = %v", v)
	}
}

func TestCutValueWeighted(t *testing.T) {
	g := Graph{Name: "w", N: 2, Edges: []Edge{{A: 0, B: 1, Weight: 2.5}}}
	if v := g.CutValue(bs("01")); v != 2.5 {
		t.Errorf("weighted cut = %v", v)
	}
}

func TestSolveTriangle(t *testing.T) {
	g := Graph{Name: "triangle", N: 3, Edges: []Edge{
		{A: 0, B: 1, Weight: 1}, {A: 1, B: 2, Weight: 1}, {A: 0, B: 2, Weight: 1},
	}}
	best, parts := g.Solve()
	if best != 2 {
		t.Errorf("best = %v", best)
	}
	if len(parts) != 6 { // all 6 nontrivial partitions tie
		t.Errorf("found %d optimal partitions", len(parts))
	}
}

func TestCompleteBipartiteUniqueOptimum(t *testing.T) {
	p := bs("101011")
	g := CompleteBipartite("d", p)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	best, parts := g.Solve()
	want := float64(p.HammingWeight() * (p.Width() - p.HammingWeight()))
	if best != want {
		t.Errorf("best = %v, want %v", best, want)
	}
	if len(parts) != 2 {
		t.Fatalf("optimal partitions = %v, want the cut and its complement", parts)
	}
	if parts[0] != p.Invert() && parts[1] != p.Invert() {
		t.Errorf("complement missing from %v", parts)
	}
	if parts[0] != p && parts[1] != p {
		t.Errorf("target cut missing from %v", parts)
	}
}

func TestTable2Graphs(t *testing.T) {
	graphs := Table2Graphs()
	if len(graphs) != 5 {
		t.Fatalf("got %d graphs", len(graphs))
	}
	wantWeights := []int{1, 2, 3, 4, 4} // paper Table 2 ordering
	for i, pg := range graphs {
		if err := pg.Graph.Validate(); err != nil {
			t.Errorf("%s: %v", pg.Graph.Name, err)
		}
		if pg.Graph.N != 6 {
			t.Errorf("%s has %d nodes", pg.Graph.Name, pg.Graph.N)
		}
		if w := pg.Optimal.HammingWeight(); w != wantWeights[i] {
			t.Errorf("%s optimum weight = %d, want %d", pg.Graph.Name, w, wantWeights[i])
		}
		_, parts := pg.Graph.Solve()
		found := false
		for _, p := range parts {
			if p == pg.Optimal {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: published optimum %v not optimal (got %v)", pg.Graph.Name, pg.Optimal, parts)
		}
		if len(parts) != 2 {
			t.Errorf("%s: optimum not unique: %v", pg.Graph.Name, parts)
		}
	}
}

func TestTable3Graph(t *testing.T) {
	for name, width := range map[string]int{"qaoa-4A": 4, "qaoa-4B": 4, "qaoa-6": 6, "qaoa-7": 7} {
		pg, err := Table3Graph(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pg.Graph.N != width {
			t.Errorf("%s: %d nodes, want %d", name, pg.Graph.N, width)
		}
		_, parts := pg.Graph.Solve()
		found := false
		for _, p := range parts {
			if p == pg.Optimal {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: optimum mismatch", name)
		}
	}
	if _, err := Table3Graph("qaoa-99"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestValidate(t *testing.T) {
	cases := []Graph{
		{Name: "tiny", N: 1},
		{Name: "self", N: 3, Edges: []Edge{{A: 1, B: 1, Weight: 1}}},
		{Name: "range", N: 3, Edges: []Edge{{A: 0, B: 5, Weight: 1}}},
		{Name: "zeroW", N: 3, Edges: []Edge{{A: 0, B: 1, Weight: 0}}},
		{Name: "huge", N: 31},
	}
	for _, g := range cases {
		if g.Validate() == nil {
			t.Errorf("graph %s accepted", g.Name)
		}
	}
}

func TestCutValueComplementInvariance(t *testing.T) {
	// A cut and its complement have identical value — why the paper's
	// QAOA PST counts both strings.
	g := CompleteBipartite("inv", bs("0111"))
	for _, p := range bitstring.All(4) {
		if g.CutValue(p) != g.CutValue(p.Invert()) {
			t.Errorf("cut(%v) != cut(complement)", p)
		}
	}
}

// Package maxcut provides the classical side of the paper's QAOA
// workload: input graphs, cut evaluation, and a brute-force solver that
// establishes the correct answer against which PST/IST/ROCA are scored.
//
// The paper evaluates QAOA max-cut on five 6-node graphs (Graph-A…E,
// Table 2) whose optimal partitions have increasing Hamming weight, plus
// the benchmark-suite graphs of Table 3. Each is reconstructed here as a
// complete bipartite graph across the published optimal partition, which
// makes that partition (and its complement) the unique maximum cut.
package maxcut

import (
	"fmt"

	"biasmit/internal/bitstring"
)

// Edge is an undirected weighted edge.
type Edge struct {
	A, B   int
	Weight float64
}

// Graph is an undirected graph on vertices 0..N-1.
type Graph struct {
	Name  string
	N     int
	Edges []Edge
}

// Validate checks vertex ranges and weights.
func (g Graph) Validate() error {
	if g.N < 2 {
		return fmt.Errorf("maxcut: graph %s has %d vertices", g.Name, g.N)
	}
	if g.N > 30 {
		return fmt.Errorf("maxcut: graph %s too large for brute force (%d vertices)", g.Name, g.N)
	}
	for _, e := range g.Edges {
		if e.A < 0 || e.A >= g.N || e.B < 0 || e.B >= g.N || e.A == e.B {
			return fmt.Errorf("maxcut: graph %s has bad edge %d-%d", g.Name, e.A, e.B)
		}
		if e.Weight <= 0 {
			return fmt.Errorf("maxcut: graph %s edge %d-%d has weight %v", g.Name, e.A, e.B, e.Weight)
		}
	}
	return nil
}

// CutValue returns the total weight of edges crossing the partition:
// vertex i is on side Bit(i) of the cut.
func (g Graph) CutValue(partition bitstring.Bits) float64 {
	if partition.Width() != g.N {
		panic(fmt.Sprintf("maxcut: partition width %d for %d vertices", partition.Width(), g.N))
	}
	var v float64
	for _, e := range g.Edges {
		if partition.Bit(e.A) != partition.Bit(e.B) {
			v += e.Weight
		}
	}
	return v
}

// Solve brute-forces the maximum cut. It returns the optimal cut value
// and every optimal partition in ascending numeric order; a partition's
// complement is always included since both label the same cut. The
// paper's PST for QAOA counts both strings (§4.2.1).
func (g Graph) Solve() (best float64, partitions []bitstring.Bits) {
	if err := g.Validate(); err != nil {
		panic(err)
	}
	for _, p := range bitstring.All(g.N) {
		v := g.CutValue(p)
		switch {
		case v > best:
			best = v
			partitions = partitions[:0]
			partitions = append(partitions, p)
		case v == best:
			partitions = append(partitions, p)
		}
	}
	return best, partitions
}

// CompleteBipartite returns the complete bipartite graph whose two sides
// are given by the partition string: every 0-vertex is connected to every
// 1-vertex with unit weight. Its unique maximum cut is the partition
// itself (and complement).
func CompleteBipartite(name string, partition bitstring.Bits) Graph {
	g := Graph{Name: name, N: partition.Width()}
	for a := 0; a < g.N; a++ {
		for b := a + 1; b < g.N; b++ {
			if partition.Bit(a) != partition.Bit(b) {
				g.Edges = append(g.Edges, Edge{A: a, B: b, Weight: 1})
			}
		}
	}
	return g
}

// PaperGraph identifies one of the graphs used in the paper.
type PaperGraph struct {
	Graph   Graph
	Optimal bitstring.Bits // the published optimal partition
}

// Table2Graphs returns the five 6-node graphs of Table 2 (Graph-A…E),
// whose optimal outputs have Hamming weights 1, 2, 3, 4, 4.
func Table2Graphs() []PaperGraph {
	targets := []struct{ name, cut string }{
		{"Graph-A", "010000"},
		{"Graph-B", "010100"},
		{"Graph-C", "101001"},
		{"Graph-D", "101011"},
		{"Graph-E", "110110"},
	}
	out := make([]PaperGraph, len(targets))
	for i, t := range targets {
		p := bitstring.MustParse(t.cut)
		out[i] = PaperGraph{Graph: CompleteBipartite(t.name, p), Optimal: p}
	}
	return out
}

// Table3Graph returns the max-cut instance behind one of the Table 3
// QAOA benchmarks (qaoa-4A, qaoa-4B, qaoa-6, qaoa-7).
func Table3Graph(name string) (PaperGraph, error) {
	cuts := map[string]string{
		"qaoa-4A": "0101",
		"qaoa-4B": "0111",
		"qaoa-6":  "101011",
		"qaoa-7":  "1010110",
	}
	cut, ok := cuts[name]
	if !ok {
		return PaperGraph{}, fmt.Errorf("maxcut: unknown Table 3 benchmark %q", name)
	}
	p := bitstring.MustParse(cut)
	return PaperGraph{Graph: CompleteBipartite(name, p), Optimal: p}, nil
}

package circuit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"biasmit/internal/bitstring"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBuilderAndSimulateBell(t *testing.T) {
	c := New(2, "bell").H(0).CX(0, 1)
	s := c.Simulate()
	p := s.Probabilities()
	if !approx(p[0], 0.5) || !approx(p[3], 0.5) || !approx(p[1], 0) || !approx(p[2], 0) {
		t.Errorf("bell probabilities = %v", p)
	}
}

func TestPrepareBasis(t *testing.T) {
	for _, bstr := range []string{"00000", "11111", "01011", "10000"} {
		b := bitstring.MustParse(bstr)
		c := New(5, "prep").PrepareBasis(b)
		s := c.Simulate()
		if got := s.Amplitude(b); !approx(real(got), 1) {
			t.Errorf("PrepareBasis(%s) amp = %v", bstr, got)
		}
	}
}

func TestApplyInversionString(t *testing.T) {
	// Prepare |00101⟩, invert with "11111", expect |11010⟩ — the paper's
	// Fig 1(c) workflow before post-correction.
	b := bitstring.MustParse("00101")
	inv := bitstring.MustParse("11111")
	c := New(5, "inv").PrepareBasis(b).ApplyInversionString(inv)
	s := c.Simulate()
	if got := s.Amplitude(b.Xor(inv)); !approx(real(got), 1) {
		t.Errorf("inverted state amp = %v", got)
	}
}

func TestZZDiagonalPhase(t *testing.T) {
	// ZZ(θ) must be diagonal and leave basis-state probabilities intact.
	c := New(2, "zz").H(0).H(1).ZZ(1.1, 0, 1)
	s := c.Simulate()
	for i, p := range s.Probabilities() {
		if !approx(p, 0.25) {
			t.Errorf("P(%d) = %v, want 0.25", i, p)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := New(3, "orig").H(0).CX(0, 1)
	cp := c.Clone()
	cp.X(2)
	cp.Ops[0].Qubits[0] = 2
	if len(c.Ops) != 2 || c.Ops[0].Qubits[0] != 0 {
		t.Error("Clone shares state with original")
	}
}

func TestAppend(t *testing.T) {
	a := New(2, "a").H(0)
	b := New(2, "b").CX(0, 1)
	a.Append(b)
	if len(a.Ops) != 2 {
		t.Fatalf("ops = %d", len(a.Ops))
	}
	p := a.Simulate().Probabilities()
	if !approx(p[0], 0.5) || !approx(p[3], 0.5) {
		t.Errorf("appended bell = %v", p)
	}
}

func TestRemap(t *testing.T) {
	c := New(2, "bell").H(0).CX(0, 1)
	m := c.Remap([]int{3, 1}, 5)
	if m.NumQubits != 5 {
		t.Fatalf("remapped size = %d", m.NumQubits)
	}
	s := m.Simulate()
	// Qubits 3 and 1 entangled: |00000⟩ and |01010⟩ each 0.5.
	if got := s.Probabilities()[0]; !approx(got, 0.5) {
		t.Errorf("P(00000) = %v", got)
	}
	if got := s.Probabilities()[0b01010]; !approx(got, 0.5) {
		t.Errorf("P(01010) = %v", got)
	}
}

func TestRemapRejectsBadLayouts(t *testing.T) {
	c := New(2, "x").H(0)
	for i, layout := range [][]int{{0, 0}, {0, 9}, {0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("layout case %d did not panic", i)
				}
			}()
			c.Remap(layout, 5)
		}()
	}
}

func TestGateCounts(t *testing.T) {
	c := New(3, "counts").H(0).H(1).CX(0, 1).Swap(1, 2).AddBarrier().X(2)
	oneQ, twoQ, total := c.GateCounts()
	if oneQ != 3 || twoQ != 2 || total != 5 {
		t.Errorf("counts = %d,%d,%d", oneQ, twoQ, total)
	}
}

func TestDepth(t *testing.T) {
	// H(0) and H(1) are parallel (depth 1); CX serializes (depth 2).
	c := New(2, "d").H(0).H(1).CX(0, 1)
	if d := c.Depth(); d != 2 {
		t.Errorf("depth = %d, want 2", d)
	}
	// Barrier forces later ops to start after the deepest wire.
	c2 := New(2, "d2").H(0).H(0).AddBarrier().X(1)
	if d := c2.Depth(); d != 3 {
		t.Errorf("barrier depth = %d, want 3", d)
	}
	if d := New(2, "empty").Depth(); d != 0 {
		t.Errorf("empty depth = %d", d)
	}
}

func TestStringRendering(t *testing.T) {
	c := New(2, "render").H(0).CX(0, 1).AddBarrier()
	s := c.String()
	for _, want := range []string{"h q[0];", "cx q[0], q[1];", "barrier;", "render"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []func(){
		func() { New(0, "bad") },
		func() { New(2, "bad").H(2) },
		func() { New(2, "bad").CX(1, 1) },
		func() { New(2, "bad").PrepareBasis(bitstring.Zeros(3)) },
		func() { New(2, "bad").ApplyInversionString(bitstring.Zeros(3)) },
		func() { New(2, "a").Append(New(3, "b")) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// Property: simulating PrepareBasis(b)+ApplyInversionString(s) then
// XOR-correcting yields b for all b, s — the end-to-end correctness of
// Invert-and-Measure on a noiseless machine.
func TestQuickInvertAndMeasureIdentity(t *testing.T) {
	f := func(braw, sraw uint8) bool {
		const n = 6
		b := bitstring.New(uint64(braw), n)
		inv := bitstring.New(uint64(sraw), n)
		c := New(n, "im").PrepareBasis(b).ApplyInversionString(inv)
		st := c.Simulate()
		rng := rand.New(rand.NewSource(int64(braw)*257 + int64(sraw)))
		measured := st.Sample(rng)
		return measured.Xor(inv) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Error(err)
	}
}

// Property: Remap with the identity layout is a no-op on measurement
// statistics.
func TestQuickIdentityRemap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 4
		c := randomCircuit(n, 12, rng)
		layout := []int{0, 1, 2, 3}
		p1 := c.Simulate().Probabilities()
		p2 := c.Remap(layout, n).Simulate().Probabilities()
		for i := range p1 {
			if math.Abs(p1[i]-p2[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(47))}); err != nil {
		t.Error(err)
	}
}

// Property: circuit simulation preserves the state norm.
func TestQuickSimulatePreservesNorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(5, 30, rng)
		return math.Abs(c.Simulate().Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(53))}); err != nil {
		t.Error(err)
	}
}

func randomCircuit(n, ops int, rng *rand.Rand) *Circuit {
	c := New(n, "random")
	for i := 0; i < ops; i++ {
		switch rng.Intn(6) {
		case 0:
			c.H(rng.Intn(n))
		case 1:
			c.X(rng.Intn(n))
		case 2:
			c.RZ(rng.Float64()*2*math.Pi, rng.Intn(n))
		case 3:
			c.RY(rng.Float64()*2*math.Pi, rng.Intn(n))
		case 4:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CX(a, b)
		case 5:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.CZGate(a, b)
		}
	}
	return c
}

func TestCCXTruthTable(t *testing.T) {
	// Toffoli flips the target exactly when both controls are 1.
	for v := 0; v < 8; v++ {
		in := bitstring.New(uint64(v), 3)
		c := New(3, "ccx").PrepareBasis(in).CCX(0, 1, 2)
		want := in
		if in.Bit(0) && in.Bit(1) {
			want = in.SetBit(2, !in.Bit(2))
		}
		s := c.Simulate()
		amp := s.Amplitude(want)
		if p := real(amp)*real(amp) + imag(amp)*imag(amp); math.Abs(p-1) > 1e-9 {
			t.Errorf("CCX on %v: P(%v) = %v", in, want, p)
		}
	}
}

func TestCCZPhase(t *testing.T) {
	// CCZ flips the phase of |111⟩ only: verify via interference — apply
	// to a uniform superposition and compare with a reference built from
	// the exact diagonal.
	c := New(3, "ccz")
	for q := 0; q < 3; q++ {
		c.H(q)
	}
	c.CCZ(0, 1, 2)
	s := c.Simulate()
	for v := 0; v < 8; v++ {
		b := bitstring.New(uint64(v), 3)
		amp := s.Amplitude(b)
		want := 1.0 / math.Sqrt(8)
		if v == 7 {
			want = -want
		}
		if math.Abs(real(amp)-want) > 1e-9 || math.Abs(imag(amp)) > 1e-9 {
			t.Errorf("CCZ amp(%v) = %v, want %v", b, amp, want)
		}
	}
}

func TestCCXPanicsOnRepeatedQubits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(3, "bad").CCX(0, 0, 1)
}

// Package circuit defines the intermediate representation of quantum
// programs: an ordered list of gate operations on a fixed-size register,
// ending in a full-register measurement.
//
// Circuits are what the kernels in internal/kernels emit, what the
// transpiler in internal/transpile rewrites onto device qubits, and what
// the backend executes. The Invert-and-Measure policies in internal/core
// act purely at this level, appending X gates before the measurement
// (paper §5.1) — they never need to inspect the quantum state.
package circuit

import (
	"fmt"
	"strings"

	"biasmit/internal/bitstring"
	"biasmit/internal/quantum"
)

// OpKind enumerates the supported operations.
type OpKind int

// Supported operation kinds. Gate1 covers every single-qubit unitary via
// an explicit matrix; the named two-qubit kinds are kept distinct because
// devices calibrate them separately and the router rewrites them.
const (
	Gate1   OpKind = iota // single-qubit unitary (Matrix set)
	CNOT                  // controlled-X: Qubits[0] control, Qubits[1] target
	CZ                    // controlled-Z, symmetric
	SwapOp                // SWAP, symmetric
	Barrier               // scheduling barrier; no quantum effect
)

// Op is one operation in a circuit.
type Op struct {
	Kind   OpKind
	Qubits []int           // operand qubits (device or logical indices)
	Matrix quantum.Matrix2 // for Gate1
	Label  string          // gate name for printing, e.g. "h", "x", "rz(0.3)"
}

// Arity returns the number of qubit operands the op touches.
func (o Op) Arity() int { return len(o.Qubits) }

// IsTwoQubit reports whether the op is one of the entangling kinds, the
// expensive and error-prone class on NISQ devices.
func (o Op) IsTwoQubit() bool { return o.Kind == CNOT || o.Kind == CZ || o.Kind == SwapOp }

// Circuit is an ordered gate list on a register of NumQubits qubits.
// Gates act on qubit indices [0, NumQubits). All qubits are measured at
// the end of execution, in keeping with the NISQ model of computation.
type Circuit struct {
	NumQubits int
	Ops       []Op
	Name      string
}

// New returns an empty circuit on n qubits.
func New(n int, name string) *Circuit {
	if n < 1 || n > quantum.MaxQubits {
		panic(fmt.Sprintf("circuit: qubit count %d out of range [1,%d]", n, quantum.MaxQubits))
	}
	return &Circuit{NumQubits: n, Name: name}
}

func (c *Circuit) checkQubit(q int) {
	if q < 0 || q >= c.NumQubits {
		panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", q, c.NumQubits))
	}
}

func (c *Circuit) add(op Op) *Circuit {
	for _, q := range op.Qubits {
		c.checkQubit(q)
	}
	if op.Arity() == 2 && op.Qubits[0] == op.Qubits[1] {
		panic(fmt.Sprintf("circuit: %s on identical qubits %d", op.Label, op.Qubits[0]))
	}
	c.Ops = append(c.Ops, op)
	return c
}

// Gate appends an arbitrary single-qubit unitary.
func (c *Circuit) Gate(m quantum.Matrix2, q int, label string) *Circuit {
	return c.add(Op{Kind: Gate1, Qubits: []int{q}, Matrix: m, Label: label})
}

// X appends a Pauli-X (the Invert-and-Measure inversion gate).
func (c *Circuit) X(q int) *Circuit { return c.Gate(quantum.X, q, "x") }

// Y appends a Pauli-Y.
func (c *Circuit) Y(q int) *Circuit { return c.Gate(quantum.Y, q, "y") }

// Z appends a Pauli-Z.
func (c *Circuit) Z(q int) *Circuit { return c.Gate(quantum.Z, q, "z") }

// H appends a Hadamard.
func (c *Circuit) H(q int) *Circuit { return c.Gate(quantum.H, q, "h") }

// S appends the phase gate.
func (c *Circuit) S(q int) *Circuit { return c.Gate(quantum.S, q, "s") }

// T appends the π/8 gate.
func (c *Circuit) T(q int) *Circuit { return c.Gate(quantum.T, q, "t") }

// RX appends an X rotation.
func (c *Circuit) RX(theta float64, q int) *Circuit {
	return c.Gate(quantum.RX(theta), q, fmt.Sprintf("rx(%.17g)", theta))
}

// RY appends a Y rotation.
func (c *Circuit) RY(theta float64, q int) *Circuit {
	return c.Gate(quantum.RY(theta), q, fmt.Sprintf("ry(%.17g)", theta))
}

// RZ appends a Z rotation.
func (c *Circuit) RZ(theta float64, q int) *Circuit {
	return c.Gate(quantum.RZ(theta), q, fmt.Sprintf("rz(%.17g)", theta))
}

// CX appends a CNOT with the given control and target.
func (c *Circuit) CX(control, target int) *Circuit {
	return c.add(Op{Kind: CNOT, Qubits: []int{control, target}, Label: "cx"})
}

// CZGate appends a controlled-Z.
func (c *Circuit) CZGate(a, b int) *Circuit {
	return c.add(Op{Kind: CZ, Qubits: []int{a, b}, Label: "cz"})
}

// Swap appends a SWAP.
func (c *Circuit) Swap(a, b int) *Circuit {
	return c.add(Op{Kind: SwapOp, Qubits: []int{a, b}, Label: "swap"})
}

// AddBarrier appends a scheduling barrier over all qubits.
func (c *Circuit) AddBarrier() *Circuit {
	c.Ops = append(c.Ops, Op{Kind: Barrier, Label: "barrier"})
	return c
}

// Sdg appends the inverse phase gate.
func (c *Circuit) Sdg(q int) *Circuit { return c.Gate(quantum.Sdg, q, "sdg") }

// Tdg appends the inverse π/8 gate.
func (c *Circuit) Tdg(q int) *Circuit { return c.Gate(quantum.Tdg, q, "tdg") }

// CCX appends a Toffoli (controlled-controlled-X) using the standard
// 6-CNOT, 7-T decomposition, so the result stays inside the device-native
// gate set. Controls a and b, target t.
func (c *Circuit) CCX(a, b, t int) *Circuit {
	if a == b || a == t || b == t {
		panic(fmt.Sprintf("circuit: CCX with repeated qubits %d,%d,%d", a, b, t))
	}
	c.H(t)
	c.CX(b, t)
	c.Tdg(t)
	c.CX(a, t)
	c.T(t)
	c.CX(b, t)
	c.Tdg(t)
	c.CX(a, t)
	c.T(b)
	c.T(t)
	c.H(t)
	c.CX(a, b)
	c.T(a)
	c.Tdg(b)
	c.CX(a, b)
	return c
}

// CCZ appends a controlled-controlled-Z (symmetric in its operands) via
// the Toffoli decomposition conjugated by H on the target.
func (c *Circuit) CCZ(a, b, t int) *Circuit {
	c.H(t)
	c.CCX(a, b, t)
	c.H(t)
	return c
}

// ZZ appends exp(-iθ/2·Z⊗Z) on (a,b) using the CNOT–RZ–CNOT identity,
// the QAOA cost-layer building block.
func (c *Circuit) ZZ(theta float64, a, b int) *Circuit {
	c.CX(a, b)
	c.RZ(theta, b)
	c.CX(a, b)
	return c
}

// PrepareBasis appends X gates that take |00…0⟩ to |b⟩. This is how the
// brute-force RBMS characterization prepares each basis state (§3.1).
func (c *Circuit) PrepareBasis(b bitstring.Bits) *Circuit {
	if b.Width() != c.NumQubits {
		panic(fmt.Sprintf("circuit: basis width %d does not match register %d", b.Width(), c.NumQubits))
	}
	for q := 0; q < c.NumQubits; q++ {
		if b.Bit(q) {
			c.X(q)
		}
	}
	return c
}

// ApplyInversionString appends an X gate on every qubit where s has a 1.
// This is the pre-measurement step of Invert-and-Measure: executing the
// program, applying s, measuring, then XOR-ing the classical result with
// s yields a logically identical but differently biased measurement.
func (c *Circuit) ApplyInversionString(s bitstring.Bits) *Circuit {
	if s.Width() != c.NumQubits {
		panic(fmt.Sprintf("circuit: inversion string width %d does not match register %d", s.Width(), c.NumQubits))
	}
	for q := 0; q < c.NumQubits; q++ {
		if s.Bit(q) {
			c.X(q)
		}
	}
	return c
}

// Inverse returns the adjoint circuit C†: ops in reverse order, each
// inverted. Gate labels are rewritten for the named gates (s↔sdg, t↔tdg,
// rotations negate their angle); anonymous unitaries get a "†" suffix.
// Barriers are preserved in place. C.Append(C.Inverse()) is the identity,
// the building block of zero-noise extrapolation's circuit folding.
func (c *Circuit) Inverse() *Circuit {
	out := New(c.NumQubits, c.Name+"†")
	for i := len(c.Ops) - 1; i >= 0; i-- {
		op := c.Ops[i]
		switch op.Kind {
		case Barrier:
			out.AddBarrier()
		case CNOT, CZ, SwapOp:
			// All three two-qubit kinds are self-inverse.
			cp := op
			cp.Qubits = append([]int(nil), op.Qubits...)
			out.Ops = append(out.Ops, cp)
		case Gate1:
			out.Gate(op.Matrix.Dagger(), op.Qubits[0], inverseLabel(op.Label))
		}
	}
	return out
}

// inverseLabel rewrites a gate label for its adjoint.
func inverseLabel(label string) string {
	switch label {
	case "x", "y", "z", "h", "id":
		return label // self-inverse
	case "s":
		return "sdg"
	case "sdg":
		return "s"
	case "t":
		return "tdg"
	case "tdg":
		return "t"
	}
	for _, rot := range []string{"rx", "ry", "rz"} {
		prefix := rot + "("
		if strings.HasPrefix(label, prefix) && strings.HasSuffix(label, ")") {
			arg := label[len(prefix) : len(label)-1]
			if strings.HasPrefix(arg, "-") {
				return prefix + arg[1:] + ")"
			}
			return prefix + "-" + arg + ")"
		}
	}
	return label + "†"
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{NumQubits: c.NumQubits, Name: c.Name, Ops: make([]Op, len(c.Ops))}
	for i, op := range c.Ops {
		cp := op
		cp.Qubits = append([]int(nil), op.Qubits...)
		out.Ops[i] = cp
	}
	return out
}

// Append concatenates other's ops onto c. The registers must match.
func (c *Circuit) Append(other *Circuit) *Circuit {
	if other.NumQubits != c.NumQubits {
		panic(fmt.Sprintf("circuit: append %d-qubit circuit to %d-qubit circuit", other.NumQubits, c.NumQubits))
	}
	for _, op := range other.Ops {
		cp := op
		cp.Qubits = append([]int(nil), op.Qubits...)
		c.Ops = append(c.Ops, cp)
	}
	return c
}

// Remap returns a copy of c acting on a register of newSize qubits with
// every operand q replaced by layout[q]. The transpiler uses this to
// place a logical circuit onto physical device qubits.
func (c *Circuit) Remap(layout []int, newSize int) *Circuit {
	if len(layout) != c.NumQubits {
		panic(fmt.Sprintf("circuit: layout size %d does not match register %d", len(layout), c.NumQubits))
	}
	seen := make(map[int]bool, len(layout))
	for _, p := range layout {
		if p < 0 || p >= newSize {
			panic(fmt.Sprintf("circuit: layout target %d out of range [0,%d)", p, newSize))
		}
		if seen[p] {
			panic(fmt.Sprintf("circuit: layout maps two qubits to %d", p))
		}
		seen[p] = true
	}
	out := New(newSize, c.Name)
	for _, op := range c.Ops {
		cp := op
		cp.Qubits = make([]int, len(op.Qubits))
		for i, q := range op.Qubits {
			cp.Qubits[i] = layout[q]
		}
		out.Ops = append(out.Ops, cp)
	}
	return out
}

// GateCounts returns the number of single-qubit gates, two-qubit gates,
// and total non-barrier operations.
func (c *Circuit) GateCounts() (oneQ, twoQ, total int) {
	for _, op := range c.Ops {
		switch {
		case op.Kind == Barrier:
		case op.IsTwoQubit():
			twoQ++
			total++
		default:
			oneQ++
			total++
		}
	}
	return oneQ, twoQ, total
}

// Depth returns the circuit depth: the length of the longest chain of
// operations on any qubit, with barriers synchronizing all qubits.
func (c *Circuit) Depth() int {
	level := make([]int, c.NumQubits)
	for _, op := range c.Ops {
		if op.Kind == Barrier {
			maxl := 0
			for _, l := range level {
				if l > maxl {
					maxl = l
				}
			}
			for q := range level {
				level[q] = maxl
			}
			continue
		}
		maxl := 0
		for _, q := range op.Qubits {
			if level[q] > maxl {
				maxl = level[q]
			}
		}
		for _, q := range op.Qubits {
			level[q] = maxl + 1
		}
	}
	maxl := 0
	for _, l := range level {
		if l > maxl {
			maxl = l
		}
	}
	return maxl
}

// Simulate runs the circuit on an ideal (noiseless) simulator starting
// from |00…0⟩ and returns the final state.
func (c *Circuit) Simulate() *quantum.State {
	s := quantum.NewState(c.NumQubits)
	for _, op := range c.Ops {
		applyOp(s, op)
	}
	return s
}

// SimulateInto is Simulate for callers that sit in loops: it resets s to
// the ground state and evolves it in place, so a pooled state
// (quantum.AcquireState) can be reused across evaluations instead of
// allocating 2^n amplitudes per call — e.g. the QAOA angle optimizer,
// which simulates one circuit per objective evaluation.
func (c *Circuit) SimulateInto(s *quantum.State) {
	if s.NumQubits() != c.NumQubits {
		panic(fmt.Sprintf("circuit: SimulateInto state width %d for %d-qubit circuit", s.NumQubits(), c.NumQubits))
	}
	s.Reset()
	for _, op := range c.Ops {
		applyOp(s, op)
	}
}

// applyOp applies one circuit op to a state. Shared with the noisy
// backend, which interleaves noise around it.
func applyOp(s *quantum.State, op Op) {
	switch op.Kind {
	case Gate1:
		s.Apply1(op.Matrix, op.Qubits[0])
	case CNOT:
		s.ApplyCNOT(op.Qubits[0], op.Qubits[1])
	case CZ:
		s.ApplyCZ(op.Qubits[0], op.Qubits[1])
	case SwapOp:
		s.ApplySWAP(op.Qubits[0], op.Qubits[1])
	case Barrier:
	default:
		panic(fmt.Sprintf("circuit: unknown op kind %d", op.Kind))
	}
}

// ApplyOp applies op to the state s. Exported for the backend.
func ApplyOp(s *quantum.State, op Op) { applyOp(s, op) }

// String renders the circuit as one line per op, QASM-like.
func (c *Circuit) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// %s: %d qubits, %d ops\n", c.Name, c.NumQubits, len(c.Ops))
	for _, op := range c.Ops {
		if op.Kind == Barrier {
			sb.WriteString("barrier;\n")
			continue
		}
		sb.WriteString(op.Label)
		sb.WriteByte(' ')
		for i, q := range op.Qubits {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "q[%d]", q)
		}
		sb.WriteString(";\n")
	}
	return sb.String()
}

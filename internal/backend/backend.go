// Package backend executes circuits on device models under the NISQ trial
// loop (paper Fig 3a): initialize, run the program, read the qubits, log
// the output, repeat for thousands of trials.
//
// Noise is simulated with stochastic quantum trajectories: after every
// gate a depolarizing Pauli kick is sampled with the calibrated gate
// error, and the operand qubits undergo amplitude-damping jumps for the
// gate duration (T1 relaxation). Readout is then corrupted by the
// device's classical readout channel — the asymmetric, possibly
// correlated process the paper characterizes and mitigates. Individual
// noise processes can be disabled for ablation studies.
//
// Trajectories are re-sampled throughout the run; several shots may share
// one trajectory (ShotsPerTrajectory) since measurement sampling without
// collapse is equivalent to re-preparing the same noisy execution. This
// trades shot independence for speed on larger registers and converges to
// the same distribution as the trajectory count grows.
package backend

import (
	"context"
	"fmt"
	"math/rand"

	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/noise"
	"biasmit/internal/orchestrate"
	"biasmit/internal/quantum"
	"biasmit/internal/schedule"
)

// Runner is the signature of RunContext: one circuit execution on one
// device under one set of options. Layers that sit between a caller and
// the backend — fault injection (internal/chaos) and retrying execution
// (internal/resilient) — implement and accept this type, so the whole
// execution path is composable: a core.Machine can run against the raw
// backend, a chaos-wrapped backend, or a retrying executor without any
// caller changing.
type Runner func(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt Options) (*dist.Counts, error)

// TransientError marks a failure of the execution environment rather
// than of the request: the run may succeed if simply tried again. The
// retrying executor (internal/resilient) retries errors that wrap a
// TransientError; every other error — budget violations, qasm and
// transpile failures, context endings — is permanent and fails fast.
//
// The real hardware analogue is a queue hiccup, a calibration window, or
// a dropped connection; in this repo transient errors are produced by
// the fault injector (internal/chaos).
type TransientError struct {
	// Op names the phase that hiccuped (e.g. "run", "chaos").
	Op string
	// Err is the underlying cause, if any.
	Err error
}

func (e *TransientError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("backend: transient %s failure", e.Op)
	}
	return fmt.Sprintf("backend: transient %s failure: %v", e.Op, e.Err)
}

func (e *TransientError) Unwrap() error { return e.Err }

// MaxShots caps a single run's trial budget. SIM/AIM callers multiply
// per-group budgets by group counts (and experiment drivers multiply by
// scale factors); without a ceiling those products can overflow int and
// wrap silently. Budgets outside (0, MaxShots] are rejected with a
// *BudgetError.
const MaxShots = 1 << 40

// BudgetError reports a shot budget outside (0, MaxShots] — typically
// the result of an overflowing budget multiplication in a caller.
type BudgetError struct {
	// Shots is the offending budget. A negative value either arrived
	// negative (a wrapped multiplication) or marks a product that
	// MulShots refused to compute because it would overflow.
	Shots int
}

func (e *BudgetError) Error() string {
	if e.Shots <= 0 {
		return fmt.Sprintf("backend: shot budget %d is not positive (overflowing multiplication?)", e.Shots)
	}
	return fmt.Sprintf("backend: shot budget %d exceeds the %d maximum", e.Shots, MaxShots)
}

// CheckShots validates a trial budget, returning a *BudgetError when it
// lies outside (0, MaxShots].
func CheckShots(shots int) error {
	if shots <= 0 || shots > MaxShots {
		return &BudgetError{Shots: shots}
	}
	return nil
}

// MulShots multiplies a per-group budget by a group count with overflow
// checking — the guard SIM/AIM-style callers need before fanning a
// budget out. The product is validated against MaxShots.
func MulShots(shots, groups int) (int, error) {
	if shots <= 0 {
		return 0, &BudgetError{Shots: shots}
	}
	if groups <= 0 || shots > MaxShots/groups {
		return 0, &BudgetError{Shots: -1}
	}
	return shots * groups, nil
}

// Options configures a backend run.
type Options struct {
	// Shots is the number of trials (required, > 0).
	Shots int
	// Seed makes the run deterministic.
	Seed int64
	// ShotsPerTrajectory bounds how many shots reuse one noisy
	// trajectory. Zero selects a size-dependent default (1 for ≤8 qubits,
	// 32 beyond).
	ShotsPerTrajectory int
	// NoGateNoise disables depolarizing gate errors (ablation).
	NoGateNoise bool
	// NoDecay disables T1 amplitude damping during gates (ablation).
	NoDecay bool
	// NoReadoutError disables the classical readout channel (ablation).
	NoReadoutError bool
	// ScheduleAwareDecay additionally relaxes qubits through their idle
	// windows in the ASAP schedule (not only while gates act on them),
	// so poorly packed circuits lose high-Hamming-weight amplitude while
	// waiting for measurement. Ignored when NoDecay is set.
	ScheduleAwareDecay bool
	// Workers runs the trial loop across this many goroutines, splitting
	// the shot budget into per-worker chunks with derived seeds. Results
	// are deterministic for a fixed (Seed, Workers) pair but differ
	// between worker counts, since the random streams are partitioned
	// differently. Zero or one keeps the sequential path.
	Workers int
	// IdleInversion inserts an X–X pair at the midpoint of every idle
	// window (requires ScheduleAwareDecay): the qubit spends half its
	// wait inverted, so T1 relaxation attacks |0⟩ and |1⟩ equally instead
	// of only draining |1⟩ — the paper's state-averaging philosophy
	// applied to idle decoherence rather than readout. The two extra X
	// gates pay their own gate-error and duration cost.
	IdleInversion bool
	// NoFastPath is a debug/verification knob: it disables the CDF batch
	// sampler, the pooled trajectory state, and the compiled readout
	// channel, running the original allocate-per-trajectory,
	// linear-scan-per-shot trial loop instead. Results are byte-identical
	// either way — the fast path is stream-identical by construction and
	// the equality tests assert it — so the only observable differences
	// are time and allocations. The benchmark harness uses this to record
	// the naive baseline the fast path is measured against.
	NoFastPath bool
}

func (o Options) withDefaults(numQubits int) Options {
	if o.ShotsPerTrajectory <= 0 {
		if numQubits <= 8 {
			o.ShotsPerTrajectory = 1
		} else {
			o.ShotsPerTrajectory = 32
		}
	}
	return o
}

// Run is RunContext with a background context — a convenience for
// call sites with nothing to cancel. New code should take and pass a
// context and call RunContext directly.
func Run(c *circuit.Circuit, dev *device.Device, opt Options) (*dist.Counts, error) {
	return RunContext(context.Background(), c, dev, opt)
}

// RunContext is the canonical entry point of the executor: it runs c on
// dev and returns the histogram of measured outcomes over all device
// qubits. The circuit must already be expressed on physical qubits: its
// register must match the device size, and every two-qubit gate must
// act on a coupled pair (use internal/transpile to map logical circuits
// first). The trial loop checks ctx between trajectory batches (and
// between parallel worker chunks), so a long-running job stops within
// one batch of a cancellation or timeout. Every execution-path layer —
// chaos injection, resilient retries, the serving daemon — composes
// over this signature (see Runner).
func RunContext(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt Options) (*dist.Counts, error) {
	if c.NumQubits != dev.NumQubits {
		return nil, fmt.Errorf("backend: circuit register %d does not match device %s with %d qubits",
			c.NumQubits, dev.Name, dev.NumQubits)
	}
	if err := CheckShots(opt.Shots); err != nil {
		return nil, err
	}
	if err := checkConnectivity(c, dev); err != nil {
		return nil, err
	}
	opt = opt.withDefaults(dev.NumQubits)

	// Compile the readout channel once per run: Apply then corrupts each
	// shot against precomputed per-qubit flip thresholds instead of
	// rebuilding a flip-probability slice per shot.
	readout := dev.ReadoutModel().Compile()

	var idle *idlePlan
	if opt.ScheduleAwareDecay && !opt.NoDecay {
		before, final, err := schedule.PerOpIdle(c, dev)
		if err != nil {
			return nil, err
		}
		idle = &idlePlan{before: before, final: final}
	}

	if opt.Workers > 1 {
		return runParallel(ctx, c, dev, opt, idle, readout)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	counts := dist.NewCounts(dev.NumQubits)
	if err := runShots(ctx, c, dev, opt, idle, readout, opt.Shots, rng, counts); err != nil {
		return nil, err
	}
	return counts, nil
}

// runShots executes the trial loop sequentially into counts, stopping
// between trajectory batches if ctx ends.
//
// This is the hot path of the entire system: every SIM group, AIM
// canary, and profiler preparation bottoms out here, millions of shots
// per experiment. The fast path (default) holds one pooled state vector
// for the whole loop, re-preparing it in place per trajectory, and
// samples each trajectory batch through a CDF built once per trajectory
// (O(2^n) once + O(n) binary search per shot) instead of linear-scanning
// 2^n amplitudes on every shot. Both the CDF sampler and the compiled
// readout channel are stream-identical to the naive operations — same
// rng draws, same comparisons, same tie semantics — so the recorded
// counts are byte-identical to Options.NoFastPath (asserted by
// TestFastPathMatchesNaive and the fuzz suite in internal/quantum).
func runShots(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt Options, idle *idlePlan,
	readout *noise.CompiledReadout, shots int, rng *rand.Rand, counts *dist.Counts) error {
	if opt.NoFastPath {
		return runShotsNaive(ctx, c, dev, opt, idle, readout.Model(), shots, rng, counts)
	}
	state := quantum.AcquireState(dev.NumQubits)
	var sampler *quantum.Sampler
	defer func() {
		// A panic mid-trajectory (chaos injection, a faulted gate)
		// leaves these buffers in an unknown state: drop them for the
		// GC instead of pooling them, then let the panic continue to
		// the orchestrator's recovery. Pooling a torn buffer would
		// hand a corrupted state vector to an unrelated future run.
		if r := recover(); r != nil {
			panic(r)
		}
		quantum.ReleaseState(state)
		if sampler != nil {
			quantum.ReleaseSampler(sampler)
		}
	}()
	remaining := shots
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		batch := opt.ShotsPerTrajectory
		if batch > remaining {
			batch = remaining
		}
		runTrajectoryInto(state, c, dev, opt, idle, rng)
		if batch == 1 {
			// One draw amortizes nothing: the linear scan inspects half
			// the amplitudes on average, building the CDF touches all of
			// them. Same stream either way; keep the cheaper scan.
			out := state.Sample(rng)
			if !opt.NoReadoutError {
				out = readout.Apply(out, rng)
			}
			counts.Add(out, 1)
			remaining--
			continue
		}
		if sampler == nil {
			sampler = quantum.AcquireSampler(state)
		} else {
			sampler.Reset(state)
		}
		for i := 0; i < batch; i++ {
			out := sampler.Sample(rng)
			if !opt.NoReadoutError {
				out = readout.Apply(out, rng)
			}
			counts.Add(out, 1)
		}
		remaining -= batch
	}
	return nil
}

// runShotsNaive is the pre-optimization trial loop, kept verbatim as the
// verification oracle and benchmark baseline for the fast path: a fresh
// 2^n state per trajectory, an O(2^n) linear scan per shot, and the
// uncompiled readout channel per shot.
func runShotsNaive(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt Options, idle *idlePlan,
	readout *noise.ReadoutModel, shots int, rng *rand.Rand, counts *dist.Counts) error {
	remaining := shots
	for remaining > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		batch := opt.ShotsPerTrajectory
		if batch > remaining {
			batch = remaining
		}
		state := runTrajectory(c, dev, opt, idle, rng)
		for i := 0; i < batch; i++ {
			out := state.Sample(rng)
			if !opt.NoReadoutError {
				out = readout.Apply(out, rng)
			}
			counts.Add(out, 1)
		}
		remaining -= batch
	}
	return nil
}

// runParallel fans the trial budget out across opt.Workers goroutines,
// each with a seed derived from (opt.Seed, worker index), and merges the
// per-worker histograms in worker order so the result is a pure function
// of (circuit, device, options).
func runParallel(ctx context.Context, c *circuit.Circuit, dev *device.Device, opt Options,
	idle *idlePlan, readout *noise.CompiledReadout) (*dist.Counts, error) {
	workers := opt.Workers
	if workers > opt.Shots {
		workers = opt.Shots
	}
	chunk := opt.Shots / workers
	rem := opt.Shots % workers
	shotsFor := make([]int, workers)
	for w := range shotsFor {
		shotsFor[w] = chunk
		if w < rem {
			shotsFor[w]++
		}
	}
	partial, err := orchestrate.Map(ctx, workers, shotsFor,
		func(ctx context.Context, w, shots int) (*dist.Counts, error) {
			local := dist.NewCounts(dev.NumQubits)
			rng := rand.New(rand.NewSource(orchestrate.DeriveSeed(opt.Seed, w)))
			if err := runShots(ctx, c, dev, opt, idle, readout, shots, rng, local); err != nil {
				return nil, err
			}
			return local, nil
		})
	if err != nil {
		return nil, err
	}
	counts := dist.NewCounts(dev.NumQubits)
	for _, p := range partial {
		counts.Merge(p)
	}
	return counts, nil
}

// idlePlan holds the precomputed schedule gaps for schedule-aware decay.
type idlePlan struct {
	before [][]schedule.QubitGap // per op, gaps ending at that op
	final  []schedule.QubitGap   // gaps ending at measurement
}

// runTrajectory simulates one noisy execution of the circuit into a
// freshly allocated state (the naive path).
func runTrajectory(c *circuit.Circuit, dev *device.Device, opt Options, idle *idlePlan, rng *rand.Rand) *quantum.State {
	state := quantum.NewState(dev.NumQubits)
	runTrajectoryInto(state, c, dev, opt, idle, rng)
	return state
}

// runTrajectoryInto simulates one noisy execution of the circuit into
// state, which is re-prepared to |00…0⟩ first — the in-place form the
// fast path uses to reuse one pooled amplitude buffer across every
// trajectory of a run. The rng consumption is identical to an execution
// into a fresh state.
func runTrajectoryInto(state *quantum.State, c *circuit.Circuit, dev *device.Device, opt Options, idle *idlePlan, rng *rand.Rand) {
	state.Reset()
	for i, op := range c.Ops {
		if idle != nil {
			for _, gap := range idle.before[i] {
				applyIdleGap(state, dev, opt, gap, rng)
			}
		}
		circuit.ApplyOp(state, op)
		if op.Kind == circuit.Barrier {
			continue
		}
		applyGateNoise(state, dev, op, opt, rng)
	}
	if idle != nil {
		for _, gap := range idle.final {
			applyIdleGap(state, dev, opt, gap, rng)
		}
	}
}

// applyIdleGap relaxes a qubit through one idle window, optionally with
// an inversion pair straddling the midpoint (Options.IdleInversion).
func applyIdleGap(state *quantum.State, dev *device.Device, opt Options, gap schedule.QubitGap, rng *rand.Rand) {
	q := gap.Qubit
	t1 := dev.Qubits[q].T1
	// Idle inversion only pays off when the gap dwarfs the two X gates.
	if opt.IdleInversion && gap.Duration > 4*dev.Gate1Duration {
		half := (gap.Duration - 2*dev.Gate1Duration) / 2
		state.ApplyAmplitudeDamping(q, noise.DecayProb(half, t1), rng)
		state.ApplyPauli(quantum.PauliX, q)
		if !opt.NoGateNoise {
			state.ApplyPauli(noise.SamplePauli1(dev.Qubits[q].Gate1Error, rng), q)
		}
		state.ApplyAmplitudeDamping(q, noise.DecayProb(dev.Gate1Duration, t1), rng)
		state.ApplyAmplitudeDamping(q, noise.DecayProb(half, t1), rng)
		state.ApplyPauli(quantum.PauliX, q)
		if !opt.NoGateNoise {
			state.ApplyPauli(noise.SamplePauli1(dev.Qubits[q].Gate1Error, rng), q)
		}
		state.ApplyAmplitudeDamping(q, noise.DecayProb(dev.Gate1Duration, t1), rng)
		return
	}
	state.ApplyAmplitudeDamping(q, noise.DecayProb(gap.Duration, t1), rng)
}

func applyGateNoise(state *quantum.State, dev *device.Device, op circuit.Op, opt Options, rng *rand.Rand) {
	duration := dev.Gate1Duration
	if op.IsTwoQubit() {
		duration = dev.Gate2Duration
		if op.Kind == circuit.SwapOp {
			duration = 3 * dev.Gate2Duration // SWAP decomposes into 3 CNOTs
		}
	}
	if !opt.NoGateNoise {
		if op.IsTwoQubit() {
			p2, err := dev.Gate2Error(op.Qubits[0], op.Qubits[1])
			if err != nil {
				// Connectivity was validated before the run.
				panic(err)
			}
			if op.Kind == circuit.SwapOp {
				p2 = 1 - (1-p2)*(1-p2)*(1-p2)
			}
			pa, pb := noise.SamplePauli2(p2, rng)
			state.ApplyPauli(pa, op.Qubits[0])
			state.ApplyPauli(pb, op.Qubits[1])
		} else {
			q := op.Qubits[0]
			state.ApplyPauli(noise.SamplePauli1(dev.Qubits[q].Gate1Error, rng), q)
		}
	}
	if !opt.NoDecay {
		for _, q := range op.Qubits {
			gamma := noise.DecayProb(duration, dev.Qubits[q].T1)
			state.ApplyAmplitudeDamping(q, gamma, rng)
		}
	}
}

// checkConnectivity verifies every two-qubit op acts on a coupled pair.
func checkConnectivity(c *circuit.Circuit, dev *device.Device) error {
	for i, op := range c.Ops {
		if !op.IsTwoQubit() {
			continue
		}
		if !dev.Connected(op.Qubits[0], op.Qubits[1]) {
			return fmt.Errorf("backend: op %d (%s) acts on uncoupled qubits %d,%d of %s",
				i, op.Label, op.Qubits[0], op.Qubits[1], dev.Name)
		}
	}
	return nil
}

// RunIdeal returns the exact error-free output distribution of c — the
// reference the paper calls the "ideal quantum computer" (Fig 3b). Cost
// is one state-vector simulation. Callers that evaluate it in loops
// (the QAOA angle optimizer runs one per objective evaluation) pay no
// per-call 2^n allocations: the state and probability buffers come from
// the pools in internal/quantum.
func RunIdeal(c *circuit.Circuit) dist.Dist {
	state := quantum.AcquireState(c.NumQubits)
	var probs []float64
	defer func() {
		// As in runShots: a panic mid-simulation abandons the buffers
		// to the GC rather than pooling possibly-torn contents.
		if r := recover(); r != nil {
			panic(r)
		}
		quantum.ReleaseState(state)
		if probs != nil {
			quantum.ReleaseProbs(c.NumQubits, probs)
		}
	}()
	c.SimulateInto(state)
	probs = quantum.AcquireProbs(c.NumQubits)
	state.ProbabilitiesInto(probs)
	d := dist.NewDist(c.NumQubits)
	for i, p := range probs {
		if p > 1e-15 {
			d.P[bitstring.New(uint64(i), c.NumQubits)] = p
		}
	}
	return d
}

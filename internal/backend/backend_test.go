package backend

import (
	"math"
	"testing"

	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/noise"
)

func bs(s string) bitstring.Bits { return bitstring.MustParse(s) }

// noiselessDevice returns a 5-qubit fully-connected device with no error
// processes, for verifying the executor against ideal simulation.
func noiselessDevice() *device.Device {
	d := &device.Device{
		Name:      "ideal-5q",
		NumQubits: 5,
	}
	for i := 0; i < 5; i++ {
		d.Qubits = append(d.Qubits, device.Qubit{T1: 1e12, T2: 1e12})
	}
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			d.Links = append(d.Links, device.Link{A: a, B: b})
		}
	}
	return d
}

func TestRunValidation(t *testing.T) {
	dev := device.IBMQX2()
	c3 := circuit.New(3, "small")
	if _, err := Run(c3, dev, Options{Shots: 10}); err == nil {
		t.Error("register mismatch accepted")
	}
	c5 := circuit.New(5, "ok").H(0)
	if _, err := Run(c5, dev, Options{Shots: 0}); err == nil {
		t.Error("zero shots accepted")
	}
	uncoupled := circuit.New(5, "bad").CX(0, 4) // 0-4 not coupled on ibmqx2
	if _, err := Run(uncoupled, dev, Options{Shots: 10}); err == nil {
		t.Error("uncoupled CNOT accepted")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	dev := device.IBMQX4()
	c := circuit.New(5, "ghz").H(0).CX(0, 1).CX(1, 2).CX(2, 3).CX(3, 4)
	// ibmqx4 links: rewrite onto its coupling (1-0, 2-0, 2-1, 3-2, 3-4, 4-2).
	c = circuit.New(5, "ghz").H(0).CX(1, 0).CX(2, 1).CX(3, 2).CX(3, 4)
	a, err := Run(c, dev, Options{Shots: 500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, dev, Options{Shots: 500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range a.Outcomes() {
		if a.Get(o) != b.Get(o) {
			t.Fatalf("seeded runs differ at %v: %d vs %d", o, a.Get(o), b.Get(o))
		}
	}
	c2, err := Run(c, dev, Options{Shots: 500, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.Dist().TVD(c2.Dist()) == 0 {
		t.Error("different seeds produced identical histograms")
	}
}

func TestNoiselessRunMatchesIdeal(t *testing.T) {
	dev := noiselessDevice()
	c := circuit.New(5, "bell-ish").H(0).CX(0, 1).CX(1, 2)
	counts, err := Run(c, dev, Options{Shots: 50000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ideal := RunIdeal(c)
	if tvd := counts.Dist().TVD(ideal); tvd > 0.01 {
		t.Errorf("noiseless TVD vs ideal = %v", tvd)
	}
}

func TestRunIdealBasisPrep(t *testing.T) {
	b := bs("10110")
	c := circuit.New(5, "prep").PrepareBasis(b)
	ideal := RunIdeal(c)
	if p := ideal.Prob(b); math.Abs(p-1) > 1e-9 {
		t.Errorf("ideal P(%v) = %v", b, p)
	}
	if len(ideal.Outcomes()) != 1 {
		t.Errorf("ideal has %d outcomes", len(ideal.Outcomes()))
	}
}

func TestReadoutBiasAppearsInRun(t *testing.T) {
	// Preparing |11111⟩ on ibmqx2 must read back correctly less often
	// than |00000⟩ — Fig 1's experiment, end to end.
	dev := device.IBMQX2()
	shots := 20000
	prep0 := circuit.New(5, "prep0")
	prep1 := circuit.New(5, "prep1").PrepareBasis(bs("11111"))

	c0, err := Run(prep0, dev, Options{Shots: shots, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := Run(prep1, dev, Options{Shots: shots, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pst0 := float64(c0.Get(bs("00000"))) / float64(shots)
	pst1 := float64(c1.Get(bs("11111"))) / float64(shots)
	if pst1 >= pst0 {
		t.Errorf("PST(11111)=%v >= PST(00000)=%v: no state-dependent bias", pst1, pst0)
	}
	if pst0 < 0.85 {
		t.Errorf("PST(00000)=%v unexpectedly low", pst0)
	}
}

func TestAblationNoReadoutError(t *testing.T) {
	dev := device.IBMQX2()
	c := circuit.New(5, "prep").PrepareBasis(bs("11111"))
	shots := 20000
	noisy, err := Run(c, dev, Options{Shots: shots, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(c, dev, Options{Shots: shots, Seed: 4, NoReadoutError: true})
	if err != nil {
		t.Fatal(err)
	}
	pNoisy := float64(noisy.Get(bs("11111"))) / float64(shots)
	pClean := float64(clean.Get(bs("11111"))) / float64(shots)
	if pClean <= pNoisy {
		t.Errorf("disabling readout error did not help: %v vs %v", pClean, pNoisy)
	}
}

func TestAblationNoGateNoiseNoDecay(t *testing.T) {
	// With all noise disabled the run must match the ideal distribution.
	dev := device.IBMQX4()
	c := circuit.New(5, "ghz").H(0).CX(1, 0).CX(2, 1).CX(3, 2).CX(3, 4)
	counts, err := Run(c, dev, Options{
		Shots: 30000, Seed: 5,
		NoGateNoise: true, NoDecay: true, NoReadoutError: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tvd := counts.Dist().TVD(RunIdeal(c)); tvd > 0.012 {
		t.Errorf("all-ablations TVD = %v", tvd)
	}
}

func TestDecayBiasesGHZTowardZeros(t *testing.T) {
	// On a device with only T1 decay (no gate noise, no readout error),
	// the GHZ |11111⟩ branch must decay while |00000⟩ survives — the
	// superposition-bias mechanism of Fig 6.
	dev := noiselessDevice()
	for i := range dev.Qubits {
		dev.Qubits[i].T1 = 3.0 // heavy decay relative to gate durations
	}
	dev.Gate1Duration = 0.06
	dev.Gate2Duration = 0.30
	c := circuit.New(5, "ghz").H(0).CX(0, 1).CX(1, 2).CX(2, 3).CX(3, 4)
	counts, err := Run(c, dev, Options{Shots: 30000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	d := counts.Dist()
	p0, p1 := d.Prob(bs("00000")), d.Prob(bs("11111"))
	if p1 >= p0 {
		t.Errorf("decay did not bias GHZ: P(00000)=%v P(11111)=%v", p0, p1)
	}
	if p0 < 0.45 {
		t.Errorf("P(00000)=%v, want ≈ 0.5 plus decayed mass", p0)
	}
}

func TestGateNoiseDegradesDeepCircuits(t *testing.T) {
	dev := device.IBMQMelbourne()
	// A long chain of CNOTs along row one.
	c := circuit.New(14, "deep")
	for rep := 0; rep < 4; rep++ {
		for q := 0; q < 6; q++ {
			c.CX(q, q+1)
			c.CX(q, q+1) // pairs cancel: ideal output stays |0…0⟩
		}
	}
	shots := 4000
	noisy, err := Run(c, dev, Options{Shots: shots, Seed: 7, NoReadoutError: true, NoDecay: true})
	if err != nil {
		t.Fatal(err)
	}
	pst := float64(noisy.Get(bitstring.Zeros(14))) / float64(shots)
	if pst > 0.75 {
		t.Errorf("48 noisy CNOTs left PST=%v, expected visible gate-error degradation", pst)
	}
	if pst < 0.05 {
		t.Errorf("PST=%v collapsed entirely; gate noise too strong", pst)
	}
}

func TestShotsPerTrajectoryConvergence(t *testing.T) {
	// Reusing trajectories must converge to the same distribution as
	// independent trajectories.
	dev := device.IBMQX2()
	c := circuit.New(5, "h-all")
	for q := 0; q < 5; q++ {
		c.H(q)
	}
	one, err := Run(c, dev, Options{Shots: 40000, Seed: 8, ShotsPerTrajectory: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Run(c, dev, Options{Shots: 40000, Seed: 9, ShotsPerTrajectory: 50})
	if err != nil {
		t.Fatal(err)
	}
	if tvd := one.Dist().TVD(many.Dist()); tvd > 0.03 {
		t.Errorf("trajectory reuse TVD = %v", tvd)
	}
}

func TestRunAgreesWithExactReadoutModel(t *testing.T) {
	// For a basis-state preparation with gate noise and decay disabled,
	// the run distribution must equal the readout channel's exact row.
	dev := device.IBMQX4()
	x := bs("01101")
	c := circuit.New(5, "prep").PrepareBasis(x)
	counts, err := Run(c, dev, Options{Shots: 60000, Seed: 10, NoGateNoise: true, NoDecay: true})
	if err != nil {
		t.Fatal(err)
	}
	model := dev.ReadoutModel()
	d := counts.Dist()
	for _, y := range bitstring.All(5) {
		want := model.TransitionProb(x, y)
		if math.Abs(d.Prob(y)-want) > 0.01 {
			t.Errorf("P(%v|%v) = %v, exact %v", y, x, d.Prob(y), want)
		}
	}
}

func TestRunWithCorrelatedReadout(t *testing.T) {
	dev := noiselessDevice()
	for i := range dev.Qubits {
		dev.Qubits[i].Readout = noise.ReadoutError{P01: 0.01, P10: 0.02}
	}
	dev.Correlations = []noise.CorrelatedFlip{
		{Trigger: 0, TriggerState: true, Target: 1, PExtra: 0.5},
	}
	c := circuit.New(5, "prep").PrepareBasis(bs("00001"))
	counts, err := Run(c, dev, Options{Shots: 40000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	d := counts.Dist()
	// Qubit 1 should flip about half the time because qubit 0 is 1.
	pFlip := d.Prob(bs("00011")) + d.Prob(bs("00010"))
	if math.Abs(pFlip-0.5) > 0.05 {
		t.Errorf("correlated flip probability = %v, want ≈ 0.5", pFlip)
	}
}

func TestParallelWorkersDeterministic(t *testing.T) {
	dev := device.IBMQX4()
	c := circuit.New(5, "ghz").H(0).CX(1, 0).CX(2, 1).CX(3, 2).CX(3, 4)
	a, err := Run(c, dev, Options{Shots: 4000, Seed: 91, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, dev, Options{Shots: 4000, Seed: 91, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range a.Outcomes() {
		if a.Get(o) != b.Get(o) {
			t.Fatalf("parallel runs differ at %v", o)
		}
	}
	if a.Total() != 4000 {
		t.Errorf("total = %d", a.Total())
	}
}

func TestParallelConvergesToSequential(t *testing.T) {
	dev := device.IBMQX2()
	c := circuit.New(5, "h-all")
	for q := 0; q < 5; q++ {
		c.H(q)
	}
	seq, err := Run(c, dev, Options{Shots: 40000, Seed: 92})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(c, dev, Options{Shots: 40000, Seed: 92, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tvd := seq.Dist().TVD(par.Dist()); tvd > 0.03 {
		t.Errorf("parallel vs sequential TVD = %v", tvd)
	}
}

func TestParallelMoreWorkersThanShots(t *testing.T) {
	dev := device.IBMQX2()
	c := circuit.New(5, "h").H(0)
	counts, err := Run(c, dev, Options{Shots: 3, Seed: 93, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if counts.Total() != 3 {
		t.Errorf("total = %d", counts.Total())
	}
}

package backend_test

import (
	"context"
	"testing"
	"time"

	"biasmit/internal/backend"
	"biasmit/internal/chaos"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/resilient"
)

// TestFastPathMatchesNaiveUnderChaos drives both sampling paths through
// the PR 3 fault-injection stack — chaos injector wrapped in the retrying
// executor — and asserts the surviving histograms stay byte-identical.
// The injector's fault schedule runs off its own seeded rng, independent
// of backend internals, so equal plans replay equal fault sequences for
// both paths; any divergence isolates to the fast path itself.
//
// This file is an external test package: backend's in-package tests
// cannot import resilient/chaos (both import backend).
func TestFastPathMatchesNaiveUnderChaos(t *testing.T) {
	dev := device.IBMQX4()
	c := circuit.New(5, "ghz").H(0).CX(1, 0).CX(2, 1).CX(3, 2).CX(3, 4)
	plan := chaos.Plan{
		Seed:          101,
		TransientRate: 0.3,
		PartialRate:   0.2,
		FailFirst:     2,
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	policy := resilient.Policy{
		MaxAttempts: 20,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}

	run := func(noFast bool, seed int64) map[string]int {
		// Fresh injector per run so the fault schedules replay identically.
		exec := resilient.New(plan.Wrap(backend.RunContext), policy)
		counts, err := exec.Run(context.Background(), c, dev, backend.Options{
			Shots:              600,
			Seed:               seed,
			ShotsPerTrajectory: 8,
			NoFastPath:         noFast,
		})
		if err != nil {
			t.Fatalf("noFast=%v seed=%d: %v", noFast, seed, err)
		}
		out := make(map[string]int)
		for _, o := range counts.Outcomes() {
			out[o.String()] = counts.Get(o)
		}
		return out
	}

	for seed := int64(1); seed <= 3; seed++ {
		naive := run(true, seed)
		fast := run(false, seed)
		if len(naive) != len(fast) {
			t.Fatalf("seed %d: support sizes differ: naive %d, fast %d", seed, len(naive), len(fast))
		}
		for o, n := range naive {
			if fast[o] != n {
				t.Fatalf("seed %d: counts differ at %s: naive %d, fast %d", seed, o, n, fast[o])
			}
		}
	}
}

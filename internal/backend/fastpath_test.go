package backend

import (
	"testing"

	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/dist"
)

// The fast-path equality suite: the CDF batch sampler, pooled state, and
// compiled readout channel must produce byte-identical histograms to the
// naive trial loop (Options.NoFastPath) for every combination of seed,
// register width, noise ablation, trajectory batch size, and worker
// count. "Byte-identical" is literal — same rng stream, same comparisons,
// same counts at every outcome — not a statistical tolerance.

// fastPathCase pairs a device with a circuit valid on its coupling.
type fastPathCase struct {
	name string
	dev  *device.Device
	c    *circuit.Circuit
}

func fastPathCases() []fastPathCase {
	// ibmqx4 coupling: 1-0, 2-0, 2-1, 3-2, 3-4, 4-2.
	ghz5 := circuit.New(5, "ghz5").H(0).CX(1, 0).CX(2, 1).T(2).CX(3, 2).CX(3, 4).H(4)
	// melbourne ladder: rows 0–6 and 7–13 plus rungs (2-12, 3-11, …).
	mel := device.IBMQMelbourne()
	wide := circuit.New(14, "wide14").
		H(0).CX(0, 1).CX(1, 2).T(1).CX(2, 3).CX(3, 4).H(7).CX(7, 8).
		S(8).CX(8, 9).CX(2, 12).CX(3, 11).X(13).CX(12, 13)
	return []fastPathCase{
		{name: "ibmqx4-5q", dev: device.IBMQX4(), c: ghz5},
		{name: "melbourne-14q", dev: mel, c: wide},
	}
}

// fastPathAblations enumerates the noise-ablation corners, including the
// schedule-aware path whose idle windows consume extra rng draws.
func fastPathAblations() []struct {
	name string
	opt  Options
} {
	return []struct {
		name string
		opt  Options
	}{
		{"full-noise", Options{}},
		{"no-readout", Options{NoReadoutError: true}},
		{"no-gate-noise", Options{NoGateNoise: true}},
		{"no-decay", Options{NoDecay: true}},
		{"all-off", Options{NoReadoutError: true, NoGateNoise: true, NoDecay: true}},
		{"schedule-aware", Options{ScheduleAwareDecay: true}},
		{"idle-inversion", Options{ScheduleAwareDecay: true, IdleInversion: true}},
	}
}

// runBothPaths executes opt with the fast path and with NoFastPath and
// returns (naive, fast).
func runBothPaths(t *testing.T, fc fastPathCase, opt Options) (*dist.Counts, *dist.Counts) {
	t.Helper()
	opt.NoFastPath = true
	naive, err := Run(fc.c, fc.dev, opt)
	if err != nil {
		t.Fatalf("naive path: %v", err)
	}
	opt.NoFastPath = false
	fast, err := Run(fc.c, fc.dev, opt)
	if err != nil {
		t.Fatalf("fast path: %v", err)
	}
	return naive, fast
}

// assertSameCounts fails unless want and got are byte-identical
// histograms: same total, same support, same count at every outcome.
func assertSameCounts(t *testing.T, label string, want, got *dist.Counts) {
	t.Helper()
	if want.Total() != got.Total() {
		t.Fatalf("%s: totals differ: naive %d, fast %d", label, want.Total(), got.Total())
	}
	wantOut, gotOut := want.Outcomes(), got.Outcomes()
	if len(wantOut) != len(gotOut) {
		t.Fatalf("%s: support sizes differ: naive %d, fast %d", label, len(wantOut), len(gotOut))
	}
	for _, o := range wantOut {
		if want.Get(o) != got.Get(o) {
			t.Fatalf("%s: counts differ at %s: naive %d, fast %d", label, o, want.Get(o), got.Get(o))
		}
	}
}

// TestFastPathMatchesNaive is the tentpole equality sweep: every (device,
// ablation, seed, batch size) cell, sequential.
func TestFastPathMatchesNaive(t *testing.T) {
	for _, fc := range fastPathCases() {
		// The naive oracle's per-shot linear scan makes wide registers
		// expensive; fewer shots there keep the sweep inside tier-1 time.
		shots := 400
		if fc.dev.NumQubits > 8 {
			shots = 150
		}
		for _, ab := range fastPathAblations() {
			for seed := int64(1); seed <= 3; seed++ {
				// Batch 1 exercises the linear-scan special case, 7 and 32
				// the CDF sampler with and without short final batches (the
				// zero default resolves to one of these widths' values).
				for _, batch := range []int{1, 7, 32} {
					opt := ab.opt
					opt.Shots = shots
					opt.Seed = seed
					opt.ShotsPerTrajectory = batch
					naive, fast := runBothPaths(t, fc, opt)
					label := fc.name + "/" + ab.name
					assertSameCounts(t, label, naive, fast)
				}
			}
		}
	}
}

// TestFastPathMatchesNaiveParallel repeats the sweep through runParallel:
// worker seed derivation and chunk splitting are shared code, so any
// divergence here isolates to per-worker runShots state.
func TestFastPathMatchesNaiveParallel(t *testing.T) {
	for _, fc := range fastPathCases() {
		for _, ab := range fastPathAblations() {
			for _, workers := range []int{2, 3} {
				opt := ab.opt
				opt.Shots = 301 // odd: uneven chunk split
				opt.Seed = 7
				opt.Workers = workers
				opt.ShotsPerTrajectory = 7
				naive, fast := runBothPaths(t, fc, opt)
				label := fc.name + "/" + ab.name
				assertSameCounts(t, label, naive, fast)
			}
		}
	}
}

// TestFastPathBatchBoundary pins the remainder handling: a shot budget
// that is not a multiple of the batch leaves a final short batch, which
// must reset the sampler and consume the same stream as the naive loop.
func TestFastPathBatchBoundary(t *testing.T) {
	fc := fastPathCases()[1] // 14q: batch sampler active
	for _, shots := range []int{1, 31, 32, 33, 65} {
		opt := Options{Shots: shots, Seed: 11, ShotsPerTrajectory: 32}
		naive, fast := runBothPaths(t, fc, opt)
		assertSameCounts(t, fc.name, naive, fast)
	}
}

// TestFastPathDeterministicAcrossRuns guards the pooling: buffers handed
// back by one run must not leak state into the next (Reset on acquire),
// so back-to-back identical runs stay byte-identical.
func TestFastPathDeterministicAcrossRuns(t *testing.T) {
	fc := fastPathCases()[1]
	opt := Options{Shots: 500, Seed: 5, ShotsPerTrajectory: 16}
	first, err := Run(fc.c, fc.dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(fc.c, fc.dev, opt)
		if err != nil {
			t.Fatal(err)
		}
		assertSameCounts(t, "repeat", first, again)
	}
}

package backend_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"biasmit/internal/backend"
	"biasmit/internal/chaos"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/resilient"
)

// TestPoolIntegrityUnderChaosAndCancel is the regression test for the
// sync.Pool audit: the trial loop's pooled state/sampler buffers must
// survive every abnormal exit — injected transient and partial faults,
// contexts cancelled mid-run, salvage retries replaying failed slices
// — without a buffer being double-Put or a torn one re-entering the
// pool. A corrupted free list shows up as cross-talk between
// unrelated runs, so the proof is end-state determinism: after a
// concurrent storm of faulted and cancelled runs, a clean run is
// byte-identical to the pristine reference taken before the storm.
// Run under -race (CI does) so overlapping Put/Get is also checked.
func TestPoolIntegrityUnderChaosAndCancel(t *testing.T) {
	dev := device.IBMQX4()
	c := circuit.New(5, "ghz").H(0).CX(1, 0).CX(2, 1).CX(3, 2).CX(3, 4)
	opts := backend.Options{Shots: 400, Seed: 99, ShotsPerTrajectory: 8}

	reference, err := backend.RunContext(context.Background(), c, dev, opts)
	if err != nil {
		t.Fatal(err)
	}

	plan := chaos.Plan{Seed: 202, TransientRate: 0.3, PartialRate: 0.2}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	policy := resilient.Policy{
		MaxAttempts: 10,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}

	const workers = 8
	const itersPerWorker = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			exec := resilient.New(plan.Wrap(backend.RunContext), policy)
			for i := 0; i < itersPerWorker; i++ {
				o := opts
				o.Seed = int64(w*1000 + i + 1)
				switch i % 3 {
				case 0:
					// Faulted but completing run: retries and salvage
					// replay failed slices through the pooled buffers.
					if _, err := exec.Run(context.Background(), c, dev, o); err != nil {
						t.Errorf("worker %d iter %d: %v", w, i, err)
						return
					}
				case 1:
					// Cancelled before it starts: the error path must
					// still unwind the acquire/release pairs cleanly.
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					_, _ = backend.RunContext(ctx, c, dev, o)
				default:
					// Cancelled mid-run: the deadline fires somewhere
					// inside the trial loop.
					ctx, cancel := context.WithTimeout(context.Background(), 100*time.Microsecond)
					_, _ = backend.RunContext(ctx, c, dev, o)
					cancel()
				}
			}
		}(w)
	}
	wg.Wait()

	after, err := backend.RunContext(context.Background(), c, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	refOutcomes := reference.Outcomes()
	gotOutcomes := after.Outcomes()
	if len(refOutcomes) != len(gotOutcomes) {
		t.Fatalf("post-storm support size %d, want %d — a pooled buffer was corrupted", len(gotOutcomes), len(refOutcomes))
	}
	for _, o := range refOutcomes {
		if after.Get(o) != reference.Get(o) {
			t.Fatalf("post-storm counts differ at %s: %d vs reference %d — pooled state leaked between runs",
				o, after.Get(o), reference.Get(o))
		}
	}
}

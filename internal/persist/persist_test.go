package persist

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"biasmit/internal/backend"
	"biasmit/internal/bitstring"
	"biasmit/internal/circuit"
	"biasmit/internal/core"
	"biasmit/internal/correct"
	"biasmit/internal/device"
	"biasmit/internal/dist"
)

func TestDeviceRoundTrip(t *testing.T) {
	for _, orig := range device.AllMachines() {
		var buf bytes.Buffer
		if err := SaveDevice(&buf, orig); err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		loaded, err := LoadDevice(&buf)
		if err != nil {
			t.Fatalf("%s: %v", orig.Name, err)
		}
		if loaded.Name != orig.Name || loaded.NumQubits != orig.NumQubits {
			t.Errorf("%s: identity fields lost", orig.Name)
		}
		if len(loaded.Qubits) != len(orig.Qubits) || len(loaded.Links) != len(orig.Links) {
			t.Fatalf("%s: structure lost", orig.Name)
		}
		for q := range orig.Qubits {
			if loaded.Qubits[q] != orig.Qubits[q] {
				t.Errorf("%s qubit %d: %+v != %+v", orig.Name, q, loaded.Qubits[q], orig.Qubits[q])
			}
		}
		// The loaded device must behave identically.
		a := orig.ReadoutModel().ExactBMS()
		b := loaded.ReadoutModel().ExactBMS()
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-12 {
				t.Fatalf("%s: BMS diverged at %d", orig.Name, i)
			}
		}
	}
}

func TestSaveDeviceRejectsInvalid(t *testing.T) {
	bad := device.IBMQX2()
	bad.Qubits[0].T1 = -5
	if err := SaveDevice(&bytes.Buffer{}, bad); err == nil {
		t.Error("invalid device saved")
	}
}

func TestLoadDeviceRejectsTamperedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveDevice(&buf, device.IBMQX2()); err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(buf.String(), `"T1": 62`, `"T1": -1`, 1)
	if _, err := LoadDevice(strings.NewReader(tampered)); err == nil {
		t.Error("tampered device accepted")
	}
}

func TestRBMSRoundTrip(t *testing.T) {
	strength := make([]float64, 32)
	for i := range strength {
		strength[i] = 1 / float64(i+1)
	}
	orig, err := core.NewRBMS(5, strength)
	if err != nil {
		t.Fatal(err)
	}
	meta := RBMSMeta{Machine: "ibmqx4", Layout: []int{0, 1, 2, 3, 4}, Method: "brute"}
	var buf bytes.Buffer
	if err := SaveRBMS(&buf, orig, meta); err != nil {
		t.Fatal(err)
	}
	loaded, gotMeta, err := LoadRBMS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Machine != meta.Machine || gotMeta.Method != meta.Method {
		t.Errorf("meta = %+v", gotMeta)
	}
	if loaded.Width != 5 {
		t.Fatalf("width = %d", loaded.Width)
	}
	for i := range strength {
		if loaded.Strength[i] != strength[i] {
			t.Fatalf("strength[%d] mismatch", i)
		}
	}
	if loaded.StrongestState() != orig.StrongestState() {
		t.Error("strongest state changed")
	}
}

func TestLoadedRBMSDrivesAIM(t *testing.T) {
	// End-to-end: profile, save, load, run AIM with the loaded profile.
	dev := device.IBMQX4()
	m := core.NewMachine(dev)
	m.Opt = backend.Options{NoGateNoise: true, NoDecay: true}
	prof := &core.Profiler{Machine: m, Layout: []int{0, 1, 2, 3, 4}}
	rbms, err := prof.BruteForce(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveRBMS(&buf, rbms, RBMSMeta{Machine: dev.Name, Method: "brute"}); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadRBMS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	prep := circuit.New(5, "prep").PrepareBasis(bitstring.MustParse("11011"))
	job, err := core.NewJobWithLayout(prep, m, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AIM(job, loaded, core.AIMConfig{}, 4000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.Total() != 4000 {
		t.Errorf("budget = %d", res.Merged.Total())
	}
}

func TestTensoredRoundTrip(t *testing.T) {
	matrices := [][2][2]float64{
		{{0.98, 0.10}, {0.02, 0.90}},
		{{0.95, 0.07}, {0.05, 0.93}},
	}
	orig, err := correct.NewTensored(matrices)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTensored(&buf, orig, "ibmqx2", []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	loaded, machine, layout, err := LoadTensored(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if machine != "ibmqx2" || len(layout) != 2 {
		t.Errorf("meta: %s %v", machine, layout)
	}
	// Loaded calibration must correct identically to the original.
	counts := dist.NewCounts(2)
	counts.Add(bitstring.MustParse("11"), 800)
	counts.Add(bitstring.MustParse("01"), 130)
	counts.Add(bitstring.MustParse("10"), 50)
	counts.Add(bitstring.MustParse("00"), 20)
	a, err := orig.Apply(counts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Apply(counts)
	if err != nil {
		t.Fatal(err)
	}
	if tvd := a.TVD(b); tvd > 1e-12 {
		t.Errorf("loaded calibration diverged: TVD %v", tvd)
	}
}

func TestKindMismatchRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveDevice(&buf, device.IBMQX2()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadRBMS(&buf); err == nil {
		t.Error("device file loaded as RBMS")
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveDevice(&buf, device.IBMQX2()); err != nil {
		t.Fatal(err)
	}
	future := strings.Replace(buf.String(), `"version": 1`, `"version": 99`, 1)
	if _, err := LoadDevice(strings.NewReader(future)); err == nil {
		t.Error("future version accepted")
	}
}

func TestGarbageRejected(t *testing.T) {
	if _, err := LoadDevice(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, _, err := LoadRBMS(strings.NewReader(`{"kind":"biasmit/rbms","version":1,"payload":{"width":3,"strength":[1]}}`)); err == nil {
		t.Error("inconsistent RBMS accepted")
	}
}

// Package persist serializes the artifacts a long-running mitigation
// workflow wants to keep between sessions: device calibrations, learned
// RBMS profiles, and confusion-matrix calibrations. Everything is
// versioned JSON inside a small typed envelope, so a file's kind is
// checked before decoding and future format changes stay detectable.
//
// AIM's machine profile is explicitly designed to be reusable — the
// paper validates that the bias ordering is stable across calibration
// cycles (§6.1) — so saving an RBMS learned today and loading it for
// tomorrow's runs is the intended workflow.
package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"biasmit/internal/core"
	"biasmit/internal/correct"
	"biasmit/internal/device"
)

// Envelope wraps every persisted artifact with its kind and version.
type Envelope struct {
	Kind    string          `json:"kind"`
	Version int             `json:"version"`
	Payload json.RawMessage `json:"payload"`
}

// Artifact kinds.
const (
	KindDevice   = "biasmit/device"
	KindRBMS     = "biasmit/rbms"
	KindTensored = "biasmit/tensored-calibration"
	KindSnapshot = "biasmit/profile-snapshot"
)

const currentVersion = 1

func save(w io.Writer, kind string, payload interface{}) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("persist: encoding %s payload: %w", kind, err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(Envelope{Kind: kind, Version: currentVersion, Payload: raw}); err != nil {
		return fmt.Errorf("persist: writing %s: %w", kind, err)
	}
	return nil
}

func load(r io.Reader, kind string, payload interface{}) error {
	var env Envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return fmt.Errorf("persist: reading envelope: %w", err)
	}
	if env.Kind != kind {
		return fmt.Errorf("persist: file holds %q, expected %q", env.Kind, kind)
	}
	if env.Version != currentVersion {
		return fmt.Errorf("persist: %s version %d not supported (current %d)", kind, env.Version, currentVersion)
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return fmt.Errorf("persist: decoding %s payload: %w", kind, err)
	}
	return nil
}

// SaveDevice writes a device model (all calibration data included).
func SaveDevice(w io.Writer, d *device.Device) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("persist: refusing to save invalid device: %w", err)
	}
	return save(w, KindDevice, d)
}

// LoadDevice reads and validates a device model.
func LoadDevice(r io.Reader) (*device.Device, error) {
	var d device.Device
	if err := load(r, KindDevice, &d); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("persist: loaded device is invalid: %w", err)
	}
	return &d, nil
}

// ProfileRecord is the one on-disk form of a learned measurement
// strength profile. Everything that persists a profile — the
// characterize CLI's -out file, the profile store's WAL records, and
// its compacted snapshots — serializes this exact struct, so a profile
// written by any of them is loadable by all of them. Shots and
// LearnedAt are provenance; files from before they existed decode with
// both zero.
type ProfileRecord struct {
	Machine   string    `json:"machine,omitempty"`
	Layout    []int     `json:"layout,omitempty"`
	Method    string    `json:"method,omitempty"`
	Width     int       `json:"width"`
	Strength  []float64 `json:"strength"`
	Shots     int       `json:"shots,omitempty"`
	LearnedAt time.Time `json:"learned_at"`
}

// RBMS reconstructs (and validates) the profile's strength series.
func (p ProfileRecord) RBMS() (core.RBMS, error) {
	rbms, err := core.NewRBMS(p.Width, p.Strength)
	if err != nil {
		return core.RBMS{}, fmt.Errorf("persist: profile record is invalid: %w", err)
	}
	return rbms, nil
}

// SaveProfile writes one profile record inside the standard envelope.
func SaveProfile(w io.Writer, rec ProfileRecord) error {
	return save(w, KindRBMS, rec)
}

// LoadProfile reads one profile record and validates its strengths.
func LoadProfile(r io.Reader) (ProfileRecord, error) {
	var rec ProfileRecord
	if err := load(r, KindRBMS, &rec); err != nil {
		return ProfileRecord{}, err
	}
	if _, err := rec.RBMS(); err != nil {
		return ProfileRecord{}, err
	}
	return rec, nil
}

// RBMSMeta annotates a saved profile with its provenance.
type RBMSMeta struct {
	Machine string
	Layout  []int
	Method  string // "brute", "esct", "awct", …
}

// SaveRBMS writes a learned measurement-strength profile. It is a thin
// wrapper over SaveProfile kept for callers that carry the RBMS and its
// provenance separately.
func SaveRBMS(w io.Writer, r core.RBMS, meta RBMSMeta) error {
	return SaveProfile(w, ProfileRecord{
		Machine:  meta.Machine,
		Layout:   meta.Layout,
		Method:   meta.Method,
		Width:    r.Width,
		Strength: r.Strength,
	})
}

// LoadRBMS reads a profile and its provenance.
func LoadRBMS(r io.Reader) (core.RBMS, RBMSMeta, error) {
	rec, err := LoadProfile(r)
	if err != nil {
		return core.RBMS{}, RBMSMeta{}, err
	}
	rbms, err := rec.RBMS()
	if err != nil {
		return core.RBMS{}, RBMSMeta{}, err
	}
	return rbms, RBMSMeta{Machine: rec.Machine, Layout: rec.Layout, Method: rec.Method}, nil
}

// ProfileSnapshot is a compacted image of a profile store: every live
// record plus the journal sequence number of the last WAL entry the
// image reflects. Recovery loads the snapshot, then replays only WAL
// entries with a higher sequence number — entries at or below LastSeq
// are already folded in.
type ProfileSnapshot struct {
	LastSeq  uint64          `json:"last_seq"`
	Profiles []ProfileRecord `json:"profiles"`
}

// SaveSnapshot writes a profile-store snapshot.
func SaveSnapshot(w io.Writer, s ProfileSnapshot) error {
	return save(w, KindSnapshot, s)
}

// LoadSnapshot reads a profile-store snapshot. Individual records are
// not validated here; the store validates (and skips) them on load so
// one bad record cannot block recovery of the rest.
func LoadSnapshot(r io.Reader) (ProfileSnapshot, error) {
	var s ProfileSnapshot
	if err := load(r, KindSnapshot, &s); err != nil {
		return ProfileSnapshot{}, err
	}
	return s, nil
}

// tensoredPayload is the on-disk form of a per-qubit confusion-matrix
// calibration.
type tensoredPayload struct {
	Machine  string          `json:"machine,omitempty"`
	Layout   []int           `json:"layout,omitempty"`
	Matrices [][2][2]float64 `json:"matrices"`
}

// SaveTensored writes a tensored confusion-matrix calibration.
func SaveTensored(w io.Writer, t *correct.Tensored, machine string, layout []int) error {
	return save(w, KindTensored, tensoredPayload{
		Machine:  machine,
		Layout:   layout,
		Matrices: t.Matrices,
	})
}

// LoadTensored reads a calibration, recomputing the inverse matrices.
func LoadTensored(r io.Reader) (*correct.Tensored, string, []int, error) {
	var p tensoredPayload
	if err := load(r, KindTensored, &p); err != nil {
		return nil, "", nil, err
	}
	t, err := correct.NewTensored(p.Matrices)
	if err != nil {
		return nil, "", nil, fmt.Errorf("persist: loaded calibration is invalid: %w", err)
	}
	return t, p.Machine, p.Layout, nil
}

package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// WAL framing: every record is [length u32 LE][CRC32-C u32 LE][payload].
// The checksum covers the payload alone; the length field is sanity
// checked against MaxWALRecord and the bytes remaining in the file, so a
// corrupt header can never provoke an oversized allocation. A record is
// durable once Append returns: the frame is written and fsynced before
// the call completes (fsync-on-commit).
//
// Replay is truncated-tail tolerant by design. A crash (or kill -9) can
// leave a partial frame at the end of the log — a header with no
// payload, a payload cut short, or a checksum that never got its final
// bytes. Replay treats the first undecodable frame as the torn tail of
// an interrupted append: every intact record before it is applied, the
// tail is dropped, and OpenWAL truncates the file back to the last
// intact boundary so subsequent appends stay reachable. Corruption is
// therefore assumed to live at the tail; a flipped byte mid-file drops
// that record and everything after it, which is the honest reading of an
// append-only log — nothing after a broken frame can be trusted to be
// framed correctly.

const (
	walHeaderSize = 8
	// MaxWALRecord bounds a single record's payload. Profile records are
	// a few hundred kilobytes at the widest machine (2^14 strengths);
	// anything claiming more is treated as corruption.
	MaxWALRecord = 16 << 20
)

// walTable is CRC32-C (Castagnoli), the polynomial with hardware support
// on both amd64 and arm64.
var walTable = crc32.MakeTable(crc32.Castagnoli)

// AppendWALRecord appends one framed record for payload to dst and
// returns the extended slice. Exposed so tests and the fuzz target can
// build well-formed logs byte-for-byte.
func AppendWALRecord(dst, payload []byte) []byte {
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, walTable))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// WALReplay reports what a replay recovered.
type WALReplay struct {
	// Records is how many intact records were decoded and applied.
	Records int
	// ValidBytes is the offset just past the last intact record; bytes
	// beyond it are the torn tail.
	ValidBytes int64
	// Truncated is true when the file held bytes past the last intact
	// record — the signature of an append interrupted by a crash.
	Truncated bool
}

// replayWAL scans data, invoking apply on every intact record in order.
// It stops (without error) at the first frame that cannot be decoded.
// An apply error aborts the replay and is returned: an intact checksum
// with an undecodable payload is a schema problem, not a torn write, and
// silently dropping committed records would be data loss.
func replayWAL(data []byte, apply func(payload []byte) error) (WALReplay, error) {
	var rep WALReplay
	for {
		rest := data[rep.ValidBytes:]
		if len(rest) == 0 {
			return rep, nil
		}
		if len(rest) < walHeaderSize {
			rep.Truncated = true
			return rep, nil
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if length > MaxWALRecord || int64(length) > int64(len(rest)-walHeaderSize) {
			rep.Truncated = true
			return rep, nil
		}
		payload := rest[walHeaderSize : walHeaderSize+int(length)]
		if crc32.Checksum(payload, walTable) != sum {
			rep.Truncated = true
			return rep, nil
		}
		if err := apply(payload); err != nil {
			return rep, fmt.Errorf("persist: WAL record %d: %w", rep.Records, err)
		}
		rep.Records++
		rep.ValidBytes += int64(walHeaderSize) + int64(length)
	}
}

// WAL is an append-only, checksummed record log. Construct with OpenWAL;
// methods are safe for concurrent use.
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
	size int64 // bytes of intact records on disk
	buf  []byte
}

// OpenWAL opens (creating if absent) the log at path, replays every
// intact record through apply in append order, drops and truncates any
// torn tail, and returns the log positioned for appending. The returned
// WALReplay describes what was recovered. A non-nil error from apply
// aborts the open — see replayWAL for why that is not treated as a torn
// tail.
func OpenWAL(path string, apply func(payload []byte) error) (*WAL, WALReplay, error) {
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, WALReplay{}, fmt.Errorf("persist: opening WAL %s: %w", path, err)
	}
	if created {
		// Make the new log's directory entry durable up front: records are
		// fsynced on every Append, but on ext4-ordered mounts the file
		// itself could vanish in a crash if the directory was never synced,
		// losing every committed record with it.
		if err := SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, WALReplay{}, err
		}
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, WALReplay{}, fmt.Errorf("persist: reading WAL %s: %w", path, err)
	}
	rep, err := replayWAL(data, apply)
	if err != nil {
		f.Close()
		return nil, rep, err
	}
	if rep.Truncated {
		if err := f.Truncate(rep.ValidBytes); err != nil {
			f.Close()
			return nil, rep, fmt.Errorf("persist: dropping torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, rep, fmt.Errorf("persist: syncing truncated %s: %w", path, err)
		}
	}
	if _, err := f.Seek(rep.ValidBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, rep, fmt.Errorf("persist: seeking WAL %s: %w", path, err)
	}
	return &WAL{f: f, path: path, size: rep.ValidBytes}, rep, nil
}

// Append commits one record: frame, write, fsync. When Append returns
// nil the record will survive a crash. On a write error the torn frame
// is cut back off so later appends stay replayable.
func (w *WAL) Append(payload []byte) error {
	if len(payload) > MaxWALRecord {
		return fmt.Errorf("persist: WAL record of %d bytes exceeds limit %d", len(payload), MaxWALRecord)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf = AppendWALRecord(w.buf[:0], payload)
	if _, err := w.f.Write(w.buf); err != nil {
		// Best effort: drop the partial frame so the log stays appendable;
		// if even that fails the next OpenWAL will truncate it.
		if w.f.Truncate(w.size) == nil {
			_, _ = w.f.Seek(w.size, io.SeekStart)
		}
		return fmt.Errorf("persist: appending to WAL %s: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("persist: syncing WAL %s: %w", w.path, err)
	}
	w.size += int64(len(w.buf))
	return nil
}

// Size returns the bytes of committed records in the log.
func (w *WAL) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Reset empties the log — called after its contents have been folded
// into a snapshot (compaction).
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("persist: resetting WAL %s: %w", w.path, err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("persist: rewinding WAL %s: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("persist: syncing reset WAL %s: %w", w.path, err)
	}
	w.size = 0
	return nil
}

// Close releases the underlying file. The log is not usable afterwards.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

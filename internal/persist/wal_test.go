package persist

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// openCollect opens the WAL at path and collects every replayed payload.
func openCollect(t *testing.T, path string) (*WAL, [][]byte, WALReplay) {
	t.Helper()
	var got [][]byte
	w, rep, err := OpenWAL(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("OpenWAL(%s): %v", path, err)
	}
	return w, got, rep
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	records := [][]byte{
		[]byte("alpha"),
		{},
		[]byte(`{"op":"put","seq":3}`),
		bytes.Repeat([]byte{0xA5}, 1<<10),
	}

	w, got, rep := openCollect(t, path)
	if len(got) != 0 || rep.Truncated {
		t.Fatalf("fresh WAL replayed %d records, truncated=%v", len(got), rep.Truncated)
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	size := w.Size()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, got, rep := openCollect(t, path)
	defer w2.Close()
	if rep.Truncated {
		t.Fatal("clean WAL reported a truncated tail")
	}
	if rep.Records != len(records) || rep.ValidBytes != size {
		t.Fatalf("replay = %+v, want %d records over %d bytes", rep, len(records), size)
	}
	if len(got) != len(records) {
		t.Fatalf("replayed %d records, want %d", len(got), len(records))
	}
	for i := range records {
		if !bytes.Equal(got[i], records[i]) {
			t.Fatalf("record %d: got %q, want %q", i, got[i], records[i])
		}
	}
}

// TestWALTornTailEveryOffset cuts a three-record log at every possible
// byte length and checks replay recovers exactly the records whose
// frames survived intact — never an error, never a partial record.
func TestWALTornTailEveryOffset(t *testing.T) {
	records := [][]byte{[]byte("one"), []byte("twotwo"), []byte("threethreethree")}
	var full []byte
	var boundaries []int64 // offsets at which a whole record ends
	for _, r := range records {
		full = AppendWALRecord(full, r)
		boundaries = append(boundaries, int64(len(full)))
	}

	dir := t.TempDir()
	for cut := 0; cut <= len(full); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("wal-%d.log", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, got, rep := openCollect(t, path)

		wantRecords := 0
		var wantValid int64
		for i, b := range boundaries {
			if int64(cut) >= b {
				wantRecords = i + 1
				wantValid = b
			}
		}
		if rep.Records != wantRecords || rep.ValidBytes != wantValid {
			t.Fatalf("cut %d: replay %+v, want %d records / %d bytes", cut, rep, wantRecords, wantValid)
		}
		if wantTrunc := int64(cut) != wantValid; rep.Truncated != wantTrunc {
			t.Fatalf("cut %d: truncated=%v, want %v", cut, rep.Truncated, wantTrunc)
		}
		for i := 0; i < wantRecords; i++ {
			if !bytes.Equal(got[i], records[i]) {
				t.Fatalf("cut %d: record %d = %q, want %q", cut, i, got[i], records[i])
			}
		}

		// The torn tail must have been cut off: appending and reopening
		// recovers the old records plus the new one.
		if err := w.Append([]byte("appended-after-tear")); err != nil {
			t.Fatalf("cut %d: append after tear: %v", cut, err)
		}
		w.Close()
		w2, got2, rep2 := openCollect(t, path)
		w2.Close()
		if rep2.Truncated || len(got2) != wantRecords+1 {
			t.Fatalf("cut %d: after heal, %d records truncated=%v, want %d clean",
				cut, len(got2), rep2.Truncated, wantRecords+1)
		}
		if !bytes.Equal(got2[wantRecords], []byte("appended-after-tear")) {
			t.Fatalf("cut %d: appended record lost", cut)
		}
	}
}

// TestWALFlippedChecksumByte flips one byte of the middle record's
// checksum: replay must stop there, treating it and everything after as
// the untrustworthy tail.
func TestWALFlippedChecksumByte(t *testing.T) {
	records := [][]byte{[]byte("first"), []byte("second"), []byte("third")}
	var full []byte
	var firstEnd int64
	for i, r := range records {
		full = AppendWALRecord(full, r)
		if i == 0 {
			firstEnd = int64(len(full))
		}
	}
	full[firstEnd+4] ^= 0xFF // a CRC byte of record 2

	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	w, got, rep := openCollect(t, path)
	defer w.Close()
	if len(got) != 1 || !bytes.Equal(got[0], records[0]) {
		t.Fatalf("replayed %d records, want just the first intact one", len(got))
	}
	if !rep.Truncated || rep.ValidBytes != firstEnd {
		t.Fatalf("replay %+v, want truncated at %d", rep, firstEnd)
	}
}

// TestWALFlippedPayloadByte corrupts a payload byte: the frame decodes
// but the checksum must catch it.
func TestWALFlippedPayloadByte(t *testing.T) {
	full := AppendWALRecord(nil, []byte("payload-under-test"))
	full[walHeaderSize+3] ^= 0x01

	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	w, got, rep := openCollect(t, path)
	defer w.Close()
	if len(got) != 0 || !rep.Truncated {
		t.Fatalf("corrupt payload replayed %d records, truncated=%v", len(got), rep.Truncated)
	}
}

// TestWALHugeClaimedLength writes a header claiming an absurd record
// size; replay must refuse it without trying to allocate it.
func TestWALHugeClaimedLength(t *testing.T) {
	huge := AppendWALRecord(nil, []byte("x"))
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0x7F
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, huge, 0o644); err != nil {
		t.Fatal(err)
	}
	w, got, rep := openCollect(t, path)
	defer w.Close()
	if len(got) != 0 || !rep.Truncated || rep.ValidBytes != 0 {
		t.Fatalf("huge length: %d records, replay %+v", len(got), rep)
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := openCollect(t, path)
	for i := 0; i < 4; i++ {
		if err := w.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Fatalf("size %d after reset", w.Size())
	}
	if err := w.Append([]byte("post-reset")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, got, rep := openCollect(t, path)
	w2.Close()
	if len(got) != 1 || !bytes.Equal(got[0], []byte("post-reset")) || rep.Truncated {
		t.Fatalf("after reset replay got %q (truncated=%v), want just post-reset", got, rep.Truncated)
	}
}

func TestWALAppendOverLimit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, _ := openCollect(t, path)
	defer w.Close()
	if err := w.Append(make([]byte, MaxWALRecord+1)); err == nil {
		t.Fatal("oversized append accepted")
	}
	if w.Size() != 0 {
		t.Fatalf("oversized append changed size to %d", w.Size())
	}
}

package persist

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file via a temporary sibling and a rename, so
// a crash, a full disk, or a concurrent reader never observes a
// half-written artifact: the target either keeps its old contents or
// holds the complete new ones. write receives the temporary file's
// writer; any error from it (or from syncing and renaming) leaves the
// target untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: creating temp file for %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("persist: writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("persist: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing temp file for %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: renaming into %s: %w", path, err)
	}
	// Sync the directory so the rename itself survives a crash — without
	// this the file contents are durable but the name pointing at them
	// may not be. Best effort on filesystems that refuse directory syncs.
	if d, derr := os.Open(dir); derr == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

package persist

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// WriteFileAtomic writes a file via a temporary sibling and a rename, so
// a crash, a full disk, or a concurrent reader never observes a
// half-written artifact: the target either keeps its old contents or
// holds the complete new ones. write receives the temporary file's
// writer; any error from it (or from syncing and renaming) leaves the
// target untouched.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: creating temp file for %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("persist: writing %s: %w", path, err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("persist: syncing %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing temp file for %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: renaming into %s: %w", path, err)
	}
	// Sync the directory so the rename itself survives a crash. The file
	// contents were fsynced above, but on ext4-ordered (and most journaled
	// filesystems) the directory entry pointing at them is separate
	// metadata: a crash right after a checkpoint rename can otherwise
	// replay to a directory that has no such file. This is a hard error —
	// a checkpoint whose name may evaporate is not a checkpoint.
	if err = SyncDir(dir); err != nil {
		return err
	}
	return nil
}

// SyncDir fsyncs a directory so renames and creations inside it are
// durable. Filesystems that do not support directory fsync (some network
// and FUSE mounts return EINVAL or ENOTSUP) are tolerated — there is
// nothing more userspace can do there — but real I/O errors are not.
func SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: opening directory %s for sync: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("persist: syncing directory %s: %w", dir, err)
	}
	return nil
}

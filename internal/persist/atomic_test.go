package persist

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicWritesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")

	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "first")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("content %q, want %q", got, "first")
	}

	// Overwriting replaces the whole file, not just a prefix.
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "x")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "x" {
		t.Fatalf("content after rewrite %q, want %q", got, "x")
	}
}

func TestWriteFileAtomicKeepsOldContentOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("writer failed")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	if got, _ := os.ReadFile(path); string(got) != "precious" {
		t.Fatalf("target clobbered on failed write: %q", got)
	}

	// No stray temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestWriteFileAtomicRelativePath(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })

	if err := WriteFileAtomic("bare.txt", func(w io.Writer) error {
		_, err := io.WriteString(w, "ok")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(filepath.Join(dir, "bare.txt")); string(got) != "ok" {
		t.Fatalf("content %q, want %q", got, "ok")
	}
}

func TestWriteFileAtomicBadDirectory(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "missing", "out.json"), func(w io.Writer) error {
		return nil
	})
	if err == nil {
		t.Fatal("expected an error for a missing destination directory")
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatalf("syncing a real directory: %v", err)
	}
	if err := SyncDir(""); err != nil {
		t.Fatalf("empty dir must mean cwd: %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("syncing a missing directory must fail")
	}
}

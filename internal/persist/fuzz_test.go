package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the WAL decoder. Invariants:
// replay never panics and never errors (the collector accepts anything),
// the valid prefix never exceeds the input, re-encoding the decoded
// records reproduces that prefix exactly, and opening the healed file a
// second time yields the identical records with no torn tail — i.e.
// truncation converges in one pass.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendWALRecord(nil, []byte("seed-record")))
	two := AppendWALRecord(AppendWALRecord(nil, []byte("a")), bytes.Repeat([]byte{7}, 100))
	f.Add(two)
	f.Add(two[:len(two)-3])                              // torn tail
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})    // absurd length claim
	f.Add(append(AppendWALRecord(nil, nil), 1, 2, 3, 4)) // empty record + garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var records [][]byte
		w, rep, err := OpenWAL(path, func(p []byte) error {
			records = append(records, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("OpenWAL errored on arbitrary input: %v", err)
		}
		w.Close()
		if rep.ValidBytes > int64(len(data)) {
			t.Fatalf("valid prefix %d exceeds input length %d", rep.ValidBytes, len(data))
		}
		if rep.Records != len(records) {
			t.Fatalf("replay reports %d records, applied %d", rep.Records, len(records))
		}

		// Round trip: re-framing the decoded records must reproduce the
		// valid prefix byte for byte.
		var rebuilt []byte
		for _, r := range records {
			rebuilt = AppendWALRecord(rebuilt, r)
		}
		if !bytes.Equal(rebuilt, data[:rep.ValidBytes]) {
			t.Fatalf("re-encoded records do not match the valid prefix")
		}

		// The first open truncated the torn tail; a second must be clean
		// and identical.
		var again [][]byte
		w2, rep2, err := OpenWAL(path, func(p []byte) error {
			again = append(again, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("second OpenWAL: %v", err)
		}
		w2.Close()
		if rep2.Truncated {
			t.Fatal("second open still sees a torn tail")
		}
		if len(again) != len(records) {
			t.Fatalf("second replay got %d records, first got %d", len(again), len(records))
		}
		for i := range records {
			if !bytes.Equal(again[i], records[i]) {
				t.Fatalf("record %d changed between replays", i)
			}
		}
	})
}

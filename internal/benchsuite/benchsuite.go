// Package benchsuite defines the hot-path micro-benchmarks shared by
// the go-test benchmarks (bench_fastpath_test.go at the repo root) and
// the regression harness binary (cmd/bench). Keeping the bodies here
// means the numbers CI gates on and the numbers `go test -bench` prints
// come from the same code.
//
// The suite measures the three layers the PR 4 fast path optimizes —
// measurement sampling, the backend trial loop, and the readout
// channel — each in its fast and naive form, so every recorded figure
// of merit is a same-binary A/B comparison.
package benchsuite

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"biasmit/internal/backend"
	"biasmit/internal/circuit"
	"biasmit/internal/device"
	"biasmit/internal/dist"
	"biasmit/internal/quantum"
)

// Widths is the register sweep of the RunShots and Sample benches.
var Widths = []int{4, 8, 12, 16}

// shotsPerIteration is the trial budget one benchmark iteration runs —
// large enough that per-run setup (readout compilation, pool warm-up)
// amortizes out, as it does in real experiments.
const shotsPerIteration = 16384

// samplingBatch is the shots-per-trajectory of the canonical RunShots
// bench: the sampling-bound shape of characterization workloads, where
// thousands of shots are drawn from each prepared state (ESCT samples
// its whole budget from one superposition; brute-force RBMS draws the
// per-state budget from each basis preparation). This is the regime the
// CDF sampler exists for. The gate-simulation-bound default trial loop
// (batch 32) is measured separately by RunShotsTrialLoop.
const samplingBatch = 4096

// Device returns the deterministic synthetic machine the suite runs on:
// a line of n qubits with correlated readout on two couplings, so the
// compiled readout channel's correlation folding is on the measured
// path.
func Device(n int) *device.Device {
	d, err := device.Synthetic(device.SyntheticSpec{
		NumQubits: n,
		Topology:  "line",
		Crosstalk: 2,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	return d
}

// Circuit returns the workload: a GHZ-style entangling chain with a
// sprinkle of one-qubit gates, valid on the line coupling at any width.
func Circuit(n int) *circuit.Circuit {
	c := circuit.New(n, fmt.Sprintf("bench-%dq", n)).H(0)
	for q := 0; q+1 < n; q++ {
		c.CX(q, q+1)
		if q%3 == 1 {
			c.T(q)
		}
	}
	return c.H(n - 1)
}

// RunShots benchmarks the backend end to end (trajectories, sampling,
// readout corruption) at the given width in the sampling-bound
// characterization shape (see samplingBatch); naive selects the
// pre-optimization loop via Options.NoFastPath.
func RunShots(b *testing.B, width int, naive bool) {
	benchRun(b, backend.Options{
		Shots:              shotsPerIteration,
		Seed:               17,
		ShotsPerTrajectory: samplingBatch,
		NoFastPath:         naive,
	}, width)
}

// RunShotsTrialLoop benchmarks the default experiment trial loop (batch
// 32 beyond 8 qubits, 1 below), where gate simulation dominates: the
// fast path's win here is allocations, not wall clock.
func RunShotsTrialLoop(b *testing.B, width int, naive bool) {
	benchRun(b, backend.Options{
		Shots:      shotsPerIteration / 8,
		Seed:       17,
		NoFastPath: naive,
	}, width)
}

func benchRun(b *testing.B, opt backend.Options, width int) {
	dev := Device(width)
	c := Circuit(width)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backend.RunContext(context.Background(), c, dev, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(opt.Shots), "shots/op")
}

// RunShotsParallel is RunShots across 4 workers — the configuration the
// orchestration layers actually run — exercising per-worker pool churn.
func RunShotsParallel(b *testing.B, width int, naive bool) {
	benchRun(b, backend.Options{
		Shots:              shotsPerIteration,
		Seed:               17,
		Workers:            4,
		ShotsPerTrajectory: samplingBatch,
		NoFastPath:         naive,
	}, width)
}

// Sample benchmarks one measurement draw from a fixed superposition:
// the O(2^n) linear scan against the CDF binary search (whose O(2^n)
// prefix build happens once, outside the timed loop, as it does once
// per trajectory batch in the backend).
func Sample(b *testing.B, width int, cdf bool) {
	state := Circuit(width).Simulate()
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	if cdf {
		sampler := quantum.NewSampler(state)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sampler.Sample(rng)
		}
		return
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		state.Sample(rng)
	}
}

// ReadoutApply benchmarks one readout corruption of a fixed outcome:
// the per-shot recomputing channel against the compiled thresholds.
func ReadoutApply(b *testing.B, compiled bool) {
	dev := Device(16)
	model := dev.ReadoutModel()
	rng := rand.New(rand.NewSource(5))
	out := Circuit(16).Simulate().Sample(rng)
	b.ReportAllocs()
	if compiled {
		cm := model.Compile()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cm.Apply(out, rng)
		}
		return
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Apply(out, rng)
	}
}

// Verify cross-checks the two paths outside the benchmark loop: cmd/bench
// refuses to record numbers for paths that disagree, so a stale baseline
// can never hide a correctness break behind a performance win.
func Verify(width int) error {
	dev := Device(width)
	c := Circuit(width)
	run := func(naive bool) (*dist.Counts, error) {
		return backend.RunContext(context.Background(), c, dev, backend.Options{
			Shots: 512, Seed: 3, NoFastPath: naive,
		})
	}
	naive, err := run(true)
	if err != nil {
		return err
	}
	fast, err := run(false)
	if err != nil {
		return err
	}
	if naive.Total() != fast.Total() {
		return fmt.Errorf("width %d: totals differ: naive %d, fast %d", width, naive.Total(), fast.Total())
	}
	for _, o := range naive.Outcomes() {
		if naive.Get(o) != fast.Get(o) {
			return fmt.Errorf("width %d: counts differ at %s: naive %d, fast %d",
				width, o, naive.Get(o), fast.Get(o))
		}
	}
	return nil
}
